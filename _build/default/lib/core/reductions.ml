(** The fpt-reductions of the paper, executable end to end.

    - {!omq_to_cqs}: Proposition 5.8 / Lemma 6.8 — from OMQ evaluation
      (open world) to CQS evaluation (closed world) for guarded TGDs, via
      finite witnesses glued over the maximal guarded sets of [D⁺].
    - {!clique_to_cqs}: the p-Clique reduction of Theorem 5.13 (and, with
      [Σ = ∅], of Grohe's Theorem 4.1): from a graph [G] and clique size
      [k], build the database [D*(G, D[p], D[p′], X, μ)] on which the CQS
      query holds iff [G] has a [k]-clique.
    - {!lemma_7_2_data}: the companion data [(p, X, p′)] of Lemma 7.2,
      computed greedily with dynamic verification of its properties
      (DESIGN.md §5). *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd

(* ------------------------------------------------------------------ *)
(* Proposition 5.8: OMQ → CQS                                           *)
(* ------------------------------------------------------------------ *)

(** [omq_to_cqs ?n omq db] — the database [D*] of Lemma 6.8:
    [D⁺ ∪ ⋃_{ā ∈ A} M(D⁺|ā, Σ, n)] where [A] ranges over the maximal
    guarded tuples of [D⁺] and [M] is the finite witness of Theorem 6.7.
    Requires a guarded ontology. [D* ⊨ Σ], and
    [c̄ ∈ Q(db) ⟺ c̄ ∈ q(D_star)]. [n] defaults to the number of variables of
    the OMQ's UCQ. *)
let omq_to_cqs ?n (q : Omq.t) db =
  if not (Omq.in_guarded q) then
    invalid_arg "Reductions.omq_to_cqs: ontology must be guarded";
  let sigma = Omq.ontology q in
  let n =
    match n with
    | Some n -> n
    | None ->
        List.fold_left
          (fun acc p -> max acc (VarSet.cardinal (Cq.vars p)))
          0
          (Ucq.disjuncts (Omq.query q))
  in
  let d_plus = Tgds.Ground_closure.d_plus sigma db in
  let guarded_sets = Instance.maximal_guarded_sets d_plus in
  List.fold_left
    (fun acc bag ->
      let local = Instance.restrict d_plus bag in
      (* fresh nulls of each witness are globally fresh, so the witness
         domains pairwise intersect only inside dom(D) as required *)
      let m = Finite_witness.build ~n sigma local in
      Instance.union acc m)
    d_plus guarded_sets

(* ------------------------------------------------------------------ *)
(* Lemma 7.2 companion data                                             *)
(* ------------------------------------------------------------------ *)

type lemma72 = {
  cqs : Cqs.t;
  p : Cq.t;  (** Σ-equivalent minimization of the query *)
  p' : Cq.t;  (** a Σ-satisfying extension: [D[p'] ⊨ Σ], [D[p] ⊆ D[p']] *)
  x : VarSet.t;  (** the grid-carrying variable set *)
}

(* All homomorphisms p -> D[p'] fixing the answer variables. *)
let homs_p_to_p' (p : Cq.t) (p' : Cq.t) =
  let db = Cq.canonical_db p' in
  let init =
    List.fold_left
      (fun acc x -> VarMap.add x (Cq.freeze x) acc)
      VarMap.empty (Cq.answer p)
  in
  Homomorphism.all ~init (Cq.atoms p) db

(* Does every hom p -> p' fix X setwise (property 4 of Lemma 7.2)? *)
let x_fixed (p : Cq.t) (p' : Cq.t) (x : VarSet.t) =
  let frozen_x =
    VarSet.fold (fun v acc -> ConstSet.add (Cq.freeze v) acc) x ConstSet.empty
  in
  List.for_all
    (fun b ->
      let image =
        VarSet.fold
          (fun v acc ->
            match VarMap.find_opt v b with
            | Some c -> ConstSet.add c acc
            | None -> acc)
          x ConstSet.empty
      in
      ConstSet.equal image frozen_x)
    (homs_p_to_p' p p')

(* Treewidth of the subgraph of G^p induced by a variable set. *)
let tw_on (p : Cq.t) (x : VarSet.t) =
  let g, arr = Cq.gaifman p in
  let keep = ref Qgraph.Graph.ISet.empty in
  Array.iteri
    (fun i v -> if VarSet.mem v x then keep := Qgraph.Graph.ISet.add i !keep)
    arr;
  let sub = Qgraph.Graph.induced g !keep in
  if Qgraph.Graph.num_edges sub = 0 then 1 else Qgraph.Treewidth.treewidth sub

(** [lemma_7_2_data ?n s] — compute [(p, X, p′)] for a CQS with a CQ
    query: [p] by greedy Σ-minimization, [p′] by reading the finite
    witness [M(D[p],Σ,n)] back as a CQ, and [X] by greedily shrinking the
    existential variables while the treewidth survives, falling back to
    all existential variables when property (4) fails dynamic
    verification. *)
let lemma_7_2_data ?(n = 6) (s : Cqs.t) =
  let sigma = Cqs.constraints s in
  let q =
    match Ucq.disjuncts (Cqs.query s) with
    | [ q ] -> q
    | _ -> invalid_arg "Reductions.lemma_7_2_data: single-CQ queries only"
  in
  let p = Sigma_containment.minimize sigma q in
  let m = Finite_witness.build ~n sigma (Cq.canonical_db p) in
  let p' = Cq.of_instance ~answer:(Cq.frozen_answer p) m in
  (* X: shrink greedily from the existential variables of p while the
     treewidth of G^p|X stays put *)
  let k_star = tw_on p (Cq.evars p) in
  let rec shrink x =
    let candidate =
      VarSet.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None ->
              let x' = VarSet.remove v x in
              if tw_on p x' = k_star && x_fixed p p' x' then Some x' else None)
        x None
    in
    match candidate with Some x' -> shrink x' | None -> x
  in
  let x0 = Cq.evars p in
  let x = if x_fixed p p' x0 then shrink x0 else x0 in
  { cqs = s; p; p'; x }

(** [verify_lemma72 d] — dynamic check of the properties of Lemma 7.2:
    (1) [q ≡_Σ p] (certified during minimization), (2) [D[p'] ⊨ Σ],
    (3) [D[p] ⊆ D[p']], (4) [h(X) = X] for every hom [p → p']. *)
let verify_lemma72 (d : lemma72) =
  let sigma = Cqs.constraints d.cqs in
  Tgd.satisfies_all (Cq.canonical_db d.p') sigma
  && Instance.subset (Cq.canonical_db d.p) (Cq.canonical_db d.p')
  && x_fixed d.p d.p' d.x

(* ------------------------------------------------------------------ *)
(* Theorem 5.13 / Theorem 4.1: p-Clique → CQS evaluation                *)
(* ------------------------------------------------------------------ *)

type clique_instance = {
  data : lemma72;
  k : int;
  graph : Qgraph.Graph.t;
  d_star : Grohe.built;
}

(** [clique_to_cqs d ~graph ~k] — build the reduction database
    [D*(G, D[p], D[p′], X, μ)]. Returns [None] when no [k × K]-grid minor
    is found in [G^p|X] (then this CQS cannot carry a size-[k] clique
    reduction — pick a wider query). *)
let clique_to_cqs (d : lemma72) ~graph ~k =
  let dp = Cq.canonical_db d.p in
  let frozen_x =
    VarSet.fold (fun v acc -> ConstSet.add (Cq.freeze v) acc) d.x ConstSet.empty
  in
  match Grohe.find_minor_map ~k dp frozen_x with
  | None -> None
  | Some mu ->
      let built =
        Grohe.cqs_construction ~graph ~k ~d:dp ~d':(Cq.canonical_db d.p')
          ~a:frozen_x ~mu
      in
      Some { data = d; k; graph; d_star = built }

(** [decide_clique ci] — evaluate the CQS query on [D*]: by Theorem 7.1
    and Lemma 7.3 this holds iff the graph has a [k]-clique. *)
let decide_clique (ci : clique_instance) =
  Ucq.holds ci.d_star.Grohe.db (Cqs.query ci.data.cqs)

(* ------------------------------------------------------------------ *)
(* Theorem 5.4 (demonstrative case): p-Clique → OMQ evaluation          *)
(* ------------------------------------------------------------------ *)

type omq_clique_instance = {
  omq : Omq.t;
  ok : int;
  ograph : Qgraph.Graph.t;
  o_dg : Grohe.built;
}

(** [clique_to_omq omq ~graph ~k] — the Theorem 5.4 reduction in the case
    the paper singles out in §6.1 ("where Σ is empty and S is full, …
    replacing q with its core and applying Theorem 6.1"), extended to
    ontologies from G ∩ FULL: minimize the (Boolean, single-CQ) query
    under Σ, find a [k × K]-grid minor in its Gaifman graph, and build the
    Theorem 6.1 database [D_G]. For the general guarded case the paper
    additionally needs diversifications (Lemma D.11), which this
    demonstrative pipeline does not perform; {!decide_omq_clique}'s
    verdicts are cross-checked against ground truth in the test suite. *)
let clique_to_omq (q : Omq.t) ~graph ~k =
  if not (Tgd.all_full (Omq.ontology q) && Tgd.all_guarded (Omq.ontology q))
  then invalid_arg "Reductions.clique_to_omq: Σ must be in G ∩ FULL";
  let cq =
    match Ucq.disjuncts (Omq.query q) with
    | [ cq ] when Cq.is_boolean cq -> cq
    | _ -> invalid_arg "Reductions.clique_to_omq: Boolean single-CQ queries only"
  in
  let p = Sigma_containment.minimize (Omq.ontology q) cq in
  let dp = Cq.canonical_db p in
  let a = Instance.dom dp in
  match Grohe.find_minor_map ~k dp a with
  | None -> None
  | Some mu ->
      let built = Grohe.omq_construction ~graph ~k ~d:dp ~a ~mu in
      Some { omq = q; ok = k; ograph = graph; o_dg = built }

(** [decide_omq_clique ci] — evaluate the OMQ on [D_G]: the chase is
    finite (Σ is full), so the verdict is exact. *)
let decide_omq_clique (ci : omq_clique_instance) =
  let chased = Tgds.Full_chase.saturate (Omq.ontology ci.omq) ci.o_dg.Grohe.db in
  Ucq.holds chased (Omq.query ci.omq)

(* ------------------------------------------------------------------ *)
(* Proposition 3.3(2): Boolean CQ evaluation → (FG, AQ) evaluation      *)
(* ------------------------------------------------------------------ *)

(** [bcq_to_fg_omq q] — the reduction behind item (2) of Proposition 3.3:
    a Boolean CQ [∃x̄ φ(x̄)] becomes the frontier-guarded TGD
    [φ(x̄) → Ans] (its frontier is empty, so it is trivially in FG though
    not in G), paired with the atomic query [Ans]. Then [D ⊨ q] iff
    [() ∈ Q(D)] — which is why W[1]-hardness of Boolean CQ evaluation is
    inherited by [(FG, CQ_k)] even at treewidth 1. *)
let bcq_to_fg_omq (q : Cq.t) =
  if not (Cq.is_boolean q) then
    invalid_arg "Reductions.bcq_to_fg_omq: Boolean CQs only";
  let ans = Atom.make "Ans" [] in
  let sigma = [ Tgd.make ~body:(Cq.atoms q) ~head:[ ans ] ] in
  assert (List.for_all Tgd.is_frontier_guarded sigma);
  Omq.make
    ~data_schema:(Cq.schema q)
    ~ontology:sigma
    ~query:(Ucq.of_cq (Cq.make [ ans ]))

(** [constraint_free_instance q] — the [Σ = ∅] specialization (Grohe's
    Theorem 4.1): [p = core(q)], [p′ = p], [X] = existential variables of
    the core. *)
let constraint_free_instance (q : Cq.t) =
  let p = Cq_core.core q in
  {
    cqs = Cqs.make ~constraints:[] ~query:(Ucq.of_cq q);
    p;
    p' = p;
    x = Cq.evars p;
  }
