lib/core/finite_witness.mli: Instance Relational Tgds
