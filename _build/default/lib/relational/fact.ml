(** Ground facts: atoms over constants only. *)

open Term

type t = { pred : string; args : const list }

let make pred args = { pred; args }
let pred f = f.pred
let args f = f.args
let arity f = List.length f.args
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let consts f = List.fold_left (fun acc c -> ConstSet.add c acc) ConstSet.empty f.args

(** [of_atom a] converts a ground atom; raises [Invalid_argument] when the
    atom contains a variable. *)
let of_atom (a : Atom.t) =
  let args =
    List.map
      (function
        | Const c -> c
        | Var x -> invalid_arg ("Fact.of_atom: variable " ^ x))
      (Atom.args a)
  in
  { pred = Atom.pred a; args }

let to_atom f = Atom.make f.pred (List.map (fun c -> Const c) f.args)

(** [rename f fact] maps every constant through [f] (identity on [None]). *)
let rename f fact =
  { fact with args = List.map (fun c -> match f c with Some c' -> c' | None -> c) fact.args }

(** Whether every constant of the fact belongs to [set]. *)
let within set fact = List.for_all (fun c -> ConstSet.mem c set) fact.args

let is_ground_of_nulls f = List.exists is_null f.args

let pp ppf f =
  if f.args = [] then Fmt.string ppf f.pred
  else Fmt.pf ppf "%s(%a)" f.pred Fmt.(list ~sep:(any ",") Term.pp_const) f.args
