(** Monotonic counters and duration histograms.

    A registry holds named counters (monotonically increasing integers)
    and named histograms of durations in seconds (fixed log-spaced
    buckets, 1–2–5 per decade from 1µs to 10s plus an overflow bucket).
    Hot paths obtain a {!counter} handle once and bump it without
    further lookups.

    Serialisation is deterministic: {!to_json} sorts entries by name. *)

type t

(** A registered counter: an increment is one memory write. *)
type counter

val create : unit -> t

(** [counter m name] — find or register the counter [name]. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** [count m name] — current value of [name] (0 when unregistered). *)
val count : t -> string -> int

(** [observe m name seconds] — record a duration in histogram [name]. *)
val observe : t -> string -> float -> unit

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** [absorb ~into src] — add every counter of [src] into [into]
    (registering missing names) and merge [src]'s histograms bucket-wise
    (counts and sums add; extrema combine pointwise). The parallel
    engine and the query server drain shard-local registries through
    this, in shard order, so the merged totals are reproducible. *)
val absorb : into:t -> t -> unit

type summary = {
  count : int;
  sum : float;
  min : float;  (** 0 when empty *)
  max : float;
  buckets : (float * int) list;  (** non-empty buckets: upper bound, hits *)
}

(** All histograms, sorted by name. *)
val histograms : t -> (string * summary) list

(** [quantile m name q] — the [q]-quantile ([0 ≤ q ≤ 1]) of histogram
    [name], estimated by rank interpolation inside the covering bucket
    and clamped to the observed extrema (so [quantile _ _ 0.] is the
    exact min and [quantile _ _ 1.] the exact max). [None] when the
    histogram is missing or empty.
    @raise Invalid_argument when [q] is outside [0,1]. *)
val quantile : t -> string -> float -> float option

(** [{"counters": {...}, "histograms": {...}}], names sorted. *)
val to_json : t -> Json.t
