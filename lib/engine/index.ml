(** Indexed fact store, columnar edition.

    Symbols are interned to dense ints ({!Symtab}) and each predicate's
    tuples live in contiguous int columns ({!Vec}); posting lists and
    the per-predicate insertion order are flat int vectors of packed row
    handles, and membership is hash-partitioned over [n_shards] disjoint
    sub-tables keyed by the interned fact key. See the interface for the
    contract — the observable behaviour (iteration order, counters,
    probe accounting) is bit-compatible with the previous hash-of-lists
    representation:

    - posting lists and relations iterate {e most recently added
      first}, which is the reverse of append order of the backing
      vectors;
    - [remove] prunes in place preserving that order, and freed row
      slots go on a per-relation free list that the next insert reuses,
      so insert/delete churn cannot grow the store's capacity;
    - [index.probes] counts one probe per candidate-list retrieval,
      exactly where [tuples_of]/[tuples_at] used to count it. *)

open Relational
open Relational.Term

(* A live row is handled as [arity << row_bits | row] so the order and
   posting vectors can span the (rare) predicates used at several
   arities while staying flat int data. *)
let row_bits = 40
let row_mask = (1 lsl row_bits) - 1
let pack ~arity row = (arity lsl row_bits) lor row
let arity_of_packed p = p lsr row_bits
let row_of_packed p = p land row_mask

(* Membership shards: the interned fact key hashes to one of [n_shards]
   disjoint sub-tables, each owning its slice of the fact set. *)
let n_shards = 16

type rel = {
  r_arity : int;
  r_cols : Vec.t array;  (* one column per argument position *)
  mutable r_rows : int;  (* row slots allocated, including freed ones *)
  r_free : Vec.t;  (* freed row slots, reused by the next insert *)
}

type entry = {
  mutable e_rels : rel list;  (* by arity; almost always a singleton *)
  e_order : Vec.t;  (* live rows in append order *)
  mutable e_at : (int, Vec.t) Hashtbl.t array;  (* position -> cid -> posting *)
}

(* The predicate table is shared through a one-field record so readers
   keep seeing growth of the pid-indexed array. *)
type tables = { mutable entries : entry option array }

type t = {
  symtab : Symtab.t;
  tabs : tables;
  shards : (int array, int) Hashtbl.t array;  (* fact key -> packed row *)
  metrics : Obs.Metrics.t;
  (* counter handles, resolved once so the hot paths never do a name
     lookup *)
  c_probes : Obs.Metrics.counter;
  c_inserts : Obs.Metrics.counter;
  c_duplicates : Obs.Metrics.counter;
  c_removes : Obs.Metrics.counter;
}

let create () =
  let metrics = Obs.Metrics.create () in
  {
    symtab = Symtab.create ();
    tabs = { entries = Array.make 16 None };
    shards = Array.init n_shards (fun _ -> Hashtbl.create 64);
    metrics;
    c_probes = Obs.Metrics.counter metrics "index.probes";
    c_inserts = Obs.Metrics.counter metrics "index.inserts";
    c_duplicates = Obs.Metrics.counter metrics "index.duplicates";
    c_removes = Obs.Metrics.counter metrics "index.removes";
  }

(* A read-only view over the same store with a private metrics registry:
   worker domains probe through readers so the shared registry is never
   written concurrently. Safe as long as nobody inserts while readers
   are in use (the parallel engine freezes the index during the
   collection stage). *)
let reader idx =
  let metrics = Obs.Metrics.create () in
  {
    idx with
    metrics;
    c_probes = Obs.Metrics.counter metrics "index.probes";
    c_inserts = Obs.Metrics.counter metrics "index.inserts";
    c_duplicates = Obs.Metrics.counter metrics "index.duplicates";
    c_removes = Obs.Metrics.counter metrics "index.removes";
  }

let symtab idx = idx.symtab
let probes idx = Obs.Metrics.value idx.c_probes
let metrics idx = idx.metrics

(* Interned fact keys: [| pid; cid1; …; cidn |]. The [_find] variant
   never assigns ids — a fact with an unknown symbol cannot be stored. *)

let key_intern idx f =
  let st = idx.symtab in
  let args = Fact.args f in
  let key = Array.make (List.length args + 1) 0 in
  key.(0) <- Symtab.intern_pred st (Fact.pred f);
  List.iteri (fun i c -> key.(i + 1) <- Symtab.intern st c) args;
  key

exception Unknown

let key_find idx f =
  let st = idx.symtab in
  match Symtab.find_pred st (Fact.pred f) with
  | None -> None
  | Some pid -> (
      let args = Fact.args f in
      let key = Array.make (List.length args + 1) 0 in
      key.(0) <- pid;
      try
        List.iteri
          (fun i c ->
            match Symtab.find st c with
            | Some cid -> key.(i + 1) <- cid
            | None -> raise Unknown)
          args;
        Some key
      with Unknown -> None)

let shard_of idx key = idx.shards.(Hashtbl.hash key land (n_shards - 1))

let mem f idx =
  match key_find idx f with None -> false | Some key -> Hashtbl.mem (shard_of idx key) key

let size idx = Array.fold_left (fun acc sh -> acc + Hashtbl.length sh) 0 idx.shards

let entry idx pid =
  let es = idx.tabs.entries in
  if pid < Array.length es then es.(pid) else None

let entry_of idx pid =
  let tabs = idx.tabs in
  if pid >= Array.length tabs.entries then begin
    let len = ref (2 * Array.length tabs.entries) in
    while pid >= !len do
      len := 2 * !len
    done;
    let a = Array.make !len None in
    Array.blit tabs.entries 0 a 0 (Array.length tabs.entries);
    tabs.entries <- a
  end;
  match tabs.entries.(pid) with
  | Some e -> e
  | None ->
      let e = { e_rels = []; e_order = Vec.create (); e_at = [||] } in
      tabs.entries.(pid) <- Some e;
      e

let rel_find e arity = List.find_opt (fun r -> r.r_arity = arity) e.e_rels

let rel_of e arity =
  match rel_find e arity with
  | Some r -> r
  | None ->
      let r =
        {
          r_arity = arity;
          r_cols = Array.init arity (fun _ -> Vec.create ());
          r_rows = 0;
          r_free = Vec.create ~capacity:1 ();
        }
      in
      e.e_rels <- r :: e.e_rels;
      if Array.length e.e_at < arity then
        e.e_at <-
          Array.init arity (fun i ->
              if i < Array.length e.e_at then e.e_at.(i) else Hashtbl.create 16);
      r

let posting_of tbl cid =
  match Hashtbl.find_opt tbl cid with
  | Some v -> v
  | None ->
      let v = Vec.create ~capacity:4 () in
      Hashtbl.replace tbl cid v;
      v

(** [insert f idx] — add [f]; [false] when it was already present. *)
let insert f idx =
  Obs.Probe.hit "engine.insert";
  let key = key_intern idx f in
  let sh = shard_of idx key in
  if Hashtbl.mem sh key then begin
    Obs.Metrics.incr idx.c_duplicates;
    false
  end
  else begin
    Obs.Metrics.incr idx.c_inserts;
    let pid = key.(0) and arity = Array.length key - 1 in
    let e = entry_of idx pid in
    let r = rel_of e arity in
    let row =
      if Vec.length r.r_free > 0 then begin
        let row = Vec.pop r.r_free in
        for i = 0 to arity - 1 do
          Vec.set r.r_cols.(i) row key.(i + 1)
        done;
        row
      end
      else begin
        let row = r.r_rows in
        r.r_rows <- row + 1;
        for i = 0 to arity - 1 do
          Vec.push r.r_cols.(i) key.(i + 1)
        done;
        row
      end
    in
    let packed = pack ~arity row in
    Vec.push e.e_order packed;
    for i = 0 to arity - 1 do
      Vec.push (posting_of e.e_at.(i) key.(i + 1)) packed
    done;
    Hashtbl.replace sh key packed;
    true
  end

(** [remove f idx] — delete [f]; [false] when it was not present.
    Posting lists are pruned eagerly (order-preserving compaction, with
    empty posting vectors dropped) so candidate counts stay exact, and
    the freed row slot is recycled. *)
let remove f idx =
  match key_find idx f with
  | None -> false
  | Some key -> (
      let sh = shard_of idx key in
      match Hashtbl.find_opt sh key with
      | None -> false
      | Some packed ->
          Obs.Metrics.incr idx.c_removes;
          Hashtbl.remove sh key;
          let pid = key.(0) and arity = Array.length key - 1 in
          let e = match entry idx pid with Some e -> e | None -> assert false in
          ignore (Vec.remove_value e.e_order packed);
          for i = 0 to arity - 1 do
            let tbl = e.e_at.(i) in
            let cid = key.(i + 1) in
            match Hashtbl.find_opt tbl cid with
            | None -> ()
            | Some v ->
                ignore (Vec.remove_value v packed);
                if Vec.length v = 0 then Hashtbl.remove tbl cid
          done;
          (match rel_find e arity with
          | Some r -> Vec.push r.r_free (row_of_packed packed)
          | None -> ());
          true)

let add f idx =
  ignore (insert f idx);
  idx

let of_instance inst =
  let idx = create () in
  Instance.iter (fun f -> ignore (insert f idx)) inst;
  idx

let decode_key idx key =
  let st = idx.symtab in
  Fact.make (Symtab.extern_pred st key.(0))
    (List.init (Array.length key - 1) (fun i -> Symtab.extern st key.(i + 1)))

(* Storage order: pid-ascending over the entry table, each entry's
   [e_order] in append order. [e_order] only ever sees order-preserving
   removals, so replaying the returned facts into a fresh store rebuilds
   every posting list in the same relative order this store presents. *)
let ordered_facts idx =
  let st = idx.symtab in
  let out = ref [] in
  Array.iteri
    (fun pid e ->
      match e with
      | None -> ()
      | Some e ->
          let p = Symtab.extern_pred st pid in
          Vec.iter
            (fun packed ->
              let arity = arity_of_packed packed and row = row_of_packed packed in
              let r =
                match rel_find e arity with Some r -> r | None -> assert false
              in
              out :=
                Fact.make p
                  (List.init arity (fun i ->
                       Symtab.extern st (Vec.get r.r_cols.(i) row)))
                :: !out)
            e.e_order)
    idx.tabs.entries;
  List.rev !out

let to_instance idx =
  Array.fold_left
    (fun acc sh -> Hashtbl.fold (fun key _ acc -> Instance.add_fact (decode_key idx key) acc) sh acc)
    Instance.empty idx.shards

(* Decode a vector of packed rows to tuples, most recently added first
   (prepending while walking in append order reverses it). *)
let decode_rev idx e v =
  let st = idx.symtab in
  let out = ref [] in
  Vec.iter
    (fun packed ->
      let arity = arity_of_packed packed and row = row_of_packed packed in
      let r = match rel_find e arity with Some r -> r | None -> assert false in
      out := List.init arity (fun i -> Symtab.extern st (Vec.get r.r_cols.(i) row)) :: !out)
    v;
  !out

let tuples_of idx p =
  Obs.Metrics.incr idx.c_probes;
  match Symtab.find_pred idx.symtab p with
  | None -> []
  | Some pid -> ( match entry idx pid with None -> [] | Some e -> decode_rev idx e e.e_order)

let posting idx p i c =
  match Symtab.find_pred idx.symtab p with
  | None -> None
  | Some pid -> (
      match entry idx pid with
      | None -> None
      | Some e ->
          if i < 0 || i >= Array.length e.e_at then None
          else (
            match Symtab.find idx.symtab c with
            | None -> None
            | Some cid -> Hashtbl.find_opt e.e_at.(i) cid))

let tuples_at idx p i c =
  Obs.Metrics.incr idx.c_probes;
  match Symtab.find_pred idx.symtab p with
  | None -> []
  | Some pid -> (
      match entry idx pid with
      | None -> []
      | Some e ->
          if i < 0 || i >= Array.length e.e_at then []
          else (
            match Symtab.find idx.symtab c with
            | None -> []
            | Some cid -> (
                match Hashtbl.find_opt e.e_at.(i) cid with
                | None -> []
                | Some v -> decode_rev idx e v)))

let count_at idx p i c = match posting idx p i c with Some v -> Vec.length v | None -> 0

let count_of idx p =
  match Symtab.find_pred idx.symtab p with
  | None -> 0
  | Some pid -> ( match entry idx pid with None -> 0 | Some e -> Vec.length e.e_order)

(* The constant at a bound argument position, if any. *)
let bound_const (b : Homomorphism.binding) = function
  | Const c -> Some c
  | Var x -> VarMap.find_opt x b

(* Cheapest bound position of [a] under [b]: [(position, constant, size)]. *)
let best_position idx a (b : Homomorphism.binding) =
  let p = Atom.pred a in
  let best = ref None in
  List.iteri
    (fun i t ->
      match bound_const b t with
      | None -> ()
      | Some c ->
          let n = count_at idx p i c in
          (match !best with
          | Some (_, _, m) when m <= n -> ()
          | _ -> best := Some (i, c, n)))
    (Atom.args a);
  !best

let candidates idx a b =
  match best_position idx a b with
  | Some (i, c, _) -> tuples_at idx (Atom.pred a) i c
  | None -> tuples_of idx (Atom.pred a)

(* Count of the cheapest bound posting — best_position without the
   option and tuple allocations (this runs once per pending atom per
   search node, so it is as hot as the matching itself). *)
let candidate_count idx a (b : Homomorphism.binding) =
  let st = idx.symtab in
  let pid = Symtab.find_pred_int st (Atom.pred a) in
  if pid < 0 then 0
  else
    match entry idx pid with
    | None -> 0
    | Some e ->
        let best = ref (-1) in
        List.iteri
          (fun i t ->
            let cid =
              match t with
              | Const c -> Symtab.find_int st c
              | Var x ->
                  if VarMap.mem x b then Symtab.find_int st (VarMap.find x b) else -2
            in
            if cid >= -1 then begin
              (* bound position; an absent constant means an empty posting *)
              let n =
                if cid < 0 || i >= Array.length e.e_at then 0
                else try Vec.length (Hashtbl.find e.e_at.(i) cid) with Not_found -> 0
              in
              if !best < 0 || n < !best then best := n
            end)
          (Atom.args a);
        if !best >= 0 then !best else Vec.length e.e_order

(* Matching over interned rows: the atom is compiled once per call to a
   flat int pattern -- [pids.(i) >= 0] a cell id the position must
   equal, [-1] a bound constant absent from the store (never matches),
   [-2] an unbound variable whose name sits in [pvars.(i)] -- and
   candidates are compared cell-by-cell without materializing tuples.
   Variable bindings made inside the walk are kept as (var, cid) pairs
   and only turned into [VarMap] entries when the whole row matches, so
   failed candidates allocate nothing on the binding path. *)

let fold_matches idx a (b : Homomorphism.binding) ~injective ~on_candidate ~on_fail f acc =
  (* one probe per candidate-list retrieval, like tuples_of/tuples_at *)
  Obs.Metrics.incr idx.c_probes;
  let st = idx.symtab in
  let pid = Symtab.find_pred_int st (Atom.pred a) in
  if pid < 0 then acc
  else
    match entry idx pid with
    | None -> acc
    | Some e -> (
        let args = Atom.args a in
        let arity = List.length args in
        let pids = Array.make arity (-2) in
        let pvars = Array.make arity "" in
        List.iteri
          (fun i t ->
            match t with
            | Const c -> pids.(i) <- Symtab.find_int st c
            | Var x ->
                if VarMap.mem x b then pids.(i) <- Symtab.find_int st (VarMap.find x b)
                else pvars.(i) <- x)
          args;
        (* cheapest bound position, with best_position's exact
           tie-breaking (first strictly-smaller wins) *)
        let best_i = ref (-1) and best_cid = ref (-1) and best_n = ref 0 in
        for i = 0 to arity - 1 do
          let cid = pids.(i) in
          if cid >= -1 then begin
            let n =
              if cid < 0 || i >= Array.length e.e_at then 0
              else try Vec.length (Hashtbl.find e.e_at.(i) cid) with Not_found -> 0
            in
            if !best_i < 0 || n < !best_n then begin
              best_i := i;
              best_cid := cid;
              best_n := n
            end
          end
        done;
        let seq =
          if !best_i < 0 then Some e.e_order
          else if !best_cid < 0 || !best_i >= Array.length e.e_at then None
          else Hashtbl.find_opt e.e_at.(!best_i) !best_cid
        in
        match seq with
        | None -> acc
        | Some v ->
            let used =
              if not injective then None
              else begin
                let tbl = Hashtbl.create 8 in
                VarMap.iter
                  (fun _ c ->
                    let id = Symtab.find_int st c in
                    if id >= 0 then Hashtbl.replace tbl id ())
                  b;
                Some tbl
              end
            in
            (* the relation every matching candidate lives in (packed
               handles of another arity fail the arity check) *)
            let rel_a = rel_find e arity in
            let rec walk r row i locals =
              if i = arity then Some locals
              else
                let cell = Vec.get r.r_cols.(i) row in
                let cid = Array.unsafe_get pids i in
                if cid >= -1 then
                  if cell = cid then walk r row (i + 1) locals else None
                else
                  let x = Array.unsafe_get pvars i in
                  match List.assoc_opt x locals with
                  | Some cid -> if cell = cid then walk r row (i + 1) locals else None
                  | None ->
                      let clash =
                        match used with
                        | None -> false
                        | Some tbl ->
                            Hashtbl.mem tbl cell
                            || List.exists (fun (_, cid) -> cid = cell) locals
                      in
                      if clash then None else walk r row (i + 1) ((x, cell) :: locals)
            in
            let acc = ref acc in
            (* most recently added first = backing vector reversed *)
            for k = Vec.length v - 1 downto 0 do
              let packed = Vec.get v k in
              on_candidate ();
              if arity_of_packed packed <> arity then on_fail ()
              else begin
                let r = match rel_a with Some r -> r | None -> assert false in
                match walk r (row_of_packed packed) 0 [] with
                | None -> on_fail ()
                | Some locals ->
                    let b' =
                      List.fold_left
                        (fun b (x, cid) -> VarMap.add x (Symtab.extern st cid) b)
                        b locals
                    in
                    acc := f b' !acc
              end
            done;
            !acc)

(* ------------------------------------------------------------------ *)
(* Compiled atoms: the interned, allocation-free matching fast path      *)
(* ------------------------------------------------------------------ *)

(* A query atom compiled once per request against this store's symbol
   table. Constant arguments resolve to cell ids ([-1] when the constant
   is unknown to the store: a bound position that never matches);
   variable arguments resolve to slots of a caller-owned binding
   environment [benv] ([benv.(slot) >= 0] bound to that cell id, [-1]
   unbound). [c_trail] is private per-walk scratch: slots bound while
   matching one candidate row, undone before the next. *)
type catom = {
  c_pid : int;  (* interned predicate id; -1 = unknown predicate *)
  c_arity : int;
  c_cells : int array;  (* >= 0 const cid; -1 unknown const; -2 variable *)
  c_slots : int array;  (* per position: benv slot when c_cells.(i) = -2 *)
  c_trail : int array;
}

let compile_atom idx ~slot a =
  let st = idx.symtab in
  let args = Atom.args a in
  let arity = List.length args in
  let cells = Array.make arity (-2) and slots = Array.make arity (-1) in
  List.iteri
    (fun i t ->
      match t with
      | Const c -> cells.(i) <- Symtab.find_int st c
      | Var x -> slots.(i) <- slot x)
    args;
  {
    c_pid = Symtab.find_pred_int st (Atom.pred a);
    c_arity = arity;
    c_cells = cells;
    c_slots = slots;
    c_trail = Array.make (max arity 1) 0;
  }

(* The effective pattern id of position [i] under [benv], and whether the
   position counts as bound — mirrors the [cid >= -1] convention of
   [candidate_count]: a constant (known or not) is bound, a variable is
   bound iff its slot is. *)
let[@inline] cell_pattern ca benv i =
  let c = Array.unsafe_get ca.c_cells i in
  if c >= -1 then c else Array.unsafe_get benv (Array.unsafe_get ca.c_slots i)

let[@inline] cell_bound ca benv i =
  Array.unsafe_get ca.c_cells i >= -1 || cell_pattern ca benv i >= 0

(* Does the atom still contain an unbound variable under [benv]? The
   enumerator's atom-selection predicate. *)
let catom_unbound ca ~benv =
  let r = ref false in
  for i = 0 to ca.c_arity - 1 do
    if
      Array.unsafe_get ca.c_cells i = -2
      && Array.unsafe_get benv (Array.unsafe_get ca.c_slots i) < 0
    then r := true
  done;
  !r

(* [candidate_count], compiled: identical bucket arithmetic and
   first-strictly-smaller tie-breaking, no name resolution, no probe. *)
let catom_count idx ca ~benv =
  if ca.c_pid < 0 then 0
  else
    match entry idx ca.c_pid with
    | None -> 0
    | Some e ->
        let best = ref (-1) in
        for i = 0 to ca.c_arity - 1 do
          if cell_bound ca benv i then begin
            let cid = cell_pattern ca benv i in
            let n =
              if cid < 0 || i >= Array.length e.e_at then 0
              else
                try Vec.length (Hashtbl.find e.e_at.(i) cid)
                with Not_found -> 0
            in
            if !best < 0 || n < !best then best := n
          end
        done;
        if !best >= 0 then !best else Vec.length e.e_order

(* [fold_matches], compiled: same posting-list choice, candidate order
   (most recently added first) and [on_candidate]/[on_fail] accounting,
   but bindings go into [benv] in place (trail-undone per candidate and
   at exit) instead of a fresh [VarMap] per match, so a full search tree
   allocates nothing here. [f arg] runs with the extension visible in
   [benv]; returning [true] stops the walk (the satisfiability caller's
   early exit) and is returned. Non-injective only — the enumeration
   paths never ask for injectivity. Counts one [index.probes] probe,
   like the retrieval it replaces. *)
let fold_catom idx ca ~benv ~on_candidate ~on_fail (f : int -> bool) arg =
  Obs.Metrics.incr idx.c_probes;
  if ca.c_pid < 0 then false
  else
    match entry idx ca.c_pid with
    | None -> false
    | Some e -> (
        let arity = ca.c_arity in
        let best_i = ref (-1) and best_cid = ref (-1) and best_n = ref 0 in
        for i = 0 to arity - 1 do
          if cell_bound ca benv i then begin
            let cid = cell_pattern ca benv i in
            let n =
              if cid < 0 || i >= Array.length e.e_at then 0
              else
                try Vec.length (Hashtbl.find e.e_at.(i) cid)
                with Not_found -> 0
            in
            if !best_i < 0 || n < !best_n then begin
              best_i := i;
              best_cid := cid;
              best_n := n
            end
          end
        done;
        let seq =
          if !best_i < 0 then Some e.e_order
          else if !best_cid < 0 || !best_i >= Array.length e.e_at then None
          else Hashtbl.find_opt e.e_at.(!best_i) !best_cid
        in
        match seq with
        | None -> false
        | Some v ->
            let rel_a = rel_find e arity in
            let trail = ca.c_trail in
            let stopped = ref false in
            let k = ref (Vec.length v - 1) in
            while (not !stopped) && !k >= 0 do
              let packed = Vec.get v !k in
              decr k;
              on_candidate ();
              if arity_of_packed packed <> arity then on_fail ()
              else begin
                let r = match rel_a with Some r -> r | None -> assert false in
                let row = row_of_packed packed in
                let nt = ref 0 and ok = ref true and i = ref 0 in
                while !ok && !i < arity do
                  let cell = Vec.get r.r_cols.(!i) row in
                  let c = Array.unsafe_get ca.c_cells !i in
                  if c >= -1 then begin
                    if cell <> c then ok := false
                  end
                  else begin
                    let s = Array.unsafe_get ca.c_slots !i in
                    let cur = Array.unsafe_get benv s in
                    if cur >= 0 then begin
                      if cell <> cur then ok := false
                    end
                    else begin
                      benv.(s) <- cell;
                      trail.(!nt) <- s;
                      incr nt
                    end
                  end;
                  incr i
                done;
                if !ok then begin if f arg then stopped := true end
                else on_fail ();
                for j = 0 to !nt - 1 do
                  benv.(trail.(j)) <- -1
                done
              end
            done;
            !stopped)

(* Allocated capacity of the store's flat vectors, in words — the
   capacity-leak regression tests assert this stays put under
   insert/delete churn. Hash-table buckets are not counted (stdlib
   tables expose no capacity), but every growable vector is. *)
let capacity_words idx =
  let vec v = Vec.capacity v in
  Array.fold_left
    (fun acc e ->
      match e with
      | None -> acc
      | Some e ->
          let acc = acc + vec e.e_order in
          let acc =
            List.fold_left
              (fun acc r ->
                Array.fold_left (fun acc col -> acc + vec col) (acc + vec r.r_free) r.r_cols)
              acc e.e_rels
          in
          Array.fold_left
            (fun acc tbl -> Hashtbl.fold (fun _ v acc -> acc + vec v) tbl acc)
            acc e.e_at)
    0 idx.tabs.entries
