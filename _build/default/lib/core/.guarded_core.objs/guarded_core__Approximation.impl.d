lib/core/approximation.ml: Cq Cqs List Omq Relational Schema Specialization Tgds Ucq
