(** Open-world OMQ evaluation (§3.1): the baseline chase engine
    (Proposition 3.1), the FPT pipeline of Proposition 3.3(3), and exact
    atomic answering via the ground closure.

    [?budget] bounds the underlying chase (graceful cutoff; the verdict is
    then inexact). [?obs] collects phase spans: [rewrite] (linearization),
    [chase] (with its per-level children), [match]. *)

open Relational

type verdict = {
  holds : bool;  (** the tuple is a certain answer (as far as the run saw) *)
  exact : bool;  (** the verdict is known exact (saturation reached) *)
}

(** Baseline: level-bounded chase then evaluate. [holds = true] is always
    sound; the verdict is definitive when [exact]. Raises
    [Invalid_argument] when [db] is not over the data schema. *)
val certain :
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list ->
  verdict

(** The FPT pipeline (guarded ontologies): linearize, chase the linear
    set level-bounded, evaluate tree-like UCQs with {!Tw_eval}. *)
val certain_fpt :
  ?max_level:int ->
  ?max_facts:int ->
  ?max_types:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list ->
  verdict

(** Exact atomic certain answering under a guarded ontology (always
    terminating). *)
val certain_atomic : Tgds.Tgd.t list -> Instance.t -> Fact.t -> bool

(** The result of an answer-enumeration run. *)
type answer_set = {
  tuples : Term.const list list;
      (** canonical answer set: sorted, duplicate-free, null-free *)
  exact : bool;
      (** chase saturated, rewrite complete, enumeration uncut — the set
          is {e the} certain-answer set, not just a sound subset *)
  outcome : Obs.Budget.outcome;
      (** [Partial v] when the budget cut the chase or the enumeration *)
}

(** [answer_set q db] — certain answers over active-domain tuples,
    enumerated output-sensitively via {!Engine.Enumerate} (cost scales
    with the answers found, not [|adom|^arity]). [fpt] routes through the
    Proposition 3.3(3) linearization (guarded ontologies only; raises
    [Invalid_argument] otherwise). The budget's fact axis bounds chase
    facts and emitted answers; a cut run returns a sound prefix. *)
val answer_set :
  ?engine:Tgds.Chase.engine ->
  ?fpt:bool ->
  ?max_level:int ->
  ?max_facts:int ->
  ?max_types:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  answer_set

(** Certain answers over active-domain tuples; the boolean reports
    exactness. Compatibility wrapper around {!answer_set} — the returned
    set is canonical (sorted, duplicate-free). *)
val answers :
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list list * bool
