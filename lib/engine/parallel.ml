(** Deterministic parallel trigger collection; see the interface for the
    determinism argument. Workers only ever {e read} the index (through
    per-shard {!Index.reader} views) and never touch the probe hook. The
    work that used to replay sequentially on the calling domain — trigger
    dedup and [Restricted] policy checks — now happens shard-locally:
    each worker dedups the keys of its own slice (plus the frozen
    pre-pass [fired] table) and runs the policy check for its locally
    first occurrence of a key, recording the verdict together with the
    check's counter increments. The merge walk is then a concatenation in
    shard order that replays only cheap, canonical effects: a hash-table
    dedup per binding and, for a surviving key, the recorded verdict's
    probe hit and counter deltas. *)

open Relational

type join = { rule : int; atoms : Atom.t list; delta : Fact.t list }

type job =
  | Bodiless of int
      (** rule index; considered once with the empty binding *)
  | Join of join
      (** [atoms] is the pivot-first reordered body; [delta] the facts the
          pivot is matched against, in canonical (firing) order *)

type verdict = {
  v_active : bool;
  v_probes : int;
  v_candidates : int;
  v_backtracks : int;
}

type key = int * Term.const option list

let now = Unix.gettimeofday

let collect ~pool ~index ~fired ~key_of ~check jobs ~consider =
  let n = Shard.size pool in
  let joins =
    Array.of_list
      (List.filter_map (function Join j -> Some j | Bodiless _ -> None) jobs)
  in
  let m = Array.length joins in
  let deltas = Array.map (fun j -> Array.of_list j.delta) joins in
  (* results.(s).(k): bindings shard [s] found on its slice of join [k]
     in discovery order, each with the verdict of the policy check when
     this shard ran it (its locally-first sighting of the key) *)
  let results : (Homomorphism.binding * verdict option) list array array =
    Array.make_matrix n m []
  in
  let readers = Array.init n (fun _ -> Index.reader index) in
  (* separate readers for policy checks: their counters must not be
     absorbed wholesale — a check's increments only count if its key
     survives the canonical dedup, so they are carried on the verdict
     and replayed selectively during the merge walk *)
  let checkers = Array.init n (fun _ -> Index.reader index) in
  let t0 = now () in
  (* Deterministic worker-death drill: the calling domain hits the
     [parallel.worker] probe once per shard before dispatch (workers
     themselves never touch the process-global probe hook); an armed
     fault plan firing here marks that shard dead for this pass. The
     containment below replays a dead shard's slice on the calling
     domain after the join — slices are deterministic functions of the
     frozen index, so the merge (and hence the chase output) is
     byte-identical whether or not a worker died. *)
  let dead = Array.make n false in
  for s = 0 to n - 1 do
    try Obs.Probe.hit "parallel.worker" with _ -> dead.(s) <- true
  done;
  let deaths = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dead in
  let slice_task s () =
    let rdr = readers.(s) in
    let crdr = checkers.(s) in
    let cm = Index.metrics crdr in
    let cp = Obs.Metrics.counter cm "index.probes" in
    let cc = Obs.Metrics.counter cm "joiner.candidates" in
    let cb = Obs.Metrics.counter cm "joiner.backtracks" in
    (* keys this shard has already judged this pass; [fired] is frozen
       during collection, so reading it from worker domains is safe *)
    let memo : (key, unit) Hashtbl.t = Hashtbl.create 64 in
    let judge rule b =
      match check with
      | None -> None
      | Some chk ->
          let key = key_of rule b in
          if Hashtbl.mem fired key || Hashtbl.mem memo key then None
          else begin
            Hashtbl.replace memo key ();
            let p0 = Obs.Metrics.value cp
            and c0 = Obs.Metrics.value cc
            and b0 = Obs.Metrics.value cb in
            let active = chk rule b crdr in
            Some
              {
                v_active = active;
                v_probes = Obs.Metrics.value cp - p0;
                v_candidates = Obs.Metrics.value cc - c0;
                v_backtracks = Obs.Metrics.value cb - b0;
              }
          end
    in
    for k = 0 to m - 1 do
      let d = deltas.(k) in
      let len = Array.length d in
      (* contiguous slice [s·len/n, (s+1)·len/n): the concatenation over
         shards is exactly the canonical delta order *)
      let lo = s * len / n and hi = (s + 1) * len / n in
      if hi > lo then begin
        let slice = Array.to_list (Array.sub d lo (hi - lo)) in
        results.(s).(k) <-
          List.rev
            (Joiner.fold ~probe:false ~delta:slice joins.(k).atoms rdr
               (fun b acc -> (b, judge joins.(k).rule b) :: acc)
               [])
      end
    done
  in
  Shard.run pool
    (Array.init n (fun s -> if dead.(s) then fun () -> () else slice_task s));
  (* containment: dead shards' slices replay sequentially on the calling
     domain, filling the same results rows they would have filled *)
  for s = 0 to n - 1 do
    if dead.(s) then slice_task s ()
  done;
  let t1 = now () in
  let main_m = Index.metrics index in
  if deaths > 0 then
    Obs.Metrics.add (Obs.Metrics.counter main_m "parallel.worker_deaths") deaths;
  (* shard-local matching counters merge in shard order; the totals equal
     the sequential engine's because slicing partitions each join's
     per-fact work exactly. Checker registries are deliberately not
     absorbed (see above). *)
  Array.iter
    (fun rdr -> Obs.Metrics.absorb ~into:main_m (Index.metrics rdr))
    readers;
  Array.iter
    (fun row ->
      let matched = Array.fold_left (fun a l -> a + List.length l) 0 row in
      Obs.Metrics.observe main_m "parallel.shard_matched" (float_of_int matched))
    results;
  (* canonical merge: jobs in rule-major order; within a join, shard 0's
     bindings first, then shard 1's, … — i.e. the sequential engine's
     discovery order, so dedup, replayed policy verdicts and fresh-null
     assignment downstream are byte-identical for every domain count *)
  let k = ref 0 in
  List.iter
    (function
      | Bodiless i -> consider i Term.VarMap.empty None
      | Join { rule; _ } ->
          (* one probe hit per join, mirroring the sequential engine's
             single [Joiner.fold] call for this (rule, pivot) pair *)
          Obs.Probe.hit "engine.join";
          for s = 0 to n - 1 do
            List.iter (fun (b, v) -> consider rule b v) results.(s).(!k)
          done;
          incr k)
    jobs;
  Obs.Metrics.observe main_m "parallel.match_s" (t1 -. t0);
  Obs.Metrics.observe main_m "parallel.merge_s" (now () -. t1);
  deaths
