lib/core/equivalence.mli: Cqs Omq Sigma_containment
