lib/relational/cq.mli: Atom Format Instance Qgraph Schema Term
