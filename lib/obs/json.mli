(** Minimal JSON values with deterministic serialisation.

    The observability layer reports runs as JSON; serialisation is fully
    deterministic (object fields keep their given order, floats print with
    a fixed format), so reports are golden-testable once volatile timing
    values are normalised with {!map_floats}. The parser is the inverse on
    the serialiser's output and accepts ordinary interchange JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialise; one line, no trailing newline. *)
val to_string : t -> string

(** [to_channel oc j] — serialise followed by a newline. *)
val to_channel : out_channel -> t -> unit

(** [parse s] — parse a complete JSON document (trailing whitespace
    allowed). Numbers without [.]/[e] become [Int], others [Float]. *)
val parse : string -> (t, string) result

(** [member key j] — field lookup in an object ([None] otherwise). *)
val member : string -> t -> t option

(** [map_floats f j] — rewrite every [Float] leaf (used by golden tests
    to normalise timings). *)
val map_floats : (float -> float) -> t -> t

(** Recursively sort object fields by key (order-insensitive compare). *)
val sort_keys : t -> t
