(** Lexer for the Datalog±-style surface language. *)

type token =
  | Ident of string  (** lowercase-initial identifier *)
  | Upper of string  (** uppercase-initial identifier (a variable) *)
  | Int of int
  | Lparen
  | Rparen
  | Comma
  | Period
  | Slash
  | Plus  (** "+" (mutation logs) *)
  | Minus  (** "-" not followed by ">" (mutation logs) *)
  | Arrow  (** "->" *)
  | Turnstile  (** ":-" *)
  | Eof

type lexeme = { token : token; line : int; col : int }

exception Error of string * int * int

val pp_token : Format.formatter -> token -> unit

(** The lexemes of the input, ending with [Eof]; [%] starts a line
    comment. Raises {!Error} with a position on bad characters. *)
val tokenize : string -> lexeme list
