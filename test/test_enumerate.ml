(* Differential suite for the interned answer-enumeration path.

   The goldens below were produced by the pre-interning enumerator (the
   PR 9 tree: VarMap bindings, const-list seen table, materialized
   accumulator) over deterministic workloads, and pin the *observable*
   enumeration contract so the representation underneath can change
   without anything noticing — the same way test_store.ml pinned the
   columnar store swap:

   - answer sets (rendered tuples, outcome, count) are byte-identical
     across {Indexed, Parallel 1, Parallel 2, Parallel 4};
   - budgeted runs return the same Partial *prefix*: the emission order
     of the search is part of the contract, because a served reply
     renders whatever prefix the budget left;
   - the interned fast path (`Enumerate.run_interned`) agrees with the
     classic materializing API on every workload, under shared-scratch
     reuse across requests, and its per-request allocation stays within
     a fixed minor-words envelope (the E22 regression bound). *)

open Relational
module Chase = Tgds.Chase

(* ------------------------------------------------------------------ *)
(* Deterministic workloads                                              *)
(* ------------------------------------------------------------------ *)

(* QCheck generators driven by a fixed PRNG seed: workload [k] is a
   function of [k] alone, so the committed goldens are reproducible. *)
let gen_workload k =
  let rand = Random.State.make [| 0xE22; k |] in
  let g gen = QCheck.Gen.generate1 ~rand gen in
  let sigma = g Generators.gen_sigma in
  let db = g Generators.gen_db in
  let queries = List.init 3 (fun _ -> g Generators.gen_ucq) in
  (sigma, db, queries)

let n_workloads = 10

let chase_budget () = Obs.Budget.create ~max_facts:120 ~max_levels:5 ()

let saturate ~engine sigma db =
  Term.reset_nulls ();
  Chase.run ~engine ~policy:Chase.Restricted ~budget:(chase_budget ()) sigma db

let render_const = function
  | Term.Named s -> s
  | Term.Null i -> "_:n" ^ string_of_int i

let render_tuple t = "(" ^ String.concat "," (List.map render_const t) ^ ")"

let render_outcome = function
  | Obs.Budget.Complete -> "complete"
  | Obs.Budget.Partial _ -> "partial"

let render_result (res : Engine.Enumerate.result) =
  Fmt.str "%s n=%d%s"
    (render_outcome res.Engine.Enumerate.outcome)
    (List.length res.Engine.Enumerate.answers)
    (String.concat ""
       (List.map (fun t -> " " ^ render_tuple t) res.Engine.Enumerate.answers))

(* One line per (workload, query): the full answer set, and the Partial
   prefix under a 3-answer budget (which pins emission order, not just
   the set). *)
let observe ~engine k =
  let sigma, db, queries = gen_workload k in
  let r = saturate ~engine sigma db in
  let idx = Chase.index r in
  let universe = Instance.dom db in
  List.concat
    (List.mapi
       (fun j q ->
         let full = Engine.Enumerate.ucq ~universe idx q in
         let budget = Obs.Budget.create ~max_facts:3 () in
         let cut = Engine.Enumerate.ucq ~budget ~universe idx q in
         [
           Fmt.str "%d.%d full %s" k j (render_result full);
           Fmt.str "%d.%d cut3 %s" k j (render_result cut);
         ])
       queries)

let family = [ `Indexed; `Parallel 1; `Parallel 2; `Parallel 4 ]

let engine_name = function
  | `Indexed -> "indexed"
  | `Parallel n -> Fmt.str "parallel:%d" n
  | `Naive -> "naive"

(* ------------------------------------------------------------------ *)
(* Goldens: pre-interning enumerator output (PR 9 tree). Regenerate     *)
(* with ENUM_GOLDEN_REGEN=1 dune exec test/test_enumerate.exe -- only   *)
(* when the *semantic* contract changes, never for a representation     *)
(* change.                                                              *)
(* ------------------------------------------------------------------ *)

let golden : string list =
[
    "0.0 full complete n=1 ()";
    "0.0 cut3 complete n=1 ()";
    "0.1 full complete n=1 (c)";
    "0.1 cut3 complete n=1 (c)";
    "0.2 full complete n=0";
    "0.2 cut3 complete n=0";
    "1.0 full complete n=9 (a,a,c) (a,b,c) (a,c,c) (b,a,c) (b,b,c) (b,c,c) (c,a,c) (c,b,c) (c,c,c)";
    "1.0 cut3 partial n=4 (a,a,c) (a,b,c) (a,c,c) (b,a,c)";
    "1.1 full complete n=0";
    "1.1 cut3 complete n=0";
    "1.2 full complete n=0";
    "1.2 cut3 complete n=0";
    "2.0 full complete n=1 ()";
    "2.0 cut3 complete n=1 ()";
    "2.1 full complete n=1 ()";
    "2.1 cut3 complete n=1 ()";
    "2.2 full complete n=2 (a,a) (a,c)";
    "2.2 cut3 complete n=2 (a,a) (a,c)";
    "3.0 full complete n=2 (a,a) (b,a)";
    "3.0 cut3 complete n=2 (a,a) (b,a)";
    "3.1 full complete n=0";
    "3.1 cut3 complete n=0";
    "3.2 full complete n=0";
    "3.2 cut3 complete n=0";
    "4.0 full complete n=0";
    "4.0 cut3 complete n=0";
    "4.1 full complete n=0";
    "4.1 cut3 complete n=0";
    "4.2 full complete n=1 (c)";
    "4.2 cut3 complete n=1 (c)";
    "5.0 full complete n=0";
    "5.0 cut3 complete n=0";
    "5.1 full complete n=0";
    "5.1 cut3 complete n=0";
    "5.2 full complete n=2 (a) (c)";
    "5.2 cut3 complete n=2 (a) (c)";
    "6.0 full complete n=3 (a,c) (b,c) (c,c)";
    "6.0 cut3 complete n=3 (a,c) (b,c) (c,c)";
    "6.1 full complete n=0";
    "6.1 cut3 complete n=0";
    "6.2 full complete n=0";
    "6.2 cut3 complete n=0";
    "7.0 full complete n=2 (a) (b)";
    "7.0 cut3 complete n=2 (a) (b)";
    "7.1 full complete n=6 (a,a) (a,b) (a,c) (b,a) (b,b) (b,c)";
    "7.1 cut3 partial n=4 (a,a) (a,b) (a,c) (b,a)";
    "7.2 full complete n=1 ()";
    "7.2 cut3 complete n=1 ()";
    "8.0 full complete n=1 (b,b)";
    "8.0 cut3 complete n=1 (b,b)";
    "8.1 full complete n=1 (b,b,b)";
    "8.1 cut3 complete n=1 (b,b,b)";
    "8.2 full complete n=1 (b)";
    "8.2 cut3 complete n=1 (b)";
    "9.0 full complete n=0";
    "9.0 cut3 complete n=0";
    "9.1 full complete n=2 (b) (c)";
    "9.1 cut3 complete n=2 (b) (c)";
    "9.2 full complete n=2 (b) (c)";
    "9.2 cut3 complete n=2 (b) (c)";
  ]

let test_golden_engine engine () =
  let got = List.concat (List.init n_workloads (observe ~engine)) in
  Alcotest.(check (list string))
    (Fmt.str "pre-refactor answer goldens (%s)" (engine_name engine))
    golden got

let regen () =
  let lines = List.concat (List.init n_workloads (observe ~engine:`Indexed)) in
  print_string "  [\n";
  List.iter (fun l -> Printf.printf "    %S;\n" l) lines;
  print_string "  ]\n"

(* ------------------------------------------------------------------ *)
(* Interned fast path                                                   *)
(* ------------------------------------------------------------------ *)

(* The server's request path: one ctx per worker, reused across every
   request it serves. Running all of a workload's queries through a
   single shared ctx must reproduce the same goldens. *)
let observe_interned k =
  let sigma, db, queries = gen_workload k in
  let r = saturate ~engine:`Indexed sigma db in
  let cx = Engine.Enumerate.ctx ~universe:(Instance.dom db) (Chase.index r) in
  List.concat
    (List.mapi
       (fun j q ->
         let full =
           Engine.Enumerate.materialize (Engine.Enumerate.ucq_interned cx q)
         in
         let budget = Obs.Budget.create ~max_facts:3 () in
         let cut =
           Engine.Enumerate.materialize
             (Engine.Enumerate.ucq_interned ~budget cx q)
         in
         [
           Fmt.str "%d.%d full %s" k j (render_result full);
           Fmt.str "%d.%d cut3 %s" k j (render_result cut);
         ])
       queries)

let test_interned_differential () =
  let got = List.concat (List.init n_workloads observe_interned) in
  Alcotest.(check (list string))
    "interned path through one shared ctx matches the goldens" golden got

(* An interned result must not alias the ctx's reusable scratch: collect
   results first, clobber the ctx with more requests, render afterwards. *)
let test_interned_results_survive_ctx_reuse () =
  List.iter
    (fun k ->
      let sigma, db, queries = gen_workload k in
      let r = saturate ~engine:`Indexed sigma db in
      let cx =
        Engine.Enumerate.ctx ~universe:(Instance.dom db) (Chase.index r)
      in
      let held =
        List.map (fun q -> Engine.Enumerate.ucq_interned cx q) queries
      in
      (* a second pass over every query reuses the arena, the seen-set
         and the binding scratch the held results must not share *)
      List.iter
        (fun q -> ignore (Engine.Enumerate.ucq_interned cx q))
        queries;
      (* observe's lines alternate full/cut3; keep the full ones *)
      let expected =
        List.filteri (fun i _ -> i mod 2 = 0) (observe ~engine:`Indexed k)
      in
      let got =
        List.mapi
          (fun j res ->
            Fmt.str "%d.%d full %s" k j
              (render_result (Engine.Enumerate.materialize res)))
          held
      in
      Alcotest.(check (list string))
        (Fmt.str "held results unchanged by ctx reuse (workload %d)" k)
        expected got)
    [ 1; 2; 7; 8 ]

(* The E22 regression bound: a served request through a warm ctx must
   stay inside a fixed minor-heap envelope. The pre-interning enumerator
   allocated O(search tree) — VarMap rebinds per node, const tuples per
   seen-set probe — and sat far outside this bound; the interned path
   allocates O(query + answers). The envelope has ~3x headroom over the
   measured cost so it only fails on a real regression, not on noise. *)
let test_request_allocation_bound () =
  let sigma, db, queries = gen_workload 1 in
  let r = saturate ~engine:`Indexed sigma db in
  let cx = Engine.Enumerate.ctx ~universe:(Instance.dom db) (Chase.index r) in
  let q = List.hd queries in
  for _ = 1 to 3 do
    ignore (Engine.Enumerate.ucq_interned cx q)
  done;
  let reps = 1000 in
  let m0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Engine.Enumerate.icount (Engine.Enumerate.ucq_interned cx q))
  done;
  let per = (Gc.minor_words () -. m0) /. float_of_int reps in
  Alcotest.(check bool)
    (Fmt.str "per-request minor words within envelope (measured %.0f)" per)
    true
    (per < 1000.)

let () =
  if Sys.getenv_opt "ENUM_GOLDEN_REGEN" <> None then regen ()
  else
    Alcotest.run "enumerate"
      [
        ( "golden",
          List.map
            (fun e ->
              Alcotest.test_case
                (Fmt.str "answers byte-identical (%s)" (engine_name e))
                `Quick (test_golden_engine e))
            family );
        ( "interned",
          [
            Alcotest.test_case "shared-ctx differential" `Quick
              test_interned_differential;
            Alcotest.test_case "results survive ctx reuse" `Quick
              test_interned_results_survive_ctx_reuse;
            Alcotest.test_case "request allocation envelope" `Quick
              test_request_allocation_bound;
          ] );
      ]
