lib/qgraph/treewidth.ml: Array Graph Hashtbl List Logs Tree_decomposition
