(** The meta problems: deciding (uniform) UCQk-equivalence
    (Theorems 5.1/5.6/5.10) via approximation + chase containment.
    Three-valued verdicts (the 2ATA machinery of Appendix B is replaced by
    the chase/finite-witness backend; DESIGN.md §5.1). *)

type verdict = Sigma_containment.verdict = Holds | Fails | Unknown

(** Uniform UCQk-equivalence of a CQS (Proposition 5.11); exact for
    FG_m CQSs when [k ≥ Approximation.cqs_threshold s] (warning logged
    below). Returns the witnessing equivalent CQS when it holds. *)
val cqs_uniformly_ucqk_equivalent :
  ?max_level:int -> ?max_facts:int -> int -> Cqs.t -> verdict * Cqs.t option

(** UCQk-equivalence of a full-data-schema guarded OMQ (via
    Propositions 5.2 and 5.5); [Unknown] on proper data schemas. *)
val omq_ucqk_equivalent :
  ?max_level:int -> ?max_facts:int -> int -> Omq.t -> verdict * Omq.t option

(** The faithful Definition C.6 route (small queries only). *)
val omq_grounding_equivalent :
  ?max_level:int ->
  ?max_facts:int ->
  ?max_side:int ->
  int ->
  Omq.t ->
  verdict * Omq.t option

(** The least [k ≤ limit] with the CQS uniformly UCQk-equivalent, if
    any. *)
val semantic_ucq_treewidth :
  ?max_level:int -> ?max_facts:int -> ?limit:int -> Cqs.t -> (int * Cqs.t) option
