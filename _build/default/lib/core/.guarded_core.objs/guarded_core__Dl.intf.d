lib/core/dl.mli: Fact Format Relational Tgds
