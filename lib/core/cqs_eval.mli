(** Closed-world CQS evaluation (§3.2) with constraint-aware semantic
    optimization — the executable content of the tractable direction of
    Theorems 5.7/5.12. [?obs] collects phase spans: [rewrite], [index],
    [match]. *)

open Relational

(** [eval s db c̄] — direct evaluation (the input is promised to satisfy
    the constraints; see {!Cqs.admissible}). *)
val eval : ?obs:Obs.Span.t -> Cqs.t -> Instance.t -> Term.const list -> bool

(** Same, through the Proposition 2.1 evaluator. *)
val eval_tw : ?obs:Obs.Span.t -> Cqs.t -> Instance.t -> Term.const list -> bool

(** Replace the query by a Σ-equivalent minimized UCQ. *)
val optimize : ?obs:Obs.Span.t -> Cqs.t -> Cqs.t

(** Minimize under Σ, then evaluate with the treewidth-aware engine. *)
val eval_optimized :
  ?obs:Obs.Span.t -> Cqs.t -> Instance.t -> Term.const list -> bool

(** [answer_set s db] — the answer set, enumerated output-sensitively
    via {!Engine.Enumerate}; a budget cuts the stream gracefully (the
    prefix is a subset of the exact set). Answer variables occurring in
    no atom range over the active domain. *)
val answer_set :
  ?optimize_first:bool ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Cqs.t ->
  Instance.t ->
  Engine.Enumerate.result

(** All answers (of the optionally optimized query), as a canonical
    sorted set. *)
val answers :
  ?optimize_first:bool ->
  ?obs:Obs.Span.t ->
  Cqs.t ->
  Instance.t ->
  Term.const list list
