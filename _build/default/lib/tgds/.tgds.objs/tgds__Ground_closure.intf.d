lib/tgds/ground_closure.mli: Fact Instance Relational Term Tgd
