(** Resource budgets for potentially non-terminating runs.

    A budget bounds a saturation-style computation along three axes: total
    facts materialised, levels (passes) executed, and wall-clock time. The
    engine polls {!check} at its natural cut points and stops {e
    gracefully} on the first violation — the partial result is kept and
    the run's outcome records which limit fired, instead of the engine
    looping forever on a non-terminating chase.

    Semantics (matching the naive chase's historical cutoffs):
    - [Facts]: violated when the fact count {e exceeds} [max_facts] (the
      overflowing trigger still completes, so multi-atom heads stay
      atomic);
    - [Levels]: violated when a level {e beyond} [max_levels] would start;
    - [Deadline]: violated once wall time since {!create} exceeds
      [max_ms]. *)

type t

type violation =
  | Facts of int  (** the configured fact limit *)
  | Levels of int  (** the configured level limit *)
  | Deadline of float  (** the configured wall-clock limit, ms *)

(** A run either completed (fixpoint reached) or was cut by a budget. *)
type outcome = Complete | Partial of violation

(** No limits; {!check} never fires. *)
val unlimited : t

(** [create ?clock ?max_facts ?max_levels ?max_ms ()] — the deadline
    clock starts now. [clock] is wall-clock seconds (tests inject fake
    time); defaults to [Unix.gettimeofday]. *)
val create :
  ?clock:(unit -> float) ->
  ?max_facts:int ->
  ?max_levels:int ->
  ?max_ms:float ->
  unit ->
  t

(** Pointwise strictest combination (min limits, earliest deadline). *)
val meet : t -> t -> t

(** [check b ~facts ~level] — first violated limit, if any. [facts] is the
    current total; [level] the level about to run (checks are cheap: the
    clock is read only when a deadline is set). *)
val check : t -> facts:int -> level:int -> violation option

val max_facts : t -> int
val max_levels : t -> int

val pp_violation : Format.formatter -> violation -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** [{"status": "complete"}] or
    [{"status": "partial"; "reason"; "limit"}]. *)
val outcome_to_json : outcome -> Json.t
