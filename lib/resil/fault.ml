(** Deterministic fault injection over the global probe hook; see the
    interface. *)

exception Injected of string * int

type trigger =
  | At_hit of int
  | At_point of string * int
  | Every_point of string
  | After_ms of float

type plan = trigger list

let none : plan = []

let stateless (plan : plan) =
  plan <> []
  && List.for_all (function Every_point _ -> true | _ -> false) plan

let trigger_for plan ~attempt =
  if attempt < 1 then None else List.nth_opt plan (attempt - 1)

(* The hook Fault itself installed, remembered so {!suspended} can lift
   and re-install it (with its counters intact) around recovery code. *)
let installed : (string -> unit) option ref = ref None

let install_hook f =
  installed := Some f;
  Obs.Probe.install f

let arm ?(clock = Unix.gettimeofday) trig =
  match trig with
  | At_hit n ->
      let hits = ref 0 in
      install_hook (fun point ->
          incr hits;
          if !hits >= n then raise (Injected (point, !hits)))
  | At_point (name, n) ->
      let total = ref 0 and named = ref 0 in
      install_hook (fun point ->
          incr total;
          if String.equal point name then begin
            incr named;
            if !named >= n then raise (Injected (point, !total))
          end)
  | Every_point name ->
      (* no counters: safe to hit from concurrent domains, and the
         payload is a fixed hit number so reply bytes stay canonical *)
      install_hook (fun point ->
          if String.equal point name then raise (Injected (point, 1)))
  | After_ms ms ->
      let t0 = clock () in
      let hits = ref 0 in
      install_hook (fun point ->
          incr hits;
          if (clock () -. t0) *. 1000. >= ms then raise (Injected (point, !hits)))

let disarm () =
  installed := None;
  Obs.Probe.clear ()

let arm_seq ?(clock = Unix.gettimeofday) (plan : plan) =
  match plan with
  | [] -> disarm ()
  | _ when stateless plan ->
      (* no trigger state to advance: fire at every hit of any named
         point, forever. The counterless hook is safe to hit from
         concurrent domains. *)
      let names =
        List.filter_map
          (function Every_point n -> Some n | _ -> None)
          plan
      in
      install_hook (fun point ->
          if List.exists (String.equal point) names then
            raise (Injected (point, 1)))
  | _ ->
      let plan = Array.of_list plan in
      let idx = ref 0 and total = ref 0 in
      (* per-trigger counters, reset each time the sequence advances so
         every trigger counts relative to its own arming moment, exactly
         like a fresh {!arm} *)
      let hits = ref 0 and named = ref 0 in
      let t0 = ref (clock ()) in
      install_hook (fun point ->
          incr total;
          if !idx < Array.length plan then begin
            incr hits;
            let fire () =
              incr idx;
              hits := 0;
              named := 0;
              t0 := clock ();
              raise (Injected (point, !total))
            in
            match plan.(!idx) with
            | At_hit n -> if !hits >= n then fire ()
            | At_point (name, n) ->
                if String.equal point name then begin
                  incr named;
                  if !named >= n then fire ()
                end
            | Every_point name ->
                (* never advances: once live, it fires at every hit of
                   the named point, so later triggers stay dormant *)
                if String.equal point name then
                  raise (Injected (point, !total))
            | After_ms ms ->
                if (clock () -. !t0) *. 1000. >= ms then fire ()
          end)

let suspended f =
  match !installed with
  | None -> f ()
  | Some h ->
      Obs.Probe.clear ();
      Fun.protect ~finally:(fun () -> Obs.Probe.install h) f

let with_trigger ?clock trig f =
  (match trig with None -> disarm () | Some t -> arm ?clock t);
  Fun.protect ~finally:disarm f

(* Fixed 31-bit LCG so plans are reproducible across platforms. *)
let random ~seed ?(attempts = 3) ?(max_hits = 500) () =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let max_hits = max 1 max_hits in
  List.init attempts (fun _ -> At_hit (1 + (next () mod max_hits)))

let to_string = function
  | [] -> "none"
  | plan ->
      String.concat ","
        (List.map
           (function
             | At_hit n -> Printf.sprintf "hit:%d" n
             | At_point (name, n) -> Printf.sprintf "point:%s:%d" name n
             | Every_point name -> Printf.sprintf "point:%s:*" name
             | After_ms ms -> Printf.sprintf "ms:%g" ms)
           plan)

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else if String.length s >= 5 && String.sub s 0 5 = "seed:" then
    match String.split_on_char ':' s with
    | [ _; seed ] -> (
        match int_of_string_opt seed with
        | Some seed -> Ok (random ~seed ())
        | None -> Error (Printf.sprintf "fault plan: bad seed %S" seed))
    | [ _; seed; attempts ] -> (
        match (int_of_string_opt seed, int_of_string_opt attempts) with
        | Some seed, Some attempts when attempts >= 0 ->
            Ok (random ~seed ~attempts ())
        | _ -> Error (Printf.sprintf "fault plan: bad seed spec %S" s))
    | _ -> Error (Printf.sprintf "fault plan: bad seed spec %S" s)
  else
    let parse_trigger tok =
      match String.split_on_char ':' tok with
      | [ "hit"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (At_hit n)
          | _ -> Error (Printf.sprintf "fault plan: bad hit count %S" n))
      | [ "point"; name; "*" ] when name <> "" -> Ok (Every_point name)
      | [ "point"; name; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 && name <> "" -> Ok (At_point (name, n))
          | _ -> Error (Printf.sprintf "fault plan: bad point trigger %S" tok))
      | [ "ms"; x ] -> (
          match float_of_string_opt x with
          | Some ms when ms >= 0. -> Ok (After_ms ms)
          | _ -> Error (Printf.sprintf "fault plan: bad deadline %S" x))
      | _ ->
          Error
            (Printf.sprintf
               "fault plan: unknown trigger %S (want hit:N, point:NAME:N or \
                ms:X)"
               tok)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match parse_trigger (String.trim tok) with
          | Ok t -> go (t :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)
