lib/core/cqs.mli: Format Instance Omq Relational Schema Tgds Ucq
