lib/relational/atom.ml: ConstSet Fmt List Stdlib Term VarMap VarSet
