(** Counters and duration histograms; see the interface. *)

type counter = { mutable n : int }

(* log-spaced upper bounds in seconds (1–2–5 per decade, so bucket
   quantiles stay within a factor ~2.5 of the truth); a final overflow
   bucket catches the rest *)
let bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 1e-1; 2e-1; 5e-1; 1.; 2.; 5.; 10.;
  |]

type histo = {
  mutable hcount : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  hits : int array;  (* length = Array.length bounds + 1 *)
}

type t = {
  cs : (string, counter) Hashtbl.t;
  hs : (string, histo) Hashtbl.t;
}

let create () = { cs = Hashtbl.create 16; hs = Hashtbl.create 8 }

let counter m name =
  match Hashtbl.find_opt m.cs name with
  | Some c -> c
  | None ->
      let c = { n = 0 } in
      Hashtbl.replace m.cs name c;
      c

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n

let count m name =
  match Hashtbl.find_opt m.cs name with Some c -> c.n | None -> 0

let histo m name =
  match Hashtbl.find_opt m.hs name with
  | Some h -> h
  | None ->
      let h =
        {
          hcount = 0;
          sum = 0.;
          vmin = infinity;
          vmax = neg_infinity;
          hits = Array.make (Array.length bounds + 1) 0;
        }
      in
      Hashtbl.replace m.hs name h;
      h

let observe m name v =
  let h = histo m name in
  h.hcount <- h.hcount + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let rec slot i =
    if i >= Array.length bounds then i else if v <= bounds.(i) then i else slot (i + 1)
  in
  let s = slot 0 in
  h.hits.(s) <- h.hits.(s) + 1

let counters m =
  Hashtbl.fold (fun name c acc -> (name, c.n) :: acc) m.cs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let absorb ~into src =
  List.iter (fun (name, v) -> add (counter into name) v) (counters src);
  (* histograms merge bucket-wise: counts and sums add, the extrema take
     the pointwise min/max — absorbing worker registries in shard order
     yields the same merged histogram as observing on one registry *)
  Hashtbl.iter
    (fun name (h : histo) ->
      if h.hcount > 0 then begin
        let g = histo into name in
        g.hcount <- g.hcount + h.hcount;
        g.sum <- g.sum +. h.sum;
        if h.vmin < g.vmin then g.vmin <- h.vmin;
        if h.vmax > g.vmax then g.vmax <- h.vmax;
        Array.iteri (fun i n -> g.hits.(i) <- g.hits.(i) + n) h.hits
      end)
    src.hs

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let summarize h =
  let buckets = ref [] in
  for i = Array.length h.hits - 1 downto 0 do
    if h.hits.(i) > 0 then
      let bound = if i < Array.length bounds then bounds.(i) else infinity in
      buckets := (bound, h.hits.(i)) :: !buckets
  done;
  {
    count = h.hcount;
    sum = h.sum;
    min = (if h.hcount = 0 then 0. else h.vmin);
    max = (if h.hcount = 0 then 0. else h.vmax);
    buckets = !buckets;
  }

let histograms m =
  Hashtbl.fold (fun name h acc -> (name, summarize h) :: acc) m.hs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let quantile m name q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Metrics.quantile: q not in [0,1]";
  match Hashtbl.find_opt m.hs name with
  | None -> None
  | Some h when h.hcount = 0 -> None
  | Some h ->
      (* rank interpolation within the first bucket whose cumulative count
         covers q·n, clamped to the observed extrema (which are exact) *)
      let target = q *. float_of_int h.hcount in
      let nb = Array.length h.hits in
      let rec go i cum =
        if i >= nb then h.vmax
        else if h.hits.(i) > 0 && float_of_int (cum + h.hits.(i)) >= target
        then begin
          let hi = if i < Array.length bounds then bounds.(i) else h.vmax in
          let lo = if i = 0 then 0. else bounds.(i - 1) in
          let frac =
            (target -. float_of_int cum) /. float_of_int h.hits.(i)
          in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) (cum + h.hits.(i))
      in
      Some (Float.max h.vmin (Float.min h.vmax (go 0 0)))

let to_json m =
  let counters_json =
    Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (counters m))
  in
  let histo_json (name, s) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int s.count);
          ("sum_s", Json.Float s.sum);
          ("min_s", Json.Float s.min);
          ("max_s", Json.Float s.max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, hits) ->
                   Json.Obj
                     [
                       ( "le_s",
                         if bound = infinity then Json.String "inf"
                         else Json.Float bound );
                       ("hits", Json.Int hits);
                     ])
                 s.buckets) );
        ] )
  in
  Json.Obj
    [
      ("counters", counters_json);
      ("histograms", Json.Obj (List.map histo_json (histograms m)));
    ]
