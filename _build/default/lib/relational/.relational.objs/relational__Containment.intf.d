lib/relational/containment.mli: Cq Ucq
