lib/core/sigma_containment.mli: Cq Format Relational Tgds Ucq
