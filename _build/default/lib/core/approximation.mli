(** UCQk-approximations: the contraction-based [S^a_k] for FG_m CQSs
    (Proposition 5.11) and the grounding-based [Q^a_k] of Definition C.6
    for guarded OMQs. *)

(** [cqs_approximation k s] — the contractions of treewidth ≤ k; [None]
    when no contraction qualifies (then [S] is certainly not uniformly
    UCQk-equivalent). *)
val cqs_approximation : int -> Cqs.t -> Cqs.t option

(** The threshold [r·m − 1] under which Proposition 5.11 guarantees
    exactness. *)
val cqs_threshold : Cqs.t -> int

(** [omq_approximation k q] — Definition C.6 via specializations and
    Σ-groundings (capped enumeration); [None] when no grounding
    survives. *)
val omq_approximation : ?max_level:int -> ?max_side:int -> int -> Omq.t -> Omq.t option
