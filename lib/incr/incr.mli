(** Incremental chase maintenance.

    A {!t} is a {e maintained store}: a saturated oblivious-chase instance
    kept saturated under base-fact mutations without re-chasing. The store
    records a {e derivation ledger} at firing time (via
    {!Engine.Saturate}'s [on_fire] hook): one record per fired trigger,
    holding the grounded body, the grounded head, and the trigger key.
    The ledger is the support graph DRed-style maintenance needs:

    - {!insert} adds a base fact and restarts the semi-naive delta
      fixpoint from it ({!Engine.Saturate.continue}), so only triggers
      whose body touches the new fact (transitively) are enumerated;
    - {!delete} removes a base fact in three phases: {e over-delete}
      (cascade through the ledger: retract every fact whose support
      includes an invalidated derivation, via {!Engine.Index.remove}),
      {e re-derive} (re-insert retracted facts that are still base or
      still carry a live derivation), and {e propagate} (delta fixpoint
      from the re-inserted facts, refiring the invalidated triggers that
      survive).

    Guardedness keeps repair local: every fact mentioning a labelled null
    derives transitively from the single trigger that invented the null,
    so an over-delete cascade is bounded by the affected subtree of the
    guarded chase forest rather than the whole instance.

    The maintained store is observationally equivalent to a fresh chase
    of the current base database: same facts up to null renaming, same
    trigger count, and {!checkpoint} re-derives the canonical s-levels
    (minimum derivation depth over the ledger — exactly the level a fresh
    chase assigns). Maintenance is defined for the {e oblivious} policy
    only: restricted-chase dismissals depend on enumeration order and are
    not ledgered, so there is nothing sound to repair against. *)

open Relational

type t

(** A base-fact mutation, as parsed from a [+fact.] / [-fact.] log. *)
type op = Insert of Fact.t | Delete of Fact.t

(** What one mutation did to the store. [e_repaired] counts facts added
    by the delta fixpoint (for an insert this includes the inserted fact
    itself); [e_overdeleted]/[e_rederived] are the delete phases'
    retractions and reinstatements; [e_deleted] is the net number of
    facts that left the store. [e_noop] marks mutations that changed
    nothing: inserting a fact already in the base, or deleting one that
    never was. *)
type effect = {
  e_op : op;
  e_noop : bool;
  e_repaired : int;
  e_overdeleted : int;
  e_rederived : int;
  e_deleted : int;
}

(** [create ?engine ?max_level ?obs sigma db] — chase [db] under [sigma]
    (oblivious policy), recording the derivation ledger as triggers fire.
    [engine] selects the initial chase's execution strategy (indexed
    family only — [`Naive] raises [Invalid_argument]); maintenance
    itself always runs the sequential indexed loop. When [max_level]
    cuts the chase, the store is returned {e unsaturated} and refuses
    mutations. *)
val create :
  ?engine:Tgds.Chase.engine ->
  ?max_level:int ->
  ?obs:Obs.Span.t ->
  Tgds.Tgd.t list ->
  Instance.t ->
  t

(** The store is saturated — mutations are accepted. *)
val saturated : t -> bool

(** A mutation started changing state and died (an exception escaped
    between the first state change and completion). A dirty store is
    between consistent states: {!insert}/{!delete} refuse it — rebuild
    from an {!image} or {!of_checkpoint} instead. A fault injected at
    the [incr.insert]/[incr.delete] probe points fires {e before} the
    first state change, so it leaves the store clean and retryable. *)
val dirty : t -> bool

(** [insert ?obs t f] — add base fact [f]. Raises [Invalid_argument] on
    an unsaturated store. *)
val insert : ?obs:Obs.Span.t -> t -> Fact.t -> effect

(** [delete ?obs t f] — remove base fact [f] and repair. Facts of the
    store that still follow from the remaining base are kept (their
    nulls included); facts whose every derivation died are retracted.
    Raises [Invalid_argument] on an unsaturated store. *)
val delete : ?obs:Obs.Span.t -> t -> Fact.t -> effect

(** [apply ?obs t op] — dispatch on {!op}. *)
val apply : ?obs:Obs.Span.t -> t -> op -> effect

(** The maintained instance. *)
val instance : t -> Instance.t

(** The store's index (shared, do not mutate). *)
val index : t -> Engine.Index.t

(** Facts in the store / facts in the base database. *)
val size : t -> int

val base_size : t -> int

(** The current base database (the facts a fresh chase would start
    from). *)
val base : t -> Instance.t

(** Number of live derivations supporting a fact (0 when absent or only
    base-supported). *)
val support_count : t -> Fact.t -> int

(** The store's metrics registry: the usual [index.*]/[joiner.*]
    counters plus [index.removes] and the maintenance counters
    [incr.inserts], [incr.deletes], [incr.noops], [incr.repaired],
    [incr.overdeleted], [incr.rederived], [incr.deleted]. *)
val metrics : t -> Obs.Metrics.t

(** [checkpoint t] — the maintained state as a saturated
    {!Tgds.Chase.snapshot}, indistinguishable from the final checkpoint of a
    fresh chase of {!base}[ t] (up to null renaming): s-levels are
    re-derived canonically from the ledger as minimum derivation depth,
    which is exactly the level the level-wise chase assigns. The
    snapshot resumes (under {!Tgds.Chase.resume} or {!of_checkpoint}) as a
    no-op continuation. Raises [Invalid_argument] on an unsaturated
    store. *)
val checkpoint : t -> Tgds.Chase.snapshot

(** [of_checkpoint ?engine ?obs sigma snapshot] — rebuild a maintained
    store from a checkpoint by re-chasing its level-0 (base) facts,
    reconstructing the ledger. The result holds the same instance as the
    checkpoint up to null renaming. *)
val of_checkpoint :
  ?engine:Tgds.Chase.engine -> ?obs:Obs.Span.t -> Tgds.Tgd.t list -> Tgds.Chase.snapshot -> t

type image = {
  im_facts : (Fact.t * int) list;
      (** every fact with its s-level, in index {e storage order} (see
          {!Engine.Index.ordered_facts}) *)
  im_base : Fact.t list;  (** the base database, sorted *)
  im_ledger : ((int * Term.const option list) * Fact.t list * Fact.t list) list;
      (** live derivations [(trigger key, body, outs)], sorted by key *)
  im_syms : Term.const list;
      (** every interned constant and null, in id order — including
          symbols whose facts have since been deleted, which still hold
          their ids and keep the index layout aligned *)
  im_preds : string list;  (** every interned predicate, in id order *)
  im_level : int;
  im_null_count : int;  (** the global labelled-null counter *)
  im_counters : (string * int) list;
}
(** An {e exact} serialisation of a maintained store — unlike
    {!checkpoint}/{!of_checkpoint}, which round-trip only up to null
    renaming, [of_image (image t)] reproduces [t] trajectory-faithfully:
    same facts with the {e same} null ids, same index iteration order,
    same ledger, same null counter and metrics. Replaying a mutation log
    suffix against the rebuilt store therefore yields output
    byte-identical to the uninterrupted run — the invariant crash
    recovery of a WAL-backed [serve] is built on. *)

(** [image t] — capture the store. Raises [Invalid_argument] on an
    unsaturated or dirty store. *)
val image : t -> image

(** [of_image sigma im] — rebuild the captured store exactly. Resets the
    global null counter to [im_null_count], so facts derived after the
    rebuild reuse the ids the original run would have assigned. *)
val of_image : Tgds.Tgd.t list -> image -> t

(** [report ?name t] — a run report over the store's metrics (counters
    above, no span tree unless the caller kept one). *)
val report : ?name:string -> ?span:Obs.Span.t -> t -> Obs.Report.t
