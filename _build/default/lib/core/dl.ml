(** A description-logic front-end.

    The paper situates its results against the DL-based characterizations
    of [7] for (ELHI⊥, UCQ) — "essentially a fragment of guarded TGDs"
    (§1). This module provides the bridge the paper alludes to: an
    ELHI-style concept language (conjunction, existential restriction,
    inverse roles, role hierarchies, domain/range) whose TBox axioms
    translate into frontier-guarded single-head TGDs; the fragment without
    inverse roles on the left translates into guarded TGDs. ABoxes are
    plain databases over unary (concept) and binary (role) predicates. *)

open Relational
module Tgd = Tgds.Tgd

type role = Role of string | Inverse of string

type concept =
  | Top
  | Atomic of string
  | Conj of concept * concept
  | Exists of role * concept  (** ∃r.C *)

type axiom =
  | Sub of concept * concept  (** C ⊑ D *)
  | Role_sub of role * role  (** r ⊑ s *)
  | Domain of role * concept  (** ∃r.⊤ ⊑ C *)
  | Range of role * concept  (** ∃r⁻.⊤ ⊑ C *)

let role_atom r x y =
  match r with
  | Role s -> Atom.make s [ Term.var x; Term.var y ]
  | Inverse s -> Atom.make s [ Term.var y; Term.var x ]

(* Fresh variable supply, per translation run. *)
let fresh_var =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Printf.sprintf "w%d" !ctr

(* Atoms asserting membership of variable [x] in [c], introducing fresh
   variables for existential restrictions (used on the *left* of ⊑, where
   existentials become plain body variables). *)
let rec body_atoms c x =
  match c with
  | Top -> []
  | Atomic a -> [ Atom.make a [ Term.var x ] ]
  | Conj (c1, c2) -> body_atoms c1 x @ body_atoms c2 x
  | Exists (r, c1) ->
      let y = fresh_var () in
      role_atom r x y :: body_atoms c1 y

(* Same on the right of ⊑: the fresh variables stay in the head and become
   existentially quantified by Tgd.make. *)
let head_atoms = body_atoms

(** [to_tgds axioms] — the TGD translation. Every produced TGD is
    frontier-guarded (the frontier is a single variable, covered by any
    body atom mentioning it); when no axiom uses an inverse role in a
    left-hand side, every produced TGD is guarded. *)
let to_tgds axioms =
  List.map
    (fun ax ->
      match ax with
      | Sub (Top, d) ->
          (* ⊤ ⊑ D over an explicit domain marker would need a universal
             guard; encode via a 0-argument body is not constant-free —
             reject instead *)
          if d = Top then invalid_arg "Dl.to_tgds: trivial axiom ⊤ ⊑ ⊤"
          else invalid_arg "Dl.to_tgds: ⊤ on the left is not supported"
      | Sub (c, d) ->
          let body = body_atoms c "x" in
          let head = head_atoms d "x" in
          if head = [] then invalid_arg "Dl.to_tgds: ⊤ on the right";
          Tgd.make ~body ~head
      | Role_sub (r, s) ->
          Tgd.make ~body:[ role_atom r "x" "y" ] ~head:[ role_atom s "x" "y" ]
      | Domain (r, c) ->
          let head = head_atoms c "x" in
          if head = [] then invalid_arg "Dl.to_tgds: ⊤ range/domain";
          Tgd.make ~body:[ role_atom r "x" "y" ] ~head
      | Range (r, c) ->
          let head = head_atoms c "y" in
          if head = [] then invalid_arg "Dl.to_tgds: ⊤ range/domain";
          Tgd.make ~body:[ role_atom r "x" "y" ] ~head)
    axioms

(* Does a concept use an inverse role? *)
let rec uses_inverse = function
  | Top | Atomic _ -> false
  | Conj (c1, c2) -> uses_inverse c1 || uses_inverse c2
  | Exists (Inverse _, _) -> true
  | Exists (Role _, c) -> uses_inverse c

(** [in_elh axioms] — the ELH fragment: no inverse roles anywhere (the
    OWL 2 EL regime the paper mentions in §1). Axioms whose left-hand side
    is atomic or a single unnested existential restriction translate into
    *guarded* TGDs; nested left-hand existentials stay frontier-guarded. *)
let in_elh axioms =
  List.for_all
    (function
      | Sub (c, d) -> (not (uses_inverse c)) && not (uses_inverse d)
      | Role_sub (Role _, Role _) -> true
      | Role_sub _ -> false
      | Domain (Role _, c) | Range (Role _, c) -> not (uses_inverse c)
      | Domain (Inverse _, _) | Range (Inverse _, _) -> false)
    axioms

(** [assertion c x] / [role_assertion r a b] — ABox facts. *)
let assertion c x = Fact.make c [ Term.Named x ]

let role_assertion r a b = Fact.make r [ Term.Named a; Term.Named b ]

let pp_role ppf = function
  | Role s -> Fmt.string ppf s
  | Inverse s -> Fmt.pf ppf "%s⁻" s

let rec pp_concept ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Atomic a -> Fmt.string ppf a
  | Conj (c, d) -> Fmt.pf ppf "(%a ⊓ %a)" pp_concept c pp_concept d
  | Exists (r, c) -> Fmt.pf ppf "∃%a.%a" pp_role r pp_concept c

let pp_axiom ppf = function
  | Sub (c, d) -> Fmt.pf ppf "%a ⊑ %a" pp_concept c pp_concept d
  | Role_sub (r, s) -> Fmt.pf ppf "%a ⊑ %a" pp_role r pp_role s
  | Domain (r, c) -> Fmt.pf ppf "∃%a.⊤ ⊑ %a" pp_role r pp_concept c
  | Range (r, c) -> Fmt.pf ppf "∃%a⁻.⊤ ⊑ %a" pp_role r pp_concept c
