lib/qgraph/treewidth.mli: Graph Tree_decomposition
