lib/core/reductions.mli: Cq Cqs Grohe Instance Omq Qgraph Relational Term
