lib/tgds/chase.ml: Array Fact Hashtbl Homomorphism Instance List Relational Tgd Ucq VarMap VarSet
