examples/dl_ontology.mli:
