test/test_matrix.ml: Alcotest Atom Cq Dl Fact Fmt Fun Grohe Guarded_core Guarded_rewrite Instance List Omq Omq_eval Qgraph Reductions Relational Term Tgds Ucq Workload
