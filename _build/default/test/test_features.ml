(* Tests for the extension features: restricted chase, weak-acyclicity
   termination analysis, the DL front-end, and the OMQ-side clique
   reduction. *)

open Relational
open Relational.Term
open Guarded_core
module Tgd = Tgds.Tgd
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head

(* ------------------------------------------------------------------ *)
(* Restricted chase                                                     *)
(* ------------------------------------------------------------------ *)

let test_restricted_skips_satisfied () =
  (* A(x) → ∃z S(x,z) over {A(a), S(a,b)}: oblivious invents a null,
     restricted does not *)
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "a"; "b" ] ] in
  let obl = Chase.run ~policy:Chase.Oblivious sigma db in
  let res = Chase.run ~policy:Chase.Restricted sigma db in
  check_int "oblivious adds a fact" 3 (Instance.size (Chase.instance obl));
  check_int "restricted does not" 2 (Instance.size (Chase.instance res));
  check "both saturate" true (Chase.saturated obl && Chase.saturated res);
  check "restricted result models Σ" true
    (Tgd.satisfies_all (Chase.instance res) sigma)

let test_restricted_can_terminate_where_oblivious_does_not () =
  (* S(x,y) → ∃z S(y,z) over a loop {S(a,a)}: the head is always already
     satisfied with z = a, so the restricted chase stops immediately,
     while the oblivious chase runs forever *)
  let sigma = [ tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "S" [ "a"; "a" ] ] in
  let res = Chase.run ~policy:Chase.Restricted ~max_level:50 sigma db in
  check "restricted saturates" true (Chase.saturated res);
  check_int "nothing added" 1 (Instance.size (Chase.instance res));
  let obl = Chase.run ~policy:Chase.Oblivious ~max_level:5 sigma db in
  check "oblivious keeps inventing" false (Chase.saturated obl)

let test_restricted_same_certain_answers () =
  let sigma = Workload.university_ontology () in
  let db = Instance.of_facts [ fact "Prof" [ "ada" ]; fact "Course" [ "ml" ] ] in
  let q = Ucq.of_cq (Cq.make [ atom "Dept" [ v "d" ] ]) in
  let obl = Chase.run sigma db in
  let res = Chase.run ~policy:Chase.Restricted sigma db in
  check "same verdict" true
    (Ucq.holds (Chase.instance obl) q = Ucq.holds (Chase.instance res) q);
  check "restricted is smaller or equal" true
    (Instance.size (Chase.instance res) <= Instance.size (Chase.instance obl))

(* ------------------------------------------------------------------ *)
(* Weak acyclicity                                                      *)
(* ------------------------------------------------------------------ *)

let test_weak_acyclicity_verdicts () =
  let module T = Tgds.Termination in
  check "linear chain is weakly acyclic" true
    (T.weakly_acyclic (Workload.linear_chain ~depth:4));
  check "manager ontology is not" false
    (T.weakly_acyclic (Workload.manager_ontology ()));
  check "university ontology is weakly acyclic" true
    (T.weakly_acyclic (Workload.university_ontology ()));
  check "full TGDs terminate" true
    (T.terminates_on_all_databases (Workload.guarded_full_chain ~depth:3));
  (* the classic self-feeding rule *)
  let bad = [ tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] ] in
  check "S-chain rule not weakly acyclic" false (T.weakly_acyclic bad)

let test_weak_acyclicity_predicts_saturation () =
  (* whenever Σ is weakly acyclic, the bounded chase saturates *)
  List.iter
    (fun sigma ->
      if Tgds.Termination.weakly_acyclic sigma then
        let db = Instance.of_facts [ fact "R0" [ "a"; "b" ]; fact "E" [ "a"; "b" ] ] in
        let r = Chase.run ~max_level:50 ~max_facts:50_000 sigma db in
        check "weakly acyclic => chase saturates" true (Chase.saturated r))
    [
      Workload.linear_chain ~depth:5;
      Workload.guarded_full_chain ~depth:4;
      Workload.university_ontology ();
    ]

let test_dependency_edges () =
  let module T = Tgds.Termination in
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ] in
  let edges = T.dependency_edges sigma in
  check "normal edge A#0 -> S#0" true
    (List.exists
       (fun e -> e.T.src = ("A", 0) && e.T.dst = ("S", 0) && not e.T.special)
       edges);
  check "special edge A#0 => S#1" true
    (List.exists
       (fun e -> e.T.src = ("A", 0) && e.T.dst = ("S", 1) && e.T.special)
       edges);
  check_int "exactly two edges" 2 (List.length edges)

(* ------------------------------------------------------------------ *)
(* DL front-end                                                         *)
(* ------------------------------------------------------------------ *)

let test_dl_translation_classes () =
  let open Dl in
  let tbox =
    [
      Sub (Atomic "A", Exists (Role "r", Atomic "B"));
      Sub (Conj (Atomic "B", Atomic "C"), Atomic "D");
      Role_sub (Role "r", Role "s");
      Domain (Role "r", Atomic "A");
      Range (Role "r", Atomic "B");
    ]
  in
  let sigma = to_tgds tbox in
  check_int "five TGDs" 5 (List.length sigma);
  check "all frontier-guarded" true (Tgd.all_frontier_guarded sigma);
  check "all guarded here" true (Tgd.all_guarded sigma);
  check "all single-head-ish (FG_2)" true (List.for_all (Tgd.is_fg 2) sigma);
  check "in ELH" true (in_elh tbox);
  check "inverse detected" false (in_elh [ Sub (Atomic "A", Exists (Inverse "r", Top)) ])

let test_dl_inverse_roles () =
  let open Dl in
  (* range axiom via inverse on the left: r(x,y) → B(y) *)
  let sigma = to_tgds [ Sub (Exists (Inverse "r", Top), Atomic "B") ] in
  (match sigma with
  | [ t ] ->
      check "frontier-guarded" true (Tgd.is_frontier_guarded t);
      let db = Instance.of_facts [ fact "r" [ "a"; "b" ] ] in
      let chased = Chase.instance (Chase.run sigma db) in
      check "range derived at the object" true (Instance.mem (fact "B" [ "b" ]) chased)
  | _ -> Alcotest.fail "expected one TGD")

let test_dl_answering () =
  let open Dl in
  let tbox =
    [
      Sub (Atomic "Myocarditis", Atomic "HeartDisease");
      Sub (Atomic "HeartDisease", Exists (Role "affects", Atomic "Organ"));
      Sub
        ( Conj (Atomic "Patient", Exists (Role "diagnosedWith", Atomic "HeartDisease")),
          Atomic "CardiacPatient" );
    ]
  in
  let sigma = to_tgds tbox in
  let abox =
    Instance.of_facts
      [
        assertion "Patient" "mira";
        assertion "Myocarditis" "m1";
        role_assertion "diagnosedWith" "mira" "m1";
      ]
  in
  let omq q = Omq.full_data_schema ~ontology:sigma ~query:(Ucq.of_cq q) in
  check "cardiac patient derived through the conjunction" true
    (Omq_eval.certain (omq (Cq.make [ atom "CardiacPatient" [ Term.const "mira" ] ])) abox [])
      .Omq_eval.holds;
  check "some organ affected" true
    (Omq_eval.certain (omq (Cq.make [ atom "Organ" [ v "o" ] ])) abox [])
      .Omq_eval.holds;
  check "nothing about colds" false
    (Omq_eval.certain (omq (Cq.make [ atom "Cold" [ v "c" ] ])) abox [])
      .Omq_eval.holds

let test_dl_rejects_top_left () =
  check "⊤ on the left rejected" true
    (try
       ignore (Dl.to_tgds [ Dl.Sub (Dl.Top, Dl.Atomic "A") ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* OMQ-side clique reduction (Theorem 5.4, demonstrative case)          *)
(* ------------------------------------------------------------------ *)

let test_clique_to_omq_empty_sigma () =
  let omq =
    Omq.full_data_schema ~ontology:[] ~query:(Ucq.of_cq (Workload.grid_cq 3 3))
  in
  let good = Workload.planted_clique ~n:6 ~k:3 ~p:0.15 ~seed:21 in
  let bad = Qgraph.Graph.cycle 7 in
  (match Reductions.clique_to_omq omq ~graph:good ~k:3 with
  | Some ci -> check "detects the clique" true (Reductions.decide_omq_clique ci)
  | None -> Alcotest.fail "expected minor map");
  match Reductions.clique_to_omq omq ~graph:bad ~k:3 with
  | Some ci -> check "rejects triangle-free" false (Reductions.decide_omq_clique ci)
  | None -> Alcotest.fail "expected minor map"

let test_clique_to_omq_full_sigma () =
  (* a guarded-full ontology deriving a predicate the query uses *)
  let sigma = [ tgd [ atom "X" [ v "x"; v "y" ] ] [ atom "V" [ v "x" ] ] ] in
  let q =
    Cq.make (Cq.atoms (Workload.grid_cq 3 3) @ [ atom "V" [ v "g0_0" ] ])
  in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:(Ucq.of_cq q) in
  List.iter
    (fun (graph, expected) ->
      match Reductions.clique_to_omq omq ~graph ~k:3 with
      | Some ci ->
          check "verdict matches ground truth" true
            (Reductions.decide_omq_clique ci = expected)
      | None -> Alcotest.fail "expected minor map")
    [
      (Workload.planted_clique ~n:6 ~k:3 ~p:0.2 ~seed:4, true);
      (Qgraph.Graph.cycle 8, false);
    ]

let test_clique_to_omq_rejects_existential () =
  let omq =
    Omq.full_data_schema
      ~ontology:[ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ]
      ~query:(Ucq.of_cq (Workload.grid_cq 2 2))
  in
  check "existential Σ rejected" true
    (try
       ignore (Reductions.clique_to_omq omq ~graph:(Qgraph.Graph.cycle 4) ~k:2);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The Appendix C.5 gadget                                              *)
(* ------------------------------------------------------------------ *)

let test_c5_gadget_counts () =
  List.iter
    (fun n ->
      let sigma = C5_gadget.ontology ~n in
      check "guarded" true (Tgd.all_guarded sigma);
      check "not weakly acyclic (counter loops through G)" true
        (not (Tgds.Termination.weakly_acyclic sigma) || n = 1);
      let r1 = Chase.run ~max_level:40 ~max_facts:20_000 sigma (C5_gadget.database `T1) in
      let r2 = Chase.run ~max_level:40 ~max_facts:20_000 sigma (C5_gadget.database `T2) in
      check "T1 chase terminates" true (Chase.saturated r1);
      check "T2 chase terminates" true (Chase.saturated r2);
      Alcotest.(check int)
        (Fmt.str "T1 path length 2^%d - 1" n)
        ((1 lsl n) - 1)
        (C5_gadget.s_path_length (Chase.instance r1));
      Alcotest.(check int)
        (Fmt.str "T2 path length 2^%d - 2" n)
        ((1 lsl n) - 2)
        (C5_gadget.s_path_length (Chase.instance r2)))
    [ 2; 3 ]

let test_c5_separation () =
  (* the treewidth-1 path query of exponential length separates the two
     seeds — the Lemma C.8 phenomenon *)
  let n = 3 in
  let sigma = C5_gadget.ontology ~n in
  let q = Ucq.of_cq (C5_gadget.separating_query ~n) in
  check "query has treewidth 1" true (Ucq.in_ucqk 1 q);
  check "exponentially many atoms" true
    (List.length (Cq.atoms (C5_gadget.separating_query ~n)) = (1 lsl n) - 1);
  let holds seed = fst (Chase.certain ~max_level:40 ~max_facts:20_000 sigma (C5_gadget.database seed) q []) in
  check "holds on T1" true (holds `T1);
  check "fails on T2" false (holds `T2)

(* ------------------------------------------------------------------ *)
(* Diversification (§6.1, Example 6.3)                                  *)
(* ------------------------------------------------------------------ *)

let example_6_3 () =
  (* Σ = {X'(x,y,z) → X(x,y); Y'(x,y,z) → Y(x,y)}; D0 is a 2×2 grid over
     X'/Y' whose third positions share one constant b *)
  let sigma =
    [
      tgd [ atom "Xp" [ v "x"; v "y"; v "z" ] ] [ atom "X" [ v "x"; v "y" ] ];
      tgd [ atom "Yp" [ v "x"; v "y"; v "z" ] ] [ atom "Y" [ v "x"; v "y" ] ];
    ]
  in
  let d0 =
    Instance.of_facts
      [
        fact "Xp" [ "a00"; "a10"; "b" ];
        fact "Xp" [ "a01"; "a11"; "b" ];
        fact "Yp" [ "a00"; "a01"; "b" ];
        fact "Yp" [ "a10"; "a11"; "b" ];
      ]
  in
  let q = Ucq.of_cq (Workload.grid_cq 2 2) in
  (sigma, d0, q)

let test_diversification_example_6_3 () =
  let sigma, d0, q = example_6_3 () in
  let holds db = fst (Chase.certain ~max_level:4 sigma db q []) in
  check "Q holds on D0+" true
    (holds (Diversification.with_unravelings (Diversification.identity d0)));
  let d1 =
    Diversification.minimize ~holds ~protect:Term.ConstSet.empty d0
  in
  check "diversification maps back" true (Diversification.verify d1);
  check "Q preserved" true (holds (Diversification.with_unravelings d1));
  check "minimized ⪯ identity" true
    (Diversification.preorder d1 (Diversification.identity d0));
  (* the shared b is fully untangled: every third position isolated *)
  Instance.iter
    (fun f ->
      let third = List.nth (Fact.args f) 2 in
      check "third positions isolated" true
        (Instance.isolated d1.Diversification.diversified third))
    d1.Diversification.diversified;
  (* the grid corners are not split: they carry the query match *)
  check "a00 still original" true
    (Term.ConstSet.mem (Named "a00") (Instance.dom d1.Diversification.diversified))

let test_diversification_split_mechanics () =
  let db = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "S" [ "b" ] ] in
  let d = Diversification.identity db in
  let d' = Diversification.split d (fact "R" [ "a"; "b" ]) 1 in
  check "verify after split" true (Diversification.verify d');
  check_int "same number of facts" 2 (Instance.size d'.Diversification.diversified);
  check "S(b) untouched" true
    (Instance.mem (fact "S" [ "b" ]) d'.Diversification.diversified);
  check "R(a,b) replaced" false
    (Instance.mem (fact "R" [ "a"; "b" ]) d'.Diversification.diversified);
  check "d' ⪯ d" true (Diversification.preorder d' d);
  check "not d ⪯ d'" false (Diversification.preorder d d');
  check "bad fact rejected" true
    (try
       ignore (Diversification.split d (fact "R" [ "z"; "z" ]) 0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "features"
    [
      ( "restricted-chase",
        [
          Alcotest.test_case "skips satisfied heads" `Quick test_restricted_skips_satisfied;
          Alcotest.test_case "terminates on loops" `Quick
            test_restricted_can_terminate_where_oblivious_does_not;
          Alcotest.test_case "same certain answers" `Quick test_restricted_same_certain_answers;
        ] );
      ( "termination",
        [
          Alcotest.test_case "verdicts" `Quick test_weak_acyclicity_verdicts;
          Alcotest.test_case "predicts saturation" `Quick test_weak_acyclicity_predicts_saturation;
          Alcotest.test_case "dependency edges" `Quick test_dependency_edges;
        ] );
      ( "dl",
        [
          Alcotest.test_case "translation classes" `Quick test_dl_translation_classes;
          Alcotest.test_case "inverse roles" `Quick test_dl_inverse_roles;
          Alcotest.test_case "answering" `Quick test_dl_answering;
          Alcotest.test_case "rejects ⊤ left" `Quick test_dl_rejects_top_left;
        ] );
      ( "c5-gadget",
        [
          Alcotest.test_case "counter lengths" `Quick test_c5_gadget_counts;
          Alcotest.test_case "separation" `Quick test_c5_separation;
        ] );
      ( "diversification",
        [
          Alcotest.test_case "example 6.3" `Quick test_diversification_example_6_3;
          Alcotest.test_case "split mechanics" `Quick test_diversification_split_mechanics;
        ] );
      ( "omq-clique",
        [
          Alcotest.test_case "Σ = ∅" `Quick test_clique_to_omq_empty_sigma;
          Alcotest.test_case "Σ ∈ G∩FULL" `Quick test_clique_to_omq_full_sigma;
          Alcotest.test_case "rejects existentials" `Quick test_clique_to_omq_rejects_existential;
        ] );
    ]
