lib/core/sigma_containment.ml: Atom Cq Finite_witness Fmt List Relational Term Tgds Ucq
