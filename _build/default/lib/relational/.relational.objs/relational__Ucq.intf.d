lib/relational/ucq.mli: Cq Format Instance Schema Term
