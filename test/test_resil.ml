(* Crash-safety suite for lib/resil and the chase's checkpoint/resume
   machinery: checkpoint JSON round-trips byte-identically, a resumed run
   is equivalent to an uninterrupted one (up to renaming of nulls invented
   after the boundary) under both policies and engines — including
   cross-engine resume, which is how the supervisor degrades — and the
   supervisor turns injected faults into retries/degradation instead of
   escaped exceptions. Generators live in Generators.

   Equivalence caveat: a [Partial Facts] cut lands mid-pass, where the set
   of triggers fired before the cut depends on enumeration order (itself
   dependent on index insertion order), so for those runs only the levels
   before the final, truncated pass are compared; runs ending at a clean
   boundary (saturation or a level cut) must agree in full. *)

open Relational
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Generators.v
let atom = Generators.atom
let fact = Generators.fact
let tgd = Generators.tgd

(* Result comparison up to null renaming lives in Generators (shared
   with the parallel-engine suite). *)
let results_equivalent = Generators.results_equivalent

(* ------------------------------------------------------------------ *)
(* Checkpoint serialisation                                             *)
(* ------------------------------------------------------------------ *)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint JSON round-trip is byte-identical"
    ~count:150 Generators.arb_checkpoint (fun s ->
      let str = Obs.Json.to_string (Resil.Checkpoint.to_json s) in
      match Obs.Json.parse str with
      | Error _ -> false
      | Ok j -> (
          match Resil.Checkpoint.of_json j with
          | Error _ -> false
          | Ok s' -> Obs.Json.to_string (Resil.Checkpoint.to_json s') = str))

let test_checkpoint_disk_roundtrip () =
  let snaps =
    Generators.chase_snapshots ~engine:`Indexed ~policy:Chase.Oblivious
      [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
        tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ] ]
      (Instance.of_facts [ fact "A" [ "a" ] ])
  in
  let s = List.nth snaps (List.length snaps / 2) in
  let path = Filename.temp_file "resil_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Resil.Checkpoint.save path s;
      let read () =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let first = read () in
      (match Resil.Checkpoint.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok s' -> Resil.Checkpoint.save path s');
      check "save → load → save is byte-identical" true (read () = first))

let test_checkpoint_rejects_bad_schema () =
  let reject s =
    match Result.bind (Obs.Json.parse s) Resil.Checkpoint.of_json with
    | Error _ -> true
    | Ok _ -> false
  in
  check "wrong schema" true
    (reject {|{"schema":"other","version":1}|});
  check "wrong version" true
    (reject {|{"schema":"guarded-chase-checkpoint","version":99}|});
  check "missing fields" true
    (reject {|{"schema":"guarded-chase-checkpoint","version":1}|})

(* ------------------------------------------------------------------ *)
(* Resume ≍ uninterrupted                                               *)
(* ------------------------------------------------------------------ *)

let gen_resume_case =
  QCheck.Gen.(
    let* sigma = Generators.gen_sigma
    and* db = Generators.gen_db
    and* engine = Generators.gen_engine
    and* policy = Generators.gen_policy
    and* pick = int_range 0 1000
    and* cross = bool in
    return (sigma, db, engine, policy, pick, cross))

let print_resume_case (sigma, db, engine, policy, pick, cross) =
  Fmt.str "%s engine=%s policy=%s pick=%d cross=%b"
    (Generators.print_sigma_db (sigma, db))
    (Generators.engine_to_string engine)
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")
    pick cross

let arb_resume_case = QCheck.make ~print:print_resume_case gen_resume_case

let resume_equiv (sigma, db, engine, policy, pick, cross) =
  Term.reset_nulls ();
  let snaps = ref [] in
  let full =
    Chase.run ~engine ~policy ~budget:(Generators.resil_budget ())
      ~on_pass:(fun ~level:_ ~saturated:_ take -> snaps := take () :: !snaps)
      sigma db
  in
  let snaps = Array.of_list (List.rev !snaps) in
  let s = snaps.(pick mod Array.length snaps) in
  let resume_engine =
    (* cross-engine resume covers every rung of the supervisor's
       degradation ladder, plus escalation back up to parallel *)
    if cross then
      match engine with
      | `Indexed -> `Naive
      | `Naive -> `Parallel 2
      | `Parallel _ -> `Indexed
    else engine
  in
  let r =
    Chase.resume ~engine:resume_engine ~budget:(Generators.resil_budget ())
      sigma s
  in
  results_equivalent full r

let prop_resume_equiv =
  QCheck.Test.make
    ~name:"resume from any boundary ≍ uninterrupted (both policies/engines)"
    ~count:200 arb_resume_case resume_equiv

(* ------------------------------------------------------------------ *)
(* Supervisor                                                           *)
(* ------------------------------------------------------------------ *)

(* A clock advancing one second per reading, so [After_ms] triggers fire
   deterministically within a few probe hits. *)
let ticking_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1.;
    !t

let gen_supervised_case =
  QCheck.Gen.(
    let* sigma = Generators.gen_sigma
    and* db = Generators.gen_db
    and* policy = Generators.gen_policy
    and* plan = Generators.gen_fault_plan in
    return (sigma, db, policy, plan))

let print_supervised_case (sigma, db, policy, plan) =
  Fmt.str "%s policy=%s plan=%s"
    (Generators.print_sigma_db (sigma, db))
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")
    (Resil.Fault.to_string plan)

let arb_supervised_case =
  QCheck.make ~print:print_supervised_case gen_supervised_case

(* With retries 2 the supervisor grants 3 attempts per engine and the
   generated plans have ≤ 3 triggers, so some attempt always runs
   fault-free: the outcome must carry a result equivalent to the
   uninterrupted run. *)
let supervised_equiv (sigma, db, policy, plan) =
  Term.reset_nulls ();
  let base =
    Chase.run ~engine:`Indexed ~policy ~budget:(Generators.resil_budget ())
      sigma db
  in
  Term.reset_nulls ();
  match
    Resil.Supervisor.run ~engine:`Indexed ~policy
      ~budget:(Generators.resil_budget ()) ~retries:2
      ~sleep:(fun _ -> ())
      ~clock:(ticking_clock ()) ~fault_plan:plan sigma db
  with
  | Resil.Supervisor.Completed r
  | Resil.Supervisor.Recovered (r, _)
  | Resil.Supervisor.Degraded (r, _) ->
      results_equivalent base r
  | Resil.Supervisor.Failed _ -> false

let prop_supervised_equiv =
  QCheck.Test.make
    ~name:"supervised run with kills ≍ uninterrupted (both policies)"
    ~count:200 arb_supervised_case supervised_equiv

(* Σ = {A(x) → ∃y S(x,y); S(x,y) → A(y)}: non-terminating, cut by the
   level budget — a deterministic workload for the unit tests below. *)
let unit_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
  ]

let unit_db = Instance.of_facts [ fact "A" [ "a" ] ]

let test_supervisor_degrades () =
  Term.reset_nulls ();
  let base =
    Chase.run ~engine:`Indexed ~budget:(Generators.resil_budget ()) unit_sigma
      unit_db
  in
  Term.reset_nulls ();
  (* every indexed attempt dies at its first pass; the naive engine never
     hits engine.* probes, so the degraded attempt completes *)
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 1);
    ]
  in
  match
    Resil.Supervisor.run ~engine:`Indexed
      ~budget:(Generators.resil_budget ()) ~retries:2
      ~sleep:(fun _ -> ())
      ~fault_plan:plan unit_sigma unit_db
  with
  | Resil.Supervisor.Degraded (r, log) ->
      check_int "three failed attempts" 3 (List.length log);
      List.iter
        (fun a ->
          check "failed attempts ran on the indexed engine" true
            (a.Resil.Supervisor.engine = `Indexed))
        log;
      check "degraded result ≍ uninterrupted" true (results_equivalent base r)
  | _ -> Alcotest.fail "expected Degraded"

let test_supervisor_failed_is_typed () =
  (* kill both engines on every attempt: engine.pass for indexed,
     chase.pass for naive *)
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("chase.pass", 1);
    ]
  in
  match
    Resil.Supervisor.run ~engine:`Indexed
      ~budget:(Generators.resil_budget ()) ~retries:0
      ~sleep:(fun _ -> ())
      ~fault_plan:plan unit_sigma unit_db
  with
  | Resil.Supervisor.Failed d ->
      check_int "both attempts logged" 2 (List.length d.Resil.Supervisor.attempts)
  | _ -> Alcotest.fail "expected Failed (and no escaped exception)"

let test_supervisor_backoff_sequence () =
  let sleeps = ref [] in
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 2);
      Resil.Fault.At_point ("engine.pass", 3);
    ]
  in
  (match
     Resil.Supervisor.run ~engine:`Indexed
       ~budget:(Generators.resil_budget ()) ~retries:3 ~backoff_ms:100.
       ~max_backoff_ms:250.
       ~sleep:(fun s -> sleeps := s :: !sleeps)
       ~fault_plan:plan unit_sigma unit_db
   with
  | Resil.Supervisor.Recovered (_, log) ->
      check_int "three failed attempts" 3 (List.length log)
  | _ -> Alcotest.fail "expected Recovered");
  let expect = [ 100. /. 1000.; 200. /. 1000.; 250. /. 1000. ] in
  check_int "three sleeps" (List.length expect) (List.length !sleeps);
  List.iter2
    (fun a b -> check "capped exponential backoff" true (Float.abs (a -. b) < 1e-9))
    expect (List.rev !sleeps)

let test_supervisor_checkpoints_to_disk () =
  let path = Filename.temp_file "resil_sup" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Term.reset_nulls ();
      (match
         Resil.Supervisor.run ~engine:`Indexed
           ~budget:(Generators.resil_budget ()) ~retries:1 ~checkpoint_path:path
           ~sleep:(fun s -> ignore s)
           ~fault_plan:[ Resil.Fault.At_point ("engine.pass", 3) ]
           unit_sigma unit_db
       with
      | Resil.Supervisor.Recovered (_, log) ->
          check_int "one failed attempt" 1 (List.length log);
          (* only failed attempts are logged; the first ran from scratch *)
          check "first attempt started from scratch" true
            ((List.hd log).Resil.Supervisor.resumed_from = None)
      | _ -> Alcotest.fail "expected Recovered");
      match Resil.Checkpoint.load path with
      | Error e -> Alcotest.failf "final checkpoint unreadable: %s" e
      | Ok s ->
          check "final checkpoint is at the run's last boundary" true
            (s.Chase.snap_level > 0))

(* ------------------------------------------------------------------ *)
(* Fault plans                                                          *)
(* ------------------------------------------------------------------ *)

let arb_fault_plan =
  QCheck.make
    ~print:(fun p -> Resil.Fault.to_string p)
    Generators.gen_fault_plan

let prop_fault_plan_roundtrip =
  QCheck.Test.make ~name:"fault plan parse ∘ to_string = id" ~count:200
    arb_fault_plan (fun plan ->
      Resil.Fault.parse (Resil.Fault.to_string plan) = Ok plan)

let test_fault_parse () =
  check "none" true (Resil.Fault.parse "none" = Ok []);
  check "empty" true (Resil.Fault.parse "" = Ok []);
  check "hit" true (Resil.Fault.parse "hit:7" = Ok [ Resil.Fault.At_hit 7 ]);
  check "list" true
    (Resil.Fault.parse "hit:1,point:engine.pass:2,ms:5"
    = Ok
        [
          Resil.Fault.At_hit 1;
          Resil.Fault.At_point ("engine.pass", 2);
          Resil.Fault.After_ms 5.;
        ]);
  check "seed is deterministic" true
    (Resil.Fault.parse "seed:42:4" = Resil.Fault.parse "seed:42:4");
  (match Resil.Fault.parse "seed:42:4" with
  | Ok plan -> check_int "seed expands to the requested attempts" 4 (List.length plan)
  | Error _ -> Alcotest.fail "seed spec rejected");
  List.iter
    (fun bad ->
      check (Fmt.str "rejects %S" bad) true
        (Result.is_error (Resil.Fault.parse bad)))
    [ "bogus"; "hit:x"; "hit:0"; "point:engine.pass"; "ms:nope"; "seed:x" ]

let test_fault_arm_determinism () =
  let count_hits trig =
    Term.reset_nulls ();
    match
      Resil.Fault.with_trigger (Some trig) (fun () ->
          Chase.run ~engine:`Indexed ~budget:(Generators.resil_budget ())
            unit_sigma unit_db)
    with
    | _ -> None
    | exception Resil.Fault.Injected (point, hit) -> Some (point, hit)
  in
  let a = count_hits (Resil.Fault.At_hit 20) in
  let b = count_hits (Resil.Fault.At_hit 20) in
  check "same trigger, same failure point" true (a = b && a <> None);
  check "probes disarmed afterwards" true (not (Obs.Probe.armed ()))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_checkpoint_roundtrip;
      prop_resume_equiv;
      prop_supervised_equiv;
      prop_fault_plan_roundtrip;
    ]

let () =
  Alcotest.run "resil"
    [
      ( "units",
        [
          Alcotest.test_case "checkpoint disk round-trip" `Quick
            test_checkpoint_disk_roundtrip;
          Alcotest.test_case "checkpoint schema validation" `Quick
            test_checkpoint_rejects_bad_schema;
          Alcotest.test_case "supervisor degrades to naive" `Quick
            test_supervisor_degrades;
          Alcotest.test_case "supervisor failure is a typed outcome" `Quick
            test_supervisor_failed_is_typed;
          Alcotest.test_case "supervisor backoff sequence" `Quick
            test_supervisor_backoff_sequence;
          Alcotest.test_case "supervisor persists checkpoints" `Quick
            test_supervisor_checkpoints_to_disk;
          Alcotest.test_case "fault plan parsing" `Quick test_fault_parse;
          Alcotest.test_case "fault arming is deterministic" `Quick
            test_fault_arm_determinism;
        ] );
      ("properties", qcheck_tests);
    ]
