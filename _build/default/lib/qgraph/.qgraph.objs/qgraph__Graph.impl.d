lib/qgraph/graph.ml: Fmt Int List Map Set
