(** Indexed fact store: per-predicate tuple lists plus posting lists
    keyed by [(predicate, position, constant)]. See the interface for the
    contract; the representation is mutable and meant to be used
    linearly. Buckets carry their length so candidate counting never
    walks a list. *)

open Relational
open Relational.Term

type key = string * int * const
type bucket = { mutable tuples : const list list; mutable n : int }

type t = {
  facts : (Fact.t, unit) Hashtbl.t;  (** membership *)
  by_pred : (string, bucket) Hashtbl.t;
  by_pos : (key, bucket) Hashtbl.t;
  metrics : Obs.Metrics.t;
  (* counter handles, resolved once so the hot paths never do a name
     lookup *)
  c_probes : Obs.Metrics.counter;
  c_inserts : Obs.Metrics.counter;
  c_duplicates : Obs.Metrics.counter;
  c_removes : Obs.Metrics.counter;
}

let create () =
  let metrics = Obs.Metrics.create () in
  {
    facts = Hashtbl.create 256;
    by_pred = Hashtbl.create 16;
    by_pos = Hashtbl.create 1024;
    metrics;
    c_probes = Obs.Metrics.counter metrics "index.probes";
    c_inserts = Obs.Metrics.counter metrics "index.inserts";
    c_duplicates = Obs.Metrics.counter metrics "index.duplicates";
    c_removes = Obs.Metrics.counter metrics "index.removes";
  }

(* A read-only view over the same hash tables with a private metrics
   registry: worker domains probe through readers so the shared registry
   is never written concurrently. Safe as long as nobody inserts while
   readers are in use (the parallel engine freezes the index during the
   collection stage). *)
let reader idx =
  let metrics = Obs.Metrics.create () in
  {
    idx with
    metrics;
    c_probes = Obs.Metrics.counter metrics "index.probes";
    c_inserts = Obs.Metrics.counter metrics "index.inserts";
    c_duplicates = Obs.Metrics.counter metrics "index.duplicates";
    c_removes = Obs.Metrics.counter metrics "index.removes";
  }

let mem f idx = Hashtbl.mem idx.facts f
let size idx = Hashtbl.length idx.facts
let probes idx = Obs.Metrics.value idx.c_probes
let metrics idx = idx.metrics

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some b -> b
  | None ->
      let b = { tuples = []; n = 0 } in
      Hashtbl.replace tbl key b;
      b

let push b tuple =
  b.tuples <- tuple :: b.tuples;
  b.n <- b.n + 1

(** [insert f idx] — add [f]; [false] when it was already present. *)
let insert f idx =
  Obs.Probe.hit "engine.insert";
  if Hashtbl.mem idx.facts f then begin
    Obs.Metrics.incr idx.c_duplicates;
    false
  end
  else begin
    Obs.Metrics.incr idx.c_inserts;
    Hashtbl.replace idx.facts f ();
    let p = Fact.pred f and args = Fact.args f in
    push (bucket idx.by_pred p) args;
    List.iteri (fun i c -> push (bucket idx.by_pos (p, i, c)) args) args;
    true
  end

(* Remove one occurrence of [tuple] from a bucket. Posting lists may
   legitimately not contain the tuple (the bucket for a position the
   tuple was never indexed under does not exist); [drop] is a no-op
   then. *)
let drop tbl key tuple =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      let rec remove_one = function
        | [] -> []
        | t :: rest ->
            if t = tuple then begin
              b.n <- b.n - 1;
              rest
            end
            else t :: remove_one rest
      in
      b.tuples <- remove_one b.tuples

(** [remove f idx] — delete [f]; [false] when it was not present.
    Posting lists are pruned eagerly so candidate counts stay exact. *)
let remove f idx =
  if not (Hashtbl.mem idx.facts f) then false
  else begin
    Obs.Metrics.incr idx.c_removes;
    Hashtbl.remove idx.facts f;
    let p = Fact.pred f and args = Fact.args f in
    drop idx.by_pred p args;
    List.iteri (fun i c -> drop idx.by_pos (p, i, c) args) args;
    true
  end

let add f idx =
  ignore (insert f idx);
  idx

let of_instance inst =
  let idx = create () in
  Instance.iter (fun f -> ignore (insert f idx)) inst;
  idx

let to_instance idx =
  Hashtbl.fold (fun f () acc -> Instance.add_fact f acc) idx.facts Instance.empty

let tuples_of idx p =
  Obs.Metrics.incr idx.c_probes;
  match Hashtbl.find_opt idx.by_pred p with Some b -> b.tuples | None -> []

let tuples_at idx p i c =
  Obs.Metrics.incr idx.c_probes;
  match Hashtbl.find_opt idx.by_pos (p, i, c) with Some b -> b.tuples | None -> []

let count_at idx p i c =
  match Hashtbl.find_opt idx.by_pos (p, i, c) with Some b -> b.n | None -> 0

let count_of idx p =
  match Hashtbl.find_opt idx.by_pred p with Some b -> b.n | None -> 0

(* The constant at a bound argument position, if any. *)
let bound_const (b : Homomorphism.binding) = function
  | Const c -> Some c
  | Var x -> VarMap.find_opt x b

(* Cheapest bound position of [a] under [b]: [(position, constant, size)]. *)
let best_position idx a (b : Homomorphism.binding) =
  let p = Atom.pred a in
  let best = ref None in
  List.iteri
    (fun i t ->
      match bound_const b t with
      | None -> ()
      | Some c ->
          let n = count_at idx p i c in
          (match !best with
          | Some (_, _, m) when m <= n -> ()
          | _ -> best := Some (i, c, n)))
    (Atom.args a);
  !best

let candidates idx a b =
  match best_position idx a b with
  | Some (i, c, _) -> tuples_at idx (Atom.pred a) i c
  | None -> tuples_of idx (Atom.pred a)

let candidate_count idx a b =
  match best_position idx a b with
  | Some (_, _, n) -> n
  | None -> count_of idx (Atom.pred a)
