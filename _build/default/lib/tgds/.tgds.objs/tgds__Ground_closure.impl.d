lib/tgds/ground_closure.ml: ConstSet Fact Fmt Hashtbl Homomorphism Instance List Printf Relational String Tgd VarMap VarSet
