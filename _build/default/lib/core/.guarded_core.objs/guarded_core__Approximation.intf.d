lib/core/approximation.mli: Cqs Omq
