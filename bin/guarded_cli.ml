(* The `guarded` command-line tool: chase, evaluate, classify, rewrite,
   decide UCQk-equivalence, and run the p-Clique reduction, over programs
   in the surface syntax (see lib/syntax/parser.ml). *)

open Relational
open Guarded_core
open Cmdliner

let read_program path =
  try Ok (Syntax.Parser.parse_file path) with
  | Syntax.Lexer.Error (msg, l, c) ->
      Error (Fmt.str "%s:%d:%d: %s" path l c msg)
  | Syntax.Parser.Error (msg, l, c) ->
      Error (Fmt.str "%s:%d:%d: %s" path l c msg)
  | Sys_error e -> Error e

(* Exit codes: 0 success, 1 runtime fault, 2 usage/input error. A violated
   library precondition ([Invalid_argument]) means the input asked for
   something the library rejects — an input error, reported in one line
   instead of a backtrace. *)
let guard f =
  try f () with
  | Invalid_argument msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Resil.Fault.Injected (point, hit) ->
      (* an unsupervised injected fault is a simulated crash *)
      Fmt.epr "error: injected fault at %s (hit %d)@." point hit;
      1
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1
  | e ->
      Fmt.epr "error: %s@." (Printexc.to_string e);
      1

let with_program path f =
  match read_program path with
  | Error e ->
      Fmt.epr "error: %s@." e;
      2
  | Ok p -> guard (fun () -> f p)

let get_query p name =
  match Syntax.Parser.query p name with
  | Some q -> Ok q
  | None ->
      Error
        (Fmt.str "no query named %S (available: %s)" name
           (String.concat ", " (List.map fst p.Syntax.Parser.queries)))

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")

let query_arg =
  Arg.(value & opt string "q" & info [ "query"; "q" ] ~docv:"NAME" ~doc:"Query name (default q).")

let level_arg =
  Arg.(value & opt int 8 & info [ "max-level" ] ~docv:"N" ~doc:"Chase level bound.")

let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Treewidth bound k.")

(* observability args, shared by the run-style commands *)
let stats_arg =
  Arg.(
    value & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:"Write the run report (outcome, per-level fact counts, counters, span tree) as JSON to $(docv).")

let budget_facts_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget-facts" ] ~docv:"N"
        ~doc:"Stop the chase gracefully once more than $(docv) facts are materialised.")

let budget_ms_arg =
  Arg.(
    value & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget for the chase, in milliseconds.")

let make_budget facts ms =
  match (facts, ms) with
  | None, None -> None
  | _ -> Some (Obs.Budget.create ?max_facts:facts ?max_ms:ms ())

let report_outcome out =
  match out with
  | Obs.Budget.Complete -> ()
  | Obs.Budget.Partial v -> Fmt.pr "%% partial: %a@." Obs.Budget.pp_violation v

(* ------------------------------------------------------------------ *)
(* chase                                                                *)
(* ------------------------------------------------------------------ *)

let engine_arg =
  let engine_conv =
    Arg.enum [ ("indexed", `Indexed); ("naive", `Naive); ("parallel", `Parallel) ]
  in
  Arg.(
    value & opt engine_conv `Indexed
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Saturation engine: $(b,indexed) (semi-naive, default), \
              $(b,parallel) (semi-naive with multicore trigger matching — \
              identical output), or $(b,naive).")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for the parallel engine (default: the \
              machine's recommended domain count). Implies \
              $(b,--engine parallel).")

(* Resolve the engine tag + --domains pair: --domains implies parallel;
   bare --engine parallel uses the machine's recommended domain count. *)
let resolve_engine tag domains : Tgds.Chase.engine =
  match (tag, domains) with
  | `Indexed, None -> `Indexed
  | `Naive, None -> `Naive
  | `Parallel, None -> `Parallel (Domain.recommended_domain_count ())
  | _, Some n -> `Parallel n

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Persist a chase checkpoint to $(docv) at every clean pass \
              boundary selected by $(b,--checkpoint-every).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:"Checkpoint every $(docv)th level (default 1; the final \
              boundary always checkpoints).")

let resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:"Resume the chase from the checkpoint in $(docv) instead of \
              starting from the program's database.")

let retries_arg =
  Arg.(
    value & opt (some int) None
    & info [ "retries" ] ~docv:"R"
        ~doc:"Supervise the run: retry up to $(docv) times per engine from \
              the last checkpoint, then degrade indexed → naive.")

let fault_plan_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fault-plan" ] ~docv:"SPEC"
        ~doc:"Deterministic fault injection: $(b,none), $(b,hit:N), \
              $(b,point:NAME:N), $(b,ms:X) (comma-separated, one per \
              attempt), or $(b,seed:S)[:$(b,K)].")

(* Shared tail of every successful chase: summary comments, the instance,
   the stats report. *)
let print_chase_result ~max_level ~stats ?(notes = []) r =
  Fmt.pr "%% chase %s (max level %d)@."
    (if Tgds.Chase.saturated r then "saturated" else "truncated")
    max_level;
  report_outcome (Tgds.Chase.outcome r);
  List.iter (fun n -> Fmt.pr "%% %s@." n) notes;
  (match Tgds.Chase.engine_result r with
  | Some er ->
      Fmt.pr "%% %d triggers fired, %d index probes@."
        er.Engine.Saturate.triggers_fired
        (Engine.Index.probes (Tgds.Chase.index r))
  | None -> ());
  Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) (Tgds.Chase.instance r);
  (match stats with
  | Some path -> Obs.Report.write path (Tgds.Chase.report r)
  | None -> ());
  0

(* The supervised path: any of --checkpoint/--resume/--retries/--fault-plan
   routes here; a bare `chase` keeps the direct, supervisor-free path. *)
let resilient_chase ~engine ~max_level ~stats ~budget ~checkpoint ~ck_every
    ~resume ~retries ~fault_plan sigma db =
  let plan =
    match fault_plan with
    | None -> Ok Resil.Fault.none
    | Some spec -> Resil.Fault.parse spec
  in
  match plan with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok fault_plan -> (
      let resume_from =
        match resume with
        | None -> Ok None
        | Some path -> Result.map Option.some (Resil.Checkpoint.load path)
      in
      match resume_from with
      | Error e ->
          Fmt.epr "error: %s@." (Resil.Checkpoint.error_message e);
          (* unreadable checkpoint = input error; corrupt = runtime fault *)
          (match e with Resil.Checkpoint.Io _ -> 2 | Resil.Checkpoint.Corrupt _ -> 1)
      | Ok resume_from -> (
          (* the supervisor takes a single budget: fold the CLI's level
             bound in, as [Chase.run ~max_level] would *)
          let budget =
            let levels = Obs.Budget.create ~max_levels:max_level () in
            match budget with
            | None -> levels
            | Some b -> Obs.Budget.meet levels b
          in
          match
            Resil.Supervisor.run ~engine ~budget ~checkpoint_every:ck_every
              ?checkpoint_path:checkpoint ?resume_from ?retries ~fault_plan
              sigma db
          with
          | Resil.Supervisor.Completed r ->
              print_chase_result ~max_level ~stats r
          | Resil.Supervisor.Recovered (r, log) ->
              print_chase_result ~max_level ~stats
                ~notes:
                  [
                    Fmt.str "recovered after %d failed attempt(s)"
                      (List.length log);
                  ]
                r
          | Resil.Supervisor.Degraded (r, log) ->
              print_chase_result ~max_level ~stats
                ~notes:
                  [
                    Fmt.str "degraded to a fallback engine after %d failed \
                             attempt(s)"
                      (List.length log);
                  ]
                r
          | Resil.Supervisor.Failed d ->
              Fmt.epr "error: chase failed after %d attempt(s): %s@."
                (List.length d.attempts) d.Resil.Supervisor.message;
              1))

let chase_cmd =
  let run file max_level engine_tag domains stats budget_facts budget_ms
      checkpoint ck_every resume retries fault_plan =
    with_program file (fun p ->
        let engine = resolve_engine engine_tag domains in
        let budget = make_budget budget_facts budget_ms in
        let sigma = p.Syntax.Parser.tgds in
        let db = Syntax.Parser.database p in
        let resilient =
          checkpoint <> None || resume <> None || retries <> None
          || fault_plan <> None
        in
        if resilient then
          resilient_chase ~engine ~max_level ~stats ~budget ~checkpoint
            ~ck_every ~resume ~retries ~fault_plan sigma db
        else
          let r = Tgds.Chase.run ~engine ~max_level ?budget sigma db in
          print_chase_result ~max_level ~stats r)
  in
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the level-bounded oblivious chase and print the result.")
    Term.(
      const run $ file_arg $ level_arg $ engine_arg $ domains_arg $ stats_arg
      $ budget_facts_arg $ budget_ms_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ retries_arg $ fault_plan_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

(* Apply a mutation log against a maintained store (lib/incr): chase the
   program's database once (or resume a maintained checkpoint / recover
   a WAL directory), then repair incrementally per mutation. Output: one
   `%` comment per mutation with the repair counts, a summary, the final
   instance, and — like `chase` — optional --stats / --checkpoint
   artifacts. Everything printed is byte-identical across
   indexed/parallel engines and domain counts.

   Durability and supervision (--wal/--recover/--retries/--fault-plan)
   route the loop through Resil: every mutation is appended and fsync'd
   to the WAL before it applies, and each apply runs under the
   Serve_supervisor degradation ladder (repair → re-derive → re-chase,
   then quarantine). A bare `serve` keeps the direct path. *)
let serve_cmd =
  (* Read the mutation log line by line so a malformed entry is reported
     with its line number and offending content; --strict-log=false
     skips such lines (counted in serve.rejected_lines) instead of
     aborting. Mutation statements are line-oriented. *)
  let read_log ~strict path =
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          List.rev !lines)
    with
    | exception Sys_error e -> Error (`Io e)
    | lines ->
        let muts = ref [] and rejected = ref [] and bad = ref None in
        List.iteri
          (fun i line ->
            if !bad = None then
              let lineno = i + 1 in
              match Syntax.Parser.parse_mutations line with
              | ms -> muts := List.rev_append ms !muts
              | exception
                  ( Syntax.Lexer.Error (msg, _, c)
                  | Syntax.Parser.Error (msg, _, c) ) ->
                  if strict then bad := Some (lineno, c, msg, line)
                  else rejected := (lineno, line) :: !rejected)
          lines;
        (match !bad with
        | Some b -> Error (`Parse b)
        | None -> Ok (List.rev !muts, List.rev !rejected))
  in
  let run file log max_level engine_tag domains stats checkpoint ck_every
      resume wal_dir recover retries fault_plan strict_log =
    with_program file (fun p ->
        let plan =
          match fault_plan with
          | None -> Ok Resil.Fault.none
          | Some spec -> Resil.Fault.parse spec
        in
        match plan with
        | Error msg ->
            Fmt.epr "error: %s@." msg;
            2
        | Ok _ when recover && wal_dir = None ->
            Fmt.epr "error: --recover requires --wal DIR@.";
            2
        | Ok plan -> (
            match read_log ~strict:strict_log log with
            | Error (`Io e) ->
                Fmt.epr "error: %s@." e;
                2
            | Error (`Parse (l, c, msg, content)) ->
                Fmt.epr "error: %s:%d:%d: %s (offending line: %s)@." log l c
                  msg content;
                2
            | Ok (muts, rejected) ->
                List.iter
                  (fun (l, content) ->
                    Fmt.epr "%% warning: %s:%d: skipping malformed log line: \
                             %s@."
                      log l content)
                  rejected;
                let muts = Array.of_list muts in
                let n = Array.length muts in
                let engine = resolve_engine engine_tag domains in
                let sigma = p.Syntax.Parser.tgds in
                let span = Obs.Span.root "serve" in
                let resilient =
                  wal_dir <> None || recover || retries <> None
                  || fault_plan <> None
                in
                let op_of = function
                  | Syntax.Parser.Add f -> Incr.Insert f
                  | Syntax.Parser.Del f -> Incr.Delete f
                in
                let op_eq a b =
                  match (a, b) with
                  | Incr.Insert f, Incr.Insert g | Incr.Delete f, Incr.Delete g
                    ->
                      Fact.compare f g = 0
                  | _ -> false
                in
                let op_str = function
                  | Incr.Insert f -> Fmt.str "+%a" Fact.pp f
                  | Incr.Delete f -> Fmt.str "-%a" Fact.pp f
                in
                (* The maintenance loop, shared by the direct and the
                   supervised paths. [start_seq] is the 1-based position of
                   the first mutation still to apply (recovery already
                   replayed the WAL tail up to start_seq - 1). *)
                let serve_loop store0 start_seq wal =
                  Fmt.pr "%% serve: store saturated, %d facts@."
                    (Incr.size store0);
                  let store = ref store0 in
                  let inserts = ref 0 and deletes = ref 0 and noops = ref 0 in
                  let quarantined = ref 0 and degradations = ref 0 in
                  (* the supervisor's restore anchor: the last image plus
                     the mutations applied since (newest first) *)
                  let base_image = ref None in
                  let ops_since = ref [] in
                  let since_rotate = ref 0 in
                  let anchor () =
                    base_image := Some (Incr.image !store);
                    ops_since := [];
                    since_rotate := 0
                  in
                  let restore () =
                    match !base_image with
                    | None -> assert false
                    | Some im ->
                        let st = Incr.of_image sigma im in
                        List.iter
                          (fun op -> ignore (Incr.apply st op))
                          (List.rev !ops_since);
                        st
                  in
                  (* last rung: a fresh chase of the current base —
                     always sequential indexed, so ladder transcripts are
                     engine-independent *)
                  let rechase st =
                    Incr.create ~engine:`Indexed sigma (Incr.base st)
                  in
                  let print_effect op (eff : Incr.effect) =
                    match (op, eff.Incr.e_noop) with
                    | Incr.Insert f, true ->
                        incr noops;
                        Fmt.pr "%% +%a: no-op (already in the base)@." Fact.pp f
                    | Incr.Delete f, true ->
                        incr noops;
                        Fmt.pr "%% -%a: no-op (not in the base)@." Fact.pp f
                    | Incr.Insert f, false ->
                        incr inserts;
                        Fmt.pr "%% +%a: %d facts added@." Fact.pp f
                          eff.Incr.e_repaired
                    | Incr.Delete f, false ->
                        incr deletes;
                        Fmt.pr
                          "%% -%a: overdeleted %d, rederived %d, repaired %d, \
                           deleted %d@."
                          Fact.pp f eff.Incr.e_overdeleted eff.Incr.e_rederived
                          eff.Incr.e_repaired eff.Incr.e_deleted
                  in
                  let module Sup = Resil.Serve_supervisor in
                  let pp_rungs steps =
                    String.concat " -> "
                      (List.map
                         (fun (s : Sup.step) ->
                           Sup.rung_to_string s.st_rung
                           ^
                           match s.st_outcome with
                           | `Ok -> ":ok"
                           | `Fault _ -> ":fault")
                         steps)
                  in
                  (* the typed transcript, one entry per attempt, for the
                     stats span tree *)
                  let note_ladder seq steps =
                    degradations :=
                      !degradations
                      + List.length
                          (List.filter
                             (fun (s : Sup.step) -> s.st_rung <> Sup.Repair)
                             steps);
                    Fmt.pr "%% ladder: %s@." (pp_rungs steps);
                    let lspan = Obs.Span.enter span "ladder" in
                    Obs.Span.set lspan "mutation" (Obs.Json.Int seq);
                    Obs.Span.set lspan "transcript"
                      (Obs.Json.String
                         (String.concat "; "
                            (List.map
                               (fun (s : Sup.step) ->
                                 Fmt.str "%d:%s:%s" s.st_attempt
                                   (Sup.rung_to_string s.st_rung)
                                   (match s.st_outcome with
                                   | `Ok -> "ok"
                                   | `Fault f -> f))
                               steps)));
                    Obs.Span.exit lspan
                  in
                  let re_anchor seq =
                    anchor ();
                    Option.iter
                      (fun w ->
                        Resil.Wal.rotate w ~seq (Option.get !base_image))
                      wal
                  in
                  if resilient then anchor ();
                  Resil.Fault.arm_seq plan;
                  Fun.protect ~finally:Resil.Fault.disarm (fun () ->
                      for seq = start_seq to n do
                        let op = op_of muts.(seq - 1) in
                        (* append-before-apply; a fault injected inside
                           append simulates a crash mid-record and
                           terminates the run (recover truncates the torn
                           line) *)
                        Option.iter
                          (fun w -> Resil.Wal.append w (Resil.Wal.Op (seq, op)))
                          wal;
                        if not resilient then
                          print_effect op (Incr.apply ~obs:span !store op)
                        else
                          match
                            Sup.apply ?retries ~obs:span ~restore ~rechase
                              ~store op
                          with
                          | Sup.Applied (eff, steps) ->
                              print_effect op eff;
                              ops_since := op :: !ops_since;
                              incr since_rotate;
                              if
                                List.exists
                                  (fun (s : Sup.step) -> s.st_outcome <> `Ok)
                                  steps
                              then begin
                                note_ladder seq steps;
                                (* the surviving store may sit on a
                                   re-chased trajectory: re-anchor the WAL
                                   to it so replay stays exact *)
                                re_anchor seq
                              end
                              else if !since_rotate >= ck_every then
                                re_anchor seq
                          | Sup.Quarantined (steps, msg) ->
                              incr quarantined;
                              note_ladder seq steps;
                              Option.iter
                                (fun w ->
                                  Resil.Wal.append w (Resil.Wal.Quarantine seq))
                                wal;
                              Fmt.pr "%% %s: %s@." (op_str op) msg;
                              Fmt.epr "error: mutation %d (%s) %s@." seq
                                (op_str op) msg
                          | exception Sup.Fatal msg ->
                              raise (Invalid_argument msg)
                      done);
                  Fmt.pr
                    "%% serve: %d mutations applied (%d inserts, %d deletes, \
                     %d no-ops), %d facts@."
                    n !inserts !deletes !noops (Incr.size !store);
                  if !quarantined > 0 then
                    Fmt.pr "%% serve: %d mutation(s) quarantined@." !quarantined;
                  (* set-style so a recovered run (whose image may already
                     carry the counter) converges to the same value *)
                  if rejected <> [] then begin
                    let c =
                      Obs.Metrics.counter
                        (Incr.metrics !store)
                        "serve.rejected_lines"
                    in
                    Obs.Metrics.add c (List.length rejected - Obs.Metrics.value c)
                  end;
                  Instance.iter
                    (fun f -> Fmt.pr "%a.@." Fact.pp f)
                    (Incr.instance !store);
                  (match checkpoint with
                  | Some path ->
                      Resil.Checkpoint.save path (Incr.checkpoint !store)
                  | None -> ());
                  Option.iter Resil.Wal.close wal;
                  Obs.Span.exit span;
                  (match stats with
                  | Some path ->
                      let rep = Incr.report ~name:"serve" ~span !store in
                      Obs.Report.add_field rep "mutations" (Obs.Json.Int n);
                      if !quarantined > 0 then
                        Obs.Report.add_field rep "quarantined"
                          (Obs.Json.Int !quarantined);
                      if !degradations > 0 then
                        Obs.Report.add_field rep "degradations"
                          (Obs.Json.Int !degradations);
                      Obs.Report.write path rep
                  | None -> ());
                  if !quarantined > 0 then 1 else 0
                in
                let prep =
                  match wal_dir with
                  | Some dir when recover && not (Resil.Wal.is_empty ~dir) -> (
                      match Resil.Wal.recover ~dir with
                      | Error msg -> Error (`Fault msg)
                      | Ok r ->
                          let ok (s, op) =
                            s >= 1 && s <= n && op_eq (op_of muts.(s - 1)) op
                          in
                          if
                            r.Resil.Wal.rec_last_seq > n
                            || not (List.for_all ok r.Resil.Wal.rec_ops)
                          then
                            Error
                              (`Input
                                 (Fmt.str
                                    "WAL %s does not match the mutation log %s"
                                    dir log))
                          else begin
                            let rspan = Obs.Span.enter span "recover" in
                            let store =
                              Incr.of_image sigma r.Resil.Wal.rec_image
                            in
                            List.iter
                              (fun (_, op) -> ignore (Incr.apply store op))
                              r.Resil.Wal.rec_ops;
                            let replayed = List.length r.Resil.Wal.rec_ops in
                            Obs.Span.set rspan "image_seq"
                              (Obs.Json.Int r.Resil.Wal.rec_image_seq);
                            Obs.Span.set rspan "records_replayed"
                              (Obs.Json.Int replayed);
                            Obs.Span.set rspan "records_truncated"
                              (Obs.Json.Int r.Resil.Wal.rec_truncated);
                            if r.Resil.Wal.rec_skipped_images > 0 then
                              Obs.Span.set rspan "skipped_images"
                                (Obs.Json.Int r.Resil.Wal.rec_skipped_images);
                            if r.Resil.Wal.rec_quarantined <> [] then
                              Obs.Span.set rspan "quarantined"
                                (Obs.Json.Int
                                   (List.length r.Resil.Wal.rec_quarantined));
                            Obs.Span.exit rspan;
                            Fmt.pr
                              "%% recover: image at seq %d, %d record(s) \
                               replayed, %d truncated@."
                              r.Resil.Wal.rec_image_seq replayed
                              r.Resil.Wal.rec_truncated;
                            Ok
                              ( store,
                                r.Resil.Wal.rec_last_seq + 1,
                                Some (Resil.Wal.reopen ~dir) )
                          end)
                  | _ -> (
                      let fresh =
                        match resume with
                        | None ->
                            Ok
                              (Incr.create ~engine ~max_level ~obs:span sigma
                                 (Syntax.Parser.database p))
                        | Some path -> (
                            match Resil.Checkpoint.load path with
                            | Ok ck ->
                                Ok (Incr.of_checkpoint ~engine ~obs:span sigma ck)
                            | Error (Resil.Checkpoint.Io _ as e) ->
                                Error
                                  (`Input (Resil.Checkpoint.error_message e))
                            | Error (Resil.Checkpoint.Corrupt _ as e) ->
                                Error
                                  (`Fault (Resil.Checkpoint.error_message e)))
                      in
                      match fresh with
                      | Error _ as e -> e
                      | Ok store ->
                          if not (Incr.saturated store) then Error `Unsat
                          else begin
                            if recover then
                              Fmt.pr "%% recover: empty WAL — starting fresh@.";
                            let wal =
                              Option.map
                                (fun dir ->
                                  Resil.Wal.create ~dir (Incr.image store))
                                wal_dir
                            in
                            Ok (store, 1, wal)
                          end)
                in
                match prep with
                | Error (`Input msg) ->
                    Fmt.epr "error: %s@." msg;
                    2
                | Error (`Fault msg) ->
                    Fmt.epr "error: %s@." msg;
                    1
                | Error `Unsat ->
                    Fmt.epr
                      "error: store did not saturate within %d levels — \
                       cannot maintain a truncated chase@."
                      max_level;
                    1
                | Ok (store, start_seq, wal) -> serve_loop store start_seq wal))
  in
  let log_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Mutation log: ground $(b,+fact(...).) / $(b,-fact(...).) \
                statements applied in order.")
  in
  let wal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:"Write-ahead log: every mutation is appended and fsync'd to \
                $(docv) before it applies, so a killed run recovers with \
                $(b,--recover). $(b,--checkpoint-every) sets the image \
                rotation cadence.")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:"Recover the store from the $(b,--wal) directory (newest \
                intact image plus WAL tail replay, truncating a torn final \
                record), then continue the mutation log where it left off. \
                An empty WAL directory falls back to a fresh start.")
  in
  let serve_retries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"R"
          ~doc:"Supervise each mutation: $(docv) total attempts on the \
                degradation ladder (incremental repair, then bounded \
                re-derive, then full re-chase) before the mutation is \
                quarantined (default 3).")
  in
  let serve_ck_every_arg =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Rotate the WAL (write a fresh store image, start a new \
                segment, prune the old ones) every $(docv) applied \
                mutations (default 25).")
  in
  let strict_log_arg =
    Arg.(
      value & opt bool true
      & info [ "strict-log" ] ~docv:"BOOL"
          ~doc:"Abort on a malformed mutation-log line (default). \
                $(b,--strict-log=false) skips such lines with a warning and \
                counts them in the $(b,serve.rejected_lines) counter.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Maintain a chased store under a base-fact mutation log \
             (incremental insert/delete repair, no re-chase), optionally \
             write-ahead logged and supervised.")
    Term.(
      const run $ file_arg $ log_arg $ level_arg $ engine_arg $ domains_arg
      $ stats_arg $ checkpoint_arg $ serve_ck_every_arg $ resume_arg $ wal_arg
      $ recover_arg $ serve_retries_arg $ fault_plan_arg $ strict_log_arg)

(* ------------------------------------------------------------------ *)
(* server                                                               *)
(* ------------------------------------------------------------------ *)

(* Daemon mode: saturate once, freeze the store behind an immutable
   snapshot, then serve `answers`/`count` request lines from stdin
   through a pool of worker domains (Server.run). Each reply is one
   line carrying the request id, so a transcript sorted by id is
   byte-identical under any --workers value. SIGTERM drains: in-flight
   requests complete, further input is ignored, and a clean drain exits
   0; request errors or quarantined queries exit 1. *)
let server_cmd =
  let run file max_level engine_tag domains workers stats budget_facts
      budget_ms fault_plan =
    with_program file (fun p ->
        let plan =
          match fault_plan with
          | None -> Ok Resil.Fault.none
          | Some spec -> Resil.Fault.parse spec
        in
        match plan with
        | Error msg ->
            Fmt.epr "error: %s@." msg;
            2
        | Ok _ when workers < 1 ->
            Fmt.epr "error: --workers must be >= 1@.";
            2
        | Ok plan
          when plan <> [] && workers > 1 && not (Resil.Fault.stateless plan) ->
            Fmt.epr
              "error: a counted --fault-plan requires --workers 1 (the probe \
               hook is process-global; only point:NAME:* plans are \
               race-free)@.";
            2
        | Ok plan ->
            (* the parallel engine is the default saturator here: the
               server amortises one big chase over many requests *)
            let engine =
              match (engine_tag, domains) with
              | `Parallel, None -> `Parallel (Domain.recommended_domain_count ())
              | tag, _ -> resolve_engine tag domains
            in
            let sigma = p.Syntax.Parser.tgds in
            let db = Syntax.Parser.database p in
            let span = Obs.Span.root "server" in
            let r =
              Obs.Span.timed (Some span) "saturate" (fun () ->
                  Tgds.Chase.run ~engine ~max_level sigma db)
            in
            let saturated = Tgds.Chase.saturated r in
            let snap =
              Engine.Snapshot.freeze ~saturated ~universe:(Instance.dom db)
                (Tgds.Chase.index r)
            in
            Fmt.pr "%% server: store %s, %d facts (workers %d)@."
              (if saturated then "saturated" else "truncated — replies partial")
              (Engine.Snapshot.size snap) workers;
            let report =
              match stats with
              | None -> None
              | Some _ -> Some (Obs.Report.create ~span "server")
            in
            let stop = ref false in
            let previous =
              Sys.signal Sys.sigterm
                (Sys.Signal_handle (fun _ -> stop := true))
            in
            let summary =
              Fun.protect
                ~finally:(fun () -> Sys.set_signal Sys.sigterm previous)
                (fun () ->
                  Server.Daemon.run ?report ~stop
                    {
                      Server.Daemon.workers;
                      max_facts = budget_facts;
                      max_ms = budget_ms;
                      fault_plan = plan;
                    }
                    snap stdin stdout)
            in
            Fmt.pr
              "%% server: %d request(s) served (%d ok, %d partial, %d \
               error(s), %d quarantined)@."
              summary.Server.Daemon.served summary.Server.Daemon.ok
              summary.Server.Daemon.partial summary.Server.Daemon.errors
              summary.Server.Daemon.quarantined;
            if summary.Server.Daemon.drained then
              Fmt.pr "%% server: drained on signal@.";
            Obs.Span.exit span;
            (match (stats, report) with
            | Some path, Some rep -> Obs.Report.write path rep
            | _ -> ());
            if
              summary.Server.Daemon.errors > 0
              || summary.Server.Daemon.quarantined > 0
            then 1
            else 0)
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains serving requests from the shared snapshot \
                (default 1). Reply transcripts sorted by request id are \
                identical for every value.")
  in
  let server_engine_arg =
    let engine_conv =
      Arg.enum [ ("indexed", `Indexed); ("naive", `Naive); ("parallel", `Parallel) ]
    in
    Arg.(
      value & opt engine_conv `Parallel
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Saturation engine for the one-time chase (default \
                $(b,parallel): the server amortises saturation over many \
                requests).")
  in
  let req_budget_facts_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget-facts" ] ~docv:"N"
          ~doc:"Per-request admission control: cap each reply at $(docv) \
                answers (excess requests answer $(b,partial)).")
  in
  let req_budget_ms_arg =
    Arg.(
      value & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline, in milliseconds: a request over \
                budget answers $(b,partial) with the sound prefix \
                enumerated so far.")
  in
  Cmd.v
    (Cmd.info "server"
       ~doc:"Saturate once, then serve concurrent $(b,answers)/$(b,count) \
             request lines from stdin over the frozen store; one reply \
             line per request, tagged with the request id.")
    Term.(
      const run $ file_arg $ level_arg $ server_engine_arg $ domains_arg
      $ workers_arg $ stats_arg $ req_budget_facts_arg $ req_budget_ms_arg
      $ fault_plan_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                             *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run file =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        let module T = Tgds.Tgd in
        Fmt.pr "TGDs: %d@." (List.length sigma);
        Fmt.pr "linear (L):           %b@." (T.all_linear sigma);
        Fmt.pr "guarded (G):          %b@." (T.all_guarded sigma);
        Fmt.pr "frontier-guarded (FG): %b@." (T.all_frontier_guarded sigma);
        Fmt.pr "full (no existentials): %b@." (T.all_full sigma);
        Fmt.pr "max head atoms (m):    %d@." (T.max_head_size sigma);
        Fmt.pr "schema arity (r):      %d@." (Schema.ar (T.schema_of_set sigma));
        0)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Report the syntactic TGD classes of the program's rules.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* eval (open world) / cqs-eval (closed world)                          *)
(* ------------------------------------------------------------------ *)

let pp_tuple ppf t = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") Relational.Term.pp_const) t

let eval_cmd =
  let run file qname max_level fpt stats budget_facts budget_ms =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let omq = Omq.full_data_schema ~ontology:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            let budget = make_budget budget_facts budget_ms in
            let span = Obs.Span.root "eval" in
            let exact =
              if Ucq.arity q = 0 then begin
                let v =
                  if fpt then
                    Omq_eval.certain_fpt ~max_level ?budget ~obs:span omq db []
                  else Omq_eval.certain ~max_level ?budget ~obs:span omq db []
                in
                Fmt.pr "%s%s@."
                  (if v.Omq_eval.holds then "true" else "false")
                  (if v.Omq_eval.exact then "" else " (bounded — not exact)");
                v.Omq_eval.exact
              end
              else begin
                let answers, exact =
                  Omq_eval.answers ~max_level ?budget ~obs:span omq db
                in
                List.iter (fun t -> Fmt.pr "%a@." pp_tuple t) answers;
                if not exact then Fmt.pr "%% bounded chase — possibly incomplete@.";
                exact
              end
            in
            Obs.Span.exit span;
            (match stats with
            | Some path ->
                let rep = Obs.Report.create ~span "eval" in
                Obs.Report.add_field rep "exact" (Obs.Json.Bool exact);
                Obs.Report.write path rep
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Open-world certain answers (ontology-mediated querying).")
    Term.(
      const run $ file_arg $ query_arg $ level_arg
      $ Arg.(value & flag & info [ "fpt" ] ~doc:"Use the linearization-based FPT engine (guarded only).")
      $ stats_arg $ budget_facts_arg $ budget_ms_arg)

(* `answers` — the streaming enumerator (Engine.Enumerate) behind
   Omq_eval.answer_set. Same knobs as `eval` plus the chase engine
   selection of `chase`; answer sets print in canonical sorted order, so
   the output is byte-identical across engines and domain counts. *)
let answers_cmd =
  let run file qname max_level fpt engine_tag domains stats budget_facts
      budget_ms =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let omq = Omq.full_data_schema ~ontology:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            let engine = resolve_engine engine_tag domains in
            let budget = make_budget budget_facts budget_ms in
            let span = Obs.Span.root "answers" in
            let r =
              Omq_eval.answer_set ~engine ~fpt ~max_level ?budget ~obs:span
                omq db
            in
            List.iter (fun t -> Fmt.pr "%a@." pp_tuple t) r.Omq_eval.tuples;
            report_outcome r.Omq_eval.outcome;
            if not r.Omq_eval.exact then
              Fmt.pr "%% bounded run — answer set possibly incomplete@.";
            Obs.Span.exit span;
            (match stats with
            | Some path ->
                let rep = Obs.Report.create ~span "answers" in
                Obs.Report.add_field rep "answers"
                  (Obs.Json.Int (List.length r.Omq_eval.tuples));
                Obs.Report.add_field rep "exact" (Obs.Json.Bool r.Omq_eval.exact);
                Obs.Report.write path rep
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:"Enumerate the open-world certain answers (output-sensitive: \
             walks index posting lists instead of testing the \
             |adom|^arity cross product).")
    Term.(
      const run $ file_arg $ query_arg $ level_arg
      $ Arg.(value & flag & info [ "fpt" ] ~doc:"Use the linearization-based FPT pipeline (guarded only).")
      $ engine_arg $ domains_arg $ stats_arg $ budget_facts_arg
      $ budget_ms_arg)

let cqs_eval_cmd =
  let run file qname optimize stats =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            if not (Cqs.admissible s db) then
              Fmt.pr "%% warning: database violates the constraints (promise broken)@.";
            let span = Obs.Span.root "cqs-eval" in
            let s = if optimize then Cqs_eval.optimize ~obs:span s else s in
            if optimize then
              Fmt.pr "%% optimized query: %a@." Ucq.pp (Cqs.query s);
            List.iter (fun t -> Fmt.pr "%a@." pp_tuple t)
              (Cqs_eval.answers ~obs:span s db);
            Obs.Span.exit span;
            (match stats with
            | Some path -> Obs.Report.write path (Obs.Report.create ~span "cqs-eval")
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "cqs-eval"
       ~doc:"Closed-world evaluation under integrity constraints.")
    Term.(
      const run $ file_arg $ query_arg
      $ Arg.(value & flag & info [ "optimize" ] ~doc:"Σ-minimize the query first.")
      $ stats_arg)

(* ------------------------------------------------------------------ *)
(* treewidth / core                                                     *)
(* ------------------------------------------------------------------ *)

let treewidth_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            List.iteri
              (fun i cq ->
                Fmt.pr "disjunct %d: treewidth %d, core treewidth %d@." i
                  (Cq.treewidth cq)
                  (Cq_core.semantic_treewidth cq))
              (Ucq.disjuncts q);
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            (match Equivalence.semantic_ucq_treewidth s with
            | Some (k, _) -> Fmt.pr "uniformly UCQ%d-equivalent under Σ@." k
            | None -> Fmt.pr "not uniformly UCQk-equivalent for k ≤ 4@.");
            0)
  in
  Cmd.v
    (Cmd.info "treewidth"
       ~doc:"Treewidths: syntactic, of the core, and modulo the constraints.")
    Term.(const run $ file_arg $ query_arg)

let rewrite_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            if not (Tgds.Tgd.all_linear p.Syntax.Parser.tgds) then begin
              Fmt.epr "error: UCQ rewriting requires linear TGDs@.";
              1
            end
            else begin
              let q', complete = Tgds.Linear_rewrite.rewrite p.Syntax.Parser.tgds q in
              List.iter
                (fun cq -> Fmt.pr "%a@." (Syntax.Pretty.pp_query qname) cq)
                (Ucq.disjuncts q');
              if not complete then Fmt.pr "%% budget exhausted — possibly incomplete@.";
              0
            end)
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Perfect UCQ rewriting for linear TGDs (Proposition D.2).")
    Term.(const run $ file_arg $ query_arg)

let equiv_cmd =
  let run file qname k =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            let verdict, witness = Equivalence.cqs_uniformly_ucqk_equivalent k s in
            Fmt.pr "uniformly UCQ%d-equivalent: %a@." k
              Sigma_containment.pp_verdict verdict;
            (match witness with
            | Some sa -> Fmt.pr "witness: %a@." Ucq.pp (Cqs.query sa)
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Decide uniform UCQk-equivalence (the meta problem, Thm 5.6/5.10).")
    Term.(const run $ file_arg $ query_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* terminates / witness / reduce                                        *)
(* ------------------------------------------------------------------ *)

let terminates_cmd =
  let run file =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        let module T = Tgds.Termination in
        Fmt.pr "weakly acyclic:            %b@." (T.weakly_acyclic sigma);
        Fmt.pr "termination guaranteed:    %b@."
          (T.terminates_on_all_databases sigma);
        Fmt.pr "dependency edges:@.";
        List.iter (fun e -> Fmt.pr "  %a@." T.pp_edge e) (T.dependency_edges sigma);
        0)
  in
  Cmd.v
    (Cmd.info "terminates"
       ~doc:"Static chase-termination analysis (weak acyclicity).")
    Term.(const run $ file_arg)

let witness_cmd =
  let run file n =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        if not (Tgds.Tgd.all_guarded sigma) then begin
          Fmt.epr "error: finite witnesses require guarded TGDs@.";
          1
        end
        else begin
          let db = Syntax.Parser.database p in
          let m = Guarded_core.Finite_witness.build ~n sigma db in
          Fmt.pr "%% finite witness M(D,Σ,%d): %d facts, model: %b@." n
            (Instance.size m)
            (Guarded_core.Finite_witness.verify sigma db m);
          Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) m;
          0
        end)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Build the finite witness M(D,Σ,n) of Theorem 6.7.")
    Term.(
      const run $ file_arg
      $ Arg.(value & opt int 3 & info [ "n" ] ~doc:"Query-variable budget."))

let reduce_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let sigma = p.Syntax.Parser.tgds in
            if not (Tgds.Tgd.all_guarded sigma) then begin
              Fmt.epr "error: the OMQ→CQS reduction requires guarded TGDs@.";
              1
            end
            else begin
              let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
              let db = Syntax.Parser.database p in
              let d_star = Reductions.omq_to_cqs omq db in
              Fmt.pr "%% D* (%d facts; satisfies Σ: %b)@." (Instance.size d_star)
                (Tgds.Tgd.satisfies_all d_star sigma);
              Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) d_star;
              0
            end)
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Proposition 5.8: build D* reducing open-world to closed-world evaluation.")
    Term.(const run $ file_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* clique reduction demo                                                *)
(* ------------------------------------------------------------------ *)

let clique_cmd =
  let run n k p_edge seed =
    let graph = Workload.random_graph ~n ~p:p_edge ~seed in
    let truth = Qgraph.Graph.has_clique graph k in
    let q = if k <= 2 then Workload.path_cq 2 else Workload.grid_cq k (Grohe.capital_k k) in
    let d = Reductions.constraint_free_instance q in
    (match Reductions.clique_to_cqs d ~graph ~k with
    | None ->
        Fmt.pr "no %d×%d grid minor in the query — cannot carry k=%d@." k
          (Grohe.capital_k k) k
    | Some ci ->
        let via = Reductions.decide_clique ci in
        Fmt.pr "graph: %d vertices, %d edges@." (Qgraph.Graph.num_vertices graph)
          (Qgraph.Graph.num_edges graph);
        Fmt.pr "D* size: %d facts@." (Instance.size ci.Reductions.d_star.Grohe.db);
        Fmt.pr "%d-clique via CQS evaluation: %b (direct search: %b)@." k via truth);
    0
  in
  Cmd.v
    (Cmd.info "clique"
       ~doc:"Decide p-Clique through the Theorem 5.13 reduction to CQS evaluation.")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "n" ] ~doc:"Graph vertices.")
      $ Arg.(value & opt int 3 & info [ "k" ] ~doc:"Clique size.")
      $ Arg.(value & opt float 0.4 & info [ "p" ] ~doc:"Edge probability.")
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed."))

let main =
  Cmd.group
    (Cmd.info "guarded" ~version:"1.0.0"
       ~doc:"Open- and closed-world query evaluation under guarded TGDs.")
    [
      chase_cmd; serve_cmd; server_cmd; classify_cmd; eval_cmd; answers_cmd;
      cqs_eval_cmd;
      treewidth_cmd; rewrite_cmd; equiv_cmd; clique_cmd;
      terminates_cmd; witness_cmd; reduce_cmd;
    ]

let () = exit (Cmd.eval' main)
