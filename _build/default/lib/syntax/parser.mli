(** Recursive-descent parser for the surface language.

    Statements (period-terminated): schema declarations [p/2.], TGDs
    [body -> head.] (implicit existentials; empty body as [true -> …]),
    ground facts, and query clauses [q(X) :- body.] (same-name clauses
    form a UCQ). Uppercase-initial identifiers are variables. *)

open Relational

type program = {
  schema : Schema.t;  (** declared plus inferred predicates *)
  tgds : Tgds.Tgd.t list;
  facts : Fact.t list;
  queries : (string * Ucq.t) list;  (** named UCQs, in declaration order *)
}

exception Error of string * int * int

(** Raises {!Error} / {!Lexer.Error} with positions on malformed input. *)
val parse : string -> program

val parse_file : string -> program

(** Database of the program's facts. *)
val database : program -> Instance.t

(** Look up a named query. *)
val query : program -> string -> Ucq.t option
