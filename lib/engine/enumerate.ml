(** Streaming answer enumeration over {!Index} posting lists; see the
    interface for the algorithm and the budget/observability contract. *)

open Relational
open Relational.Term

type result = {
  answers : const list list;
  outcome : Obs.Budget.outcome;
}

(* Raised to unwind the search when the budget cuts mid-enumeration; the
   accumulated prefix is kept. *)
exception Cut of Obs.Budget.violation

(* Shared mutable state of one [cq]/[ucq] call: the cross-disjunct dedup
   table, the emitted-answer count the budget's fact axis meters, and the
   per-disjunct candidate counter. *)
type state = {
  seen : (const list, unit) Hashtbl.t;
  mutable emitted : int;
  mutable acc : const list list;
  mutable candidates : int;
}

let check_budget budget st =
  match Obs.Budget.check budget ~facts:st.emitted ~level:0 with
  | Some v -> raise (Cut v)
  | None -> ()

let emit budget st tuple =
  if not (Hashtbl.mem st.seen tuple) then begin
    Hashtbl.add st.seen tuple ();
    st.acc <- tuple :: st.acc;
    st.emitted <- st.emitted + 1;
    Obs.Probe.hit "engine.answer";
    check_budget budget st
  end

(* Expand the answer variables of [free] (absent from every atom of the
   disjunct) over the universe, in sorted-constant order. [prefix] holds
   the already-fixed answer positions reversed. *)
let rec expand_free budget st universe prefix = function
  | [] -> emit budget st (List.rev prefix)
  | `Free :: rest ->
      ConstSet.iter
        (fun c -> expand_free budget st universe (c :: prefix) rest)
        universe
  | `Bound c :: rest -> expand_free budget st universe (c :: prefix) rest

(* One disjunct. [answer] is the CQ's answer-variable tuple; [universe]
   is null-free. *)
let enum_cq budget st ~universe idx (q : Cq.t) =
  let answer = Cq.answer q in
  (* answer variables occurring in some atom; the others are free and
     range over the universe *)
  let atom_vars =
    List.fold_left
      (fun acc a -> VarSet.union (Atom.vars a) acc)
      VarSet.empty (Cq.atoms q)
  in
  let rec search (b : Homomorphism.binding) pending =
    check_budget budget st;
    let needs_binding x = VarSet.mem x atom_vars && not (VarMap.mem x b) in
    if List.exists needs_binding answer then begin
      (* expand the cheapest pending atom that still constrains an
         unbound answer variable *)
      let best =
        List.fold_left
          (fun best (i, a) ->
            if not (VarSet.exists needs_binding (Atom.vars a)) then best
            else
              let c = Index.candidate_count idx a b in
              match best with
              | Some (_, _, bc) when bc <= c -> best
              | _ -> Some (i, a, c))
          None
          (List.mapi (fun i a -> (i, a)) pending)
      in
      match best with
      | None ->
          (* unreachable: an unbound answer variable of [atom_vars] always
             occurs in some pending atom (matched atoms bind their
             variables) *)
          assert false
      | Some (i, a, _) ->
          let rest = List.filteri (fun j _ -> j <> i) pending in
          Index.fold_matches idx a b ~injective:false
            ~on_candidate:(fun () -> st.candidates <- st.candidates + 1)
            ~on_fail:(fun () -> ())
            (fun b' () -> search b' rest)
            ()
    end
    else begin
      (* every atom-constrained answer variable is bound: the subtree
         below this node cannot change the answer tuple, so decide it
         here and prune *)
      let positions =
        List.map
          (fun x ->
            match VarMap.find_opt x b with
            | Some c -> `Bound c
            | None -> `Free)
          answer
      in
      let bound_ok =
        List.for_all
          (function `Bound c -> ConstSet.mem c universe | `Free -> true)
          positions
      in
      let free = List.exists (function `Free -> true | _ -> false) positions in
      if bound_ok && (not free || not (ConstSet.is_empty universe)) then
        let all_seen =
          (not free)
          && Hashtbl.mem st.seen
               (List.map
                  (function `Bound c -> c | `Free -> assert false)
                  positions)
        in
        if not all_seen then
          (* the remaining atoms are purely existential: one witness is
             enough *)
          let holds =
            pending = [] || Joiner.exists ~probe:false ~init:b pending idx
          in
          if holds then expand_free budget st universe [] positions
    end
  in
  search VarMap.empty (Cq.atoms q)

let with_child obs name f =
  match obs with
  | None -> f None
  | Some parent ->
      let sp = Obs.Span.enter parent name in
      Fun.protect ~finally:(fun () -> Obs.Span.exit sp) (fun () -> f (Some sp))

let run ?budget ?obs ~universe idx disjuncts =
  let budget = Option.value budget ~default:Obs.Budget.unlimited in
  let universe = ConstSet.filter (fun c -> not (is_null c)) universe in
  let st =
    { seen = Hashtbl.create 64; emitted = 0; acc = []; candidates = 0 }
  in
  let outcome = ref Obs.Budget.Complete in
  (try
     List.iteri
       (fun i q ->
         with_child obs "disjunct" @@ fun sp ->
         let c0 = st.candidates and e0 = st.emitted in
         let finish () =
           match sp with
           | None -> ()
           | Some sp ->
               Obs.Span.set sp "disjunct" (Obs.Json.Int i);
               Obs.Span.set sp "candidates" (Obs.Json.Int (st.candidates - c0));
               Obs.Span.set sp "emitted" (Obs.Json.Int (st.emitted - e0))
         in
         (try enum_cq budget st ~universe idx q
          with Cut v ->
            finish ();
            (match sp with
            | Some sp ->
                Obs.Span.set sp "cut" (Obs.Json.String (Fmt.str "%a" Obs.Budget.pp_violation v))
            | None -> ());
            raise (Cut v));
         finish ())
       disjuncts
   with Cut v -> outcome := Obs.Budget.Partial v);
  {
    answers = List.sort_uniq Stdlib.compare st.acc;
    outcome = !outcome;
  }

let cq ?budget ?obs ~universe idx q = run ?budget ?obs ~universe idx [ q ]
let ucq ?budget ?obs ~universe idx u = run ?budget ?obs ~universe idx (Ucq.disjuncts u)
