(** Relational atoms [R(t1,...,tn)] over terms, and ground facts. *)

open Term

type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let pred a = a.pred
let args a = a.args
let arity a = List.length a.args
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

(** Variables occurring in the atom, left to right (duplicates removed). *)
let vars a =
  List.fold_left
    (fun acc t -> match t with Var x -> VarSet.add x acc | Const _ -> acc)
    VarSet.empty a.args

let consts a =
  List.fold_left
    (fun acc t -> match t with Const c -> ConstSet.add c acc | Var _ -> acc)
    ConstSet.empty a.args

let is_ground a = List.for_all (function Const _ -> true | Var _ -> false) a.args

(** [apply subst a] substitutes variables by terms; unmapped variables are
    left in place. *)
let apply (subst : Term.t VarMap.t) a =
  let args =
    List.map
      (fun t ->
        match t with
        | Var x -> ( match VarMap.find_opt x subst with Some u -> u | None -> t)
        | Const _ -> t)
      a.args
  in
  { a with args }

(** [rename_consts f a] maps every constant through [f] (identity when [f]
    returns [None]). *)
let rename_consts f a =
  let args =
    List.map
      (fun t ->
        match t with
        | Const c -> ( match f c with Some c' -> Const c' | None -> t)
        | Var _ -> t)
      a.args
  in
  { a with args }

(** Declared schema entry of the atom. *)
let schema_entry a = (a.pred, arity a)

let pp ppf a =
  if a.args = [] then Fmt.string ppf a.pred
  else Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:(any ",") Term.pp) a.args
