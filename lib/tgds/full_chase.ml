(** Chase for full TGDs (no existential variables).

    For full TGDs the chase is a plain saturation and always terminates
    with a polynomial bound for guarded full sets (Lemma A.4). This module
    is the fast path used by the full-TGD rewritings of Theorem D.1. By
    default it runs on the semi-naive engine of [lib/engine]; the original
    per-round re-enumeration remains available as [`Naive] for the
    ablations. Runs are bounded by an optional {!Obs.Budget.t}; {!run}
    reports whether the fixpoint was reached or the budget cut it. *)

open Relational

let check_full sigma =
  List.iter
    (fun t ->
      if not (Tgd.is_full t) then
        invalid_arg "Full_chase.saturate: non-full TGD")
    sigma

(* The original loop: every round re-runs every body homomorphism against
   the whole instance. Rounds count as budget levels. *)
let saturate_naive ~budget ~obs sigma db =
  Obs.Span.timed obs "full_chase" @@ fun () ->
  let inst = ref db in
  let changed = ref true in
  let round_no = ref 0 in
  let violation = ref None in
  while !changed && !violation = None do
    Obs.Probe.hit "full_chase.round";
    match
      Obs.Budget.check budget ~facts:(Instance.size !inst)
        ~level:(!round_no + 1)
    with
    | Some v -> violation := Some v
    | None ->
        incr round_no;
        changed := false;
        List.iter
          (fun t ->
            let additions =
              Homomorphism.fold_homs (Tgd.body t) !inst
                (fun b acc ->
                  List.fold_left
                    (fun acc h ->
                      let f = Fact.of_atom (Homomorphism.apply_binding b h) in
                      if Instance.mem f !inst then acc else f :: acc)
                    acc (Tgd.head t))
                []
            in
            if additions <> [] then begin
              changed := true;
              inst :=
                List.fold_left (fun i f -> Instance.add_fact f i) !inst additions
            end)
          sigma
  done;
  let outcome =
    match !violation with
    | Some v -> Obs.Budget.Partial v
    | None -> Obs.Budget.Complete
  in
  (!inst, outcome)

(** [run ?engine ?budget ?obs sigma db] — the (finite) chase of [db] under
    the full TGD set [sigma], with the outcome of the run. Raises
    [Invalid_argument] when some TGD is not full. Both engines compute the
    same least fixpoint. *)
let run ?(engine = `Indexed) ?(budget = Obs.Budget.unlimited) ?obs sigma db =
  check_full sigma;
  match engine with
  | `Naive -> saturate_naive ~budget ~obs sigma db
  | (`Indexed | `Parallel _) as e ->
      let sat_engine =
        match e with
        | `Parallel n -> Engine.Saturate.Parallel n
        | _ -> Engine.Saturate.Indexed
      in
      let rules =
        List.map
          (fun t -> Engine.Saturate.{ body = Tgd.body t; head = Tgd.head t })
          sigma
      in
      let r = Engine.Saturate.run ~engine:sat_engine ~budget ?obs rules db in
      (Engine.Index.to_instance r.Engine.Saturate.index,
       r.Engine.Saturate.outcome)

(** [saturate ?engine sigma db] — {!run} without the outcome. *)
let saturate ?engine ?budget ?obs sigma db =
  fst (run ?engine ?budget ?obs sigma db)

(** [entails sigma db q tuple] — exact UCQ certain answering over a full
    TGD set (the chase is finite and universal, Propositions 2.2/3.1). *)
let entails sigma db q tuple = Ucq.entails (saturate sigma db) q tuple

(** [holds sigma db q] — Boolean variant. *)
let holds sigma db q = Ucq.holds (saturate sigma db) q

(** An upper bound on the size of the guarded-full chase from Lemma A.4:
    [|D| · |T| · ar(T)^ar(T)]. *)
let size_bound sigma db =
  let t = Tgd.schema_of_set sigma in
  let ar = max 1 (Schema.ar t) in
  let pow =
    let rec go acc n = if n = 0 then acc else go (acc * ar) (n - 1) in
    go 1 ar
  in
  Instance.size db * max 1 (Schema.cardinal t) * pow
