test/test_tgds.mli:
