(** Two-stage FO rewriting for guarded OMQs (the route of Theorem D.1):
    linearize (Lemma A.3), then UCQ-rewrite over the linear Σ*
    (Proposition D.2); answering is then a single UCQ evaluation over the
    typed database — no chase at query time. *)

open Relational

type prepared = {
  db_star : Instance.t;
  rewriting : Ucq.t;
  complete : bool;  (** both stages stayed within budget *)
}

(** Run both stages. *)
val prepare :
  ?max_types:int -> ?max_queries:int -> Tgds.Tgd.t list -> Instance.t -> Ucq.t -> prepared

(** Certain answers through the composed rewriting; the boolean reports
    exactness. *)
val certain :
  ?max_types:int ->
  ?max_queries:int ->
  Tgds.Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool

(** Boolean variant. *)
val holds :
  ?max_types:int -> ?max_queries:int -> Tgds.Tgd.t list -> Instance.t -> Ucq.t -> bool * bool
