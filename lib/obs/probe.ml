(** Fault-injection probe points; see the interface. *)

let hook : (string -> unit) option ref = ref None

let install f = hook := Some f
let clear () = hook := None
let armed () = !hook <> None

let hit point =
  match !hook with None -> () | Some f -> f point
