(** The (modified) Grohe databases (Theorem 6.1 and Theorem 7.1 /
    Lemma H.2).

    Both constructions lift a database [D] whose Gaifman graph restricted
    to a set [A] of constants contains the [k × K]-grid as a minor
    ([K = k(k−1)/2]) into a database [D_G] / [D*] over the same schema,
    indexed by an input graph [G], such that [G] has a [k]-clique iff [D]
    maps homomorphically back in a structured way. They are the engines of
    the W[1]-hardness reductions (Theorems 5.4 and 5.13). *)

open Relational
open Relational.Term
module Graph = Qgraph.Graph
module ISet = Graph.ISet
module IMap = Graph.IMap

(* ------------------------------------------------------------------ *)
(* Grid coordinates and the bijection χ                                 *)
(* ------------------------------------------------------------------ *)

(** [pairs k] — the unordered pairs over [k] in a fixed order: the
    bijection [χ : pairs ↔ [K]]. *)
let pairs k =
  List.concat_map
    (fun j -> List.filter_map (fun l -> if j < l then Some (j, l) else None)
        (List.init k (fun i -> i + 1)))
    (List.init k (fun i -> i + 1))
  |> List.sort Stdlib.compare

let capital_k k = k * (k - 1) / 2

(** The [k × K] grid as a {!Qgraph.Graph.t}; vertex [(i,p)] (1-based) is
    encoded as [(i-1) * K + (p-1)]. *)
let grid k =
  let kk = max 1 (capital_k k) in
  Graph.grid k kk

let grid_vertex k ~i ~p = ((i - 1) * max 1 (capital_k k)) + (p - 1)

(* ------------------------------------------------------------------ *)
(* Minor maps over constants                                           *)
(* ------------------------------------------------------------------ *)

type minor_map = {
  branch : ConstSet.t array array;
      (** [branch.(i-1).(p-1)] — the constants of branch set [μ(i,p)] *)
  position : (int * int) ConstMap.t;
      (** inverse: a constant of [A] covered by the map ↦ its [(i,p)] *)
}

(** [find_minor_map ~k d a] — search a minor map of the [k × K]-grid onto
    [G^D|A] (restricted to one connected component and extended to be
    onto). Returns [None] when the bounded search fails. *)
let find_minor_map ~k d (a : ConstSet.t) =
  let g, consts = Instance.gaifman d in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace index c i) consts;
  let a_ids =
    ConstSet.fold (fun c acc -> ISet.add (Hashtbl.find index c) acc) a ISet.empty
  in
  let ga = Graph.induced g a_ids in
  let h = grid k in
  (* try each connected component of G^D|A *)
  let rec try_components = function
    | [] -> None
    | comp :: rest -> (
        let sub = Graph.induced ga comp in
        match Qgraph.Minor.find ~h ~g:sub with
        | Some m -> Some (Qgraph.Minor.extend_onto ~g:sub m)
        | None -> try_components rest)
  in
  match try_components (Graph.components ga) with
  | None -> None
  | Some m ->
      let kk = max 1 (capital_k k) in
      let branch = Array.make_matrix k kk ConstSet.empty in
      let position = ref ConstMap.empty in
      IMap.iter
        (fun gv bs ->
          let i = (gv / kk) + 1 and p = (gv mod kk) + 1 in
          let cs =
            ISet.fold (fun id acc -> ConstSet.add consts.(id) acc) bs ConstSet.empty
          in
          branch.(i - 1).(p - 1) <- cs;
          ConstSet.iter (fun c -> position := ConstMap.add c (i, p) !position) cs)
        m;
      Some { branch; position = !position }

(* ------------------------------------------------------------------ *)
(* Constant encoding and h0                                            *)
(* ------------------------------------------------------------------ *)

let const_str = function Named s -> s | Null n -> "#" ^ string_of_int n

(* (v, e, i, p, z) with e = {e1,e2}, p = {j,l} *)
let encode ~v ~e:(e1, e2) ~i ~p:(j, l) ~z =
  Named (Printf.sprintf "⟨%d|%d~%d|%d|%d,%d|%s⟩" v (min e1 e2) (max e1 e2) i j l (const_str z))

type built = {
  db : Instance.t;
  h0 : const ConstMap.t;  (** the surjective projection onto the source *)
}

(* ------------------------------------------------------------------ *)
(* Theorem 7.1 / Lemma H.2: D*(G, D, D', A, μ)                          *)
(* ------------------------------------------------------------------ *)

(* Labelled cliques: injective maps from an index set ⊆ [k] to vertices of
   G, pairwise adjacent. *)
let labelled_cliques graph indices =
  let vs = Graph.vertices graph in
  let rec extend assigned = function
    | [] -> [ assigned ]
    | i :: rest ->
        List.concat_map
          (fun vtx ->
            if
              List.for_all
                (fun (_, w) -> Graph.mem_edge graph vtx w)
                assigned
            then extend ((i, vtx) :: assigned) rest
            else [])
          vs
  in
  extend [] indices

(** [cqs_construction ~graph ~k ~d ~d' ~a ~mu] — the database
    [D*(G,D,D′,A,μ)] of Theorem 7.1, with its projection [h0] onto
    [dom D′]. [d ⊆ d'] is required; constants of [A] must be covered by
    [mu]. *)
let cqs_construction ~graph ~k ~d ~d' ~a ~(mu : minor_map) =
  if not (Instance.subset d d') then
    invalid_arg "Grohe.cqs_construction: D ⊆ D' is required";
  ignore k;
  let h0 = ref ConstMap.empty in
  let db = ref Instance.empty in
  Instance.iter
    (fun f ->
      let zs = Fact.args f in
      (* indices of [k] needed to cover the A-constants of this atom *)
      let needed =
        List.fold_left
          (fun acc z ->
            if ConstSet.mem z a then
              match ConstMap.find_opt z mu.position with
              | Some (i, p) ->
                  let j, l = List.nth (pairs k) (p - 1) in
                  ISet.add i (ISet.add j (ISet.add l acc))
              | None ->
                  invalid_arg
                    "Grohe.cqs_construction: A-constant not covered by μ"
            else acc)
          ISet.empty zs
      in
      List.iter
        (fun eta ->
          let lift z =
            if ConstSet.mem z a then begin
              let i, p = ConstMap.find z mu.position in
              let j, l = List.nth (pairs k) (p - 1) in
              let vi = List.assoc i eta and vj = List.assoc j eta
              and vl = List.assoc l eta in
              let c = encode ~v:vi ~e:(vj, vl) ~i ~p:(j, l) ~z in
              h0 := ConstMap.add c z !h0;
              c
            end
            else begin
              h0 := ConstMap.add z z !h0;
              z
            end
          in
          db := Instance.add_fact (Fact.make (Fact.pred f) (List.map lift zs)) !db)
        (labelled_cliques graph (ISet.elements needed)))
    d';
  { db = !db; h0 = !h0 }

(* ------------------------------------------------------------------ *)
(* Theorem 6.1: D_G with conditions (C1)/(C2)                           *)
(* ------------------------------------------------------------------ *)

(** [omq_construction ~graph ~k ~d ~a ~mu] — the database [D_G] of
    Theorem 6.1: lifts of each atom choose one graph vertex per grid row
    [i] and one graph edge per grid column [p] present in the atom,
    subject to [(v ∈ e ⇔ i ∈ ρ(p))] — conditions (C1)/(C2) hold by
    construction since the choices are per-row/per-column. *)
let omq_construction ~graph ~k ~d ~a ~(mu : minor_map) =
  let h0 = ref ConstMap.empty in
  let db = ref Instance.empty in
  let vertices = Graph.vertices graph in
  let edges = Graph.edges graph in
  Instance.iter
    (fun f ->
      let zs = Fact.args f in
      let coords =
        List.filter_map
          (fun z ->
            if ConstSet.mem z a then
              match ConstMap.find_opt z mu.position with
              | Some (i, p) -> Some (z, (i, p))
              | None -> invalid_arg "Grohe.omq_construction: uncovered A-constant"
            else None)
          zs
      in
      let is = List.sort_uniq Stdlib.compare (List.map (fun (_, (i, _)) -> i) coords) in
      let ps = List.sort_uniq Stdlib.compare (List.map (fun (_, (_, p)) -> p) coords) in
      (* assignments v : i -> V and e : p -> E with the membership
         constraint for each (i,p) coordinate present *)
      let rec assign_v = function
        | [] -> [ [] ]
        | i :: rest ->
            List.concat_map
              (fun v -> List.map (fun a -> (i, v) :: a) (assign_v rest))
              vertices
      in
      let rec assign_e = function
        | [] -> [ [] ]
        | p :: rest ->
            List.concat_map
              (fun e -> List.map (fun a -> (p, e) :: a) (assign_e rest))
              edges
      in
      List.iter
        (fun va ->
          List.iter
            (fun ea ->
              let consistent =
                List.for_all
                  (fun (_, (i, p)) ->
                    let v = List.assoc i va in
                    let e1, e2 = List.assoc p ea in
                    let j, l = List.nth (pairs k) (p - 1) in
                    let i_in_p = i = j || i = l in
                    let v_in_e = v = e1 || v = e2 in
                    i_in_p = v_in_e)
                  coords
              in
              if consistent then begin
                let lift z =
                  match List.assoc_opt z coords with
                  | Some (i, p) ->
                      let v = List.assoc i va and e = List.assoc p ea in
                      let jp = List.nth (pairs k) (p - 1) in
                      let c = encode ~v ~e ~i ~p:jp ~z in
                      h0 := ConstMap.add c z !h0;
                      c
                  | None ->
                      h0 := ConstMap.add z z !h0;
                      z
                in
                db := Instance.add_fact (Fact.make (Fact.pred f) (List.map lift zs)) !db
              end)
            (assign_e ps))
        (assign_v is))
    d;
  { db = !db; h0 = !h0 }

(* ------------------------------------------------------------------ *)
(* The clique criterion (item 2 of both theorems)                       *)
(* ------------------------------------------------------------------ *)

(* Marker predicates let the generic homomorphism engine enforce
   "h0(h(c)) = c on A": mark c in the source and all h0-preimages of c in
   the target. *)
let with_markers ~a ~h0 src dst =
  let mark c = "\005M" ^ const_str c in
  let src' =
    ConstSet.fold (fun c acc -> Instance.add_fact (Fact.make (mark c) [ c ]) acc) a src
  in
  let dst' =
    ConstMap.fold
      (fun b orig acc ->
        if ConstSet.mem orig a then
          Instance.add_fact (Fact.make (mark orig) [ b ]) acc
        else acc)
      h0 dst
  in
  (src', dst')

(** [clique_criterion ~a built d] — is there a homomorphism [h] from [d]
    to [built.db] with [h0(h(·))] the identity on [a]? By item (2) of
    Theorem 7.1 this holds iff [G] has a [k]-clique. *)
let clique_criterion ~a (b : built) d =
  let src, dst = with_markers ~a ~h0:b.h0 d b.db in
  Homomorphism.maps_to src dst

(** [h0_is_homomorphism built d'] — sanity: [h0 : D* → D'] (item 1). *)
let h0_is_homomorphism (b : built) d' = Homomorphism.verify_between b.db d' b.h0
