(** The level-wise chase (§2).

    A trigger is a TGD with a homomorphism of its body into the current
    instance; triggers fire once, inventing fresh labelled nulls for the
    existential variables. The default, oblivious policy is the paper's
    (§2): the result is unique up to isomorphism and the level-bounded
    slices [chase^ℓ_s(D,Σ)] of Lemma A.1 are canonical.

    Two engines: [`Indexed] (default) runs the semi-naive saturation of
    [lib/engine]; [`Naive] is the original re-enumerating loop, kept for
    the ablation benchmarks. Both produce the same s-levels (and the same
    instance up to null renaming), and both honour the same budget cut
    points, so budgeted runs agree level by level too.

    Observability: a run is bounded by an {!Obs.Budget.t} (facts, levels,
    wall-clock deadline) — on violation the partial instance is returned
    with {!outcome}[ = Partial _] instead of the chase looping forever on
    a non-terminating program. Spans nest under [?obs]; {!report}
    assembles the deterministic JSON run report the CLI writes for
    [--stats]. *)

open Relational

type result

type policy =
  | Oblivious  (** the paper's semantics: fire regardless of the head *)
  | Restricted  (** skip triggers whose head is already satisfied *)

type engine = [ `Naive | `Indexed ]

(** [run ?engine ?policy ?max_level ?max_facts ?budget ?obs sigma db] —
    chase until saturation or until the strictest of
    [{max_level, max_facts}] and [budget] cuts the run. *)
val run :
  ?engine:engine ->
  ?policy:policy ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  result

(** The chased instance. *)
val instance : result -> Instance.t

(** No unfired trigger remained — the chase terminated. *)
val saturated : result -> bool

(** Why the run stopped: [Complete] (saturated, or an explicit
    [max_level]/[max_facts] bound was never hit… i.e. no budget fired) or
    [Partial violation]. *)
val outcome : result -> Obs.Budget.outcome

(** The chased instance as an indexed store (the engine's own store when
    the run was indexed; built on demand after a naive run). *)
val index : result -> Engine.Index.t

(** The saturation-engine result ([None] after a naive run). *)
val engine_result : result -> Engine.Saturate.result option

(** New facts at levels 1, 2, … (computed from the s-levels; works for
    both engines). *)
val facts_per_level : result -> int list

(** Highest level reached. *)
val max_level : result -> int

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    ([chase^l_s(D,Σ)] when the run reached level [l]). *)
val up_to_level : result -> int -> Instance.t

(** The s-level of a fact of the result. *)
val level : result -> Fact.t -> int option

(** The ground part [chase↓]: facts without invented nulls. *)
val ground_part : result -> Instance.t

(** [report ?name r] — the run report: outcome, saturation flag, fact
    counts per level, trigger totals, the index/joiner counters and the
    span tree. Deterministic modulo timing floats. *)
val report : ?name:string -> result -> Obs.Report.t

(** Chase and return the instance. *)
val chase :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** [certain ?max_level sigma db q c̄] — sound bounded check of
    [c̄ ∈ q(chase(db,sigma))] (Proposition 3.1); the boolean reports
    whether the run saturated (verdict then exact). *)
val certain :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool
