lib/core/c5_gadget.mli: Cq Instance Relational Tgds
