lib/relational/containment.ml: Cq Homomorphism List Term Ucq VarMap
