(** Concurrent serving loop; see the interface for the contract. *)

type config = {
  workers : int;
  max_facts : int option;
  max_ms : float option;
  fault_plan : Resil.Fault.plan;
}

type summary = {
  served : int;
  ok : int;
  partial : int;
  errors : int;
  quarantined : int;
  drained : bool;
  wall_s : float;
  minor_words : float;
  major_words : float;
}

type counts = {
  mutable c_ok : int;
  mutable c_partial : int;
  mutable c_errors : int;
  mutable c_quarantined : int;
}

(* Domain-local allocation counters (minor, promoted, major words).
   [Gc.quick_stat] is unusable for per-worker deltas: it folds the
   accumulated totals of every *terminated* domain into the reading, so
   a worker sampling after a sibling exits absorbs the sibling's whole
   history. The primitive reads only the calling domain's counters. *)
external gc_counters : unit -> float * float * float = "caml_gc_counters"

let run ?report ?(stop = ref false) cfg snap ic oc =
  if cfg.workers < 1 then invalid_arg "Daemon.run: workers must be >= 1";
  if
    cfg.fault_plan <> [] && cfg.workers > 1
    && not (Resil.Fault.stateless cfg.fault_plan)
  then
    invalid_arg
      "Daemon.run: a counted --fault-plan requires workers = 1 (only \
       always-fire plans are race-free)";
  let t0 = Unix.gettimeofday () in
  (* raw-line queue: the main domain only reads and enqueues; workers
     parse as well as evaluate, so per-request work never serialises on
     the producer *)
  let q : (int * string) Queue.t = Queue.create () in
  let qm = Mutex.create () and qc = Condition.create () in
  let closed = ref false in
  let push r =
    Mutex.protect qm (fun () ->
        Queue.push r q;
        Condition.signal qc)
  in
  let close () =
    Mutex.protect qm (fun () ->
        closed := true;
        Condition.broadcast qc)
  in
  (* workers drain a small batch per lock acquisition: one item when
     the queue is short (interactive latency), up to [batch_max] under
     load, so the per-item hand-off cost amortises across the batch *)
  let batch_max = 32 in
  let pop_batch () =
    Mutex.protect qm (fun () ->
        let rec wait () =
          if not (Queue.is_empty q) then begin
            let n = min batch_max (Queue.length q) in
            let items = ref [] in
            for _ = 1 to n do
              items := Queue.pop q :: !items
            done;
            Some (List.rev !items)
          end
          else if !closed then None
          else begin
            Condition.wait qc qm;
            wait ()
          end
        in
        wait ())
  in
  (* output mutex also guards the reply counters: one lock per reply *)
  let om = Mutex.create () in
  let counts = { c_ok = 0; c_partial = 0; c_errors = 0; c_quarantined = 0 } in
  let emit_all replies =
    if replies <> [] then
      Mutex.protect om (fun () ->
          List.iter
            (fun (cls, line) ->
              (match cls with
              | `Ok -> counts.c_ok <- counts.c_ok + 1
              | `Partial -> counts.c_partial <- counts.c_partial + 1
              | `Error -> counts.c_errors <- counts.c_errors + 1
              | `Quarantined ->
                  counts.c_quarantined <- counts.c_quarantined + 1);
              output_string oc line;
              output_char oc '\n')
            replies;
          flush oc)
  in
  (* quarantine table: canonical query key -> first failure message *)
  let quarantine : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let quarantine_m = Mutex.create () in
  let saturated = Engine.Snapshot.saturated snap in
  let evaluate view metrics span (r : Protocol.request) =
    (* the latency histogram covers every outcome of a well-formed
       request — success, injected fault, quarantine refusal — so qps
       and percentiles describe the whole served stream, not only the
       happy path *)
    let t = Unix.gettimeofday () in
    let timed reply =
      Obs.Metrics.observe metrics "server.request_s"
        (Unix.gettimeofday () -. t);
      reply
    in
    let poisoned =
      Mutex.protect quarantine_m (fun () -> Hashtbl.mem quarantine r.Protocol.key)
    in
    if poisoned then
      timed (`Quarantined, Protocol.render_quarantined ~id:r.Protocol.id)
    else
      let budget =
        match (cfg.max_facts, cfg.max_ms) with
        | None, None -> None
        | facts, ms -> Some (Obs.Budget.create ?max_facts:facts ?max_ms:ms ())
      in
      match
        Obs.Span.timed span "request" (fun () ->
            Engine.Snapshot.ucq_i ?budget view r.Protocol.query)
      with
      | res ->
          let cls =
            match Engine.Enumerate.ioutcome res with
            | Obs.Budget.Complete when saturated -> `Ok
            | _ -> `Partial
          in
          timed (cls, Protocol.render_ok r ~saturated res)
      | exception e ->
          let msg =
            match e with
            | Resil.Fault.Injected (point, hit) ->
                Fmt.str "injected fault at %s (hit %d)" point hit
            | e -> Printexc.to_string e
          in
          (* check-and-mark under one lock: when duplicates of a poison
             query fault concurrently, exactly one reply is the error
             and the rest are quarantined — the same counts any worker
             count produces *)
          let first =
            Mutex.protect quarantine_m (fun () ->
                if Hashtbl.mem quarantine r.Protocol.key then false
                else begin
                  Hashtbl.replace quarantine r.Protocol.key msg;
                  true
                end)
          in
          timed
            (if first then (`Error, Protocol.render_error ~id:r.Protocol.id msg)
             else (`Quarantined, Protocol.render_quarantined ~id:r.Protocol.id))
  in
  (* per-worker views and (optional) spans, created on the main domain
     before spawning so the shared span tree is never mutated
     concurrently: worker i only ever touches its own subtree *)
  let views = Array.init cfg.workers (fun _ -> Engine.Snapshot.view snap) in
  let wspans =
    Array.init cfg.workers (fun i ->
        Option.map
          (fun rep ->
            Obs.Span.enter (Obs.Report.span rep) (Fmt.str "worker-%d" i))
          report)
  in
  (* per-worker allocation deltas (slot i written only by worker i, read
     after join): the tentpole's regression signal — minor words per
     served request is what multicore qps is bounded by *)
  let walloc = Array.make cfg.workers (0., 0.) in
  let worker i () =
    let view = views.(i) in
    let metrics = Engine.Snapshot.view_metrics view in
    let min0, _, maj0 = gc_counters () in
    let rec loop () =
      match pop_batch () with
      | None -> ()
      | Some items ->
          emit_all
            (List.filter_map
               (fun (id, line) ->
                 match Protocol.parse_line ~id line with
                 | Protocol.Empty -> None
                 | Protocol.Malformed msg ->
                     Some (`Error, Protocol.render_error ~id msg)
                 | Protocol.Request r ->
                     Some (evaluate view metrics wspans.(i) r))
               items);
          loop ()
    in
    loop ();
    let min1, _, maj1 = gc_counters () in
    walloc.(i) <- (min1 -. min0, maj1 -. maj0)
  in
  let serve () =
    let domains = Array.init cfg.workers (fun i -> Domain.spawn (worker i)) in
    (* select-guarded reader: [input_line] would block in [read] until
       the next newline, so a SIGTERM on an idle server used to wait for
       one more request line before draining. Polling readiness keeps
       the drain latency bounded by the tick. Reads bypass the channel's
       buffer (the channel is fresh: nothing has been read through it). *)
    let fd = Unix.descr_of_in_channel ic in
    let buf = Bytes.create 65536 in
    let acc = Buffer.create 256 in
    let lineno = ref 0 in
    let push_line line =
      incr lineno;
      push (!lineno, line)
    in
    let eof = ref false in
    while not (!stop || !eof) do
      let ready =
        match Unix.select [ fd ] [] [] 0.05 with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if ready && not !stop then
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> eof := true
        | k ->
            for j = 0 to k - 1 do
              match Bytes.get buf j with
              | '\n' ->
                  push_line (Buffer.contents acc);
                  Buffer.clear acc
              | c -> Buffer.add_char acc c
            done
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    (* a final unterminated line is still a request ([input_line]
       semantics); a partial line at drain time is dropped with the rest
       of the unread input *)
    if !eof && Buffer.length acc > 0 then push_line (Buffer.contents acc);
    let drained = !stop in
    close ();
    Array.iter Domain.join domains;
    drained
  in
  let drained =
    if cfg.fault_plan = [] then serve ()
    else begin
      Resil.Fault.arm_seq cfg.fault_plan;
      Fun.protect ~finally:Resil.Fault.disarm serve
    end
  in
  Array.iter (fun s -> Option.iter Obs.Span.exit s) wspans;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Array.fold_left (fun a (m, _) -> a +. m) 0. walloc in
  let major_words = Array.fold_left (fun a (_, m) -> a +. m) 0. walloc in
  (match report with
  | None -> ()
  | Some rep ->
      (* worker-order absorption keeps merged counters and histogram
         buckets identical for a given request set, any scheduling *)
      Array.iter
        (fun v ->
          Obs.Metrics.absorb ~into:(Obs.Report.metrics rep)
            (Engine.Snapshot.view_metrics v))
        views;
      let field k v = Obs.Report.add_field rep k (Obs.Json.Int v) in
      field "server.workers" cfg.workers;
      field "server.requests"
        (counts.c_ok + counts.c_partial + counts.c_errors
       + counts.c_quarantined);
      field "server.ok" counts.c_ok;
      field "server.partial" counts.c_partial;
      field "server.errors" counts.c_errors;
      field "server.quarantined" counts.c_quarantined;
      Obs.Report.add_field rep "server.minor_words"
        (Obs.Json.Float minor_words);
      Obs.Report.add_field rep "server.major_words"
        (Obs.Json.Float major_words);
      Obs.Report.add_rate_block rep ~prefix:"server"
        ~histogram:"server.request_s" ~wall_s);
  {
    served =
      counts.c_ok + counts.c_partial + counts.c_errors + counts.c_quarantined;
    ok = counts.c_ok;
    partial = counts.c_partial;
    errors = counts.c_errors;
    quarantined = counts.c_quarantined;
    drained;
    wall_s;
    minor_words;
    major_words;
  }
