(** Tree decompositions (§2 of the paper).

    A tree decomposition of a graph [G] is a tree whose nodes carry bags of
    vertices such that (1) every vertex occurs in some bag, (2) every edge is
    covered by some bag, and (3) the bags containing any fixed vertex form a
    connected subtree. The width is the maximum bag size minus one. *)

module ISet = Graph.ISet
module IMap = Graph.IMap

type t = {
  bags : ISet.t IMap.t;  (** node id -> bag *)
  tree : (int * int) list;  (** tree edges over node ids *)
}

let bags t = t.bags
let tree_edges t = t.tree
let num_nodes t = IMap.cardinal t.bags
let bag t n = IMap.find n t.bags

(** Width: max bag size - 1 (and -1 if there are no bags). *)
let width t =
  IMap.fold (fun _ b acc -> max acc (ISet.cardinal b)) t.bags 0 - 1

let make bags tree = { bags; tree }

(** Single-node decomposition with one bag. *)
let singleton bag = { bags = IMap.singleton 0 bag; tree = [] }

(** The tree of a decomposition as a {!Graph.t} over node ids. *)
let skeleton t =
  Graph.of_vertices_edges (IMap.fold (fun n _ acc -> n :: acc) t.bags []) t.tree

(** [verify g t] checks the three conditions of a tree decomposition of [g],
    and that the skeleton is indeed a tree (connected, acyclic). *)
let verify g t =
  let sk = skeleton t in
  let n = Graph.num_vertices sk and m = Graph.num_edges sk in
  let is_tree = n = 0 || (Graph.is_connected sk && m = n - 1) in
  let covers_vertices =
    List.for_all
      (fun v -> IMap.exists (fun _ b -> ISet.mem v b) t.bags)
      (Graph.vertices g)
  in
  let covers_edges =
    List.for_all
      (fun (u, v) ->
        IMap.exists (fun _ b -> ISet.mem u b && ISet.mem v b) t.bags)
      (Graph.edges g)
  in
  let connected_occurrence =
    List.for_all
      (fun v ->
        let occ =
          IMap.fold
            (fun n b acc -> if ISet.mem v b then ISet.add n acc else acc)
            t.bags ISet.empty
        in
        ISet.is_empty occ || Graph.is_connected (Graph.induced sk occ))
      (Graph.vertices g)
  in
  is_tree && covers_vertices && covers_edges && connected_occurrence

(** [of_elimination_order g order] builds a tree decomposition of [g] from a
    perfect-elimination-style order: eliminating [v] creates the bag
    [{v} ∪ N(v)] in the current fill-in graph, connected to the bag of the
    first later-eliminated neighbor. Standard construction; its width is the
    width of the elimination order. *)
let of_elimination_order g order =
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add position v i) order;
  (* Fill-in simulation: maintain adjacency as mutable sets. *)
  let adj = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace adj v (Graph.neighbors g v)) order;
  let bag_of = Hashtbl.create 16 in
  let bags = ref IMap.empty and edges = ref [] and next = ref 0 in
  let node_for v = Hashtbl.find bag_of v in
  List.iter
    (fun v ->
      let nbrs =
        ISet.filter
          (fun u -> Hashtbl.find position u > Hashtbl.find position v)
          (Hashtbl.find adj v)
      in
      (* make nbrs a clique *)
      ISet.iter
        (fun u ->
          Hashtbl.replace adj u
            (ISet.union (Hashtbl.find adj u) (ISet.remove u nbrs)))
        nbrs;
      let b = ISet.add v nbrs in
      let id = !next in
      incr next;
      bags := IMap.add id b !bags;
      Hashtbl.replace bag_of v id;
      (* connect to the bag of the earliest-eliminated later neighbor *)
      match
        ISet.elements nbrs
        |> List.sort (fun a b ->
               compare (Hashtbl.find position a) (Hashtbl.find position b))
      with
      | [] -> ()
      | u :: _ ->
          (* u is eliminated after v; its bag does not exist yet, so record a
             pending edge resolved after the loop. *)
          edges := (id, u) :: !edges)
    order;
  let tree = List.map (fun (id, u) -> (id, node_for u)) !edges in
  (* The construction yields one tree per connected component (roots have no
     pending edge); stitch the roots into a chain so the result is a single
     tree. Root bags of distinct components share no vertices, so chaining
     them preserves the connected-occurrence condition. *)
  let with_parent =
    List.fold_left (fun s (id, _) -> ISet.add id s) ISet.empty tree
  in
  let roots =
    IMap.fold
      (fun id _ acc -> if ISet.mem id with_parent then acc else id :: acc)
      !bags []
  in
  let rec chain = function
    | a :: (b :: _ as rest) -> (a, b) :: chain rest
    | [ _ ] | [] -> []
  in
  { bags = !bags; tree = tree @ chain roots }

let pp ppf t =
  let pp_bag ppf (n, b) =
    Fmt.pf ppf "%d:{%a}" n Fmt.(list ~sep:(any ",") int) (ISet.elements b)
  in
  Fmt.pf ppf "@[<v>bags: %a@,tree: %a@]"
    Fmt.(list ~sep:sp pp_bag)
    (IMap.bindings t.bags)
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    t.tree
