(** Ground closure of the guarded chase: the finite instance
    [chase↓(D,Σ) = { R(ā) ∈ chase(D,Σ) | ā ⊆ dom(D) }] ([complete(D,Σ)] /
    [D⁺] of Appendices A and F), computed by a memoized fixpoint over bag
    types — the executable content of the [typeD,Σ] machinery. Guarded
    sets only. *)

open Relational

(** Canonicalize a small instance: a key invariant under constant
    renaming, the renaming used, and its inverse (both as assoc lists).
    Exposed for the finite-witness construction. *)
val canonicalize :
  Instance.t ->
  string * (Term.const * Term.const) list * (Term.const * Term.const) list

(** [compute_report ?budget ?obs sigma db] — the ground closure with the
    run's outcome ([Partial _] when the budget cut the bag fixpoint; the
    closure computed so far is returned); raises [Invalid_argument] when
    [sigma] is not guarded. Budget levels count saturation rounds at any
    bag-nesting depth. *)
val compute_report :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t * Obs.Budget.outcome

(** {!compute_report} without the outcome. *)
val compute :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** [d_plus sigma db] — the database [D⁺] of §6.2 (equals the ground
    closure). *)
val d_plus : Tgd.t list -> Instance.t -> Instance.t

(** [type_of sigma db consts] — [typeD,Σ]: all chase atoms over [consts ⊆
    dom(db)]. *)
val type_of : Tgd.t list -> Instance.t -> Term.ConstSet.t -> Instance.t

(** Certain answering for atomic ground queries: [fact ∈ chase(db,sigma)]? *)
val entails_atom : Tgd.t list -> Instance.t -> Fact.t -> bool

(** Saturation of a small instance ([complete(I,Σ)] for bag-sized [I]);
    used by the linearization. *)
val saturate_small : Tgd.t list -> Instance.t -> Instance.t
