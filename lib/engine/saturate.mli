(** Semi-naive saturation.

    A delta-driven fixpoint over existential rules (TGD-shaped
    body → head atom lists): level ℓ+1 enumerates only the triggers whose
    body uses at least one fact created at level ℓ — every older trigger
    was enumerated (and fired or dismissed) at the level where its last
    body fact appeared, so no level re-derives earlier levels. The
    per-level trigger sets coincide with those of the naive level-wise
    chase ([Tgds.Chase.run ~engine:`Naive]), so the s-levels of
    Lemma A.1 are preserved exactly: a fact derived at pass ℓ has s-level
    ℓ (its body contains a level ℓ−1 fact and nothing newer).

    Policies mirror the chase: [Oblivious] (the paper's §2 semantics)
    fires every trigger once; [Restricted] dismisses triggers whose head
    is already witnessed at collection time. Statistics (triggers fired,
    index probes, facts per level) are recorded per run. *)

open Relational

type policy = Oblivious | Restricted

(** A TGD-shaped rule: non-empty head; head variables absent from the
    body are existential and receive fresh labelled nulls at firing. *)
type rule = { body : Atom.t list; head : Atom.t list }

type stats = {
  triggers_fired : int;
  triggers_dismissed : int;  (** [Restricted] head-already-satisfied *)
  index_probes : int;
  facts_per_level : int list;  (** new facts at levels 1, 2, … *)
}

type result = {
  index : Index.t;  (** the saturated store *)
  level_of : (Fact.t, int) Hashtbl.t;  (** s-level of every fact *)
  saturated : bool;  (** no unfired trigger remained *)
  max_level : int;
  stats : stats;
}

(** [run ?policy ?max_level ?max_facts rules db] — saturate [db] under
    [rules] until no new trigger exists, the level bound is reached, or
    more than [max_facts] facts have been produced (the overflowing level
    may be cut short, as in the naive chase). *)
val run :
  ?policy:policy ->
  ?max_level:int ->
  ?max_facts:int ->
  rule list ->
  Instance.t ->
  result
