(** Terms: constants, labelled nulls, and variables (§2).

    Nulls are the fresh constants invented by chase steps; both kinds
    behave as constants semantically. *)

type const =
  | Named of string  (** an ordinary database constant *)
  | Null of int  (** a labelled null invented by the chase *)

type t = Const of const | Var of string

val compare_const : const -> const -> int
val equal_const : const -> const -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

module ConstSet : Set.S with type elt = const
module ConstMap : Map.S with type key = const
module VarSet : Set.S with type elt = string
module VarMap : Map.S with type key = string

(** A globally fresh labelled null. *)
val fresh_null : unit -> const

(** Reset the null supply (test isolation only). *)
val reset_nulls : unit -> unit

(** Nulls invented so far (persisted by chase checkpoints). *)
val null_count : unit -> int

(** Restore the null supply to a checkpointed position; only sound when no
    live instance holds nulls above the target (e.g. when resuming a chase
    from a checkpoint that predates them). *)
val set_null_count : int -> unit

val is_null : const -> bool
val named : string -> const
val const : string -> t
val var : string -> t
val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
