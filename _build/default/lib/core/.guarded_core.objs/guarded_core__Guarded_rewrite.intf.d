lib/core/guarded_rewrite.mli: Instance Relational Term Tgds Ucq
