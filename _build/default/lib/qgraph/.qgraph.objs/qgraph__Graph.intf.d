lib/qgraph/graph.mli: Format Map Set
