(** Timed span trees; see the interface. *)

type t = {
  name : string;
  clock : unit -> float;
  start : float;
  mutable stop : float option;
  mutable attrs : (string * Json.t) list;  (* insertion order *)
  mutable kids : t list;  (* reverse creation order *)
}

let root ?(clock = Unix.gettimeofday) name =
  { name; clock; start = clock (); stop = None; attrs = []; kids = [] }

let enter parent name =
  let child =
    {
      name;
      clock = parent.clock;
      start = parent.clock ();
      stop = None;
      attrs = [];
      kids = [];
    }
  in
  parent.kids <- child :: parent.kids;
  child

let exit span =
  match span.stop with None -> span.stop <- Some (span.clock ()) | Some _ -> ()

let with_span parent name f =
  let span = enter parent name in
  Fun.protect ~finally:(fun () -> exit span) f

let timed parent name f =
  match parent with None -> f () | Some p -> with_span p name f

let set span key v =
  if List.mem_assoc key span.attrs then
    span.attrs <- List.map (fun (k, v') -> if k = key then (k, v) else (k, v')) span.attrs
  else span.attrs <- span.attrs @ [ (key, v) ]

let name span = span.name

let elapsed span =
  (match span.stop with Some t -> t | None -> span.clock ()) -. span.start

let children span = List.rev span.kids
let attr span key = List.assoc_opt key span.attrs

let rec to_json span =
  let base =
    [ ("name", Json.String span.name); ("s", Json.Float (elapsed span)) ]
    @ span.attrs
  in
  match children span with
  | [] -> Json.Obj base
  | kids -> Json.Obj (base @ [ ("children", Json.List (List.map to_json kids)) ])
