
prof(X) -> teaches(X,C).
teaches(X,C) -> course(C).
prof(ada).
q() :- course(C).
who(X) :- teaches(X,C).
