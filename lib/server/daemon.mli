(** Concurrent query server over a frozen saturated store.

    {!run} reads {!Protocol} request lines from an input channel,
    evaluates each against an {!Engine.Snapshot} through a pool of
    worker domains, and writes one reply line per request to the output
    channel. The main domain only reads and enqueues raw lines; workers
    dequeue, parse, evaluate through private {!Engine.Snapshot.view}s,
    and emit under an output mutex, so reply lines never interleave
    mid-line and per-request work never serialises on the producer. Replies
    appear in completion order — each line is canonical per-request
    bytes ({!Protocol}), so sorting a transcript by leading id yields a
    document independent of worker count and scheduling.

    Resilience, threaded through the request path:
    - {e admission control}: every request runs under a fresh
      per-request budget ([max_facts] caps the answers emitted, [max_ms]
      is a per-request deadline); a violated budget returns the sound
      prefix with a [partial] reply instead of an unbounded evaluation;
    - {e quarantine}: a request whose evaluation raises (an injected
      fault, or any defect) gets an [error] reply and its canonical
      query key is quarantined — later identical requests are refused
      with [quarantined] {e without being evaluated}, and the server
      keeps answering everything else. The mark is check-and-set under
      one lock, so when duplicates of a poison query fault concurrently
      exactly one gets the [error] reply and the rest [quarantined] —
      reply counts are identical under any worker count;
    - {e graceful drain}: when [stop] flips (the CLI's SIGTERM handler)
      the reader notices within its 50 ms readiness tick — even with no
      input pending — and stops accepting; in-flight requests still
      complete and reply.

    The [server.request_s] latency histogram records {e every} outcome
    of a well-formed request (success, fault, quarantine refusal), so
    the derived qps/percentiles describe the full served stream.

    Fault injection ([fault_plan]) arms the process-global probe hook.
    A plan with counted triggers mutates shared trigger state, so it is
    only allowed with [workers = 1] — {!run} raises [Invalid_argument]
    otherwise; a {!Resil.Fault.stateless} (always-fire) plan touches no
    state and is allowed under any worker count. *)

type config = {
  workers : int;  (** worker domains (>= 1) *)
  max_facts : int option;  (** per-request answer cap *)
  max_ms : float option;  (** per-request deadline, milliseconds *)
  fault_plan : Resil.Fault.plan;
      (** counted plans require [workers = 1]; stateless plans don't *)
}

type summary = {
  served : int;  (** replies emitted, including errors *)
  ok : int;
  partial : int;
  errors : int;  (** malformed requests plus evaluation faults *)
  quarantined : int;  (** requests refused by the quarantine table *)
  drained : bool;  (** [stop] flipped before end of input *)
  wall_s : float;
  minor_words : float;  (** summed worker-domain minor allocation *)
  major_words : float;  (** summed worker-domain major allocation *)
}

(** [run ?report ?stop cfg snap ic oc] — serve until end of input (or
    drain). When [report] is given, each worker gets a child span
    ([worker-]{i i}) carrying one [request] span per request served, the
    workers' view registries (probe/join counters plus the
    [server.request_s] latency histogram) are absorbed into the report
    in worker order, and headline fields ([server.requests] etc.) plus
    the [server.qps]/[server.p50_ms]/[server.p99_ms] rate block are
    added. *)
val run :
  ?report:Obs.Report.t ->
  ?stop:bool ref ->
  config ->
  Engine.Snapshot.t ->
  in_channel ->
  out_channel ->
  summary
