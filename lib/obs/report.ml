(** Run reports; see the interface for the serialised layout. *)

type t = {
  name : string;
  metrics : Metrics.t;
  span : Span.t;
  mutable outcome : Budget.outcome;
  mutable fields : (string * Json.t) list;  (* insertion order *)
}

let create ?metrics ?span name =
  {
    name;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    span = (match span with Some s -> s | None -> Span.root name);
    outcome = Budget.Complete;
    fields = [];
  }

let metrics r = r.metrics
let span r = r.span
let set_outcome r o = r.outcome <- o
let outcome r = r.outcome

let add_field r key v =
  if List.mem_assoc key r.fields then
    r.fields <- List.map (fun (k, v') -> if k = key then (k, v) else (k, v')) r.fields
  else r.fields <- r.fields @ [ (key, v) ]

let add_rate_block r ~prefix ~histogram ~wall_s =
  let count =
    match List.assoc_opt histogram (Metrics.histograms r.metrics) with
    | Some s -> s.Metrics.count
    | None -> 0
  in
  let qps = if wall_s > 0. then float_of_int count /. wall_s else 0. in
  add_field r (prefix ^ ".qps") (Json.Float qps);
  let pct key q =
    match Metrics.quantile r.metrics histogram q with
    | Some v -> add_field r (prefix ^ "." ^ key) (Json.Float (v *. 1e3))
    | None -> ()
  in
  pct "p50_ms" 0.5;
  pct "p99_ms" 0.99

let to_json r =
  let metrics_fields =
    match Metrics.to_json r.metrics with Json.Obj fs -> fs | _ -> []
  in
  Json.Obj
    ([
       ("name", Json.String r.name);
       ("outcome", Budget.outcome_to_json r.outcome);
     ]
    @ r.fields @ metrics_fields
    @ [ ("span", Span.to_json r.span) ])

let write path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json r))
