lib/core/omq.mli: Format Instance Relational Schema Tgds Ucq
