
order(O,C) -> customer(C).
customer(alice).
order(o1,alice).
q(O) :- order(O,C), customer(C).
