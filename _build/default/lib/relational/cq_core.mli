(** Cores of conjunctive queries (§4): ⊆-minimal equivalent subqueries,
    computed by iterated retraction (answer variables fixed), and the
    Dalmau–Kolaitis–Vardi membership test for [CQ≡k] ([20]). *)

(** The core of [q] (unique up to isomorphism; a concrete retract). *)
val core : Cq.t -> Cq.t

(** [q] has no proper retraction. *)
val is_core : Cq.t -> bool

(** [in_cqk_equiv k q] — is [q] equivalent to a CQ of treewidth ≤ k?
    Decided on the core. *)
val in_cqk_equiv : int -> Cq.t -> bool

(** Treewidth of the core: the least [k] with [q ∈ CQ≡k]. *)
val semantic_treewidth : Cq.t -> int

(** Core every disjunct, drop subsumed disjuncts. *)
val minimize_ucq : Ucq.t -> Ucq.t
