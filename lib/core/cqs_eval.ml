(** Closed-world CQS evaluation (§3.2).

    The evaluation problem receives a database *promised* to satisfy the
    constraints and evaluates the UCQ directly. The constraints still
    matter: they license semantic optimizations (§1, "constraint-aware
    query optimization"), implemented here as Σ-equivalent minimization of
    the query before evaluation — the executable content of the
    tractability direction (3) ⇒ (1) of Theorems 5.7/5.12: when the CQS is
    uniformly UCQk-equivalent, evaluating the equivalent low-treewidth
    query is polynomial.

    Direct evaluation indexes the database once ([Engine.Index]) and
    matches query atoms through the joiner's posting lists. [?obs]
    collects the pipeline phases as child spans: [rewrite] (Σ-equivalent
    minimization), [index] (building the fact store), [match]. *)

(** [eval s db c̄] — is [c̄ ∈ q(db)]? ([db] should satisfy the constraints;
    use {!Cqs.admissible} to check the promise.) *)
let eval ?obs (s : Cqs.t) db tuple =
  let idx =
    Obs.Span.timed obs "index" @@ fun () -> Engine.Index.of_instance db
  in
  Obs.Span.timed obs "match" @@ fun () ->
  Engine.Joiner.entails_ucq idx (Cqs.query s) tuple

(** [eval_tw s db c̄] — same, through the bounded-treewidth evaluator of
    Proposition 2.1 (polynomial for [q ∈ UCQ_k]). *)
let eval_tw ?obs (s : Cqs.t) db tuple =
  Obs.Span.timed obs "match" @@ fun () ->
  Tw_eval.entails_ucq db (Cqs.query s) tuple

(** [optimize s] — replace the query by a Σ-equivalent minimized UCQ
    (sound: every certified simplification preserves the answers on all
    admissible databases). *)
let optimize ?obs (s : Cqs.t) =
  Obs.Span.timed obs "rewrite" @@ fun () ->
  let q' = Sigma_containment.minimize_ucq (Cqs.constraints s) (Cqs.query s) in
  Cqs.make ~constraints:(Cqs.constraints s) ~query:q'

(** [eval_optimized s db c̄] — minimize under Σ, then evaluate with the
    treewidth-aware engine. *)
let eval_optimized ?obs (s : Cqs.t) db tuple =
  eval_tw ?obs (optimize ?obs s) db tuple

(* The "match" child span is handed to the enumerator so the per-disjunct
   spans nest under it. *)
let in_match_span obs f =
  match obs with
  | None -> f None
  | Some parent ->
      let sp = Obs.Span.enter parent "match" in
      Fun.protect ~finally:(fun () -> Obs.Span.exit sp) (fun () -> f (Some sp))

(** [answer_set s db] — the answer set of the (possibly optimized) query,
    enumerated output-sensitively from the index ({!Engine.Enumerate}):
    the database is indexed once, answer variables bind from posting
    lists, and a budget cuts the stream gracefully (the prefix is a
    subset of the exact set, [outcome] records the cut). Unlike the
    joiner's [answers_ucq], answer variables that occur in no atom are
    supported — they range over the active domain. *)
let answer_set ?(optimize_first = false) ?budget ?obs (s : Cqs.t) db =
  let s = if optimize_first then optimize ?obs s else s in
  let idx =
    Obs.Span.timed obs "index" @@ fun () -> Engine.Index.of_instance db
  in
  in_match_span obs @@ fun sp ->
  Engine.Enumerate.ucq ?budget ?obs:sp
    ~universe:(Relational.Instance.dom db)
    idx (Cqs.query s)

(** [answers s db] — all answers of the (possibly optimized) query, as a
    canonical sorted set. *)
let answers ?(optimize_first = false) ?obs (s : Cqs.t) db =
  (answer_set ~optimize_first ?obs s db).Engine.Enumerate.answers
