(** Linearization of guarded TGD sets (Lemma A.3, Appendix A.1): from a
    guarded Σ and a database D, a typed database [D*] and a *linear*
    [Σ* = Σ*_tg ∪ Σ*_ex] with [Q(D) = q(chase(D_star, Σ_star))]. Types and rules
    are materialized on demand (the reachable fragment of the paper's Σ*;
    see DESIGN.md). *)

open Relational

type ty = {
  guard : Fact.t;  (** guard atom over canonical constants *)
  side : Fact.t list;  (** side atoms over the guard's constants, sorted *)
}

(** [atoms(τ)] as an instance. *)
val atoms_of : ty -> Instance.t

(** Number of distinct constants in the guard ([ar(τ)]). *)
val ty_width : ty -> int

(** Encoded predicate name of [⟨τ⟩]. *)
val pred_name : ty -> string

(** [d_star sigma db] — the typed database [D*] and the seed types. *)
val d_star : Tgd.t list -> Instance.t -> Instance.t * ty list

(** Expander rule [⟨τ⟩(x̄) → R(x̄)]. *)
val expander_rule : ty -> Tgd.t

type t = {
  db_star : Instance.t;  (** the typed database [D*] *)
  sigma_star : Tgd.t list;  (** the linear set [Σ*] (generator + expander) *)
  types : ty list;  (** all reachable types *)
  complete : bool;  (** false iff the type budget was exhausted *)
}

(** [make ?max_types sigma db] — run the construction. Requires Σ guarded;
    [complete = false] signals the type budget was hit (results then sound
    but possibly missing answers). *)
val make : ?max_types:int -> Tgd.t list -> Instance.t -> t

(** [certain ?max_level lin q c̄] — evaluate a UCQ over
    [chase(D_star, Σ_star)], level-bounded per Lemma A.1; the boolean
    reports exactness. *)
val certain :
  ?max_level:int -> ?max_facts:int -> t -> Ucq.t -> Term.const list -> bool * bool
