test/test_relational.ml: Alcotest Atom ConstMap ConstSet Containment Cq Cq_core Fact Fmt Homomorphism Instance List Printf QCheck QCheck_alcotest Qgraph Relational Term Ucq VarMap VarSet
