lib/relational/instance.ml: Array ConstMap ConstSet Fact Fmt Hashtbl List Map Qgraph Schema Set Stdlib String Term
