lib/core/guarded_rewrite.ml: Instance Relational Tgds Ucq
