(* lib/server: the wire protocol and the concurrent serving loop.

   The protocol tests pin the request grammar (verb + single query
   clause) and the canonical reply bytes. The daemon tests drive
   {!Server.Daemon.run} over temp channels and pin the determinism
   contract: for a fixed request file the {e sorted} reply transcript is
   byte-identical under any worker count — replies carry request ids, so
   scheduling only permutes lines, never changes them. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  ln = 0 || go 0

(* ------------------------------------------------------------------ *)
(* protocol                                                             *)
(* ------------------------------------------------------------------ *)

let parse_request s =
  match Server.Protocol.parse_line ~id:1 s with
  | Server.Protocol.Request r -> r
  | Server.Protocol.Empty -> Alcotest.failf "parsed as empty: %S" s
  | Server.Protocol.Malformed m -> Alcotest.failf "malformed (%s): %S" m s

let test_parse_requests () =
  (match Server.Protocol.parse_line ~id:1 "" with
  | Server.Protocol.Empty -> ()
  | _ -> Alcotest.fail "blank line should be Empty");
  (match Server.Protocol.parse_line ~id:1 "% a comment" with
  | Server.Protocol.Empty -> ()
  | _ -> Alcotest.fail "comment line should be Empty");
  let r = parse_request "answers q(X) :- prof(X)." in
  check "verb answers" true (r.Server.Protocol.verb = Server.Protocol.Answers);
  check_int "id threaded" 1 r.Server.Protocol.id;
  let c = parse_request "count q(X) :- prof(X)." in
  check "verb count" true (c.Server.Protocol.verb = Server.Protocol.Count)

let test_parse_canonical_key () =
  (* the quarantine key is rendered from the parsed query, so spelling
     differences (whitespace) collapse to one canonical key — while the
     verb keeps answers/count distinct *)
  let a = parse_request "answers q(X) :- prof(X), teaches(X,C)." in
  let b = parse_request "answers   q(X)  :-  prof(X) ,teaches(X, C)." in
  check_str "whitespace-insensitive key" a.Server.Protocol.key
    b.Server.Protocol.key;
  let c = parse_request "count q(X) :- prof(X), teaches(X,C)." in
  check "verb is part of the key" true
    (a.Server.Protocol.key <> c.Server.Protocol.key)

let malformed s =
  match Server.Protocol.parse_line ~id:1 s with
  | Server.Protocol.Malformed m -> m
  | Server.Protocol.Empty -> Alcotest.failf "parsed as empty: %S" s
  | Server.Protocol.Request _ -> Alcotest.failf "parsed as request: %S" s

let test_parse_rejections () =
  check "unknown verb" true
    (contains (malformed "frobnicate q(X) :- prof(X).") "unknown verb");
  check "facts rejected" true
    (contains (malformed "answers prof(ada).") "only query clauses");
  check "tgds rejected" true
    (contains (malformed "answers prof(X) -> dean(X).") "only query clauses");
  check "two query names rejected" true
    (contains
       (malformed "answers q(X) :- prof(X). r(X) :- course(X).")
       "one query name");
  check "empty body rejected" true
    (contains (malformed "answers") "no query clause");
  check "syntax error carries position" true
    (contains (malformed "answers q(X :- prof(X).") "column")

let result answers outcome = Engine.Enumerate.of_answers answers outcome

let test_render_replies () =
  let open Relational.Term in
  let r = parse_request "answers q(X) :- prof(X)." in
  check_str "answers reply" "1 ok 2 (ada) (bob)"
    (Server.Protocol.render_ok r ~saturated:true
       (result [ [ Named "ada" ]; [ Named "bob" ] ] Obs.Budget.Complete));
  check_str "boolean reply has the empty tuple" "1 ok 1 ()"
    (Server.Protocol.render_ok r ~saturated:true
       (result [ [] ] Obs.Budget.Complete));
  check_str "null spelled like the pretty-printer" "1 ok 1 (ada,_:n3)"
    (Server.Protocol.render_ok r ~saturated:true
       (result [ [ Named "ada"; Null 3 ] ] Obs.Budget.Complete));
  let c = parse_request "count q(X) :- prof(X)." in
  check_str "count reply" "1 ok count=2"
    (Server.Protocol.render_ok c ~saturated:true
       (result [ [ Named "ada" ]; [ Named "bob" ] ] Obs.Budget.Complete));
  (* partial on either a cut budget or an unsaturated store *)
  check_str "budget cut renders partial" "1 partial 1 (ada)"
    (Server.Protocol.render_ok r ~saturated:true
       (result [ [ Named "ada" ] ] (Obs.Budget.Partial (Obs.Budget.Facts 1))));
  check_str "unsaturated store renders partial" "1 partial 1 (ada)"
    (Server.Protocol.render_ok r ~saturated:false
       (result [ [ Named "ada" ] ] Obs.Budget.Complete));
  check_str "error replies are one line" "7 error a b"
    (Server.Protocol.render_error ~id:7 "a\nb");
  check_str "quarantined reply" "9 quarantined"
    (Server.Protocol.render_quarantined ~id:9)

(* ------------------------------------------------------------------ *)
(* daemon                                                               *)
(* ------------------------------------------------------------------ *)

let program =
  "prof(X) -> teaches(X,C).\n\
   teaches(X,C) -> course(C).\n\
   teaches(X,C) -> faculty(X).\n\
   prof(ada). prof(bob). prof(eve). prof(kay). prof(lin).\n\
   student(sam). student(ada).\n"

let snapshot ?(max_level = 6) text =
  let p = Syntax.Parser.parse text in
  let db = Syntax.Parser.database p in
  let r = Tgds.Chase.run ~engine:`Indexed ~max_level p.Syntax.Parser.tgds db in
  Engine.Snapshot.freeze
    ~saturated:(Tgds.Chase.saturated r)
    ~universe:(Relational.Instance.dom db)
    (Tgds.Chase.index r)

(* feed [lines] through temp files; return the summary and transcript *)
let run_daemon ?report ?stop ?(workers = 1) ?(fault_plan = []) ?max_facts
    ?max_ms snap lines =
  let req = Filename.temp_file "srv_req" ".txt" in
  let rep = Filename.temp_file "srv_rep" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req;
      Sys.remove rep)
    (fun () ->
      let oc = open_out req in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let ic = open_in req and oc = open_out rep in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            Server.Daemon.run ?report ?stop
              { Server.Daemon.workers; max_facts; max_ms; fault_plan }
              snap ic oc)
      in
      let ic = open_in rep in
      let transcript =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (summary, transcript))

let transcript_lines t =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' t)

let test_daemon_serves_mixed_requests () =
  let snap = snapshot program in
  let summary, t =
    run_daemon snap
      [
        "answers q(X) :- prof(X).";
        "";
        "% comments and blanks get no reply";
        "count q(X) :- faculty(X).";
        "bogus q(X) :- prof(X).";
        "answers q(X,C) :- teaches(X,C), course(C).";
      ]
  in
  check_int "served counts replies only" 4 summary.Server.Daemon.served;
  check_int "ok" 3 summary.Server.Daemon.ok;
  check_int "errors" 1 summary.Server.Daemon.errors;
  let lines = transcript_lines t in
  check_int "one line per reply" 4 (List.length lines);
  check "scan carries every prof" true
    (contains t "1 ok 5 (ada) (bob) (eve) (kay) (lin)");
  check "count reply" true (contains t "4 ok count=5");
  check "malformed line is answered in place" true
    (contains t "5 error unknown verb");
  (* the join's answers are certain: nulls never appear in a tuple *)
  check "no nulls leak into answers" false (contains t "_:n")

(* the seeded-scheduler pin: one request file (a seeded pseudo-random
   mix over the template set, with comments and a malformed line mixed
   in), served under workers 1/2/4 — the sorted transcripts must be
   byte-identical, and the single-worker transcript is already id-sorted
   because one worker drains the queue in order *)
let test_daemon_scheduling_determinism () =
  let snap = snapshot program in
  let templates =
    [|
      "answers q(X) :- prof(X).";
      "count q(X) :- faculty(X).";
      "answers q(X,C) :- teaches(X,C).";
      "count q(S) :- student(S). q(S) :- prof(S).";
      "answers q(X,C) :- prof(X), teaches(X,C), course(C).";
      "% noise";
      "not a request at all";
    |]
  in
  let rng = Random.State.make [| 0x5eed |] in
  let lines =
    List.init 200 (fun _ ->
        templates.(Random.State.int rng (Array.length templates)))
  in
  let sorted_by_id t =
    transcript_lines t
    |> List.map (fun l ->
           let id =
             match String.index_opt l ' ' with
             | Some i -> int_of_string (String.sub l 0 i)
             | None -> Alcotest.failf "reply without id: %S" l
           in
           (id, l))
    |> List.sort compare |> List.map snd
  in
  let run workers =
    let summary, t = run_daemon ~workers snap lines in
    check "every request is answered" true
      (summary.Server.Daemon.served
      = List.length (List.filter (fun l -> l <> "" && l.[0] <> '%') lines));
    (summary, t)
  in
  let _, t1 = run 1 in
  let s2, t2 = run 2 in
  let s4, t4 = run 4 in
  Alcotest.(check (list string))
    "workers 2 permutes but never changes replies" (sorted_by_id t1)
    (sorted_by_id t2);
  Alcotest.(check (list string))
    "workers 4 permutes but never changes replies" (sorted_by_id t1)
    (sorted_by_id t4);
  check_str "single worker replies in request order" t1
    (String.concat "" (List.map (fun l -> l ^ "\n") (sorted_by_id t1)));
  check_int "classification independent of scheduling"
    s2.Server.Daemon.errors s4.Server.Daemon.errors

let test_daemon_budget_cuts_to_partial () =
  let snap = snapshot program in
  let summary, t =
    run_daemon ~max_facts:2 snap
      [ "answers q(X) :- prof(X)."; "count q(X) :- prof(X)." ]
  in
  check_int "both replies partial" 2 summary.Server.Daemon.partial;
  check_int "none ok" 0 summary.Server.Daemon.ok;
  (* the cut is trigger-atomic: at most max_facts + 1 answers survive,
     and every one is sound (a real prof — fresh nulls never answer) *)
  let profs = [ "(ada)"; "(bob)"; "(eve)"; "(kay)"; "(lin)" ] in
  List.iter
    (fun l ->
      check "reply is partial" true (contains l "partial");
      let tuples =
        List.length
          (List.filter (fun p -> contains l p) profs)
      in
      check "sound subset, within the cut" true
        (if contains l "count=" then true else tuples >= 1 && tuples <= 3))
    (transcript_lines t)

let test_daemon_unsaturated_is_partial () =
  (* a truncated chase still serves, but every reply is partial *)
  let snap = snapshot ~max_level:1 program in
  check "snapshot knows it is truncated" false (Engine.Snapshot.saturated snap);
  let summary, t = run_daemon snap [ "answers q(X) :- prof(X)." ] in
  check_int "reply is partial" 1 summary.Server.Daemon.partial;
  check "bytes say partial" true (contains t "1 partial")

let test_daemon_quarantine () =
  let snap = snapshot program in
  let plan =
    match Resil.Fault.parse "point:engine.answer:1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault plan: %s" e
  in
  let report = Obs.Report.create "server-quarantine" in
  let summary, t =
    run_daemon ~report ~fault_plan:plan snap
      [
        "answers q(X) :- prof(X).";
        "answers q(X) :- prof(X).";
        "answers  q(X)  :-  prof(X).";
        "count q(X) :- faculty(X).";
      ]
  in
  let lines = transcript_lines t in
  check "first hit faults" true (contains t "1 error injected fault");
  check "identical query is refused unevaluated" true
    (List.mem "2 quarantined" lines);
  check "quarantine keys on the canonical query, not the bytes" true
    (List.mem "3 quarantined" lines);
  check "other queries keep serving" true (contains t "4 ok count=5");
  check_int "errors counted" 1 summary.Server.Daemon.errors;
  check_int "quarantined counted" 2 summary.Server.Daemon.quarantined;
  check_int "rest served ok" 1 summary.Server.Daemon.ok;
  (* the latency histogram records every well-formed outcome — the
     fault and both quarantine refusals included — so qps/percentiles
     describe the full served stream *)
  match
    List.assoc_opt "server.request_s"
      (Obs.Metrics.histograms (Obs.Report.metrics report))
  with
  | Some s ->
      check_int "fault and refusals observed in request_s" 4
        s.Obs.Metrics.count
  | None -> Alcotest.fail "server.request_s histogram missing"

let test_daemon_rejects_concurrent_faults () =
  let snap = snapshot program in
  let plan =
    match Resil.Fault.parse "point:engine.answer:1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault plan: %s" e
  in
  check "counted fault plan with workers > 1 is refused" true
    (match run_daemon ~workers:2 ~fault_plan:plan snap [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "workers < 1 is refused" true
    (match run_daemon ~workers:0 snap [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a stateless (always-fire) plan touches no trigger state, so it is
     allowed under concurrent workers *)
  let stateless =
    match Resil.Fault.parse "point:engine.answer:*" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault plan: %s" e
  in
  match run_daemon ~workers:2 ~fault_plan:stateless snap [] with
  | summary, _ -> check_int "stateless plan accepted" 0 summary.Server.Daemon.served
  | exception Invalid_argument m ->
      Alcotest.failf "stateless plan refused: %s" m

(* the satellite-2 pin: duplicates of a poison query faulting
   {e concurrently} must classify identically under any worker count —
   the quarantine mark is check-and-set under one lock, so exactly one
   duplicate reports the error and the rest are quarantined, whether
   they faulted in sequence (workers 1: later duplicates are refused by
   the pre-check) or in a race (workers 4: several evaluations fault,
   one wins the mark) *)
let test_daemon_concurrent_poison_determinism () =
  let snap = snapshot program in
  let plan =
    match Resil.Fault.parse "point:engine.answer:*" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault plan: %s" e
  in
  (* the poison query emits an answer, so the always-fire trigger kills
     every evaluation of it; the interleaved requests are answer-free
     (no probe hit) and must keep serving *)
  let lines =
    List.concat
      (List.init 6 (fun _ ->
           [ "answers q(X) :- prof(X)."; "count q(X) :- missing(X)." ]))
  in
  List.iter
    (fun workers ->
      let summary, t = run_daemon ~workers ~fault_plan:plan snap lines in
      check_int
        (Fmt.str "exactly one error at workers %d" workers)
        1 summary.Server.Daemon.errors;
      check_int
        (Fmt.str "other duplicates quarantined at workers %d" workers)
        5 summary.Server.Daemon.quarantined;
      check_int
        (Fmt.str "answer-free requests keep serving at workers %d" workers)
        6 summary.Server.Daemon.ok;
      check "failure message carries the fixed hit payload" true
        (contains t "injected fault at engine.answer (hit 1)"))
    [ 1; 2; 4 ]

let test_daemon_drain () =
  (* a pre-flipped stop is the degenerate drain: accept nothing, report
     drained *)
  let snap = snapshot program in
  let summary, t =
    run_daemon ~stop:(ref true) snap [ "answers q(X) :- prof(X)." ]
  in
  check "drained" true summary.Server.Daemon.drained;
  check_int "nothing served" 0 summary.Server.Daemon.served;
  check_str "no replies" "" t

let test_daemon_report () =
  let snap = snapshot program in
  let report = Obs.Report.create "server-test" in
  let summary, _ =
    run_daemon ~report ~workers:2 snap
      [
        "answers q(X) :- prof(X).";
        "count q(X) :- faculty(X).";
        "bogus";
        "answers q(X,C) :- teaches(X,C).";
      ]
  in
  check_int "served" 4 summary.Server.Daemon.served;
  let j = Obs.Report.to_json report in
  let member k =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "report field %s missing" k
  in
  check "requests field" true (member "server.requests" = Obs.Json.Int 4);
  check "workers field" true (member "server.workers" = Obs.Json.Int 2);
  check "errors field" true (member "server.errors" = Obs.Json.Int 1);
  check "qps present" true
    (match member "server.qps" with Obs.Json.Float _ -> true | _ -> false);
  (* the absorbed latency histogram covers evaluated requests only:
     malformed lines never reach the engine *)
  (match
     List.assoc_opt "server.request_s"
       (Obs.Metrics.histograms (Obs.Report.metrics report))
   with
  | Some s -> check_int "three evaluations observed" 3 s.Obs.Metrics.count
  | None -> Alcotest.fail "server.request_s histogram missing");
  (* one worker span per worker, each carrying request children *)
  match Obs.Json.member "span" j with
  | None -> Alcotest.fail "span missing"
  | Some s -> (
      match Obs.Json.member "children" s with
      | Some (Obs.Json.List kids) ->
          let names =
            List.filter_map
              (fun k ->
                match Obs.Json.member "name" k with
                | Some (Obs.Json.String n) -> Some n
                | _ -> None)
              kids
          in
          Alcotest.(check (list string))
            "worker spans in order" [ "worker-0"; "worker-1" ] names
      | _ -> Alcotest.fail "span has no children")

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests parse" `Quick test_parse_requests;
          Alcotest.test_case "canonical keys" `Quick test_parse_canonical_key;
          Alcotest.test_case "rejections" `Quick test_parse_rejections;
          Alcotest.test_case "reply rendering" `Quick test_render_replies;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "serves mixed requests" `Quick
            test_daemon_serves_mixed_requests;
          Alcotest.test_case "scheduling determinism (seeded)" `Quick
            test_daemon_scheduling_determinism;
          Alcotest.test_case "budget cuts to partial" `Quick
            test_daemon_budget_cuts_to_partial;
          Alcotest.test_case "unsaturated store serves partial" `Quick
            test_daemon_unsaturated_is_partial;
          Alcotest.test_case "quarantine" `Quick test_daemon_quarantine;
          Alcotest.test_case "fault plan needs one worker" `Quick
            test_daemon_rejects_concurrent_faults;
          Alcotest.test_case "concurrent poison classifies deterministically"
            `Quick test_daemon_concurrent_poison_determinism;
          Alcotest.test_case "drain" `Quick test_daemon_drain;
          Alcotest.test_case "report plumbing" `Quick test_daemon_report;
        ] );
    ]
