(** Synthetic workload generators for the test and benchmark suites:
    query families of bounded and unbounded treewidth, TGD families from
    the paper's classes, scalable databases, and random graphs for
    p-Clique. All generators are deterministic given their seed. *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd

let v = Term.var
let atom p args = Atom.make p args
let named s = Named s
let fact p args = Fact.make p (List.map named args)

(* ------------------------------------------------------------------ *)
(* Query families                                                       *)
(* ------------------------------------------------------------------ *)

(** Boolean path query of [n] edges over binary [pred]. *)
let path_cq ?(pred = "E") n =
  Cq.make
    (List.init n (fun i ->
         atom pred [ v (Printf.sprintf "x%d" i); v (Printf.sprintf "x%d" (i + 1)) ]))

(** Boolean [n × m] grid query over binary [X] (vertical) and [Y]
    (horizontal) — the unbounded-treewidth family of §6 (treewidth
    [min n m] as [n,m] grow). *)
let grid_cq ?(xpred = "X") ?(ypred = "Y") n m =
  let at i j = Printf.sprintf "g%d_%d" i j in
  let atoms =
    List.concat_map
      (fun i ->
        List.concat_map
          (fun j ->
            (if i < n - 1 then [ atom xpred [ v (at i j); v (at (i + 1) j) ] ] else [])
            @
            if j < m - 1 then [ atom ypred [ v (at i j); v (at i (j + 1)) ] ] else [])
          (List.init m Fun.id))
      (List.init n Fun.id)
  in
  Cq.make atoms

(** Boolean [k]-clique query over binary [E] (treewidth [k−1]). *)
let clique_cq ?(pred = "E") k =
  let atoms =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i < j then
              Some (atom pred [ v (Printf.sprintf "c%d" i); v (Printf.sprintf "c%d" j) ])
            else None)
          (List.init k Fun.id))
      (List.init k Fun.id)
  in
  Cq.make atoms

(** Star query: center joined to [n] leaves. *)
let star_cq ?(pred = "E") n =
  Cq.make
    (List.init n (fun i -> atom pred [ v "center"; v (Printf.sprintf "leaf%d" i) ]))

(* ------------------------------------------------------------------ *)
(* Databases                                                            *)
(* ------------------------------------------------------------------ *)

(** Path database: [E(a0,a1), …, E(a_{n-1},a_n)]. *)
let path_db ?(pred = "E") n =
  Instance.of_facts
    (List.init n (fun i ->
         fact pred [ "a" ^ string_of_int i; "a" ^ string_of_int (i + 1) ]))

(** [n × m] grid database over [X]/[Y] matching {!grid_cq}. *)
let grid_db ?(xpred = "X") ?(ypred = "Y") n m =
  let at i j = Printf.sprintf "a%d_%d" i j in
  Instance.of_facts
    (List.concat_map
       (fun i ->
         List.concat_map
           (fun j ->
             (if i < n - 1 then [ fact xpred [ at i j; at (i + 1) j ] ] else [])
             @ if j < m - 1 then [ fact ypred [ at i j; at i (j + 1) ] ] else [])
           (List.init m Fun.id))
       (List.init n Fun.id))

(** Pseudo-random database over a binary predicate: [size] facts over
    [dom] constants (deterministic in [seed]). *)
let random_binary_db ?(pred = "E") ~dom ~size ~seed () =
  let st = Random.State.make [| seed |] in
  let c () = "b" ^ string_of_int (Random.State.int st dom) in
  Instance.of_facts (List.init size (fun _ -> fact pred [ c (); c () ]))

(* ------------------------------------------------------------------ *)
(* Graphs for p-Clique                                                  *)
(* ------------------------------------------------------------------ *)

(** Erdős–Rényi-style graph on [n] vertices, each edge present with
    probability [p]. *)
let random_graph ~n ~p ~seed =
  let st = Random.State.make [| seed |] in
  let g = ref Qgraph.Graph.empty in
  for i = 0 to n - 1 do
    g := Qgraph.Graph.add_vertex !g i;
    for j = i + 1 to n - 1 do
      if Random.State.float st 1.0 < p then g := Qgraph.Graph.add_edge !g i j
    done
  done;
  !g

(** Random graph with a planted [k]-clique on the first [k] vertices. *)
let planted_clique ~n ~k ~p ~seed =
  let g = ref (random_graph ~n ~p ~seed) in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      g := Qgraph.Graph.add_edge !g i j
    done
  done;
  !g

(* ------------------------------------------------------------------ *)
(* TGD families                                                         *)
(* ------------------------------------------------------------------ *)

(** Chain of inclusion dependencies (linear ⊂ guarded):
    [R_i(x,y) → ∃z R_{i+1}(y,z)] for [i < depth]. *)
let linear_chain ~depth =
  List.init depth (fun i ->
      Tgd.make
        ~body:[ atom (Printf.sprintf "R%d" i) [ v "x"; v "y" ] ]
        ~head:[ atom (Printf.sprintf "R%d" (i + 1)) [ v "y"; v "z" ] ])

(** Guarded full family: marker propagation along edges,
    [E(x,y), P_i(x) → P_{i+1}(y)] (guarded by [E(x,y)], full). *)
let guarded_full_chain ~depth =
  Tgd.make ~body:[ atom "E" [ v "x"; v "y" ] ] ~head:[ atom "P0" [ v "x" ] ]
  :: List.init depth (fun i ->
         Tgd.make
           ~body:[ atom "E" [ v "x"; v "y" ]; atom (Printf.sprintf "P%d" i) [ v "x" ] ]
           ~head:[ atom (Printf.sprintf "P%d" (i + 1)) [ v "y" ] ])

(** A small university ontology (guarded, existential, terminating on the
    shipped data): the running example of the [examples/] directory. *)
let university_ontology () =
  [
    (* every professor teaches something *)
    Tgd.make ~body:[ atom "Prof" [ v "x" ] ] ~head:[ atom "Teaches" [ v "x"; v "c" ] ];
    (* whatever is taught is a course *)
    Tgd.make ~body:[ atom "Teaches" [ v "x"; v "c" ] ] ~head:[ atom "Course" [ v "c" ] ];
    (* every course is offered by a department *)
    Tgd.make ~body:[ atom "Course" [ v "c" ] ] ~head:[ atom "OfferedBy" [ v "c"; v "d" ] ];
    (* offering departments are departments *)
    Tgd.make ~body:[ atom "OfferedBy" [ v "c"; v "d" ] ] ~head:[ atom "Dept" [ v "d" ] ];
    (* teachers are faculty members *)
    Tgd.make ~body:[ atom "Teaches" [ v "x"; v "c" ] ] ~head:[ atom "Faculty" [ v "x" ] ];
  ]

(** Guarded ontology with an infinite chase (manager chains) — exercises
    ground closure and finite witnesses. *)
let manager_ontology () =
  [
    Tgd.make ~body:[ atom "Emp" [ v "x" ] ] ~head:[ atom "ReportsTo" [ v "x"; v "m" ] ];
    Tgd.make
      ~body:[ atom "ReportsTo" [ v "x"; v "m" ] ]
      ~head:[ atom "Emp" [ v "m" ] ];
    Tgd.make
      ~body:[ atom "ReportsTo" [ v "x"; v "m" ] ]
      ~head:[ atom "Managed" [ v "x" ] ];
  ]

(** Referential integrity constraints for the closed-world examples. *)
let referential_constraints () =
  [
    (* every order references an existing customer *)
    Tgd.make
      ~body:[ atom "Order" [ v "o"; v "c" ] ]
      ~head:[ atom "Customer" [ v "c" ] ];
    (* every order line references an existing order *)
    Tgd.make
      ~body:[ atom "Line" [ v "l"; v "o" ] ]
      ~head:[ atom "Order" [ v "o"; v "c" ] ];
  ]

(** A LUBM-flavoured scalable academic workload: [universities]
    universities, each with departments, professors, courses and students;
    returns the database together with the matching guarded ontology
    (a superset of {!university_ontology} with student/advisor axioms). *)
let lubm ~universities ?(depts_per_univ = 2) ?(profs_per_dept = 3)
    ?(students_per_dept = 5) () =
  let ontology =
    university_ontology ()
    @ [
        (* students take courses *)
        Tgd.make ~body:[ atom "Student" [ v "s" ] ]
          ~head:[ atom "Takes" [ v "s"; v "c" ] ];
        Tgd.make ~body:[ atom "Takes" [ v "s"; v "c" ] ]
          ~head:[ atom "Course" [ v "c" ] ];
        (* every student has an advisor who is faculty *)
        Tgd.make ~body:[ atom "Student" [ v "s" ] ]
          ~head:[ atom "AdvisedBy" [ v "s"; v "a" ] ];
        Tgd.make
          ~body:[ atom "AdvisedBy" [ v "s"; v "a" ] ]
          ~head:[ atom "Faculty" [ v "a" ] ];
        (* members of a department *)
        Tgd.make
          ~body:[ atom "MemberOf" [ v "x"; v "d" ] ]
          ~head:[ atom "Dept" [ v "d" ] ];
      ]
  in
  let facts = ref [] in
  for u = 0 to universities - 1 do
    for d = 0 to depts_per_univ - 1 do
      let dept = Printf.sprintf "dept_%d_%d" u d in
      facts := fact "Dept" [ dept ] :: !facts;
      for p = 0 to profs_per_dept - 1 do
        let prof = Printf.sprintf "prof_%d_%d_%d" u d p in
        let course = Printf.sprintf "course_%d_%d_%d" u d p in
        facts :=
          fact "Prof" [ prof ]
          :: fact "MemberOf" [ prof; dept ]
          :: fact "Teaches" [ prof; course ]
          :: !facts
      done;
      for st = 0 to students_per_dept - 1 do
        let student = Printf.sprintf "student_%d_%d_%d" u d st in
        facts :=
          fact "Student" [ student ]
          :: fact "MemberOf" [ student; dept ]
          :: (if st mod 2 = 0 then
                [ fact "Takes" [ student; Printf.sprintf "course_%d_%d_0" u d ] ]
              else [])
          @ !facts
      done
    done
  done;
  (ontology, Instance.of_facts !facts)

(** The OMQ family [Q_n] of the dichotomy experiment: grid queries of
    growing treewidth over a fixed guarded ontology. *)
let dichotomy_omq_family ~ontology n =
  Omq.full_data_schema ~ontology ~query:(Ucq.of_cq (grid_cq n n))

(** The bounded-treewidth control family: path queries of the same size. *)
let bounded_omq_family ~ontology n =
  Omq.full_data_schema ~ontology ~query:(Ucq.of_cq (path_cq (n * n)))
