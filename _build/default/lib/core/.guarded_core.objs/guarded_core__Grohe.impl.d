lib/core/grohe.ml: Array ConstMap ConstSet Fact Hashtbl Homomorphism Instance List Printf Qgraph Relational Stdlib
