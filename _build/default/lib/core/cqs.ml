(** Constraint-query specifications (§3.2).

    A CQS is a pair [S = (Σ, q)] over a schema [T]: [Σ] is a set of
    integrity constraints that input databases are *promised* to satisfy,
    and [q] is evaluated directly (closed world). *)

open Relational

type t = { constraints : Tgds.Tgd.t list; query : Ucq.t }

let make ~constraints ~query = { constraints; query }
let constraints s = s.constraints
let query s = s.query
let arity s = Ucq.arity s.query

(** The schema [T] of the CQS. *)
let schema s =
  Schema.union (Tgds.Tgd.schema_of_set s.constraints) (Ucq.schema s.query)

let norm s =
  Ucq.norm s.query
  + List.fold_left
      (fun acc t ->
        acc + List.length (Tgds.Tgd.body t) + List.length (Tgds.Tgd.head t))
      0 s.constraints

(** [omq s] — the OMQ [omq(S)] with full data schema (§5.1). *)
let omq s = Omq.full_data_schema ~ontology:s.constraints ~query:s.query

(** [admissible s db] — the promise: [db ⊨ Σ]. *)
let admissible s db = Tgds.Tgd.satisfies_all db s.constraints

let in_guarded s = Tgds.Tgd.all_guarded s.constraints
let in_frontier_guarded s = Tgds.Tgd.all_frontier_guarded s.constraints
let in_fg m s = List.for_all (Tgds.Tgd.is_fg m) s.constraints
let in_ucqk k s = Ucq.in_ucqk k s.query

let pp ppf s =
  Fmt.pf ppf "@[<v>CQS Σ = {%a}@,q = %a@]"
    Fmt.(list ~sep:(any "; ") Tgds.Tgd.pp)
    s.constraints Ucq.pp s.query
