lib/qgraph/tree_decomposition.mli: Format Graph
