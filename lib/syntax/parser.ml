(** Recursive-descent parser for the surface language.

    Statements (each ending with a period):
    - schema declaration: [pred/2.]
    - TGD: [body -> head.] — head variables absent from the body are
      implicitly existentially quantified, as in the paper's notation;
      an empty body is written [true -> head.]
    - fact: a ground atom [knows(alice,bob).]
    - query: [q(X) :- knows(X,Y).] — several clauses with the same head
      name and arity form a UCQ.

    Identifiers starting with an uppercase letter or [_] are variables;
    others are constants / predicate names. *)

open Relational

type program = {
  schema : Schema.t;  (** declared plus inferred predicates *)
  tgds : Tgds.Tgd.t list;
  facts : Fact.t list;
  queries : (string * Ucq.t) list;  (** named UCQs, in declaration order *)
}

exception Error of string * int * int

type state = { mutable rest : Lexer.lexeme list }

let peek st =
  match st.rest with [] -> assert false | l :: _ -> l

let next st =
  let l = peek st in
  (match st.rest with [] -> () | _ :: tl -> st.rest <- tl);
  l

let fail st msg =
  let l = peek st in
  raise (Error (Fmt.str "%s (found %a)" msg Lexer.pp_token l.Lexer.token, l.Lexer.line, l.Lexer.col))

let expect st token msg =
  let l = next st in
  if l.Lexer.token <> token then
    raise (Error (Fmt.str "%s (found %a)" msg Lexer.pp_token l.Lexer.token, l.Lexer.line, l.Lexer.col))

(* term := lowercase ident (constant) | Uppercase ident (variable) | int *)
let parse_term st =
  match (next st).Lexer.token with
  | Lexer.Ident s -> Term.const s
  | Lexer.Upper x -> Term.var x
  | Lexer.Int n -> Term.const (string_of_int n)
  | _ ->
      st.rest <- peek st :: st.rest;
      fail st "expected a term"

(* atom := ident [ '(' term, ..., term ')' ] *)
let parse_atom st =
  match (next st).Lexer.token with
  | Lexer.Ident p ->
      if (peek st).Lexer.token = Lexer.Lparen then begin
        ignore (next st);
        if (peek st).Lexer.token = Lexer.Rparen then begin
          ignore (next st);
          Atom.make p []
        end
        else
        let rec args acc =
          let t = parse_term st in
          match (next st).Lexer.token with
          | Lexer.Comma -> args (t :: acc)
          | Lexer.Rparen -> List.rev (t :: acc)
          | _ -> fail st "expected ',' or ')'"
        in
        Atom.make p (args [])
      end
      else Atom.make p []
  | _ -> fail st "expected a predicate name"

let parse_atom_list st =
  let rec go acc =
    let a = parse_atom st in
    if (peek st).Lexer.token = Lexer.Comma then begin
      ignore (next st);
      go (a :: acc)
    end
    else List.rev (a :: acc)
  in
  go []

(* one statement; returns its effect *)
type statement =
  | Decl of string * int
  | Tgd_stmt of Tgds.Tgd.t
  | Fact_stmt of Fact.t
  | Query_stmt of string * Cq.t

let parse_statement st =
  match (peek st).Lexer.token with
  | Lexer.Ident "true" -> (
      (* empty-body TGD: true -> head. *)
      ignore (next st);
      match (next st).Lexer.token with
      | Lexer.Arrow ->
          let head = parse_atom_list st in
          expect st Lexer.Period "expected '.' after TGD";
          Tgd_stmt (Tgds.Tgd.make ~body:[] ~head)
      | _ -> fail st "expected '->' after true")
  | _ -> (
      let first = parse_atom st in
      match (next st).Lexer.token with
      | Lexer.Slash -> (
          (* schema declaration p/2 — [first] must be a 0-ary atom *)
          match ((peek st).Lexer.token, Atom.args first) with
          | Lexer.Int n, [] ->
              ignore (next st);
              expect st Lexer.Period "expected '.' after declaration";
              Decl (Atom.pred first, n)
          | _ -> fail st "expected an arity after '/'")
      | Lexer.Period ->
          if Atom.is_ground first then Fact_stmt (Fact.of_atom first)
          else fail st "a fact must be ground"
      | (Lexer.Comma | Lexer.Arrow) as tok ->
          (* TGD: body -> head *)
          let body =
            if tok = Lexer.Comma then first :: parse_atom_list st else [ first ]
          in
          if tok = Lexer.Comma then expect st Lexer.Arrow "expected '->'";
          let head = parse_atom_list st in
          expect st Lexer.Period "expected '.' after TGD";
          Tgd_stmt (Tgds.Tgd.make ~body ~head)
      | Lexer.Turnstile ->
          (* query: head(args) :- body. *)
          let answer =
            List.map
              (function
                | Term.Var x -> x
                | Term.Const _ -> fail st "query answers must be variables")
              (Atom.args first)
          in
          let body = parse_atom_list st in
          expect st Lexer.Period "expected '.' after query";
          Query_stmt (Atom.pred first, Cq.make ~answer body)
      | _ -> fail st "expected '.', '/', '->' or ':-'")

(** [parse src] — the whole program. Raises {!Error} (or {!Lexer.Error})
    with a position on malformed input. *)
let parse src =
  let st = { rest = Lexer.tokenize src } in
  let decls = ref [] and tgds = ref [] and facts = ref [] in
  let queries : (string * Cq.t list) list ref = ref [] in
  while (peek st).Lexer.token <> Lexer.Eof do
    match parse_statement st with
    | Decl (p, n) -> decls := (p, n) :: !decls
    | Tgd_stmt t -> tgds := t :: !tgds
    | Fact_stmt f -> facts := f :: !facts
    | Query_stmt (name, cq) ->
        queries :=
          (match List.assoc_opt name !queries with
          | Some cqs -> (name, cq :: cqs) :: List.remove_assoc name !queries
          | None -> (name, [ cq ]) :: !queries)
  done;
  let tgds = List.rev !tgds and facts = List.rev !facts in
  let inferred =
    let from_atoms atoms s =
      List.fold_left (fun s a -> Schema.add (Atom.pred a) (Atom.arity a) s) s atoms
    in
    List.fold_left
      (fun s t -> from_atoms (Tgds.Tgd.body t) (from_atoms (Tgds.Tgd.head t) s))
      (List.fold_left
         (fun s f -> Schema.add (Fact.pred f) (Fact.arity f) s)
         (Schema.of_list (List.rev !decls))
         facts)
      tgds
  in
  {
    schema = inferred;
    tgds;
    facts;
    queries =
      List.rev_map (fun (name, cqs) -> (name, Ucq.make (List.rev cqs))) !queries;
  }

(* A base-fact mutation of a log file: [+fact.] adds, [-fact.] removes. *)
type mutation = Add of Fact.t | Del of Fact.t

(** [parse_mutations src] — a mutation log: a sequence of
    [+fact(...).] / [-fact(...).] statements ([%] comments as usual),
    in order. Facts must be ground. *)
let parse_mutations src =
  let st = { rest = Lexer.tokenize src } in
  let muts = ref [] in
  while (peek st).Lexer.token <> Lexer.Eof do
    let sign =
      match (next st).Lexer.token with
      | Lexer.Plus -> true
      | Lexer.Minus -> false
      | _ ->
          st.rest <- peek st :: st.rest;
          fail st "expected '+' or '-' starting a mutation"
    in
    let a = parse_atom st in
    expect st Lexer.Period "expected '.' after mutation";
    if not (Atom.is_ground a) then fail st "a mutation must be ground";
    let f = Fact.of_atom a in
    muts := (if sign then Add f else Del f) :: !muts
  done;
  List.rev !muts

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

(** [parse_file path] — parse a program from a file. *)
let parse_file path = parse (read_file path)

(** [parse_mutations_file path] — parse a mutation log from a file. *)
let parse_mutations_file path = parse_mutations (read_file path)

(** Database of the program's facts. *)
let database p = Instance.of_facts p.facts

(** Look up a named query. *)
let query p name = List.assoc_opt name p.queries
