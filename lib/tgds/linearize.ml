(** Linearization of guarded TGD sets (Lemma A.3, Appendix A.1).

    From a guarded set Σ and a database D, builds a database [D*] and a
    *linear* set [Σ* = Σ*_tg ∪ Σ*_ex] such that
    [Q(D) = q(chase(D_star, Σ_star))] for [Q = (S,Σ,q)]. Facts of [D*] have the form
    [⟨τ⟩(c̄)] where the predicate encodes a Σ-type τ — the shape of a guard
    atom together with the side atoms over its constants — and [Σ*]
    consists of the *type generator* (deriving new type facts from old
    ones, simulating guarded chase steps) and the *expander* (recovering
    the guard atom of each type).

    Deviation from the paper, documented in DESIGN.md §5: instead of
    enumerating all (exponentially many) Σ-types up front, types and their
    rules are materialized on demand, starting from the types of [D*] and
    closing under the type generator. The resulting [Σ*] is exactly the
    reachable fragment of the paper's [Σ*], which chases identically from
    [D*]. *)

open Relational
open Relational.Term

(* Canonical constants of type representations. *)
let ci i = Named (Printf.sprintf "\002%d" i)

type ty = {
  guard : Fact.t;  (** guard atom over canonical constants [ci 1], [ci 2], … *)
  side : Fact.t list;  (** side atoms over the guard's constants, sorted *)
}

(** [atoms_of ty] — [atoms(τ)] as an instance. *)
let atoms_of ty = Instance.of_facts (ty.guard :: ty.side)

(** Number of distinct constants in the guard ([ar(τ)]). *)
let ty_width ty = ConstSet.cardinal (Fact.consts ty.guard)

(** Encoded predicate name of [⟨τ⟩]. *)
let pred_name ty =
  let s f = Fmt.str "%a" Fact.pp f in
  Fmt.str "⟨%s|%s⟩" (s ty.guard) (String.concat ";" (List.map s ty.side))

(* First-occurrence canonical renaming of a constant tuple: returns the
   assoc list const -> ci i (i starting at 1). *)
let first_occurrence_renaming consts =
  let rec go i seen = function
    | [] -> List.rev seen
    | c :: rest ->
        if List.mem_assoc c seen then go i seen rest
        else go (i + 1) ((c, ci i) :: seen) rest
  in
  go 1 [] consts

(* Build the type of an atom [fact] in the completed instance [complete]:
   guard = the atom itself normalized, side = all atoms of [complete] over
   the atom's constants, normalized the same way. *)
let type_of_fact complete fact =
  let ren = first_occurrence_renaming (Fact.args fact) in
  let rename f = Fact.rename (fun c -> List.assoc_opt c ren) f in
  let guard = rename fact in
  let side =
    Instance.restrict complete (Fact.consts fact)
    |> Instance.facts
    |> List.map rename
    |> List.filter (fun f -> not (Fact.equal f guard))
    |> List.sort_uniq Fact.compare
  in
  { guard; side }

(** [d_star sigma db] — the database [D*]: every fact of [db] typed with
    its (maximal) Σ-type in [complete(D,Σ)]. Returns the typed database
    together with the list of types present (the seeds of the reachable
    closure). *)
let d_star sigma db =
  let complete = Ground_closure.compute sigma db in
  let types = Hashtbl.create 32 in
  let typed =
    Instance.fold
      (fun fact acc ->
        let ty = type_of_fact complete fact in
        Hashtbl.replace types (pred_name ty) ty;
        Instance.add_fact (Fact.make (pred_name ty) (Fact.args fact)) acc)
      db Instance.empty
  in
  (typed, Hashtbl.fold (fun _ ty acc -> ty :: acc) types [])

(* Homomorphisms h from body(σ) into atoms(τ) with h(guard σ) = guard τ. *)
let guard_matches sigma_tgd ty =
  match Tgd.guard sigma_tgd with
  | None ->
      (* empty body: a single trivial match *)
      if Tgd.body sigma_tgd = [] then [ VarMap.empty ] else []
  | Some g ->
      if Atom.pred g <> Fact.pred ty.guard then []
      else
        let rec unify b args consts =
          match (args, consts) with
          | [], [] -> Some b
          | Var x :: args', c :: consts' -> (
              match VarMap.find_opt x b with
              | Some d -> if equal_const c d then unify b args' consts' else None
              | None -> unify (VarMap.add x c b) args' consts')
          | Const c :: args', d :: consts' ->
              if equal_const c d then unify b args' consts' else None
          | _ -> None
        in
        (match unify VarMap.empty (Atom.args g) (Fact.args ty.guard) with
        | None -> []
        | Some init ->
            let rest = List.filter (fun a -> not (Atom.equal a g)) (Tgd.body sigma_tgd) in
            Homomorphism.all ~init rest (atoms_of ty))

(* Given τ, σ and a matching hom h, produce the linear rule
   ⟨τ⟩(ū) → ∃z̄ ⟨τ1⟩(ū1), …, ⟨τn⟩(ūn) and the child types. *)
let generate_rule sigma ty sigma_tgd (h : Homomorphism.binding) =
  let frontier = Tgd.frontier sigma_tgd in
  let ex = VarSet.elements (Tgd.existential_vars sigma_tgd) in
  let f_var x =
    if VarSet.mem x frontier then
      match VarMap.find_opt x h with
      | Some c -> c
      | None -> invalid_arg "Linearize: frontier variable unbound"
    else
      (* existential: a fresh canonical constant beyond the type width *)
      let j = Option.get (List.find_index (String.equal x) ex) in
      ci (1000 + j)
  in
  let head_facts =
    List.map
      (fun a ->
        Fact.make (Atom.pred a)
          (List.map
             (function Var x -> f_var x | Const c -> c)
             (Atom.args a)))
      (Tgd.head sigma_tgd)
  in
  let frontier_consts =
    VarSet.fold
      (fun x acc ->
        match VarMap.find_opt x h with Some c -> ConstSet.add c acc | None -> acc)
      frontier ConstSet.empty
  in
  let i_inst =
    Instance.union
      (Instance.of_facts head_facts)
      (Instance.restrict (atoms_of ty) frontier_consts)
  in
  let complete_i = Ground_closure.saturate_small sigma i_inst in
  let child_types = List.map (type_of_fact complete_i) head_facts in
  let body_atom =
    match Tgd.guard sigma_tgd with
    | Some g -> Atom.make (pred_name ty) (Atom.args g)
    | None -> Atom.make (pred_name ty) []
  in
  let head_atoms =
    List.map2
      (fun a child -> Atom.make (pred_name child) (Atom.args a))
      (Tgd.head sigma_tgd) child_types
  in
  (Tgd.make ~body:[ body_atom ] ~head:head_atoms, child_types)

(** Expander rule for a type: [⟨τ⟩(x1,…,xk) → R(x1,…,xk)]. *)
let expander_rule ty =
  let k = Fact.arity ty.guard in
  let xs = List.init k (fun i -> Var (Printf.sprintf "x%d" (i + 1))) in
  Tgd.make
    ~body:[ Atom.make (pred_name ty) xs ]
    ~head:[ Atom.make (Fact.pred ty.guard) xs ]

type t = {
  db_star : Instance.t;  (** the typed database [D*] *)
  sigma_star : Tgd.t list;  (** the linear set [Σ*] (generator + expander) *)
  types : ty list;  (** all reachable types *)
  complete : bool;  (** false iff the type budget was exhausted *)
}

(** [make ?max_types sigma db] — run the construction of Lemma A.3:
    compute [D*] and the reachable fragment of [Σ*]. [max_types] caps the
    type exploration (default 4000); [complete = false] signals the cap was
    hit, in which case [chase(D_star, Σ_star)] is still sound but may be missing
    answers. Requires Σ guarded. *)
let make ?(max_types = 4000) sigma db =
  if not (Tgd.all_guarded sigma) then
    invalid_arg "Linearize.make: Σ must be guarded";
  let db_star, seeds = d_star sigma db in
  let seen : (string, ty) Hashtbl.t = Hashtbl.create 64 in
  let rules : (string, Tgd.t) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let complete = ref true in
  let visit ty =
    let name = pred_name ty in
    if not (Hashtbl.mem seen name) then
      if Hashtbl.length seen >= max_types then complete := false
      else begin
        Hashtbl.replace seen name ty;
        Queue.add ty queue
      end
  in
  List.iter visit seeds;
  while not (Queue.is_empty queue) do
    let ty = Queue.pop queue in
    let exp = expander_rule ty in
    Hashtbl.replace rules (Fmt.str "%a" Tgd.pp exp) exp;
    List.iter
      (fun sigma_tgd ->
        List.iter
          (fun h ->
            let rule, children = generate_rule sigma ty sigma_tgd h in
            Hashtbl.replace rules (Fmt.str "%a" Tgd.pp rule) rule;
            List.iter visit children)
          (guard_matches sigma_tgd ty))
      sigma
  done;
  {
    db_star;
    sigma_star = Hashtbl.fold (fun _ r acc -> r :: acc) rules [];
    types = Hashtbl.fold (fun _ t acc -> t :: acc) seen [];
    complete = !complete;
  }

(** [certain ?max_level lin q tuple] — evaluate a UCQ over
    [chase(D_star, Σ_star)], level-bounded per Lemma A.1 (the required level is a
    computable function of ‖Σ‖+‖q‖; the default bound is configurable and
    the saturation flag of the run tells whether the check was
    exhaustive). *)
let certain ?(max_level = 8) ?max_facts lin (q : Ucq.t) tuple =
  let r = Chase.run ~max_level ?max_facts lin.sigma_star lin.db_star in
  ( Engine.Joiner.entails_ucq (Chase.index r) q tuple,
    Chase.saturated r && lin.complete )
