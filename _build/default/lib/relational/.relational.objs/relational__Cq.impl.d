lib/relational/cq.ml: Array Atom ConstSet Fact Fmt Hashtbl Homomorphism Instance List Qgraph Schema Set Stdlib String Term VarMap VarSet
