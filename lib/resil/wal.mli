(** Write-ahead mutation log for the [serve] maintenance loop.

    A WAL directory holds two kinds of files:

    - [image-<seq>.json] — an exact {!Incr.image} of the maintained
      store {e after} applying mutations [1..seq] (written atomically:
      temp file, fsync, rename);
    - [wal-<seq>.log] — the segment of records appended {e after} that
      image, one record per line:
      {v
      <crc32-hex8> <json>\n
      v}
      where the checksum covers exactly the JSON payload. A mutation
      record is [{"s": seq, "k": "+"|"-", "p": pred, "a": [const, …]}]
      (constants spelled as in {!Checkpoint}); a quarantine marker
      [{"s": seq, "k": "q"}] says the mutation recorded under [seq] was
      rejected after exhausting its retries and must be skipped on
      replay.

    Durability contract: {!append} writes the record and fsyncs {e
    before} the caller applies the mutation (append-before-apply), so
    every acknowledged mutation is on disk. The record body is flushed
    before its terminating newline: a crash mid-append leaves a {e torn}
    final line (no newline, or a checksum mismatch), which {!recover}
    truncates instead of failing — that mutation was never applied, and
    re-running the log re-appends it. Probe points [wal.append] (before
    anything is written) and [wal.fsync] (after the body, before the
    newline and fsync) let a fault plan exercise both crash windows
    deterministically.

    {!rotate} writes a fresh image and starts a new segment, then prunes
    everything older; each crash window in that sequence leaves a
    recoverable directory (an image with no segment recovers with an
    empty tail; an un-pruned old segment contributes no records above
    the image's seq).

    Recovery loads the newest image that decodes (falling back past
    corrupt ones), replays the surviving tail records in sequence order
    minus the quarantined ones, and reports how many records were
    replayed and truncated — {!Incr.of_image} plus this tail reproduces
    the pre-crash store {e exactly} (same null ids, same iteration
    order), which is what makes post-recovery output byte-identical to
    an uninterrupted run. *)

(** A durable record: a mutation with its 1-based log position, or a
    quarantine marker naming a poisoned position. *)
type record = Op of int * Incr.op | Quarantine of int

(** An open, appendable WAL. *)
type t

(** [create ~dir image] — start a fresh WAL: make [dir] (and parents) if
    needed, write [image-0.json] from [image] (the post-chase,
    pre-mutation store) and open segment [wal-0.log]. Raises
    [Invalid_argument] if [dir] already holds WAL files — recovering and
    overwriting are different intents ([--recover] vs a fresh
    directory). *)
val create : dir:string -> Incr.image -> t

(** [reopen ~dir] — open the newest segment for appending after a
    {!recover} (creating it when the crash fell between image write and
    segment creation). Raises [Invalid_argument] when [dir] holds no
    image. *)
val reopen : dir:string -> t

(** [append t record] — write, flush, fsync. See the durability
    contract above. *)
val append : t -> record -> unit

(** [rotate t ~seq image] — persist [image] as [image-<seq>.json], start
    segment [wal-<seq>.log], prune older images and segments. *)
val rotate : t -> seq:int -> Incr.image -> unit

val close : t -> unit

type recovery = {
  rec_image : Incr.image;
  rec_image_seq : int;
  rec_ops : (int * Incr.op) list;
      (** tail mutations to replay: seq above the image's, quarantined
          positions removed, ascending *)
  rec_quarantined : int list;  (** quarantined positions seen, ascending *)
  rec_last_seq : int;
      (** highest durable record position — the log resumes at
          [rec_last_seq + 1] *)
  rec_truncated : int;  (** torn final records dropped (0 or 1) *)
  rec_skipped_images : int;  (** corrupt newer images fallen past *)
}

(** [recover ~dir] — read the directory back; [Error] with a one-line
    diagnostic when no image decodes or a non-final record is corrupt
    (a torn {e final} record is truncated, not an error). *)
val recover : dir:string -> (recovery, string) result

(** No images in [dir] (missing, empty, or never rotated): nothing to
    recover — callers fall back to a fresh start. *)
val is_empty : dir:string -> bool

(** Image codec, exposed for tests: [image_of_json (image_to_json ~seq
    im) = Ok (seq, im)]. *)
val image_to_json : seq:int -> Incr.image -> Obs.Json.t

val image_of_json : Obs.Json.t -> (int * Incr.image, string) result
