examples/open_to_closed.mli:
