(* Randomized cross-validation of the indexed semi-naive saturation engine
   (lib/engine) against the naive re-enumerating chase: identical s-levels
   (Lemma A.1 canonicity is preserved by the delta-driven evaluation),
   identical certain answers, and joiner/index unit properties. *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

(* ------------------------------------------------------------------ *)
(* Generators: random guarded TGD sets over {A/1, B/1, S/2, T/2} with   *)
(* joins and existentials, and small random databases                   *)
(* ------------------------------------------------------------------ *)

let tgd_pool =
  [|
    (* linear, existential *)
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    (* linear, frontier only *)
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
    (* guarded join *)
    tgd [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    (* existential chain *)
    tgd [ atom "B" [ v "x" ] ] [ atom "T" [ v "x"; v "z" ] ];
    (* reflexive guard *)
    tgd [ atom "S" [ v "x"; v "x" ] ] [ atom "B" [ v "x" ] ];
    (* two-atom guarded body across predicates *)
    tgd [ atom "T" [ v "x"; v "y" ]; atom "B" [ v "x" ] ] [ atom "S" [ v "y"; v "x" ] ];
    (* multi-atom head *)
    tgd [ atom "T" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ]; atom "B" [ v "y" ] ];
  |]

let gen_sigma =
  QCheck.Gen.(
    map
      (List.map (Array.get tgd_pool))
      (list_size (int_range 1 4) (int_range 0 (Array.length tgd_pool - 1))))

let gen_db =
  QCheck.Gen.(
    let gc = map (List.nth [ "a"; "b"; "c" ]) (int_range 0 2) in
    let gen_fact =
      let* p = int_range 0 3 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc in
          return (fact "B" [ a ])
      | 2 ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "T" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 5) gen_fact))

let arb_sigma_db =
  QCheck.make
    ~print:(fun (s, db) -> Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db)
    QCheck.Gen.(pair gen_sigma gen_db)

(* ------------------------------------------------------------------ *)
(* Level-wise equivalence: chase^ℓ_s agrees level by level              *)
(* ------------------------------------------------------------------ *)

let max_level = 6

let levels_agree ~policy (sigma, db) =
  let naive = Chase.run ~engine:`Naive ~policy ~max_level ~max_facts:5000 sigma db in
  let indexed =
    Chase.run ~engine:`Indexed ~policy ~max_level ~max_facts:5000 sigma db
  in
  Chase.saturated naive = Chase.saturated indexed
  && List.for_all
       (fun l ->
         Instance.size (Chase.up_to_level naive l)
         = Instance.size (Chase.up_to_level indexed l))
       (List.init (max_level + 1) Fun.id)

let prop_levels_oblivious =
  QCheck.Test.make ~name:"indexed ≍ naive per level (oblivious)" ~count:200
    arb_sigma_db
    (levels_agree ~policy:Chase.Oblivious)

let prop_levels_restricted =
  QCheck.Test.make ~name:"indexed ≍ naive per level (restricted)" ~count:200
    arb_sigma_db
    (levels_agree ~policy:Chase.Restricted)

(* ------------------------------------------------------------------ *)
(* Certain answers agree under both engines                             *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    bool_q [ atom "A" [ v "u" ] ];
    bool_q [ atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ] ];
    bool_q [ atom "T" [ v "u"; v "w" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "T" [ v "w"; v "z" ] ];
  ]

let prop_certain_agrees =
  QCheck.Test.make ~name:"certain answers agree across engines" ~count:120
    arb_sigma_db (fun (sigma, db) ->
      List.for_all
        (fun q ->
          let vn, en = Chase.certain ~engine:`Naive ~max_level:8 sigma db q [] in
          let vi, ei = Chase.certain ~engine:`Indexed ~max_level:8 sigma db q [] in
          en = ei && ((not en) || vn = vi))
        queries)

(* ------------------------------------------------------------------ *)
(* Joiner ≡ Homomorphism.fold_homs on random instances                  *)
(* ------------------------------------------------------------------ *)

let sorted_homs fold =
  fold (fun b acc -> VarMap.bindings b :: acc) [] |> List.sort Stdlib.compare

let prop_joiner_matches_fold_homs =
  QCheck.Test.make ~name:"Joiner.fold enumerates the same homomorphisms"
    ~count:200 arb_sigma_db (fun (sigma, db) ->
      let inst = Chase.instance (Chase.run ~max_level:3 ~max_facts:500 sigma db) in
      let idx = Engine.Index.of_instance inst in
      List.for_all
        (fun q ->
          let body = Cq.atoms (List.hd (Ucq.disjuncts q)) in
          sorted_homs (fun f acc -> Homomorphism.fold_homs body inst f acc)
          = sorted_homs (fun f acc -> Engine.Joiner.fold body idx f acc))
        queries)

(* ------------------------------------------------------------------ *)
(* Index unit properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_index_roundtrip =
  QCheck.Test.make ~name:"Index.of_instance/to_instance roundtrip" ~count:200
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp) gen_db) (fun db ->
      Instance.equal db (Engine.Index.to_instance (Engine.Index.of_instance db)))

let test_index_postings () =
  let idx =
    Engine.Index.of_instance
      (Instance.of_facts
         [ fact "S" [ "a"; "b" ]; fact "S" [ "a"; "c" ]; fact "S" [ "b"; "c" ] ])
  in
  check_int "bucket (S,0,a)" 2 (Engine.Index.count_at idx "S" 0 (Named "a"));
  check_int "bucket (S,1,c)" 2 (Engine.Index.count_at idx "S" 1 (Named "c"));
  check_int "relation size" 3 (Engine.Index.count_of idx "S");
  check "duplicate insert rejected" false
    (Engine.Index.insert (fact "S" [ "a"; "b" ]) idx);
  check_int "size unchanged" 3 (Engine.Index.size idx)

let test_delta_restriction () =
  (* with ~delta, only matches using a delta fact for the first atom *)
  let inst =
    Instance.of_facts [ fact "A" [ "a" ]; fact "A" [ "b" ]; fact "S" [ "a"; "b" ] ]
  in
  let idx = Engine.Index.of_instance inst in
  let body = [ atom "A" [ v "x" ]; atom "S" [ v "x"; v "y" ] ] in
  let all = Engine.Joiner.all body idx in
  check_int "unrestricted: one hom" 1 (List.length all);
  let none =
    Engine.Joiner.fold ~delta:[ fact "A" [ "b" ] ] body idx
      (fun _ n -> n + 1)
      0
  in
  check_int "delta A(b): no hom" 0 none;
  let one =
    Engine.Joiner.fold ~delta:[ fact "A" [ "a" ] ] body idx
      (fun _ n -> n + 1)
      0
  in
  check_int "delta A(a): one hom" 1 one

let test_stats_reported () =
  let sigma =
    [ tgd [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ] ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "a"; "b" ] ] in
  let r = Chase.run ~engine:`Indexed sigma db in
  match Chase.stats r with
  | None -> Alcotest.fail "indexed run must report stats"
  | Some s ->
      check_int "one trigger" 1 s.Engine.Saturate.triggers_fired;
      check "probes counted" true (s.Engine.Saturate.index_probes > 0);
      check_int "one fact at level 1" 1 (List.hd s.Engine.Saturate.facts_per_level)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_levels_oblivious;
      prop_levels_restricted;
      prop_certain_agrees;
      prop_joiner_matches_fold_homs;
      prop_index_roundtrip;
    ]

let () =
  Alcotest.run "engine"
    [
      ( "units",
        [
          Alcotest.test_case "index postings" `Quick test_index_postings;
          Alcotest.test_case "delta restriction" `Quick test_delta_restriction;
          Alcotest.test_case "saturation stats" `Quick test_stats_reported;
        ] );
      ("properties", qcheck_tests);
    ]
