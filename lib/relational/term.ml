(** Terms: constants, labelled nulls, and variables (§2 of the paper).

    The countably infinite set [C] of constants is split into named
    constants (database values) and labelled nulls (the fresh constants
    invented by chase steps). Both behave as constants semantically; the
    distinction matters for pretty-printing, for the "ground part" of a
    chase, and for unraveling constructions that copy constants. *)

type const =
  | Named of string  (** an ordinary database constant *)
  | Null of int  (** a labelled null invented by the chase *)

type t = Const of const | Var of string

let compare_const (a : const) (b : const) = compare a b
let equal_const a b = compare_const a b = 0
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

module ConstSet = Set.Make (struct
  type t = const

  let compare = compare_const
end)

module ConstMap = Map.Make (struct
  type t = const

  let compare = compare_const
end)

module VarSet = Set.Make (String)
module VarMap = Map.Make (String)

(* Fresh null supply. A global counter is the pragmatic choice: chase
   results are compared up to isomorphism, never on null identities. *)
let null_counter = ref 0

let fresh_null () =
  incr null_counter;
  Null !null_counter

(** Reset the null supply (test isolation only). *)
let reset_nulls () = null_counter := 0

(** Nulls invented so far (the checkpoint layer persists this). *)
let null_count () = !null_counter

(** Restore the null supply to a checkpointed position. The caller must
    guarantee that no live instance holds nulls above [n] — true when
    resuming a chase from a checkpoint, whose facts only mention nulls
    invented before the snapshot was taken. *)
let set_null_count n = null_counter := n

let is_null = function Null _ -> true | Named _ -> false
let named s = Named s
let const s = Const (Named s)
let var x = Var x

let pp_const ppf = function
  | Named s -> Fmt.string ppf s
  | Null i -> Fmt.pf ppf "_:n%d" i

let pp ppf = function
  | Const c -> pp_const ppf c
  | Var x -> Fmt.pf ppf "?%s" x
