(** UCQk-approximations.

    Two constructions:

    - {!cqs_approximation}: the contraction-based approximation [S^a_k] for
      CQSs from (FG_m, UCQ) (Proposition 5.11): the UCQ of all contractions
      that lie in CQ_k. Exact characterization for [k ≥ r·m − 1]; since
      [G ⊆ FG], it also serves guarded CQSs (and, through Propositions 5.2
      and 5.5, guarded OMQs with full data schema).
    - {!omq_approximation}: the grounding-based approximation [Q^a_k] of
      Definition C.6 for guarded OMQs — faithful to the appendix but
      exponential; intended for small queries. *)

open Relational

(** [cqs_approximation k s] — [S^a_k = (Σ, q^a_k)] with [q^a_k] the
    contractions of disjuncts of [q] of treewidth ≤ k (Proposition 5.11).
    Returns [None] when no contraction is tree-like enough (then the
    approximation is the empty UCQ, and [S] is certainly not uniformly
    UCQk-equivalent). *)
let cqs_approximation k (s : Cqs.t) =
  let disjuncts =
    List.concat_map
      (fun p -> List.filter (Cq.in_cqk k) (Cq.contractions p))
      (Ucq.disjuncts (Cqs.query s))
    |> List.sort_uniq Cq.compare
  in
  match disjuncts with
  | [] -> None
  | ds -> Some (Cqs.make ~constraints:(Cqs.constraints s) ~query:(Ucq.make ds))

(** Threshold [k ≥ r·m − 1] under which Proposition 5.11 guarantees the
    contraction approximation is exact. *)
let cqs_threshold (s : Cqs.t) =
  let r = Schema.ar (Cqs.schema s) in
  let m = max 1 (Tgds.Tgd.max_head_size (Cqs.constraints s)) in
  (r * m) - 1

(** [omq_approximation ?bounds k q] — [Q^a_k] of Definition C.6: every
    disjunct replaced by the UCQ of all its Σ-groundings of treewidth ≤ k
    over the extended schema. Exponential; see DESIGN.md §5.5 for the
    enumeration caps. Returns [None] when no grounding survives. *)
let omq_approximation ?max_level ?max_side k (q : Omq.t) =
  let schema = Omq.extended_schema q in
  let sigma = Omq.ontology q in
  let disjuncts =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun spec ->
            Specialization.groundings ?max_level ?max_side schema sigma spec)
          (Specialization.all p))
      (Ucq.disjuncts (Omq.query q))
    |> List.filter (Cq.in_cqk k)
    |> List.sort_uniq Cq.compare
  in
  match disjuncts with
  | [] -> None
  | ds ->
      Some
        (Omq.make ~data_schema:(Omq.data_schema q) ~ontology:sigma
           ~query:(Ucq.make ds))
