(** Finite instances and databases (§2): sets of facts with a per-predicate
    index, an active domain, and the operations the paper uses —
    restriction [I|T], union, renaming, Gaifman graphs, guarded sets and
    isolated constants. *)

open Term
module SMap = Map.Make (String)

module TupleSet = Set.Make (struct
  type t = const list

  let compare = Stdlib.compare
end)

type t = { rels : TupleSet.t SMap.t }

let empty = { rels = SMap.empty }

let add_fact (f : Fact.t) i =
  let tuples =
    match SMap.find_opt (Fact.pred f) i.rels with
    | Some s -> s
    | None -> TupleSet.empty
  in
  { rels = SMap.add (Fact.pred f) (TupleSet.add (Fact.args f) tuples) i.rels }

let of_facts fs = List.fold_left (fun i f -> add_fact f i) empty fs
let of_atoms atoms = of_facts (List.map Fact.of_atom atoms)

let mem (f : Fact.t) i =
  match SMap.find_opt (Fact.pred f) i.rels with
  | Some s -> TupleSet.mem (Fact.args f) s
  | None -> false

let facts i =
  SMap.fold
    (fun p tuples acc ->
      TupleSet.fold (fun args acc -> Fact.make p args :: acc) tuples acc)
    i.rels []
  |> List.rev

let fold f i acc =
  SMap.fold
    (fun p tuples acc ->
      TupleSet.fold (fun args acc -> f (Fact.make p args) acc) tuples acc)
    i.rels acc

let iter f i = fold (fun fact () -> f fact) i ()
let for_all p i = fold (fun fact acc -> acc && p fact) i true
let exists p i = fold (fun fact acc -> acc || p fact) i false

(** Tuples of predicate [p]. *)
let tuples_of p i =
  match SMap.find_opt p i.rels with
  | Some s -> TupleSet.elements s
  | None -> []

let predicates i = SMap.bindings i.rels |> List.map fst

(** Number of facts. *)
let size i = SMap.fold (fun _ s acc -> acc + TupleSet.cardinal s) i.rels 0

(** [||I||]: total symbol count (facts weighted by arity + 1). *)
let norm i =
  fold (fun f acc -> acc + 1 + Fact.arity f) i 0

let is_empty i = SMap.for_all (fun _ s -> TupleSet.is_empty s) i.rels

(** Active domain. *)
let dom i =
  fold (fun f acc -> ConstSet.union (Fact.consts f) acc) i ConstSet.empty

let union a b = fold (fun f acc -> add_fact f acc) b a

(** [restrict i set] is [I|T]: the atoms mentioning only constants of
    [set]. *)
let restrict i set = of_facts (List.filter (Fact.within set) (facts i))

let filter p i = of_facts (List.filter p (facts i))

(** [diff a b] removes [b]'s facts from [a]. *)
let diff a b = filter (fun f -> not (mem f b)) a

let subset a b = for_all (fun f -> mem f b) a
let equal a b = subset a b && subset b a

(** [rename f i] maps all constants through [f] (identity on [None]). *)
let rename f i = of_facts (List.map (Fact.rename f) (facts i))

(** [rename_map m i] renames via a constant map (identity off the map). *)
let rename_map m i = rename (fun c -> ConstMap.find_opt c m) i

(** Schema inferred from the facts present. *)
let schema i =
  SMap.fold
    (fun p tuples acc ->
      match TupleSet.choose_opt tuples with
      | Some args -> Schema.add p (List.length args) acc
      | None -> acc)
    i.rels Schema.empty

(* ------------------------------------------------------------------ *)
(* Gaifman graph                                                        *)
(* ------------------------------------------------------------------ *)

(** [gaifman i] is the Gaifman graph of [i] (§2): vertices are indices into
    the returned constant array; two constants are adjacent iff they
    cohabit some atom. Returns [(graph, consts)] with [consts.(v)] the
    constant of vertex [v]. *)
let gaifman i =
  let cs = ConstSet.elements (dom i) in
  let arr = Array.of_list cs in
  let index = Hashtbl.create 16 in
  Array.iteri (fun idx c -> Hashtbl.replace index c idx) arr;
  let g = ref Qgraph.Graph.empty in
  Array.iteri (fun idx _ -> g := Qgraph.Graph.add_vertex !g idx) arr;
  iter
    (fun f ->
      let ids =
        List.sort_uniq Stdlib.compare
          (List.map (fun c -> Hashtbl.find index c) (Fact.args f))
      in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
            List.iter (fun y -> g := Qgraph.Graph.add_edge !g x y) rest;
            pairs rest
      in
      pairs ids)
    i;
  (!g, arr)

(** Treewidth of the instance = treewidth of its Gaifman graph. *)
let treewidth i =
  let g, _ = gaifman i in
  Qgraph.Treewidth.treewidth g

(** [connected i] — whether the Gaifman graph is connected (§6). *)
let connected i =
  let g, _ = gaifman i in
  Qgraph.Graph.is_connected g

(* ------------------------------------------------------------------ *)
(* Guarded sets, isolated constants                                     *)
(* ------------------------------------------------------------------ *)

(** [isolated i c] — [c] occurs in exactly one atom of [i] (§6). *)
let isolated i c =
  let count =
    fold (fun f acc -> if ConstSet.mem c (Fact.consts f) then acc + 1 else acc) i 0
  in
  count = 1

(** [guarded_sets i] — the constant sets of atoms of [i] (every subset of
    such a set is guarded in [i]). *)
let guarded_sets i =
  fold (fun f acc -> Fact.consts f :: acc) i [] |> List.sort_uniq ConstSet.compare

(** [maximal_guarded_sets i] — guarded sets not strictly contained in
    another guarded set (the family [A] of §6.2). *)
let maximal_guarded_sets i =
  let all = guarded_sets i in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (ConstSet.equal s s')) && ConstSet.subset s s')
           all))
    all

let pp ppf i =
  Fmt.pf ppf "@[<v>{%a}@]" Fmt.(list ~sep:(any ", ") Fact.pp) (facts i)
