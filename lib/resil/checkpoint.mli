(** Chase checkpoints: durable serialisation of {!Tgds.Chase.snapshot}.

    The on-disk form is deterministic {!Obs.Json} with a pinned key order
    and a versioned schema header, so checkpoints are golden-testable and
    [save → load → save] is byte-identical:

    {v
    {"schema": "guarded-chase-checkpoint", "version": 1,
     "engine": "indexed" | "naive" | "parallel",
     "policy": "oblivious" | "restricted",
     "level": int, "saturated": bool, "null_count": int,
     "triggers_fired": int, "triggers_dismissed": int,
     "counters": {name: int, …},          (* sorted by name *)
     "facts": [{"p": pred, "l": s-level, "a": [const, …]}, …]}
    v}

    Facts are sorted by (s-level, fact); a constant is a JSON string for
    a named constant and [{"n": id}] for a labelled null. *)

type t = Tgds.Chase.snapshot

val schema : string
val version : int

(** Shared constant/fact codecs: a named constant is a JSON string, a
    labelled null [{"n": id}]; a fact with its s-level is
    [{"p": pred, "l": level, "a": [const, …]}]. The WAL's record and
    image files reuse these, so every durable artifact spells constants
    the same way. *)
val const_to_json : Relational.Term.const -> Obs.Json.t

val const_of_json : Obs.Json.t -> (Relational.Term.const, string) result
val fact_to_json : Relational.Fact.t * int -> Obs.Json.t
val fact_of_json : Obs.Json.t -> (Relational.Fact.t * int, string) result
val to_json : t -> Obs.Json.t

(** [of_json j] — inverse of {!to_json}; [Error] on an unknown schema or
    version, or any malformed field. *)
val of_json : Obs.Json.t -> (t, string) result

(** [save path t] — write the checkpoint (single line + newline),
    atomically via a temporary file next to [path]. *)
val save : string -> t -> unit

(** Why a checkpoint failed to load. [Io] — the file could not be read
    (missing, permissions): an input error, exit code 2 at the CLI.
    [Corrupt] — the file was read but is not a valid checkpoint
    (truncated JSON, bad schema, malformed field): a runtime fault, exit
    code 1. Both carry a one-line diagnostic naming the file. *)
type error = Io of string | Corrupt of string

(** The diagnostic line of an {!error}. *)
val error_message : error -> string

(** [load path] — read and decode; see {!error} for the failure split. *)
val load : string -> (t, error) result
