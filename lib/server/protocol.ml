(** Wire protocol; see the interface for the grammar and reply formats. *)

open Relational

type verb = Answers | Count

type request = { id : int; verb : verb; key : string; query : Ucq.t }

type line =
  | Request of request
  | Empty
  | Malformed of string

let verb_str = function Answers -> "answers" | Count -> "count"

(* one-line rendering for keys and error payloads: the box layout of the
   pretty-printers must not leak newlines into a single-line protocol *)
let oneline s =
  String.concat " "
    (List.filter
       (fun w -> w <> "")
       (String.split_on_char ' '
          (String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s)))

let parse_line ~id raw =
  let s = String.trim raw in
  if s = "" || s.[0] = '%' then Empty
  else
    let verb, rest =
      match String.index_opt s ' ' with
      | None -> (s, "")
      | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    match
      (match verb with
      | "answers" -> Some Answers
      | "count" -> Some Count
      | _ -> None)
    with
    | None -> Malformed (Fmt.str "unknown verb %S (want answers|count)" verb)
    | Some verb -> (
        match Syntax.Parser.parse rest with
        | exception (Syntax.Parser.Error (msg, _, c) | Syntax.Lexer.Error (msg, _, c))
          ->
            Malformed (Fmt.str "column %d: %s" c msg)
        | p ->
            if p.Syntax.Parser.tgds <> [] || p.Syntax.Parser.facts <> [] then
              Malformed "a request may contain only query clauses"
            else (
              match p.Syntax.Parser.queries with
              | [ (_, q) ] ->
                  let key =
                    Fmt.str "%s %s" (verb_str verb)
                      (oneline (Fmt.str "%a" Ucq.pp q))
                  in
                  Request { id; verb; key; query = q }
              | [] -> Malformed "no query clause in request"
              | qs ->
                  Malformed
                    (Fmt.str "one query name per request (got %s)"
                       (String.concat ", " (List.map fst qs)))))

(* rendering avoids Format on the per-tuple path: replies for scan-style
   queries carry hundreds of tuples, and the server's throughput under
   concurrent workers is bounded by allocation (minor-GC barriers are
   global), so tuples go straight into one buffer *)
let add_const buf = function
  | Term.Named s -> Buffer.add_string buf s
  | Term.Null i ->
      Buffer.add_string buf "_:n";
      Buffer.add_string buf (string_of_int i)

let render_ok r ~saturated (res : Engine.Enumerate.interned) =
  let status =
    match Engine.Enumerate.ioutcome res with
    | Obs.Budget.Complete when saturated -> "ok"
    | _ -> "partial"
  in
  let n = Engine.Enumerate.icount res in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int r.id);
  Buffer.add_char buf ' ';
  Buffer.add_string buf status;
  (match r.verb with
  | Count ->
      (* count never touches the rows: no sort, no extern *)
      Buffer.add_string buf " count=";
      Buffer.add_string buf (string_of_int n)
  | Answers ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int n);
      let rows = Engine.Enumerate.sorted_rows res in
      for i = 0 to Array.length rows - 1 do
        let row = rows.(i) in
        Buffer.add_string buf " (";
        for j = 0 to Array.length row - 1 do
          if j > 0 then Buffer.add_char buf ',';
          add_const buf (Engine.Enumerate.iconst res row.(j))
        done;
        Buffer.add_char buf ')'
      done);
  Buffer.contents buf

let render_error ~id msg = Fmt.str "%d error %s" id (oneline msg)
let render_quarantined ~id = Fmt.str "%d quarantined" id
