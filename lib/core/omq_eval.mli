(** Open-world OMQ evaluation (§3.1): the baseline chase engine
    (Proposition 3.1), the FPT pipeline of Proposition 3.3(3), and exact
    atomic answering via the ground closure.

    [?budget] bounds the underlying chase (graceful cutoff; the verdict is
    then inexact). [?obs] collects phase spans: [rewrite] (linearization),
    [chase] (with its per-level children), [match]. *)

open Relational

type verdict = {
  holds : bool;  (** the tuple is a certain answer (as far as the run saw) *)
  exact : bool;  (** the verdict is known exact (saturation reached) *)
}

(** Baseline: level-bounded chase then evaluate. [holds = true] is always
    sound; the verdict is definitive when [exact]. Raises
    [Invalid_argument] when [db] is not over the data schema. *)
val certain :
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list ->
  verdict

(** The FPT pipeline (guarded ontologies): linearize, chase the linear
    set level-bounded, evaluate tree-like UCQs with {!Tw_eval}. *)
val certain_fpt :
  ?max_level:int ->
  ?max_facts:int ->
  ?max_types:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list ->
  verdict

(** Exact atomic certain answering under a guarded ontology (always
    terminating). *)
val certain_atomic : Tgds.Tgd.t list -> Instance.t -> Fact.t -> bool

(** Certain answers over active-domain tuples; the boolean reports
    exactness. *)
val answers :
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Omq.t ->
  Instance.t ->
  Term.const list list * bool
