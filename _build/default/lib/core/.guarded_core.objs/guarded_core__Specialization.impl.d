lib/core/specialization.ml: Atom Cq Homomorphism List Printf Relational Schema Stdlib Term Tgds VarMap VarSet
