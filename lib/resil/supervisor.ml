(** Retrying supervisor; see the interface for the state machine. *)

type attempt = {
  attempt : int;
  engine : Tgds.Chase.engine;
  fault : string;
  resumed_from : int option;
  backoff_ms : float;
}

type attempt_log = attempt list
type diagnostic = { message : string; attempts : attempt_log }

type outcome =
  | Completed of Tgds.Chase.result
  | Recovered of Tgds.Chase.result * attempt_log
  | Degraded of Tgds.Chase.result * attempt_log
  | Failed of diagnostic

exception Fatal of string

let run ?(engine = `Indexed) ?(policy = Tgds.Chase.Oblivious) ?budget
    ?(checkpoint_every = 1) ?checkpoint_path ?resume_from ?(retries = 2)
    ?(backoff_ms = 50.) ?(max_backoff_ms = 1000.) ?(sleep = Unix.sleepf)
    ?clock ?(fault_plan = Fault.none) ?obs sigma db =
  (* Restart-from-scratch resets the null supply to where this run found
     it, so every attempt invents the same null ids an uninterrupted run
     would (resume does the same from its snapshot). *)
  let null0 = Relational.Term.null_count () in
  let last_ck : Checkpoint.t option ref = ref resume_from in
  let log = ref [] in
  let total_attempts = ref 0 in
  let ck_every = max 1 checkpoint_every in
  let on_pass ~level ~saturated take =
    if saturated || level mod ck_every = 0 then begin
      let s = take () in
      last_ck := Some s;
      Option.iter (fun p -> Checkpoint.save p s) checkpoint_path
    end
  in
  (* Up to [retries + 1] attempts on [eng]; [None] when all failed. *)
  let run_engine eng =
    let rec go k =
      let started_from =
        Option.map (fun s -> s.Tgds.Chase.snap_level) !last_ck
      in
      incr total_attempts;
      let trig = Fault.trigger_for fault_plan ~attempt:!total_attempts in
      match
        Fault.with_trigger ?clock trig (fun () ->
            match !last_ck with
            | Some s ->
                Tgds.Chase.resume ~engine:eng ?budget ?obs ~on_pass sigma s
            | None ->
                Relational.Term.set_null_count null0;
                Tgds.Chase.run ~engine:eng ~policy ?budget ?obs ~on_pass sigma
                  db)
      with
      | r -> Some r
      | exception Invalid_argument msg ->
          (* a violated precondition is deterministic — retrying or
             degrading cannot change the verdict, so fail fast *)
          raise (Fatal (Printf.sprintf "precondition violated: %s" msg))
      | exception e ->
          let fault =
            match e with
            | Fault.Injected (point, hit) ->
                Printf.sprintf "injected fault at %s (hit %d)" point hit
            | e -> Printexc.to_string e
          in
          let retry = k <= retries in
          let backoff =
            if retry then
              Float.min max_backoff_ms (backoff_ms *. (2. ** float_of_int (k - 1)))
            else 0.
          in
          log :=
            {
              attempt = !total_attempts;
              engine = eng;
              fault;
              resumed_from = started_from;
              backoff_ms = backoff;
            }
            :: !log;
          if retry then begin
            if backoff > 0. then sleep (backoff /. 1000.);
            go (k + 1)
          end
          else None
    in
    go 1
  in
  let attempts () = List.rev !log in
  match
    (* degradation ladder: Parallel → Indexed → Naive *)
    let degrade = function
      | `Parallel _ -> Some `Indexed
      | `Indexed -> Some `Naive
      | `Naive -> None
    in
    let rec attempt eng =
      match run_engine eng with
      | Some r -> Some (r, eng)
      | None -> Option.bind (degrade eng) attempt
    in
    attempt engine
  with
  | Some (r, eng) ->
      if !log = [] then Completed r
      else if eng = engine then Recovered (r, attempts ())
      else Degraded (r, attempts ())
  | None ->
      Failed
        {
          message =
            Printf.sprintf "all %d attempts exhausted" !total_attempts;
          attempts = attempts ();
        }
  | exception Fatal message -> Failed { message; attempts = attempts () }
  | exception e ->
      (* the supervisor's contract: no escaped exceptions *)
      Failed { message = Printexc.to_string e; attempts = attempts () }
