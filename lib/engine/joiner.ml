(** Index-aware backtracking homomorphism search; see the interface for
    the contract. Atom selection is cheapest-first by posting-list size,
    so selection costs O(arity) per pending atom instead of a candidate
    scan. *)

open Relational
open Relational.Term

type binding = Homomorphism.binding

let fold ?(probe = true) ?(injective = false) ?(init = VarMap.empty) ?delta
    atoms idx f acc =
  if probe then Obs.Probe.hit "engine.join";
  let m = Index.metrics idx in
  let c_candidates = Obs.Metrics.counter m "joiner.candidates" in
  let c_backtracks = Obs.Metrics.counter m "joiner.backtracks" in
  (* match the remaining atoms, cheapest first *)
  let rec search b pending acc =
    match pending with
    | [] -> f b acc
    | _ ->
        let best_i, best_a, _ =
          List.fold_left
            (fun (bi, ba, bc) (i, a) ->
              let c = Index.candidate_count idx a b in
              if c < bc then (i, a, c) else (bi, ba, bc))
            (-1, List.hd pending, max_int)
            (List.mapi (fun i a -> (i, a)) pending)
        in
        let rest = List.filteri (fun i _ -> i <> best_i) pending in
        (* interned candidate walk: same posting list, order and
           counter accounting as matching decoded tuples, minus the
           tuple materialization *)
        Index.fold_matches idx best_a b ~injective
          ~on_candidate:(fun () -> Obs.Metrics.incr c_candidates)
          ~on_fail:(fun () -> Obs.Metrics.incr c_backtracks)
          (fun b' acc -> search b' rest acc)
          acc
  in
  match (delta, atoms) with
  | None, _ | _, [] -> search init atoms acc
  | Some dfacts, pivot :: rest ->
      let p = Atom.pred pivot in
      List.fold_left
        (fun acc df ->
          if Fact.pred df <> p then acc
          else begin
            Obs.Metrics.incr c_candidates;
            match Homomorphism.match_atom ~injective init pivot (Fact.args df) with
            | Some b -> search b rest acc
            | None ->
                Obs.Metrics.incr c_backtracks;
                acc
          end)
        acc dfacts

(* Compiled satisfiability: [exists ~probe:false ~init:benv] over a
   pre-compiled atom array, for the enumerator's per-answer witness
   checks. Node-for-node identical to [fold]+[Found] — same cheapest
   -first selection (first strictly-smaller wins), same pending order
   (in-place rotation keeps the unselected suffix in original relative
   order, as List.filteri did), same joiner.candidates/backtracks and
   index.probes accounting, same early exit on the first full match —
   but bindings live in [benv] and the recursion allocates nothing per
   node beyond one closure per call. The segment walked is
   [atoms.(lo..n)); both the rotation and the bindings are undone before
   returning. Counters resolve per call, exactly where [fold] resolves
   them, so a run registers [joiner.*] iff it performs a witness check. *)
let exists_compiled idx (atoms : Index.catom array) ~benv lo n =
  let m = Index.metrics idx in
  let c_candidates = Obs.Metrics.counter m "joiner.candidates" in
  let c_backtracks = Obs.Metrics.counter m "joiner.backtracks" in
  let on_candidate () = Obs.Metrics.incr c_candidates in
  let on_fail () = Obs.Metrics.incr c_backtracks in
  let rec sat lo =
    lo >= n
    ||
    let bi = ref lo and bc = ref max_int in
    for i = lo to n - 1 do
      let c = Index.catom_count idx atoms.(i) ~benv in
      if c < !bc then begin
        bi := i;
        bc := c
      end
    done;
    let sel = atoms.(!bi) in
    for j = !bi downto lo + 1 do
      atoms.(j) <- atoms.(j - 1)
    done;
    atoms.(lo) <- sel;
    let hit =
      Index.fold_catom idx sel ~benv ~on_candidate ~on_fail
        (fun lo -> sat lo)
        (lo + 1)
    in
    for j = lo to !bi - 1 do
      atoms.(j) <- atoms.(j + 1)
    done;
    atoms.(!bi) <- sel;
    hit
  in
  sat lo

exception Found of binding

let find ?probe ?injective ?init ?delta atoms idx =
  try
    fold ?probe ?injective ?init ?delta atoms idx (fun b _ -> raise (Found b)) ();
    None
  with Found b -> Some b

let exists ?probe ?injective ?init ?delta atoms idx =
  Option.is_some (find ?probe ?injective ?init ?delta atoms idx)

let all ?injective ?init ?delta atoms idx =
  List.rev (fold ?injective ?init ?delta atoms idx (fun b acc -> b :: acc) [])

(* ------------------------------------------------------------------ *)
(* Query evaluation over an index                                       *)
(* ------------------------------------------------------------------ *)

let entails_cq idx q tuple =
  List.length tuple = Cq.arity q
  &&
  let init =
    List.fold_left2
      (fun acc x c -> VarMap.add x c acc)
      VarMap.empty (Cq.answer q) tuple
  in
  exists ~init (Cq.atoms q) idx

let holds_cq idx q = exists (Cq.atoms q) idx

let answers_cq idx q =
  fold (Cq.atoms q) idx
    (fun b acc -> List.map (fun x -> VarMap.find x b) (Cq.answer q) :: acc)
    []
  |> List.sort_uniq Stdlib.compare

let entails_ucq idx u tuple =
  List.exists (fun q -> entails_cq idx q tuple) (Ucq.disjuncts u)

let holds_ucq idx u = List.exists (holds_cq idx) (Ucq.disjuncts u)

let answers_ucq idx u =
  List.concat_map (answers_cq idx) (Ucq.disjuncts u)
  |> List.sort_uniq Stdlib.compare
