
emp(X) -> reports(X,M).
reports(X,M) -> emp(M).
emp(eve).
q() :- reports(X,M), emp(M).
