s(a,b).
s(X,Y) -> s(Y,Z).
