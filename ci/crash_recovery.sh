#!/bin/sh
# Crash-recovery harness for the WAL-backed `serve` runtime: a maintained
# store killed with SIGKILL at an arbitrary point — mid-mutation,
# mid-append, mid-fsync, mid-rotation — and restarted with `--recover`
# must converge to the *byte-identical* final checkpoint and fact listing
# of a run that was never interrupted. The loop below kills the server 25
# times at varying points of a churn log, recovering each time; a torn
# final record (simulated twice: once with an injected fsync fault, once
# by dd-truncating the newest segment of a completed run) must be
# truncated and replayed from the mutation log, never reported as
# corruption.
#
# Run from the repository root:  sh ci/crash_recovery.sh
# Environment:
#   CRASH_RECOVERY_KILLS=N   number of SIGKILL iterations (default 25)
set -eu

cd "$(dirname "$0")/.."

CLI=_build/default/bin/guarded_cli.exe
[ -x "$CLI" ] || { echo "crash_recovery: build first (dune build)"; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

PROG=examples/programs/university.gd
LOG=$TMP/churn.mut
KILLS=${CRASH_RECOVERY_KILLS:-25}

# A churn log over the university schema: a cohort of professors and
# course assignments arrives, a third of the professors leave again (their
# derived subtrees must be retracted), some deletions are no-ops. 1114
# mutations — enough that a fsync-per-record run takes most of a second,
# so the kill window below lands mid-run — and deliberately not a
# multiple of the rotation interval, so the final segment always holds a
# tail to tear.
awk 'BEGIN {
  for (i = 0; i < 400; i++) {
    printf "+prof(p%d).\n", i
    printf "+teaches(p%d,c%d).\n", i, i % 7
    if (i % 3 == 0) printf "-prof(p%d).\n", i
    if (i % 4 == 0) printf "-teaches(p%d,c%d).\n", i, i % 7
    if (i % 5 == 0) printf "-prof(ghost%d).\n", i
  }
}' > "$LOG"

serve() {
  # serve <out> <args...> — exit code on stdout, never aborts the script
  out=$1
  shift
  set +e
  "$CLI" serve "$PROG" --log "$LOG" "$@" > "$out" 2> "$out.err"
  code=$?
  set -e
  echo "$code"
}

facts() { grep -v '^%' "$1" > "$2"; }

# ---- the uninterrupted reference ----------------------------------------

code=$(serve "$TMP/ref.out" --checkpoint "$TMP/ref.ck")
[ "$code" = 0 ] || { echo "crash_recovery: reference run failed ($code)"; exit 1; }
facts "$TMP/ref.out" "$TMP/ref.facts"

# ---- kill loop -----------------------------------------------------------

# Kill the server at a pseudo-random point (seeded by the iteration, so
# reruns of the harness explore the same schedule) and recover. Iteration
# one starts from an empty WAL; every later one replays whatever the
# previous kill left behind. Runs that finish before the kill lands are
# fine — recovery of a complete WAL is a no-op replay.
rm -rf "$TMP/wal"
i=0
completed=0
while [ "$i" -lt "$KILLS" ]; do
  i=$((i + 1))
  delay=$(awk -v s="$i" 'BEGIN { srand(s); printf "%.3f", 0.005 + rand() * 0.08 }')
  set +e
  {
    "$CLI" serve "$PROG" --log "$LOG" --wal "$TMP/wal" --recover \
      --checkpoint-every 10 --checkpoint "$TMP/kill.ck" \
      > "$TMP/kill.out" 2> "$TMP/kill.err" &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null
    wait "$pid"
    code=$?
  } 2> /dev/null # the group redirect swallows the shell's "Killed" notice
  set -e
  [ "$code" = 0 ] && completed=$((completed + 1))
done
echo "crash_recovery: $KILLS kills delivered ($completed run(s) finished early)"

# The final recovery must complete and agree with the reference on every
# observable: checkpoint bytes and the fact listing.
code=$(serve "$TMP/final.out" --wal "$TMP/wal" --recover \
  --checkpoint-every 10 --checkpoint "$TMP/final.ck")
[ "$code" = 0 ] || {
  echo "crash_recovery: final recovery failed ($code)"
  cat "$TMP/final.out.err"
  exit 1
}
facts "$TMP/final.out" "$TMP/final.facts"
cmp -s "$TMP/ref.ck" "$TMP/final.ck" || {
  echo "crash_recovery: recovered checkpoint diverges from uninterrupted run"
  exit 1
}
cmp -s "$TMP/ref.facts" "$TMP/final.facts" || {
  echo "crash_recovery: recovered fact listing diverges from uninterrupted run"
  diff "$TMP/ref.facts" "$TMP/final.facts" | head
  exit 1
}
echo "crash_recovery: kill loop converged (checkpoint and facts byte-identical)"

# ---- injected torn write -------------------------------------------------

# Crash exactly inside the two-phase append — the record body is flushed
# but the newline/fsync never happens. Recovery must truncate exactly one
# record and land on the reference bytes.
rm -rf "$TMP/wal2"
code=$(serve "$TMP/torn.out" --wal "$TMP/wal2" --checkpoint-every 10 \
  --fault-plan point:wal.fsync:3)
[ "$code" = 1 ] || { echo "crash_recovery: injected crash expected exit 1, got $code"; exit 1; }
code=$(serve "$TMP/torn.rec.out" --wal "$TMP/wal2" --recover \
  --checkpoint-every 10 --checkpoint "$TMP/torn.ck")
[ "$code" = 0 ] || { echo "crash_recovery: torn-write recovery failed ($code)"; exit 1; }
grep -q "1 truncated" "$TMP/torn.rec.out" || {
  echo "crash_recovery: torn record not reported as truncated"
  grep "recover:" "$TMP/torn.rec.out" || true
  exit 1
}
facts "$TMP/torn.rec.out" "$TMP/torn.facts"
cmp -s "$TMP/ref.ck" "$TMP/torn.ck" || {
  echo "crash_recovery: torn-write recovery checkpoint diverges"
  exit 1
}
cmp -s "$TMP/ref.facts" "$TMP/torn.facts" || {
  echo "crash_recovery: torn-write recovery fact listing diverges"
  exit 1
}
echo "crash_recovery: injected torn write truncated and replayed"

# ---- dd-truncated tail ---------------------------------------------------

# Tear the newest segment of a *completed* WAL mid-record with dd: the
# torn mutation is truncated from the WAL, then re-applied from the
# mutation log during the recovered run — same final bytes.
rm -rf "$TMP/wal3"
code=$(serve "$TMP/full.out" --wal "$TMP/wal3" --checkpoint-every 10 \
  --checkpoint "$TMP/full.ck")
[ "$code" = 0 ] || { echo "crash_recovery: clean WAL run failed ($code)"; exit 1; }
seg=$(ls "$TMP/wal3"/wal-*.log | sort -t- -k2 -n | tail -1)
size=$(wc -c < "$seg")
[ "$size" -gt 16 ] || { echo "crash_recovery: final segment unexpectedly small"; exit 1; }
dd if="$seg" of="$seg.cut" bs=1 count=$((size - 9)) 2>/dev/null
mv "$seg.cut" "$seg"
code=$(serve "$TMP/dd.rec.out" --wal "$TMP/wal3" --recover \
  --checkpoint-every 10 --checkpoint "$TMP/dd.ck")
[ "$code" = 0 ] || { echo "crash_recovery: dd-torn recovery failed ($code)"; exit 1; }
grep -q "1 truncated" "$TMP/dd.rec.out" || {
  echo "crash_recovery: dd-torn record not reported as truncated"
  exit 1
}
facts "$TMP/dd.rec.out" "$TMP/dd.facts"
cmp -s "$TMP/ref.ck" "$TMP/dd.ck" || {
  echo "crash_recovery: dd-torn recovery checkpoint diverges"
  exit 1
}
cmp -s "$TMP/ref.facts" "$TMP/dd.facts" || {
  echo "crash_recovery: dd-torn recovery fact listing diverges"
  exit 1
}
echo "crash_recovery: dd-truncated tail truncated and replayed"

echo "crash_recovery: OK"
