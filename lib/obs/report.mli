(** Run reports: outcome + headline fields + metrics + span tree, with a
    deterministic JSON rendering.

    Field order is fixed ([name], [outcome], then fields in insertion
    order, then [counters]/[histograms] sorted by name, then [span]), so
    reports are stable across runs modulo timing floats — normalise those
    with {!Json.map_floats} before golden comparison. *)

type t

(** [create ?metrics ?span name] — a report owning fresh metrics/span
    unless given existing ones. *)
val create : ?metrics:Metrics.t -> ?span:Span.t -> string -> t

val metrics : t -> Metrics.t
val span : t -> Span.t
val set_outcome : t -> Budget.outcome -> unit
val outcome : t -> Budget.outcome

(** [add_field r key v] — append (or overwrite) a headline field. *)
val add_field : t -> string -> Json.t -> unit

(** [add_rate_block r ~prefix ~histogram ~wall_s] — the throughput stats
    block of a request-serving run: from the named latency histogram of
    [r]'s metrics, add ["<prefix>.qps"] (observations per wall-clock
    second) plus ["<prefix>.p50_ms"]/["<prefix>.p99_ms"] (bucket-estimated
    latency quantiles, {!Metrics.quantile}); the quantile fields are
    omitted when the histogram is missing or empty. *)
val add_rate_block : t -> prefix:string -> histogram:string -> wall_s:float -> unit

val to_json : t -> Json.t

(** Serialise to a file (trailing newline). *)
val write : string -> t -> unit
