lib/core/cqs.ml: Fmt List Omq Relational Schema Tgds Ucq
