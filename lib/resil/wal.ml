(** Write-ahead mutation log; see the interface for the format and the
    durability contract. *)

open Relational
module J = Obs.Json

type record = Op of int * Incr.op | Quarantine of int

type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable oc : out_channel;
  mutable seg : string;  (* path of the open segment *)
}

(* ---- file naming ------------------------------------------------------ *)

let image_name seq = Printf.sprintf "image-%d.json" seq
let segment_name seq = Printf.sprintf "wal-%d.log" seq
let ( / ) = Filename.concat

(* [parse_name ~prefix ~suffix name] — the sequence number of a WAL file
   name, [None] for anything else (including [.tmp] leftovers). *)
let parse_name ~prefix ~suffix name =
  let lp = String.length prefix and ls = String.length suffix in
  let l = String.length name in
  if l > lp + ls && String.sub name 0 lp = prefix && String.sub name (l - ls) ls = suffix
  then int_of_string_opt (String.sub name lp (l - lp - ls))
  else None

let scan dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let images = ref [] and segs = ref [] in
  Array.iter
    (fun name ->
      (match parse_name ~prefix:"image-" ~suffix:".json" name with
      | Some seq -> images := seq :: !images
      | None -> ());
      match parse_name ~prefix:"wal-" ~suffix:".log" name with
      | Some seq -> segs := seq :: !segs
      | None -> ())
    entries;
  ( List.sort (fun a b -> compare (b : int) a) !images (* newest first *),
    List.sort compare !segs (* oldest first *) )

let is_empty ~dir = fst (scan dir) = []

(* ---- record codec ----------------------------------------------------- *)

let bare_fact_to_json f =
  J.Obj
    [
      ("p", J.String (Fact.pred f));
      ("a", J.List (List.map Checkpoint.const_to_json (Fact.args f)));
    ]

let bare_fact_of_json j =
  match (J.member "p" j, J.member "a" j) with
  | Some (J.String p), Some (J.List args) ->
      let rec decode acc = function
        | [] -> Ok (Fact.make p (List.rev acc))
        | a :: rest -> (
            match Checkpoint.const_of_json a with
            | Ok c -> decode (c :: acc) rest
            | Error _ as e -> e)
      in
      decode [] args
  | _ -> Error (Printf.sprintf "wal: bad fact %s" (J.to_string j))

let record_to_json = function
  | Op (seq, op) ->
      let k, f =
        match op with Incr.Insert f -> ("+", f) | Incr.Delete f -> ("-", f)
      in
      J.Obj
        [
          ("s", J.Int seq);
          ("k", J.String k);
          ("p", J.String (Fact.pred f));
          ("a", J.List (List.map Checkpoint.const_to_json (Fact.args f)));
        ]
  | Quarantine seq -> J.Obj [ ("s", J.Int seq); ("k", J.String "q") ]

let record_of_json j =
  match (J.member "s" j, J.member "k" j) with
  | Some (J.Int seq), Some (J.String "q") -> Ok (Quarantine seq)
  | Some (J.Int seq), Some (J.String (("+" | "-") as k)) ->
      Result.map
        (fun f ->
          Op (seq, if k = "+" then Incr.Insert f else Incr.Delete f))
        (bare_fact_of_json j)
  | _ -> Error (Printf.sprintf "wal: bad record %s" (J.to_string j))

(* ---- image codec ------------------------------------------------------ *)

let image_schema = "guarded-serve-image"
let image_version = 2

let key_to_json (rule, cs) =
  J.Obj
    [
      ("r", J.Int rule);
      ( "k",
        J.List
          (List.map
             (function None -> J.Null | Some c -> Checkpoint.const_to_json c)
             cs) );
    ]

let key_of_json j =
  match (J.member "r" j, J.member "k" j) with
  | Some (J.Int rule), Some (J.List cs) ->
      let rec decode acc = function
        | [] -> Ok (rule, List.rev acc)
        | J.Null :: rest -> decode (None :: acc) rest
        | c :: rest -> (
            match Checkpoint.const_of_json c with
            | Ok c -> decode (Some c :: acc) rest
            | Error _ as e -> e)
      in
      decode [] cs
  | _ -> Error (Printf.sprintf "wal: bad trigger key %s" (J.to_string j))

let image_to_json ~seq (im : Incr.image) =
  J.Obj
    [
      ("schema", J.String image_schema);
      ("version", J.Int image_version);
      ("seq", J.Int seq);
      ("level", J.Int im.Incr.im_level);
      ("null_count", J.Int im.Incr.im_null_count);
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) im.Incr.im_counters) );
      ("base", J.List (List.map bare_fact_to_json im.Incr.im_base));
      (* interning order is load-bearing — never sort these lists *)
      ("syms", J.List (List.map Checkpoint.const_to_json im.Incr.im_syms));
      ("preds", J.List (List.map (fun p -> J.String p) im.Incr.im_preds));
      (* storage order is load-bearing — never sort this list *)
      ("facts", J.List (List.map Checkpoint.fact_to_json im.Incr.im_facts));
      ( "ledger",
        J.List
          (List.map
             (fun (key, body, outs) ->
               match key_to_json key with
               | J.Obj kvs ->
                   J.Obj
                     (kvs
                     @ [
                         ("b", J.List (List.map bare_fact_to_json body));
                         ("o", J.List (List.map bare_fact_to_json outs));
                       ])
               | _ -> assert false)
             im.Incr.im_ledger) );
    ]

let ( let* ) = Result.bind

let field name extract j =
  match Option.map extract (J.member name j) with
  | Some (Some v) -> Ok v
  | _ -> Error (Printf.sprintf "wal: missing or bad image field %S" name)

let int_f = function J.Int i -> Some i | _ -> None
let str_f = function J.String s -> Some s | _ -> None

let list_field name decode j =
  match J.member name j with
  | Some (J.List es) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match decode e with
            | Ok v -> go (v :: acc) rest
            | Error _ as err -> err)
      in
      go [] es
  | _ -> Error (Printf.sprintf "wal: missing or bad image field %S" name)

let image_of_json j =
  let* sch = field "schema" str_f j in
  let* () =
    if sch = image_schema then Ok ()
    else Error (Printf.sprintf "wal: unknown image schema %S" sch)
  in
  let* ver = field "version" int_f j in
  let* () =
    if ver = image_version then Ok ()
    else Error (Printf.sprintf "wal: unsupported image version %d" ver)
  in
  let* seq = field "seq" int_f j in
  let* level = field "level" int_f j in
  let* null_count = field "null_count" int_f j in
  let* counters =
    match J.member "counters" j with
    | Some (J.Obj kvs) ->
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | (k, J.Int v) :: rest -> decode ((k, v) :: acc) rest
          | (k, _) :: _ -> Error (Printf.sprintf "wal: bad counter %S" k)
        in
        decode [] kvs
    | _ -> Error "wal: missing or bad image field \"counters\""
  in
  let* base = list_field "base" bare_fact_of_json j in
  let* syms = list_field "syms" Checkpoint.const_of_json j in
  let* preds =
    list_field "preds"
      (function
        | J.String p -> Ok p
        | e -> Error (Printf.sprintf "wal: bad predicate %s" (J.to_string e)))
      j
  in
  let* facts = list_field "facts" Checkpoint.fact_of_json j in
  let* ledger =
    list_field "ledger"
      (fun e ->
        let* key = key_of_json e in
        let* body = list_field "b" bare_fact_of_json e in
        let* outs = list_field "o" bare_fact_of_json e in
        Ok (key, body, outs))
      j
  in
  Ok
    ( seq,
      {
        Incr.im_facts = facts;
        im_base = base;
        im_ledger = ledger;
        im_syms = syms;
        im_preds = preds;
        im_level = level;
        im_null_count = null_count;
        im_counters = counters;
      } )

(* ---- writing ---------------------------------------------------------- *)

let write_image path ~seq image =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      J.to_channel oc (image_to_json ~seq image);
      flush oc;
      Unix.fsync fd);
  Sys.rename tmp path

let open_segment path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  (fd, Unix.out_channel_of_descr fd)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir image =
  mkdir_p dir;
  (match scan dir with
  | [], [] -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf
           "wal: %s already holds a WAL — pass --recover to resume it, or \
            point --wal at a fresh directory"
           dir));
  write_image (dir / image_name 0) ~seq:0 image;
  let seg = dir / segment_name 0 in
  let fd, oc = open_segment seg in
  { dir; fd; oc; seg }

let reopen ~dir =
  let images, segs = scan dir in
  match images with
  | [] -> invalid_arg (Printf.sprintf "wal: %s holds no image" dir)
  | newest_image :: _ ->
      let base =
        match List.rev segs with seq :: _ -> seq | [] -> newest_image
      in
      let seg = dir / segment_name base in
      let fd, oc = open_segment seg in
      { dir; fd; oc; seg }

let append t record =
  (* crash window 1: nothing written yet — the mutation simply never
     reached the log *)
  Obs.Probe.hit "wal.append";
  let payload = J.to_string (record_to_json record) in
  let line = Crc32.to_hex (Crc32.string payload) ^ " " ^ payload in
  output_string t.oc line;
  flush t.oc;
  (* crash window 2: the body is on disk without its newline — a torn
     record, truncated by recovery *)
  Obs.Probe.hit "wal.fsync";
  output_char t.oc '\n';
  flush t.oc;
  Unix.fsync t.fd

let rotate t ~seq image =
  write_image (t.dir / image_name seq) ~seq image;
  close_out_noerr t.oc;
  let seg = t.dir / segment_name seq in
  let fd, oc = open_segment seg in
  t.fd <- fd;
  t.oc <- oc;
  t.seg <- seg;
  let images, segs = scan t.dir in
  List.iter
    (fun s -> if s < seq then Sys.remove (t.dir / image_name s))
    images;
  List.iter (fun s -> if s < seq then Sys.remove (t.dir / segment_name s)) segs

let close t = close_out_noerr t.oc

(* ---- recovery --------------------------------------------------------- *)

type recovery = {
  rec_image : Incr.image;
  rec_image_seq : int;
  rec_ops : (int * Incr.op) list;
  rec_quarantined : int list;
  rec_last_seq : int;
  rec_truncated : int;
  rec_skipped_images : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_image path =
  match read_file path with
  | exception Sys_error msg -> Error (Printf.sprintf "wal: %s" msg)
  | contents -> Result.bind (J.parse contents) image_of_json

let decode_line line =
  match String.index_opt line ' ' with
  | None -> Error "wal: record without checksum"
  | Some sp -> (
      let crc = String.sub line 0 sp in
      let payload = String.sub line (sp + 1) (String.length line - sp - 1) in
      match Crc32.of_hex crc with
      | None -> Error "wal: malformed checksum"
      | Some crc ->
          if crc <> Crc32.string payload then Error "wal: checksum mismatch"
          else Result.bind (J.parse payload) record_of_json)

(* Read one segment. Only the final line of the final segment may be
   torn (missing newline or failing its checksum): it is physically
   truncated away and counted. Anything else malformed is corruption. *)
let read_segment ~last path =
  let contents = read_file path in
  let n = String.length contents in
  let records = ref [] and truncated = ref 0 in
  let err = ref None in
  let pos = ref 0 and lineno = ref 0 in
  while !err = None && !pos < n do
    incr lineno;
    let nl = String.index_from_opt contents !pos '\n' in
    let start = !pos in
    let line, complete =
      match nl with
      | Some e ->
          pos := e + 1;
          (String.sub contents start (e - start), true)
      | None ->
          pos := n;
          (String.sub contents start (n - start), false)
    in
    if line <> "" || complete then
      match decode_line line with
      | Ok r when complete -> records := r :: !records
      | Ok _ | Error _ ->
          if last && !pos >= n then begin
            (* torn tail: drop it from the file so appends resume on a
               clean boundary *)
            (try Unix.truncate path start with Unix.Unix_error _ -> ());
            incr truncated
          end
          else
            err :=
              Some
                (Printf.sprintf "wal: corrupt record at %s:%d" path !lineno)
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok (List.rev !records, !truncated)

let recover ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "wal: no such directory %s" dir)
  else
    let images, segs = scan dir in
    (* newest image that decodes; corrupt newer ones are fallen past *)
    let rec pick skipped = function
      | [] -> Error "wal: no image decodes"
      | seq :: rest -> (
          match load_image (dir / image_name seq) with
          | Ok (_, im) -> Ok (seq, im, skipped)
          | Error msg -> if rest = [] then Error msg else pick (skipped + 1) rest)
    in
    match pick 0 images with
    | Error _ as e -> e
    | Ok (image_seq, image, skipped) -> (
        let rec read_all acc truncated = function
          | [] -> Ok (List.concat (List.rev acc), truncated)
          | seg :: rest -> (
              match
                read_segment ~last:(rest = []) (dir / segment_name seg)
              with
              | Ok (records, t) -> read_all (records :: acc) (truncated + t) rest
              | Error _ as e -> e)
        in
        match read_all [] 0 segs with
        | Error _ as e -> e
        | Ok (records, truncated) ->
            let quarantined =
              List.filter_map
                (function Quarantine s -> Some s | Op _ -> None)
                records
            in
            let last_seq =
              List.fold_left
                (fun acc r ->
                  max acc (match r with Op (s, _) | Quarantine s -> s))
                image_seq records
            in
            let ops =
              List.sort
                (fun (a, _) (b, _) -> compare (a : int) b)
                (List.filter_map
                   (function
                     | Op (s, op)
                       when s > image_seq && not (List.mem s quarantined) ->
                         Some (s, op)
                     | _ -> None)
                   records)
            in
            Ok
              {
                rec_image = image;
                rec_image_seq = image_seq;
                rec_ops = ops;
                rec_quarantined = List.sort compare quarantined;
                rec_last_seq = last_seq;
                rec_truncated = truncated;
                rec_skipped_images = skipped;
              })
