examples/university.mli:
