(* Shared qcheck generators for the property-test suites: random guarded
   TGD programs over the schema {A/1, B/1, S/2, T/2}, random small
   instances, and random (U)CQs. Extracted from test_engine/test_tgds so
   every suite draws from the same distributions. *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

(* ------------------------------------------------------------------ *)
(* Guarded TGD pools                                                    *)
(* ------------------------------------------------------------------ *)

let tgd_pool =
  [|
    (* linear, existential *)
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    (* linear, frontier only *)
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
    (* guarded join *)
    tgd [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    (* existential chain *)
    tgd [ atom "B" [ v "x" ] ] [ atom "T" [ v "x"; v "z" ] ];
    (* reflexive guard *)
    tgd [ atom "S" [ v "x"; v "x" ] ] [ atom "B" [ v "x" ] ];
    (* two-atom guarded body across predicates *)
    tgd [ atom "T" [ v "x"; v "y" ]; atom "B" [ v "x" ] ] [ atom "S" [ v "y"; v "x" ] ];
    (* multi-atom head *)
    tgd [ atom "T" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ]; atom "B" [ v "y" ] ];
  |]

(* The existential-free members of [tgd_pool]: their oblivious chase
   always terminates, and re-saturating its result is a strict no-op. *)
let full_pool = Array.of_list (List.filter Tgd.is_full (Array.to_list tgd_pool))

let gen_from_pool pool =
  QCheck.Gen.(
    map
      (List.map (Array.get pool))
      (list_size (int_range 1 4) (int_range 0 (Array.length pool - 1))))

let gen_sigma = gen_from_pool tgd_pool
let gen_full_sigma = gen_from_pool full_pool

(* ------------------------------------------------------------------ *)
(* Instances                                                            *)
(* ------------------------------------------------------------------ *)

let gen_db =
  QCheck.Gen.(
    let gc = map (List.nth [ "a"; "b"; "c" ]) (int_range 0 2) in
    let gen_fact =
      let* p = int_range 0 3 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc in
          return (fact "B" [ a ])
      | 2 ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "T" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 5) gen_fact))

let print_sigma_db (s, db) =
  Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db

let arb_sigma_db =
  QCheck.make ~print:print_sigma_db QCheck.Gen.(pair gen_sigma gen_db)

let arb_full_sigma_db =
  QCheck.make ~print:print_sigma_db QCheck.Gen.(pair gen_full_sigma gen_db)

(* ------------------------------------------------------------------ *)
(* Resilience: checkpoints and fault plans                              *)
(* ------------------------------------------------------------------ *)

let engine_to_string : Tgds.Chase.engine -> string = function
  | `Indexed -> "indexed"
  | `Naive -> "naive"
  | `Parallel n -> Printf.sprintf "parallel:%d" n

let gen_engine : Tgds.Chase.engine QCheck.Gen.t =
  QCheck.Gen.map
    (function 0 -> `Indexed | 1 -> `Naive | _ -> `Parallel 2)
    (QCheck.Gen.int_range 0 2)

let gen_policy =
  QCheck.Gen.map
    (fun b -> if b then Tgds.Chase.Oblivious else Tgds.Chase.Restricted)
    QCheck.Gen.bool

(* Budgets small enough that even the non-terminating pool programs stop
   quickly, but large enough for several clean pass boundaries. *)
let resil_budget () = Obs.Budget.create ~max_facts:60 ~max_levels:6 ()

(* Every clean-boundary snapshot of one chase run (nulls reset first, so
   reruns of the same inputs are reproducible). *)
let chase_snapshots ~engine ~policy sigma db =
  Term.reset_nulls ();
  let snaps = ref [] in
  let _ =
    Tgds.Chase.run ~engine ~policy ~budget:(resil_budget ())
      ~on_pass:(fun ~level:_ ~saturated:_ take -> snaps := take () :: !snaps)
      sigma db
  in
  List.rev !snaps

(* ------------------------------------------------------------------ *)
(* Result comparison up to null renaming                                *)
(* ------------------------------------------------------------------ *)

module IntMap = Map.Make (Int)

let facts_levels ?(upto = max_int) r =
  Instance.facts (Tgds.Chase.instance r)
  |> List.filter_map (fun f ->
         match Option.value ~default:0 (Tgds.Chase.level r f) with
         | l when l <= upto -> Some (f, l)
         | _ -> None)

(* A null-blind sort key: fast rejection and good candidate locality for
   the backtracking matcher below. *)
let skeleton (f, l) =
  ( l,
    Fact.pred f,
    List.map (function Null _ -> Null 0 | c -> c) (Fact.args f) )

let match_args map rmap args1 args2 =
  let rec go map rmap a1 a2 =
    match (a1, a2) with
    | [], [] -> Some (map, rmap)
    | c1 :: r1, c2 :: r2 -> (
        match (c1, c2) with
        | Named s1, Named s2 ->
            if String.equal s1 s2 then go map rmap r1 r2 else None
        | Null i, Null j -> (
            match (IntMap.find_opt i map, IntMap.find_opt j rmap) with
            | Some j', Some i' ->
                if j' = j && i' = i then go map rmap r1 r2 else None
            | None, None -> go (IntMap.add i j map) (IntMap.add j i rmap) r1 r2
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  go map rmap args1 args2

(* Multiset equality of (fact, level) lists modulo a bijection on null
   ids (backtracking; instances here are small). *)
let equal_upto_nulls l1 l2 =
  let sk = List.sort Stdlib.compare (List.map skeleton l1) in
  List.length l1 = List.length l2
  && sk = List.sort Stdlib.compare (List.map skeleton l2)
  &&
  let l1 =
    List.sort (fun a b -> Stdlib.compare (skeleton a) (skeleton b)) l1
  in
  let rec assign map rmap l1 l2 =
    match l1 with
    | [] -> true
    | (f1, lv1) :: rest ->
        let rec try_cands before = function
          | [] -> false
          | (f2, lv2) :: after ->
              (lv1 = lv2
              && Fact.pred f1 = Fact.pred f2
              &&
              match match_args map rmap (Fact.args f1) (Fact.args f2) with
              | Some (map', rmap') ->
                  assign map' rmap' rest (List.rev_append before after)
              | None -> false)
              || try_cands ((f2, lv2) :: before) after
        in
        try_cands [] l2
  in
  assign IntMap.empty IntMap.empty l1 l2

(* Equivalence of two chase results up to renaming of invented nulls.
   Caveat: a [Partial Facts] cut lands mid-pass, where the set of
   triggers fired before the cut depends on enumeration order, so for
   those runs only the levels before the final, truncated pass are
   compared; runs ending at a clean boundary must agree in full. *)
let results_equivalent full r =
  Tgds.Chase.saturated full = Tgds.Chase.saturated r
  && Tgds.Chase.max_level full = Tgds.Chase.max_level r
  && Tgds.Chase.outcome full = Tgds.Chase.outcome r
  &&
  match Tgds.Chase.outcome full with
  | Obs.Budget.Partial (Obs.Budget.Facts _) ->
      let upto = Tgds.Chase.max_level full - 1 in
      equal_upto_nulls (facts_levels ~upto full) (facts_levels ~upto r)
  | _ -> equal_upto_nulls (facts_levels full) (facts_levels r)

(* A checkpoint drawn from a random boundary of a random chase. The first
   pass of these budgets is always a clean boundary, so [snaps] is never
   empty. *)
let gen_checkpoint =
  QCheck.Gen.(
    let* sigma = gen_sigma
    and* db = gen_db
    and* engine = gen_engine
    and* policy = gen_policy
    and* pick = int_range 0 1000 in
    let snaps = chase_snapshots ~engine ~policy sigma db in
    return (List.nth snaps (pick mod List.length snaps)))

let print_checkpoint s = Obs.Json.to_string (Resil.Checkpoint.to_json s)
let arb_checkpoint = QCheck.make ~print:print_checkpoint gen_checkpoint

(* Fault plans mixing all three trigger axes; [After_ms] is meant to run
   under an injected clock that advances ≥ 1s per probe hit, so every
   generated deadline fires on its first or second hit. *)
let gen_fault_trigger =
  QCheck.Gen.(
    let* k = int_range 0 2 in
    match k with
    | 0 -> map (fun n -> Resil.Fault.At_hit (1 + n)) (int_range 0 400)
    | 1 ->
        let* p =
          oneofl [ "engine.pass"; "engine.insert"; "engine.join"; "chase.pass" ]
        and* n = int_range 1 40 in
        return (Resil.Fault.At_point (p, n))
    | _ ->
        map (fun n -> Resil.Fault.After_ms (float_of_int (500 * n))) (int_range 0 4))

let gen_fault_plan = QCheck.Gen.(list_size (int_range 0 3) gen_fault_trigger)

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

(* Fixed Boolean probes over the pool's schema. *)
let queries =
  [
    bool_q [ atom "A" [ v "u" ] ];
    bool_q [ atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ] ];
    bool_q [ atom "T" [ v "u"; v "w" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "T" [ v "w"; v "z" ] ];
  ]

let gen_query_atom =
  QCheck.Gen.(
    let vars = [ "u"; "w"; "t" ] in
    let gv = map (List.nth vars) (int_range 0 2) in
    let* p = int_range 0 3 in
    match p with
    | 0 ->
        let* a = gv in
        return (atom "A" [ v a ])
    | 1 ->
        let* a = gv in
        return (atom "B" [ v a ])
    | 2 ->
        let* a = gv and* b = gv in
        return (atom "S" [ v a; v b ])
    | _ ->
        let* a = gv and* b = gv in
        return (atom "T" [ v a; v b ]))

(* Random CQ with 0–2 answer variables drawn from the atoms' variables. *)
let gen_cq =
  QCheck.Gen.(
    let* atoms = list_size (int_range 1 3) gen_query_atom in
    let* n_ans = int_range 0 2 in
    let present =
      List.filter
        (fun x -> List.exists (fun a -> VarSet.mem x (Atom.vars a)) atoms)
        [ "u"; "w"; "t" ]
    in
    let answer = List.filteri (fun i _ -> i < n_ans) present in
    return (Cq.make ~answer atoms))

(* Random UCQ of arity 0–3: one tuple of distinct answer variables shared
   by 1–2 disjuncts. Answer variables need not occur in a disjunct's
   atoms — the free-variable case of answer enumeration, where they range
   over the whole active domain. *)
let gen_ucq =
  QCheck.Gen.(
    let* arity = int_range 0 3 in
    let answer = List.filteri (fun i _ -> i < arity) [ "u"; "w"; "t" ] in
    let gen_disjunct =
      map
        (fun atoms -> Cq.make ~answer atoms)
        (list_size (int_range 1 3) gen_query_atom)
    in
    map Ucq.make (list_size (int_range 1 2) gen_disjunct))

(* ------------------------------------------------------------------ *)
(* Linear fragments (used by the rewriting/ground-closure suites)       *)
(* ------------------------------------------------------------------ *)

let gen_linear_sigma =
  QCheck.Gen.(
    let gen_tgd =
      let* b = int_range 0 2 in
      match b with
      | 0 -> return (tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ])
      | 1 -> return (tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "T" [ v "y"; v "z" ] ])
      | _ -> return (tgd [ atom "T" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ])
    in
    list_size (int_range 1 3) gen_tgd)

let gen_small_db =
  QCheck.Gen.(
    let consts = [ "a"; "b" ] in
    let gc = map (List.nth consts) (int_range 0 1) in
    let gen_fact =
      let* p = int_range 0 2 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "T" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 4) gen_fact))

let gen_small_q =
  QCheck.Gen.(
    map (fun atoms -> bool_q atoms) (list_size (int_range 1 3) gen_query_atom))
