lib/tgds/tgd.mli: Atom Cq Format Instance Relational Schema Term
