(** Conjunctive queries (§2).

    A CQ [q(x̄) = ∃ȳ (R1(x̄1) ∧ ... ∧ Rm(x̄m))] is represented by its answer
    variables [x̄] (distinct, in order) and its atom list; every other
    variable is implicitly existentially quantified. The treewidth of a CQ
    follows the paper's liberal definition: the treewidth of the subgraph of
    its Gaifman graph induced by the existentially quantified variables,
    with edge-free graphs having treewidth one. *)

open Term

type t = { answer : string list; atoms : Atom.t list }

let make ?(answer = []) atoms =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Hashtbl.mem seen x then
        invalid_arg ("Cq.make: duplicate answer variable " ^ x)
      else Hashtbl.add seen x ())
    answer;
  { answer; atoms }

let answer q = q.answer
let atoms q = q.atoms
let arity q = List.length q.answer
let is_boolean q = q.answer = []
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

(** All variables of the query. *)
let vars q =
  List.fold_left
    (fun acc a -> VarSet.union (Atom.vars a) acc)
    (VarSet.of_list q.answer) q.atoms

(** Existentially quantified variables. *)
let evars q = VarSet.diff (vars q) (VarSet.of_list q.answer)

let consts q =
  List.fold_left (fun acc a -> ConstSet.union (Atom.consts a) acc) ConstSet.empty q.atoms

(** Number of atoms + arity: a proxy for [||q||]. *)
let norm q =
  List.fold_left (fun acc a -> acc + 1 + Atom.arity a) (arity q) q.atoms

(** Schema of the predicates used by [q]. *)
let schema q =
  List.fold_left
    (fun s a -> Schema.add (Atom.pred a) (Atom.arity a) s)
    Schema.empty q.atoms

(* ------------------------------------------------------------------ *)
(* Canonical database                                                  *)
(* ------------------------------------------------------------------ *)

(** [freeze x] is the constant representing variable [x] in the canonical
    database [D[q]]. The ["?"] prefix keeps frozen variables apart from
    ordinary database constants. *)
let freeze x = Named ("?" ^ x)

(** [unfreeze c] recovers the variable from a frozen constant. *)
let unfreeze = function
  | Named s when String.length s > 0 && s.[0] = '?' ->
      Some (String.sub s 1 (String.length s - 1))
  | Named _ | Null _ -> None

(** Canonical database [D[q]]: drop quantifiers, view variables as
    constants (§2). Constants already present in [q] are kept as they
    are. *)
let canonical_db q =
  let subst =
    VarSet.fold (fun x acc -> VarMap.add x (Const (freeze x)) acc) (vars q) VarMap.empty
  in
  Instance.of_atoms (List.map (Atom.apply subst) q.atoms)

(** Frozen answer tuple of [q]. *)
let frozen_answer q = List.map freeze q.answer

(** [of_instance ~answer i] reads an instance back as a CQ, turning every
    constant into a variable named after it (inverse of [canonical_db] when
    applied to frozen instances); [answer] lists the constants that become
    answer variables, in order. *)
let of_instance ?(answer = []) i =
  let name_of c =
    match unfreeze c with
    | Some x -> x
    | None -> (
        match c with
        | Named s -> "c_" ^ s
        | Null n -> "n_" ^ string_of_int n)
  in
  let atoms =
    List.map
      (fun f -> Atom.make (Fact.pred f) (List.map (fun c -> Var (name_of c)) (Fact.args f)))
      (Instance.facts i)
  in
  make ~answer:(List.map name_of answer) atoms

(* ------------------------------------------------------------------ *)
(* Substitution and renaming                                            *)
(* ------------------------------------------------------------------ *)

(** [apply subst q] applies a variable substitution to the atoms. Answer
    variables may only be renamed to variables (checked). *)
let apply subst q =
  let answer =
    List.map
      (fun x ->
        match VarMap.find_opt x subst with
        | None -> x
        | Some (Var y) -> y
        | Some (Const _) -> invalid_arg "Cq.apply: answer variable bound to constant")
      q.answer
  in
  { answer; atoms = List.map (Atom.apply subst) q.atoms }

(** [rename_apart ~suffix q] renames every existential variable by
    appending [suffix] (used to take disjoint unions of queries). *)
let rename_apart ~suffix q =
  let subst =
    VarSet.fold
      (fun x acc -> VarMap.add x (Var (x ^ suffix)) acc)
      (evars q) VarMap.empty
  in
  apply subst q

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

(** [entails db q c̄] — is [c̄ ∈ q(db)]? (the evaluation problem of §2,
    candidate answer given). *)
let entails db q tuple =
  if List.length tuple <> arity q then false
  else
    let init =
      List.fold_left2 (fun acc x c -> VarMap.add x c acc) VarMap.empty q.answer tuple
    in
    Homomorphism.exists ~init q.atoms db

(** [holds db q] — Boolean entailment [db ⊨ q]. *)
let holds db q = Homomorphism.exists q.atoms db

(** [answers db q] — the evaluation [q(db)], as a deduplicated list of
    tuples. *)
let answers db q =
  Homomorphism.all q.atoms db
  |> List.map (fun b -> List.map (fun x -> VarMap.find x b) q.answer)
  |> List.sort_uniq Stdlib.compare

(** [entails_io db q c̄] — [db ⊨io q(c̄)]: there is a homomorphism and every
    homomorphism witnessing [c̄] is injective (Appendix D.1). *)
let entails_io db q tuple =
  if List.length tuple <> arity q then false
  else
    let init =
      List.fold_left2 (fun acc x c -> VarMap.add x c acc) VarMap.empty q.answer tuple
    in
    let homs = Homomorphism.all ~init q.atoms db in
    homs <> []
    && List.for_all
         (fun b ->
           let images = VarMap.fold (fun _ c acc -> c :: acc) b [] in
           List.length images = List.length (List.sort_uniq compare_const images))
         homs

(* ------------------------------------------------------------------ *)
(* Gaifman graph and treewidth                                          *)
(* ------------------------------------------------------------------ *)

(** Gaifman graph of [q]: vertices are the variables, indexed into the
    returned array; two variables are adjacent iff they cohabit an atom. *)
let gaifman q =
  let vs = VarSet.elements (vars q) in
  let arr = Array.of_list vs in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) arr;
  let g = ref Qgraph.Graph.empty in
  Array.iteri (fun i _ -> g := Qgraph.Graph.add_vertex !g i) arr;
  List.iter
    (fun a ->
      let ids =
        VarSet.elements (Atom.vars a) |> List.map (Hashtbl.find index)
      in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
            List.iter (fun y -> g := Qgraph.Graph.add_edge !g x y) rest;
            pairs rest
      in
      pairs ids)
    q.atoms;
  (!g, arr)

(** Treewidth of [q] per the paper (§2): treewidth of [G^q] restricted to
    the existential variables; defined as 1 when that subgraph has no
    edges. *)
let treewidth q =
  let g, arr = gaifman q in
  let ev = evars q in
  let keep = ref Qgraph.Graph.ISet.empty in
  Array.iteri
    (fun i x -> if VarSet.mem x ev then keep := Qgraph.Graph.ISet.add i !keep)
    arr;
  let sub = Qgraph.Graph.induced g !keep in
  if Qgraph.Graph.num_edges sub = 0 then 1 else Qgraph.Treewidth.treewidth sub

(** Membership in CQ_k. *)
let in_cqk k q = treewidth q <= k

(* ------------------------------------------------------------------ *)
(* [V]-connectivity (Appendix C.1)                                      *)
(* ------------------------------------------------------------------ *)

(** [restrict_to q v] is [q|V]: the atoms whose variables all lie in [v]. *)
let restrict_to q v =
  List.filter (fun a -> VarSet.subset (Atom.vars a) v) q.atoms

(** [drop q v] is [q[V]]: the atoms mentioning a variable outside [v]. *)
let drop q v = List.filter (fun a -> not (VarSet.subset (Atom.vars a) v)) q.atoms

(** [is_v_connected q v] — [q] is [V]-connected: the subgraph of [G^q]
    induced by [vars(q) \ V] is connected. *)
let is_v_connected q v =
  let g, arr = gaifman q in
  let keep = ref Qgraph.Graph.ISet.empty in
  Array.iteri
    (fun i x -> if not (VarSet.mem x v) then keep := Qgraph.Graph.ISet.add i !keep)
    arr;
  Qgraph.Graph.is_connected (Qgraph.Graph.induced g !keep)

(** [v_connected_components q v] — the maximally [V]-connected components
    of [q[V]] (Appendix C.1): the atoms of [q[V]] grouped by the connected
    component (in [G^q] minus [V]) of their outside-[V] variables. Each
    component is returned as its atom list. *)
let v_connected_components q v =
  let g, arr = gaifman q in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) arr;
  let keep = ref Qgraph.Graph.ISet.empty in
  Array.iteri
    (fun i x -> if not (VarSet.mem x v) then keep := Qgraph.Graph.ISet.add i !keep)
    arr;
  let comps = Qgraph.Graph.components (Qgraph.Graph.induced g !keep) in
  List.filter_map
    (fun comp ->
      let atoms =
        List.filter
          (fun a ->
            VarSet.exists
              (fun x ->
                (not (VarSet.mem x v))
                && Qgraph.Graph.ISet.mem (Hashtbl.find index x) comp)
              (Atom.vars a))
          (drop q v)
      in
      if atoms = [] then None else Some atoms)
    comps

(** Whether the Gaifman graph of [q] (all variables) is connected (§7). *)
let is_connected q =
  let g, _ = gaifman q in
  Qgraph.Graph.is_connected g

(* ------------------------------------------------------------------ *)
(* Contractions (§5.2 / Appendix C.1)                                   *)
(* ------------------------------------------------------------------ *)

(* Normal form used to deduplicate contractions syntactically: sorted
   atom list. *)
let normalize q = { q with atoms = List.sort_uniq Atom.compare q.atoms }

(** [contract_pair q x y] identifies variables [x] and [y]. When one of
    them is an answer variable the result keeps that name; identifying two
    answer variables is not allowed ([None]). *)
let contract_pair q x y =
  let ax = List.mem x q.answer and ay = List.mem y q.answer in
  if x = y then Some q
  else if ax && ay then None
  else
    let from_, to_ = if ay then (x, y) else (y, x) in
    Some (normalize (apply (VarMap.singleton from_ (Var to_)) q))

(** All contractions of [q] (including [q] itself), deduplicated up to the
    syntactic normal form. Exponential in the number of variables — meant
    for the small queries of specializations and approximations. *)
let contractions q =
  let module QSet = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end) in
  let rec close frontier seen =
    match frontier with
    | [] -> QSet.elements seen
    | q :: rest ->
        let vs = VarSet.elements (vars q) in
        let nexts =
          List.concat_map
            (fun x ->
              List.filter_map
                (fun y -> if x < y then contract_pair q x y else None)
                vs)
            vs
        in
        let fresh = List.filter (fun q' -> not (QSet.mem q' seen)) nexts in
        close (fresh @ rest) (List.fold_left (fun s q' -> QSet.add q' s) seen fresh)
  in
  close [ normalize q ] (QSet.singleton (normalize q))

(** Proper contractions: contractions other than [q] itself. *)
let proper_contractions q =
  List.filter (fun q' -> not (equal q' (normalize q))) (contractions q)

(** [is_contraction_of qc q] — is [qc] (syntactically, up to normal form)
    obtainable from [q] by identifying variables? *)
let is_contraction_of qc q =
  let qc = normalize qc in
  List.exists (fun q' -> equal q' qc) (contractions q)

let pp ppf q =
  Fmt.pf ppf "q(%a) :- %a"
    Fmt.(list ~sep:(any ",") string)
    q.answer
    Fmt.(list ~sep:(any ", ") Atom.pp)
    q.atoms
