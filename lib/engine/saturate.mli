(** Semi-naive saturation.

    A delta-driven fixpoint over existential rules (TGD-shaped
    body → head atom lists): level ℓ+1 enumerates only the triggers whose
    body uses at least one fact created at level ℓ — every older trigger
    was enumerated (and fired or dismissed) at the level where its last
    body fact appeared, so no level re-derives earlier levels. The
    per-level trigger sets coincide with those of the naive level-wise
    chase ([Tgds.Chase.run ~engine:`Naive]), so the s-levels of
    Lemma A.1 are preserved exactly: a fact derived at pass ℓ has s-level
    ℓ (its body contains a level ℓ−1 fact and nothing newer).

    Policies mirror the chase: [Oblivious] (the paper's §2 semantics)
    fires every trigger once; [Restricted] dismisses triggers whose head
    is already witnessed at collection time.

    Observability: the run is bounded by an {!Obs.Budget.t} (facts,
    levels, wall clock) and cut {e gracefully} — the partial result is
    returned with [outcome = Partial _] instead of looping forever on a
    non-terminating program. Each pass is recorded as a [level] span
    (triggers fired/dismissed, new facts) under [?obs] when given;
    low-level counters ([index.*], [joiner.*]) accumulate in the index's
    metrics registry ({!Index.metrics}). *)

open Relational

type policy = Oblivious | Restricted

(** Execution strategy. [Indexed] is the sequential delta-driven loop;
    [Parallel n] fans each pass's trigger matching out over [n] domains
    (a {!Shard} pool reused across passes, [n - 1] spawned domains) and
    merges the per-shard bindings back in the sequential discovery order
    — see {!Parallel} for the determinism argument. Every observable
    output (facts, null names, s-levels, counters, snapshots) is
    byte-identical between [Indexed] and [Parallel n] for every [n ≥ 1];
    only the timing histograms differ. *)
type engine = Indexed | Parallel of int

(** A TGD-shaped rule: non-empty head; head variables absent from the
    body are existential and receive fresh labelled nulls at firing. *)
type rule = { body : Atom.t list; head : Atom.t list }

(** The engine state at a {e clean pass boundary} — a pass that completed
    without a budget violation. The facts with their s-levels determine
    everything else a continuation needs: the next pass's semi-naive delta
    is exactly the facts of [snap_level], and no trigger fired earlier can
    be re-enumerated from that delta (its body lies in levels
    ≤ [snap_level] − 1). The scalar fields carry the accumulated totals so
    a resumed run reports the same statistics as an uninterrupted one. *)
type snapshot = {
  snap_facts : (Fact.t * int) list;  (** every fact with its s-level *)
  snap_level : int;  (** last completed pass = highest s-level *)
  snap_saturated : bool;
  snap_triggers_fired : int;
  snap_triggers_dismissed : int;
  snap_counters : (string * int) list;  (** index metrics, sorted by name *)
}

type result = {
  index : Index.t;  (** the saturated store *)
  level_of : (Fact.t, int) Hashtbl.t;  (** s-level of every fact *)
  saturated : bool;  (** no unfired trigger remained *)
  max_level : int;
  outcome : Obs.Budget.outcome;  (** [Complete] iff no budget cut the run *)
  triggers_fired : int;
  triggers_dismissed : int;  (** [Restricted] head-already-satisfied *)
  facts_per_level : int list;  (** new facts at levels 1, 2, … *)
  span : Obs.Span.t;  (** the run's span (one [level] child per pass) *)
}

(** One trigger firing, reported to [?on_fire] as it happens — the hook
    the incremental-maintenance ledger records derivations with. Firings
    are reported in the deterministic sequential order under every
    engine ([Parallel n] replays trigger application on the main
    domain). *)
type firing = {
  fire_rule : int;  (** index into the rule list *)
  fire_key : int * Term.const option list;
      (** the trigger's identity: rule index + body-variable image *)
  fire_body : Fact.t list;  (** grounded body, in body-atom order *)
  fire_outs : (Fact.t * bool) list;
      (** grounded head facts; [true] = fact was new to the store *)
}

(** [run ?policy ?budget ?obs ?on_pass rules db] — saturate [db] under
    [rules] until no new trigger exists or the budget cuts the run (the
    overflowing level may be cut short, as in the naive chase).

    [on_pass ~level ~saturated take] is called after every clean pass
    boundary (including the final, saturation-discovering pass); calling
    [take ()] materialises a {!snapshot} of the state at that boundary.
    Snapshot capture is pay-per-use — skipping the thunk costs nothing.

    [on_fire] is called once per fired trigger, in firing order, after
    the trigger's whole head has landed in the index.

    [?engine] (default [Indexed]) selects the execution strategy;
    [Parallel n] raises [Invalid_argument] when [n < 1]. *)
val run :
  ?policy:policy ->
  ?engine:engine ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  ?on_pass:(level:int -> saturated:bool -> (unit -> snapshot) -> unit) ->
  ?on_fire:(firing -> unit) ->
  rule list ->
  Instance.t ->
  result

(** [resume ?policy ?budget ?obs ?on_pass rules snapshot] — continue a
    saturation from a checkpointed boundary. The index is rebuilt from the
    snapshot's facts (metric counters re-seeded to the checkpointed
    totals), the delta is the facts of the last level, and the loop
    proceeds as if never interrupted: the continuation fires the same
    per-pass trigger sets, so the final result agrees with the
    uninterrupted run on facts (up to renaming of nulls invented after
    the boundary), s-levels, trigger totals, and outcome. [policy],
    [budget] and [rules] must match the original run; [?engine] need not
    — snapshots are engine-agnostic, so a checkpoint taken under
    [Parallel n] resumes under [Indexed] and vice versa. *)
val resume :
  ?policy:policy ->
  ?engine:engine ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  ?on_pass:(level:int -> saturated:bool -> (unit -> snapshot) -> unit) ->
  ?on_fire:(firing -> unit) ->
  rule list ->
  snapshot ->
  result

(** [continue ?policy ?engine … rules ~index ~level_of ~level delta] —
    drive the semi-naive fixpoint over an {e existing, already saturated}
    store after [delta] has been added to it: pass [level + 1] enumerates
    the triggers whose body touches [delta], and the loop runs to
    saturation (or a budget cut). [index] and [level_of] are mutated in
    place; [delta]'s facts must already be present in both, carrying
    level [level].

    This is the incremental-maintenance entry point. Its trigger-key
    table starts empty, which is sound iff no previously fired trigger
    has a body fact in the transitive delta — exactly the invariant the
    maintenance layer establishes (new facts were never seen before;
    re-inserted facts had their dependent firings invalidated by the
    over-delete phase). It is {e not} sound to [continue] after removing
    facts without invalidating their dependents. *)
val continue :
  ?policy:policy ->
  ?engine:engine ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  ?on_pass:(level:int -> saturated:bool -> (unit -> snapshot) -> unit) ->
  ?on_fire:(firing -> unit) ->
  rule list ->
  index:Index.t ->
  level_of:(Fact.t, int) Hashtbl.t ->
  level:int ->
  Fact.t list ->
  result
