lib/core/unraveling.mli: Instance Relational Term
