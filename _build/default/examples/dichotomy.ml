(* The dichotomy made tangible (Theorems 4.1, 5.7, 5.13).

   Two demonstrations:
   1. p-Clique decided through CQS evaluation — the W[1]-hardness
      reduction of Theorem 5.13 run forwards: build D*(G, D[p], D[p'], X, μ)
      and evaluate the query.
   2. The efficiency side: a bounded-treewidth query family evaluates in
      polynomial time while the unbounded grid family blows up with the
      parameter.

   Run with: dune exec examples/dichotomy.exe *)

open Relational
open Guarded_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  Fmt.pr "== the limits of efficiency, in practice ==@.@.";

  (* ---------- 1. p-Clique through CQS evaluation ---------- *)
  Fmt.pr "-- p-Clique via the Theorem 5.13 reduction --@.";
  let q = Workload.grid_cq 3 3 in
  Fmt.pr "query: the 3×3 grid CQ (treewidth %d)@." (Cq.treewidth q);
  let d = Reductions.constraint_free_instance q in
  List.iter
    (fun (name, graph) ->
      match Reductions.clique_to_cqs d ~graph ~k:3 with
      | None -> Fmt.pr "  %s: no grid minor (unexpected)@." name
      | Some ci ->
          let via, t = time (fun () -> Reductions.decide_clique ci) in
          Fmt.pr "  %s: D* = %4d facts; 3-clique via CQS eval: %-5b (truth: %b) [%.3fs]@."
            name
            (Instance.size ci.Reductions.d_star.Grohe.db)
            via
            (Qgraph.Graph.has_clique graph 3)
            t)
    [
      ("planted clique graph", Workload.planted_clique ~n:7 ~k:3 ~p:0.15 ~seed:11);
      ("triangle-free cycle ", Qgraph.Graph.cycle 8);
      ("dense random graph  ", Workload.random_graph ~n:7 ~p:0.5 ~seed:5);
    ];

  (* ---------- 2. FPT vs parameter blow-up ---------- *)
  Fmt.pr "@.-- bounded vs unbounded treewidth query families --@.";
  Fmt.pr "database: 6×6 grid; queries: n×n grids (tw n) vs paths of n² edges (tw 1)@.";
  let db = Workload.grid_db 6 6 in
  List.iter
    (fun n ->
      let grid_q = Workload.grid_cq n n in
      let path_q =
        Workload.path_cq ~pred:"X" (min ((n * n) - 1) 5 * 1)
      in
      let _, t_grid = time (fun () -> Tw_eval.holds db grid_q) in
      let _, t_path = time (fun () -> Tw_eval.holds db path_q) in
      Fmt.pr "  n=%d: grid query (tw %d): %.4fs   path query (tw 1): %.4fs@." n
        (Cq.treewidth grid_q) t_grid t_path)
    [ 2; 3; 4 ];

  Fmt.pr "@.-- the meta problem: which queries are semantically tree-like? --@.";
  let sigma = [ Tgds.Tgd.make ~body:[ Atom.make "R2" [ Term.var "x" ] ] ~head:[ Atom.make "R4" [ Term.var "x" ] ] ] in
  let q44 =
    Cq.make
      (List.map
         (fun (p, args) -> Atom.make p (List.map Term.var args))
         [
           ("P", [ "x2"; "x1" ]); ("P", [ "x4"; "x1" ]);
           ("P", [ "x2"; "x3" ]); ("P", [ "x4"; "x3" ]);
           ("R1", [ "x1" ]); ("R2", [ "x2" ]); ("R3", [ "x3" ]); ("R4", [ "x4" ]);
         ])
  in
  Fmt.pr "Example 4.4's query: treewidth %d, core treewidth %d@." (Cq.treewidth q44)
    (Cq_core.semantic_treewidth q44);
  let s = Cqs.make ~constraints:sigma ~query:(Ucq.of_cq q44) in
  (match Equivalence.cqs_uniformly_ucqk_equivalent 1 s with
  | Equivalence.Holds, Some w ->
      Fmt.pr "under Σ = {R2(x) → R4(x)}: uniformly UCQ1-equivalent!@.";
      Fmt.pr "witness: %a@." Ucq.pp (Cqs.query w)
  | _ -> Fmt.pr "unexpected verdict@.");
  let s0 = Cqs.make ~constraints:[] ~query:(Ucq.of_cq q44) in
  (match Equivalence.cqs_uniformly_ucqk_equivalent 1 s0 with
  | Equivalence.Fails, _ -> Fmt.pr "without Σ: provably not UCQ1-equivalent.@."
  | _ -> Fmt.pr "unexpected verdict@.");
  Fmt.pr "@.done.@."
