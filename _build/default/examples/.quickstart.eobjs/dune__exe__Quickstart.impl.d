examples/quickstart.ml: Atom Cq Cqs Cqs_eval Fact Fmt Guarded_core Instance List Omq Omq_eval Relational Term Tgds Ucq Workload
