test/test_syntax.ml: Alcotest Atom Cq Fact Fmt Instance List QCheck QCheck_alcotest Relational Schema Syntax Term Tgds Ucq VarSet
