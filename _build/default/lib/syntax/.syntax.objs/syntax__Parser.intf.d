lib/syntax/parser.mli: Fact Instance Relational Schema Tgds Ucq
