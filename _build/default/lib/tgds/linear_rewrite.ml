(** UCQ rewriting for linear TGDs (Proposition D.2).

    Backward-chaining piece rewriting: a set [S] of query atoms is unified
    with head atoms of a (renamed-apart) linear TGD; if every existential
    variable of the head unifies only with variables that occur nowhere
    outside [S] (and with no constant, frontier variable, other existential
    or answer variable), the piece is replaced by the TGD body. Iterated to
    a fixpoint modulo CQ equivalence, this yields a UCQ [q'] with
    [q(chase(D,Σ)) = q'(D)] for every database [D]. Termination holds for
    linear TGDs up to equivalence; a budget caps pathological blowups and
    is reported in the [complete] flag. *)

open Relational
open Relational.Term

(* ------------------------------------------------------------------ *)
(* Term unification (union-find over terms)                             *)
(* ------------------------------------------------------------------ *)

module TMap = Map.Make (struct
  type t = Term.t

  let compare = Term.compare
end)

type uf = Term.t TMap.t

let rec find (uf : uf) t =
  match TMap.find_opt t uf with
  | None -> t
  | Some t' -> if Term.equal t t' then t else find uf t'

let union uf t1 t2 =
  let r1 = find uf t1 and r2 = find uf t2 in
  if Term.equal r1 r2 then Some uf
  else
    match (r1, r2) with
    | Const c1, Const c2 -> if equal_const c1 c2 then Some uf else None
    | Const _, Var _ -> Some (TMap.add r2 r1 uf)
    | Var _, Const _ -> Some (TMap.add r1 r2 uf)
    | Var _, Var _ -> Some (TMap.add r1 r2 uf)

let unify_atoms uf (a : Atom.t) (b : Atom.t) =
  if Atom.pred a <> Atom.pred b || Atom.arity a <> Atom.arity b then None
  else
    List.fold_left2
      (fun acc t1 t2 -> Option.bind acc (fun uf -> union uf t1 t2))
      (Some uf) (Atom.args a) (Atom.args b)

(* Class of a term: all terms with the same representative. *)
let class_of uf keys t =
  let r = find uf t in
  List.filter (fun t' -> Term.equal (find uf t') r) keys

(* ------------------------------------------------------------------ *)
(* One rewriting step                                                   *)
(* ------------------------------------------------------------------ *)

(* Nonempty subsets of a list (small lists only). *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun ys -> x :: ys) s

let nonempty_subsets l = List.filter (fun s -> s <> []) (subsets l)

(* All assignments of each element of [xs] to an element of [choices]. *)
let rec assignments xs choices =
  match xs with
  | [] -> [ [] ]
  | x :: rest ->
      List.concat_map
        (fun c -> List.map (fun a -> (x, c) :: a) (assignments rest choices))
        choices

(* Apply a unifier to a CQ, choosing representatives so that answer
   variables survive: representative preference Const > answer var >
   variable. Returns None when the unifier identifies two answer
   variables. *)
let resolve_unifier uf keys (answer : string list) =
  let reps = List.sort_uniq Term.compare (List.map (find uf) keys) in
  let choice = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun r ->
      let cls = class_of uf keys r in
      let consts = List.filter (function Const _ -> true | Var _ -> false) cls in
      let ans =
        List.filter (function Var x -> List.mem x answer | Const _ -> false) cls
      in
      let rep =
        match (consts, ans) with
        | c :: _, [] -> Some c
        | c :: _, [ _ ] ->
            Some c (* answer var bound to constant: allowed in evaluation? the
                      paper's queries are constant-free; keep the constant *)
        | _, [ a ] -> Some a
        | [], [] -> Some r
        | _, _ :: _ :: _ ->
            ok := false;
            None
      in
      match rep with Some rep -> Hashtbl.replace choice r rep | None -> ())
    reps;
  if not !ok then None
  else
    Some
      (fun t ->
        let r = find uf t in
        match Hashtbl.find_opt choice r with Some rep -> rep | None -> r)

(* One application of TGD [t] to CQ [q]: all results of rewriting some
   piece of [q] with the head of [t]. *)
let step_counter = ref 0

let step (t : Tgd.t) (q : Cq.t) : Cq.t list =
  (* rename the TGD apart with a suffix fresh for this step: a fixed suffix
     would collide with variables introduced by earlier rewriting steps *)
  incr step_counter;
  let t = Tgd.rename_apart ~suffix:(Printf.sprintf "_r%d" !step_counter) t in
  let ex = Tgd.existential_vars t in
  let atoms = Cq.atoms q in
  let keys =
    let terms_of a = Atom.args a in
    List.sort_uniq Term.compare
      (List.concat_map terms_of (atoms @ Tgd.body t @ Tgd.head t))
  in
  nonempty_subsets atoms
  |> List.concat_map (fun piece ->
         assignments piece (Tgd.head t)
         |> List.filter_map (fun assignment ->
                (* unify every piece atom with its assigned head atom *)
                let uf =
                  List.fold_left
                    (fun acc (a, h) ->
                      Option.bind acc (fun uf -> unify_atoms uf a h))
                    (Some TMap.empty) assignment
                in
                match uf with
                | None -> None
                | Some uf ->
                    let outside =
                      List.filter
                        (fun a -> not (List.exists (Atom.equal a) piece))
                        atoms
                    in
                    let outside_vars =
                      List.fold_left
                        (fun acc a -> VarSet.union (Atom.vars a) acc)
                        VarSet.empty outside
                    in
                    (* applicability of the piece w.r.t. existentials *)
                    let ex_ok =
                      VarSet.for_all
                        (fun z ->
                          let cls = class_of uf keys (Var z) in
                          List.for_all
                            (fun t' ->
                              match t' with
                              | Const _ -> false
                              | Var x ->
                                  if x = z then true
                                  else if VarSet.mem x ex then false
                                  else if VarSet.mem x (Tgd.frontier t) then
                                    false
                                  else
                                    (* a query variable: must be local to
                                       the piece and non-answer *)
                                    (not (List.mem x (Cq.answer q)))
                                    && not (VarSet.mem x outside_vars))
                            cls)
                        ex
                    in
                    if not ex_ok then None
                    else
                      Option.bind (resolve_unifier uf keys (Cq.answer q))
                        (fun repr ->
                          let subst_atom a =
                            Atom.make (Atom.pred a) (List.map repr (Atom.args a))
                          in
                          let atoms' =
                            List.map subst_atom (outside @ Tgd.body t)
                          in
                          (* a rewriting that forces an answer variable to a
                             constant is dropped: the paper's queries are
                             constant-free and such pieces never arise *)
                          let answer' =
                            List.map
                              (fun x ->
                                match repr (Var x) with
                                | Var y -> Some y
                                | Const _ -> None)
                              (Cq.answer q)
                          in
                          if List.exists Option.is_none answer' then None
                          else
                            Some
                              (Cq.normalize
                                 (Cq.make
                                    ~answer:(List.filter_map Fun.id answer')
                                    atoms')))))

(* ------------------------------------------------------------------ *)
(* The rewriting loop                                                   *)
(* ------------------------------------------------------------------ *)

(** [rewrite ?max_queries sigma q] — the perfect UCQ rewriting of [q]
    w.r.t. the linear set [sigma] (Proposition D.2): a UCQ [q'] with
    [q(chase(D,Σ)) = q'(D)] for all [D]. The boolean is false when the
    query budget was exhausted (result then sound but possibly
    incomplete). Raises [Invalid_argument] on non-linear TGDs. *)
let rewrite ?(max_queries = 512) sigma (q : Ucq.t) : Ucq.t * bool =
  if not (Tgd.all_linear sigma) then
    invalid_arg "Linear_rewrite.rewrite: Σ must be linear";
  let complete = ref true in
  let known : Cq.t list ref = ref [] in
  let add q =
    if List.exists (fun q' -> Containment.cq_equivalent q q') !known then false
    else if List.length !known >= max_queries then begin
      complete := false;
      false
    end
    else begin
      known := q :: !known;
      true
    end
  in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      let d = Cq.normalize d in
      if add d then Queue.add d queue)
    (Ucq.disjuncts q);
  while not (Queue.is_empty queue) do
    let cur = Queue.pop queue in
    List.iter
      (fun t ->
        List.iter (fun q' -> if add q' then Queue.add q' queue) (step t cur))
      sigma
  done;
  (Ucq.make (List.rev !known), !complete)

(** [answers sigma db q] — certain answers of [q] over [db] under linear
    [sigma], computed via rewriting (no chase). *)
let answers ?max_queries sigma db q =
  let q', complete = rewrite ?max_queries sigma q in
  (Ucq.answers db q', complete)

(** [entails sigma db q tuple] — rewriting-based certain membership. *)
let entails ?max_queries sigma db q tuple =
  let q', complete = rewrite ?max_queries sigma q in
  (Ucq.entails db q' tuple, complete)
