lib/core/workload.mli: Cq Instance Omq Qgraph Relational Tgds
