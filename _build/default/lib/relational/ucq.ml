(** Unions of conjunctive queries (§2): disjuncts of equal arity over the
    same answer-variable tuple. *)

type t = { disjuncts : Cq.t list }

let make = function
  | [] -> invalid_arg "Ucq.make: a UCQ has at least one disjunct"
  | q :: rest as disjuncts ->
      let ar = Cq.arity q in
      List.iter
        (fun q' ->
          if Cq.arity q' <> ar then
            invalid_arg "Ucq.make: disjuncts of different arities")
        rest;
      { disjuncts }

let of_cq q = { disjuncts = [ q ] }
let disjuncts u = u.disjuncts
let arity u = Cq.arity (List.hd u.disjuncts)
let is_boolean u = arity u = 0
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let map f u = make (List.map f u.disjuncts)

(** Union of the schemas of the disjuncts. *)
let schema u =
  List.fold_left (fun s q -> Schema.union s (Cq.schema q)) Schema.empty u.disjuncts

let norm u = List.fold_left (fun acc q -> acc + Cq.norm q) 0 u.disjuncts

(** [entails db u c̄] — is [c̄ ∈ u(db)]? *)
let entails db u tuple = List.exists (fun q -> Cq.entails db q tuple) u.disjuncts

(** Boolean entailment. *)
let holds db u = List.exists (fun q -> Cq.holds db q) u.disjuncts

(** [answers db u] = [⋃_i q_i(db)]. *)
let answers db u =
  List.concat_map (fun q -> Cq.answers db q) u.disjuncts |> List.sort_uniq Stdlib.compare

(** Treewidth of a UCQ: the maximum over its disjuncts (§2 defines
    membership in UCQ_k as every disjunct having treewidth ≤ k). *)
let treewidth u =
  List.fold_left (fun acc q -> max acc (Cq.treewidth q)) 1 u.disjuncts

let in_ucqk k u = List.for_all (fun q -> Cq.in_cqk k q) u.disjuncts

(** Remove syntactic duplicate disjuncts. *)
let dedup u =
  make (List.sort_uniq Cq.compare (List.map Cq.normalize u.disjuncts))

let pp ppf u =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any " ∨@ ") Cq.pp) u.disjuncts
