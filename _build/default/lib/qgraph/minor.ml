(** Graph minors and minor maps (§6 / Appendix H of the paper).

    A minor map from [H] to [G] assigns to every vertex of [H] a nonempty,
    connected, pairwise-disjoint branch set of [G] vertices such that every
    [H]-edge is realized by an edge between the two branch sets. The map is
    onto when the branch sets cover all of [G]. *)

module ISet = Graph.ISet
module IMap = Graph.IMap

type map = ISet.t IMap.t
(** [H]-vertex -> branch set of [G]-vertices. *)

(** [verify ~h ~g m] checks that [m] is a minor map from [h] to [g]. *)
let verify ~h ~g (m : map) =
  let all_assigned = List.for_all (fun v -> IMap.mem v m) (Graph.vertices h) in
  let nonempty_connected =
    IMap.for_all
      (fun _ bs ->
        (not (ISet.is_empty bs)) && Graph.is_connected (Graph.induced g bs))
      m
  in
  let disjoint =
    let rec go = function
      | [] -> true
      | (_, bs) :: rest ->
          List.for_all (fun (_, bs') -> ISet.is_empty (ISet.inter bs bs')) rest
          && go rest
    in
    go (IMap.bindings m)
  in
  let edges_realized =
    List.for_all
      (fun (u, v) ->
        match (IMap.find_opt u m, IMap.find_opt v m) with
        | Some bu, Some bv ->
            ISet.exists
              (fun x -> ISet.exists (fun y -> Graph.mem_edge g x y) bv)
              bu
        | _ -> false)
      (Graph.edges h)
  in
  all_assigned && nonempty_connected && disjoint && edges_realized

let is_onto ~g (m : map) =
  let covered = IMap.fold (fun _ bs acc -> ISet.union bs acc) m ISet.empty in
  ISet.equal covered (Graph.vertex_set g)

(** [extend_onto ~g m] grows the branch sets of a verified minor map until
    they cover every [G] vertex in the component(s) they touch — possible
    whenever [g] is connected (standard fact, used in Appendix H). Vertices
    in components not touched by [m] are left uncovered. *)
let extend_onto ~g (m : map) =
  let owner = Hashtbl.create 16 in
  IMap.iter (fun hv bs -> ISet.iter (fun x -> Hashtbl.replace owner x hv) bs) m;
  let m = ref m in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if not (Hashtbl.mem owner v) then
          let adopters =
            ISet.filter (fun u -> Hashtbl.mem owner u) (Graph.neighbors g v)
          in
          match ISet.choose_opt adopters with
          | None -> ()
          | Some u ->
              let hv = Hashtbl.find owner u in
              Hashtbl.replace owner v hv;
              m := IMap.add hv (ISet.add v (IMap.find hv !m)) !m;
              changed := true)
      (Graph.vertices g)
  done;
  !m

(* ------------------------------------------------------------------ *)
(* Search                                                               *)
(* ------------------------------------------------------------------ *)

(* Subgraph-isomorphism search: branch sets are singletons. This suffices
   whenever H occurs as a subgraph of G — the case for all grid-shaped
   workloads in this repository. *)
let find_subgraph_embedding ~h ~g =
  let hvs = Graph.vertices h in
  (* order H vertices so each (after the first) has a previously placed
     neighbor where possible: improves pruning *)
  let order =
    let placed = Hashtbl.create 16 in
    let rec pick remaining acc =
      match remaining with
      | [] -> List.rev acc
      | _ ->
          let connected, rest =
            List.partition
              (fun v ->
                ISet.exists (fun u -> Hashtbl.mem placed u) (Graph.neighbors h v))
              remaining
          in
          let v = match connected with v :: _ -> v | [] -> List.hd rest in
          Hashtbl.replace placed v ();
          pick (List.filter (fun u -> u <> v) remaining) (v :: acc)
    in
    pick hvs []
  in
  let gvs = Graph.vertices g in
  let rec search assign used = function
    | [] -> Some assign
    | hv :: rest ->
        let constraints =
          ISet.elements (Graph.neighbors h hv)
          |> List.filter_map (fun u -> IMap.find_opt u assign)
        in
        let candidates =
          match constraints with
          | [] -> gvs
          | c :: cs ->
              List.fold_left
                (fun acc c -> List.filter (fun v -> Graph.mem_edge g v c) acc)
                (ISet.elements (Graph.neighbors g c))
                cs
        in
        List.find_map
          (fun gv ->
            if ISet.mem gv used then None
            else search (IMap.add hv gv assign) (ISet.add gv used) rest)
          candidates
  in
  search IMap.empty ISet.empty order
  |> Option.map (IMap.map ISet.singleton)

(* Full minor search with bounded branch-set growth: contract low-degree
   degree-2 chains of G first (topological-minor style), then try subgraph
   embedding in the contracted graph and translate back. *)
let find_with_contractions ~h ~g =
  (* Iteratively contract a degree-2 vertex not needed for H's max degree. *)
  let rec contract g mapping =
    let candidate =
      List.find_opt
        (fun v ->
          Graph.degree g v = 2
          &&
          let nb = ISet.elements (Graph.neighbors g v) in
          match nb with [ a; b ] -> not (Graph.mem_edge g a b) | _ -> false)
        (Graph.vertices g)
    in
    match candidate with
    | None -> (g, mapping)
    | Some v -> (
        match ISet.elements (Graph.neighbors g v) with
        | [ a; b ] ->
            let g' = Graph.add_edge (Graph.remove_vertex g v) a b in
            (* v's branch is absorbed into a's *)
            let mv = IMap.find v mapping in
            let mapping' =
              IMap.remove v mapping
              |> IMap.update a (function
                   | Some s -> Some (ISet.union s mv)
                   | None -> Some (ISet.add a mv))
            in
            contract g' mapping'
        | _ -> (g, mapping))
  in
  let init_mapping =
    List.fold_left
      (fun m v -> IMap.add v (ISet.singleton v) m)
      IMap.empty (Graph.vertices g)
  in
  let g', mapping = contract g init_mapping in
  match find_subgraph_embedding ~h ~g:g' with
  | None -> None
  | Some m ->
      Some
        (IMap.map
           (fun bs ->
             ISet.fold
               (fun v acc -> ISet.union (IMap.find v mapping) acc)
               bs ISet.empty)
           m)

(** [find ~h ~g] searches for a minor map from [h] to [g]: first as a plain
    subgraph embedding, then after contracting induced paths of [g]. Returns
    [None] when the bounded search fails (which does not prove that [h] is
    not a minor of [g]). *)
let find ~h ~g =
  match find_subgraph_embedding ~h ~g with
  | Some m -> Some m
  | None -> (
      match find_with_contractions ~h ~g with
      | Some m when verify ~h ~g m -> Some m
      | _ -> None)

(** [find_grid ~k ~l g] searches for a minor map of the [k × l] grid in [g].
    Per §6, the reductions need the [k × K] grid with [K = k(k-1)/2]. *)
let find_grid ~k ~l g = find ~h:(Graph.grid k l) ~g

let pp ppf (m : map) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.sp (fun ppf (v, bs) ->
         Fmt.pf ppf "%d -> {%a}" v
           Fmt.(list ~sep:(any ",") int)
           (ISet.elements bs)))
    (IMap.bindings m)
