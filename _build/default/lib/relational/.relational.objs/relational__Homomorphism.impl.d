lib/relational/homomorphism.ml: Atom ConstMap ConstSet Fact Hashtbl Instance List Option Printf Term VarMap VarSet
