(** Bounded-treewidth CQ evaluation (Proposition 2.1): bind the candidate
    answer, decompose the remaining variables, materialize bag relations
    and sweep bottom-up with projected joins (Yannakakis). Works for any
    CQ; cost exponential only in the width found. *)

open Relational

(** Module-level registry; counter ["tw_eval.exact_fallbacks"] records
    each evaluation that fell back from exact decomposition to the
    heuristic witness because the Gaifman graph exceeded the exact
    search's vertex limit. *)
val metrics : Obs.Metrics.t

(** [entails db q c̄] — [c̄ ∈ q(D)]. *)
val entails : Instance.t -> Cq.t -> Term.const list -> bool

(** Boolean variant. *)
val holds : Instance.t -> Cq.t -> bool

(** UCQ variant (each disjunct independently). *)
val entails_ucq : Instance.t -> Ucq.t -> Term.const list -> bool

(** Enumerate [q(D)] by checking every candidate tuple over the active
    domain (small arities). *)
val answers : Instance.t -> Cq.t -> Term.const list list
