lib/qgraph/minor.mli: Format Graph
