(** The level-wise chase (§2).

    A trigger is a TGD with a homomorphism of its body into the current
    instance; triggers fire once, inventing fresh labelled nulls for the
    existential variables. The default, oblivious policy is the paper's
    (§2): the result is unique up to isomorphism and the level-bounded
    slices [chase^ℓ_s(D,Σ)] of Lemma A.1 are canonical.

    Three engines: [`Indexed] (default) runs the semi-naive saturation of
    [lib/engine]; [`Parallel n] is the same saturation with each pass's
    trigger matching fanned out over [n] domains and merged back
    deterministically — byte-identical to [`Indexed] in every observable
    output (see {!Engine.Parallel}); [`Naive] is the original
    re-enumerating loop, kept for the ablation benchmarks. All produce
    the same s-levels (and the same instance up to null renaming), and
    all honour the same budget cut points, so budgeted runs agree level
    by level too.

    Observability: a run is bounded by an {!Obs.Budget.t} (facts, levels,
    wall-clock deadline) — on violation the partial instance is returned
    with {!outcome}[ = Partial _] instead of the chase looping forever on
    a non-terminating program. Spans nest under [?obs]; {!report}
    assembles the deterministic JSON run report the CLI writes for
    [--stats]. *)

open Relational

type result

type policy =
  | Oblivious  (** the paper's semantics: fire regardless of the head *)
  | Restricted  (** skip triggers whose head is already satisfied *)

type engine = [ `Naive | `Indexed | `Parallel of int ]

(** The chase state at a {e clean pass boundary} — a pass that completed
    without a budget violation (including the final, saturation-
    discovering pass). Engine-agnostic: the facts with their s-levels
    determine the continuation under either engine (the semi-naive delta
    is the last level; the naive fired-trigger set is reconstructible
    from levels ≤ [snap_level] − 1), so a checkpoint written by
    [`Indexed] can be resumed by [`Naive] — this is how the supervisor
    degrades engines without losing progress. The scalar totals let a
    resumed run report the same statistics as an uninterrupted one;
    [snap_null_count] pins the fresh-null supply so resuming in another
    process never re-issues a null id used by the snapshot. *)
type snapshot = {
  snap_engine : engine;
  snap_policy : policy;
  snap_level : int;  (** last completed pass = highest s-level *)
  snap_saturated : bool;
  snap_null_count : int;  (** {!Term.null_count} at the boundary *)
  snap_triggers_fired : int;
  snap_triggers_dismissed : int;
  snap_facts : (Fact.t * int) list;  (** every fact with its s-level *)
  snap_counters : (string * int) list;  (** index metrics; [[]] after naive *)
}

(** [run ?engine ?policy ?max_level ?max_facts ?budget ?obs ?on_pass
    sigma db] — chase until saturation or until the strictest of
    [{max_level, max_facts}] and [budget] cuts the run.

    [on_pass ~level ~saturated take] is called after every clean pass
    boundary; [take ()] materialises a {!snapshot} of the state at that
    boundary (pay-per-use — not calling the thunk costs nothing).

    [on_fire] is called once per fired trigger, in the deterministic
    firing order, after the trigger's whole head has landed — the hook
    {!Incr}'s derivation ledger records support with. Requires an
    indexed-family engine; [`Naive] raises [Invalid_argument]. *)
val run :
  ?engine:engine ->
  ?policy:policy ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  ?on_pass:(level:int -> saturated:bool -> (unit -> snapshot) -> unit) ->
  ?on_fire:(Engine.Saturate.firing -> unit) ->
  Tgd.t list ->
  Instance.t ->
  result

(** [resume ?engine … sigma snapshot] — continue a chase from a
    checkpointed boundary as if never interrupted: the continuation fires
    the same per-pass trigger sets as the uninterrupted run, so the final
    result agrees on facts (up to renaming of nulls invented after the
    boundary), s-levels, trigger totals, and outcome. [sigma] and the
    effective budget must match the original run; the policy is the
    snapshot's. [engine] defaults to the snapshot's engine and may be
    overridden (checkpoints are engine-agnostic). Side effect: the
    global null supply is reset to [snap_null_count]. *)
val resume :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  ?on_pass:(level:int -> saturated:bool -> (unit -> snapshot) -> unit) ->
  ?on_fire:(Engine.Saturate.firing -> unit) ->
  Tgd.t list ->
  snapshot ->
  result

(** The chased instance. *)
val instance : result -> Instance.t

(** No unfired trigger remained — the chase terminated. *)
val saturated : result -> bool

(** Why the run stopped: [Complete] (saturated, or an explicit
    [max_level]/[max_facts] bound was never hit… i.e. no budget fired) or
    [Partial violation]. *)
val outcome : result -> Obs.Budget.outcome

(** The chased instance as an indexed store (the engine's own store when
    the run was indexed; built on demand after a naive run). *)
val index : result -> Engine.Index.t

(** The saturation-engine result ([None] after a naive run). *)
val engine_result : result -> Engine.Saturate.result option

(** New facts at levels 1, 2, … (computed from the s-levels; works for
    both engines). *)
val facts_per_level : result -> int list

(** Highest level reached. *)
val max_level : result -> int

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    ([chase^l_s(D,Σ)] when the run reached level [l]). *)
val up_to_level : result -> int -> Instance.t

(** The s-level of a fact of the result. *)
val level : result -> Fact.t -> int option

(** The ground part [chase↓]: facts without invented nulls. *)
val ground_part : result -> Instance.t

(** [report ?name r] — the run report: outcome, saturation flag, fact
    counts per level, trigger totals, the index/joiner counters and the
    span tree. Deterministic modulo timing floats. *)
val report : ?name:string -> result -> Obs.Report.t

(** Chase and return the instance. *)
val chase :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** [certain ?max_level sigma db q c̄] — sound bounded check of
    [c̄ ∈ q(chase(db,sigma))] (Proposition 3.1); the boolean reports
    whether the run saturated (verdict then exact). *)
val certain :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool
