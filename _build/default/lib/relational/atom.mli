(** Relational atoms [R(t1,…,tn)] over terms. *)

type t

val make : string -> Term.t list -> t
val pred : t -> string
val args : t -> Term.t list
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** Variables of the atom (deduplicated). *)
val vars : t -> Term.VarSet.t

val consts : t -> Term.ConstSet.t
val is_ground : t -> bool

(** [apply subst a] substitutes variables by terms; unmapped variables are
    left in place. *)
val apply : Term.t Term.VarMap.t -> t -> t

(** [rename_consts f a] maps every constant through [f] (identity when
    [f] returns [None]). *)
val rename_consts : (Term.const -> Term.const option) -> t -> t

(** Declared schema entry of the atom. *)
val schema_entry : t -> string * int

val pp : Format.formatter -> t -> unit
