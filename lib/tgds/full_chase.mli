(** Terminating chase for full TGDs (Lemma A.4's fast path). *)

open Relational

(** [run ?engine ?budget ?obs sigma db] — the finite chase together with
    the run's outcome ([Partial _] when the budget cut it); raises
    [Invalid_argument] on non-full TGDs. [`Indexed] (default) runs the
    semi-naive engine; [`Parallel n] the same engine with matching fanned
    out over [n] domains (identical output); [`Naive] the original
    re-enumerating loop (its rounds count as budget levels). *)
val run :
  ?engine:[ `Naive | `Indexed | `Parallel of int ] ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t * Obs.Budget.outcome

(** {!run} without the outcome. *)
val saturate :
  ?engine:[ `Naive | `Indexed | `Parallel of int ] ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** Exact UCQ certain answering over a full TGD set. *)
val entails : Tgd.t list -> Instance.t -> Ucq.t -> Term.const list -> bool

(** Boolean variant. *)
val holds : Tgd.t list -> Instance.t -> Ucq.t -> bool

(** The Lemma A.4 size bound [|D| · |T| · ar(T)^ar(T)]. *)
val size_bound : Tgd.t list -> Instance.t -> int
