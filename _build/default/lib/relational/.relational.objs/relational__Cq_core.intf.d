lib/relational/cq_core.mli: Cq Ucq
