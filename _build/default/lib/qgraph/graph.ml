(** Finite undirected graphs over integer vertices.

    Vertices are arbitrary integers; the structure is an adjacency map. Self
    loops are ignored on insertion (Gaifman graphs have none, cf. §2 of the
    paper). The module is purely functional. *)

module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type t = { adj : ISet.t IMap.t }

let empty = { adj = IMap.empty }

(** [add_vertex g v] ensures [v] is a vertex of [g]. *)
let add_vertex g v =
  if IMap.mem v g.adj then g else { adj = IMap.add v ISet.empty g.adj }

(** [add_edge g u v] adds the undirected edge [{u,v}]; a self loop is a
    no-op beyond registering the vertex. *)
let add_edge g u v =
  let g = add_vertex (add_vertex g u) v in
  if u = v then g
  else
    let adj =
      g.adj
      |> IMap.add u (ISet.add v (IMap.find u g.adj))
      |> fun adj -> IMap.add v (ISet.add u (IMap.find v adj)) adj
    in
    { adj }

let of_edges edges = List.fold_left (fun g (u, v) -> add_edge g u v) empty edges

let of_vertices_edges vertices edges =
  let g = List.fold_left add_vertex empty vertices in
  List.fold_left (fun g (u, v) -> add_edge g u v) g edges

let vertices g = IMap.fold (fun v _ acc -> v :: acc) g.adj [] |> List.rev
let vertex_set g = IMap.fold (fun v _ acc -> ISet.add v acc) g.adj ISet.empty
let num_vertices g = IMap.cardinal g.adj
let mem_vertex g v = IMap.mem v g.adj

let neighbors g v =
  match IMap.find_opt v g.adj with Some s -> s | None -> ISet.empty

let degree g v = ISet.cardinal (neighbors g v)
let mem_edge g u v = ISet.mem v (neighbors g u)

(** Edges with [u < v], each listed once. *)
let edges g =
  IMap.fold
    (fun u nbrs acc ->
      ISet.fold (fun v acc -> if u < v then (u, v) :: acc else acc) nbrs acc)
    g.adj []
  |> List.rev

let num_edges g = List.length (edges g)

(** [induced g vs] is the subgraph of [g] induced by the vertex set [vs]. *)
let induced g vs =
  let adj =
    IMap.filter_map
      (fun v nbrs -> if ISet.mem v vs then Some (ISet.inter nbrs vs) else None)
      g.adj
  in
  { adj }

(** [remove_vertex g v] deletes [v] and all incident edges. *)
let remove_vertex g v =
  let adj = IMap.remove v g.adj in
  { adj = IMap.map (fun nbrs -> ISet.remove v nbrs) adj }

(** Connected component containing [v]. *)
let component g v =
  let rec bfs seen = function
    | [] -> seen
    | u :: rest ->
        if ISet.mem u seen then bfs seen rest
        else
          let seen = ISet.add u seen in
          bfs seen (ISet.elements (neighbors g u) @ rest)
  in
  bfs ISet.empty [ v ]

(** All connected components, as vertex sets. *)
let components g =
  let rec go remaining acc =
    match ISet.choose_opt remaining with
    | None -> List.rev acc
    | Some v ->
        let c = component g v in
        go (ISet.diff remaining c) (c :: acc)
  in
  go (vertex_set g) []

let is_connected g = num_vertices g <= 1 || List.length (components g) = 1

(** [is_clique g vs] holds iff every two distinct vertices of [vs] are
    adjacent in [g]. *)
let is_clique g vs =
  ISet.for_all
    (fun u -> ISet.for_all (fun v -> u = v || mem_edge g u v) vs)
    vs

(** [grid k l] is the [k × l] grid of the paper (§6): vertices are encoded
    as [i * l + j] for [1 ≤ i ≤ k], [1 ≤ j ≤ l] (0-based internally), with
    an edge between cells at Manhattan distance one. *)
let grid k l =
  let v i j = (i * l) + j in
  let g = ref empty in
  for i = 0 to k - 1 do
    for j = 0 to l - 1 do
      g := add_vertex !g (v i j);
      if i + 1 < k then g := add_edge !g (v i j) (v (i + 1) j);
      if j + 1 < l then g := add_edge !g (v i j) (v i (j + 1))
    done
  done;
  !g

(** Complete graph on vertices [0..n-1]. *)
let complete n =
  let g = ref empty in
  for i = 0 to n - 1 do
    g := add_vertex !g i;
    for j = i + 1 to n - 1 do
      g := add_edge !g i j
    done
  done;
  !g

(** Simple path on vertices [0..n-1]. *)
let path n =
  let g = ref (add_vertex empty 0) in
  for i = 0 to n - 2 do
    g := add_edge !g i (i + 1)
  done;
  if n > 0 then g := add_vertex !g (n - 1);
  !g

(** Cycle on vertices [0..n-1] (n ≥ 3). *)
let cycle n =
  let g = ref (path n) in
  if n >= 3 then g := add_edge !g (n - 1) 0;
  !g

(** [has_clique g k] decides whether [g] contains a clique of [k] vertices
    (simple backtracking; used as the ground truth for p-Clique tests). *)
let has_clique g k =
  let vs = vertices g in
  let rec extend chosen candidates k =
    if k = 0 then true
    else
      List.exists
        (fun v ->
          let nbrs = neighbors g v in
          let candidates' = List.filter (fun u -> u > v && ISet.mem u nbrs) candidates in
          extend (v :: chosen) candidates' (k - 1))
        candidates
  in
  k <= 0 || extend [] vs k

(** Find one [k]-clique if present. *)
let find_clique g k =
  let vs = vertices g in
  let rec extend chosen candidates k =
    if k = 0 then Some (List.rev chosen)
    else
      List.find_map
        (fun v ->
          let nbrs = neighbors g v in
          let candidates' = List.filter (fun u -> u > v && ISet.mem u nbrs) candidates in
          extend (v :: chosen) candidates' (k - 1))
        candidates
  in
  if k <= 0 then Some [] else extend [] vs k

let pp ppf g =
  Fmt.pf ppf "@[<v>graph: %d vertices, %d edges@,%a@]" (num_vertices g)
    (num_edges g)
    (Fmt.list ~sep:Fmt.sp (fun ppf (u, v) -> Fmt.pf ppf "%d--%d" u v))
    (edges g)
