(** Streaming answer enumeration over an indexed fact store.

    The generate-and-test evaluation of a non-Boolean UCQ — materialize
    every [|adom|^arity] candidate tuple and run a full entailment check
    on each — is asymptotically wrong for a system meant to serve answer
    workloads: its cost scales with the domain raised to the query arity,
    not with the output. This module enumerates the answers directly by
    walking the {!Index} posting lists (the worst-case-optimal-join /
    leapfrog line of engines), so the cost scales with the number of
    matches actually found:

    - per disjunct, a backtracking search expands the pending atom with
      the fewest index candidates {e among the atoms still containing an
      unbound answer variable} — answer variables bind as early as
      possible;
    - the moment every answer variable occurring in atoms is bound, the
      remaining (purely existential) atoms are checked for {e
      satisfiability} with {!Joiner.exists_compiled} instead of being
      enumerated — one witness is enough, so a tuple's cost never
      depends on how many homomorphisms support it;
    - duplicate answer bindings are pruned {e during} the search (a
      subtree whose answer variables are all bound to an
      already-emitted tuple is cut), and answers are deduplicated across
      disjuncts into one canonical sorted set;
    - answers are restricted to [universe] (certain-answer semantics:
      tuples range over the active domain of the {e input} database, so
      labelled nulls invented by a chase are never answers — nulls are
      filtered from [universe] on entry);
    - answer variables that occur in no atom of a disjunct range over
      the whole [universe], matching the generate-and-test semantics.

    {2 Interned fast path}

    The search itself runs on interned ints (compiled atoms, flat
    binding environments, an int-tuple seen-set, an answer arena), and a
    request allocates O(query + answers) minor words rather than
    O(search tree) — the property that lets concurrent server domains
    scale instead of serializing on OCaml 5's stop-the-world minor-GC
    barriers. {!ctx} captures the reusable scratch for one consumer
    (build once per worker, reuse across requests); {!run_interned}
    returns answers as id rows that render or count without
    materializing, and {!materialize} converts to the classic sorted
    [const list list] on demand. {!cq}/{!ucq} wrap the two steps for
    one-shot callers and behave exactly as before.

    Observability: [?obs] gains one child span per disjunct (attributes:
    disjunct index, candidates scanned, answers emitted). [?budget] cuts
    the enumeration gracefully mid-stream: the fact axis bounds the
    number of {e answers} emitted, the deadline axis is checked at every
    search node, and a violated budget returns the prefix enumerated so
    far with a [Partial] outcome — the prefix is always a subset of the
    exact answer set. *)

open Relational
open Relational.Term

type result = {
  answers : const list list;
      (** the canonical answer set: sorted, duplicate-free, null-free *)
  outcome : Obs.Budget.outcome;
      (** [Complete], or [Partial v] when [budget] cut the enumeration *)
}

type ctx
(** Reusable evaluation scratch bound to one store and answer universe:
    the compiled universe (null-free, sorted), the cross-disjunct
    seen-set and the answer arena. Create one per consumer ({e never}
    share across domains — a server worker builds one per view) and
    reuse it across requests; each {!run_interned} call resets it. *)

val ctx : universe:ConstSet.t -> Index.t -> ctx
(** [ctx ~universe idx] — build the scratch. Nulls are filtered from
    [universe] here; universe constants unknown to the store are mapped
    to private synthetic ids so enumeration stays all-int. *)

type interned
(** An answer set as interned id rows, in emission order. Counting and
    rendering read it directly; the canonical sorted order is computed
    lazily on first access, so [count] consumers never pay a sort. *)

val run_interned :
  ?budget:Obs.Budget.t -> ?obs:Obs.Span.t -> ctx -> Cq.t list -> interned
(** Enumerate the union of the disjuncts' answers into [ctx]'s arena.
    The result aliases nothing mutable: it remains valid after the next
    request reuses [ctx]. *)

val ucq_interned :
  ?budget:Obs.Budget.t -> ?obs:Obs.Span.t -> ctx -> Ucq.t -> interned

val icount : interned -> int
(** Number of (distinct) answers — no sort, no materialization. *)

val ioutcome : interned -> Obs.Budget.outcome

val iconst : interned -> int -> const
(** Extern one answer cell id. O(1), allocation-free for store ids. *)

val sorted_rows : interned -> int array array
(** The rows in canonical order (the order {!result}[.answers] lists
    them), computed on first call and cached. The caller must not
    mutate the returned arrays. *)

val materialize : interned -> result
(** The classic materialized form: sorted, duplicate-free tuples of
    constants. One pass over the rows. *)

val of_answers : const list list -> Obs.Budget.outcome -> interned
(** An interned result over a private symbol assignment — for tests and
    renderers that need an {!interned} without a store. *)

(** [cq ~universe idx q] — the answers of a single conjunctive query over
    the store. *)
val cq :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  universe:ConstSet.t ->
  Index.t ->
  Cq.t ->
  result

(** [ucq ~universe idx u] — the union of the disjuncts' answers,
    deduplicated into one canonical sorted set. The budget spans the
    whole union (the fact axis counts distinct answers across
    disjuncts). *)
val ucq :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  universe:ConstSet.t ->
  Index.t ->
  Ucq.t ->
  result
