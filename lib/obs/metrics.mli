(** Monotonic counters and duration histograms.

    A registry holds named counters (monotonically increasing integers)
    and named histograms of durations in seconds (fixed log-spaced
    buckets from 1µs to 10s plus an overflow bucket). Hot paths obtain a
    {!counter} handle once and bump it without further lookups.

    Serialisation is deterministic: {!to_json} sorts entries by name. *)

type t

(** A registered counter: an increment is one memory write. *)
type counter

val create : unit -> t

(** [counter m name] — find or register the counter [name]. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** [count m name] — current value of [name] (0 when unregistered). *)
val count : t -> string -> int

(** [observe m name seconds] — record a duration in histogram [name]. *)
val observe : t -> string -> float -> unit

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** [absorb ~into src] — add every counter of [src] into [into]
    (registering missing names; histograms are not merged). The parallel
    engine drains shard-local registries through this, in shard order, so
    the merged totals are reproducible. *)
val absorb : into:t -> t -> unit

type summary = {
  count : int;
  sum : float;
  min : float;  (** 0 when empty *)
  max : float;
  buckets : (float * int) list;  (** non-empty buckets: upper bound, hits *)
}

(** All histograms, sorted by name. *)
val histograms : t -> (string * summary) list

(** [{"counters": {...}, "histograms": {...}}], names sorted. *)
val to_json : t -> Json.t
