(** Open-world OMQ evaluation (§3.1).

    Three engines:

    - {!certain}: the baseline of Proposition 3.1 — evaluate the UCQ over a
      level-bounded oblivious chase of the input database.
    - {!certain_fpt}: the FPT algorithm of Proposition 3.3(3) for guarded
      ontologies — linearize (Lemma A.3), chase the linear set level-bounded
      (Lemma A.1) and evaluate with the bounded-treewidth evaluator of
      Proposition 2.1 when the UCQ is tree-like.
    - {!certain_atomic}: exact evaluation of atomic queries over ground
      tuples for guarded ontologies via the ground closure (always
      terminating, polynomial in the data for fixed Σ).

    UCQ checks over chased instances run through the indexed joiner
    ([Engine.Joiner]): the chase already hands back its fact store, so no
    relation is rescanned per query atom.

    Observability: every engine takes [?budget] (forwarded to the chase,
    which then stops gracefully instead of looping) and [?obs] — the
    pipeline phases land as child spans ([rewrite] for the linearization,
    [chase] from the chase itself, [match] for query evaluation). *)

open Relational
module Chase = Tgds.Chase

type verdict = {
  holds : bool;  (** the tuple is a certain answer (as far as the run saw) *)
  exact : bool;  (** the verdict is known to be exact (saturation reached) *)
}

(** Baseline engine: chase then evaluate (Proposition 3.1). [exact] is true
    iff the chase saturated, in which case the verdict is definitive in both
    directions; a [holds = true] verdict is always sound. *)
let certain ?(max_level = 8) ?max_facts ?budget ?obs (q : Omq.t) db tuple =
  if not (Omq.accepts_database q db) then
    invalid_arg "Omq_eval.certain: not a database over the data schema";
  let r = Chase.run ~max_level ?max_facts ?budget ?obs (Omq.ontology q) db in
  let holds =
    Obs.Span.timed obs "match" @@ fun () ->
    Engine.Joiner.entails_ucq (Chase.index r) (Omq.query q) tuple
  in
  { holds; exact = Chase.saturated r }

(** The FPT pipeline of Proposition 3.3(3): requires [Σ ∈ G]. The data-side
    work is polynomial (building [D*] via the ground closure and chasing
    the linear [Σ*] to a level depending only on [Q]); the query-side work
    is the type exploration, independent of the data. *)
let certain_fpt ?(max_level = 10) ?max_facts ?max_types ?budget ?obs
    (q : Omq.t) db tuple =
  if not (Omq.in_guarded q) then
    invalid_arg "Omq_eval.certain_fpt: ontology must be guarded";
  if not (Omq.accepts_database q db) then
    invalid_arg "Omq_eval.certain_fpt: not a database over the data schema";
  let lin =
    Obs.Span.timed obs "rewrite" @@ fun () ->
    Tgds.Linearize.make ?max_types (Omq.ontology q) db
  in
  let r = Chase.run ~max_level ?max_facts ?budget ?obs
      lin.Tgds.Linearize.sigma_star lin.Tgds.Linearize.db_star in
  let ucq = Omq.query q in
  let holds =
    Obs.Span.timed obs "match" @@ fun () ->
    if Ucq.in_ucqk 2 ucq then Tw_eval.entails_ucq (Chase.instance r) ucq tuple
    else Engine.Joiner.entails_ucq (Chase.index r) ucq tuple
  in
  { holds; exact = Chase.saturated r && lin.Tgds.Linearize.complete }

(** Exact certain answering of an atomic ground query under a guarded
    ontology, via the ground closure. *)
let certain_atomic (ontology : Tgds.Tgd.t list) db (fact : Fact.t) =
  Tgds.Ground_closure.entails_atom ontology db fact

(* ------------------------------------------------------------------ *)
(* Answer enumeration                                                    *)
(* ------------------------------------------------------------------ *)

type answer_set = {
  tuples : Term.const list list;
  exact : bool;
  outcome : Obs.Budget.outcome;
}

(* [timed] without losing the span: the "match" child is handed to the
   enumerator so the per-disjunct spans nest under it. *)
let in_match_span obs f =
  match obs with
  | None -> f None
  | Some parent ->
      let sp = Obs.Span.enter parent "match" in
      Fun.protect ~finally:(fun () -> Obs.Span.exit sp) (fun () -> f (Some sp))

(** [answer_set q db] — the certain answers over tuples of the active
    domain, enumerated output-sensitively from the chased index
    ({!Engine.Enumerate}) instead of entailment-testing the
    [|adom|^arity] cross product. [fpt] routes through the linearization
    of Proposition 3.3(3) (requires [Σ ∈ G]). The budget bounds the chase
    {e and} the enumeration (fact axis = emitted answers); a cut run
    returns a sound prefix with [outcome = Partial _]. *)
let answer_set ?engine ?(fpt = false) ?max_level ?max_facts ?max_types ?budget
    ?obs (q : Omq.t) db =
  let r, rewrite_complete =
    if fpt then begin
      if not (Omq.in_guarded q) then
        invalid_arg "Omq_eval.answer_set: fpt requires a guarded ontology";
      let lin =
        Obs.Span.timed obs "rewrite" @@ fun () ->
        Tgds.Linearize.make ?max_types (Omq.ontology q) db
      in
      ( Chase.run ?engine
          ~max_level:(Option.value max_level ~default:10)
          ?max_facts ?budget ?obs lin.Tgds.Linearize.sigma_star
          lin.Tgds.Linearize.db_star,
        lin.Tgds.Linearize.complete )
    end
    else
      ( Chase.run ?engine
          ~max_level:(Option.value max_level ~default:8)
          ?max_facts ?budget ?obs (Omq.ontology q) db,
        true )
  in
  let er =
    in_match_span obs @@ fun sp ->
    Engine.Enumerate.ucq ?budget ?obs:sp ~universe:(Instance.dom db)
      (Chase.index r) (Omq.query q)
  in
  let enum_complete =
    match er.Engine.Enumerate.outcome with
    | Obs.Budget.Complete -> true
    | Obs.Budget.Partial _ -> false
  in
  let outcome =
    match Chase.outcome r with
    | Obs.Budget.Partial _ as o -> o
    | Obs.Budget.Complete -> er.Engine.Enumerate.outcome
  in
  {
    tuples = er.Engine.Enumerate.answers;
    exact = Chase.saturated r && rewrite_complete && enum_complete;
    outcome;
  }

(** [answers ?max_level q db] — the certain answers over tuples of the
    active domain (sound; exact when the chase saturates). Compatibility
    wrapper around {!answer_set}; the set is canonical (sorted,
    duplicate-free). *)
let answers ?max_level ?max_facts ?budget ?obs (q : Omq.t) db =
  let r = answer_set ?max_level ?max_facts ?budget ?obs q db in
  (r.tuples, r.exact)
