lib/core/tw_eval.mli: Cq Instance Relational Term Ucq
