lib/core/omq.ml: Fmt Instance List Relational Schema Tgds Ucq
