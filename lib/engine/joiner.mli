(** Index-aware homomorphism matching.

    Generalizes {!Relational.Homomorphism.fold_homs} to run against an
    {!Index} instead of a plain instance: at every step of the
    backtracking search the next atom is the one with the fewest
    candidate tuples, where candidate counts come from posting-list sizes
    (leapfrog-style cheapest-first ordering) rather than from scanning
    whole relations.

    [?delta] is the semi-naive hook: when given, the {e first} atom of
    the list is matched against the delta facts only (those whose
    predicate agrees), while the remaining atoms run against the full
    index. {!Saturate} pivots each body atom through the delta in turn to
    enumerate exactly the triggers that involve a fact of the last
    level.

    Every search files [joiner.candidates] (candidate tuples examined)
    and [joiner.backtracks] (failed positional matches) into the metrics
    registry of the index it runs against ({!Index.metrics}). *)

open Relational
open Relational.Term

type binding = Homomorphism.binding

(** [fold ?probe ?injective ?init ?delta atoms idx f acc] — fold [f] over
    every homomorphism from [atoms] into the index extending [init].
    [?probe] (default [true]) controls the ["engine.join"] {!Obs.Probe}
    hit at entry; worker domains pass [false] because the probe hook is a
    process-global and must only fire on the main domain. *)
val fold :
  ?probe:bool ->
  ?injective:bool ->
  ?init:binding ->
  ?delta:Fact.t list ->
  Atom.t list ->
  Index.t ->
  (binding -> 'a -> 'a) ->
  'a ->
  'a

(** First homomorphism, if any. [?probe] as in {!fold} — callers issuing
    many small satisfiability checks (e.g. {!Enumerate}'s per-answer
    witness) pass [false] so ["engine.join"] meters joins, not answers. *)
val find :
  ?probe:bool -> ?injective:bool -> ?init:binding -> ?delta:Fact.t list ->
  Atom.t list -> Index.t -> binding option

val exists :
  ?probe:bool -> ?injective:bool -> ?init:binding -> ?delta:Fact.t list ->
  Atom.t list -> Index.t -> bool

(** [exists_compiled idx atoms ~benv lo n] — [exists ~probe:false] over
    the compiled segment [atoms.(lo..n)) ] with the bindings of [benv]
    as the initial assignment: is there an extension matching every
    atom of the segment? Node-for-node identical to the uncompiled
    search (selection, pending order, [joiner.*] and [index.probes]
    accounting), but allocation-free on the candidate path. [atoms] is
    reordered in place during the search and restored before returning;
    [benv] is unchanged on return. Non-injective, no delta, no
    ["engine.join"] probe — the enumerator's witness-check shape. *)
val exists_compiled : Index.t -> Index.catom array -> benv:int array -> int -> int -> bool

(** All homomorphisms (exponentially many in general). *)
val all :
  ?injective:bool -> ?init:binding -> ?delta:Fact.t list ->
  Atom.t list -> Index.t -> binding list

(* ------------------------------------------------------------------ *)
(* Query evaluation over an index                                       *)
(* ------------------------------------------------------------------ *)

(** [entails_cq idx q c̄] — is [c̄ ∈ q(I)] for the indexed instance [I]?
    (the candidate answer pre-binds the answer variables, as in §2). *)
val entails_cq : Index.t -> Cq.t -> const list -> bool

(** Boolean entailment [I ⊨ q]. *)
val holds_cq : Index.t -> Cq.t -> bool

(** [answers_cq idx q] — the evaluation [q(I)], deduplicated. *)
val answers_cq : Index.t -> Cq.t -> const list list

(** UCQ variants: some disjunct entails. *)
val entails_ucq : Index.t -> Ucq.t -> const list -> bool

val holds_ucq : Index.t -> Ucq.t -> bool
val answers_ucq : Index.t -> Ucq.t -> const list list
