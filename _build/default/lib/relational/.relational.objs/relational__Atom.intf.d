lib/relational/atom.mli: Format Term
