(** The paper's fpt-reductions, executable end to end: OMQ → CQS
    (Proposition 5.8), p-Clique → CQS evaluation (Theorem 5.13 via
    Theorem 7.1, and Grohe's Theorem 4.1 as the Σ = ∅ case), the
    demonstrative p-Clique → OMQ evaluation case of Theorem 5.4, and the
    Boolean-CQ-to-FG embedding of Proposition 3.3(2). *)

open Relational

(** [omq_to_cqs ?n omq db] — the database [D*] of Lemma 6.8:
    [D⁺ ∪ ⋃_ā M(D⁺|ā, Σ, n)] over the maximal guarded sets of [D⁺].
    Guarded ontologies only. [D* ⊨ Σ] and open-world = closed-world
    answers on [D*]. *)
val omq_to_cqs : ?n:int -> Omq.t -> Instance.t -> Instance.t

type lemma72 = {
  cqs : Cqs.t;
  p : Cq.t;  (** Σ-equivalent minimization of the query *)
  p' : Cq.t;  (** Σ-satisfying extension: [D[p'] ⊨ Σ], [D[p] ⊆ D[p']] *)
  x : Term.VarSet.t;  (** the grid-carrying variable set *)
}

(** Compute the Lemma 7.2 companion data greedily, with dynamic
    verification of its properties (single-CQ queries). *)
val lemma_7_2_data : ?n:int -> Cqs.t -> lemma72

(** Properties (2)–(4) of Lemma 7.2, checked dynamically. *)
val verify_lemma72 : lemma72 -> bool

type clique_instance = {
  data : lemma72;
  k : int;
  graph : Qgraph.Graph.t;
  d_star : Grohe.built;
}

(** Build the Theorem 7.1 reduction database; [None] when no [k × K]-grid
    minor is found in [G^p|X]. *)
val clique_to_cqs : lemma72 -> graph:Qgraph.Graph.t -> k:int -> clique_instance option

(** Evaluate the CQS query on [D*]: holds iff the graph has a [k]-clique
    (Lemma 7.3). *)
val decide_clique : clique_instance -> bool

type omq_clique_instance = {
  omq : Omq.t;
  ok : int;
  ograph : Qgraph.Graph.t;
  o_dg : Grohe.built;
}

(** The Theorem 5.4 reduction in its demonstrative case (Σ ∈ G ∩ FULL,
    full data schema, Boolean single-CQ query); see the implementation
    notes for what the general case additionally needs. *)
val clique_to_omq :
  Omq.t -> graph:Qgraph.Graph.t -> k:int -> omq_clique_instance option

(** Evaluate the OMQ on [D_G] (exact: the chase of a full set is
    finite). *)
val decide_omq_clique : omq_clique_instance -> bool

(** Proposition 3.3(2): a Boolean CQ as a frontier-guarded OMQ with an
    atomic query; [D ⊨ q] iff [() ∈ Q(D)]. *)
val bcq_to_fg_omq : Cq.t -> Omq.t

(** Grohe's Theorem 4.1 case: [Σ = ∅], [p = core(q)], [p′ = p], [X] the
    core's existential variables. *)
val constraint_free_instance : Cq.t -> lemma72
