(** Checkpoint (de)serialisation; see the interface for the schema. *)

open Relational
module J = Obs.Json

type t = Tgds.Chase.snapshot

let schema = "guarded-chase-checkpoint"
let version = 1

(* The domain count of [`Parallel n] is an execution tuning knob, not
   logical state — the parallel engine's output is byte-identical for
   every [n] — so checkpoints record only the engine family. This keeps
   checkpoint files byte-identical across domain counts; a loaded
   "parallel" checkpoint resumes with the machine's recommended count. *)
let engine_to_string = function
  | `Indexed -> "indexed"
  | `Naive -> "naive"
  | `Parallel _ -> "parallel"

let engine_of_string = function
  | "indexed" -> Ok `Indexed
  | "naive" -> Ok `Naive
  | "parallel" -> Ok (`Parallel (Domain.recommended_domain_count ()))
  | s -> Error (Printf.sprintf "checkpoint: unknown engine %S" s)

let policy_to_string = function
  | Tgds.Chase.Oblivious -> "oblivious"
  | Tgds.Chase.Restricted -> "restricted"

let policy_of_string = function
  | "oblivious" -> Ok Tgds.Chase.Oblivious
  | "restricted" -> Ok Tgds.Chase.Restricted
  | s -> Error (Printf.sprintf "checkpoint: unknown policy %S" s)

let const_to_json = function
  | Term.Named s -> J.String s
  | Term.Null i -> J.Obj [ ("n", J.Int i) ]

let const_of_json = function
  | J.String s -> Ok (Term.Named s)
  | J.Obj [ ("n", J.Int i) ] -> Ok (Term.Null i)
  | j -> Error (Printf.sprintf "checkpoint: bad constant %s" (J.to_string j))

let fact_to_json (f, l) =
  J.Obj
    [
      ("p", J.String (Fact.pred f));
      ("l", J.Int l);
      ("a", J.List (List.map const_to_json (Fact.args f)));
    ]

let fact_of_json j =
  match (J.member "p" j, J.member "l" j, J.member "a" j) with
  | Some (J.String p), Some (J.Int l), Some (J.List args) ->
      let rec decode acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
            match const_of_json a with
            | Ok c -> decode (c :: acc) rest
            | Error _ as e -> e)
      in
      Result.map (fun args -> (Fact.make p args, l)) (decode [] args)
  | _ -> Error (Printf.sprintf "checkpoint: bad fact %s" (J.to_string j))

let to_json (s : t) =
  let facts =
    List.sort
      (fun (f1, l1) (f2, l2) ->
        match compare (l1 : int) l2 with 0 -> Fact.compare f1 f2 | c -> c)
      s.Tgds.Chase.snap_facts
  in
  let counters =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      s.Tgds.Chase.snap_counters
  in
  J.Obj
    [
      ("schema", J.String schema);
      ("version", J.Int version);
      ("engine", J.String (engine_to_string s.Tgds.Chase.snap_engine));
      ("policy", J.String (policy_to_string s.Tgds.Chase.snap_policy));
      ("level", J.Int s.Tgds.Chase.snap_level);
      ("saturated", J.Bool s.Tgds.Chase.snap_saturated);
      ("null_count", J.Int s.Tgds.Chase.snap_null_count);
      ("triggers_fired", J.Int s.Tgds.Chase.snap_triggers_fired);
      ("triggers_dismissed", J.Int s.Tgds.Chase.snap_triggers_dismissed);
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters));
      ("facts", J.List (List.map fact_to_json facts));
    ]

let ( let* ) = Result.bind

let field name extract j =
  match Option.map extract (J.member name j) with
  | Some (Some v) -> Ok v
  | _ -> Error (Printf.sprintf "checkpoint: missing or bad field %S" name)

let int_f = function J.Int i -> Some i | _ -> None
let str_f = function J.String s -> Some s | _ -> None
let bool_f = function J.Bool b -> Some b | _ -> None

let of_json j =
  let* sch = field "schema" str_f j in
  let* () =
    if sch = schema then Ok ()
    else Error (Printf.sprintf "checkpoint: unknown schema %S" sch)
  in
  let* ver = field "version" int_f j in
  let* () =
    if ver = version then Ok ()
    else Error (Printf.sprintf "checkpoint: unsupported version %d" ver)
  in
  let* engine = Result.bind (field "engine" str_f j) engine_of_string in
  let* policy = Result.bind (field "policy" str_f j) policy_of_string in
  let* level = field "level" int_f j in
  let* saturated = field "saturated" bool_f j in
  let* null_count = field "null_count" int_f j in
  let* fired = field "triggers_fired" int_f j in
  let* dismissed = field "triggers_dismissed" int_f j in
  let* counters =
    match J.member "counters" j with
    | Some (J.Obj kvs) ->
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | (k, J.Int v) :: rest -> decode ((k, v) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "checkpoint: bad counter %S" k)
        in
        decode [] kvs
    | _ -> Error "checkpoint: missing or bad field \"counters\""
  in
  let* facts =
    match J.member "facts" j with
    | Some (J.List fs) ->
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest -> (
              match fact_of_json f with
              | Ok fl -> decode (fl :: acc) rest
              | Error _ as e -> e)
        in
        decode [] fs
    | _ -> Error "checkpoint: missing or bad field \"facts\""
  in
  Ok
    {
      Tgds.Chase.snap_engine = engine;
      snap_policy = policy;
      snap_level = level;
      snap_saturated = saturated;
      snap_null_count = null_count;
      snap_triggers_fired = fired;
      snap_triggers_dismissed = dismissed;
      snap_facts = facts;
      snap_counters = counters;
    }

let save path (s : t) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> J.to_channel oc (to_json s));
  Sys.rename tmp path

type error = Io of string | Corrupt of string

let error_message = function Io msg -> msg | Corrupt msg -> msg

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Io (Printf.sprintf "checkpoint: %s" msg))
  | contents -> (
      match Result.bind (J.parse contents) of_json with
      | Ok s -> Ok s
      | Error msg ->
          let msg =
            if String.length msg >= 11 && String.sub msg 0 11 = "checkpoint:"
            then msg
            else Printf.sprintf "checkpoint: %s" msg
          in
          Error (Corrupt (Printf.sprintf "%s (%s)" msg path)))
