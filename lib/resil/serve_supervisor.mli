(** Per-mutation supervision for the [serve] maintenance loop.

    {!Supervisor} wraps a whole chase; this wraps {e one mutation}
    against a maintained {!Incr} store, because a serve loop must
    survive a poisoned mutation without losing the store. Each failed
    attempt climbs a typed degradation ladder:

    - {b Repair} — the fault left the store clean (the
      [incr.insert]/[incr.delete] probes fire before the first state
      change, and {!Incr.dirty} tracks interruption): apply again in
      place, the incremental repair path;
    - {b Rederive} — the store is (or was left) dirty: restore the
      pre-mutation state via [restore] (an exact {!Incr.image} plus a
      bounded replay of the mutations since — guardedness bounds what
      the replay re-derives) and apply again;
    - {b Rechase} — last rung: rebuild the whole store by a fresh chase
      of the pre-mutation base ([rechase]) and apply against that.

    Attempt [k] of [retries] runs on rung Repair for [k = 1], Rechase
    for [k = retries], Rederive in between. After [retries] failures the
    mutation is {e quarantined}: the pre-mutation store is restored and
    the caller keeps serving — later mutations still apply — with a
    diagnostic and exit code 1 at the end of the run.

    [restore] and [rechase] run under {!Fault.suspended}: an armed plan
    injects faults into the supervised apply itself, not into the
    recovery machinery, so the same plan yields the same ladder
    transcript whatever the serving engine. No exception escapes except
    {!Fatal} (a violated precondition — deterministic, retrying cannot
    help). *)

type rung = Repair | Rederive | Rechase

(** One attempt of the ladder, in order; a transcript ends with [`Ok]
    (the mutation applied) or all-faults (quarantined). *)
type step = {
  st_attempt : int;  (** 1-based *)
  st_rung : rung;
  st_outcome : [ `Ok | `Fault of string ];
  st_backoff_ms : float;  (** delay slept after a failed attempt *)
}

type outcome =
  | Applied of Incr.effect * step list
      (** the final step is the successful one; a singleton [`Ok]
          transcript is the clean case *)
  | Quarantined of step list * string
      (** all [retries] attempts failed; the diagnostic names the last
          fault. The store has been restored to its pre-mutation state. *)

exception Fatal of string

val rung_to_string : rung -> string

(** [apply ?retries ?backoff_ms ?max_backoff_ms ?sleep ?obs ~restore
    ~rechase ~store op] — run [op] against [!store] under the ladder.
    [store] is updated in place whenever a rung replaces it (restore,
    rechase, quarantine). [retries] (default 3) is the total attempt
    budget; backoff before attempt [k+1] is
    [min max_backoff_ms (backoff_ms·2^(k−1))] (defaults 50/1000 ms). *)
val apply :
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?sleep:(float -> unit) ->
  ?obs:Obs.Span.t ->
  restore:(unit -> Incr.t) ->
  rechase:(Incr.t -> Incr.t) ->
  store:Incr.t ref ->
  Incr.op ->
  outcome
