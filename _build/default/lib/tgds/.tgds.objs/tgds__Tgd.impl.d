lib/tgds/tgd.ml: Atom Cq Fmt Homomorphism List Option Relational Schema Stdlib VarMap VarSet
