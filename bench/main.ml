(* Benchmark harness regenerating every experiment of EXPERIMENTS.md.

   The paper (PODS 2020) is pure theory — no tables or figures — so each
   experiment E1–E12 validates the complexity *shape* asserted by a
   numbered statement (see DESIGN.md §3). Default sizes complete in a
   couple of minutes; pass --full for the larger sweeps recorded in
   EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe                 # all experiments, small sizes
     dune exec bench/main.exe -- e1 e5        # a selection
     dune exec bench/main.exe -- --full       # larger sweeps
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks *)

open Relational
open Guarded_core

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

(* ------------------------------------------------------------------ *)
(* Timing                                                               *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* median of [repeat] runs, in seconds *)
let measure ?(repeat = 3) f =
  let times =
    List.init repeat (fun _ ->
        let _, t = time_once f in
        t)
    |> List.sort compare
  in
  List.nth times (repeat / 2)

let header title statement shape =
  Fmt.pr "@.=== %s ===@." title;
  Fmt.pr "paper: %s@.expected shape: %s@.@." statement shape

let row fmt = Fmt.pr fmt

(* ------------------------------------------------------------------ *)
(* E1 — Proposition 2.1: bounded-treewidth CQ evaluation                *)
(* ------------------------------------------------------------------ *)

let e1 ~full () =
  header "E1: CQ_k evaluation scaling"
    "Proposition 2.1: c in q(D) for q in CQ_k in O(||D||^{k+1}*||q||)"
    "time polynomial in ||D||, roughly linear in ||q||; decomposed ~ naive on paths";
  let sizes = if full then [ 50; 100; 200; 400; 800 ] else [ 50; 100; 200 ] in
  row "  %8s %12s %14s %14s@." "||D||" "query" "tw-eval(s)" "naive(s)";
  List.iter
    (fun n ->
      let db = Workload.path_db ~pred:"X" n in
      List.iter
        (fun (name, q) ->
          let t_tw = measure (fun () -> ignore (Tw_eval.holds db q)) in
          let t_naive = measure (fun () -> ignore (Cq.holds db q)) in
          row "  %8d %12s %14.5f %14.5f@." n name t_tw t_naive)
        [
          ("path-4", Workload.path_cq ~pred:"X" 4);
          ("path-8", Workload.path_cq ~pred:"X" 8);
          ("star-4", Workload.star_cq ~pred:"X" 4);
        ])
    sizes

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 4.1 machinery: evaluation via the core                  *)
(* ------------------------------------------------------------------ *)

let e2 ~full () =
  header "E2: semantically tree-like CQs"
    "Theorem 4.1 / [20]: q in CQ=k iff core(q) in CQ_k; evaluating the core is poly"
    "high-treewidth-looking queries with low-treewidth cores evaluate fast via the core";
  (* a C4 query that folds to one edge, replicated into a wide query *)
  let folding_query m =
    let atoms =
      List.concat_map
        (fun i ->
          let x j = Printf.sprintf "x%d_%d" i j in
          [
            atom "E" [ v (x 1); v (x 2) ];
            atom "E" [ v (x 3); v (x 2) ];
            atom "E" [ v (x 3); v (x 4) ];
            atom "E" [ v (x 1); v (x 4) ];
          ])
        (List.init m Fun.id)
    in
    Cq.make atoms
  in
  let db = Workload.random_binary_db ~dom:(if full then 60 else 25)
      ~size:(if full then 240 else 100) ~seed:3 () in
  row "  %6s %10s %10s %14s %14s %12s@." "copies" "tw(q)" "tw(core)" "naive(s)"
    "via core(s)" "core time(s)";
  List.iter
    (fun m ->
      let q = folding_query m in
      let core, t_core = time_once (fun () -> Cq_core.core q) in
      let t_naive = measure (fun () -> ignore (Cq.holds db q)) in
      let t_via = measure (fun () -> ignore (Cq.holds db core)) in
      row "  %6d %10d %10d %14.5f %14.5f %12.5f@." m (Cq.treewidth q)
        (Cq.treewidth core) t_naive t_via t_core)
    (if full then [ 1; 2; 3; 4 ] else [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* E3 — Proposition 3.3(3): FPT OMQ evaluation                          *)
(* ------------------------------------------------------------------ *)

let e3 ~full () =
  header "E3: FPT evaluation of guarded OMQs"
    "Proposition 3.3(3): (G,UCQ_k) evaluation in ||D||^{O(1)} * f(||Q||)"
    "fixed OMQ, growing data: time grows polynomially (near-linearly) in ||D||";
  let ontology = Workload.university_ontology () in
  let q =
    Ucq.of_cq
      (Cq.make [ atom "Teaches" [ v "x"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ])
  in
  let omq = Omq.full_data_schema ~ontology ~query:q in
  let db_of n =
    Instance.of_facts
      (List.concat_map
         (fun i ->
           [
             fact "Prof" [ "p" ^ string_of_int i ];
             fact "Course" [ "c" ^ string_of_int i ];
           ])
         (List.init n Fun.id))
  in
  let sizes = if full then [ 5; 10; 20; 40; 80 ] else [ 5; 10; 20 ] in
  row "  %8s %14s %14s@." "||D||" "baseline(s)" "fpt-lin(s)";
  List.iter
    (fun n ->
      let db = db_of n in
      let t_base = measure ~repeat:3 (fun () -> ignore (Omq_eval.certain omq db [])) in
      let t_fpt = measure ~repeat:3 (fun () -> ignore (Omq_eval.certain_fpt omq db [])) in
      row "  %8d %14.4f %14.4f@." (Instance.size db) t_base t_fpt)
    sizes

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 5.3: the dichotomy in the parameter                     *)
(* ------------------------------------------------------------------ *)

let e4 ~full () =
  header "E4: bounded vs unbounded treewidth query families"
    "Theorems 5.3/5.7: evaluation is fpt iff the class is UCQk-equivalent for some k"
    "grid family (tw = n): time explodes with n; path family (tw = 1): flat in n";
  let g = if full then 7 else 6 in
  let db = Workload.grid_db g g in
  let ns = if full then [ 2; 3; 4; 5 ] else [ 2; 3; 4 ] in
  row "  %4s %8s %16s %8s %16s@." "n" "tw-grid" "grid query(s)" "tw-path" "path query(s)";
  List.iter
    (fun n ->
      let grid_q = Workload.grid_cq n n in
      let path_q = Workload.path_cq ~pred:"X" (min (g - 1) n) in
      let t_grid = measure ~repeat:1 (fun () -> ignore (Tw_eval.holds db grid_q)) in
      let t_path = measure ~repeat:1 (fun () -> ignore (Tw_eval.holds db path_q)) in
      row "  %4d %8d %16.4f %8d %16.4f@." n (Cq.treewidth grid_q) t_grid
        (Cq.treewidth path_q) t_path)
    ns

(* ------------------------------------------------------------------ *)
(* E5 — Theorems 6.1/7.1/5.13: p-Clique via the reduction               *)
(* ------------------------------------------------------------------ *)

let e5 ~full () =
  header "E5: p-Clique through CQS evaluation"
    "Theorem 5.13 via Theorem 7.1: D* built in f(k)*poly(||G||); decides k-clique"
    "D* size grows polynomially in ||G||; verdicts match direct search";
  let q = Workload.grid_cq 3 3 in
  let d = Reductions.constraint_free_instance q in
  let ns = if full then [ 6; 8; 10; 12; 14 ] else [ 6; 8; 10 ] in
  row "  %4s %8s %10s %12s %12s %10s %10s@." "|V|" "|E|" "D* facts" "build(s)"
    "decide(s)" "via-CQS" "direct";
  List.iter
    (fun n ->
      let graph = Workload.random_graph ~n ~p:0.35 ~seed:(n * 7) in
      match
        time_once (fun () -> Reductions.clique_to_cqs d ~graph ~k:3)
      with
      | None, _ -> row "  %4d: no grid minor@." n
      | Some ci, t_build ->
          let via, t_dec = time_once (fun () -> Reductions.decide_clique ci) in
          let direct = Qgraph.Graph.has_clique graph 3 in
          row "  %4d %8d %10d %12.4f %12.4f %10b %10b@." n
            (Qgraph.Graph.num_edges graph)
            (Instance.size ci.Reductions.d_star.Grohe.db)
            t_build t_dec via direct)
    ns

(* ------------------------------------------------------------------ *)
(* E6 — Proposition 5.8: OMQ -> CQS                                     *)
(* ------------------------------------------------------------------ *)

let e6 ~full () =
  header "E6: the OMQ -> CQS reduction"
    "Proposition 5.8 / Lemma 6.8: D* computable in ||D||^{O(1)}*f(||Q||); answers preserved"
    "build time polynomial in ||D||; open-world = closed-world on D*";
  let sigma = Workload.manager_ontology () in
  let q = Ucq.of_cq (Cq.make [ atom "ReportsTo" [ v "x"; v "m" ]; atom "Managed" [ v "m" ] ]) in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
  let sizes = if full then [ 2; 4; 8; 16 ] else [ 2; 4; 8 ] in
  row "  %8s %10s %12s %10s@." "||D||" "D* facts" "build(s)" "preserved";
  List.iter
    (fun n ->
      let db =
        Instance.of_facts (List.init n (fun i -> fact "Emp" [ "e" ^ string_of_int i ]))
      in
      let d_star, t = time_once (fun () -> Reductions.omq_to_cqs omq db) in
      let open_w = (Omq_eval.certain ~max_level:6 omq db []).Omq_eval.holds in
      let closed_w = Ucq.holds d_star q in
      row "  %8d %10d %12.4f %10b@." n (Instance.size d_star) t (open_w = closed_w))
    sizes

(* ------------------------------------------------------------------ *)
(* E7 — Lemmas A.1/A.2/A.4: chase growth bounds                         *)
(* ------------------------------------------------------------------ *)

let e7 ~full () =
  header "E7: level-bounded chase size vs the Lemma A.2 bound"
    "Lemma A.2: |chase^l| <= |D|*(|S|*H+1)^l for linear S; Lemma A.4: guarded-full chase poly"
    "measured sizes stay below the bound; guarded-full chase ~ linear in |D|";
  let depth = if full then 6 else 4 in
  let sigma = Workload.linear_chain ~depth in
  let db = Instance.of_facts [ fact "R0" [ "a"; "b" ] ] in
  let h = 1 in
  row "  linear chain (depth %d):@." depth;
  row "  %6s %10s %14s@." "level" "facts" "A.2 bound";
  List.iter
    (fun l ->
      let r = Tgds.Chase.run ~max_level:l sigma db in
      let bound =
        float_of_int (Instance.size db)
        *. (float_of_int ((List.length sigma * h) + 1) ** float_of_int l)
      in
      row "  %6d %10d %14.0f@." l (Instance.size (Tgds.Chase.instance r)) bound)
    (List.init depth (fun i -> i + 1));
  row "@.  guarded-full saturation (Lemma A.4):@.";
  row "  %8s %10s %12s %12s@." "||D||" "facts" "bound" "time(s)";
  let gf = Workload.guarded_full_chain ~depth:3 in
  List.iter
    (fun n ->
      let db = Workload.path_db ~pred:"E" n in
      let sat, t = time_once (fun () -> Tgds.Full_chase.saturate gf db) in
      row "  %8d %10d %12d %12.4f@." n (Instance.size sat)
        (Tgds.Full_chase.size_bound gf db) t)
    (if full then [ 20; 40; 80; 160 ] else [ 20; 40; 80 ])

(* ------------------------------------------------------------------ *)
(* E8 — Proposition D.2: UCQ rewriting for linear TGDs                  *)
(* ------------------------------------------------------------------ *)

let e8 ~full () =
  header "E8: UCQ rewriting vs chase for inclusion-dependency chains"
    "Proposition D.2: linear S is UCQ-rewritable: q(chase(D,S)) = q'(D)"
    "rewriting size grows with chain depth; query answering needs no chase";
  let depths = if full then [ 1; 2; 3; 4; 5 ] else [ 1; 2; 3 ] in
  row "  %6s %12s %12s %14s %14s@." "depth" "disjuncts" "rewrite(s)" "eval-rw(s)" "chase-eval(s)";
  List.iter
    (fun depth ->
      let sigma = Workload.linear_chain ~depth in
      let q =
        Ucq.of_cq
          (Cq.make [ atom (Printf.sprintf "R%d" depth) [ v "x"; v "y" ] ])
      in
      let db = Instance.of_facts [ fact "R0" [ "a"; "b" ] ] in
      let (q', _), t_rw = time_once (fun () -> Tgds.Linear_rewrite.rewrite sigma q) in
      let t_eval = measure (fun () -> ignore (Ucq.holds db q')) in
      let t_chase =
        measure ~repeat:1 (fun () ->
            ignore (Tgds.Chase.certain ~max_level:(depth + 1) sigma db q []))
      in
      row "  %6d %12d %12.4f %14.5f %14.5f@." depth
        (List.length (Ucq.disjuncts q'))
        t_rw t_eval t_chase)
    depths

(* ------------------------------------------------------------------ *)
(* E9 — Theorems 5.1/5.6/5.10: the meta problem                         *)
(* ------------------------------------------------------------------ *)

let e9 ~full () =
  header "E9: deciding uniform UCQk-equivalence"
    "Theorems 5.6/5.10: the meta problem via UCQk-approximation + Prop 4.5 containment"
    "cost grows with query size (contraction count); verdicts match the paper's examples";
  let sigma = [ Tgds.Tgd.make ~body:[ atom "R2" [ v "x" ] ] ~head:[ atom "R4" [ v "x" ] ] ] in
  let ex44 =
    Cq.make
      [
        atom "P" [ v "x2"; v "x1" ]; atom "P" [ v "x4"; v "x1" ];
        atom "P" [ v "x2"; v "x3" ]; atom "P" [ v "x4"; v "x3" ];
        atom "R1" [ v "x1" ]; atom "R2" [ v "x2" ];
        atom "R3" [ v "x3" ]; atom "R4" [ v "x4" ];
      ]
  in
  let cases =
    [
      ("example 4.4 + S", sigma, ex44, 1);
      ("example 4.4, no S", [], ex44, 1);
      ("C4 query, no S", [], Workload.grid_cq 2 2, 1);
    ]
    @ if full then [ ("3x3 grid, no S", [], Workload.grid_cq 3 3, 2) ] else []
  in
  row "  %20s %4s %s %12s@." "case" "k" "verdict" "time(s)";
  List.iter
    (fun (name, sg, q, k) ->
      let s = Cqs.make ~constraints:sg ~query:(Ucq.of_cq q) in
      let (verdict, _), t =
        time_once (fun () -> Equivalence.cqs_uniformly_ucqk_equivalent k s)
      in
      row "  %20s %4d %a %12.4f@." name k Sigma_containment.pp_verdict verdict t)
    cases

(* ------------------------------------------------------------------ *)
(* E10 — §3.2 / Theorem 5.7: constraint-aware optimization              *)
(* ------------------------------------------------------------------ *)

let e10 ~full () =
  header "E10: semantic optimization under integrity constraints"
    "§1/§3.2: the promise D |= S licenses removing S-redundant joins"
    "optimized query evaluates faster; answers unchanged on admissible data";
  let constraints = Workload.referential_constraints () in
  let q =
    Ucq.of_cq
      (Cq.make ~answer:[ "l" ]
         [
           atom "Line" [ v "l"; v "o" ];
           atom "Order" [ v "o"; v "c" ];
           atom "Customer" [ v "c" ];
         ])
  in
  let s = Cqs.make ~constraints ~query:q in
  let s_opt, t_opt = time_once (fun () -> Cqs_eval.optimize s) in
  row "  one-time optimization: %.4fs; query %d atoms -> %d atoms@.@." t_opt
    (List.length (Cq.atoms (List.hd (Ucq.disjuncts q))))
    (List.length (Cq.atoms (List.hd (Ucq.disjuncts (Cqs.query s_opt)))));
  let sizes = if full then [ 50; 100; 200; 400 ] else [ 50; 100; 200 ] in
  row "  %8s %14s %14s %10s@." "||D||" "original(s)" "optimized(s)" "agree";
  List.iter
    (fun n ->
      let facts =
        List.concat_map
          (fun i ->
            let c = "c" ^ string_of_int i and o = "o" ^ string_of_int i in
            [ fact "Customer" [ c ]; fact "Order" [ o; c ]; fact "Line" [ "l" ^ string_of_int i; o ] ])
          (List.init n Fun.id)
      in
      let db = Instance.of_facts facts in
      let t1 = measure (fun () -> ignore (Cqs_eval.answers s db)) in
      let t2 = measure (fun () -> ignore (Cqs_eval.answers s_opt db)) in
      let agree = Cqs_eval.answers s db = Cqs_eval.answers s_opt db in
      row "  %8d %14.4f %14.4f %10b@." (Instance.size db) t1 t2 agree)
    sizes

(* ------------------------------------------------------------------ *)
(* E11 — Lemma A.3: linearization                                       *)
(* ------------------------------------------------------------------ *)

let e11 ~full () =
  header "E11: linearization of guarded ontologies"
    "Lemma A.3: D* in ||D||^{O(1)}*f(||Q||); S* independent of the data"
    "type count driven by S, not D; D* grows linearly with D";
  let ontology = Workload.university_ontology () in
  let sizes = if full then [ 4; 8; 16; 32 ] else [ 4; 8; 16 ] in
  row "  %8s %10s %10s %10s %10s@." "||D||" "D* facts" "types" "rules" "time(s)";
  List.iter
    (fun n ->
      let db =
        Instance.of_facts
          (List.init n (fun i -> fact "Prof" [ "p" ^ string_of_int i ]))
      in
      let lin, t = time_once (fun () -> Tgds.Linearize.make ontology db) in
      row "  %8d %10d %10d %10d %10.4f@." n
        (Instance.size lin.Tgds.Linearize.db_star)
        (List.length lin.Tgds.Linearize.types)
        (List.length lin.Tgds.Linearize.sigma_star)
        t)
    sizes

(* ------------------------------------------------------------------ *)
(* E12 — Theorem 6.7: finite witnesses                                  *)
(* ------------------------------------------------------------------ *)

let e12 ~full () =
  header "E12: finite witnesses for strong finite controllability"
    "Definition 6.5 / Theorem 6.7: M(D,S,n) finite, models S, answers <=n-var UCQs like the chase"
    "witness size grows with n; always a model; agreement with the bounded chase";
  let sigma = Workload.manager_ontology () in
  let db = Instance.of_facts [ fact "Emp" [ "eve" ] ] in
  let chase = Tgds.Chase.chase ~max_level:8 sigma db in
  let probes =
    [
      Ucq.of_cq (Cq.make [ atom "ReportsTo" [ v "x"; v "x" ] ]);
      Ucq.of_cq
        (Cq.make [ atom "ReportsTo" [ v "x"; v "y" ]; atom "ReportsTo" [ v "y"; v "x" ] ]);
      Ucq.of_cq (Cq.make [ atom "Managed" [ v "x" ] ]);
    ]
  in
  let ns = if full then [ 1; 2; 3; 4; 5 ] else [ 1; 2; 3 ] in
  row "  %4s %10s %10s %10s %12s@." "n" "|M|" "model" "agrees" "time(s)";
  List.iter
    (fun n ->
      let m, t = time_once (fun () -> Finite_witness.build ~n sigma db) in
      let agrees = List.for_all (fun q -> Ucq.holds m q = Ucq.holds chase q) probes in
      row "  %4d %10d %10b %10b %12.4f@." n (Instance.size m)
        (Finite_witness.verify sigma db m)
        agrees t)
    ns

(* ------------------------------------------------------------------ *)
(* E13 — design-choice ablations (DESIGN.md §4)                         *)
(* ------------------------------------------------------------------ *)

let e13 ~full () =
  header "E13: ablations of the engine's design choices"
    "not a paper claim — validates the implementation choices DESIGN.md calls out"
    "oblivious chase larger than restricted; dynamic atom ordering beats static on joins";
  (* (a) oblivious (paper semantics) vs restricted chase *)
  row "  chase policy (university ontology):@.";
  row "  %8s %14s %14s %12s %12s@." "||D||" "obliv facts" "restr facts"
    "obliv(s)" "restr(s)";
  let sizes = if full then [ 4; 8; 16; 32 ] else [ 4; 8; 16 ] in
  let uni = Workload.university_ontology () in
  List.iter
    (fun n ->
      let db =
        Instance.of_facts
          (List.concat_map
             (fun i ->
               [ fact "Prof" [ "p" ^ string_of_int i ];
                 fact "Teaches" [ "p" ^ string_of_int i; "c" ^ string_of_int i ] ])
             (List.init n Fun.id))
      in
      let ro, to_ =
        time_once (fun () -> Tgds.Chase.run ~policy:Tgds.Chase.Oblivious uni db)
      in
      let rr, tr =
        time_once (fun () -> Tgds.Chase.run ~policy:Tgds.Chase.Restricted uni db)
      in
      row "  %8d %14d %14d %12.4f %12.4f@." (Instance.size db)
        (Instance.size (Tgds.Chase.instance ro))
        (Instance.size (Tgds.Chase.instance rr))
        to_ tr)
    sizes;
  (* (b) homomorphism atom ordering *)
  row "@.  homomorphism search ordering (grid query over grid db):@.";
  row "  %10s %14s %14s@." "query" "dynamic(s)" "static(s)";
  let db = Workload.grid_db (if full then 6 else 5) (if full then 6 else 5) in
  List.iter
    (fun (name, q) ->
      let atoms = Cq.atoms q in
      let t_dyn =
        measure ~repeat:1 (fun () -> ignore (Homomorphism.exists atoms db))
      in
      let t_sta =
        measure ~repeat:1 (fun () ->
            ignore
              (Homomorphism.fold_homs ~ordering:`Static atoms db
                 (fun _ _ -> true)
                 false))
      in
      row "  %10s %14.4f %14.4f@." name t_dyn t_sta)
    [
      ("grid-2x2", Workload.grid_cq 2 2);
      ("grid-3x3", Workload.grid_cq 3 3);
      ("path-6", Workload.path_cq ~pred:"X" 5);
    ]

(* ------------------------------------------------------------------ *)
(* E14 — the Appendix C.5 exponential gadget                            *)
(* ------------------------------------------------------------------ *)

let e14 ~full () =
  header "E14: the Appendix C.5 counter gadget"
    "Appendix C.5 / Lemma C.8: a guarded 6-ary ontology forces S-paths of length 2^n - 1"
    "chase size and path length double with n while the ontology grows quadratically";
  let ns = if full then [ 2; 3; 4; 5 ] else [ 2; 3; 4 ] in
  row "  %4s %8s %12s %12s %12s@." "n" "rules" "chase facts" "path (2^n-1)" "time(s)";
  List.iter
    (fun n ->
      let sigma = C5_gadget.ontology ~n in
      let r, t =
        time_once (fun () ->
            Tgds.Chase.run ~max_level:200 ~max_facts:200_000 sigma
              (C5_gadget.database `T1))
      in
      row "  %4d %8d %12d %12d %12.4f@." n (List.length sigma)
        (Instance.size (Tgds.Chase.instance r))
        (C5_gadget.s_path_length (Tgds.Chase.instance r))
        t)
    ns

(* ------------------------------------------------------------------ *)
(* E15 — naive vs indexed saturation engine (lib/engine ablation)       *)
(* ------------------------------------------------------------------ *)

(* BENCH_engine.json is shared between E15 (chase workloads), E17
   (answer-enumeration workloads, names prefixed "answers-"), E18
   (incremental-maintenance workloads, names prefixed "incr-"), E20
   (WAL-recovery workloads, names prefixed "recover-") and E22
   (query-server workloads, names prefixed "server-"). Each experiment
   replaces only its own entries and keeps the others', so regenerating
   one never drops another's baselines. *)
let update_bench_engine ~owns entries =
  let existing =
    match open_in_bin "BENCH_engine.json" with
    | exception Sys_error _ -> []
    | ic -> (
        let s =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Obs.Json.parse s with Ok (Obs.Json.List es) -> es | _ -> [])
  in
  let kept =
    List.filter
      (fun e ->
        match Obs.Json.member "workload" e with
        | Some (Obs.Json.String w) -> not (owns w)
        | _ -> false)
      existing
  in
  let oc = open_out "BENCH_engine.json" in
  Obs.Json.to_channel oc (Obs.Json.List (kept @ entries));
  close_out oc;
  row "@.  wrote BENCH_engine.json@."

let answers_workload w = String.starts_with ~prefix:"answers-" w
let incr_workload w = String.starts_with ~prefix:"incr-" w
let recover_workload w = String.starts_with ~prefix:"recover-" w
let server_workload w = String.starts_with ~prefix:"server-" w

let e15 ~full () =
  header "E15: semi-naive indexed chase vs naive re-enumeration"
    "not a paper claim — ablation of the lib/engine saturation engine (DESIGN.md §2.7)"
    "indexed time grows ~linearly with derived facts; naive re-scans every level";
  let rows = ref [] in
  let bench_case ~workload ~sigma ~db ~max_level =
    let t_idx =
      measure ~repeat:1 (fun () ->
          ignore (Tgds.Chase.run ~engine:`Indexed ~max_level sigma db))
    in
    let r = Tgds.Chase.run ~engine:`Indexed ~max_level sigma db in
    let chased = Instance.size (Tgds.Chase.instance r) in
    let t_naive =
      measure ~repeat:1 (fun () ->
          ignore (Tgds.Chase.run ~engine:`Naive ~max_level sigma db))
    in
    let er = Option.get (Tgds.Chase.engine_result r) in
    let triggers = er.Engine.Saturate.triggers_fired in
    (* per-level breakdown: fact growth from the s-levels, durations from
       the saturation span's [level] children *)
    let fpl = Tgds.Chase.facts_per_level r in
    let level_s =
      List.map Obs.Span.elapsed (Obs.Span.children er.Engine.Saturate.span)
    in
    rows :=
      (workload, Instance.size db, chased, triggers, t_naive, t_idx, fpl, level_s)
      :: !rows;
    row "  %-18s %8d %10d %10d %12.4f %12.4f %9.1fx@." workload
      (Instance.size db) chased triggers t_naive t_idx (t_naive /. t_idx)
  in
  row "  %-18s %8s %10s %10s %12s %12s %9s@." "workload" "||D||" "chased"
    "triggers" "naive(s)" "indexed(s)" "speedup";
  let unis = if full then [ 10; 40; 160; 640 ] else [ 10; 40; 160 ] in
  List.iter
    (fun u ->
      let sigma, db = Workload.lubm ~universities:u () in
      bench_case ~workload:(Printf.sprintf "lubm-%d" u) ~sigma ~db ~max_level:6)
    unis;
  let gf = Workload.guarded_full_chain ~depth:4 in
  List.iter
    (fun n ->
      let db = Workload.path_db ~pred:"E" n in
      bench_case ~workload:(Printf.sprintf "full-chain-%d" n) ~sigma:gf ~db
        ~max_level:max_int)
    (if full then [ 200; 800; 2000; 4000 ] else [ 200; 800; 2000 ]);
  (* emit machine-readable results for the ablation record, now with the
     per-level (phase) breakdown of the indexed run *)
  let entries =
    List.rev_map
      (fun (w, d, c, tr, tn, ti, fpl, level_s) ->
           Obs.Json.Obj
             [
               ("workload", Obs.Json.String w);
               ("db_facts", Obs.Json.Int d);
               ("chase_facts", Obs.Json.Int c);
               ("triggers", Obs.Json.Int tr);
               ("naive_s", Obs.Json.Float tn);
               ("indexed_s", Obs.Json.Float ti);
               ("speedup", Obs.Json.Float (tn /. ti));
               ( "facts_per_level",
                 Obs.Json.List (List.map (fun n -> Obs.Json.Int n) fpl) );
               ( "level_s",
                 Obs.Json.List (List.map (fun s -> Obs.Json.Float s) level_s) );
             ])
      !rows
  in
  update_bench_engine
    ~owns:(fun w ->
      (not (answers_workload w))
      && (not (incr_workload w))
      && (not (recover_workload w))
      && not (server_workload w))
    entries

(* ------------------------------------------------------------------ *)
(* E16 — parallel saturation scaling (lib/engine/parallel ablation)     *)
(* ------------------------------------------------------------------ *)

let e16 ~full () =
  header "E16: multicore saturation scaling"
    "not a paper claim — scaling of the parallel engine (DESIGN.md §2.10)"
    "speedup grows with domains up to the machine's cores; outputs stay byte-identical";
  let cores = Domain.recommended_domain_count () in
  row "  machine: %d recommended domain(s)@.@." cores;
  let domain_counts = [ 1; 2; 4; 8 ] in
  let rows = ref [] in
  (* wall-clock and allocation of one run: words allocated on the minor
     and major heaps (Gc deltas around the run), so the "lower
     allocation rate" claim of the interned store is checkable per
     engine/domain row *)
  let timed_alloc f =
    let s0 = Gc.quick_stat () in
    let t = measure ~repeat:1 f in
    let s1 = Gc.quick_stat () in
    ( t,
      s1.Gc.minor_words -. s0.Gc.minor_words,
      s1.Gc.major_words -. s0.Gc.major_words )
  in
  let bench_case ~workload ~sigma ~db ~max_level =
    let run engine () =
      ignore (Tgds.Chase.run ~engine ~max_level sigma db)
    in
    let t_seq, mw_seq, mj_seq = timed_alloc (run `Indexed) in
    let r = Tgds.Chase.run ~engine:`Indexed ~max_level sigma db in
    let chased = Instance.size (Tgds.Chase.instance r) in
    let times =
      List.map (fun n -> (n, timed_alloc (run (`Parallel n)))) domain_counts
    in
    rows :=
      (workload, Instance.size db, chased, (t_seq, mw_seq, mj_seq), times)
      :: !rows;
    row "  %-18s %8d %10d %11.4f %9.1f" workload (Instance.size db) chased
      t_seq (mj_seq /. 1e6);
    List.iter (fun (_, (t, _, _)) -> row " %10.4f" t) times;
    row "@."
  in
  row "  %-18s %8s %10s %11s %9s" "workload" "||D||" "chased" "indexed(s)"
    "maj(Mw)";
  List.iter (fun n -> row " %9d-d" n) domain_counts;
  row "@.";
  (* the join-heavy E15 workloads: LUBM-style ontology chases and the
     guarded-full chain (two-atom bodies, long runs) *)
  List.iter
    (fun u ->
      let sigma, db = Workload.lubm ~universities:u () in
      bench_case ~workload:(Printf.sprintf "lubm-%d" u) ~sigma ~db ~max_level:6)
    (if full then [ 40; 160; 640 ] else [ 40; 160 ]);
  let gf = Workload.guarded_full_chain ~depth:4 in
  List.iter
    (fun n ->
      let db = Workload.path_db ~pred:"E" n in
      bench_case ~workload:(Printf.sprintf "full-chain-%d" n) ~sigma:gf ~db
        ~max_level:max_int)
    (if full then [ 800; 2000; 4000 ] else [ 800; 2000 ]);
  let json =
    Obs.Json.Obj
      [
        ("cores", Obs.Json.Int cores);
        ( "workloads",
          Obs.Json.List
            (List.rev_map
               (fun (w, d, c, (ts, mw, mj), times) ->
                 Obs.Json.Obj
                   [
                     ("workload", Obs.Json.String w);
                     ("db_facts", Obs.Json.Int d);
                     ("chase_facts", Obs.Json.Int c);
                     ("indexed_s", Obs.Json.Float ts);
                     ("indexed_minor_words", Obs.Json.Float mw);
                     ("indexed_major_words", Obs.Json.Float mj);
                     ( "domains",
                       Obs.Json.List
                         (List.map
                            (fun (n, (t, dmw, dmj)) ->
                              Obs.Json.Obj
                                [
                                  ("domains", Obs.Json.Int n);
                                  ("s", Obs.Json.Float t);
                                  ("speedup", Obs.Json.Float (ts /. t));
                                  ("minor_words", Obs.Json.Float dmw);
                                  ("major_words", Obs.Json.Float dmj);
                                ])
                            times) );
                   ])
               !rows) );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  Obs.Json.to_channel oc json;
  close_out oc;
  row "@.  wrote BENCH_parallel.json@."

(* ------------------------------------------------------------------ *)
(* E17 — streaming answer enumeration vs generate-and-test              *)
(* ------------------------------------------------------------------ *)

(* The E17 workload family: a path database E(c1,c2), E(c2,c3), … chased
   with the copy rule E(x,y) -> R(x,y); queries of arity 0–3 over E/R.
   Answer sets are sparse (O(|adom|) tuples) while generate-and-test
   entailment-checks |adom|^arity candidates, so the asymptotic gap the
   enumerator removes is visible at small domains already. *)
let e17_sigma =
  [
    Tgds.Tgd.make
      ~body:[ atom "E" [ v "x"; v "y" ] ]
      ~head:[ atom "R" [ v "x"; v "y" ] ];
  ]

let e17_query = function
  | 0 -> Ucq.of_cq (Cq.make [ atom "E" [ v "x"; v "y" ] ])
  | 1 -> Ucq.of_cq (Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ] ])
  | 2 ->
      Ucq.of_cq
        (Cq.make ~answer:[ "x"; "z" ]
           [ atom "R" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ])
  | 3 ->
      Ucq.of_cq
        (Cq.make ~answer:[ "x"; "y"; "z" ]
           [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ])
  | k -> invalid_arg (Printf.sprintf "e17_query: arity %d" k)

(* The seed generate-and-test evaluation, kept verbatim as the oracle:
   every |adom|^arity candidate tuple, entailment-checked one by one. *)
let e17_generate_and_test idx query db =
  let dom = Term.ConstSet.elements (Instance.dom db) in
  let rec tuples n =
    if n = 0 then [ [] ]
    else
      List.concat_map (fun t -> List.map (fun c -> c :: t) dom) (tuples (n - 1))
  in
  List.filter (fun c -> Engine.Joiner.entails_ucq idx query c)
    (tuples (Ucq.arity query))

let e17 ~full () =
  header "E17: streaming answer enumeration vs generate-and-test"
    "not a paper claim — the Omq_eval.answers path (DESIGN.md §2.11)"
    "enumeration scales with the answers found; generate-and-test with |adom|^arity";
  let rows = ref [] in
  let bench_case ~workload ~arity ~n =
    let db = Workload.path_db ~pred:"E" n in
    let query = e17_query arity in
    let r = Tgds.Chase.run ~max_level:8 e17_sigma db in
    let idx = Tgds.Chase.index r in
    let universe = Instance.dom db in
    let t_enum =
      measure ~repeat:3 (fun () ->
          ignore (Engine.Enumerate.ucq ~universe idx query))
    in
    let enum =
      (Engine.Enumerate.ucq ~universe idx query).Engine.Enumerate.answers
    in
    let t_gat =
      measure ~repeat:1 (fun () ->
          ignore (e17_generate_and_test idx query db))
    in
    let oracle =
      List.sort_uniq Stdlib.compare (e17_generate_and_test idx query db)
    in
    let agree = enum = oracle in
    rows :=
      (workload, Instance.size db, n, arity, List.length enum, t_enum, t_gat,
       agree)
      :: !rows;
    row "  %-20s %6d %6d %8d %13.5f %12.5f %9.1fx %6b@." workload n arity
      (List.length enum) t_gat t_enum (t_gat /. t_enum) agree
  in
  row "  %-20s %6s %6s %8s %13s %12s %9s %6s@." "workload" "|adom|" "arity"
    "answers" "gen+test(s)" "enum(s)" "speedup" "agree";
  (* |adom| sweep at arity 2 (the acceptance workload: |adom| >= 200) *)
  List.iter
    (fun n ->
      bench_case ~workload:(Printf.sprintf "answers-adom%d-ar2" n) ~arity:2 ~n)
    (if full then [ 100; 200; 400; 800 ] else [ 100; 200; 400 ]);
  (* arity sweep at a fixed domain *)
  let n0 = if full then 60 else 40 in
  List.iter
    (fun k ->
      bench_case ~workload:(Printf.sprintf "answers-ar%d" k) ~arity:k ~n:n0)
    [ 0; 1; 2; 3 ];
  let entries =
    List.rev_map
      (fun (w, d, n, arity, answers, te, tg, agree) ->
        Obs.Json.Obj
          [
            ("workload", Obs.Json.String w);
            ("db_facts", Obs.Json.Int d);
            ("adom", Obs.Json.Int n);
            ("arity", Obs.Json.Int arity);
            ("answers", Obs.Json.Int answers);
            ("enumerate_s", Obs.Json.Float te);
            ("generate_and_test_s", Obs.Json.Float tg);
            ("speedup", Obs.Json.Float (tg /. te));
            ("agree", Obs.Json.Bool agree);
          ])
      !rows
  in
  update_bench_engine ~owns:answers_workload entries

(* ------------------------------------------------------------------ *)
(* E18 — incremental maintenance vs full re-chase (lib/incr)            *)
(* ------------------------------------------------------------------ *)

(* Null-blind skeleton of an instance: the sorted multiset of facts with
   every labelled null collapsed to a placeholder. One sort, so it stays
   tractable on the E15-scale workloads where a hom-based
   equality-up-to-nulls check would not, yet it catches any maintenance
   bug that loses, resurrects or mis-grounds a fact. *)
let skeleton inst =
  Instance.fold
    (fun f acc ->
      ( Fact.pred f,
        List.map
          (function Term.Named c -> Some c | Term.Null _ -> None)
          (Fact.args f) )
      :: acc)
    inst []
  |> List.sort compare

let e18 ~full () =
  header "E18: incremental chase maintenance vs full re-chase"
    "not a paper claim — the lib/incr maintained store (DESIGN.md §2.12)"
    "single-fact insert/delete repairs in ~the affected subtree; re-chase pays the whole instance";
  let rows = ref [] in
  let bench_case ~workload ~sigma ~db ~max_level ~ins ~del =
    let rechase inst =
      Tgds.Chase.run ~policy:Tgds.Chase.Oblivious ~engine:`Indexed ~max_level
        sigma inst
    in
    let store = Incr.create ~max_level sigma db in
    (* insert: maintain the store vs re-chase the post-insert database *)
    let db_ins = Instance.add_fact ins db in
    let t_rechase_ins = measure ~repeat:1 (fun () -> ignore (rechase db_ins)) in
    let fresh_ins = rechase db_ins in
    let _, t_ins = time_once (fun () -> Incr.insert store ins) in
    let agree_ins =
      skeleton (Incr.instance store)
      = skeleton (Tgds.Chase.instance fresh_ins)
    in
    (* delete: from the post-insert store, retract [del]; the baseline is
       a re-chase of (db + ins - del) *)
    let db_del = Instance.diff db_ins (Instance.of_facts [ del ]) in
    let t_rechase_del = measure ~repeat:1 (fun () -> ignore (rechase db_del)) in
    let fresh_del = rechase db_del in
    let _, t_del = time_once (fun () -> Incr.delete store del) in
    let agree_del =
      skeleton (Incr.instance store)
      = skeleton (Tgds.Chase.instance fresh_del)
    in
    let emit op maintain_s rechase_s chased agree =
      rows :=
        ( Printf.sprintf "incr-%s-%s" workload op,
          Instance.size db, chased, maintain_s, rechase_s, agree )
        :: !rows;
      row "  %-26s %8d %10d %12.6f %12.4f %9.0fx %6b@."
        (Printf.sprintf "%s %s" workload op)
        (Instance.size db) chased maintain_s rechase_s
        (rechase_s /. maintain_s) agree
    in
    emit "insert" t_ins t_rechase_ins
      (Instance.size (Tgds.Chase.instance fresh_ins))
      agree_ins;
    emit "delete" t_del t_rechase_del
      (Instance.size (Tgds.Chase.instance fresh_del))
      agree_del
  in
  row "  %-26s %8s %10s %12s %12s %9s %6s@." "workload" "||D||" "chased"
    "maintain(s)" "rechase(s)" "speedup" "agree";
  List.iter
    (fun u ->
      let sigma, db = Workload.lubm ~universities:u () in
      bench_case ~workload:(Printf.sprintf "lubm-%d" u) ~sigma ~db ~max_level:6
        ~ins:(fact "Prof" [ "prof_new" ])
        ~del:(fact "Prof" [ "prof_0_0_0" ]))
    (if full then [ 10; 160; 640 ] else [ 10; 160 ]);
  let gf = Workload.guarded_full_chain ~depth:4 in
  List.iter
    (fun n ->
      bench_case ~workload:(Printf.sprintf "full-chain-%d" n) ~sigma:gf
        ~db:(Workload.path_db ~pred:"E" n) ~max_level:max_int
        ~ins:(fact "E" [ "z"; "a0" ])
        ~del:(fact "E" [ "a0"; "a1" ]))
    (if full then [ 2000; 4000 ] else [ 2000 ]);
  let entries =
    List.rev_map
      (fun (w, d, c, tm, tr, agree) ->
        Obs.Json.Obj
          [
            ("workload", Obs.Json.String w);
            ("db_facts", Obs.Json.Int d);
            ("chase_facts", Obs.Json.Int c);
            ("maintain_s", Obs.Json.Float tm);
            ("rechase_s", Obs.Json.Float tr);
            ("speedup", Obs.Json.Float (tr /. tm));
            ("agree", Obs.Json.Bool agree);
          ])
      !rows
  in
  update_bench_engine ~owns:incr_workload entries

(* ------------------------------------------------------------------ *)
(* E20 — WAL recovery cost vs tail length (lib/resil, DESIGN.md §2.14)  *)
(* ------------------------------------------------------------------ *)

let with_wal_dir f =
  let dir = Filename.temp_file "guarded-bench-wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* A WAL whose final segment holds [n] un-rotated mutations: recovery
   loads the seq-0 image and replays all [n]. [plan] injects faults into
   the producing run through the supervisor, so its degradation count
   lands in the row — the WAL itself is identical either way (append
   happens before the supervised apply). *)
let e20_build_wal ~sigma ~db ~dir ~plan n =
  Relational.Term.reset_nulls ();
  let store = ref (Incr.create ~max_level:6 sigma db) in
  let wal = Resil.Wal.create ~dir (Incr.image !store) in
  let anchor = Incr.image !store in
  let applied = ref [] in
  let restore () =
    let st = Incr.of_image sigma anchor in
    List.iter (fun op -> ignore (Incr.apply st op)) (List.rev !applied);
    st
  in
  let rechase st =
    Incr.create ~engine:`Indexed ~max_level:6 sigma (Incr.base st)
  in
  let degradations = ref 0 in
  Resil.Fault.arm_seq plan;
  Fun.protect ~finally:Resil.Fault.disarm (fun () ->
      for i = 1 to n do
        let op =
          Incr.Insert (fact "Prof" [ Printf.sprintf "prof_wal_%d" i ])
        in
        Resil.Wal.append wal (Resil.Wal.Op (i, op));
        (if plan = [] then ignore (Incr.apply !store op)
         else
           match
             Resil.Serve_supervisor.apply ~retries:3 ~backoff_ms:0.
               ~sleep:(fun _ -> ())
               ~restore ~rechase ~store op
           with
           | Resil.Serve_supervisor.Applied (_, steps) ->
               degradations :=
                 !degradations
                 + List.length
                     (List.filter
                        (fun s ->
                          s.Resil.Serve_supervisor.st_rung
                          <> Resil.Serve_supervisor.Repair)
                        steps)
           | Resil.Serve_supervisor.Quarantined _ -> ());
        applied := op :: !applied
      done);
  Resil.Wal.close wal;
  !degradations

let e20 ~full () =
  header "E20: WAL recovery cost vs tail length"
    "not a paper claim — the durable serve runtime (DESIGN.md §2.14)"
    "recovery = newest image + tail replay; cost grows ~linearly with the \
     replayed tail";
  let sigma, db = Workload.lubm ~universities:10 () in
  let rows = ref [] in
  let emit workload tail recover_s replayed truncated degradations =
    rows :=
      (workload, tail, recover_s, replayed, truncated, degradations) :: !rows;
    row "  %-22s %8d %12.4f %10d %10d %13d@." workload tail recover_s replayed
      truncated degradations
  in
  row "  %-22s %8s %12s %10s %10s %13s@." "workload" "tail" "recover(s)"
    "replayed" "truncated" "degradations";
  let bench_case ~workload ~plan n =
    with_wal_dir (fun dir ->
        let degradations = e20_build_wal ~sigma ~db ~dir ~plan n in
        let rec_info =
          match Resil.Wal.recover ~dir with
          | Ok r -> r
          | Error e -> failwith ("e20: recovery failed: " ^ e)
        in
        let t =
          measure ~repeat:3 (fun () ->
              match Resil.Wal.recover ~dir with
              | Error e -> failwith e
              | Ok r ->
                  let st = Incr.of_image sigma r.Resil.Wal.rec_image in
                  List.iter
                    (fun (_, op) -> ignore (Incr.apply st op))
                    r.Resil.Wal.rec_ops)
        in
        emit workload n t
          (List.length rec_info.Resil.Wal.rec_ops)
          rec_info.Resil.Wal.rec_truncated degradations)
  in
  List.iter
    (fun n -> bench_case ~workload:(Printf.sprintf "recover-tail-%d" n) ~plan:[] n)
    (if full then [ 50; 200; 800; 3200 ] else [ 50; 200; 800 ]);
  (* same tail, but the producing run climbed the ladder: three injected
     [incr.insert] faults, each retried one rung up *)
  bench_case ~workload:"recover-faulted-200"
    ~plan:
      [
        Resil.Fault.At_point ("incr.insert", 50);
        Resil.Fault.At_point ("incr.insert", 50);
        Resil.Fault.At_point ("incr.insert", 50);
      ]
    200;
  let entries =
    List.rev_map
      (fun (w, tail, t, replayed, truncated, degradations) ->
        Obs.Json.Obj
          [
            ("workload", Obs.Json.String w);
            ("tail", Obs.Json.Int tail);
            ("recover_s", Obs.Json.Float t);
            ("records_replayed", Obs.Json.Int replayed);
            ("records_truncated", Obs.Json.Int truncated);
            ("degradations", Obs.Json.Int degradations);
          ])
      !rows
  in
  update_bench_engine ~owns:recover_workload entries

(* ------------------------------------------------------------------ *)
(* E22 — allocation-lean concurrent serving (supersedes E21)            *)
(* ------------------------------------------------------------------ *)

(* The whole pipeline end-to-end: emit a lubm-scale program in surface
   syntax (the parser wants lowercase predicates, so the generated
   predicates are lowercased), parse it, saturate once, freeze the
   snapshot and drive Server.Daemon.run over a file of mixed
   answers/count request lines at several worker counts.

   E22 extends the old E21 rows with the worker domains' Gc word deltas:
   minor words per served request is the multicore scaling signal (any
   domain's minor collection stops every domain), and unlike qps it is
   deterministic enough to regress-gate on a shared CI box. *)
let e22_program ~universities =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "prof(X) -> teaches(X,C).\n\
     teaches(X,C) -> course(C).\n\
     course(C) -> offeredby(C,D).\n\
     offeredby(C,D) -> dept(D).\n\
     teaches(X,C) -> faculty(X).\n\
     student(S) -> takes(S,C).\n\
     takes(S,C) -> course(C).\n\
     student(S) -> advisedby(S,A).\n\
     advisedby(S,A) -> faculty(A).\n\
     memberof(X,D) -> dept(D).\n";
  let _, db = Workload.lubm ~universities () in
  Instance.iter
    (fun f ->
      Buffer.add_string buf (String.lowercase_ascii (Fact.pred f));
      Buffer.add_char buf '(';
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Fmt.str "%a" Term.pp_const c))
        (Fact.args f);
      Buffer.add_string buf ").\n")
    db;
  Buffer.contents buf

(* the mixed request set: point lookups, wide scans, a union, a join and
   a count, cycled in a fixed order so every run issues the same lines *)
let e22_requests n =
  let templates =
    [|
      "answers q(X) :- prof(X).";
      "count q(X) :- faculty(X).";
      "answers q(X,C) :- teaches(X,C).";
      "count q(S) :- student(S). q(S) :- prof(S).";
      "answers q(S,C) :- takes(S,C), course(C).";
      "count q(D) :- dept(D).";
      "answers q(P,D) :- prof(P), memberof(P,D).";
      "count q(S,A) :- advisedby(S,A), faculty(A).";
    |]
  in
  List.init n (fun i -> templates.(i mod Array.length templates))

(* one serving run: feed [requests] through a request file, return the
   daemon summary plus the report carrying the latency histogram *)
let e22_serve ~workers ~requests snap =
  let req_path = Filename.temp_file "e22_requests" ".txt" in
  let out_path = Filename.temp_file "e22_replies" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out req_path in
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        requests;
      close_out oc;
      let report = Obs.Report.create "e22" in
      let ic = open_in req_path and oc = open_out out_path in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            Server.Daemon.run ~report
              {
                Server.Daemon.workers;
                max_facts = None;
                max_ms = None;
                fault_plan = [];
              }
              snap ic oc)
      in
      (summary, report))

let e22_snapshot ~universities =
  let p = Syntax.Parser.parse (e22_program ~universities) in
  let db = Syntax.Parser.database p in
  let r =
    Tgds.Chase.run
      ~engine:(`Parallel (Domain.recommended_domain_count ()))
      ~max_level:6 p.Syntax.Parser.tgds db
  in
  Engine.Snapshot.freeze
    ~saturated:(Tgds.Chase.saturated r)
    ~universe:(Instance.dom db) (Tgds.Chase.index r)

let e22 ~full () =
  header "E22: allocation-lean concurrent serving (supersedes E21)"
    "not a paper claim — the serving runtime (DESIGN.md §2.15-2.16)"
    "minor words per served request flat and low across worker counts: \
     the interned request path allocates O(answer bytes), so the global \
     minor-GC barriers that capped E21's multicore qps fire rarely \
     enough for added workers to help rather than hurt";
  let universities = if full then 40 else 10 in
  let n_requests = if full then 2000 else 400 in
  let snap = e22_snapshot ~universities in
  let requests = e22_requests n_requests in
  row "  %-20s %8s %8s %10s %10s %10s %10s %10s %10s@." "workload" "workers"
    "requests" "serve(s)" "qps" "p50(ms)" "p99(ms)" "minor/req" "major/req";
  let entries =
    List.map
      (fun workers ->
        let summary, report = e22_serve ~workers ~requests snap in
        if summary.Server.Daemon.errors > 0 then
          failwith "e22: request errors against a healthy snapshot";
        let quant q =
          match
            Obs.Metrics.quantile
              (Obs.Report.metrics report)
              "server.request_s" q
          with
          | Some v -> v *. 1e3
          | None -> 0.
        in
        let serve_s = summary.Server.Daemon.wall_s in
        let served = float_of_int summary.Server.Daemon.served in
        let qps = served /. serve_s in
        let p50 = quant 0.5 and p99 = quant 0.99 in
        (* summed worker-domain Gc deltas, normalised per served request:
           the row the gate pins (time columns are machine-dependent,
           these are not) *)
        let minor_req = summary.Server.Daemon.minor_words /. served in
        let major_req = summary.Server.Daemon.major_words /. served in
        let workload =
          Printf.sprintf "server-lubm-%d-w%d" universities workers
        in
        row "  %-20s %8d %8d %10.4f %10.1f %10.4f %10.4f %10.0f %10.0f@."
          workload workers summary.Server.Daemon.served serve_s qps p50 p99
          minor_req major_req;
        Obs.Json.Obj
          [
            ("workload", Obs.Json.String workload);
            ("universities", Obs.Json.Int universities);
            ("workers", Obs.Json.Int workers);
            ("requests", Obs.Json.Int summary.Server.Daemon.served);
            ("serve_s", Obs.Json.Float serve_s);
            ("qps", Obs.Json.Float qps);
            ("p50_ms", Obs.Json.Float p50);
            ("p99_ms", Obs.Json.Float p99);
            ("minor_words_per_req", Obs.Json.Float minor_req);
            ("major_words_per_req", Obs.Json.Float major_req);
          ])
      [ 1; 2; 4 ]
  in
  update_bench_engine ~owns:server_workload entries

(* ------------------------------------------------------------------ *)
(* gate — bench-regression gate against BENCH_engine.json (CI)          *)
(* ------------------------------------------------------------------ *)

(* Rerun the cheapest E15/E17/E18 workloads and compare wall times
   against the committed BENCH_engine.json baselines. A >3x slowdown is
   a regression: fatal under BENCH_GATE=strict (CI), a warning otherwise
   (laptops differ from the machine that produced the baselines). An
   absolute floor keeps sub-ms baselines from tripping on scheduler
   noise.

   A *missing* BENCH_engine.json is a skip-with-warning even under
   strict: a fresh clone or a pruned checkout has no baselines, and that
   is not a regression. A present-but-corrupt file stays fatal — it
   means the committed baselines were damaged. *)
let gate () =
  Fmt.pr "@.=== gate: bench-regression check vs BENCH_engine.json ===@.";
  let strict = Sys.getenv_opt "BENCH_GATE" = Some "strict" in
  let threshold = 3.0 and floor_s = 0.05 in
  match open_in_bin "BENCH_engine.json" with
  | exception Sys_error _ ->
      Fmt.pr
        "  warning: BENCH_engine.json missing — gate skipped (not a \
         failure,@.  even under BENCH_GATE=strict; regenerate with 'dune \
         exec bench/main.exe@.  -- e15 e17 e18 e20')@."
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let baseline =
        match Obs.Json.parse s with
        | Ok (Obs.Json.List entries) -> entries
        | Ok _ ->
            Fmt.epr "gate: BENCH_engine.json is not a JSON list@.";
            exit 1
        | Error e ->
            Fmt.epr "gate: BENCH_engine.json does not parse: %s@." e;
            exit 1
      in
      let failed = ref false in
      let fail fmt =
        Fmt.kstr
          (fun msg ->
            failed := true;
            Fmt.pr "  REGRESSION %s@." msg)
          fmt
      in
      let find_baseline name =
        List.find_opt
          (fun e ->
            Obs.Json.member "workload" e = Some (Obs.Json.String name))
          baseline
      in
      let float_field k j =
        match Obs.Json.member k j with
        | Some (Obs.Json.Float f) -> Some f
        | Some (Obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let against name t base key =
        match float_field key base with
        | None -> Fmt.pr "  %-22s baseline has no %s — skipped@." name key
        | Some base_s ->
            let limit = Float.max (base_s *. threshold) floor_s in
            Fmt.pr "  %-22s total %8.4fs  baseline %8.4fs  limit %8.4fs%s@."
              name t base_s limit
              (if t > limit then "  <-- over" else "");
            if t > limit then
              fail "%s: %.4fs > %.1fx baseline %.4fs" name t threshold base_s
      in
      let check_workload name sigma db max_level =
        match find_baseline name with
        | None -> Fmt.pr "  %-22s no baseline entry — skipped@." name
        | Some base -> (
            let r = Tgds.Chase.run ~engine:`Indexed ~max_level sigma db in
            let t =
              measure ~repeat:3 (fun () ->
                  ignore (Tgds.Chase.run ~engine:`Indexed ~max_level sigma db))
            in
            against name t base "indexed_s";
            (* per-level pass times, where the baseline recorded them *)
            match Obs.Json.member "level_s" base with
            | Some (Obs.Json.List base_levels) ->
                let er = Option.get (Tgds.Chase.engine_result r) in
                let level_s =
                  List.map Obs.Span.elapsed
                    (Obs.Span.children er.Engine.Saturate.span)
                in
                List.iteri
                  (fun i b ->
                    match
                      ( (match b with
                        | Obs.Json.Float f -> Some f
                        | Obs.Json.Int n -> Some (float_of_int n)
                        | _ -> None),
                        List.nth_opt level_s i )
                    with
                    | Some base_l, Some l ->
                        let limit = Float.max (base_l *. threshold) floor_s in
                        if l > limit then
                          fail "%s level %d: %.4fs > %.1fx baseline %.4fs" name
                            (i + 1) l threshold base_l
                    | _ -> ())
                  base_levels
            | _ -> ())
      in
      (* E17: the enumerator must stay fast *and* agree with the
         generate-and-test oracle on the acceptance workload *)
      let check_answers name ~arity ~n =
        match find_baseline name with
        | None -> Fmt.pr "  %-22s no baseline entry — skipped@." name
        | Some base ->
            let db = Workload.path_db ~pred:"E" n in
            let query = e17_query arity in
            let r = Tgds.Chase.run ~max_level:8 e17_sigma db in
            let idx = Tgds.Chase.index r in
            let universe = Instance.dom db in
            let t =
              measure ~repeat:3 (fun () ->
                  ignore (Engine.Enumerate.ucq ~universe idx query))
            in
            let enum =
              (Engine.Enumerate.ucq ~universe idx query)
                .Engine.Enumerate.answers
            in
            let oracle =
              List.sort_uniq Stdlib.compare (e17_generate_and_test idx query db)
            in
            if enum <> oracle then
              fail "%s: enumerated answers differ from generate-and-test" name;
            against name t base "enumerate_s"
      in
      (* E18: single-fact maintenance must stay fast *and* leave the
         store skeleton-equal to a fresh re-chase *)
      let check_incr name op =
        match find_baseline name with
        | None -> Fmt.pr "  %-22s no baseline entry — skipped@." name
        | Some base ->
            let sigma, db = Workload.lubm ~universities:10 () in
            let rechase inst =
              Tgds.Chase.run ~policy:Tgds.Chase.Oblivious ~engine:`Indexed
                ~max_level:6 sigma inst
            in
            let store = Incr.create ~max_level:6 sigma db in
            let ins = fact "Prof" [ "prof_new" ] in
            let t, fresh =
              match op with
              | `Insert ->
                  let _, t = time_once (fun () -> Incr.insert store ins) in
                  (t, rechase (Instance.add_fact ins db))
              | `Delete ->
                  ignore (Incr.insert store ins);
                  let del = fact "Prof" [ "prof_0_0_0" ] in
                  let _, t = time_once (fun () -> Incr.delete store del) in
                  ( t,
                    rechase
                      (Instance.diff (Instance.add_fact ins db)
                         (Instance.of_facts [ del ])) )
            in
            if skeleton (Incr.instance store)
               <> skeleton (Tgds.Chase.instance fresh)
            then fail "%s: maintained store differs from a fresh re-chase" name;
            against name t base "maintain_s"
      in
      (* E20: recovery of a short WAL tail must stay fast *)
      let check_recover name ~tail =
        match find_baseline name with
        | None -> Fmt.pr "  %-22s no baseline entry — skipped@." name
        | Some base ->
            let sigma, db = Workload.lubm ~universities:10 () in
            with_wal_dir (fun dir ->
                ignore (e20_build_wal ~sigma ~db ~dir ~plan:[] tail);
                let t =
                  measure ~repeat:3 (fun () ->
                      match Resil.Wal.recover ~dir with
                      | Error e -> failwith e
                      | Ok r ->
                          let st = Incr.of_image sigma r.Resil.Wal.rec_image in
                          List.iter
                            (fun (_, op) -> ignore (Incr.apply st op))
                            r.Resil.Wal.rec_ops)
                in
                against name t base "recover_s")
      in
      (* E22: replay the baseline row's own request volume at its own
         worker count, so serve_s compares like for like *)
      let check_server name =
        match find_baseline name with
        | None -> Fmt.pr "  %-22s no baseline entry — skipped@." name
        | Some base ->
            let int_field k d =
              match Obs.Json.member k base with
              | Some (Obs.Json.Int i) -> i
              | _ -> d
            in
            let universities = int_field "universities" 10 in
            let workers = int_field "workers" 1 in
            let n = int_field "requests" 400 in
            let snap = e22_snapshot ~universities in
            let minor_req = ref 0. in
            let t =
              measure ~repeat:3 (fun () ->
                  let summary, _ =
                    e22_serve ~workers ~requests:(e22_requests n) snap
                  in
                  if summary.Server.Daemon.errors > 0 then
                    failwith "gate: server request errors";
                  minor_req :=
                    summary.Server.Daemon.minor_words
                    /. float_of_int summary.Server.Daemon.served)
            in
            against name t base "serve_s";
            (* the allocation gate is tighter than the 3x wall-time one:
               words per request depends on the request mix, not on the
               machine, so 1.5x over baseline is already a regression
               (the +512 absolute slack absorbs batching jitter on tiny
               baselines) *)
            match float_field "minor_words_per_req" base with
            | None ->
                Fmt.pr "  %-22s baseline has no minor_words_per_req — skipped@."
                  name
            | Some b ->
                let limit = Float.max (b *. 1.5) (b +. 512.) in
                Fmt.pr
                  "  %-22s alloc %8.0fw/req  baseline %8.0fw/req  limit \
                   %8.0fw/req%s@."
                  name !minor_req b limit
                  (if !minor_req > limit then "  <-- over" else "");
                if !minor_req > limit then
                  fail "%s: %.0f minor words/request > limit %.0f (baseline %.0f)"
                    name !minor_req limit b
      in
      (* Rows from a newer (or older) snapshot whose owner this binary
         does not know are skipped with a warning, never a failure: an
         old gate comparing against a newer BENCH_engine.json must not
         reject the file. *)
      List.iter
        (fun e ->
          match Obs.Json.member "workload" e with
          | Some (Obs.Json.String w) ->
              let known =
                answers_workload w || incr_workload w || recover_workload w
                || server_workload w
                || String.starts_with ~prefix:"lubm-" w
                || String.starts_with ~prefix:"full-chain-" w
              in
              if not known then
                Fmt.pr "  warning: unknown workload owner %S — row skipped@." w
          | _ ->
              Fmt.pr "  warning: baseline row without a workload — skipped@.")
        baseline;
      let lubm_sigma, lubm_db = Workload.lubm ~universities:10 () in
      check_workload "lubm-10" lubm_sigma lubm_db 6;
      let gf = Workload.guarded_full_chain ~depth:4 in
      check_workload "full-chain-200" gf
        (Workload.path_db ~pred:"E" 200)
        max_int;
      check_answers "answers-adom200-ar2" ~arity:2 ~n:200;
      check_incr "incr-lubm-10-insert" `Insert;
      check_incr "incr-lubm-10-delete" `Delete;
      check_recover "recover-tail-50" ~tail:50;
      check_server "server-lubm-10-w1";
      if !failed then
        if strict then (
          Fmt.epr "gate: bench regression detected (BENCH_GATE=strict)@.";
          exit 1)
        else
          Fmt.pr
            "  (warnings only: set BENCH_GATE=strict to make these fatal)@."
      else Fmt.pr "  gate ok@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per experiment's kernel)    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let db100 = Workload.path_db ~pred:"X" 100 in
  let path4 = Workload.path_cq ~pred:"X" 4 in
  let grid33 = Workload.grid_cq 3 3 in
  let griddb = Workload.grid_db 5 5 in
  let uni = Workload.university_ontology () in
  let uni_db =
    Relational.Instance.of_facts [ fact "Prof" [ "p0" ]; fact "Course" [ "c0" ] ]
  in
  let uni_q =
    Ucq.of_cq (Cq.make [ atom "Teaches" [ v "x"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ])
  in
  let uni_omq = Omq.full_data_schema ~ontology:uni ~query:uni_q in
  let mgr = Workload.manager_ontology () in
  let mgr_db = Relational.Instance.of_facts [ fact "Emp" [ "eve" ] ] in
  let lin3 = Workload.linear_chain ~depth:3 in
  let lin_q = Ucq.of_cq (Cq.make [ atom "R3" [ v "x"; v "y" ] ]) in
  let d72 = Reductions.constraint_free_instance grid33 in
  let graph8 = Workload.random_graph ~n:8 ~p:0.35 ~seed:9 in
  let tests =
    [
      Test.make ~name:"e1-tw-eval" (Staged.stage (fun () -> Tw_eval.holds db100 path4));
      Test.make ~name:"e2-core" (Staged.stage (fun () -> Cq_core.core grid33));
      Test.make ~name:"e3-fpt-omq"
        (Staged.stage (fun () -> Omq_eval.certain_fpt uni_omq uni_db []));
      Test.make ~name:"e4-grid-eval" (Staged.stage (fun () -> Tw_eval.holds griddb grid33));
      Test.make ~name:"e5-clique-reduction"
        (Staged.stage (fun () -> Reductions.clique_to_cqs d72 ~graph:graph8 ~k:3));
      Test.make ~name:"e6-omq-to-cqs"
        (Staged.stage (fun () -> Reductions.omq_to_cqs uni_omq uni_db));
      Test.make ~name:"e7-chase"
        (Staged.stage (fun () -> Tgds.Chase.run ~max_level:4 mgr mgr_db));
      Test.make ~name:"e8-rewrite"
        (Staged.stage (fun () -> Tgds.Linear_rewrite.rewrite lin3 lin_q));
      Test.make ~name:"e9-meta"
        (Staged.stage (fun () ->
             Equivalence.cqs_uniformly_ucqk_equivalent 1
               (Cqs.make ~constraints:[] ~query:(Ucq.of_cq (Workload.grid_cq 2 2)))));
      Test.make ~name:"e10-optimize"
        (Staged.stage (fun () ->
             Cqs_eval.optimize
               (Cqs.make
                  ~constraints:(Workload.referential_constraints ())
                  ~query:
                    (Ucq.of_cq
                       (Cq.make ~answer:[ "l" ]
                          [ atom "Line" [ v "l"; v "o" ]; atom "Order" [ v "o"; v "c" ] ])))));
      Test.make ~name:"e11-linearize"
        (Staged.stage (fun () -> Tgds.Linearize.make uni uni_db));
      Test.make ~name:"e12-witness"
        (Staged.stage (fun () -> Finite_witness.build ~n:2 mgr mgr_db));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Fmt.pr "@.=== Bechamel micro-benchmarks (ns/run, monotonic clock) ===@.";
  List.iter
    (fun t ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ t ])) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-24s %12.0f ns/run@." name est
          | _ -> Fmt.pr "  %-24s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* smoke — tiny budgeted run whose stats JSON must round-trip (CI)      *)
(* ------------------------------------------------------------------ *)

let smoke () =
  Fmt.pr "@.=== smoke: budgeted chase report round-trip ===@.";
  (* non-terminating guarded program, cut by the fact budget *)
  let sigma =
    [
      Tgds.Tgd.make
        ~body:[ atom "S" [ v "x"; v "y" ] ]
        ~head:[ atom "S" [ v "y"; v "z" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "S" [ "a"; "b" ] ] in
  let budget = Obs.Budget.create ~max_facts:20 () in
  let r = Tgds.Chase.run ~budget sigma db in
  Obs.Report.write "BENCH_smoke.json" (Tgds.Chase.report ~name:"smoke" r);
  let ic = open_in "BENCH_smoke.json" in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fail msg =
    Fmt.epr "smoke: %s@." msg;
    exit 1
  in
  (match Obs.Json.parse s with
  | Error e -> fail ("stats JSON does not parse: " ^ e)
  | Ok j ->
      (match Obs.Json.member "name" j with
      | Some (Obs.Json.String "smoke") -> ()
      | _ -> fail "missing or ill-typed \"name\"");
      (match Obs.Json.member "outcome" j with
      | Some (Obs.Json.Obj _ as o) -> (
          match Obs.Json.member "status" o with
          | Some (Obs.Json.String "partial") -> ()
          | _ -> fail "expected outcome.status = \"partial\"")
      | _ -> fail "missing \"outcome\" object");
      (match Obs.Json.member "facts_per_level" j with
      | Some (Obs.Json.List (_ :: _)) -> ()
      | _ -> fail "missing or empty \"facts_per_level\"");
      (match Obs.Json.member "counters" j with
      | Some (Obs.Json.Obj _) -> ()
      | _ -> fail "missing \"counters\" object");
      (match Obs.Json.member "span" j with
      | Some (Obs.Json.Obj _) -> ()
      | _ -> fail "missing \"span\" object"));
  Fmt.pr "  BENCH_smoke.json ok (%d bytes)@." (String.length s)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e20", e20); ("e22", e22);
  ]

(* `rows PREFIX` — print the BENCH_engine.json rows owned by PREFIX as a
   JSON list on stdout (CI extracts the E22 rows into a workflow
   artifact with `rows server-`). An empty prefix prints every row. *)
let rows_cmd prefix =
  match open_in_bin "BENCH_engine.json" with
  | exception Sys_error _ ->
      Fmt.epr "rows: BENCH_engine.json missing@.";
      exit 1
  | ic -> (
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.parse s with
      | Ok (Obs.Json.List entries) ->
          let selected =
            List.filter
              (fun e ->
                match Obs.Json.member "workload" e with
                | Some (Obs.Json.String w) ->
                    String.starts_with ~prefix w
                | _ -> false)
              entries
          in
          print_string (Obs.Json.to_string (Obs.Json.List selected));
          print_newline ()
      | Ok _ | Error _ ->
          Fmt.epr "rows: BENCH_engine.json does not parse as a JSON list@.";
          exit 1)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "rows" :: rest -> rows_cmd (match rest with p :: _ -> p | [] -> "")
  | _ ->
  let full = List.mem "--full" args in
  let special = [ "micro"; "smoke"; "gate" ] in
  let wanted =
    List.filter (fun a -> a <> "--full" && not (List.mem a special)) args
  in
  let run_micro = List.mem "micro" args in
  let run_smoke = List.mem "smoke" args in
  let run_gate = List.mem "gate" args in
  let chosen =
    if wanted = [] then
      if run_micro || run_smoke || run_gate then [] else all_experiments
    else List.filter (fun (name, _) -> List.mem name wanted) all_experiments
  in
  Fmt.pr "guarded: experiment harness (sizes: %s)@."
    (if full then "full" else "default");
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ~full ()) chosen;
  if run_micro then micro ();
  if run_smoke then smoke ();
  if run_gate then gate ();
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
