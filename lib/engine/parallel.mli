(** Deterministic parallel trigger collection.

    One saturation pass's collection stage — enumerate every trigger
    whose body touches the delta — decomposed into independent
    [(rule, pivot)] {e jobs} and fanned out over a {!Shard} pool. Each
    job's delta list is cut into [n] contiguous slices; shard [s] matches
    slice [s] of {e every} job against a frozen, read-only view of the
    index ({!Index.reader}), collecting bindings in discovery order.

    Beyond matching, each shard also does its share of the pass's
    {e sequential} bookkeeping locally, against the same frozen state:

    - {b dedup}: the shard computes each binding's trigger key
      ([key_of]) and skips keys already in the pass-start [fired] table
      (frozen during collection) or already judged by this shard;
    - {b policy checks}: for the shard's first sighting of a surviving
      key, the [Restricted] witness check ([check]) runs on a private
      reader, and its verdict is recorded together with the check's
      [index.probes] / [joiner.candidates] / [joiner.backtracks]
      increments (measured on the private registry, which is never
      absorbed).

    {b Determinism argument.} The sequential indexed engine considers
    bindings in the order: jobs rule-major, within a job delta facts in
    canonical order, per fact the backtracking search's order. Slicing
    partitions each job's delta into contiguous runs, the per-fact search
    is a pure function of (fact, atoms, index), and the merge walk
    replays shard 0's bindings, then shard 1's, … per job — which is the
    concatenation of the slices, i.e. exactly the sequential order. A
    check verdict is a pure function of (rule, binding, frozen index),
    so precomputing it on a worker cannot change it; the merge walk
    replays its observable effects — one [engine.join] probe hit and the
    recorded counter deltas — only for a key's canonical first
    occurrence that survives the global dedup, exactly when the
    sequential engine would have run the check. Everything else that is
    stateful (the fired/pending tables, firing, fresh-null assignment)
    stays downstream on the calling domain, so every observable output —
    instance, s-levels, counters, checkpoint JSON — is byte-identical
    for every domain count, including [n = 1] vs the sequential engine.

    Worker shards never hit {!Obs.Probe} (a process-global hook). Their
    {e matching} counters file into shard-local registries absorbed in
    shard order after the join; the merged totals equal the sequential
    engine's. Per-pass wall-clock of the two stages lands in the
    [parallel.match_s] / [parallel.merge_s] histograms and the per-shard
    matched-binding counts in [parallel.shard_matched] (histograms only —
    never part of checkpoint or counter output, which keeps those
    byte-comparable across engines). *)

open Relational

type join = { rule : int; atoms : Atom.t list; delta : Fact.t list }
(** [atoms] pivot-first reordered body; [delta] the pivot's delta facts
    in canonical order *)

type job =
  | Bodiless of int
      (** rule index; considered once with the empty binding (first pass
          only — the caller filters) *)
  | Join of join

type verdict = {
  v_active : bool;  (** the policy check's result for this trigger *)
  v_probes : int;  (** [index.probes] the check cost *)
  v_candidates : int;  (** [joiner.candidates] the check cost *)
  v_backtracks : int;  (** [joiner.backtracks] the check cost *)
}
(** A policy check precomputed on a worker shard, with the counter
    increments to replay if the trigger's key survives canonical dedup. *)

type key = int * Term.const option list
(** Trigger key: rule index + body-variable image (the engine's dedup
    identity). *)

(** [collect ~pool ~index ~fired ~key_of ~check jobs ~consider] — run
    the jobs' matching, key dedup and policy checks in parallel, then
    replay [consider rule binding verdict] sequentially in the canonical
    order. [verdict] is [Some _] when this binding was the emitting
    shard's first sighting of a key absent from [fired], and [check] was
    [Some _]; the caller replays its effects iff the key also survives
    the global (cross-shard) dedup. [index] and [fired] must not be
    mutated while the collection stage runs.

    Worker-death containment: before dispatch the calling domain hits
    the [parallel.worker] probe once per shard; a shard whose hit raises
    (an armed fault plan) is marked dead and its slice of every job is
    replayed on the calling domain after the join. Slices are pure
    functions of the frozen index, so the merge — and the chase output —
    is byte-identical whether or not a worker died. Returns the number
    of dead workers contained this pass (0 on a clean pass); when
    positive it is also added to the [parallel.worker_deaths] counter,
    which is registered lazily so clean runs stay byte-comparable. *)
val collect :
  pool:Shard.t ->
  index:Index.t ->
  fired:(key, unit) Hashtbl.t ->
  key_of:(int -> Homomorphism.binding -> key) ->
  check:(int -> Homomorphism.binding -> Index.t -> bool) option ->
  job list ->
  consider:(int -> Homomorphism.binding -> verdict option -> unit) ->
  int
