(** The meta problems: deciding (uniform) UCQk-equivalence
    (Theorems 5.1, 5.6, 5.10; Propositions 5.2, 5.5, 5.11).

    The executable procedure follows the paper's recipe: compute the
    UCQk-approximation [S^a_k] and test [S ⊆ S^a_k] (the converse holds by
    construction), with containment decided through the chase
    (Proposition 4.5). The automata-based 2ExpTime machinery of Appendix B
    is replaced by the chase/finite-witness backend (DESIGN.md §5.1), so
    verdicts are three-valued. *)

open Relational
module V = Sigma_containment

type verdict = V.verdict = Holds | Fails | Unknown

(** [cqs_uniformly_ucqk_equivalent k s] — uniform UCQk-equivalence of a
    CQS via Proposition 5.11. Exact for [S ∈ (FG_m, UCQ)] whenever
    [k ≥ cqs_threshold s]; a warning is logged below the threshold (the
    approximation may then be incomplete, cf. Appendix C.5). Returns the
    verdict together with the witnessing equivalent CQS when it holds. *)
let cqs_uniformly_ucqk_equivalent ?max_level ?max_facts k (s : Cqs.t) :
    verdict * Cqs.t option =
  if k < Approximation.cqs_threshold s then
    Logs.warn (fun m ->
        m "uniform UCQ%d-equivalence below the threshold %d: the \
           approximation may be incomplete" k (Approximation.cqs_threshold s));
  match Approximation.cqs_approximation k s with
  | None -> (Fails, None)
  | Some sa -> (
      match
        V.contained ?max_level ?max_facts (Cqs.constraints s) (Cqs.query s)
          (Cqs.query sa)
      with
      | Holds -> (Holds, Some sa)
      | v -> (v, None))

(** [omq_ucqk_equivalent k q] — UCQk-equivalence of a *full data schema*
    guarded OMQ: by Proposition 5.5 this coincides with uniform
    UCQk-equivalence of the corresponding CQS, and by Proposition 5.2
    uniform and non-uniform equivalence agree for guarded OMQs with
    [k ≥ ar(T) − 1]. For OMQs whose data schema is properly smaller the
    reduction does not apply and [Unknown] is returned. *)
let omq_ucqk_equivalent ?max_level ?max_facts k (q : Omq.t) :
    verdict * Omq.t option =
  if not (Omq.has_full_data_schema q) then (Unknown, None)
  else
    let s = Cqs.make ~constraints:(Omq.ontology q) ~query:(Omq.query q) in
    match cqs_uniformly_ucqk_equivalent ?max_level ?max_facts k s with
    | Holds, Some sa -> (Holds, Some (Cqs.omq sa))
    | v, _ -> (v, None)

(** [omq_grounding_equivalent k q] — the faithful Definition C.6 route for
    guarded OMQs (small queries only): compute [Q^a_k] and check
    [Q ⊆ Q^a_k] via the chase of each disjunct's canonical database
    (sound for OMQs whose disjuncts use only data-schema predicates). *)
let omq_grounding_equivalent ?max_level ?max_facts ?max_side k (q : Omq.t) :
    verdict * Omq.t option =
  let query_preds = Ucq.schema (Omq.query q) in
  if not (Schema.subset query_preds (Omq.data_schema q)) then (Unknown, None)
  else
    match Approximation.omq_approximation ?max_level ?max_side k q with
    | None -> (Fails, None)
    | Some qa -> (
        match
          V.contained ?max_level ?max_facts (Omq.ontology q) (Omq.query q)
            (Omq.query qa)
        with
        | Holds -> (Holds, Some qa)
        | v -> (v, None))

(** [semantic_ucq_treewidth ?limit s] — the least [k ≤ limit] such that
    the CQS is uniformly UCQk-equivalent, if any. *)
let semantic_ucq_treewidth ?max_level ?max_facts ?(limit = 4) (s : Cqs.t) =
  let rec go k =
    if k > limit then None
    else
      match cqs_uniformly_ucqk_equivalent ?max_level ?max_facts k s with
      | Holds, Some sa -> Some (k, sa)
      | _ -> go (k + 1)
  in
  go 1
