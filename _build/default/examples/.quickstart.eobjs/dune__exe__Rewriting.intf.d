examples/rewriting.mli:
