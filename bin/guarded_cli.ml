(* The `guarded` command-line tool: chase, evaluate, classify, rewrite,
   decide UCQk-equivalence, and run the p-Clique reduction, over programs
   in the surface syntax (see lib/syntax/parser.ml). *)

open Relational
open Guarded_core
open Cmdliner

let read_program path =
  try Ok (Syntax.Parser.parse_file path) with
  | Syntax.Lexer.Error (msg, l, c) ->
      Error (Fmt.str "%s:%d:%d: %s" path l c msg)
  | Syntax.Parser.Error (msg, l, c) ->
      Error (Fmt.str "%s:%d:%d: %s" path l c msg)
  | Sys_error e -> Error e

(* Exit codes: 0 success, 1 runtime fault, 2 usage/input error. A violated
   library precondition ([Invalid_argument]) means the input asked for
   something the library rejects — an input error, reported in one line
   instead of a backtrace. *)
let guard f =
  try f () with
  | Invalid_argument msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1
  | e ->
      Fmt.epr "error: %s@." (Printexc.to_string e);
      1

let with_program path f =
  match read_program path with
  | Error e ->
      Fmt.epr "error: %s@." e;
      2
  | Ok p -> guard (fun () -> f p)

let get_query p name =
  match Syntax.Parser.query p name with
  | Some q -> Ok q
  | None ->
      Error
        (Fmt.str "no query named %S (available: %s)" name
           (String.concat ", " (List.map fst p.Syntax.Parser.queries)))

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")

let query_arg =
  Arg.(value & opt string "q" & info [ "query"; "q" ] ~docv:"NAME" ~doc:"Query name (default q).")

let level_arg =
  Arg.(value & opt int 8 & info [ "max-level" ] ~docv:"N" ~doc:"Chase level bound.")

let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Treewidth bound k.")

(* observability args, shared by the run-style commands *)
let stats_arg =
  Arg.(
    value & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:"Write the run report (outcome, per-level fact counts, counters, span tree) as JSON to $(docv).")

let budget_facts_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget-facts" ] ~docv:"N"
        ~doc:"Stop the chase gracefully once more than $(docv) facts are materialised.")

let budget_ms_arg =
  Arg.(
    value & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget for the chase, in milliseconds.")

let make_budget facts ms =
  match (facts, ms) with
  | None, None -> None
  | _ -> Some (Obs.Budget.create ?max_facts:facts ?max_ms:ms ())

let report_outcome out =
  match out with
  | Obs.Budget.Complete -> ()
  | Obs.Budget.Partial v -> Fmt.pr "%% partial: %a@." Obs.Budget.pp_violation v

(* ------------------------------------------------------------------ *)
(* chase                                                                *)
(* ------------------------------------------------------------------ *)

let engine_arg =
  let engine_conv =
    Arg.enum [ ("indexed", `Indexed); ("naive", `Naive); ("parallel", `Parallel) ]
  in
  Arg.(
    value & opt engine_conv `Indexed
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Saturation engine: $(b,indexed) (semi-naive, default), \
              $(b,parallel) (semi-naive with multicore trigger matching — \
              identical output), or $(b,naive).")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for the parallel engine (default: the \
              machine's recommended domain count). Implies \
              $(b,--engine parallel).")

(* Resolve the engine tag + --domains pair: --domains implies parallel;
   bare --engine parallel uses the machine's recommended domain count. *)
let resolve_engine tag domains : Tgds.Chase.engine =
  match (tag, domains) with
  | `Indexed, None -> `Indexed
  | `Naive, None -> `Naive
  | `Parallel, None -> `Parallel (Domain.recommended_domain_count ())
  | _, Some n -> `Parallel n

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Persist a chase checkpoint to $(docv) at every clean pass \
              boundary selected by $(b,--checkpoint-every).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:"Checkpoint every $(docv)th level (default 1; the final \
              boundary always checkpoints).")

let resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:"Resume the chase from the checkpoint in $(docv) instead of \
              starting from the program's database.")

let retries_arg =
  Arg.(
    value & opt (some int) None
    & info [ "retries" ] ~docv:"R"
        ~doc:"Supervise the run: retry up to $(docv) times per engine from \
              the last checkpoint, then degrade indexed → naive.")

let fault_plan_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fault-plan" ] ~docv:"SPEC"
        ~doc:"Deterministic fault injection: $(b,none), $(b,hit:N), \
              $(b,point:NAME:N), $(b,ms:X) (comma-separated, one per \
              attempt), or $(b,seed:S)[:$(b,K)].")

(* Shared tail of every successful chase: summary comments, the instance,
   the stats report. *)
let print_chase_result ~max_level ~stats ?(notes = []) r =
  Fmt.pr "%% chase %s (max level %d)@."
    (if Tgds.Chase.saturated r then "saturated" else "truncated")
    max_level;
  report_outcome (Tgds.Chase.outcome r);
  List.iter (fun n -> Fmt.pr "%% %s@." n) notes;
  (match Tgds.Chase.engine_result r with
  | Some er ->
      Fmt.pr "%% %d triggers fired, %d index probes@."
        er.Engine.Saturate.triggers_fired
        (Engine.Index.probes (Tgds.Chase.index r))
  | None -> ());
  Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) (Tgds.Chase.instance r);
  (match stats with
  | Some path -> Obs.Report.write path (Tgds.Chase.report r)
  | None -> ());
  0

(* The supervised path: any of --checkpoint/--resume/--retries/--fault-plan
   routes here; a bare `chase` keeps the direct, supervisor-free path. *)
let resilient_chase ~engine ~max_level ~stats ~budget ~checkpoint ~ck_every
    ~resume ~retries ~fault_plan sigma db =
  let plan =
    match fault_plan with
    | None -> Ok Resil.Fault.none
    | Some spec -> Resil.Fault.parse spec
  in
  match plan with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok fault_plan -> (
      let resume_from =
        match resume with
        | None -> Ok None
        | Some path -> Result.map Option.some (Resil.Checkpoint.load path)
      in
      match resume_from with
      | Error msg ->
          Fmt.epr "error: %s@." msg;
          2
      | Ok resume_from -> (
          (* the supervisor takes a single budget: fold the CLI's level
             bound in, as [Chase.run ~max_level] would *)
          let budget =
            let levels = Obs.Budget.create ~max_levels:max_level () in
            match budget with
            | None -> levels
            | Some b -> Obs.Budget.meet levels b
          in
          match
            Resil.Supervisor.run ~engine ~budget ~checkpoint_every:ck_every
              ?checkpoint_path:checkpoint ?resume_from ?retries ~fault_plan
              sigma db
          with
          | Resil.Supervisor.Completed r ->
              print_chase_result ~max_level ~stats r
          | Resil.Supervisor.Recovered (r, log) ->
              print_chase_result ~max_level ~stats
                ~notes:
                  [
                    Fmt.str "recovered after %d failed attempt(s)"
                      (List.length log);
                  ]
                r
          | Resil.Supervisor.Degraded (r, log) ->
              print_chase_result ~max_level ~stats
                ~notes:
                  [
                    Fmt.str "degraded to a fallback engine after %d failed \
                             attempt(s)"
                      (List.length log);
                  ]
                r
          | Resil.Supervisor.Failed d ->
              Fmt.epr "error: chase failed after %d attempt(s): %s@."
                (List.length d.attempts) d.Resil.Supervisor.message;
              1))

let chase_cmd =
  let run file max_level engine_tag domains stats budget_facts budget_ms
      checkpoint ck_every resume retries fault_plan =
    with_program file (fun p ->
        let engine = resolve_engine engine_tag domains in
        let budget = make_budget budget_facts budget_ms in
        let sigma = p.Syntax.Parser.tgds in
        let db = Syntax.Parser.database p in
        let resilient =
          checkpoint <> None || resume <> None || retries <> None
          || fault_plan <> None
        in
        if resilient then
          resilient_chase ~engine ~max_level ~stats ~budget ~checkpoint
            ~ck_every ~resume ~retries ~fault_plan sigma db
        else
          let r = Tgds.Chase.run ~engine ~max_level ?budget sigma db in
          print_chase_result ~max_level ~stats r)
  in
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the level-bounded oblivious chase and print the result.")
    Term.(
      const run $ file_arg $ level_arg $ engine_arg $ domains_arg $ stats_arg
      $ budget_facts_arg $ budget_ms_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ retries_arg $ fault_plan_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

(* Apply a mutation log against a maintained store (lib/incr): chase the
   program's database once (or resume a maintained checkpoint), then
   repair incrementally per mutation. Output: one `%` comment per
   mutation with the repair counts, a summary, the final instance, and —
   like `chase` — optional --stats / --checkpoint artifacts. Everything
   printed is byte-identical across indexed/parallel engines and domain
   counts. *)
let serve_cmd =
  let read_log path =
    try Ok (Syntax.Parser.parse_mutations_file path) with
    | Syntax.Lexer.Error (msg, l, c) ->
        Error (Fmt.str "%s:%d:%d: %s" path l c msg)
    | Syntax.Parser.Error (msg, l, c) ->
        Error (Fmt.str "%s:%d:%d: %s" path l c msg)
    | Sys_error e -> Error e
  in
  let run file log max_level engine_tag domains stats checkpoint resume =
    with_program file (fun p ->
        match read_log log with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok muts -> (
            let engine = resolve_engine engine_tag domains in
            let sigma = p.Syntax.Parser.tgds in
            let span = Obs.Span.root "serve" in
            let store =
              match resume with
              | None ->
                  Ok
                    (Incr.create ~engine ~max_level ~obs:span sigma
                       (Syntax.Parser.database p))
              | Some path ->
                  Result.map
                    (fun ck -> Incr.of_checkpoint ~engine ~obs:span sigma ck)
                    (Resil.Checkpoint.load path)
            in
            match store with
            | Error e ->
                Fmt.epr "error: %s@." e;
                2
            | Ok store ->
                if not (Incr.saturated store) then begin
                  Fmt.epr
                    "error: store did not saturate within %d levels — cannot \
                     maintain a truncated chase@."
                    max_level;
                  1
                end
                else begin
                  Fmt.pr "%% serve: store saturated, %d facts@."
                    (Incr.size store);
                  let inserts = ref 0 and deletes = ref 0 and noops = ref 0 in
                  List.iter
                    (fun m ->
                      let op =
                        match m with
                        | Syntax.Parser.Add f -> Incr.Insert f
                        | Syntax.Parser.Del f -> Incr.Delete f
                      in
                      let eff = Incr.apply ~obs:span store op in
                      (match (op, eff.Incr.e_noop) with
                      | Incr.Insert f, true ->
                          incr noops;
                          Fmt.pr "%% +%a: no-op (already in the base)@." Fact.pp f
                      | Incr.Delete f, true ->
                          incr noops;
                          Fmt.pr "%% -%a: no-op (not in the base)@." Fact.pp f
                      | Incr.Insert f, false ->
                          incr inserts;
                          Fmt.pr "%% +%a: %d facts added@." Fact.pp f
                            eff.Incr.e_repaired
                      | Incr.Delete f, false ->
                          incr deletes;
                          Fmt.pr
                            "%% -%a: overdeleted %d, rederived %d, repaired \
                             %d, deleted %d@."
                            Fact.pp f eff.Incr.e_overdeleted
                            eff.Incr.e_rederived eff.Incr.e_repaired
                            eff.Incr.e_deleted))
                    muts;
                  Fmt.pr
                    "%% serve: %d mutations applied (%d inserts, %d deletes, \
                     %d no-ops), %d facts@."
                    (List.length muts) !inserts !deletes !noops
                    (Incr.size store);
                  Instance.iter
                    (fun f -> Fmt.pr "%a.@." Fact.pp f)
                    (Incr.instance store);
                  (match checkpoint with
                  | Some path ->
                      Resil.Checkpoint.save path (Incr.checkpoint store)
                  | None -> ());
                  Obs.Span.exit span;
                  (match stats with
                  | Some path ->
                      let rep = Incr.report ~name:"serve" ~span store in
                      Obs.Report.add_field rep "mutations"
                        (Obs.Json.Int (List.length muts));
                      Obs.Report.write path rep
                  | None -> ());
                  0
                end))
  in
  let log_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Mutation log: ground $(b,+fact(...).) / $(b,-fact(...).) \
                statements applied in order.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Maintain a chased store under a base-fact mutation log \
             (incremental insert/delete repair, no re-chase).")
    Term.(
      const run $ file_arg $ log_arg $ level_arg $ engine_arg $ domains_arg
      $ stats_arg $ checkpoint_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                             *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run file =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        let module T = Tgds.Tgd in
        Fmt.pr "TGDs: %d@." (List.length sigma);
        Fmt.pr "linear (L):           %b@." (T.all_linear sigma);
        Fmt.pr "guarded (G):          %b@." (T.all_guarded sigma);
        Fmt.pr "frontier-guarded (FG): %b@." (T.all_frontier_guarded sigma);
        Fmt.pr "full (no existentials): %b@." (T.all_full sigma);
        Fmt.pr "max head atoms (m):    %d@." (T.max_head_size sigma);
        Fmt.pr "schema arity (r):      %d@." (Schema.ar (T.schema_of_set sigma));
        0)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Report the syntactic TGD classes of the program's rules.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* eval (open world) / cqs-eval (closed world)                          *)
(* ------------------------------------------------------------------ *)

let pp_tuple ppf t = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") Relational.Term.pp_const) t

let eval_cmd =
  let run file qname max_level fpt stats budget_facts budget_ms =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let omq = Omq.full_data_schema ~ontology:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            let budget = make_budget budget_facts budget_ms in
            let span = Obs.Span.root "eval" in
            let exact =
              if Ucq.arity q = 0 then begin
                let v =
                  if fpt then
                    Omq_eval.certain_fpt ~max_level ?budget ~obs:span omq db []
                  else Omq_eval.certain ~max_level ?budget ~obs:span omq db []
                in
                Fmt.pr "%s%s@."
                  (if v.Omq_eval.holds then "true" else "false")
                  (if v.Omq_eval.exact then "" else " (bounded — not exact)");
                v.Omq_eval.exact
              end
              else begin
                let answers, exact =
                  Omq_eval.answers ~max_level ?budget ~obs:span omq db
                in
                List.iter (fun t -> Fmt.pr "%a@." pp_tuple t) answers;
                if not exact then Fmt.pr "%% bounded chase — possibly incomplete@.";
                exact
              end
            in
            Obs.Span.exit span;
            (match stats with
            | Some path ->
                let rep = Obs.Report.create ~span "eval" in
                Obs.Report.add_field rep "exact" (Obs.Json.Bool exact);
                Obs.Report.write path rep
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Open-world certain answers (ontology-mediated querying).")
    Term.(
      const run $ file_arg $ query_arg $ level_arg
      $ Arg.(value & flag & info [ "fpt" ] ~doc:"Use the linearization-based FPT engine (guarded only).")
      $ stats_arg $ budget_facts_arg $ budget_ms_arg)

(* `answers` — the streaming enumerator (Engine.Enumerate) behind
   Omq_eval.answer_set. Same knobs as `eval` plus the chase engine
   selection of `chase`; answer sets print in canonical sorted order, so
   the output is byte-identical across engines and domain counts. *)
let answers_cmd =
  let run file qname max_level fpt engine_tag domains stats budget_facts
      budget_ms =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let omq = Omq.full_data_schema ~ontology:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            let engine = resolve_engine engine_tag domains in
            let budget = make_budget budget_facts budget_ms in
            let span = Obs.Span.root "answers" in
            let r =
              Omq_eval.answer_set ~engine ~fpt ~max_level ?budget ~obs:span
                omq db
            in
            List.iter (fun t -> Fmt.pr "%a@." pp_tuple t) r.Omq_eval.tuples;
            report_outcome r.Omq_eval.outcome;
            if not r.Omq_eval.exact then
              Fmt.pr "%% bounded run — answer set possibly incomplete@.";
            Obs.Span.exit span;
            (match stats with
            | Some path ->
                let rep = Obs.Report.create ~span "answers" in
                Obs.Report.add_field rep "answers"
                  (Obs.Json.Int (List.length r.Omq_eval.tuples));
                Obs.Report.add_field rep "exact" (Obs.Json.Bool r.Omq_eval.exact);
                Obs.Report.write path rep
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:"Enumerate the open-world certain answers (output-sensitive: \
             walks index posting lists instead of testing the \
             |adom|^arity cross product).")
    Term.(
      const run $ file_arg $ query_arg $ level_arg
      $ Arg.(value & flag & info [ "fpt" ] ~doc:"Use the linearization-based FPT pipeline (guarded only).")
      $ engine_arg $ domains_arg $ stats_arg $ budget_facts_arg
      $ budget_ms_arg)

let cqs_eval_cmd =
  let run file qname optimize stats =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            let db = Syntax.Parser.database p in
            if not (Cqs.admissible s db) then
              Fmt.pr "%% warning: database violates the constraints (promise broken)@.";
            let span = Obs.Span.root "cqs-eval" in
            let s = if optimize then Cqs_eval.optimize ~obs:span s else s in
            if optimize then
              Fmt.pr "%% optimized query: %a@." Ucq.pp (Cqs.query s);
            List.iter (fun t -> Fmt.pr "%a@." pp_tuple t)
              (Cqs_eval.answers ~obs:span s db);
            Obs.Span.exit span;
            (match stats with
            | Some path -> Obs.Report.write path (Obs.Report.create ~span "cqs-eval")
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "cqs-eval"
       ~doc:"Closed-world evaluation under integrity constraints.")
    Term.(
      const run $ file_arg $ query_arg
      $ Arg.(value & flag & info [ "optimize" ] ~doc:"Σ-minimize the query first.")
      $ stats_arg)

(* ------------------------------------------------------------------ *)
(* treewidth / core                                                     *)
(* ------------------------------------------------------------------ *)

let treewidth_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            List.iteri
              (fun i cq ->
                Fmt.pr "disjunct %d: treewidth %d, core treewidth %d@." i
                  (Cq.treewidth cq)
                  (Cq_core.semantic_treewidth cq))
              (Ucq.disjuncts q);
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            (match Equivalence.semantic_ucq_treewidth s with
            | Some (k, _) -> Fmt.pr "uniformly UCQ%d-equivalent under Σ@." k
            | None -> Fmt.pr "not uniformly UCQk-equivalent for k ≤ 4@.");
            0)
  in
  Cmd.v
    (Cmd.info "treewidth"
       ~doc:"Treewidths: syntactic, of the core, and modulo the constraints.")
    Term.(const run $ file_arg $ query_arg)

let rewrite_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            if not (Tgds.Tgd.all_linear p.Syntax.Parser.tgds) then begin
              Fmt.epr "error: UCQ rewriting requires linear TGDs@.";
              1
            end
            else begin
              let q', complete = Tgds.Linear_rewrite.rewrite p.Syntax.Parser.tgds q in
              List.iter
                (fun cq -> Fmt.pr "%a@." (Syntax.Pretty.pp_query qname) cq)
                (Ucq.disjuncts q');
              if not complete then Fmt.pr "%% budget exhausted — possibly incomplete@.";
              0
            end)
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Perfect UCQ rewriting for linear TGDs (Proposition D.2).")
    Term.(const run $ file_arg $ query_arg)

let equiv_cmd =
  let run file qname k =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let s = Cqs.make ~constraints:p.Syntax.Parser.tgds ~query:q in
            let verdict, witness = Equivalence.cqs_uniformly_ucqk_equivalent k s in
            Fmt.pr "uniformly UCQ%d-equivalent: %a@." k
              Sigma_containment.pp_verdict verdict;
            (match witness with
            | Some sa -> Fmt.pr "witness: %a@." Ucq.pp (Cqs.query sa)
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Decide uniform UCQk-equivalence (the meta problem, Thm 5.6/5.10).")
    Term.(const run $ file_arg $ query_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* terminates / witness / reduce                                        *)
(* ------------------------------------------------------------------ *)

let terminates_cmd =
  let run file =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        let module T = Tgds.Termination in
        Fmt.pr "weakly acyclic:            %b@." (T.weakly_acyclic sigma);
        Fmt.pr "termination guaranteed:    %b@."
          (T.terminates_on_all_databases sigma);
        Fmt.pr "dependency edges:@.";
        List.iter (fun e -> Fmt.pr "  %a@." T.pp_edge e) (T.dependency_edges sigma);
        0)
  in
  Cmd.v
    (Cmd.info "terminates"
       ~doc:"Static chase-termination analysis (weak acyclicity).")
    Term.(const run $ file_arg)

let witness_cmd =
  let run file n =
    with_program file (fun p ->
        let sigma = p.Syntax.Parser.tgds in
        if not (Tgds.Tgd.all_guarded sigma) then begin
          Fmt.epr "error: finite witnesses require guarded TGDs@.";
          1
        end
        else begin
          let db = Syntax.Parser.database p in
          let m = Guarded_core.Finite_witness.build ~n sigma db in
          Fmt.pr "%% finite witness M(D,Σ,%d): %d facts, model: %b@." n
            (Instance.size m)
            (Guarded_core.Finite_witness.verify sigma db m);
          Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) m;
          0
        end)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Build the finite witness M(D,Σ,n) of Theorem 6.7.")
    Term.(
      const run $ file_arg
      $ Arg.(value & opt int 3 & info [ "n" ] ~doc:"Query-variable budget."))

let reduce_cmd =
  let run file qname =
    with_program file (fun p ->
        match get_query p qname with
        | Error e ->
            Fmt.epr "error: %s@." e;
            2
        | Ok q ->
            let sigma = p.Syntax.Parser.tgds in
            if not (Tgds.Tgd.all_guarded sigma) then begin
              Fmt.epr "error: the OMQ→CQS reduction requires guarded TGDs@.";
              1
            end
            else begin
              let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
              let db = Syntax.Parser.database p in
              let d_star = Reductions.omq_to_cqs omq db in
              Fmt.pr "%% D* (%d facts; satisfies Σ: %b)@." (Instance.size d_star)
                (Tgds.Tgd.satisfies_all d_star sigma);
              Instance.iter (fun f -> Fmt.pr "%a.@." Fact.pp f) d_star;
              0
            end)
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Proposition 5.8: build D* reducing open-world to closed-world evaluation.")
    Term.(const run $ file_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* clique reduction demo                                                *)
(* ------------------------------------------------------------------ *)

let clique_cmd =
  let run n k p_edge seed =
    let graph = Workload.random_graph ~n ~p:p_edge ~seed in
    let truth = Qgraph.Graph.has_clique graph k in
    let q = if k <= 2 then Workload.path_cq 2 else Workload.grid_cq k (Grohe.capital_k k) in
    let d = Reductions.constraint_free_instance q in
    (match Reductions.clique_to_cqs d ~graph ~k with
    | None ->
        Fmt.pr "no %d×%d grid minor in the query — cannot carry k=%d@." k
          (Grohe.capital_k k) k
    | Some ci ->
        let via = Reductions.decide_clique ci in
        Fmt.pr "graph: %d vertices, %d edges@." (Qgraph.Graph.num_vertices graph)
          (Qgraph.Graph.num_edges graph);
        Fmt.pr "D* size: %d facts@." (Instance.size ci.Reductions.d_star.Grohe.db);
        Fmt.pr "%d-clique via CQS evaluation: %b (direct search: %b)@." k via truth);
    0
  in
  Cmd.v
    (Cmd.info "clique"
       ~doc:"Decide p-Clique through the Theorem 5.13 reduction to CQS evaluation.")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "n" ] ~doc:"Graph vertices.")
      $ Arg.(value & opt int 3 & info [ "k" ] ~doc:"Clique size.")
      $ Arg.(value & opt float 0.4 & info [ "p" ] ~doc:"Edge probability.")
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed."))

let main =
  Cmd.group
    (Cmd.info "guarded" ~version:"1.0.0"
       ~doc:"Open- and closed-world query evaluation under guarded TGDs.")
    [
      chase_cmd; serve_cmd; classify_cmd; eval_cmd; answers_cmd; cqs_eval_cmd;
      treewidth_cmd; rewrite_cmd; equiv_cmd; clique_cmd; terminates_cmd;
      witness_cmd; reduce_cmd;
    ]

let () = exit (Cmd.eval' main)
