(** Homomorphism search.

    The workhorse of the whole library: backtracking search for a mapping of
    the variables of an atom list into the constants of an instance such
    that every atom becomes a fact. Supports an initial partial binding, an
    injectivity constraint (for the [|=io] judgements of Appendix D), and
    full enumeration. Atom order is chosen dynamically, most-constrained
    first. *)

open Term

type binding = const VarMap.t

let apply_binding (b : binding) (a : Atom.t) =
  Atom.apply (VarMap.map (fun c -> Const c) b) a

(* Match one atom against one tuple, extending [b]. Repeated variables and
   constants are checked positionally. *)
let match_atom ~injective (b : binding) (a : Atom.t) (tuple : const list) :
    binding option =
  let range b = VarMap.fold (fun _ c acc -> ConstSet.add c acc) b ConstSet.empty in
  let rec go b used args tuple =
    match (args, tuple) with
    | [], [] -> Some b
    | Const c :: args', d :: tuple' ->
        if equal_const c d then go b used args' tuple' else None
    | Var x :: args', d :: tuple' -> (
        match VarMap.find_opt x b with
        | Some c -> if equal_const c d then go b used args' tuple' else None
        | None ->
            if injective && ConstSet.mem d used then None
            else go (VarMap.add x d b) (ConstSet.add d used) args' tuple')
    | _ -> None
  in
  if List.length (Atom.args a) <> List.length tuple then None
  else go b (if injective then range b else ConstSet.empty) (Atom.args a) tuple

(* Number of unbound variables of [a] under [b]; used for atom selection. *)
let unbound_count (b : binding) a =
  VarSet.fold
    (fun x acc -> if VarMap.mem x b then acc else acc + 1)
    (Atom.vars a) 0

(* Matches of [a] under [b], counted with an early exit: [None] as soon as
   the count would exceed [limit] (the atom then cannot be selected), else
   [Some (count, tuples)] with the matching tuples in relation order — the
   selected atom's candidates are reused directly instead of rescanning
   [Instance.tuples_of] after selection. Matching is scored without the
   injectivity constraint (a superset), exactly as the previous
   candidate-list scoring did; the search re-checks each tuple under the
   caller's [~injective] when expanding. *)
let matches_upto inst ~limit (b : binding) a =
  let rec go n acc = function
    | [] -> Some (n, List.rev acc)
    | t :: rest -> (
        match match_atom ~injective:false b a t with
        | Some _ -> if n >= limit then None else go (n + 1) (t :: acc) rest
        | None -> go n acc rest)
  in
  go 0 [] (Instance.tuples_of (Atom.pred a) inst)

(** [fold_homs ?injective ?init ?ordering atoms inst f acc] folds [f] over
    every homomorphism from [atoms] to [inst] extending [init].
    Injectivity, when requested, constrains the full variable-to-constant
    map. [ordering] selects the atom-selection strategy: [`Dynamic]
    (default) picks the most constrained atom at every step; [`Static]
    processes atoms in the given order (exposed for the ablation
    benchmarks). *)
let fold_homs ?(injective = false) ?(init = VarMap.empty)
    ?(ordering = `Dynamic) atoms inst f acc =
  let rec search b pending acc =
    match pending with
    | [] -> f b acc
    | first_atom :: static_rest ->
        (* choose the most constrained atom: fewest candidate tuples,
           tie-broken by fewer unbound variables. Counting stops early the
           moment an atom exceeds the best count seen so far, and the
           winner's matches are kept so expansion never rescans the
           relation. *)
        let idx, a, cands =
          match ordering with
          | `Static ->
              (0, first_atom, Instance.tuples_of (Atom.pred first_atom) inst)
          | `Dynamic ->
              let best =
                List.fold_left
                  (fun best (i, a) ->
                    let u = unbound_count b a in
                    match best with
                    | None -> (
                        match matches_upto inst ~limit:max_int b a with
                        | Some (c, ms) -> Some (i, a, u, c, ms)
                        | None -> assert false)
                    | Some (_, _, bu, bc, _) -> (
                        match matches_upto inst ~limit:bc b a with
                        | Some (c, ms) when c < bc || (c = bc && u < bu) ->
                            Some (i, a, u, c, ms)
                        | _ -> best))
                  None
                  (List.mapi (fun i a -> (i, a)) pending)
              in
              let i, a, _, _, ms =
                match best with Some b -> b | None -> assert false
              in
              (i, a, ms)
        in
        let rest =
          if idx = 0 then static_rest
          else List.filteri (fun i _ -> i <> idx) pending
        in
        List.fold_left
          (fun acc tuple ->
            match match_atom ~injective b a tuple with
            | Some b' -> search b' rest acc
            | None -> acc)
          acc cands
  in
  search init atoms acc

exception Found of binding

(** First homomorphism, if any. *)
let find ?injective ?init atoms inst =
  try
    fold_homs ?injective ?init atoms inst (fun b _ -> raise (Found b)) ();
    None
  with Found b -> Some b

let exists ?injective ?init atoms inst =
  Option.is_some (find ?injective ?init atoms inst)

(** All homomorphisms (exponentially many in general — small inputs only). *)
let all ?injective ?init atoms inst =
  List.rev (fold_homs ?injective ?init atoms inst (fun b acc -> b :: acc) [])

(* ------------------------------------------------------------------ *)
(* Homomorphisms between instances                                      *)
(* ------------------------------------------------------------------ *)

(* Encode source constants as variables "#<n>". The numbering is local to
   each call: [ConstSet.elements] is sorted, so position [i] gets "#i+1"
   deterministically, and no state survives the call — a long-running
   process issuing many [maps_to] checks holds no growing const→var table,
   and concurrent callers (e.g. [Parallel] engine workers) share nothing. *)
let pattern_of_instance src =
  let consts = ConstSet.elements (Instance.dom src) in
  let tbl = List.mapi (fun i c -> (c, Printf.sprintf "#%d" (i + 1))) consts in
  let atoms =
    List.map
      (fun f ->
        Atom.make (Fact.pred f)
          (List.map (fun c -> Var (List.assoc c tbl)) (Fact.args f)))
      (Instance.facts src)
  in
  (atoms, tbl)

let binding_to_const_map tbl (b : binding) =
  List.fold_left
    (fun acc (c, v) ->
      match VarMap.find_opt v b with
      | Some d -> ConstMap.add c d acc
      | None -> acc)
    ConstMap.empty tbl

(** [find_between ?injective ?fixed src dst] searches a homomorphism
    [h : dom(src) → dom(dst)] with [R(h(t̄)) ∈ dst] for every
    [R(t̄) ∈ src]; [fixed] pre-assigns some constants (e.g. the identity on
    a distinguished tuple, as in Proposition 2.2). *)
let find_between ?(injective = false) ?(fixed = ConstMap.empty) src dst =
  let atoms, tbl = pattern_of_instance src in
  let init =
    List.fold_left
      (fun acc (c, v) ->
        match ConstMap.find_opt c fixed with
        | Some d -> VarMap.add v d acc
        | None -> acc)
      VarMap.empty tbl
  in
  find ~injective ~init atoms dst
  |> Option.map (fun b ->
         (* constants of src absent from the pattern (none: every constant
            of an instance occurs in a fact) *)
         binding_to_const_map tbl b)

(** [maps_to src dst] — [src → dst] in the paper's notation. *)
let maps_to ?injective ?fixed src dst =
  Option.is_some (find_between ?injective ?fixed src dst)

(** All homomorphisms between instances. *)
let all_between ?(injective = false) ?(fixed = ConstMap.empty) src dst =
  let atoms, tbl = pattern_of_instance src in
  let init =
    List.fold_left
      (fun acc (c, v) ->
        match ConstMap.find_opt c fixed with
        | Some d -> VarMap.add v d acc
        | None -> acc)
      VarMap.empty tbl
  in
  List.map (binding_to_const_map tbl) (all ~injective ~init atoms dst)

(** [verify_between src dst h] — checks that [h] is a homomorphism from
    [src] to [dst] (total on [dom src]). *)
let verify_between src dst (h : const ConstMap.t) =
  ConstSet.for_all (fun c -> ConstMap.mem c h) (Instance.dom src)
  && Instance.for_all
       (fun f -> Instance.mem (Fact.rename (fun c -> ConstMap.find_opt c h) f) dst)
       src

(** Composition [g ∘ h] of constant maps. *)
let compose (h : const ConstMap.t) (g : const ConstMap.t) =
  ConstMap.map (fun c -> match ConstMap.find_opt c g with Some d -> d | None -> c) h

let is_injective (h : const ConstMap.t) =
  let range = ConstMap.fold (fun _ c acc -> c :: acc) h [] in
  List.length range = List.length (List.sort_uniq compare_const range)
