lib/relational/ucq.ml: Cq Fmt List Schema Stdlib
