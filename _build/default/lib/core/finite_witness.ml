(** Finite witnesses for strong finite controllability (Definition 6.5,
    Theorem 6.7).

    [build ~n sigma db] produces a *finite* model [M ⊇ db] of [sigma]
    intended to answer every UCQ with at most [n] variables exactly like
    [chase(db,sigma)].

    Substitution (DESIGN.md §5): the paper obtains [M(D,Σ,n)] from the
    finite model property of GNFO at a doubly-exponential size bound, which
    is not effectively constructible. Here [M] is built by *type-blocking*
    the guarded chase: a trigger fired at depth beyond [blocking_depth]
    whose child bag has an isomorphism type seen before reuses the
    representative bag's nulls instead of inventing fresh ones ("rewinding"
    the chase). The result is always a finite model of [db ∧ Σ]; blocking
    only beyond depth [n] keeps matches of ≤ n-variable queries intact on
    the workloads shipped here, and every use in tests and reductions is
    cross-checked against the level-bounded chase. *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd

(* Marker predicate distinguishing frontier constants inside canonical
   keys (so that bag canonicalization cannot exchange a frontier constant
   with an invented one). *)
let frontier_marker = "\004FR"

let child_key sigma_index head_atoms (b : Homomorphism.binding) inst frontier_consts =
  (* head atoms instantiated with frontier constants, existentials as
     canonical placeholders *)
  let ex_subst = Hashtbl.create 4 in
  let bag_atoms =
    List.map
      (fun a ->
        Fact.make (Atom.pred a)
          (List.map
             (function
               | Const c -> c
               | Var x -> (
                   match VarMap.find_opt x b with
                   | Some c -> c
                   | None ->
                       (match Hashtbl.find_opt ex_subst x with
                       | Some c -> c
                       | None ->
                           let c =
                             Named (Printf.sprintf "\003z%d" (Hashtbl.length ex_subst))
                           in
                           Hashtbl.replace ex_subst x c;
                           c)))
             (Atom.args a)))
      head_atoms
  in
  let context = Instance.restrict inst frontier_consts in
  let markers =
    ConstSet.fold (fun c acc -> Fact.make frontier_marker [ c ] :: acc) frontier_consts []
  in
  let bag =
    Instance.of_facts (bag_atoms @ markers) |> fun i -> Instance.union i context
  in
  let key, _, _ = Tgds.Ground_closure.canonicalize bag in
  Printf.sprintf "%d|%s" sigma_index key

(** [build ?blocking_depth ?max_facts ~n sigma db] — the blocked chase.
    The result is guaranteed to be a model of [sigma] containing [db]
    whenever the run completes within [max_facts] (raises [Failure]
    otherwise). Each bag type owns a pool of [n+2] representative
    null-tuples used round-robin by trigger depth, so a rewired chain
    closes into a cycle of length [n+2] — longer than any ≤ n-variable
    query can trace. *)
let build ?blocking_depth ?(max_facts = 200_000) ~n sigma db =
  let blocking_depth = match blocking_depth with Some d -> d | None -> n + 1 in
  let sigma_arr = Array.of_list sigma in
  let level_of : (Fact.t, int) Hashtbl.t = Hashtbl.create 256 in
  let fired = Hashtbl.create 256 in
  let representatives : (string, const VarMap.t) Hashtbl.t = Hashtbl.create 64 in
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let inst = ref db in
  Instance.iter (fun f -> Hashtbl.replace level_of f 0) db;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i t ->
        let triggers =
          Homomorphism.fold_homs (Tgd.body t) !inst
            (fun b acc ->
              let bv = VarSet.elements (Tgd.body_vars t) in
              let key = (i, List.map (fun x -> VarMap.find_opt x b) bv) in
              if Hashtbl.mem fired key then acc else (b, key) :: acc)
            []
        in
        List.iter
          (fun (b, key) ->
            Hashtbl.replace fired key ();
            let body_level =
              List.fold_left
                (fun acc a ->
                  let f = Fact.of_atom (Homomorphism.apply_binding b a) in
                  max acc (try Hashtbl.find level_of f with Not_found -> 0))
                0 (Tgd.body t)
            in
            let ex = Tgd.existential_vars t in
            let frontier_consts =
              VarSet.fold
                (fun x acc ->
                  match VarMap.find_opt x b with
                  | Some c -> ConstSet.add c acc
                  | None -> acc)
                (Tgd.frontier t) ConstSet.empty
            in
            let ex_binding =
              if VarSet.is_empty ex then VarMap.empty
              else if body_level + 1 <= blocking_depth then
                VarSet.fold (fun z acc -> VarMap.add z (fresh_null ()) acc) ex VarMap.empty
              else begin
                let ck = child_key i (Tgd.head t) b !inst frontier_consts in
                let pool = max 3 (n + 2) in
                (* rotate through the type's pool by use order (not by
                   depth, whose stride depends on the ontology's shape):
                   a rewired chain then closes into a cycle of length
                   [pool] exactly *)
                let count =
                  match Hashtbl.find_opt counters ck with
                  | Some r -> r
                  | None ->
                      let r = ref 0 in
                      Hashtbl.replace counters ck r;
                      r
                in
                let idx = !count mod pool in
                incr count;
                let key = Printf.sprintf "%s!%d" ck idx in
                match Hashtbl.find_opt representatives key with
                | Some reps -> reps
                | None ->
                    let reps =
                      VarSet.fold
                        (fun z acc -> VarMap.add z (fresh_null ()) acc)
                        ex VarMap.empty
                    in
                    Hashtbl.replace representatives key reps;
                    reps
              end
            in
            let full = VarMap.union (fun _ a _ -> Some a) b ex_binding in
            List.iter
              (fun h ->
                let f = Fact.of_atom (Homomorphism.apply_binding full h) in
                if not (Instance.mem f !inst) then begin
                  inst := Instance.add_fact f !inst;
                  Hashtbl.replace level_of f (body_level + 1);
                  changed := true;
                  if Instance.size !inst > max_facts then
                    failwith "Finite_witness.build: fact budget exhausted"
                end)
              (Tgd.head t))
          triggers)
      sigma_arr
  done;
  !inst

(** [verify sigma db m] — sanity check: [m] contains [db] and models
    [sigma]. *)
let verify sigma db m = Instance.subset db m && Tgd.satisfies_all m sigma
