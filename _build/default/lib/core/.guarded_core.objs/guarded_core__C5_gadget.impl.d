lib/core/c5_gadget.ml: Atom Fact Hashtbl Instance List Printf Relational Term Tgds Workload
