lib/tgds/full_chase.ml: Fact Homomorphism Instance List Relational Schema Tgd Ucq
