examples/open_to_closed.ml: Atom Cq Fact Fmt Guarded_core Instance List Omq Omq_eval Reductions Relational Term Tgds Ucq Workload
