(** The level-wise chase (§2).

    A trigger is a TGD with a homomorphism of its body into the current
    instance; triggers fire once, inventing fresh labelled nulls for the
    existential variables. The default, oblivious policy is the paper's
    (§2): the result is unique up to isomorphism and the level-bounded
    slices [chase^ℓ_s(D,Σ)] of Lemma A.1 are canonical.

    Two engines: [`Indexed] (default) runs the semi-naive saturation of
    [lib/engine]; [`Naive] is the original re-enumerating loop, kept for
    the ablation benchmarks. Both produce the same s-levels (and the same
    instance up to null renaming). *)

open Relational

type result

type policy =
  | Oblivious  (** the paper's semantics: fire regardless of the head *)
  | Restricted  (** skip triggers whose head is already satisfied *)

type engine = [ `Naive | `Indexed ]

(** [run ?engine ?policy ?max_level ?max_facts sigma db] — chase until
    saturation, the level bound, or the fact budget. *)
val run :
  ?engine:engine ->
  ?policy:policy ->
  ?max_level:int ->
  ?max_facts:int ->
  Tgd.t list ->
  Instance.t ->
  result

(** The chased instance. *)
val instance : result -> Instance.t

(** No unfired trigger remained — the chase terminated. *)
val saturated : result -> bool

(** The chased instance as an indexed store (the engine's own store when
    the run was indexed; built on demand after a naive run). *)
val index : result -> Engine.Index.t

(** Saturation statistics ([None] after a naive run). *)
val stats : result -> Engine.Saturate.stats option

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    ([chase^l_s(D,Σ)] when the run reached level [l]). *)
val up_to_level : result -> int -> Instance.t

(** The s-level of a fact of the result. *)
val level : result -> Fact.t -> int option

(** The ground part [chase↓]: facts without invented nulls. *)
val ground_part : result -> Instance.t

(** Chase and return the instance. *)
val chase :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** [certain ?max_level sigma db q c̄] — sound bounded check of
    [c̄ ∈ q(chase(db,sigma))] (Proposition 3.1); the boolean reports
    whether the run saturated (verdict then exact). *)
val certain :
  ?engine:engine ->
  ?max_level:int ->
  ?max_facts:int ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool
