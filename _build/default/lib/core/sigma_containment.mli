(** Containment and equivalence under constraints (Proposition 4.5),
    decided through the chase of canonical databases with a
    finite-witness fallback; three-valued verdicts. *)

open Relational

type verdict = Holds | Fails | Unknown

val verdict_and : verdict -> verdict -> verdict
val verdict_or : verdict -> verdict -> verdict
val pp_verdict : Format.formatter -> verdict -> unit

(** One Proposition 4.5 check: [x̄ ∈ p2(chase(D[p1], Σ))]. *)
val cq_step : ?max_level:int -> ?max_facts:int -> Tgds.Tgd.t list -> Cq.t -> Cq.t -> verdict

(** [contained sigma q1 q2] — [q1 ⊆_Σ q2] for UCQs. *)
val contained :
  ?max_level:int -> ?max_facts:int -> Tgds.Tgd.t list -> Ucq.t -> Ucq.t -> verdict

(** [q1 ≡_Σ q2]. *)
val equivalent :
  ?max_level:int -> ?max_facts:int -> Tgds.Tgd.t list -> Ucq.t -> Ucq.t -> verdict

val cq_contained :
  ?max_level:int -> ?max_facts:int -> Tgds.Tgd.t list -> Cq.t -> Cq.t -> verdict

val cq_equivalent :
  ?max_level:int -> ?max_facts:int -> Tgds.Tgd.t list -> Cq.t -> Cq.t -> verdict

(** Greedy Σ-equivalent minimization (atom drops + contractions, only
    certified steps) — the executable version of Lemma 7.2's minimal
    [p]. *)
val minimize : Tgds.Tgd.t list -> Cq.t -> Cq.t

(** Minimize every disjunct, then drop Σ-subsumed disjuncts. *)
val minimize_ucq : Tgds.Tgd.t list -> Ucq.t -> Ucq.t
