lib/relational/term.ml: Fmt Map Set Stdlib String
