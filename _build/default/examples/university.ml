(* Ontology-mediated querying over a university domain (open world).

   Demonstrates: certain answers under incomplete data, the difference an
   ontology makes, the FPT evaluation pipeline of Proposition 3.3(3)
   (linearization), and exact atomic answering through the ground closure
   even when the chase is infinite.

   Run with: dune exec examples/university.exe *)

open Relational
open Guarded_core

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

let ontology = Workload.university_ontology ()

let db =
  Instance.of_facts
    [
      fact "Prof" [ "ada" ];
      fact "Prof" [ "turing" ];
      fact "Teaches" [ "turing"; "computability" ];
      fact "Course" [ "databases" ];
    ]

let boolean atoms = Ucq.of_cq (Cq.make atoms)

let () =
  Fmt.pr "== ontology-mediated querying: university ==@.@.";
  Fmt.pr "ontology (guarded TGDs):@.  %a@.@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    ontology;
  Fmt.pr "data (incomplete!): %a@.@." Instance.pp db;

  (* Without the ontology, no department is known. With it, departments
     are certain: every course is offered by one. *)
  let q_dept = boolean [ atom "Dept" [ v "d" ] ] in
  Fmt.pr "∃d Dept(d) without ontology: %b@." (Ucq.holds db q_dept);
  let omq = Omq.full_data_schema ~ontology ~query:q_dept in
  Fmt.pr "∃d Dept(d) with ontology:    %b@.@."
    (Omq_eval.certain omq db []).Omq_eval.holds;

  (* Certain answers with open answers: who is certainly faculty? Ada is,
     even though no Teaches fact mentions her — the ontology says every
     professor teaches something. *)
  let q_fac = Ucq.of_cq (Cq.make ~answer:[ "x" ] [ atom "Faculty" [ v "x" ] ]) in
  let omq_fac = Omq.full_data_schema ~ontology ~query:q_fac in
  let answers, exact = Omq_eval.answers omq_fac db in
  Fmt.pr "certain Faculty members (exact=%b): %a@.@." exact
    Fmt.(list ~sep:(any ", ") (fun ppf t -> Term.pp_const ppf (List.hd t)))
    answers;

  (* The FPT pipeline (Prop 3.3(3)): linearize the guarded ontology into
     type rules and chase the linear set. Same answers. *)
  let join =
    boolean [ atom "Teaches" [ v "x"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ]
  in
  let omq_join = Omq.full_data_schema ~ontology ~query:join in
  let base = Omq_eval.certain omq_join db [] in
  let fpt = Omq_eval.certain_fpt omq_join db [] in
  Fmt.pr "teaches-a-course-offered-by-a-dept:@.";
  Fmt.pr "  baseline chase engine: %b@." base.Omq_eval.holds;
  Fmt.pr "  FPT (linearized) engine: %b@.@." fpt.Omq_eval.holds;

  let lin = Tgds.Linearize.make ontology db in
  Fmt.pr "linearization: %d reachable Σ-types, %d linear rules, D* has %d facts@.@."
    (List.length lin.Tgds.Linearize.types)
    (List.length lin.Tgds.Linearize.sigma_star)
    (Instance.size lin.Tgds.Linearize.db_star);

  (* An ontology with an infinite chase: management chains. Atomic certain
     answers stay exact thanks to the ground closure. *)
  let mgr = Workload.manager_ontology () in
  let mdb = Instance.of_facts [ fact "Emp" [ "eve" ] ] in
  Fmt.pr "manager ontology (infinite chase):@.  %a@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    mgr;
  Fmt.pr "Managed(eve) certain: %b@."
    (Omq_eval.certain_atomic mgr mdb (fact "Managed" [ "eve" ]));
  Fmt.pr "ground closure: %a@." Instance.pp (Tgds.Ground_closure.compute mgr mdb);
  Fmt.pr "@.done.@."
