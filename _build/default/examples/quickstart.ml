(* Quickstart: the 5-minute tour of the library.

   Build a schema-free database, a guarded ontology, and a query; evaluate
   open world (certain answers) and closed world (plain evaluation under a
   constraint promise); inspect treewidth and the chase.

   Run with: dune exec examples/quickstart.exe *)

open Relational
open Guarded_core

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

let () =
  Fmt.pr "== guarded: quickstart ==@.@.";

  (* 1. A database. *)
  let db =
    Instance.of_facts
      [ fact "employee" [ "ada" ]; fact "works_in" [ "bob"; "sales" ] ]
  in
  Fmt.pr "database: %a@.@." Instance.pp db;

  (* 2. A guarded ontology: every employee works somewhere; workplaces are
     departments. The first rule invents a null — open-world reasoning. *)
  let ontology =
    [
      Tgds.Tgd.make
        ~body:[ atom "employee" [ v "x" ] ]
        ~head:[ atom "works_in" [ v "x"; v "d" ] ];
      Tgds.Tgd.make
        ~body:[ atom "works_in" [ v "x"; v "d" ] ]
        ~head:[ atom "department" [ v "d" ] ];
    ]
  in
  Fmt.pr "ontology:@.  %a@.@." Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp) ontology;
  assert (Tgds.Tgd.all_guarded ontology);

  (* 3. The chase derives the implied facts (Proposition 3.1). *)
  let chased = Tgds.Chase.run ontology db in
  Fmt.pr "chase (%s): %a@.@."
    (if Tgds.Chase.saturated chased then "saturated" else "bounded")
    Instance.pp
    (Tgds.Chase.instance chased);

  (* 4. Open world: is some department certain? For which x is
     "x works in some department" certain? *)
  let q_dept = Ucq.of_cq (Cq.make [ atom "department" [ v "d" ] ]) in
  let omq = Omq.full_data_schema ~ontology ~query:q_dept in
  let verdict = Omq_eval.certain omq db [] in
  Fmt.pr "OMQ ∃d department(d): %b (exact: %b)@." verdict.Omq_eval.holds
    verdict.Omq_eval.exact;

  let q_who =
    Ucq.of_cq
      (Cq.make ~answer:[ "x" ]
         [ atom "works_in" [ v "x"; v "d" ]; atom "department" [ v "d" ] ])
  in
  let omq_who = Omq.full_data_schema ~ontology ~query:q_who in
  let answers, _ = Omq_eval.answers omq_who db in
  Fmt.pr "certain answers to who-works-in-a-department: %a@.@."
    Fmt.(list ~sep:(any ", ") (fun ppf t -> Term.pp_const ppf (List.hd t)))
    answers;

  (* 5. Closed world: the same TGDs as integrity constraints. On a database
     that satisfies them, evaluation is direct — and the constraints
     license removing the redundant join. *)
  let admissible_db =
    Instance.of_facts
      [
        fact "employee" [ "ada" ];
        fact "works_in" [ "ada"; "r&d" ];
        fact "works_in" [ "bob"; "sales" ];
        fact "department" [ "r&d" ];
        fact "department" [ "sales" ];
      ]
  in
  let cqs = Cqs.make ~constraints:ontology ~query:q_who in
  assert (Cqs.admissible cqs admissible_db);
  Fmt.pr "closed-world answers: %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf t -> Term.pp_const ppf (List.hd t)))
    (Cqs_eval.answers cqs admissible_db);
  let optimized = Cqs_eval.optimize cqs in
  Fmt.pr "Σ-optimized query: %a@.@." Ucq.pp (Cqs.query optimized);

  (* 6. Treewidth: the measure behind every dichotomy in the paper. *)
  let grid = Workload.grid_cq 3 3 in
  Fmt.pr "3×3 grid query treewidth: %d (in CQ_3: %b, in CQ_2: %b)@."
    (Cq.treewidth grid) (Cq.in_cqk 3 grid) (Cq.in_cqk 2 grid);
  Fmt.pr "@.done.@."
