lib/core/specialization.mli: Atom Cq Relational Schema Term Tgds
