(** Fault-injection probe points.

    Long-running engines call {!hit} at their natural interruption points
    (pass boundaries, index inserts, join entries). With no hook installed
    a hit is a single dereference — the production cost is nil. A test or
    supervisor installs a hook to observe (or abort, by raising from the
    hook) the run deterministically; [lib/resil] builds seeded fault plans
    on top of this.

    Canonical point names (documented where they are emitted):
    - ["engine.pass"] — top of every saturation pass ({!Engine.Saturate});
    - ["engine.insert"] — every indexed fact insert ({!Engine.Index});
    - ["engine.join"] — every joiner search entry ({!Engine.Joiner});
    - ["chase.pass"] — top of every naive chase pass ({!Tgds.Chase});
    - ["full_chase.round"] — naive full-TGD saturation round;
    - ["ground_closure.round"] — ground-closure saturation round.

    The hook is process-global (the engines are single-threaded);
    installers must pair {!install} with {!clear}. *)

(** [install f] — make every {!hit} call [f point]. Replaces any
    previously installed hook. *)
val install : (string -> unit) -> unit

(** Remove the hook; {!hit} becomes free again. *)
val clear : unit -> unit

(** Whether a hook is currently installed. *)
val armed : unit -> bool

(** [hit point] — invoke the hook, if any, with the point's name.
    Whatever the hook raises propagates to the caller. *)
val hit : string -> unit
