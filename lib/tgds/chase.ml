(** The oblivious chase (§2), level-wise; see the interface.

    Both engines honour the same budget cut points — a check before each
    pass (with the level about to run) and a trigger-atomic re-check
    after each firing — so budgeted runs agree level by level with each
    other and with unbudgeted runs truncated at the cut. *)

open Relational
open Relational.Term

type result = {
  instance : Instance.t Lazy.t;
  level_of : (Fact.t, int) Hashtbl.t;
  saturated : bool;
  max_level : int;
  index : Engine.Index.t option;  (** the engine's store, when indexed *)
  engine_result : Engine.Saturate.result option;
  outcome : Obs.Budget.outcome;
  span : Obs.Span.t;
}

(* Key identifying a trigger: TGD index + frontier/body binding. *)
let trigger_key i (b : Homomorphism.binding) (sigma_i : Tgd.t) =
  let bv = VarSet.elements (Tgd.body_vars sigma_i) in
  let img = List.map (fun x -> VarMap.find_opt x b) bv in
  (i, img)

type policy = Oblivious | Restricted
type engine = [ `Naive | `Indexed ]

(* The original level-wise loop: every level re-enumerates all body
   homomorphisms of every TGD against the entire instance, deduplicating
   by trigger key. Budget checks sit at the same points as in
   {!Engine.Saturate.run}: top of pass with the level about to run, then
   trigger-atomically after each whole head lands. *)
let run_naive ~policy ~budget ~span sigma db =
  let sigma = Array.of_list sigma in
  let level_of : (Fact.t, int) Hashtbl.t = Hashtbl.create 256 in
  let fired = Hashtbl.create 256 in
  let inst = ref db in
  Instance.iter (fun f -> Hashtbl.replace level_of f 0) db;
  let saturated = ref false in
  let level = ref 0 in
  let violation = ref None in
  while (not !saturated) && !violation = None do
    match
      Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
        ~level:(!level + 1)
    with
    | Some v -> violation := Some v
    | None ->
        let lspan = Obs.Span.enter span "level" in
        let pass_no = !level + 1 in
        let level_fired = ref 0 in
        (* collect unfired triggers whose body lies in the current instance *)
        let new_triggers = ref [] in
        Array.iteri
          (fun i t ->
            Homomorphism.fold_homs (Tgd.body t) !inst
              (fun b () ->
                let key = trigger_key i b t in
                if not (Hashtbl.mem fired key) then
                  let active =
                    match policy with
                    | Oblivious -> true
                    | Restricted ->
                        (* skip when the head is already witnessed *)
                        let init =
                          VarMap.filter
                            (fun x _ -> VarSet.mem x (Tgd.frontier t))
                            b
                        in
                        not (Homomorphism.exists ~init (Tgd.head t) !inst)
                  in
                  if active then new_triggers := (i, b, key) :: !new_triggers
                  else Hashtbl.replace fired key ())
              ())
          sigma;
        let new_count = ref 0 in
        if !new_triggers = [] then saturated := true
        else begin
          incr level;
          List.iter
            (fun (i, b, key) ->
              if !violation = None then begin
                Hashtbl.replace fired key ();
                incr level_fired;
                let t = sigma.(i) in
                (* body image level *)
                let body_level =
                  List.fold_left
                    (fun acc a ->
                      let f = Fact.of_atom (Homomorphism.apply_binding b a) in
                      max acc (try Hashtbl.find level_of f with Not_found -> 0))
                    0 (Tgd.body t)
                in
                let fresh =
                  VarSet.fold
                    (fun z acc -> VarMap.add z (fresh_null ()) acc)
                    (Tgd.existential_vars t)
                    VarMap.empty
                in
                let full_binding =
                  VarMap.union (fun _ a _ -> Some a) b fresh
                in
                List.iter
                  (fun h ->
                    let f =
                      Fact.of_atom (Homomorphism.apply_binding full_binding h)
                    in
                    if not (Instance.mem f !inst) then begin
                      inst := Instance.add_fact f !inst;
                      Hashtbl.replace level_of f (body_level + 1);
                      incr new_count
                    end)
                  (Tgd.head t);
                match
                  Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
                    ~level:!level
                with
                | Some v -> violation := Some v
                | None -> ()
              end)
            (List.rev !new_triggers)
        end;
        Obs.Span.set lspan "level" (Obs.Json.Int pass_no);
        Obs.Span.set lspan "triggers_fired" (Obs.Json.Int !level_fired);
        Obs.Span.set lspan "new_facts" (Obs.Json.Int !new_count);
        Obs.Span.exit lspan
  done;
  let outcome =
    match !violation with
    | Some v -> Obs.Budget.Partial v
    | None -> Obs.Budget.Complete
  in
  {
    instance = Lazy.from_val !inst;
    level_of;
    saturated = !saturated;
    max_level = !level;
    index = None;
    engine_result = None;
    outcome;
    span;
  }

let run_indexed ~policy ~budget ~span sigma db =
  let rules =
    List.map
      (fun t -> Engine.Saturate.{ body = Tgd.body t; head = Tgd.head t })
      sigma
  in
  let policy =
    match policy with
    | Oblivious -> Engine.Saturate.Oblivious
    | Restricted -> Engine.Saturate.Restricted
  in
  let r = Engine.Saturate.run ~policy ~budget ~obs:span rules db in
  {
    instance = lazy (Engine.Index.to_instance r.Engine.Saturate.index);
    level_of = r.Engine.Saturate.level_of;
    saturated = r.Engine.Saturate.saturated;
    max_level = r.Engine.Saturate.max_level;
    index = Some r.Engine.Saturate.index;
    engine_result = Some r;
    outcome = r.Engine.Saturate.outcome;
    span;
  }

let run ?(engine = `Indexed) ?(policy = Oblivious) ?max_level ?max_facts
    ?budget ?obs sigma db =
  let budget =
    let legacy =
      match (max_level, max_facts) with
      | None, None -> Obs.Budget.unlimited
      | _ ->
          Obs.Budget.create ?max_facts ?max_levels:max_level ()
    in
    match budget with
    | None -> legacy
    | Some b -> Obs.Budget.meet legacy b
  in
  let span =
    match obs with
    | Some parent -> Obs.Span.enter parent "chase"
    | None -> Obs.Span.root "chase"
  in
  let r =
    match engine with
    | `Naive -> run_naive ~policy ~budget ~span sigma db
    | `Indexed -> run_indexed ~policy ~budget ~span sigma db
  in
  Obs.Span.exit span;
  r

(** [instance r] — the chased instance. *)
let instance (r : result) = Lazy.force r.instance

let saturated (r : result) = r.saturated
let outcome (r : result) = r.outcome
let engine_result (r : result) = r.engine_result
let max_level (r : result) = r.max_level

(** [index r] — the chased instance as an {!Engine.Index.t}, reusing the
    engine's store when the run was indexed. *)
let index (r : result) =
  match r.index with
  | Some idx -> idx
  | None -> Engine.Index.of_instance (Lazy.force r.instance)

(* s-level census; derived from [level_of], so it agrees between engines
   (a fact derived at pass ℓ has s-level ℓ under both). *)
let facts_per_level (r : result) =
  if r.max_level = 0 then []
  else begin
    let counts = Array.make (r.max_level + 1) 0 in
    Hashtbl.iter
      (fun _ l -> if l >= 1 && l <= r.max_level then counts.(l) <- counts.(l) + 1)
      r.level_of;
    List.init r.max_level (fun i -> counts.(i + 1))
  end

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    (i.e. [chase^l_s(D,Σ)] when the run reached at least level [l]). *)
let up_to_level (r : result) l =
  Instance.filter
    (fun f -> match Hashtbl.find_opt r.level_of f with Some lv -> lv <= l | None -> true)
    (Lazy.force r.instance)

(** [level r f] — the s-level of a fact of the result. *)
let level (r : result) f = Hashtbl.find_opt r.level_of f

(** The ground part [chase↓]: facts whose constants are all from [dom db]
    (equivalently, contain no labelled null invented by the chase). *)
let ground_part (r : result) =
  Instance.filter (fun f -> not (Fact.is_ground_of_nulls f)) (Lazy.force r.instance)

let report ?(name = "chase") (r : result) =
  let idx = index r in
  let rep =
    Obs.Report.create ~metrics:(Engine.Index.metrics idx) ~span:r.span name
  in
  Obs.Report.set_outcome rep r.outcome;
  Obs.Report.add_field rep "saturated" (Obs.Json.Bool r.saturated);
  Obs.Report.add_field rep "max_level" (Obs.Json.Int r.max_level);
  Obs.Report.add_field rep "facts" (Obs.Json.Int (Hashtbl.length r.level_of));
  Obs.Report.add_field rep "facts_per_level"
    (Obs.Json.List (List.map (fun n -> Obs.Json.Int n) (facts_per_level r)));
  (match r.engine_result with
  | Some er ->
      Obs.Report.add_field rep "triggers_fired"
        (Obs.Json.Int er.Engine.Saturate.triggers_fired);
      Obs.Report.add_field rep "triggers_dismissed"
        (Obs.Json.Int er.Engine.Saturate.triggers_dismissed)
  | None -> ());
  rep

(** Convenience: chase and return the instance. *)
let chase ?engine ?max_level ?max_facts ?budget sigma db =
  instance (run ?engine ?max_level ?max_facts ?budget sigma db)

(** [certain ?max_level sigma db q tuple] — sound check that
    [tuple ∈ q(chase(db,sigma))] using a level-bounded chase; complete when
    the run saturates (Proposition 3.1). Returns the verdict together with
    whether it is known complete. *)
let certain ?engine ?(max_level = 6) ?max_facts ?budget ?obs sigma db
    (q : Ucq.t) tuple =
  let r = run ?engine ~max_level ?max_facts ?budget ?obs sigma db in
  (Engine.Joiner.entails_ucq (index r) q tuple, r.saturated)
