(** Ground closure of the guarded chase.

    For a guarded set Σ and a database D, computes
    [chase↓(D,Σ) = { R(ā) ∈ chase(D,Σ) | ā ⊆ dom(D) }] — the instance
    called [complete(D,Σ)] and [D⁺] in Appendix A/F, and the source of the
    atom types [typeD,Σ(α)]. Unlike the chase itself, the ground closure is
    always finite, and for fixed Σ computable in polynomial time.

    Algorithm: a worklist fixpoint over *bag types*. Every existential
    trigger spawns a child bag (the instantiated head plus the current
    ground context over the trigger's frontier constants); the child bag is
    saturated recursively — memoized on the isomorphism type of the bag —
    and only its facts over the frontier constants flow back. Guardedness
    makes this complete: a guarded body always maps into the atoms over a
    single atom's constants, so no derivation spans bags (§A, properties of
    [typeD,Σ]). *)

open Relational
open Relational.Term

(* Canonical constants used inside memoized bags. *)
let canon_const i = Named (Printf.sprintf "\001%d" i)

(* All permutations of a list (used for canonical forms of small bags). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* Encode an instance renamed by [assoc : (const * const) list]. *)
let encode inst assoc =
  Instance.facts inst
  |> List.map (fun f ->
         let f = Fact.rename (fun c -> List.assoc_opt c assoc) f in
         Fmt.str "%a" Fact.pp f)
  |> List.sort String.compare
  |> String.concat ";"

(** Canonicalize a small instance: a key invariant under renaming of
    constants, together with the renaming used and its inverse. For bags of
    more than 7 constants the first-occurrence order is used instead of the
    minimal permutation — still sound and terminating, only weaker
    sharing. *)
let canonicalize inst =
  let consts = ConstSet.elements (Instance.dom inst) in
  let m = List.length consts in
  let with_order order =
    List.mapi (fun i c -> (c, canon_const i)) order
  in
  let assoc =
    if m > 7 then with_order consts
    else
      permutations consts
      |> List.map with_order
      |> List.map (fun a -> (encode inst a, a))
      |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
      |> List.hd |> snd
  in
  let key = encode inst assoc in
  let inverse = List.map (fun (c, d) -> (d, c)) assoc in
  (key, assoc, inverse)

type state = {
  sigma : Tgd.t list;
  memo : (string, Instance.t) Hashtbl.t;  (** canonical bag -> saturation *)
  in_progress : (string, unit) Hashtbl.t;
  dirty : bool ref;  (** some memo entry changed during the pass *)
  budget : Obs.Budget.t;
  passes : int ref;  (** saturation rounds run, at any nesting depth *)
}

(* Graceful cutoff: unwinds every nested bag saturation at once; the
   closure computed so far is kept. *)
exception Budget_stop of Obs.Budget.violation

let fresh_state ?(budget = Obs.Budget.unlimited) sigma =
  {
    sigma;
    memo = Hashtbl.create 64;
    in_progress = Hashtbl.create 16;
    dirty = ref false;
    budget;
    passes = ref 0;
  }

(* One saturation round over [cur]: fire every trigger; ground heads are
   added directly, existential heads go through a recursively saturated
   child bag whose facts over [dom cur] flow back. Body matching runs on
   the indexed joiner (lib/engine) over a per-round index of [cur]. *)
let rec round st cur =
  Obs.Probe.hit "ground_closure.round";
  incr st.passes;
  (match
     Obs.Budget.check st.budget ~facts:(Instance.size !cur) ~level:!(st.passes)
   with
  | Some v -> raise (Budget_stop v)
  | None -> ());
  let additions = ref [] in
  let dom_cur = Instance.dom !cur in
  let idx = Engine.Index.of_instance !cur in
  List.iter
    (fun t ->
      Engine.Joiner.fold (Tgd.body t) idx
        (fun b () ->
          let ex = Tgd.existential_vars t in
          if VarSet.is_empty ex then
            List.iter
              (fun h ->
                let f = Fact.of_atom (Homomorphism.apply_binding b h) in
                if not (Instance.mem f !cur) then additions := f :: !additions)
              (Tgd.head t)
          else begin
            let fresh =
              VarSet.fold (fun z acc -> VarMap.add z (fresh_null ()) acc) ex VarMap.empty
            in
            let full = VarMap.union (fun _ a _ -> Some a) b fresh in
            let head_facts =
              List.map (fun h -> Fact.of_atom (Homomorphism.apply_binding full h)) (Tgd.head t)
            in
            let frontier_consts =
              VarSet.fold
                (fun x acc ->
                  match VarMap.find_opt x b with
                  | Some c -> ConstSet.add c acc
                  | None -> acc)
                (Tgd.frontier t) ConstSet.empty
            in
            let child =
              Instance.union
                (Instance.of_facts head_facts)
                (Instance.restrict !cur frontier_consts)
            in
            let emitted = saturate_bag st child in
            Instance.iter
              (fun f ->
                if Fact.within dom_cur f && not (Instance.mem f !cur) then
                  additions := f :: !additions)
              emitted
          end)
        ())
    st.sigma;
  match !additions with
  | [] -> false
  | fs ->
      cur := List.fold_left (fun i f -> Instance.add_fact f i) !cur fs;
      true

(* Saturate a small bag, memoized on its canonical form. Returns all facts
   over [dom local] entailed from [local]. *)
and saturate_bag st local =
  let key, assoc, inverse = canonicalize local in
  let stored =
    match Hashtbl.find_opt st.memo key with
    | Some s -> s
    | None -> Instance.rename (fun c -> List.assoc_opt c assoc) local
  in
  if Hashtbl.mem st.in_progress key then
    (* re-entrant type: return the current approximation; the global pass
       repeats until no memo entry moves, so this converges *)
    Instance.rename (fun c -> List.assoc_opt c inverse) stored
  else begin
    Hashtbl.replace st.in_progress key ();
    let cur = ref stored in
    let continue_ = ref true in
    while !continue_ do
      continue_ := round st cur
    done;
    Hashtbl.remove st.in_progress key;
    let before = match Hashtbl.find_opt st.memo key with Some s -> s | None -> stored in
    if not (Instance.equal before !cur) then st.dirty := true;
    Hashtbl.replace st.memo key !cur;
    Instance.rename (fun c -> List.assoc_opt c inverse) !cur
  end

(** [compute_report ?budget ?obs sigma db] — the ground closure
    [chase↓(db,sigma)] together with the run's outcome: [Partial _] when
    the budget cut the fixpoint (the closure computed so far is
    returned). Requires every TGD of [sigma] to be guarded (raises
    [Invalid_argument] otherwise; the locality argument fails for mere
    frontier-guardedness, cf. the footnote to Lemma D.11). *)
let compute_report ?budget ?obs sigma db =
  if not (Tgd.all_guarded sigma) then
    invalid_arg "Ground_closure.compute: Σ must be guarded";
  Obs.Span.timed obs "ground_closure" @@ fun () ->
  let st = fresh_state ?budget sigma in
  let closure = ref db in
  let outcome =
    try
      let continue_ = ref true in
      while !continue_ do
        st.dirty := false;
        let grew = round st closure in
        continue_ := grew || !(st.dirty)
      done;
      Obs.Budget.Complete
    with Budget_stop v -> Obs.Budget.Partial v
  in
  (!closure, outcome)

(** [compute sigma db] — {!compute_report} without the outcome. *)
let compute ?budget ?obs sigma db =
  fst (compute_report ?budget ?obs sigma db)

(** [d_plus sigma db] — the database [D⁺] of §6.2:
    [D ∪ { R(ā) ∈ chase(D,Σ) | ā ⊆ dom(D) }] (equals the ground
    closure). *)
let d_plus sigma db = compute sigma db

(** [type_of sigma db consts] — the type of a guarded set: all atoms of
    [chase(db,sigma)] over the constants [consts] ⊆ dom(db)
    ([typeD,Σ(α)] of Appendix A, for [consts = dom(α)]). *)
let type_of sigma db consts = Instance.restrict (compute sigma db) consts

(** [entails_atom sigma db fact] — certain answering for atomic queries
    over ground tuples: [fact ∈ chase(db,sigma)]? *)
let entails_atom sigma db fact = Instance.mem fact (compute sigma db)

(** [saturate_small sigma local] — saturation of a small instance
    ([complete(I,Σ)] of Appendix A for bag-sized [I]); exposed for the
    linearization (Lemma A.3), which completes candidate types. *)
let saturate_small sigma local =
  if not (Tgd.all_guarded sigma) then
    invalid_arg "Ground_closure.saturate_small: Σ must be guarded";
  let st = fresh_state sigma in
  (* iterate to a global fixpoint, as in [compute] *)
  let result = ref (saturate_bag st local) in
  let continue_ = ref !(st.dirty) in
  while !continue_ do
    st.dirty := false;
    result := saturate_bag st local;
    continue_ := !(st.dirty)
  done;
  !result
