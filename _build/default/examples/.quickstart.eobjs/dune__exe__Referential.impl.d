examples/referential.ml: Atom Cq Cqs Cqs_eval Equivalence Fact Fmt Guarded_core Instance List Relational Term Tgds Ucq Workload
