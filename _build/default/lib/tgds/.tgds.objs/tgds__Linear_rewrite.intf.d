lib/tgds/linear_rewrite.mli: Instance Relational Term Tgd Ucq
