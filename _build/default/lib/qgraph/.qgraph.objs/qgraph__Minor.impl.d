lib/qgraph/minor.ml: Fmt Graph Hashtbl List Option
