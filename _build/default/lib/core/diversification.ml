(** Diversifications of databases (§6.1, Example 6.3, Appendix D.2).

    A diversification of [D₀] replaces atoms with copies in which some
    constants are replaced by fresh *isolated* constants — "untangling"
    atoms that share constants only incidentally. The Theorem 5.4
    reduction works with a ⪯-minimal diversification [D₁] such that
    [D₁⁺ ⊨ Q], where [D⁺] attaches finite initial pieces of the guarded
    unraveling so that ontology entailments are not lost.

    This module implements the operations the proof uses: single splits,
    the ⪯ preorder, unraveling attachment, and a greedy search for a
    ⪯-minimal diversification preserving a given property (the paper's
    "maximal way such that D₁ ⊨ Q"). *)

open Relational
open Relational.Term

type t = {
  original : Instance.t;  (** the database being diversified *)
  diversified : Instance.t;  (** the current diversification *)
  up : const ConstMap.t;  (** fresh constant ↦ original ([·↑]) *)
}

(** The identity diversification. *)
let identity db =
  let up =
    ConstSet.fold (fun c acc -> ConstMap.add c c acc) (Instance.dom db) ConstMap.empty
  in
  { original = db; diversified = db; up }

(** [up_const d c] — [c↑]. *)
let up_const d c =
  match ConstMap.find_opt c d.up with Some o -> o | None -> c

(** [·↑] as a homomorphism witness: the diversification always maps back
    onto (a subset of) the original. *)
let verify d =
  Instance.for_all
    (fun f -> Instance.mem (Fact.rename (fun c -> Some (up_const d c)) f) d.original)
    d.diversified

(** [split d fact position] — replace the constant at [position] of one
    occurrence [fact ∈ d.diversified] by a fresh isolated copy. Raises
    [Invalid_argument] when the fact is absent or the position out of
    range. *)
let split d fact position =
  if not (Instance.mem fact d.diversified) then
    invalid_arg "Diversification.split: no such fact";
  let args = Fact.args fact in
  if position < 0 || position >= List.length args then
    invalid_arg "Diversification.split: position out of range";
  let old_c = List.nth args position in
  let fresh = fresh_null () in
  let args' = List.mapi (fun i c -> if i = position then fresh else c) args in
  let f' = Fact.make (Fact.pred fact) args' in
  {
    d with
    diversified = Instance.add_fact f' (Instance.diff d.diversified (Instance.of_facts [ fact ]));
    up = ConstMap.add fresh (up_const d old_c) d.up;
  }

(** The preorder [D₁ ⪯ D₂] of Appendix D.2: every atom of [D₁] has a
    counterpart atom in [D₂] carrying at least its original constants at
    the same positions (fewer original constants = smaller = more
    diversified). *)
let preorder d1 d2 =
  let originals d f =
    List.mapi (fun i c -> (i, if ConstMap.find_opt c d.up = Some c then Some c else None))
      (Fact.args f)
  in
  Instance.for_all
    (fun f1 ->
      Instance.exists
        (fun f2 ->
          Fact.pred f1 = Fact.pred f2
          && Fact.arity f1 = Fact.arity f2
          && List.for_all2
               (fun (_, o1) (_, o2) ->
                 match o1 with None -> true | Some c -> o2 = Some c)
               (originals d1 f1) (originals d2 f2))
        d2.diversified)
    d1.diversified

(** [with_unravelings ?depth d] — the database [D⁺] (Appendix D.2,
    simplified per DESIGN.md §5): attach to each atom of the
    diversification a finite initial piece of the guarded unraveling of
    the *original* database at the atom's [·↑]-projection, renamed so the
    piece starts at the atom's own constants. *)
let with_unravelings ?(depth = 2) d =
  Instance.fold
    (fun f acc ->
      let up_bag =
        List.fold_left (fun s c -> ConstSet.add (up_const d c) s) ConstSet.empty
          (Fact.args f)
      in
      let u = Unraveling.guarded ~depth d.original up_bag in
      (* rename the unraveling's root constants to the atom's constants *)
      let root_renaming =
        List.fold_left2
          (fun m orig here -> ConstMap.add orig here m)
          ConstMap.empty
          (List.map (up_const d) (Fact.args f))
          (Fact.args f)
      in
      let piece =
        Instance.rename
          (fun c -> ConstMap.find_opt c root_renaming)
          u.Unraveling.instance
      in
      Instance.union acc piece)
    d.diversified d.diversified

(* All (fact, position) pairs whose constant is still original and
   non-isolated in the current diversification. *)
let split_candidates d =
  Instance.fold
    (fun f acc ->
      List.concat
        (List.mapi
           (fun i c ->
             if ConstMap.find_opt c d.up = Some c && not (Instance.isolated d.diversified c)
             then [ (f, i) ]
             else [])
           (Fact.args f))
      @ acc)
    d.diversified []

(** [minimize ~holds ~protect db] — greedy search for a ⪯-minimal
    diversification [D₁] of [db] with [holds D₁⁺] (the paper diversifies
    "in a maximal way such that D₁ ⊨ Q"). Constants of [protect] (e.g.
    the tuple [ā₀]) are never split. [holds] receives the diversification
    with unravelings attached. *)
let minimize ?(depth = 2) ~holds ~protect db =
  let d = ref (identity db) in
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates =
      List.filter
        (fun (f, i) -> not (ConstSet.mem (List.nth (Fact.args f) i) protect))
        (split_candidates !d)
    in
    match
      List.find_opt
        (fun (f, i) ->
          let candidate = split !d f i in
          holds (with_unravelings ~depth candidate))
        candidates
    with
    | Some (f, i) ->
        d := split !d f i;
        progress := true
    | None -> ()
  done;
  !d
