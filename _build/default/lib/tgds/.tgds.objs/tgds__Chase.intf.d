lib/tgds/chase.mli: Fact Instance Relational Term Tgd Ucq
