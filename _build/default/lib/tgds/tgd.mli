(** Tuple-generating dependencies (§2) and the syntactic classes
    [L ⊆ G ⊆ FG ⊆ TGD], [FULL] and [FG_m]. *)

open Relational

type t

(** [make ~body ~head] — raises [Invalid_argument] on an empty head. *)
val make : body:Atom.t list -> head:Atom.t list -> t

val body : t -> Atom.t list
val head : t -> Atom.t list
val compare : t -> t -> int
val equal : t -> t -> bool
val body_vars : t -> Term.VarSet.t
val head_vars : t -> Term.VarSet.t

(** The frontier [fr(σ)]: variables shared between body and head. *)
val frontier : t -> Term.VarSet.t

(** Head variables not in the body. *)
val existential_vars : t -> Term.VarSet.t

(** Number of head atoms (the [m] of [FG_m]). *)
val head_size : t -> int

(** Schema of all predicates occurring in the TGD. *)
val schema : t -> Schema.t

val schema_of_set : t list -> Schema.t

(** A body atom containing all body variables, if any (§2). *)
val guard : t -> Atom.t option

val is_guarded : t -> bool

(** A body atom containing all frontier variables, if any. *)
val frontier_guard : t -> Atom.t option

val is_frontier_guarded : t -> bool

(** Exactly one body atom (class [L]). *)
val is_linear : t -> bool

(** No existential variables (class [FULL]). *)
val is_full : t -> bool

(** Frontier-guarded with at most [m] head atoms. *)
val is_fg : int -> t -> bool

val all_guarded : t list -> bool
val all_frontier_guarded : t list -> bool
val all_linear : t list -> bool
val all_full : t list -> bool
val max_head_size : t list -> int

(** [satisfies inst t] — [inst ⊨ σ]. *)
val satisfies : Instance.t -> t -> bool

(** [satisfies_all inst sigma] — [inst ⊨ Σ]. *)
val satisfies_all : Instance.t -> t list -> bool

(** Split a full TGD into single-head full TGDs (raises
    [Invalid_argument] on existential TGDs). *)
val split_full : t -> t list

(** Rename all variables with a suffix. *)
val rename_apart : suffix:string -> t -> t

(** The body as a CQ [q_φ] with the frontier as answers. *)
val body_cq : t -> Cq.t

val pp : Format.formatter -> t -> unit
