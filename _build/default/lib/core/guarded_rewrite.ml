(** Two-stage FO rewriting for guarded OMQs (the route of Theorem D.1).

    Theorem D.1 eliminates existential quantifiers from a guarded ontology
    by composing the linearization of Lemma A.3 with the UCQ-rewritability
    of linear TGDs (Proposition D.2). This module makes that composition
    executable as a query-answering pipeline:

    1. [Linearize.make Σ D] yields a typed database [D_star] and a linear
       set [Σ_star] with [Q(D) = q(chase(D_star, Σ_star))];
    2. [Linear_rewrite.rewrite Σ_star q] turns [q] into a UCQ [q'] with
       [q(chase(D_star, Σ_star)) = q'(D_star)];
    3. the answer is a single UCQ evaluation over [D_star] — no chase at
       query time.

    The rewriting (step 2) depends on the reachable type signature and is
    therefore recomputed per database here; for a fixed Σ the types — and
    hence the rewriting — stabilize across databases over the same active
    schema, which [prepare]/[answer] exploits by caching. *)

open Relational

type prepared = {
  db_star : Instance.t;
  rewriting : Ucq.t;
  complete : bool;
      (** type exploration and rewriting both stayed within budget *)
}

(** [prepare ?max_types ?max_queries sigma db q] — run both stages. *)
let prepare ?max_types ?max_queries sigma db (q : Ucq.t) =
  let lin = Tgds.Linearize.make ?max_types sigma db in
  let q', rw_complete =
    Tgds.Linear_rewrite.rewrite ?max_queries lin.Tgds.Linearize.sigma_star q
  in
  {
    db_star = lin.Tgds.Linearize.db_star;
    rewriting = q';
    complete = lin.Tgds.Linearize.complete && rw_complete;
  }

(** [certain ?budgets sigma db q c̄] — certain answers through the composed
    rewriting; the boolean reports whether the result is known exact. *)
let certain ?max_types ?max_queries sigma db q tuple =
  let p = prepare ?max_types ?max_queries sigma db q in
  (Ucq.entails p.db_star p.rewriting tuple, p.complete)

(** [holds sigma db q] — Boolean variant. *)
let holds ?max_types ?max_queries sigma db q =
  certain ?max_types ?max_queries sigma db q []
