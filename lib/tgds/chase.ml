(** The oblivious chase (§2), level-wise; see the interface.

    Both engines honour the same budget cut points — a check before each
    pass (with the level about to run) and a trigger-atomic re-check
    after each firing — so budgeted runs agree level by level with each
    other and with unbudgeted runs truncated at the cut. *)

open Relational
open Relational.Term

type result = {
  instance : Instance.t Lazy.t;
  level_of : (Fact.t, int) Hashtbl.t;
  saturated : bool;
  max_level : int;
  index : Engine.Index.t option;  (** the engine's store, when indexed *)
  engine_result : Engine.Saturate.result option;
  outcome : Obs.Budget.outcome;
  span : Obs.Span.t;
}

(* Key identifying a trigger: TGD index + frontier/body binding. *)
let trigger_key i (b : Homomorphism.binding) (sigma_i : Tgd.t) =
  let bv = VarSet.elements (Tgd.body_vars sigma_i) in
  let img = List.map (fun x -> VarMap.find_opt x b) bv in
  (i, img)

type policy = Oblivious | Restricted
type engine = [ `Naive | `Indexed | `Parallel of int ]

(** Chase state at a clean pass boundary. Engine-agnostic — the facts with
    their s-levels determine everything a continuation needs under either
    engine — so a checkpoint taken by [`Indexed] can be resumed by
    [`Naive] (how the supervisor degrades). [snap_null_count] pins the
    fresh-null supply so a cross-process resume never re-issues a null id
    that already appears in the snapshot. *)
type snapshot = {
  snap_engine : engine;
  snap_policy : policy;
  snap_level : int;
  snap_saturated : bool;
  snap_null_count : int;
  snap_triggers_fired : int;
  snap_triggers_dismissed : int;
  snap_facts : (Fact.t * int) list;
  snap_counters : (string * int) list;  (** index metrics; [[]] after naive *)
}

let to_engine_snapshot (s : snapshot) : Engine.Saturate.snapshot =
  {
    Engine.Saturate.snap_facts = s.snap_facts;
    Engine.Saturate.snap_level = s.snap_level;
    Engine.Saturate.snap_saturated = s.snap_saturated;
    Engine.Saturate.snap_triggers_fired = s.snap_triggers_fired;
    Engine.Saturate.snap_triggers_dismissed = s.snap_triggers_dismissed;
    Engine.Saturate.snap_counters = s.snap_counters;
  }

let of_engine_snapshot ~engine ~policy (es : Engine.Saturate.snapshot) :
    snapshot =
  {
    snap_engine = engine;
    snap_policy = policy;
    snap_level = es.Engine.Saturate.snap_level;
    snap_saturated = es.Engine.Saturate.snap_saturated;
    snap_null_count = Term.null_count ();
    snap_triggers_fired = es.Engine.Saturate.snap_triggers_fired;
    snap_triggers_dismissed = es.Engine.Saturate.snap_triggers_dismissed;
    snap_facts = es.Engine.Saturate.snap_facts;
    snap_counters = es.Engine.Saturate.snap_counters;
  }

(* Resumable state of the naive loop: either a fresh run over a database
   or a checkpointed boundary with the fired-trigger set reconstructed. *)
type naive_init = {
  n_inst : Instance.t;
  n_level_of : (Fact.t, int) Hashtbl.t;
  n_fired : (int * const option list, unit) Hashtbl.t;
  n_level : int;
  n_saturated : bool;
  n_fired_total : int;
  n_dismissed_total : int;
}

(* The original level-wise loop: every level re-enumerates all body
   homomorphisms of every TGD against the entire instance, deduplicating
   by trigger key. Budget checks sit at the same points as in
   {!Engine.Saturate.run}: top of pass with the level about to run, then
   trigger-atomically after each whole head lands. *)
let exec_naive ~policy ~budget ~span ~on_pass (init : naive_init) sigma =
  let sigma = Array.of_list sigma in
  let level_of = init.n_level_of in
  let fired = init.n_fired in
  let inst = ref init.n_inst in
  let saturated = ref init.n_saturated in
  let level = ref init.n_level in
  let fired_total = ref init.n_fired_total in
  let dismissed_total = ref init.n_dismissed_total in
  let violation = ref None in
  let take_snapshot () : snapshot =
    {
      snap_engine = `Naive;
      snap_policy = policy;
      snap_level = !level;
      snap_saturated = !saturated;
      snap_null_count = Term.null_count ();
      snap_triggers_fired = !fired_total;
      snap_triggers_dismissed = !dismissed_total;
      snap_facts = Hashtbl.fold (fun f l acc -> (f, l) :: acc) level_of [];
      snap_counters = [];
    }
  in
  while (not !saturated) && !violation = None do
    Obs.Probe.hit "chase.pass";
    match
      Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
        ~level:(!level + 1)
    with
    | Some v -> violation := Some v
    | None ->
        let lspan = Obs.Span.enter span "level" in
        let pass_no = !level + 1 in
        let level_fired = ref 0 in
        (* collect unfired triggers whose body lies in the current instance *)
        let new_triggers = ref [] in
        Array.iteri
          (fun i t ->
            Homomorphism.fold_homs (Tgd.body t) !inst
              (fun b () ->
                let key = trigger_key i b t in
                if not (Hashtbl.mem fired key) then
                  let active =
                    match policy with
                    | Oblivious -> true
                    | Restricted ->
                        (* skip when the head is already witnessed *)
                        let init =
                          VarMap.filter
                            (fun x _ -> VarSet.mem x (Tgd.frontier t))
                            b
                        in
                        not (Homomorphism.exists ~init (Tgd.head t) !inst)
                  in
                  if active then new_triggers := (i, b, key) :: !new_triggers
                  else begin
                    incr dismissed_total;
                    Hashtbl.replace fired key ()
                  end)
              ())
          sigma;
        let new_count = ref 0 in
        if !new_triggers = [] then saturated := true
        else begin
          incr level;
          List.iter
            (fun (i, b, key) ->
              if !violation = None then begin
                Hashtbl.replace fired key ();
                incr level_fired;
                incr fired_total;
                let t = sigma.(i) in
                (* body image level *)
                let body_level =
                  List.fold_left
                    (fun acc a ->
                      let f = Fact.of_atom (Homomorphism.apply_binding b a) in
                      max acc (try Hashtbl.find level_of f with Not_found -> 0))
                    0 (Tgd.body t)
                in
                let fresh =
                  VarSet.fold
                    (fun z acc -> VarMap.add z (fresh_null ()) acc)
                    (Tgd.existential_vars t)
                    VarMap.empty
                in
                let full_binding =
                  VarMap.union (fun _ a _ -> Some a) b fresh
                in
                List.iter
                  (fun h ->
                    let f =
                      Fact.of_atom (Homomorphism.apply_binding full_binding h)
                    in
                    if not (Instance.mem f !inst) then begin
                      inst := Instance.add_fact f !inst;
                      Hashtbl.replace level_of f (body_level + 1);
                      incr new_count
                    end)
                  (Tgd.head t);
                match
                  Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
                    ~level:!level
                with
                | Some v -> violation := Some v
                | None -> ()
              end)
            (List.rev !new_triggers)
        end;
        Obs.Span.set lspan "level" (Obs.Json.Int pass_no);
        Obs.Span.set lspan "triggers_fired" (Obs.Json.Int !level_fired);
        Obs.Span.set lspan "new_facts" (Obs.Json.Int !new_count);
        Obs.Span.exit lspan;
        (* Clean pass boundary — the state is fully reconstructible. *)
        (match on_pass with
        | Some cb when !violation = None ->
            cb ~level:!level ~saturated:!saturated take_snapshot
        | _ -> ())
  done;
  let outcome =
    match !violation with
    | Some v -> Obs.Budget.Partial v
    | None -> Obs.Budget.Complete
  in
  {
    instance = Lazy.from_val !inst;
    level_of;
    saturated = !saturated;
    max_level = !level;
    index = None;
    engine_result = None;
    outcome;
    span;
  }

let run_naive ~policy ~budget ~span ~on_pass sigma db =
  let level_of : (Fact.t, int) Hashtbl.t = Hashtbl.create 256 in
  Instance.iter (fun f -> Hashtbl.replace level_of f 0) db;
  exec_naive ~policy ~budget ~span ~on_pass
    {
      n_inst = db;
      n_level_of = level_of;
      n_fired = Hashtbl.create 256;
      n_level = 0;
      n_saturated = false;
      n_fired_total = 0;
      n_dismissed_total = 0;
    }
    sigma

let resume_naive ~budget ~span ~on_pass sigma (s : snapshot) =
  let level_of : (Fact.t, int) Hashtbl.t =
    Hashtbl.create (List.length s.snap_facts)
  in
  List.iter (fun (f, l) -> Hashtbl.replace level_of f l) s.snap_facts;
  let inst =
    List.fold_left
      (fun acc (f, _) -> Instance.add_fact f acc)
      Instance.empty s.snap_facts
  in
  (* Reconstruct the fired-trigger set. At a clean boundary after pass L
     every considered trigger — fired or dismissed — is marked, and the
     considered triggers are exactly those whose body maps into the
     instance as of pass L−1, i.e. into the facts of s-level ≤ L−1. *)
  let fired : (int * const option list, unit) Hashtbl.t =
    Hashtbl.create 256
  in
  let prior =
    Instance.filter
      (fun f ->
        match Hashtbl.find_opt level_of f with
        | Some l -> l <= s.snap_level - 1
        | None -> true)
      inst
  in
  List.iteri
    (fun i t ->
      Homomorphism.fold_homs (Tgd.body t) prior
        (fun b () -> Hashtbl.replace fired (trigger_key i b t) ())
        ())
    sigma;
  exec_naive ~policy:s.snap_policy ~budget ~span ~on_pass
    {
      n_inst = inst;
      n_level_of = level_of;
      n_fired = fired;
      n_level = s.snap_level;
      n_saturated = s.snap_saturated;
      n_fired_total = s.snap_triggers_fired;
      n_dismissed_total = s.snap_triggers_dismissed;
    }
    sigma

let engine_rules sigma =
  List.map
    (fun t -> Engine.Saturate.{ body = Tgd.body t; head = Tgd.head t })
    sigma

let engine_policy = function
  | Oblivious -> Engine.Saturate.Oblivious
  | Restricted -> Engine.Saturate.Restricted

(* The saturation engine behind an indexed-family chase engine; [`Naive]
   never reaches this. *)
let sat_engine : engine -> Engine.Saturate.engine = function
  | `Parallel n -> Engine.Saturate.Parallel n
  | _ -> Engine.Saturate.Indexed

let engine_on_pass ~engine ~policy on_pass =
  Option.map
    (fun cb ~level ~saturated take ->
      cb ~level ~saturated (fun () ->
          of_engine_snapshot ~engine ~policy (take ())))
    on_pass

let of_engine_result ~span (r : Engine.Saturate.result) =
  {
    instance = lazy (Engine.Index.to_instance r.Engine.Saturate.index);
    level_of = r.Engine.Saturate.level_of;
    saturated = r.Engine.Saturate.saturated;
    max_level = r.Engine.Saturate.max_level;
    index = Some r.Engine.Saturate.index;
    engine_result = Some r;
    outcome = r.Engine.Saturate.outcome;
    span;
  }

let run_indexed ~engine ~policy ~budget ~span ~on_pass ~on_fire sigma db =
  let r =
    Engine.Saturate.run ~policy:(engine_policy policy)
      ~engine:(sat_engine engine) ~budget ~obs:span
      ?on_pass:(engine_on_pass ~engine ~policy on_pass)
      ?on_fire (engine_rules sigma) db
  in
  of_engine_result ~span r

let make_budget ~max_level ~max_facts ~budget =
  let legacy =
    match (max_level, max_facts) with
    | None, None -> Obs.Budget.unlimited
    | _ -> Obs.Budget.create ?max_facts ?max_levels:max_level ()
  in
  match budget with
  | None -> legacy
  | Some b -> Obs.Budget.meet legacy b

let make_span obs =
  match obs with
  | Some parent -> Obs.Span.enter parent "chase"
  | None -> Obs.Span.root "chase"

let run ?(engine = `Indexed) ?(policy = Oblivious) ?max_level ?max_facts
    ?budget ?obs ?on_pass ?on_fire sigma db =
  let budget = make_budget ~max_level ~max_facts ~budget in
  let span = make_span obs in
  let r =
    match engine with
    | `Naive ->
        if on_fire <> None then
          invalid_arg "Chase.run: ?on_fire requires an indexed engine";
        run_naive ~policy ~budget ~span ~on_pass sigma db
    | (`Indexed | `Parallel _) as e ->
        run_indexed ~engine:e ~policy ~budget ~span ~on_pass ~on_fire sigma db
  in
  Obs.Span.exit span;
  r

let resume ?engine ?max_level ?max_facts ?budget ?obs ?on_pass ?on_fire sigma
    (s : snapshot) =
  let engine = match engine with Some e -> e | None -> s.snap_engine in
  let budget = make_budget ~max_level ~max_facts ~budget in
  let span = make_span obs in
  (* Pin the null supply to the boundary. The snapshot's facts only hold
     nulls ≤ [snap_null_count]; anything invented after the boundary (by
     the interrupted attempt, possibly in another process) was discarded
     with that attempt, so the ids may — and for cross-process alignment
     with the uninterrupted run, must — be re-issued. *)
  Term.set_null_count s.snap_null_count;
  let r =
    match engine with
    | `Naive ->
        if on_fire <> None then
          invalid_arg "Chase.resume: ?on_fire requires an indexed engine";
        resume_naive ~budget ~span ~on_pass sigma s
    | (`Indexed | `Parallel _) as e ->
        of_engine_result ~span
          (Engine.Saturate.resume
             ~policy:(engine_policy s.snap_policy)
             ~engine:(sat_engine e) ~budget ~obs:span
             ?on_pass:(engine_on_pass ~engine:e ~policy:s.snap_policy on_pass)
             ?on_fire (engine_rules sigma) (to_engine_snapshot s))
  in
  Obs.Span.exit span;
  r

(** [instance r] — the chased instance. *)
let instance (r : result) = Lazy.force r.instance

let saturated (r : result) = r.saturated
let outcome (r : result) = r.outcome
let engine_result (r : result) = r.engine_result
let max_level (r : result) = r.max_level

(** [index r] — the chased instance as an {!Engine.Index.t}, reusing the
    engine's store when the run was indexed. *)
let index (r : result) =
  match r.index with
  | Some idx -> idx
  | None -> Engine.Index.of_instance (Lazy.force r.instance)

(* s-level census; derived from [level_of], so it agrees between engines
   (a fact derived at pass ℓ has s-level ℓ under both). *)
let facts_per_level (r : result) =
  if r.max_level = 0 then []
  else begin
    let counts = Array.make (r.max_level + 1) 0 in
    Hashtbl.iter
      (fun _ l -> if l >= 1 && l <= r.max_level then counts.(l) <- counts.(l) + 1)
      r.level_of;
    List.init r.max_level (fun i -> counts.(i + 1))
  end

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    (i.e. [chase^l_s(D,Σ)] when the run reached at least level [l]). *)
let up_to_level (r : result) l =
  Instance.filter
    (fun f -> match Hashtbl.find_opt r.level_of f with Some lv -> lv <= l | None -> true)
    (Lazy.force r.instance)

(** [level r f] — the s-level of a fact of the result. *)
let level (r : result) f = Hashtbl.find_opt r.level_of f

(** The ground part [chase↓]: facts whose constants are all from [dom db]
    (equivalently, contain no labelled null invented by the chase). *)
let ground_part (r : result) =
  Instance.filter (fun f -> not (Fact.is_ground_of_nulls f)) (Lazy.force r.instance)

let report ?(name = "chase") (r : result) =
  let idx = index r in
  let rep =
    Obs.Report.create ~metrics:(Engine.Index.metrics idx) ~span:r.span name
  in
  Obs.Report.set_outcome rep r.outcome;
  Obs.Report.add_field rep "saturated" (Obs.Json.Bool r.saturated);
  Obs.Report.add_field rep "max_level" (Obs.Json.Int r.max_level);
  Obs.Report.add_field rep "facts" (Obs.Json.Int (Hashtbl.length r.level_of));
  Obs.Report.add_field rep "facts_per_level"
    (Obs.Json.List (List.map (fun n -> Obs.Json.Int n) (facts_per_level r)));
  (match r.engine_result with
  | Some er ->
      Obs.Report.add_field rep "triggers_fired"
        (Obs.Json.Int er.Engine.Saturate.triggers_fired);
      Obs.Report.add_field rep "triggers_dismissed"
        (Obs.Json.Int er.Engine.Saturate.triggers_dismissed)
  | None -> ());
  rep

(** Convenience: chase and return the instance. *)
let chase ?engine ?max_level ?max_facts ?budget sigma db =
  instance (run ?engine ?max_level ?max_facts ?budget sigma db)

(** [certain ?max_level sigma db q tuple] — sound check that
    [tuple ∈ q(chase(db,sigma))] using a level-bounded chase; complete when
    the run saturates (Proposition 3.1). Returns the verdict together with
    whether it is known complete. *)
let certain ?engine ?(max_level = 6) ?max_facts ?budget ?obs sigma db
    (q : Ucq.t) tuple =
  let r = run ?engine ~max_level ?max_facts ?budget ?obs sigma db in
  (Engine.Joiner.entails_ucq (index r) q tuple, r.saturated)
