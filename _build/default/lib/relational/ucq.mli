(** Unions of conjunctive queries (§2): disjuncts of equal arity. *)

type t

(** Raises [Invalid_argument] on the empty list or mixed arities. *)
val make : Cq.t list -> t

val of_cq : Cq.t -> t
val disjuncts : t -> Cq.t list
val arity : t -> int
val is_boolean : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val map : (Cq.t -> Cq.t) -> t -> t

(** Union of the disjuncts' schemas. *)
val schema : t -> Schema.t

val norm : t -> int

(** [entails db u c̄] — is [c̄ ∈ u(db)]? *)
val entails : Instance.t -> t -> Term.const list -> bool

(** Boolean entailment. *)
val holds : Instance.t -> t -> bool

(** [answers db u] = [⋃ᵢ qᵢ(db)]. *)
val answers : Instance.t -> t -> Term.const list list

(** Maximum disjunct treewidth (membership in UCQ_k is every disjunct in
    CQ_k). *)
val treewidth : t -> int

val in_ucqk : int -> t -> bool

(** Remove syntactic duplicate disjuncts. *)
val dedup : t -> t

val pp : Format.formatter -> t -> unit
