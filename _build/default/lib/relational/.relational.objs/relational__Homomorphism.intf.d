lib/relational/homomorphism.mli: Atom Instance Term
