(** Terminating chase for full TGDs (Lemma A.4's fast path). *)

open Relational

(** [saturate ?engine sigma db] — the finite chase; raises
    [Invalid_argument] on non-full TGDs. [`Indexed] (default) runs the
    semi-naive engine; [`Naive] the original re-enumerating loop. *)
val saturate :
  ?engine:[ `Naive | `Indexed ] -> Tgd.t list -> Instance.t -> Instance.t

(** Exact UCQ certain answering over a full TGD set. *)
val entails : Tgd.t list -> Instance.t -> Ucq.t -> Term.const list -> bool

(** Boolean variant. *)
val holds : Tgd.t list -> Instance.t -> Ucq.t -> bool

(** The Lemma A.4 size bound [|D| · |T| · ar(T)^ar(T)]. *)
val size_bound : Tgd.t list -> Instance.t -> int
