(** Deterministic parallel trigger collection.

    One saturation pass's collection stage — enumerate every trigger
    whose body touches the delta — decomposed into independent
    [(rule, pivot)] {e jobs} and fanned out over a {!Shard} pool. Each
    job's delta list is cut into [n] contiguous slices; shard [s] matches
    slice [s] of {e every} job against a frozen, read-only view of the
    index ({!Index.reader}), collecting bindings in discovery order.

    {b Determinism argument.} The sequential indexed engine considers
    bindings in the order: jobs rule-major, within a job delta facts in
    canonical order, per fact the backtracking search's order. Slicing
    partitions each job's delta into contiguous runs, the per-fact search
    is a pure function of (fact, atoms, index), and the merge walk
    replays shard 0's bindings, then shard 1's, … per job — which is the
    concatenation of the slices, i.e. exactly the sequential order. All
    stateful steps (dedup against fired/pending, [Restricted] witness
    checks, probe hits, firing, fresh-null assignment) happen downstream
    of the merge on the calling domain, so every observable output —
    instance, s-levels, counters, checkpoint JSON — is byte-identical for
    every domain count, including [n = 1] vs the sequential engine.

    Worker shards never hit {!Obs.Probe} (a process-global hook) and file
    their [joiner.*]/[index.*] counters into shard-local registries that
    are absorbed in shard order after the join; the merged totals equal
    the sequential engine's. Per-pass wall-clock of the two stages lands
    in the [parallel.match_s] / [parallel.merge_s] histograms and the
    per-shard matched-binding counts in [parallel.shard_matched]
    (histograms only — never part of checkpoint or counter output, which
    keeps those byte-comparable across engines). *)

open Relational

type join = { rule : int; atoms : Atom.t list; delta : Fact.t list }
(** [atoms] pivot-first reordered body; [delta] the pivot's delta facts
    in canonical order *)

type job =
  | Bodiless of int
      (** rule index; considered once with the empty binding (first pass
          only — the caller filters) *)
  | Join of join

(** [collect ~pool ~index jobs ~consider] — run the jobs' matching in
    parallel, then replay [consider rule binding] sequentially in the
    canonical order. [index] must not be mutated while this runs. *)
val collect :
  pool:Shard.t ->
  index:Index.t ->
  job list ->
  consider:(int -> Homomorphism.binding -> unit) ->
  unit
