lib/tgds/termination.ml: Atom Fmt Hashtbl List Relational Stdlib Tgd VarSet
