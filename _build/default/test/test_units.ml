(* Fine-grained unit tests across all layers: term/atom/fact algebra,
   instance operations, chase levels, TGD details, UCQ algebra, verdict
   lattice, Grohe helpers, specializations, and the Prop 3.3(2)
   reduction. *)

open Relational
open Relational.Term
open Guarded_core
module Tgd = Tgds.Tgd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head

(* ------------------------------------------------------------------ *)
(* Terms, atoms, facts                                                  *)
(* ------------------------------------------------------------------ *)

let test_fresh_nulls_distinct () =
  let n1 = fresh_null () and n2 = fresh_null () in
  check "distinct" false (equal_const n1 n2);
  check "are nulls" true (is_null n1 && is_null n2);
  check "named not null" false (is_null (Named "a"))

let test_term_pp () =
  check "const pp" true (Fmt.str "%a" Term.pp (Term.const "a") = "a");
  check "var pp" true (Fmt.str "%a" Term.pp (Term.var "x") = "?x");
  check "null pp" true
    (String.length (Fmt.str "%a" Term.pp_const (Null 7)) > 0)

let test_atom_ops () =
  let a = atom "R" [ v "x"; Term.const "c"; v "x" ] in
  check_int "arity" 3 (Atom.arity a);
  check_int "vars deduped" 1 (VarSet.cardinal (Atom.vars a));
  check_int "consts" 1 (ConstSet.cardinal (Atom.consts a));
  check "not ground" false (Atom.is_ground a);
  let a' = Atom.apply (VarMap.singleton "x" (Term.const "d")) a in
  check "ground after subst" true (Atom.is_ground a');
  let renamed =
    Atom.rename_consts (fun c -> if c = Named "c" then Some (Named "e") else None) a
  in
  check "renamed const" true (ConstSet.mem (Named "e") (Atom.consts renamed))

let test_fact_ops () =
  let f = fact "R" [ "a"; "b" ] in
  check "within" true
    (Fact.within (ConstSet.of_list [ Named "a"; Named "b"; Named "c" ]) f);
  check "not within" false (Fact.within (ConstSet.singleton (Named "a")) f);
  check "roundtrip via atom" true (Fact.equal f (Fact.of_atom (Fact.to_atom f)));
  check "of_atom rejects vars" true
    (try
       ignore (Fact.of_atom (atom "R" [ v "x" ]));
       false
     with Invalid_argument _ -> true);
  check "null detection" true
    (Fact.is_ground_of_nulls (Fact.make "R" [ Named "a"; fresh_null () ]))

(* ------------------------------------------------------------------ *)
(* Instance algebra                                                     *)
(* ------------------------------------------------------------------ *)

let test_instance_algebra () =
  let i1 = Instance.of_facts [ fact "R" [ "a" ]; fact "R" [ "b" ] ] in
  let i2 = Instance.of_facts [ fact "R" [ "b" ]; fact "S" [ "c" ] ] in
  check_int "union" 3 (Instance.size (Instance.union i1 i2));
  check_int "diff" 1 (Instance.size (Instance.diff i1 i2));
  check "subset reflexive" true (Instance.subset i1 i1);
  check "not subset" false (Instance.subset i2 i1);
  check_int "norm counts symbols" 4 (Instance.norm i1);
  check "is_empty" true (Instance.is_empty Instance.empty);
  let renamed = Instance.rename_map (ConstMap.singleton (Named "a") (Named "z")) i1 in
  check "rename_map" true (Instance.mem (fact "R" [ "z" ]) renamed);
  check "rename keeps others" true (Instance.mem (fact "R" [ "b" ]) renamed)

let test_instance_predicates_tuples () =
  let i = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "R" [ "c"; "d" ] ] in
  check_int "tuples_of" 2 (List.length (Instance.tuples_of "R" i));
  check_int "missing pred" 0 (List.length (Instance.tuples_of "Z" i));
  check "predicates" true (Instance.predicates i = [ "R" ]);
  check "schema inferred" true
    (Schema.arity_of "R" (Instance.schema i) = Some 2)

(* ------------------------------------------------------------------ *)
(* Chase levels and slices                                              *)
(* ------------------------------------------------------------------ *)

let test_chase_level_slices_monotone () =
  let sigma = Workload.linear_chain ~depth:5 in
  let db = Instance.of_facts [ fact "R0" [ "a"; "b" ] ] in
  let r = Tgds.Chase.run ~max_level:5 sigma db in
  let sizes =
    List.map (fun l -> Instance.size (Tgds.Chase.up_to_level r l)) [ 0; 1; 2; 3; 4; 5 ]
  in
  check "monotone slices" true
    (List.for_all2 ( <= ) sizes (List.tl sizes @ [ max_int ]));
  check_int "level 0 is D" 1 (List.hd sizes);
  check_int "one new fact per level" 6 (List.nth sizes 5)

let test_chase_max_facts_cutoff () =
  let sigma = [ tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "S" [ "a"; "b" ] ] in
  let r = Tgds.Chase.run ~max_level:1000 ~max_facts:10 sigma db in
  check "stopped by budget" false (Tgds.Chase.saturated r);
  check "near the budget" true (Instance.size (Tgds.Chase.instance r) <= 12)

(* ------------------------------------------------------------------ *)
(* TGD details                                                          *)
(* ------------------------------------------------------------------ *)

let test_tgd_details () =
  let t = tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ]; atom "T" [ v "z" ] ] in
  check "guard is R" true
    (match Tgd.guard t with Some g -> Atom.pred g = "R" | None -> false);
  check_int "head size" 2 (Tgd.head_size t);
  check "frontier is y" true (VarSet.equal (Tgd.frontier t) (VarSet.singleton "y"));
  check "z existential" true (VarSet.mem "z" (Tgd.existential_vars t));
  check "body cq answers = frontier" true (Cq.answer (Tgd.body_cq t) = [ "y" ]);
  let split_rejected =
    try
      ignore (Tgd.split_full t);
      false
    with Invalid_argument _ -> true
  in
  check "split_full rejects existential TGD" true split_rejected;
  let full = tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ]; atom "B" [ v "y" ] ] in
  check_int "split_full" 2 (List.length (Tgd.split_full full));
  check "empty head rejected" true
    (try
       ignore (Tgd.make ~body:[] ~head:[]);
       false
     with Invalid_argument _ -> true)

let test_tgd_rename_apart () =
  let t = tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] in
  let t' = Tgd.rename_apart ~suffix:"_1" t in
  check "vars disjoint" true
    (VarSet.is_empty
       (VarSet.inter
          (VarSet.union (Tgd.body_vars t) (Tgd.head_vars t))
          (VarSet.union (Tgd.body_vars t') (Tgd.head_vars t'))));
  check "classes preserved" true (Tgd.is_linear t' && Tgd.is_guarded t')

(* ------------------------------------------------------------------ *)
(* UCQ algebra, containment                                             *)
(* ------------------------------------------------------------------ *)

let test_ucq_dedup_minimize () =
  let q1 = Cq.make [ atom "R" [ v "x" ] ] in
  let q2 = Cq.make [ atom "R" [ v "y" ] ] in
  (* q2 is q1 renamed: dedup is syntactic, minimize is semantic *)
  let u = Ucq.make [ q1; q2; q1 ] in
  check_int "syntactic dedup" 2 (List.length (Ucq.disjuncts (Ucq.dedup u)));
  check_int "semantic minimize" 1
    (List.length (Ucq.disjuncts (Containment.minimize_ucq u)));
  let q3 = Cq.make [ atom "R" [ v "x" ]; atom "S" [ v "x" ] ] in
  let u2 = Ucq.make [ q1; q3 ] in
  (* q3 ⊆ q1, so q3 is subsumed *)
  check_int "subsumed disjunct dropped" 1
    (List.length (Ucq.disjuncts (Containment.minimize_ucq u2)))

let test_verdict_lattice () =
  let open Sigma_containment in
  check "and holds" true (verdict_and Holds Holds = Holds);
  check "and fails wins" true (verdict_and Unknown Fails = Fails);
  check "and unknown" true (verdict_and Holds Unknown = Unknown);
  check "or holds wins" true (verdict_or Unknown Holds = Holds);
  check "or fails" true (verdict_or Fails Fails = Fails);
  check "or unknown" true (verdict_or Fails Unknown = Unknown)

let test_sigma_containment_reflexive () =
  let sigma = Workload.referential_constraints () in
  let q = Cq.make ~answer:[ "o" ] [ atom "Order" [ v "o"; v "c" ] ] in
  check "q ⊆_Σ q" true (Sigma_containment.cq_contained sigma q q = Sigma_containment.Holds)

(* ------------------------------------------------------------------ *)
(* Grohe helpers                                                        *)
(* ------------------------------------------------------------------ *)

let test_grohe_helpers () =
  check_int "K for k=3" 3 (Grohe.capital_k 3);
  check_int "K for k=4" 6 (Grohe.capital_k 4);
  check_int "pairs count" 6 (List.length (Grohe.pairs 4));
  check "pairs ordered" true (List.hd (Grohe.pairs 3) = (1, 2));
  let g = Grohe.grid 3 in
  check_int "3xK grid vertices" 9 (Qgraph.Graph.num_vertices g);
  check_int "grid_vertex" 0 (Grohe.grid_vertex 3 ~i:1 ~p:1)

let test_minor_map_structure () =
  let q = Workload.grid_cq 3 3 in
  let dq = Cq.canonical_db q in
  let a = Instance.dom dq in
  match Grohe.find_minor_map ~k:3 dq a with
  | None -> Alcotest.fail "expected a minor map"
  | Some mu ->
      (* branch sets cover A (onto) and positions are consistent *)
      let total =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun acc bs -> acc + ConstSet.cardinal bs) acc row)
          0 mu.Grohe.branch
      in
      check_int "onto: branches cover A" (ConstSet.cardinal a) total;
      ConstMap.iter
        (fun c (i, p) ->
          check "position matches branch" true
            (ConstSet.mem c mu.Grohe.branch.(i - 1).(p - 1)))
        mu.Grohe.position

(* ------------------------------------------------------------------ *)
(* Specializations                                                      *)
(* ------------------------------------------------------------------ *)

let test_specialization_count () =
  (* q = R(x,y): contractions {R(x,y), R(x,x)}; V-subsets: 4 for the
     2-variable contraction, 2 for the loop *)
  let q = Cq.make [ atom "R" [ v "x"; v "y" ] ] in
  check_int "specialization count" 6 (List.length (Specialization.all q))

let test_specialization_answer_vars_in_v () =
  let q = Cq.make ~answer:[ "x" ] [ atom "R" [ v "x"; v "y" ] ] in
  List.iter
    (fun s -> check "answer var in V" true (VarSet.mem "x" s.Specialization.v))
    (Specialization.all q)

(* ------------------------------------------------------------------ *)
(* Prop 3.3(2): Boolean CQ → FG OMQ                                     *)
(* ------------------------------------------------------------------ *)

let test_bcq_to_fg_omq () =
  let q =
    Cq.make
      [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ]; atom "E" [ v "z"; v "x" ] ]
  in
  let omq = Reductions.bcq_to_fg_omq q in
  check "FG but not G" true
    (Omq.in_frontier_guarded omq && not (Omq.in_guarded omq));
  let triangle =
    Instance.of_facts [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ]; fact "E" [ "c"; "a" ] ]
  in
  let path = Instance.of_facts [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ] ] in
  check "triangle db: certain" true (Omq_eval.certain omq triangle []).Omq_eval.holds;
  check "path db: not certain" false (Omq_eval.certain omq path []).Omq_eval.holds;
  check "agrees with direct CQ evaluation" true
    ((Omq_eval.certain omq triangle []).Omq_eval.holds = Cq.holds triangle q)

(* ------------------------------------------------------------------ *)
(* Example 4.4, second part: the data schema matters                    *)
(* ------------------------------------------------------------------ *)

let test_example_4_4_data_schema () =
  (* Q2 with Σ' = {S(x) → R1(x), S(x) → R3(x)} and full data schema is NOT
     UCQ1-equivalent (§4.1). *)
  let sigma =
    [
      tgd [ atom "S" [ v "x" ] ] [ atom "R1" [ v "x" ] ];
      tgd [ atom "S" [ v "x" ] ] [ atom "R3" [ v "x" ] ];
    ]
  in
  let q =
    Cq.make
      [
        atom "P" [ v "x2"; v "x1" ]; atom "P" [ v "x4"; v "x1" ];
        atom "P" [ v "x2"; v "x3" ]; atom "P" [ v "x4"; v "x3" ];
        atom "R1" [ v "x1" ]; atom "R2" [ v "x2" ];
        atom "R3" [ v "x3" ]; atom "R4" [ v "x4" ];
      ]
  in
  let s = Cqs.make ~constraints:sigma ~query:(Ucq.of_cq q) in
  let verdict, _ = Equivalence.cqs_uniformly_ucqk_equivalent 1 s in
  check "Q2 not UCQ1-equivalent with full data schema" true
    (verdict = Equivalence.Fails)

(* ------------------------------------------------------------------ *)
(* Unraveling depth                                                     *)
(* ------------------------------------------------------------------ *)

let test_unraveling_depth_grows () =
  let db =
    Instance.of_facts
      [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ]; fact "E" [ "c"; "a" ] ]
  in
  let start = ConstSet.of_list [ Named "a"; Named "b" ] in
  let s1 = Instance.size (Unraveling.guarded ~depth:1 db start).Unraveling.instance in
  let s3 = Instance.size (Unraveling.guarded ~depth:3 db start).Unraveling.instance in
  check "deeper unraveling is bigger" true (s1 < s3);
  let u0 = Unraveling.guarded ~depth:0 db start in
  check "depth 0 is the root bag" true
    (Instance.equal u0.Unraveling.instance (Instance.restrict db start))

(* ------------------------------------------------------------------ *)
(* Cqs / Omq structure                                                  *)
(* ------------------------------------------------------------------ *)

let test_omq_cqs_structure () =
  let s =
    Cqs.make
      ~constraints:(Workload.referential_constraints ())
      ~query:(Ucq.of_cq (Cq.make ~answer:[ "o" ] [ atom "Order" [ v "o"; v "c" ] ]))
  in
  let omq = Cqs.omq s in
  check "omq(S) has full data schema" true (Omq.has_full_data_schema omq);
  check_int "arity" 1 (Omq.arity omq);
  check "in FG_1" true (Cqs.in_fg 1 s);
  check "norm positive" true (Cqs.norm s > 0 && Omq.norm omq > 0);
  let partial =
    Omq.make
      ~data_schema:(Schema.of_list [ ("Order", 2) ])
      ~ontology:(Cqs.constraints s) ~query:(Cqs.query s)
  in
  check "partial schema not full" false (Omq.has_full_data_schema partial)

let () =
  Alcotest.run "units"
    [
      ( "terms-atoms-facts",
        [
          Alcotest.test_case "fresh nulls" `Quick test_fresh_nulls_distinct;
          Alcotest.test_case "term pp" `Quick test_term_pp;
          Alcotest.test_case "atom ops" `Quick test_atom_ops;
          Alcotest.test_case "fact ops" `Quick test_fact_ops;
        ] );
      ( "instance",
        [
          Alcotest.test_case "algebra" `Quick test_instance_algebra;
          Alcotest.test_case "predicates/tuples" `Quick test_instance_predicates_tuples;
        ] );
      ( "chase",
        [
          Alcotest.test_case "level slices" `Quick test_chase_level_slices_monotone;
          Alcotest.test_case "fact budget" `Quick test_chase_max_facts_cutoff;
        ] );
      ( "tgd",
        [
          Alcotest.test_case "details" `Quick test_tgd_details;
          Alcotest.test_case "rename apart" `Quick test_tgd_rename_apart;
        ] );
      ( "ucq-containment",
        [
          Alcotest.test_case "dedup/minimize" `Quick test_ucq_dedup_minimize;
          Alcotest.test_case "verdict lattice" `Quick test_verdict_lattice;
          Alcotest.test_case "Σ-containment reflexive" `Quick test_sigma_containment_reflexive;
        ] );
      ( "grohe",
        [
          Alcotest.test_case "helpers" `Quick test_grohe_helpers;
          Alcotest.test_case "minor map structure" `Quick test_minor_map_structure;
        ] );
      ( "specialization",
        [
          Alcotest.test_case "count" `Quick test_specialization_count;
          Alcotest.test_case "answers in V" `Quick test_specialization_answer_vars_in_v;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "BCQ→FG OMQ" `Quick test_bcq_to_fg_omq;
          Alcotest.test_case "example 4.4 data schema" `Quick test_example_4_4_data_schema;
        ] );
      ("unraveling", [ Alcotest.test_case "depth" `Quick test_unraveling_depth_grows ]);
      ("structure", [ Alcotest.test_case "omq/cqs" `Quick test_omq_cqs_structure ]);
    ]
