(** Resource budgets; see the interface for the cutoff semantics. *)

type violation = Facts of int | Levels of int | Deadline of float
type outcome = Complete | Partial of violation

type t = {
  max_facts : int;
  max_levels : int;
  max_ms : float;  (* as configured; infinity = none *)
  deadline : float;  (* absolute clock time; infinity = none *)
  clock : unit -> float;
}

let unlimited =
  {
    max_facts = max_int;
    max_levels = max_int;
    max_ms = infinity;
    deadline = infinity;
    clock = (fun () -> 0.);
  }

let create ?(clock = Unix.gettimeofday) ?(max_facts = max_int)
    ?(max_levels = max_int) ?max_ms () =
  let max_ms, deadline =
    match max_ms with
    | None -> (infinity, infinity)
    | Some ms -> (ms, clock () +. (ms /. 1000.))
  in
  { max_facts; max_levels; max_ms; deadline; clock }

let meet a b =
  {
    max_facts = min a.max_facts b.max_facts;
    max_levels = min a.max_levels b.max_levels;
    max_ms = min a.max_ms b.max_ms;
    deadline = min a.deadline b.deadline;
    clock = (if a.deadline <= b.deadline then a.clock else b.clock);
  }

let check b ~facts ~level =
  if facts > b.max_facts then Some (Facts b.max_facts)
  else if level > b.max_levels then Some (Levels b.max_levels)
  else if b.deadline < infinity && b.clock () > b.deadline then
    Some (Deadline b.max_ms)
  else None

let max_facts b = b.max_facts
let max_levels b = b.max_levels

let pp_violation ppf = function
  | Facts n -> Format.fprintf ppf "fact budget (%d) exhausted" n
  | Levels n -> Format.fprintf ppf "level budget (%d) exhausted" n
  | Deadline ms -> Format.fprintf ppf "deadline (%.0f ms) exceeded" ms

let pp_outcome ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Partial v -> Format.fprintf ppf "partial: %a" pp_violation v

let outcome_to_json = function
  | Complete -> Json.Obj [ ("status", Json.String "complete") ]
  | Partial v ->
      let reason, limit =
        match v with
        | Facts n -> ("max_facts", Json.Int n)
        | Levels n -> ("max_levels", Json.Int n)
        | Deadline ms -> ("max_ms", Json.Float ms)
      in
      Json.Obj
        [
          ("status", Json.String "partial");
          ("reason", Json.String reason);
          ("limit", limit);
        ]
