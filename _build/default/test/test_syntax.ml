(* Tests for the surface-language lexer, parser, and pretty-printer. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program =
  {|
% a small program
person/1.
knows(X,Y) -> person(X), person(Y).
person(X) -> knows(X,Z).
true -> world(W).

knows(alice,bob).
knows(bob,carol).

q(X) :- knows(X,Y), person(Y).
q(X) :- person(X), knows(X,X).
pairs(X,Y) :- knows(X,Y).
|}

let parsed () = Syntax.Parser.parse program

let test_parse_shapes () =
  let p = parsed () in
  check_int "tgds" 3 (List.length p.Syntax.Parser.tgds);
  check_int "facts" 2 (List.length p.Syntax.Parser.facts);
  check_int "queries" 2 (List.length p.Syntax.Parser.queries);
  check "schema has person/1" true (Schema.arity_of "person" p.Syntax.Parser.schema = Some 1);
  check "schema inferred knows/2" true (Schema.arity_of "knows" p.Syntax.Parser.schema = Some 2);
  check "schema inferred world/1" true (Schema.arity_of "world" p.Syntax.Parser.schema = Some 1)

let test_variables_vs_constants () =
  let p = parsed () in
  let t1 = List.hd p.Syntax.Parser.tgds in
  check "X is a variable" true
    Term.(VarSet.mem "X" (Tgds.Tgd.body_vars t1));
  let f = List.hd p.Syntax.Parser.facts in
  check "alice is a constant" true
    (List.mem (Term.Named "alice") (Fact.args f))

let test_existential_inferred () =
  let p = parsed () in
  let t2 = List.nth p.Syntax.Parser.tgds 1 in
  check "Z existential" true Term.(VarSet.mem "Z" (Tgds.Tgd.existential_vars t2));
  let t3 = List.nth p.Syntax.Parser.tgds 2 in
  check "empty body" true (Tgds.Tgd.body t3 = [])

let test_ucq_grouping () =
  let p = parsed () in
  match Syntax.Parser.query p "q" with
  | Some u ->
      check_int "two disjuncts" 2 (List.length (Ucq.disjuncts u));
      check_int "arity 1" 1 (Ucq.arity u)
  | None -> Alcotest.fail "query q missing"

let test_database () =
  let p = parsed () in
  let db = Syntax.Parser.database p in
  check_int "two facts" 2 (Instance.size db)

let test_roundtrip () =
  let p = parsed () in
  let printed = Fmt.str "%a" Syntax.Pretty.pp_program p in
  let p2 = Syntax.Parser.parse printed in
  check_int "tgds preserved" (List.length p.Syntax.Parser.tgds)
    (List.length p2.Syntax.Parser.tgds);
  check_int "facts preserved" (List.length p.Syntax.Parser.facts)
    (List.length p2.Syntax.Parser.facts);
  check "database identical" true
    (Instance.equal (Syntax.Parser.database p) (Syntax.Parser.database p2));
  (* queries survive module variable renaming: same number of disjuncts *)
  check_int "queries preserved" (List.length p.Syntax.Parser.queries)
    (List.length p2.Syntax.Parser.queries)

let test_errors () =
  let bad_cases =
    [
      "knows(X,Y.";         (* missing paren *)
      "knows(X,Y) -> .";    (* empty head *)
      "q(X) :- knows(X,Y)"; (* missing period *)
      "knows(X,bob).";      (* non-ground fact *)
      "p/x.";               (* bad arity *)
    ]
  in
  List.iter
    (fun src ->
      check (Fmt.str "rejects %S" src) true
        (try
           ignore (Syntax.Parser.parse src);
           false
         with
        | Syntax.Parser.Error _ | Syntax.Lexer.Error _ | Invalid_argument _ ->
            true))
    bad_cases

let test_comments_and_whitespace () =
  let p = Syntax.Parser.parse "% only a comment\n\n  \t\n" in
  check_int "empty program" 0 (List.length p.Syntax.Parser.facts);
  let p2 = Syntax.Parser.parse "a(b). % trailing comment" in
  check_int "one fact" 1 (List.length p2.Syntax.Parser.facts)

let test_zero_ary () =
  let p = Syntax.Parser.parse "e(X,Y) -> goal. start. q() :- goal." in
  check_int "one tgd" 1 (List.length p.Syntax.Parser.tgds);
  check "goal is 0-ary" true (Schema.arity_of "goal" p.Syntax.Parser.schema = Some 0);
  check "start fact" true
    (Instance.mem (Fact.make "start" []) (Syntax.Parser.database p))

(* ------------------------------------------------------------------ *)
(* Property: pretty-print/parse round trip on random programs            *)
(* ------------------------------------------------------------------ *)

let gen_program =
  QCheck.Gen.(
    let preds = [ ("edge", 2); ("node", 1); ("lab", 2) ] in
    let consts = [ "a"; "b"; "c" ] in
    let vars = [ "X"; "Y"; "Z" ] in
    let gen_pred = map (List.nth preds) (int_range 0 2) in
    let gen_fact =
      let* p, ar = gen_pred in
      let* args = list_repeat ar (map (List.nth consts) (int_range 0 2)) in
      return (Fact.make p (List.map (fun c -> Term.Named c) args))
    in
    let gen_var_atom =
      let* p, ar = gen_pred in
      let* args = list_repeat ar (map (List.nth vars) (int_range 0 2)) in
      return (Atom.make p (List.map Term.var args))
    in
    let gen_tgd =
      let* body = list_size (int_range 1 2) gen_var_atom in
      let* head = list_size (int_range 1 2) gen_var_atom in
      return (Tgds.Tgd.make ~body ~head)
    in
    let* facts = list_size (int_range 1 4) gen_fact in
    let* tgds = list_size (int_range 0 3) gen_tgd in
    let* q_atoms = list_size (int_range 1 2) gen_var_atom in
    let program =
      {
        Syntax.Parser.schema = Schema.of_list preds;
        tgds;
        facts;
        queries = [ ("q", Ucq.of_cq (Cq.make q_atoms)) ];
      }
    in
    return program)

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-print then parse preserves the program"
    ~count:100
    (QCheck.make ~print:(Fmt.str "%a" Syntax.Pretty.pp_program) gen_program)
    (fun p ->
      let p2 = Syntax.Parser.parse (Fmt.str "%a" Syntax.Pretty.pp_program p) in
      let db = Syntax.Parser.database p and db2 = Syntax.Parser.database p2 in
      Instance.equal db db2
      && List.length p.Syntax.Parser.tgds = List.length p2.Syntax.Parser.tgds
      && List.for_all2
           (fun t1 t2 ->
             Tgds.Tgd.is_guarded t1 = Tgds.Tgd.is_guarded t2
             && Tgds.Tgd.is_full t1 = Tgds.Tgd.is_full t2
             && Tgds.Tgd.head_size t1 = Tgds.Tgd.head_size t2)
           p.Syntax.Parser.tgds p2.Syntax.Parser.tgds
      &&
      (* queries evaluate identically on the program database *)
      match (Syntax.Parser.query p "q", Syntax.Parser.query p2 "q") with
      | Some q1, Some q2 -> Ucq.holds db q1 = Ucq.holds db q2
      | _ -> false)

let prop_chase_invariant_under_roundtrip =
  QCheck.Test.make ~name:"chase certain answers invariant under round trip"
    ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Syntax.Pretty.pp_program) gen_program)
    (fun p ->
      let p2 = Syntax.Parser.parse (Fmt.str "%a" Syntax.Pretty.pp_program p) in
      match (Syntax.Parser.query p "q", Syntax.Parser.query p2 "q") with
      | Some q1, Some q2 ->
          let v1, s1 =
            Tgds.Chase.certain ~max_level:4 ~max_facts:500 p.Syntax.Parser.tgds
              (Syntax.Parser.database p) q1 []
          in
          let v2, s2 =
            Tgds.Chase.certain ~max_level:4 ~max_facts:500 p2.Syntax.Parser.tgds
              (Syntax.Parser.database p2) q2 []
          in
          (not (s1 && s2)) || v1 = v2
      | _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pp_parse_roundtrip; prop_chase_invariant_under_roundtrip ]

let () =
  Alcotest.run "syntax"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "variables vs constants" `Quick test_variables_vs_constants;
          Alcotest.test_case "existentials" `Quick test_existential_inferred;
          Alcotest.test_case "UCQ grouping" `Quick test_ucq_grouping;
          Alcotest.test_case "database" `Quick test_database;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "zero-ary" `Quick test_zero_ary;
        ] );
      ("properties", qcheck_tests);
    ]
