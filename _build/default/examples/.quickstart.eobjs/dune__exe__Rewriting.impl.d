examples/rewriting.ml: Atom Cq Fact Fmt Instance List Relational Term Tgds Ucq
