lib/syntax/parser.ml: Atom Cq Fact Fmt Instance Lexer List Relational Schema Term Tgds Ucq
