(** Treewidth computation.

    Provides cheap lower bounds (degeneracy / MMD), heuristic upper bounds
    with witnesses (min-fill and min-degree elimination orders), and an exact
    branch-and-bound over elimination orders with memoization, practical to
    roughly 20 vertices — enough for every query used in the test and bench
    suites. Graphs are first compacted to indices [0..n-1] and represented
    as bitmask adjacency arrays (requires n ≤ 62 for the exact solver). *)

module ISet = Graph.ISet
module IMap = Graph.IMap

(* ------------------------------------------------------------------ *)
(* Compact bitmask representation                                      *)
(* ------------------------------------------------------------------ *)

type compact = {
  n : int;
  adj : int array;  (** adj.(i) = bitmask of neighbors of i *)
  back : int array;  (** index -> original vertex *)
}

let compact_of_graph g =
  let vs = Graph.vertices g in
  let n = List.length vs in
  let back = Array.of_list vs in
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.add index v i) back;
  let adj = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      let i = Hashtbl.find index u and j = Hashtbl.find index v in
      adj.(i) <- adj.(i) lor (1 lsl j);
      adj.(j) <- adj.(j) lor (1 lsl i))
    (Graph.edges g);
  { n; adj; back }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Neighbors of [v] in the fill graph where the vertex set [eliminated] has
   been eliminated: vertices u ∉ eliminated, u ≠ v, reachable from v via a
   path whose internal vertices all lie in [eliminated]. *)
let fill_neighbors c eliminated v =
  let seen = ref (1 lsl v) in
  let result = ref 0 in
  let frontier = ref (c.adj.(v) land lnot !seen) in
  while !frontier <> 0 do
    let u = !frontier land - !frontier in
    frontier := !frontier land lnot u;
    if !seen land u = 0 then begin
      seen := !seen lor u;
      let i = popcount (u - 1) in
      if eliminated land u <> 0 then
        frontier := !frontier lor (c.adj.(i) land lnot !seen)
      else result := !result lor u
    end
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Lower bound: degeneracy (a.k.a. MMD)                                 *)
(* ------------------------------------------------------------------ *)

(** Degeneracy lower bound: the maximum over the elimination of minimum
    degree vertices. A graph of treewidth k is k-degenerate, so the
    degeneracy is a lower bound on treewidth. *)
let lower_bound g =
  let rec go g best =
    if Graph.num_vertices g = 0 then best
    else
      let v, d =
        List.fold_left
          (fun (bv, bd) v ->
            let d = Graph.degree g v in
            if d < bd then (v, d) else (bv, bd))
          (-1, max_int) (Graph.vertices g)
      in
      go (Graph.remove_vertex g v) (max best d)
  in
  if Graph.num_vertices g = 0 then 0 else go g 0

(* ------------------------------------------------------------------ *)
(* Upper bound heuristics (min-fill, min-degree)                        *)
(* ------------------------------------------------------------------ *)

type heuristic = Min_fill | Min_degree

(* Number of fill edges created by eliminating v from the adjacency table. *)
let fill_cost adj v =
  let nbrs = Hashtbl.find adj v in
  let cost = ref 0 in
  ISet.iter
    (fun u ->
      ISet.iter
        (fun w ->
          if u < w && not (ISet.mem w (Hashtbl.find adj u)) then incr cost)
        nbrs)
    nbrs;
  !cost

(** [heuristic_order ?h g] produces an elimination order by repeatedly
    eliminating the vertex minimizing the heuristic score. *)
let heuristic_order ?(h = Min_fill) g =
  let adj = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace adj v (Graph.neighbors g v)) (Graph.vertices g);
  let remaining = ref (Graph.vertex_set g) in
  let order = ref [] in
  while not (ISet.is_empty !remaining) do
    let score v =
      match h with
      | Min_degree -> ISet.cardinal (Hashtbl.find adj v)
      | Min_fill -> fill_cost adj v
    in
    let v =
      ISet.fold
        (fun v (bv, bs) ->
          let s = score v in
          if s < bs then (v, s) else (bv, bs))
        !remaining (-1, max_int)
      |> fst
    in
    let nbrs = Hashtbl.find adj v in
    ISet.iter
      (fun u ->
        Hashtbl.replace adj u
          (ISet.remove v (ISet.union (Hashtbl.find adj u) (ISet.remove u nbrs))))
      nbrs;
    remaining := ISet.remove v !remaining;
    order := v :: !order
  done;
  List.rev !order

(** Width of an elimination order (max number of later neighbors in the
    fill graph). *)
let order_width g order =
  let td = Tree_decomposition.of_elimination_order g order in
  Tree_decomposition.width td

(** Heuristic upper bound together with its witnessing decomposition. *)
let upper_bound ?(h = Min_fill) g =
  if Graph.num_vertices g = 0 then (0, Tree_decomposition.singleton ISet.empty)
  else
    let order = heuristic_order ~h g in
    let td = Tree_decomposition.of_elimination_order g order in
    (Tree_decomposition.width td, td)

(* ------------------------------------------------------------------ *)
(* Exact treewidth: branch and bound over elimination orders            *)
(* ------------------------------------------------------------------ *)

exception Too_large

(** [exact g] computes the exact treewidth of [g]. Raises [Too_large] when
    [g] has more than 62 vertices (use {!upper_bound}/{!lower_bound} then).
    Each connected component is solved independently. *)
let exact g =
  let solve_component g =
    let c = compact_of_graph g in
    if c.n > 62 then raise Too_large;
    let full = (1 lsl c.n) - 1 in
    let ub = ref (fst (upper_bound g)) in
    let lb = lower_bound g in
    (* memo: eliminated-set -> best width achievable for the remainder,
       given it was explored with a bound; store (bound_used, result). *)
    let memo = Hashtbl.create 4096 in
    let rec best eliminated cutoff =
      (* minimal possible max-degree completion for remaining vertices,
         given [eliminated]; returns value ≥ cutoff to signal pruning. *)
      if eliminated = full then 0
      else
        match Hashtbl.find_opt memo eliminated with
        | Some (c0, r) when r < c0 || c0 >= cutoff -> r
        | _ ->
            let rest = full land lnot eliminated in
            let result = ref max_int in
            let m = ref rest in
            while !m <> 0 && !result > lb do
              let bit = !m land - !m in
              m := !m land lnot bit;
              let v = popcount (bit - 1) in
              let d = popcount (fill_neighbors c eliminated v) in
              if d < cutoff && d < !result then begin
                let sub = best (eliminated lor bit) (min cutoff !result) in
                let w = max d sub in
                if w < !result then result := w
              end
            done;
            Hashtbl.replace memo eliminated (cutoff, !result);
            !result
    in
    if c.n = 0 then 0
    else if lb >= !ub then !ub
    else begin
      let r = best 0 (!ub + 1) in
      min r !ub
    end
  in
  match Graph.components g with
  | [] -> 0
  | comps ->
      List.fold_left
        (fun acc vs -> max acc (solve_component (Graph.induced g vs)))
        0 comps

(** Exact treewidth with a witnessing decomposition: runs {!exact} to find
    the width [k], then searches an elimination order of width [k] greedily
    validated by the exact bound. For simplicity we recompute via iterative
    deepening on heuristic orders; falls back to the heuristic witness. *)
let exact_decomposition g =
  let k = exact g in
  let _, td_fill = upper_bound ~h:Min_fill g in
  let _, td_deg = upper_bound ~h:Min_degree g in
  let td =
    if Tree_decomposition.width td_fill <= Tree_decomposition.width td_deg then
      td_fill
    else td_deg
  in
  if Tree_decomposition.width td = k then (k, td)
  else begin
    (* brute-force a width-k order: branch and bound constructing the order *)
    let c = compact_of_graph g in
    if c.n > 62 then (k, td)
    else
      let full = (1 lsl c.n) - 1 in
      let rec build eliminated acc =
        if eliminated = full then Some (List.rev acc)
        else
          let rec try_v m =
            if m = 0 then None
            else
              let bit = m land -m in
              let v = popcount (bit - 1) in
              let d = popcount (fill_neighbors c eliminated v) in
              if d <= k then
                match build (eliminated lor bit) (c.back.(v) :: acc) with
                | Some o -> Some o
                | None -> try_v (m land lnot bit)
              else try_v (m land lnot bit)
          in
          try_v (full land lnot eliminated)
      in
      match build 0 [] with
      | Some order -> (k, Tree_decomposition.of_elimination_order g order)
      | None -> (k, td)
  end

(** Total variants: [None] instead of {!Too_large}, so callers can fall
    back to {!upper_bound} without an exception handler at every site. *)
let exact_opt g = try Some (exact g) with Too_large -> None

let exact_decomposition_opt g =
  try Some (exact_decomposition g) with Too_large -> None

(** Treewidth of [g] with the paper's convention handled by callers; this is
    the mathematical treewidth (0 for edgeless graphs). Uses exact search
    when feasible, otherwise brackets with heuristics (returns the upper
    bound and logs the gap). *)
let treewidth g =
  try exact g
  with Too_large ->
    let lb = lower_bound g and ub, _ = upper_bound g in
    if lb <> ub then
      Logs.warn (fun m ->
          m "treewidth: graph too large for exact search; reporting upper \
             bound %d (lower bound %d)" ub lb);
    ub

(** [at_most g k] decides whether treewidth(g) ≤ k. *)
let at_most g k = treewidth g <= k
