lib/core/cqs_eval.mli: Cqs Instance Relational Term
