(** The oblivious chase (§2), level-wise.

    A trigger is a TGD together with a homomorphism of its body into the
    current instance; the oblivious chase fires every trigger exactly once,
    regardless of whether the head is already satisfied, inventing fresh
    labelled nulls for the existential variables. Because the chase is
    oblivious, the result is unique up to isomorphism, so the level-bounded
    instances [chase^ℓ_s(D,Σ)] of Lemma A.1 are canonical.

    Two engines produce the same levels (and the same instance up to null
    renaming): the default [`Indexed] engine runs the semi-naive
    saturation of {!Engine.Saturate} — per-level delta-driven trigger
    enumeration over an indexed fact store — while [`Naive] re-enumerates
    every body homomorphism against the whole instance at every level
    (kept for the ablation benchmarks, E15). *)

open Relational
open Relational.Term

type result = {
  instance : Instance.t Lazy.t;
  level_of : (Fact.t, int) Hashtbl.t;
  saturated : bool;
  max_level : int;
  index : Engine.Index.t option;  (** the engine's store, when indexed *)
  stats : Engine.Saturate.stats option;
}

(* Key identifying a trigger: TGD index + frontier/body binding. *)
let trigger_key i (b : Homomorphism.binding) (sigma_i : Tgd.t) =
  let bv = VarSet.elements (Tgd.body_vars sigma_i) in
  let img = List.map (fun x -> VarMap.find_opt x b) bv in
  (i, img)

type policy = Oblivious | Restricted
type engine = [ `Naive | `Indexed ]

(* The original level-wise loop: every level re-enumerates all body
   homomorphisms of every TGD against the entire instance, deduplicating
   by trigger key. *)
let run_naive ~policy ~max_level ~max_facts sigma db =
  let sigma = Array.of_list sigma in
  let level_of : (Fact.t, int) Hashtbl.t = Hashtbl.create 256 in
  let fired = Hashtbl.create 256 in
  let inst = ref db in
  Instance.iter (fun f -> Hashtbl.replace level_of f 0) db;
  let saturated = ref false in
  let level = ref 0 in
  let overflow = ref false in
  while (not !saturated) && (not !overflow) && !level < max_level do
    (* collect unfired triggers whose body lies in the current instance *)
    let new_triggers = ref [] in
    Array.iteri
      (fun i t ->
        Homomorphism.fold_homs (Tgd.body t) !inst
          (fun b () ->
            let key = trigger_key i b t in
            if not (Hashtbl.mem fired key) then
              let active =
                match policy with
                | Oblivious -> true
                | Restricted ->
                    (* skip when the head is already witnessed *)
                    let init =
                      VarMap.filter
                        (fun x _ -> VarSet.mem x (Tgd.frontier t))
                        b
                    in
                    not (Homomorphism.exists ~init (Tgd.head t) !inst)
              in
              if active then new_triggers := (i, b, key) :: !new_triggers
              else Hashtbl.replace fired key ())
          ())
      sigma;
    if !new_triggers = [] then saturated := true
    else begin
      incr level;
      List.iter
        (fun (i, b, key) ->
          if not !overflow then begin
            Hashtbl.replace fired key ();
            let t = sigma.(i) in
            (* body image level *)
            let body_level =
              List.fold_left
                (fun acc a ->
                  let f = Fact.of_atom (Homomorphism.apply_binding b a) in
                  max acc (try Hashtbl.find level_of f with Not_found -> 0))
                0 (Tgd.body t)
            in
            let fresh =
              VarSet.fold
                (fun z acc -> VarMap.add z (fresh_null ()) acc)
                (Tgd.existential_vars t)
                VarMap.empty
            in
            let full_binding =
              VarMap.union (fun _ a _ -> Some a) b fresh
            in
            List.iter
              (fun h ->
                let f = Fact.of_atom (Homomorphism.apply_binding full_binding h) in
                if not (Instance.mem f !inst) then begin
                  inst := Instance.add_fact f !inst;
                  Hashtbl.replace level_of f (body_level + 1);
                  if Hashtbl.length level_of > max_facts then overflow := true
                end)
              (Tgd.head t)
          end)
        (List.rev !new_triggers)
    end
  done;
  {
    instance = Lazy.from_val !inst;
    level_of;
    saturated = !saturated;
    max_level = !level;
    index = None;
    stats = None;
  }

let run_indexed ~policy ~max_level ~max_facts sigma db =
  let rules =
    List.map
      (fun t -> Engine.Saturate.{ body = Tgd.body t; head = Tgd.head t })
      sigma
  in
  let policy =
    match policy with
    | Oblivious -> Engine.Saturate.Oblivious
    | Restricted -> Engine.Saturate.Restricted
  in
  let r = Engine.Saturate.run ~policy ~max_level ~max_facts rules db in
  {
    instance = lazy (Engine.Index.to_instance r.Engine.Saturate.index);
    level_of = r.Engine.Saturate.level_of;
    saturated = r.Engine.Saturate.saturated;
    max_level = r.Engine.Saturate.max_level;
    index = Some r.Engine.Saturate.index;
    stats = Some r.Engine.Saturate.stats;
  }

(** [run ?engine ?policy ?max_level ?max_facts sigma db] — the level-wise
    chase of [db] under [sigma].

    [engine] selects the trigger-enumeration machinery: [`Indexed]
    (default), the semi-naive engine of [lib/engine]; [`Naive], the
    re-enumerating loop (ablations). Both produce the same levels.

    [policy] defaults to [Oblivious], the paper's semantics (§2): a
    trigger fires whenever its body is satisfied, regardless of the head,
    making the result unique up to isomorphism. [Restricted] skips
    triggers whose head is already satisfied — it produces (often much)
    smaller instances with the same certain answers, at the price of
    order-dependence; it is offered for the ablation benchmarks.

    Stops when saturated, or when the next level would exceed [max_level],
    or when more than [max_facts] facts have been produced. The result
    records each fact's s-level (facts of the input database have level 0;
    a derived fact's level is 1 + the maximum level of the trigger's body
    image, per Appendix A). *)
let run ?(engine = `Indexed) ?(policy = Oblivious) ?(max_level = max_int)
    ?(max_facts = max_int) sigma db =
  match engine with
  | `Naive -> run_naive ~policy ~max_level ~max_facts sigma db
  | `Indexed -> run_indexed ~policy ~max_level ~max_facts sigma db

(** [instance r] — the chased instance. *)
let instance (r : result) = Lazy.force r.instance

let saturated (r : result) = r.saturated

(** [index r] — the chased instance as an {!Engine.Index.t}, reusing the
    engine's store when the run was indexed. *)
let index (r : result) =
  match r.index with
  | Some idx -> idx
  | None -> Engine.Index.of_instance (Lazy.force r.instance)

(** Per-run saturation statistics ([None] for naive runs). *)
let stats (r : result) = r.stats

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    (i.e. [chase^l_s(D,Σ)] when the run reached at least level [l]). *)
let up_to_level (r : result) l =
  Instance.filter
    (fun f -> match Hashtbl.find_opt r.level_of f with Some lv -> lv <= l | None -> true)
    (Lazy.force r.instance)

(** [level r f] — the s-level of a fact of the result. *)
let level (r : result) f = Hashtbl.find_opt r.level_of f

(** The ground part [chase↓]: facts whose constants are all from [dom db]
    (equivalently, contain no labelled null invented by the chase). *)
let ground_part (r : result) =
  Instance.filter (fun f -> not (Fact.is_ground_of_nulls f)) (Lazy.force r.instance)

(** Convenience: chase and return the instance. *)
let chase ?engine ?max_level ?max_facts sigma db =
  instance (run ?engine ?max_level ?max_facts sigma db)

(** [certain ?max_level sigma db q tuple] — sound check that
    [tuple ∈ q(chase(db,sigma))] using a level-bounded chase; complete when
    the run saturates (Proposition 3.1). Returns the verdict together with
    whether it is known complete. *)
let certain ?engine ?(max_level = 6) ?max_facts sigma db (q : Ucq.t) tuple =
  let r = run ?engine ~max_level ?max_facts sigma db in
  (Engine.Joiner.entails_ucq (index r) q tuple, r.saturated)
