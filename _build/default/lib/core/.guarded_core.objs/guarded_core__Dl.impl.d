lib/core/dl.ml: Atom Fact Fmt List Printf Relational Term Tgds
