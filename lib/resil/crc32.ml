(** CRC-32 (IEEE 802.3); see the interface. Plain OCaml ints carry the
    32-bit state — [lsr] never widens it and the final mask keeps the
    result in [0, 2^32) on 64-bit hosts. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let to_hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        s
    in
    if ok then int_of_string_opt ("0x" ^ s) else None
