(** Description-logic front-end: an ELHI-style concept language whose
    TBox axioms translate to frontier-guarded single-variable-frontier
    TGDs — the fragment of guarded TGDs the paper relates to in §1. *)

open Relational

type role = Role of string | Inverse of string

type concept =
  | Top
  | Atomic of string
  | Conj of concept * concept
  | Exists of role * concept  (** ∃r.C *)

type axiom =
  | Sub of concept * concept  (** C ⊑ D *)
  | Role_sub of role * role  (** r ⊑ s *)
  | Domain of role * concept  (** ∃r.⊤ ⊑ C *)
  | Range of role * concept  (** ∃r⁻.⊤ ⊑ C *)

(** The TGD translation (every TGD frontier-guarded); raises
    [Invalid_argument] on ⊤ in a left-hand side or as a full right-hand
    side. *)
val to_tgds : axiom list -> Tgds.Tgd.t list

(** The ELH fragment: no inverse roles (OWL 2 EL regime); unnested
    left-hand sides then translate to guarded TGDs. *)
val in_elh : axiom list -> bool

(** ABox facts. *)
val assertion : string -> string -> Fact.t

val role_assertion : string -> string -> string -> Fact.t
val pp_role : Format.formatter -> role -> unit
val pp_concept : Format.formatter -> concept -> unit
val pp_axiom : Format.formatter -> axiom -> unit
