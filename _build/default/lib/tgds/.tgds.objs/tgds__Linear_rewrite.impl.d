lib/tgds/linear_rewrite.ml: Atom Containment Cq Fun Hashtbl List Map Option Printf Queue Relational Term Tgd Ucq VarSet
