lib/core/tw_eval.ml: Array Atom ConstSet Cq Fact Hashtbl Homomorphism Instance List Qgraph Relational Ucq VarMap VarSet
