(** The query server's line-oriented wire protocol.

    One request per input line:
    {v
    answers q(X) :- teaches(X,C).
    count q(X) :- prof(X). q(X) :- student(X).
    v}
    The text after the verb is parsed with the surface-language parser;
    clauses sharing a head name form a UCQ, so a union fits on one line.
    Blank lines and [%] comments are skipped without a reply. A request
    may contain {e only} query clauses (no TGDs, no facts) and exactly
    one query name.

    Every reply is a single line starting with the request id (the
    1-based input line number), so replies are self-describing under any
    completion order:
    {v
    <id> ok <n> (t1) (t2) ...        answers, complete
    <id> ok count=<n>                count, complete
    <id> partial <n> (t1) ...        budget cut the enumeration, or the
                                     store was frozen unsaturated — the
                                     tuples are a sound subset
    <id> error <message>             parse failure or evaluation fault
    <id> quarantined                 query previously faulted; not run
    v}
    Reply bytes are {e canonical}: the answer tuples come from the
    enumerator's sorted duplicate-free answer set, so a request's reply
    line is identical under any worker count and any scheduling — only
    the interleaving of reply lines varies, and sorting a transcript by
    leading id restores a deterministic document. *)

open Relational

type verb = Answers | Count

type request = {
  id : int;  (** 1-based input line number *)
  verb : verb;
  key : string;
      (** canonical quarantine key: verb plus the parsed query rendered
          back, so textual variants of the same query share a key *)
  query : Ucq.t;
}

type line =
  | Request of request
  | Empty  (** blank or comment: no reply *)
  | Malformed of string  (** parse error, to be wrapped in an error reply *)

val parse_line : id:int -> string -> line

(** [render_ok r ~saturated res] — the reply line for a successful
    evaluation, straight from the interned answer set: tuples extern one
    constant at a time into the buffer (no materialized [const list
    list]), and a [count] reply never touches the rows at all. Status is
    [ok] only when the store was saturated {e and} the enumeration
    completed; otherwise [partial]. *)
val render_ok :
  request -> saturated:bool -> Engine.Enumerate.interned -> string

val render_error : id:int -> string -> string
val render_quarantined : id:int -> string
