(** Chase termination analysis: weak acyclicity (Fagin–Kolaitis–Miller–Popa,
    [22]).

    The paper's evaluation problems run the chase without a termination
    guarantee (its bounds are level-based, Lemma A.1). This module supplies
    the classical *static* guarantee: build the dependency graph over
    predicate positions — a normal edge [(p,i) → (q,j)] when a frontier
    variable travels from body position [(p,i)] to head position [(q,j)],
    and a special edge when an existential variable is created at [(q,j)]
    by a rule reading [(p,i)] — and check that no cycle passes through a
    special edge. Weak acyclicity implies that every chase sequence
    terminates in polynomially many steps in the data. *)

open Relational
open Relational.Term

type position = string * int
(** predicate name and argument index (0-based) *)

type edge = { src : position; dst : position; special : bool }

(* Positions at which a variable occurs in an atom list. *)
let positions_of x atoms =
  List.concat_map
    (fun a ->
      List.concat
        (List.mapi
           (fun i t -> if t = Var x then [ (Atom.pred a, i) ] else [])
           (Atom.args a)))
    atoms

(** The dependency graph of a TGD set, as an edge list. *)
let dependency_edges sigma =
  List.concat_map
    (fun t ->
      let frontier = Tgd.frontier t in
      let existential = Tgd.existential_vars t in
      VarSet.fold
        (fun x acc ->
          let body_pos = positions_of x (Tgd.body t) in
          (* normal edges for x's own head occurrences *)
          let normal =
            List.concat_map
              (fun src ->
                List.map
                  (fun dst -> { src; dst; special = false })
                  (positions_of x (Tgd.head t)))
              body_pos
          in
          (* special edges to every existential position of this rule *)
          let special =
            List.concat_map
              (fun src ->
                VarSet.fold
                  (fun z acc ->
                    List.map
                      (fun dst -> { src; dst; special = true })
                      (positions_of z (Tgd.head t))
                    @ acc)
                  existential [])
              body_pos
          in
          normal @ special @ acc)
        frontier [])
    sigma
  |> List.sort_uniq Stdlib.compare

(** [weakly_acyclic sigma] — no cycle of the dependency graph contains a
    special edge; then every chase sequence over every database terminates
    (in polynomially many steps for fixed Σ). *)
let weakly_acyclic sigma =
  let edges = dependency_edges sigma in
  (* adjacency over all edges *)
  let succs = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.add succs e.src e.dst) edges;
  let reaches src dst =
    let seen = Hashtbl.create 32 in
    let rec go p =
      p = dst
      || (not (Hashtbl.mem seen p))
         && begin
              Hashtbl.replace seen p ();
              List.exists go (Hashtbl.find_all succs p)
            end
    in
    (* [reaches] asks for a nonempty path when src = dst, so start from the
       successors *)
    List.exists go (Hashtbl.find_all succs src)
  in
  not
    (List.exists
       (fun e -> e.special && (e.dst = e.src || reaches e.dst e.src))
       edges)

(** [terminates_on_all_databases sigma] — a sufficient static condition
    for chase termination: weak acyclicity, or absence of existential
    variables (full TGDs always terminate). *)
let terminates_on_all_databases sigma =
  Tgd.all_full sigma || weakly_acyclic sigma

let pp_position ppf (p, i) = Fmt.pf ppf "%s#%d" p i

let pp_edge ppf e =
  Fmt.pf ppf "%a %s %a" pp_position e.src
    (if e.special then "=>" else "->")
    pp_position e.dst
