(** Index-aware backtracking homomorphism search; see the interface for
    the contract. Atom selection is cheapest-first by posting-list size,
    so selection costs O(arity) per pending atom instead of a candidate
    scan. *)

open Relational
open Relational.Term

type binding = Homomorphism.binding

let fold ?(probe = true) ?(injective = false) ?(init = VarMap.empty) ?delta
    atoms idx f acc =
  if probe then Obs.Probe.hit "engine.join";
  let m = Index.metrics idx in
  let c_candidates = Obs.Metrics.counter m "joiner.candidates" in
  let c_backtracks = Obs.Metrics.counter m "joiner.backtracks" in
  (* match the remaining atoms, cheapest first *)
  let rec search b pending acc =
    match pending with
    | [] -> f b acc
    | _ ->
        let best_i, best_a, _ =
          List.fold_left
            (fun (bi, ba, bc) (i, a) ->
              let c = Index.candidate_count idx a b in
              if c < bc then (i, a, c) else (bi, ba, bc))
            (-1, List.hd pending, max_int)
            (List.mapi (fun i a -> (i, a)) pending)
        in
        let rest = List.filteri (fun i _ -> i <> best_i) pending in
        (* interned candidate walk: same posting list, order and
           counter accounting as matching decoded tuples, minus the
           tuple materialization *)
        Index.fold_matches idx best_a b ~injective
          ~on_candidate:(fun () -> Obs.Metrics.incr c_candidates)
          ~on_fail:(fun () -> Obs.Metrics.incr c_backtracks)
          (fun b' acc -> search b' rest acc)
          acc
  in
  match (delta, atoms) with
  | None, _ | _, [] -> search init atoms acc
  | Some dfacts, pivot :: rest ->
      let p = Atom.pred pivot in
      List.fold_left
        (fun acc df ->
          if Fact.pred df <> p then acc
          else begin
            Obs.Metrics.incr c_candidates;
            match Homomorphism.match_atom ~injective init pivot (Fact.args df) with
            | Some b -> search b rest acc
            | None ->
                Obs.Metrics.incr c_backtracks;
                acc
          end)
        acc dfacts

exception Found of binding

let find ?probe ?injective ?init ?delta atoms idx =
  try
    fold ?probe ?injective ?init ?delta atoms idx (fun b _ -> raise (Found b)) ();
    None
  with Found b -> Some b

let exists ?probe ?injective ?init ?delta atoms idx =
  Option.is_some (find ?probe ?injective ?init ?delta atoms idx)

let all ?injective ?init ?delta atoms idx =
  List.rev (fold ?injective ?init ?delta atoms idx (fun b acc -> b :: acc) [])

(* ------------------------------------------------------------------ *)
(* Query evaluation over an index                                       *)
(* ------------------------------------------------------------------ *)

let entails_cq idx q tuple =
  List.length tuple = Cq.arity q
  &&
  let init =
    List.fold_left2
      (fun acc x c -> VarMap.add x c acc)
      VarMap.empty (Cq.answer q) tuple
  in
  exists ~init (Cq.atoms q) idx

let holds_cq idx q = exists (Cq.atoms q) idx

let answers_cq idx q =
  fold (Cq.atoms q) idx
    (fun b acc -> List.map (fun x -> VarMap.find x b) (Cq.answer q) :: acc)
    []
  |> List.sort_uniq Stdlib.compare

let entails_ucq idx u tuple =
  List.exists (fun q -> entails_cq idx q tuple) (Ucq.disjuncts u)

let holds_ucq idx u = List.exists (holds_cq idx) (Ucq.disjuncts u)

let answers_ucq idx u =
  List.concat_map (answers_cq idx) (Ucq.disjuncts u)
  |> List.sort_uniq Stdlib.compare
