lib/core/omq_eval.ml: Fact Instance List Omq Relational Term Tgds Tw_eval Ucq
