lib/core/diversification.ml: ConstMap ConstSet Fact Instance List Relational Unraveling
