(** CQ specializations and Σ-groundings (Appendix C.1/C.2).

    A specialization of a CQ [q(x̄)] is a pair [(p, V)] with [p] a
    contraction of [q] and [x̄ ⊆ V ⊆ var(p)]: it describes a way [q] can
    map into a chase — the variables of [V] land on database constants,
    the rest in the anonymous part. A Σ-grounding replaces each maximally
    [V]-connected component of [p[V]] by a guarded full CQ that entails it
    under Σ (Definition C.3). These are the building blocks of the
    UCQk-approximations of guarded OMQs (Definition C.6). *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd
module Chase = Tgds.Chase

type t = { contraction : Cq.t; v : VarSet.t }

(** All specializations of [q] (Definition C.1). Exponential — intended
    for the small queries of the meta problems. *)
let all (q : Cq.t) =
  List.concat_map
    (fun p ->
      let answer = VarSet.of_list (Cq.answer p) in
      let optional = VarSet.elements (VarSet.diff (Cq.vars p) answer) in
      let rec subsets = function
        | [] -> [ VarSet.empty ]
        | x :: rest ->
            let s = subsets rest in
            s @ List.map (VarSet.add x) s
      in
      List.map
        (fun extra -> { contraction = p; v = VarSet.union answer extra })
        (subsets optional))
    (Cq.contractions q)

(* ------------------------------------------------------------------ *)
(* Guarded full CQ enumeration                                          *)
(* ------------------------------------------------------------------ *)

(* All argument tuples of length [n] over the variable pool. *)
let rec tuples pool n =
  if n = 0 then [ [] ]
  else List.concat_map (fun t -> List.map (fun v -> v :: t) pool) (tuples pool (n - 1))

(* Candidate guard atoms over a pool of variables such that the required
   variables all occur. *)
let guard_candidates schema pool required =
  List.concat_map
    (fun (p, ar) ->
      tuples pool ar
      |> List.filter (fun args ->
             List.for_all (fun x -> List.mem x args) required)
      |> List.map (fun args -> Atom.make p (List.map Term.var args)))
    (Schema.bindings schema)

(* All atoms over exactly the variables of the guard (side-atom pool). *)
let side_candidates schema guard_vars =
  List.concat_map
    (fun (p, ar) ->
      tuples guard_vars ar |> List.map (fun args -> Atom.make p (List.map Term.var args)))
    (Schema.bindings schema)

let rec subsets_list = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets_list rest in
      s @ List.map (fun ys -> x :: ys) s

(** [component_groundings ?max_level schema sigma ~pool_size pi vi] — the
    guarded full CQs [дi] for a maximally [V]-connected component [pi]
    (atom list) with interface variables [vi = var(pi) ∩ V]: vars drawn
    from [vi] plus fresh variables up to the schema arity, one atom
    guarding everything, and [pi → chase(дi,Σ)] via the identity on [vi]
    (checked with a level-bounded chase). The enumeration is capped by
    [max_side] side-atom subsets per guard (DESIGN.md §5.5). *)
let component_groundings ?(max_level = 6) ?(max_side = 4096) ~index schema sigma
    (pi : Atom.t list) (vi : string list) =
  let ar = Schema.ar schema in
  let fresh = List.init (max 0 (ar - List.length vi))
      (fun j -> Printf.sprintf "y%d_%d" index j) in
  let pool = vi @ fresh in
  let entails_component g_atoms =
    (* pi → chase(D[g],Σ) fixing vi *)
    let g = Cq.make ~answer:[] g_atoms in
    let db = Cq.canonical_db g in
    let r = Chase.run ~max_level ~max_facts:20_000 sigma db in
    let init =
      List.fold_left
        (fun acc x -> VarMap.add x (Cq.freeze x) acc)
        VarMap.empty vi
    in
    Homomorphism.exists ~init pi (Chase.instance r)
  in
  guard_candidates schema pool vi
  |> List.concat_map (fun guard ->
         let gvars = VarSet.elements (Atom.vars guard) in
         let sides =
           side_candidates schema gvars
           |> List.filter (fun a -> not (Atom.equal a guard))
         in
         let side_sets = subsets_list sides in
         let side_sets =
           if List.length side_sets > max_side then
             (* keep the maximal set and the singletons: the maximal set is
                the strongest candidate, cf. the type-shaped groundings of
                Lemma C.5 *)
             [ sides; [] ] @ List.map (fun a -> [ a ]) sides
           else side_sets
         in
         List.filter_map
           (fun side ->
             let g_atoms = guard :: side in
             if entails_component g_atoms then Some g_atoms else None)
           side_sets)
  |> List.sort_uniq (fun a b -> Stdlib.compare (List.sort Atom.compare a) (List.sort Atom.compare b))

(** [groundings ?bounds schema sigma spec] — the Σ-groundings of a
    specialization (Definition C.3), as CQs with the answer variables of
    the contraction. *)
let groundings ?max_level ?max_side schema sigma (s : t) =
  let p = s.contraction in
  let g0 = Cq.restrict_to p s.v in
  let components = Cq.v_connected_components p s.v in
  let component_choices =
    List.mapi
      (fun i pi ->
        let vi =
          VarSet.elements
            (VarSet.inter
               (List.fold_left (fun acc a -> VarSet.union (Atom.vars a) acc) VarSet.empty pi)
               s.v)
        in
        component_groundings ?max_level ?max_side ~index:i schema sigma pi vi)
      components
  in
  (* the product of per-component choices *)
  let rec product = function
    | [] -> [ [] ]
    | choices :: rest ->
        List.concat_map (fun g -> List.map (fun r -> g @ r) (product rest)) choices
  in
  if List.exists (fun c -> c = []) component_choices then []
  else
    List.map
      (fun combined -> Cq.normalize (Cq.make ~answer:(Cq.answer p) (g0 @ combined)))
      (product component_choices)
