lib/core/cqs_eval.ml: Cqs Relational Sigma_containment Tw_eval Ucq
