(** A reusable pool of worker domains.

    [create n] builds a pool of [n] shards backed by [n - 1] spawned
    domains ({!Domain.spawn}); shard 0 always executes on the calling
    domain, so a pool of size 1 spawns nothing and adds no overhead. The
    pool is reused across saturation passes — domains are spawned once
    per run, not once per pass.

    {!run} is a fork–join step: task [i] runs on shard [i], the caller
    participates as shard 0, and the call returns only when every task
    has finished. A task that raises has its exception re-raised on the
    calling domain after the join, lowest shard index first (so failure
    propagation is as deterministic as the rest of the engine).

    Tasks must not touch process-global mutable state — in this codebase
    that means the {!Obs.Probe} hook and any shared
    {!Obs.Metrics} registry; workers get shard-local registries via
    {!Index.reader}. *)

type t

type task = unit -> unit

(** [create n] — a pool of [n ≥ 1] shards ([n - 1] spawned domains).
    @raise Invalid_argument when [n < 1]. *)
val create : int -> t

(** Number of shards (including the caller's shard 0). *)
val size : t -> int

(** [run pool tasks] — execute [tasks.(i)] on shard [i] and wait for all
    of them; at most {!size}[ pool] tasks.
    @raise Invalid_argument on too many tasks or a shut-down pool. *)
val run : t -> task array -> unit

(** Stop and join all worker domains. Idempotent. *)
val shutdown : t -> unit
