(** Semi-naive saturation.

    A delta-driven fixpoint over existential rules (TGD-shaped
    body → head atom lists): level ℓ+1 enumerates only the triggers whose
    body uses at least one fact created at level ℓ — every older trigger
    was enumerated (and fired or dismissed) at the level where its last
    body fact appeared, so no level re-derives earlier levels. The
    per-level trigger sets coincide with those of the naive level-wise
    chase ([Tgds.Chase.run ~engine:`Naive]), so the s-levels of
    Lemma A.1 are preserved exactly: a fact derived at pass ℓ has s-level
    ℓ (its body contains a level ℓ−1 fact and nothing newer).

    Policies mirror the chase: [Oblivious] (the paper's §2 semantics)
    fires every trigger once; [Restricted] dismisses triggers whose head
    is already witnessed at collection time.

    Observability: the run is bounded by an {!Obs.Budget.t} (facts,
    levels, wall clock) and cut {e gracefully} — the partial result is
    returned with [outcome = Partial _] instead of looping forever on a
    non-terminating program. Each pass is recorded as a [level] span
    (triggers fired/dismissed, new facts) under [?obs] when given;
    low-level counters ([index.*], [joiner.*]) accumulate in the index's
    metrics registry ({!Index.metrics}). *)

open Relational

type policy = Oblivious | Restricted

(** A TGD-shaped rule: non-empty head; head variables absent from the
    body are existential and receive fresh labelled nulls at firing. *)
type rule = { body : Atom.t list; head : Atom.t list }

type result = {
  index : Index.t;  (** the saturated store *)
  level_of : (Fact.t, int) Hashtbl.t;  (** s-level of every fact *)
  saturated : bool;  (** no unfired trigger remained *)
  max_level : int;
  outcome : Obs.Budget.outcome;  (** [Complete] iff no budget cut the run *)
  triggers_fired : int;
  triggers_dismissed : int;  (** [Restricted] head-already-satisfied *)
  facts_per_level : int list;  (** new facts at levels 1, 2, … *)
  span : Obs.Span.t;  (** the run's span (one [level] child per pass) *)
}

(** [run ?policy ?budget ?obs rules db] — saturate [db] under [rules]
    until no new trigger exists or the budget cuts the run (the
    overflowing level may be cut short, as in the naive chase). *)
val run :
  ?policy:policy ->
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  rule list ->
  Instance.t ->
  result
