lib/tgds/linearize.ml: Atom Chase ConstSet Fact Fmt Ground_closure Hashtbl Homomorphism Instance List Option Printf Queue Relational String Tgd Ucq VarMap VarSet
