(** Cores of conjunctive queries (§4).

    The core of a CQ [q] is a ⊆-minimal subquery equivalent to [q]. It is
    computed by repeatedly retracting: find an endomorphism of [D[q]] that
    fixes the answer tuple and whose image is a proper subset of the
    domain, restrict to the image, and repeat. Also provides the
    Dalmau–Kolaitis–Vardi test: [q ∈ CQ≡k] iff [core(q) ∈ CQ_k] ([20]). *)

open Term

(* One retraction step: an endomorphism of [D[q]] fixing the frozen answer
   with a strictly smaller image, if any. *)
let proper_endomorphism q =
  let db = Cq.canonical_db q in
  let init =
    List.fold_left
      (fun acc x -> VarMap.add x (Cq.freeze x) acc)
      VarMap.empty (Cq.answer q)
  in
  let nvars = VarSet.cardinal (Cq.vars q) in
  let exception Found of Homomorphism.binding in
  try
    Homomorphism.fold_homs ~init (Cq.atoms q) db
      (fun b () ->
        let image =
          VarMap.fold (fun _ c acc -> ConstSet.add c acc) b ConstSet.empty
        in
        if ConstSet.cardinal image < nvars then raise (Found b))
      ();
    None
  with Found b -> Some b

(* Apply a retraction [b] (variable -> frozen constant) to [q]: each
   variable is replaced by the variable its image freezes. *)
let apply_retraction q (b : Homomorphism.binding) =
  let subst =
    VarMap.fold
      (fun x c acc ->
        match Cq.unfreeze c with
        | Some y -> VarMap.add x (Var y) acc
        | None -> acc)
      b VarMap.empty
  in
  Cq.normalize (Cq.apply subst q)

(** [core q] — the core of [q], fixing answer variables. Unique up to
    isomorphism; this implementation returns a concrete retract. *)
let rec core q =
  match proper_endomorphism q with
  | None -> Cq.normalize q
  | Some b -> core (apply_retraction q b)

(** [is_core q] — [q] has no proper retraction. *)
let is_core q = Option.is_none (proper_endomorphism q)

(** [in_cqk_equiv k q] — membership in [CQ≡k]: is [q] equivalent to a CQ of
    treewidth ≤ k? Decided on the core ([20], discussion after Thm 4.1). *)
let in_cqk_equiv k q = Cq.in_cqk k (core q)

(** [semantic_treewidth q] — the treewidth of the core: the least [k] with
    [q ∈ CQ≡k] under the paper's liberal treewidth. *)
let semantic_treewidth q = Cq.treewidth (core q)

(** Core-based minimization of a UCQ: core every disjunct, drop subsumed
    disjuncts. *)
let minimize_ucq u =
  Containment.minimize_ucq (Ucq.map core u)
