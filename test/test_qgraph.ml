(* Tests for the graph substrate: graphs, tree decompositions, treewidth,
   minors. *)

open Qgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_graph_basics () =
  let g = Graph.of_edges [ (1, 2); (2, 3); (3, 1) ] in
  check_int "vertices" 3 (Graph.num_vertices g);
  check_int "edges" 3 (Graph.num_edges g);
  check "edge 1-2" true (Graph.mem_edge g 1 2);
  check "edge symmetric" true (Graph.mem_edge g 2 1);
  check "no edge 1-4" false (Graph.mem_edge g 1 4);
  check_int "degree" 2 (Graph.degree g 1)

let test_self_loop_ignored () =
  let g = Graph.of_edges [ (1, 1) ] in
  check_int "vertex kept" 1 (Graph.num_vertices g);
  check_int "no edge" 0 (Graph.num_edges g)

let test_components () =
  let g = Graph.of_edges [ (1, 2); (3, 4); (4, 5) ] in
  check_int "two components" 2 (List.length (Graph.components g));
  check "not connected" false (Graph.is_connected g);
  check "component of 3 has 3" true Graph.(ISet.mem 5 (component g 3))

let test_induced () =
  let g = Graph.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let sub = Graph.induced g (Graph.ISet.of_list [ 1; 2; 3 ]) in
  check_int "induced vertices" 3 (Graph.num_vertices sub);
  check_int "induced edges" 2 (Graph.num_edges sub)

let test_remove_vertex () =
  let g = Graph.of_edges [ (1, 2); (2, 3) ] in
  let g' = Graph.remove_vertex g 2 in
  check_int "vertices after removal" 2 (Graph.num_vertices g');
  check_int "edges after removal" 0 (Graph.num_edges g')

let test_grid_shape () =
  let g = Graph.grid 3 4 in
  check_int "3x4 grid vertices" 12 (Graph.num_vertices g);
  (* edges: 3*(4-1) horizontal per row? rows*cols: 3 rows of 3 + 4 cols of 2 *)
  check_int "3x4 grid edges" ((3 * 3) + (4 * 2)) (Graph.num_edges g);
  check "grid connected" true (Graph.is_connected g)

let test_clique_detection () =
  let g = Graph.of_edges [ (1, 2); (2, 3); (1, 3); (3, 4) ] in
  check "has 3-clique" true (Graph.has_clique g 3);
  check "no 4-clique" false (Graph.has_clique g 4);
  (match Graph.find_clique g 3 with
  | Some vs -> check_int "clique size" 3 (List.length vs)
  | None -> Alcotest.fail "expected a 3-clique");
  check "is_clique" true (Graph.is_clique g (Graph.ISet.of_list [ 1; 2; 3 ]));
  check "not clique" false (Graph.is_clique g (Graph.ISet.of_list [ 1; 2; 4 ]))

(* ------------------------------------------------------------------ *)
(* Treewidth                                                            *)
(* ------------------------------------------------------------------ *)

let test_treewidth_known_values () =
  check_int "path" 1 (Treewidth.treewidth (Graph.path 6));
  check_int "cycle" 2 (Treewidth.treewidth (Graph.cycle 6));
  check_int "K5" 4 (Treewidth.treewidth (Graph.complete 5));
  check_int "3x3 grid" 3 (Treewidth.treewidth (Graph.grid 3 3));
  check_int "2xN grid" 2 (Treewidth.treewidth (Graph.grid 2 5));
  check_int "single vertex" 0 (Treewidth.treewidth (Graph.add_vertex Graph.empty 7));
  check_int "empty graph" 0 (Treewidth.treewidth Graph.empty);
  check_int "edgeless" 0
    (Treewidth.treewidth (Graph.of_vertices_edges [ 1; 2; 3 ] []))

let test_treewidth_disconnected () =
  (* max over components: a triangle plus an isolated path *)
  let g = Graph.of_edges [ (1, 2); (2, 3); (1, 3); (10, 11); (11, 12) ] in
  check_int "triangle + path" 2 (Treewidth.treewidth g)

let test_lower_upper_bracket () =
  let g = Graph.grid 4 4 in
  let lb = Treewidth.lower_bound g in
  let ub, td = Treewidth.upper_bound g in
  check "lb <= 4" true (lb <= 4);
  check "ub >= 4" true (ub >= 4);
  check "witness verifies" true (Tree_decomposition.verify g td);
  check_int "witness width is ub" ub (Tree_decomposition.width td)

let test_exact_decomposition () =
  let g = Graph.grid 3 3 in
  let k, td = Treewidth.exact_decomposition g in
  check_int "3x3 exact" 3 k;
  check "exact witness verifies" true (Tree_decomposition.verify g td)

let test_exact_opt_total () =
  (* small graphs agree with [exact]; oversized ones return None instead
     of raising Too_large *)
  let g = Graph.grid 3 3 in
  (match Treewidth.exact_opt g with
  | Some k -> check_int "3x3 exact_opt" (Treewidth.exact g) k
  | None -> Alcotest.fail "exact_opt None on a small graph");
  (match Treewidth.exact_decomposition_opt g with
  | Some (k, td) ->
      check_int "3x3 exact_decomposition_opt width" 3 k;
      check "opt witness verifies" true (Tree_decomposition.verify g td)
  | None -> Alcotest.fail "exact_decomposition_opt None on a small graph");
  let big = Graph.grid 8 8 in
  check "64 vertices: exact_opt is None" true (Treewidth.exact_opt big = None);
  check "64 vertices: exact_decomposition_opt is None" true
    (Treewidth.exact_decomposition_opt big = None)

let test_at_most () =
  check "path at most 1" true (Treewidth.at_most (Graph.path 8) 1);
  check "grid not at most 2" false (Treewidth.at_most (Graph.grid 3 3) 2)

(* ------------------------------------------------------------------ *)
(* Tree decompositions                                                  *)
(* ------------------------------------------------------------------ *)

let test_td_verify_rejects_bad () =
  let g = Graph.of_edges [ (1, 2); (2, 3) ] in
  (* missing edge coverage *)
  let bad =
    Tree_decomposition.make
      (Graph.IMap.of_seq
         (List.to_seq
            [ (0, Graph.ISet.of_list [ 1; 2 ]); (1, Graph.ISet.of_list [ 3 ]) ]))
      [ (0, 1) ]
  in
  check "bad td rejected" false (Tree_decomposition.verify g bad);
  (* disconnected occurrence of vertex 2 *)
  let bad2 =
    Tree_decomposition.make
      (Graph.IMap.of_seq
         (List.to_seq
            [
              (0, Graph.ISet.of_list [ 1; 2 ]);
              (1, Graph.ISet.of_list [ 1 ]);
              (2, Graph.ISet.of_list [ 2; 3 ]);
            ]))
      [ (0, 1); (1, 2) ]
  in
  check "broken connectivity rejected" false (Tree_decomposition.verify g bad2)

let test_td_from_elimination () =
  let g = Graph.cycle 5 in
  let td = Tree_decomposition.of_elimination_order g [ 0; 1; 2; 3; 4 ] in
  check "cycle td verifies" true (Tree_decomposition.verify g td);
  check_int "cycle td width" 2 (Tree_decomposition.width td)

(* ------------------------------------------------------------------ *)
(* Minors                                                               *)
(* ------------------------------------------------------------------ *)

let test_minor_subgraph () =
  let h = Graph.grid 2 2 in
  let g = Graph.grid 4 4 in
  match Minor.find ~h ~g with
  | Some m ->
      check "verifies" true (Minor.verify ~h ~g m);
      let m' = Minor.extend_onto ~g m in
      check "onto after extension" true (Minor.is_onto ~g m');
      check "still verifies" true (Minor.verify ~h ~g m')
  | None -> Alcotest.fail "2x2 grid should embed in 4x4 grid"

let test_minor_contraction_needed () =
  (* C6 contains the triangle as a minor but not as a subgraph *)
  let h = Graph.complete 3 and g = Graph.cycle 6 in
  check "no triangle subgraph in C6" true
    (Minor.find_subgraph_embedding ~h ~g = None);
  match Minor.find ~h ~g with
  | Some m -> check "triangle minor of C6" true (Minor.verify ~h ~g m)
  | None -> Alcotest.fail "triangle should be a minor of C6"

let test_minor_absent () =
  (* K3 is not a minor of a path *)
  let h = Graph.complete 3 and g = Graph.path 6 in
  check "no K3 in path" true (Minor.find ~h ~g = None)

let test_grid_minor () =
  let g = Graph.grid 3 3 in
  match Minor.find_grid ~k:2 ~l:3 g with
  | Some m -> check "2x3 grid minor of 3x3" true (Minor.verify ~h:(Graph.grid 2 3) ~g m)
  | None -> Alcotest.fail "2x3 grid should be a minor of the 3x3 grid"

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 9 in
    let* edges =
      list_size (int_range 0 (n * 2)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (Graph.of_vertices_edges (List.init n Fun.id) edges))

let arb_graph = QCheck.make ~print:(Fmt.str "%a" Graph.pp) random_graph_gen

let prop_heuristic_td_valid =
  QCheck.Test.make ~name:"min-fill decomposition is always valid" ~count:100
    arb_graph (fun g ->
      let _, td = Treewidth.upper_bound g in
      Tree_decomposition.verify g td)

let prop_bounds_bracket_exact =
  QCheck.Test.make ~name:"lower ≤ exact ≤ upper" ~count:100 arb_graph (fun g ->
      let lb = Treewidth.lower_bound g in
      let ub, _ = Treewidth.upper_bound g in
      let k = Treewidth.treewidth g in
      lb <= k && k <= ub)

let prop_induced_monotone =
  QCheck.Test.make ~name:"treewidth monotone under induced subgraphs" ~count:60
    arb_graph (fun g ->
      match Graph.vertices g with
      | [] -> true
      | v :: _ ->
          let sub = Graph.induced g (Graph.ISet.remove v (Graph.vertex_set g)) in
          Treewidth.treewidth sub <= Treewidth.treewidth g)

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the vertex set" ~count:100
    arb_graph (fun g ->
      let comps = Graph.components g in
      let total = List.fold_left (fun acc c -> acc + Graph.ISet.cardinal c) 0 comps in
      total = Graph.num_vertices g)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heuristic_td_valid;
      prop_bounds_bracket_exact;
      prop_induced_monotone;
      prop_components_partition;
    ]

let () =
  Alcotest.run "qgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self loop" `Quick test_self_loop_ignored;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "grid" `Quick test_grid_shape;
          Alcotest.test_case "cliques" `Quick test_clique_detection;
        ] );
      ( "treewidth",
        [
          Alcotest.test_case "known values" `Quick test_treewidth_known_values;
          Alcotest.test_case "disconnected" `Quick test_treewidth_disconnected;
          Alcotest.test_case "bounds bracket" `Quick test_lower_upper_bracket;
          Alcotest.test_case "exact witness" `Quick test_exact_decomposition;
          Alcotest.test_case "exact_opt total" `Quick test_exact_opt_total;
          Alcotest.test_case "at_most" `Quick test_at_most;
        ] );
      ( "tree-decomposition",
        [
          Alcotest.test_case "verify rejects" `Quick test_td_verify_rejects_bad;
          Alcotest.test_case "elimination order" `Quick test_td_from_elimination;
        ] );
      ( "minor",
        [
          Alcotest.test_case "subgraph case" `Quick test_minor_subgraph;
          Alcotest.test_case "contraction case" `Quick test_minor_contraction_needed;
          Alcotest.test_case "absent" `Quick test_minor_absent;
          Alcotest.test_case "grid minor" `Quick test_grid_minor;
        ] );
      ("properties", qcheck_tests);
    ]
