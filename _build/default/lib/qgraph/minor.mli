(** Graph minors and minor maps (§6 / Appendix H): disjoint connected
    branch sets realizing every edge of the minor. *)

module ISet = Graph.ISet
module IMap = Graph.IMap

type map = ISet.t IMap.t
(** [H]-vertex ↦ branch set of [G]-vertices. *)

(** [verify ~h ~g m] — is [m] a minor map from [h] to [g]? *)
val verify : h:Graph.t -> g:Graph.t -> map -> bool

(** Do the branch sets cover all of [g]? *)
val is_onto : g:Graph.t -> map -> bool

(** Grow branch sets until they cover every vertex reachable from them
    (yields an onto map on connected hosts, as used in Appendix H). *)
val extend_onto : g:Graph.t -> map -> map

(** Subgraph-embedding search (singleton branch sets). *)
val find_subgraph_embedding : h:Graph.t -> g:Graph.t -> map option

(** [find ~h ~g] — bounded minor-map search: plain subgraph embedding,
    then embedding after contracting induced paths of [g]. [None] does not
    prove absence of the minor. *)
val find : h:Graph.t -> g:Graph.t -> map option

(** [find_grid ~k ~l g] — search a [k × l]-grid minor map. *)
val find_grid : k:int -> l:int -> Graph.t -> map option

val pp : Format.formatter -> map -> unit
