lib/core/unraveling.ml: ConstMap ConstSet Homomorphism Instance List Relational
