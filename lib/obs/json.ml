(** JSON values; see the interface. Serialisation is deterministic by
    construction: fields keep insertion order and floats use a fixed
    ["%.6f"] format (microsecond precision is plenty for durations). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || f = infinity || f = neg_infinity then
        (* no NaN/Inf in JSON; clamp deterministically *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf x)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent over the string)                          *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* BMP only; enough for the reports we emit *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  (* RFC 8259 number grammar: an optional minus, then [0] or a nonzero-led
     digit run, then an optional [. digits] fraction and an optional
     [e|E [+|-] digits] exponent — nothing else.
     OCaml's [int_of_string]/[float_of_string] are far more liberal (leading
     '+', interior signs, '0x', '5.', …), so the token is validated
     character by character before conversion; a sign or digit sequence in
     any other position is a parse error, never a silently-read value. *)
  let number () =
    let is_digit = function '0' .. '9' -> true | _ -> false in
    let start = !pos in
    let is_float = ref false in
    let digits1 () =
      match peek () with
      | Some c when is_digit c ->
          advance ();
          let rec go () =
            match peek () with
            | Some c when is_digit c -> advance (); go ()
            | _ -> ()
          in
          go ()
      | _ -> fail "bad number"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    (* integer part: 0, or a nonzero-led digit run (no leading zeros) *)
    (match peek () with
    | Some '0' -> advance ()
    | Some c when is_digit c -> digits1 ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
        is_float := true;
        advance ();
        digits1 ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits1 ()
    | _ -> ());
    (* a dangling sign or digit here is not part of any JSON token — reject
       now with a number error instead of "trailing garbage" later *)
    (match peek () with
    | Some ('0' .. '9' | '+' | '-' | '.' | 'e' | 'E') -> fail "bad number"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_lit ())
    | Some ('-' | '0' .. '9') -> number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  try
    let v = value () in
    let rec trailing () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          trailing ()
      | Some _ -> fail "trailing garbage"
      | None -> ()
    in
    trailing ();
    Ok v
  with
  | Bad msg -> Error msg
  | Failure _ -> Error "malformed input"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec map_floats f = function
  | Float x -> Float (f x)
  | List l -> List (List.map (map_floats f) l)
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, map_floats f v)) fields)
  | j -> j

let rec sort_keys = function
  | List l -> List (List.map sort_keys l)
  | Obj fields ->
      Obj
        (fields
        |> List.map (fun (k, v) -> (k, sort_keys v))
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  | j -> j
