(* From open to closed world: Proposition 5.8 run forwards.

   The paper reduces OMQ evaluation (open world) to CQS evaluation
   (closed world) for guarded TGDs: from D it builds D* = D⁺ ∪ ⋃ M(D⁺|ā,Σ,n)
   — the ground closure glued with finite witnesses over every maximal
   guarded set — which *satisfies* Σ, so the ontology can be forgotten and
   the query evaluated directly. This example walks through the pieces.

   Run with: dune exec examples/open_to_closed.exe *)

open Relational
open Guarded_core

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

let () =
  Fmt.pr "== Proposition 5.8: OMQ evaluation → CQS evaluation ==@.@.";
  let sigma = Workload.manager_ontology () in
  Fmt.pr "Σ (guarded, infinite chase):@.  %a@.@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    sigma;
  Fmt.pr "weakly acyclic: %b — the chase really is infinite here@.@."
    (Tgds.Termination.weakly_acyclic sigma);

  let db = Instance.of_facts [ fact "Emp" [ "eve" ]; fact "Emp" [ "adam" ] ] in
  Fmt.pr "D = %a@.@." Instance.pp db;

  (* Step 1: the ground closure D⁺ — all certain ground atoms. *)
  let d_plus = Tgds.Ground_closure.d_plus sigma db in
  Fmt.pr "D⁺ (ground closure): %a@.@." Instance.pp d_plus;

  (* Step 2: finite witnesses over the maximal guarded sets, glued. *)
  let q =
    Ucq.of_cq
      (Cq.make [ atom "ReportsTo" [ v "x"; v "m" ]; atom "Managed" [ v "m" ] ])
  in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
  let d_star = Reductions.omq_to_cqs omq db in
  Fmt.pr "D* has %d facts and satisfies Σ: %b@.@." (Instance.size d_star)
    (Tgds.Tgd.satisfies_all d_star sigma);

  (* Step 3: open world on D = closed world on D*. *)
  let open_world = (Omq_eval.certain omq db []).Omq_eval.holds in
  let closed_world = Ucq.holds d_star q in
  Fmt.pr "q = ∃x,m (ReportsTo(x,m) ∧ Managed(m))@.";
  Fmt.pr "open-world certain answer over D:  %b@." open_world;
  Fmt.pr "closed-world evaluation over D*:   %b@.@." closed_world;

  (* The promise-breaking query: a self-report would be a spurious match
     if the finite witnesses closed their cycles too early. *)
  let loop = Ucq.of_cq (Cq.make [ atom "ReportsTo" [ v "x"; v "x" ] ]) in
  let omq_loop = Omq.full_data_schema ~ontology:sigma ~query:loop in
  Fmt.pr "self-report certain (open world): %b@."
    (Omq_eval.certain omq_loop db []).Omq_eval.holds;
  Fmt.pr "self-report on D* (closed world): %b@." (Ucq.holds d_star loop);
  Fmt.pr "@.done.@."
