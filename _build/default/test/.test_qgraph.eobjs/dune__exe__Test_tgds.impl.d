test/test_tgds.ml: Alcotest Atom Chase ConstSet Cq Fact Fmt Full_chase Ground_closure Instance Linear_rewrite Linearize List QCheck QCheck_alcotest Relational Term Tgd Tgds Ucq VarSet
