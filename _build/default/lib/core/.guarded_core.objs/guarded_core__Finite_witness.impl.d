lib/core/finite_witness.ml: Array Atom ConstSet Fact Hashtbl Homomorphism Instance List Printf Relational Tgds VarMap VarSet
