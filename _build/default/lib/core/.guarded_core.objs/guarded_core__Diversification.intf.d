lib/core/diversification.mli: Fact Instance Relational Term
