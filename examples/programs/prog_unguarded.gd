s(X,Y), s(Y,Z) -> t(X,Z).
s(a,b).
s(b,c).
q() :- t(X,Z).
