(** Reusable pool of worker domains; see the interface. One mailbox per
    spawned domain; shard 0 always runs on the calling domain, so a pool
    of size [n] spawns [n - 1] domains and [Parallel 1] costs nothing. *)

type task = unit -> unit

type mailbox = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable slot : task option;
  mutable busy : bool;
  mutable stop : bool;
}

type t = {
  size : int;
  boxes : mailbox array;  (* length [size - 1] *)
  domains : unit Domain.t array;
  mutable live : bool;
}

let worker box =
  let rec loop () =
    Mutex.lock box.lock;
    let rec await () =
      if box.stop then None
      else
        match box.slot with
        | Some t -> Some t
        | None ->
            Condition.wait box.cond box.lock;
            await ()
    in
    match await () with
    | None -> Mutex.unlock box.lock
    | Some task ->
        Mutex.unlock box.lock;
        task ();
        Mutex.lock box.lock;
        box.slot <- None;
        box.busy <- false;
        Condition.broadcast box.cond;
        Mutex.unlock box.lock;
        loop ()
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Shard.create: need at least one shard";
  let boxes =
    Array.init (n - 1) (fun _ ->
        {
          lock = Mutex.create ();
          cond = Condition.create ();
          slot = None;
          busy = false;
          stop = false;
        })
  in
  let domains =
    Array.map (fun box -> Domain.spawn (fun () -> worker box)) boxes
  in
  { size = n; boxes; domains; live = true }

let size t = t.size

let run t tasks =
  let k = Array.length tasks in
  if k > t.size then invalid_arg "Shard.run: more tasks than shards";
  if not t.live then invalid_arg "Shard.run: pool already shut down";
  (* tasks must not escape their exception on a worker domain; capture per
     slot and re-raise on the caller, lowest shard first, so failures are
     as deterministic as everything else *)
  let exns = Array.make (max k 1) None in
  let guard i task () = try task () with e -> exns.(i) <- Some e in
  for i = 1 to k - 1 do
    let box = t.boxes.(i - 1) in
    Mutex.lock box.lock;
    box.slot <- Some (guard i tasks.(i));
    box.busy <- true;
    Condition.broadcast box.cond;
    Mutex.unlock box.lock
  done;
  if k > 0 then guard 0 tasks.(0) ();
  for i = 1 to k - 1 do
    let box = t.boxes.(i - 1) in
    Mutex.lock box.lock;
    while box.busy do
      Condition.wait box.cond box.lock
    done;
    Mutex.unlock box.lock
  done;
  Array.iter (function Some e -> raise e | None -> ()) exns

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun box ->
        Mutex.lock box.lock;
        box.stop <- true;
        Condition.broadcast box.cond;
        Mutex.unlock box.lock)
      t.boxes;
    Array.iter Domain.join t.domains
  end
