(** Deterministic synthetic workload generators for the test and benchmark
    suites: query families of bounded and unbounded treewidth, databases
    matching them, random graphs for p-Clique, and TGD families from the
    paper's classes. *)

open Relational

(** Boolean path query of [n] edges over binary [pred] (treewidth 1). *)
val path_cq : ?pred:string -> int -> Cq.t

(** Boolean [n × m] grid query over [xpred]/[ypred] — the
    unbounded-treewidth family of §6 (treewidth [min n m]). *)
val grid_cq : ?xpred:string -> ?ypred:string -> int -> int -> Cq.t

(** Boolean [k]-clique query (treewidth [k − 1]). *)
val clique_cq : ?pred:string -> int -> Cq.t

(** Star query: a center joined to [n] leaves. *)
val star_cq : ?pred:string -> int -> Cq.t

(** Path database [E(a0,a1), …]. *)
val path_db : ?pred:string -> int -> Instance.t

(** [n × m] grid database matching {!grid_cq}. *)
val grid_db : ?xpred:string -> ?ypred:string -> int -> int -> Instance.t

(** Pseudo-random binary-relation database ([size] facts over [dom]
    constants, deterministic in [seed]). *)
val random_binary_db : ?pred:string -> dom:int -> size:int -> seed:int -> unit -> Instance.t

(** Erdős–Rényi-style random graph. *)
val random_graph : n:int -> p:float -> seed:int -> Qgraph.Graph.t

(** Random graph with a planted [k]-clique on the first [k] vertices. *)
val planted_clique : n:int -> k:int -> p:float -> seed:int -> Qgraph.Graph.t

(** Chain of inclusion dependencies [Rᵢ(x,y) → ∃z Rᵢ₊₁(y,z)]. *)
val linear_chain : depth:int -> Tgds.Tgd.t list

(** Guarded full family propagating markers along edges. *)
val guarded_full_chain : depth:int -> Tgds.Tgd.t list

(** The running university ontology (guarded, terminating chase on the
    shipped data). *)
val university_ontology : unit -> Tgds.Tgd.t list

(** Guarded ontology with an infinite chase (management chains). *)
val manager_ontology : unit -> Tgds.Tgd.t list

(** Referential-integrity constraints for the closed-world examples. *)
val referential_constraints : unit -> Tgds.Tgd.t list

(** LUBM-flavoured scalable academic workload: ontology (guarded) and
    database, sized by the number of universities. *)
val lubm :
  universities:int ->
  ?depts_per_univ:int ->
  ?profs_per_dept:int ->
  ?students_per_dept:int ->
  unit ->
  Tgds.Tgd.t list * Instance.t

(** Grid-query OMQ family (growing treewidth) over a fixed ontology. *)
val dichotomy_omq_family : ontology:Tgds.Tgd.t list -> int -> Omq.t

(** Path-query control family (treewidth 1) of comparable size. *)
val bounded_omq_family : ontology:Tgds.Tgd.t list -> int -> Omq.t
