(* Parallel-engine suite: the multicore engine's contract is that
   [`Parallel n] is byte-identical to [`Indexed] for every n — the same
   facts with the same null ids and s-levels, the same clean-boundary
   snapshots, the same counters and stats report (modulo the timing
   histograms) — while [`Naive] agrees up to null renaming. Plus unit
   tests for the shard pool, crash-under-parallel / resume-elsewhere,
   the supervisor's Parallel → Indexed → Naive ladder, and the
   domain-count-agnostic checkpoint encoding. Shared helpers live in
   Generators. *)

open Relational
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Generators.v
let atom = Generators.atom
let fact = Generators.fact
let tgd = Generators.tgd

(* ------------------------------------------------------------------ *)
(* Byte-identity with the indexed engine                                *)
(* ------------------------------------------------------------------ *)

(* The stats report is deterministic up to its timing tail; the parallel
   engine additionally records [parallel.*] histograms, so comparisons
   cut at the histograms key (which also drops the span). *)
let cut_at_histograms s =
  let marker = {|,"histograms":|} in
  let n = String.length s and m = String.length marker in
  let rec find i =
    if i + m > n then s
    else if String.sub s i m = marker then String.sub s 0 i
    else find (i + 1)
  in
  find 0

(* Everything observable about one budgeted run: the exact facts with
   their null ids and s-levels, and the stats report up to the timing
   tail. *)
let run_state ~engine ~policy sigma db =
  Term.reset_nulls ();
  let r =
    Chase.run ~engine ~policy ~budget:(Generators.resil_budget ()) sigma db
  in
  let stats =
    Obs.Json.to_string (Obs.Report.to_json (Chase.report ~name:"par" r))
  in
  ( List.sort Stdlib.compare (Generators.facts_levels r),
    Chase.saturated r,
    Chase.max_level r,
    cut_at_histograms stats )

(* Every clean-boundary checkpoint of one run, serialised; the engine
   field is the one legitimate difference, so it is normalised away. *)
let snapshot_trace ~engine ~policy sigma db =
  Generators.chase_snapshots ~engine ~policy sigma db
  |> List.map (fun s ->
         Obs.Json.to_string
           (Resil.Checkpoint.to_json { s with Chase.snap_engine = `Indexed }))

let gen_case =
  QCheck.Gen.(
    let* sigma = Generators.gen_sigma
    and* db = Generators.gen_db
    and* policy = Generators.gen_policy in
    return (sigma, db, policy))

let print_case (sigma, db, policy) =
  Fmt.str "%s policy=%s"
    (Generators.print_sigma_db (sigma, db))
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")

let arb_case = QCheck.make ~print:print_case gen_case

let prop_parallel_byte_identical =
  QCheck.Test.make
    ~name:"Parallel n ≡ Indexed byte-for-byte: facts, nulls, snapshots, stats"
    ~count:60 arb_case (fun (sigma, db, policy) ->
      let observe engine =
        ( run_state ~engine ~policy sigma db,
          snapshot_trace ~engine ~policy sigma db )
      in
      let base = observe `Indexed in
      List.for_all (fun n -> observe (`Parallel n) = base) [ 1; 2; 4 ])

let prop_parallel_naive_equiv =
  QCheck.Test.make ~name:"Parallel ≍ Naive up to null renaming" ~count:60
    arb_case (fun (sigma, db, policy) ->
      Term.reset_nulls ();
      let naive =
        Chase.run ~engine:`Naive ~policy ~budget:(Generators.resil_budget ())
          sigma db
      in
      Term.reset_nulls ();
      let par =
        Chase.run ~engine:(`Parallel 2) ~policy
          ~budget:(Generators.resil_budget ()) sigma db
      in
      Generators.results_equivalent naive par)

(* ------------------------------------------------------------------ *)
(* Crash under Parallel, resume anywhere                                *)
(* ------------------------------------------------------------------ *)

(* Σ = {A(x) → ∃y S(x,y); S(x,y) → A(y)}: non-terminating, cut by the
   level budget — a deterministic workload for the unit tests. *)
let unit_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
  ]

let unit_db = Instance.of_facts [ fact "A" [ "a" ] ]

(* Kill a parallel run mid-flight, keep its last clean checkpoint, and
   resume it under [resume_engine]: the result must be equivalent to the
   uninterrupted run. Exercises both directions of the checkpoint's
   engine-agnosticism. *)
let crash_and_resume ~crash_engine ~resume_engine () =
  Term.reset_nulls ();
  let full =
    Chase.run ~engine:crash_engine ~budget:(Generators.resil_budget ())
      unit_sigma unit_db
  in
  Term.reset_nulls ();
  let last = ref None in
  (match
     Resil.Fault.with_trigger
       (Some (Resil.Fault.At_point ("engine.pass", 3)))
       (fun () ->
         Chase.run ~engine:crash_engine ~budget:(Generators.resil_budget ())
           ~on_pass:(fun ~level:_ ~saturated:_ take -> last := Some (take ()))
           unit_sigma unit_db)
   with
  | _ -> Alcotest.fail "expected the injected fault to kill the run"
  | exception Resil.Fault.Injected _ -> ());
  let s =
    match !last with
    | Some s -> s
    | None -> Alcotest.fail "no clean boundary before the injected fault"
  in
  check "snapshot records the engine it was taken under" true
    (s.Chase.snap_engine = crash_engine);
  let r =
    Chase.resume ~engine:resume_engine ~budget:(Generators.resil_budget ())
      unit_sigma s
  in
  check
    (Fmt.str "crash under %s, resume under %s ≍ uninterrupted"
       (Generators.engine_to_string crash_engine)
       (Generators.engine_to_string resume_engine))
    true
    (Generators.results_equivalent full r)

let test_supervisor_ladder () =
  Term.reset_nulls ();
  let base =
    Chase.run ~engine:`Indexed ~budget:(Generators.resil_budget ()) unit_sigma
      unit_db
  in
  Term.reset_nulls ();
  (* one trigger per attempt: the parallel attempt dies at its first
     pass, the degraded indexed attempt dies the same way, and the naive
     engine (no engine.* probes) completes *)
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 1);
    ]
  in
  match
    Resil.Supervisor.run ~engine:(`Parallel 2)
      ~budget:(Generators.resil_budget ()) ~retries:0
      ~sleep:(fun _ -> ())
      ~fault_plan:plan unit_sigma unit_db
  with
  | Resil.Supervisor.Degraded (r, log) ->
      check_int "two failed attempts" 2 (List.length log);
      check "ladder walked Parallel → Indexed → Naive" true
        (List.map (fun a -> a.Resil.Supervisor.engine) log
        = [ `Parallel 2; `Indexed ]);
      check "degraded result ≍ uninterrupted" true
        (Generators.results_equivalent base r)
  | _ -> Alcotest.fail "expected Degraded"

(* ------------------------------------------------------------------ *)
(* Checkpoint encoding                                                  *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_domain_agnostic () =
  let trace n =
    Generators.chase_snapshots ~engine:(`Parallel n) ~policy:Chase.Oblivious
      unit_sigma unit_db
    |> List.map (fun s -> Obs.Json.to_string (Resil.Checkpoint.to_json s))
  in
  let t1 = trace 1 and t4 = trace 4 in
  check "checkpoints byte-identical across domain counts" true (t1 = t4);
  (* the engine family round-trips; the domain count is deliberately not
     state, so the loaded engine is parallel with the machine's count *)
  match
    Result.bind (Obs.Json.parse (List.hd t1)) Resil.Checkpoint.of_json
  with
  | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
  | Ok s -> (
      match s.Chase.snap_engine with
      | `Parallel n -> check "domain count ≥ 1" true (n >= 1)
      | _ -> Alcotest.fail "engine family lost in the round-trip")

(* ------------------------------------------------------------------ *)
(* Shard pool                                                           *)
(* ------------------------------------------------------------------ *)

let test_shard_pool () =
  let pool = Engine.Shard.create 4 in
  Fun.protect
    ~finally:(fun () -> Engine.Shard.shutdown pool)
    (fun () ->
      check_int "pool size" 4 (Engine.Shard.size pool);
      let results = Array.make 4 0 in
      Engine.Shard.run pool
        (Array.init 4 (fun i -> fun () -> results.(i) <- (i * i) + 1));
      Alcotest.(check (list int))
        "all shards ran" [ 1; 2; 5; 10 ] (Array.to_list results);
      (* the pool is reused across passes, and a step may use fewer
         tasks than shards *)
      Engine.Shard.run pool
        (Array.init 2 (fun i -> fun () -> results.(i) <- -results.(i)));
      Alcotest.(check (list int))
        "pool reused with fewer tasks" [ -1; -2; 5; 10 ]
        (Array.to_list results))

let test_shard_exceptions () =
  let pool = Engine.Shard.create 3 in
  Fun.protect
    ~finally:(fun () -> Engine.Shard.shutdown pool)
    (fun () ->
      (match
         Engine.Shard.run pool
           [| (fun () -> ()); (fun () -> failwith "boom"); (fun () -> ()) |]
       with
      | () -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure m ->
          check "worker exception re-raised on the caller" true (m = "boom"));
      (* a failed step must not poison the pool *)
      let ok = ref false in
      Engine.Shard.run pool [| (fun () -> ok := true) |];
      check "pool survives a failed step" true !ok)

let test_invalid_domain_counts () =
  check "Shard.create 0 rejected" true
    (match Engine.Shard.create 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "Saturate rejects Parallel 0" true
    (match
       Engine.Saturate.run ~engine:(Engine.Saturate.Parallel 0) []
         Instance.empty
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_parallel_byte_identical; prop_parallel_naive_equiv ]

let () =
  Alcotest.run "parallel"
    [
      ( "units",
        [
          Alcotest.test_case "crash parallel, resume indexed" `Quick
            (crash_and_resume ~crash_engine:(`Parallel 2)
               ~resume_engine:`Indexed);
          Alcotest.test_case "crash indexed, resume parallel" `Quick
            (crash_and_resume ~crash_engine:`Indexed
               ~resume_engine:(`Parallel 3));
          Alcotest.test_case "supervisor degradation ladder" `Quick
            test_supervisor_ladder;
          Alcotest.test_case "checkpoints are domain-count agnostic" `Quick
            test_checkpoint_domain_agnostic;
          Alcotest.test_case "shard pool fork-join" `Quick test_shard_pool;
          Alcotest.test_case "shard pool exception propagation" `Quick
            test_shard_exceptions;
          Alcotest.test_case "invalid domain counts rejected" `Quick
            test_invalid_domain_counts;
        ] );
      ("properties", qcheck_tests);
    ]
