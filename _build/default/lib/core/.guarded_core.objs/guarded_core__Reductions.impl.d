lib/core/reductions.ml: Array Atom ConstSet Cq Cq_core Cqs Finite_witness Grohe Homomorphism Instance List Omq Qgraph Relational Sigma_containment Tgds Ucq VarMap VarSet
