lib/tgds/termination.mli: Format Tgd
