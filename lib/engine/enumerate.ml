(** Streaming answer enumeration over {!Index} posting lists; see the
    interface for the algorithm and the budget/observability contract.

    The search runs end-to-end on interned ints: per disjunct the query
    compiles to a {!Index.catom} array plus a flat binding environment
    (variable slot -> cell id), the cross-disjunct seen-set keys on int
    tuples, and answers accumulate as id rows in a reusable arena.
    Materialization to [const list list] is a single deferred pass —
    callers that render or count straight from ids never pay it. The
    observable contract (answer sets, emission order under a budget,
    candidate/probe/joiner counters, span attributes) is bit-compatible
    with the previous [VarMap]-based implementation; the difference is
    that a request allocates O(query + answers) minor words instead of
    O(search tree). *)

open Relational
open Relational.Term

type result = {
  answers : const list list;
  outcome : Obs.Budget.outcome;
}

(* Raised to unwind the search when the budget cuts mid-enumeration; the
   accumulated prefix is kept. *)
exception Cut of Obs.Budget.violation

(* ------------------------------------------------------------------ *)
(* Evaluation context: per-consumer scratch, reusable across requests   *)
(* ------------------------------------------------------------------ *)

(* Universe constants unknown to the store's symbol table (possible for
   an input-database domain wider than the stored facts) get synthetic
   ids [cx_symsize + k] backed by [cx_extras] — the id space stays dense
   and every answer cell externs in O(1). *)
type ctx = {
  cx_idx : Index.t;
  cx_symsize : int;
  cx_umem : (int, unit) Hashtbl.t;  (* universe membership, by cell id *)
  cx_uni : int array;  (* universe ids in sorted-constant order, null-free *)
  cx_extras : const array;  (* consts behind ids >= cx_symsize *)
  cx_seen : (int array, unit) Hashtbl.t;  (* cleared per request *)
  mutable cx_rows : int array array;  (* answer arena, reused *)
  mutable cx_nrows : int;
}

let ctx ~universe idx =
  let st = Index.symtab idx in
  let symsize = Symtab.size st in
  let universe = ConstSet.filter (fun c -> not (is_null c)) universe in
  let umem = Hashtbl.create (max 16 (ConstSet.cardinal universe)) in
  let extras = ref [] and nextras = ref 0 in
  let uni = Array.make (max (ConstSet.cardinal universe) 1) 0 in
  let k = ref 0 in
  ConstSet.iter
    (fun c ->
      let id =
        let i = Symtab.find_int st c in
        if i >= 0 then i
        else begin
          let i = symsize + !nextras in
          incr nextras;
          extras := c :: !extras;
          i
        end
      in
      uni.(!k) <- id;
      incr k;
      Hashtbl.replace umem id ())
    universe;
  {
    cx_idx = idx;
    cx_symsize = symsize;
    cx_umem = umem;
    cx_uni = Array.sub uni 0 !k;
    cx_extras = Array.of_list (List.rev !extras);
    cx_seen = Hashtbl.create 64;
    cx_rows = Array.make 64 [||];
    cx_nrows = 0;
  }

let cx_const cx id =
  if id < cx.cx_symsize then Symtab.extern (Index.symtab cx.cx_idx) id
  else cx.cx_extras.(id - cx.cx_symsize)

let push_row cx row =
  let n = cx.cx_nrows in
  let cap = Array.length cx.cx_rows in
  if n = cap then begin
    let a = Array.make (2 * cap) [||] in
    Array.blit cx.cx_rows 0 a 0 cap;
    cx.cx_rows <- a
  end;
  cx.cx_rows.(n) <- row;
  cx.cx_nrows <- n + 1

(* ------------------------------------------------------------------ *)
(* Interned results                                                     *)
(* ------------------------------------------------------------------ *)

(* Rows are kept in emission order (the budget prefix is the first
   [icount] emitted); the canonical sorted view is computed lazily so
   [count] consumers never pay it. *)
type interned = {
  irows : int array array;
  ioutcome : Obs.Budget.outcome;
  iconst : int -> const;
  mutable isorted : int array array option;
}

let icount it = Array.length it.irows
let ioutcome it = it.ioutcome
let iconst it id = it.iconst id

(* Lexicographic on externed constants, shorter-prefix-first — exactly
   [Stdlib.compare] on the materialized [const list]s. *)
(* top-level recursion, not an inner [let rec]: the sort calls this
   O(n log n) times and an inner recursive closure would be allocated
   per comparison *)
let rec compare_cells iconst a b n i =
  if i = n then 0
  else
    let c = Stdlib.compare (iconst a.(i)) (iconst b.(i)) in
    if c <> 0 then c else compare_cells iconst a b n (i + 1)

let compare_rows iconst a b =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let c = compare_cells iconst a b n 0 in
  if c <> 0 then c else Int.compare la lb

let sorted_rows it =
  match it.isorted with
  | Some r -> r
  | None ->
      let r = Array.copy it.irows in
      Array.sort (compare_rows it.iconst) r;
      it.isorted <- Some r;
      r

let materialize it =
  {
    answers =
      Array.fold_right
        (fun row acc ->
          Array.fold_right (fun id t -> it.iconst id :: t) row [] :: acc)
        (sorted_rows it) [];
    outcome = it.ioutcome;
  }

(* Test/render constructor: an interned result over a local symbol
   assignment (first-seen ids). *)
let of_answers answers outcome =
  let tbl = Hashtbl.create 16 and syms = ref [] and n = ref 0 in
  let id c =
    match Hashtbl.find_opt tbl c with
    | Some i -> i
    | None ->
        let i = !n in
        incr n;
        Hashtbl.add tbl c i;
        syms := c :: !syms;
        i
  in
  let irows =
    Array.of_list (List.map (fun t -> Array.of_list (List.map id t)) answers)
  in
  let syms = Array.of_list (List.rev !syms) in
  { irows; ioutcome = outcome; iconst = (fun i -> syms.(i)); isorted = None }

(* ------------------------------------------------------------------ *)
(* The search                                                           *)
(* ------------------------------------------------------------------ *)

(* Shared mutable state of one [run_interned] call: the emitted-answer
   count the budget's fact axis meters, and the per-disjunct candidate
   counter. *)
type state = {
  mutable emitted : int;
  mutable candidates : int;
}

let check_budget budget st =
  match Obs.Budget.check budget ~facts:st.emitted ~level:0 with
  | Some v -> raise (Cut v)
  | None -> ()

(* One disjunct, compiled: atoms as a catom array walked with in-place
   rotation (the unselected suffix keeps its relative order, as the
   previous List.filteri removal did), bindings in [d_benv], the answer
   tuple staged in [d_key] ([d_slots.(j) < 0] marks an answer position
   whose variable occurs in no atom — it ranges over the universe). *)
type dis = {
  d_atoms : Index.catom array;
  d_benv : int array;
  d_slots : int array;
  d_key : int array;
  d_arity : int;
}

let compile cx (q : Cq.t) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let nslots = ref 0 in
  let slot x =
    match Hashtbl.find_opt tbl x with
    | Some s -> s
    | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.add tbl x s;
        s
  in
  let atoms =
    Array.of_list (List.map (Index.compile_atom cx.cx_idx ~slot) (Cq.atoms q))
  in
  let answer = Cq.answer q in
  let slots =
    Array.of_list
      (List.map
         (fun x -> match Hashtbl.find_opt tbl x with Some s -> s | None -> -1)
         answer)
  in
  let arity = Array.length slots in
  {
    d_atoms = atoms;
    d_benv = Array.make (max !nslots 1) (-1);
    d_slots = slots;
    d_key = Array.make arity 0;
    d_arity = arity;
  }

let enum_cq cx st budget (q : Cq.t) =
  let d = compile cx q in
  let idx = cx.cx_idx in
  let atoms = d.d_atoms and benv = d.d_benv and slots = d.d_slots in
  let n = Array.length atoms in
  let arity = d.d_arity in
  let on_candidate () = st.candidates <- st.candidates + 1 in
  let on_fail () = () in
  let emit () =
    if not (Hashtbl.mem cx.cx_seen d.d_key) then begin
      let key = Array.copy d.d_key in
      Hashtbl.add cx.cx_seen key ();
      push_row cx key;
      st.emitted <- st.emitted + 1;
      Obs.Probe.hit "engine.answer";
      check_budget budget st
    end
  in
  (* expand the answer positions whose variable is atom-free over the
     universe, in sorted-constant order, left to right *)
  let rec expand_free j =
    if j = arity then emit ()
    else if slots.(j) >= 0 then expand_free (j + 1)
    else begin
      let uni = cx.cx_uni in
      for k = 0 to Array.length uni - 1 do
        d.d_key.(j) <- uni.(k);
        expand_free (j + 1)
      done
    end
  in
  let unbound_answer () =
    let r = ref false in
    for j = 0 to arity - 1 do
      let s = slots.(j) in
      if s >= 0 && Array.unsafe_get benv s < 0 then r := true
    done;
    !r
  in
  let rec search lo =
    check_budget budget st;
    if unbound_answer () then begin
      (* expand the cheapest pending atom that still has an unbound
         variable; one exists — an unbound answer variable occurring in
         atoms always occurs in some pending atom (matched atoms bind
         their variables) *)
      let bi = ref (-1) and bc = ref 0 in
      for i = lo to n - 1 do
        let ca = atoms.(i) in
        if Index.catom_unbound ca ~benv then begin
          let c = Index.catom_count idx ca ~benv in
          if !bi < 0 || c < !bc then begin
            bi := i;
            bc := c
          end
        end
      done;
      assert (!bi >= 0);
      let sel = atoms.(!bi) in
      for j = !bi downto lo + 1 do
        atoms.(j) <- atoms.(j - 1)
      done;
      atoms.(lo) <- sel;
      ignore (Index.fold_catom idx sel ~benv ~on_candidate ~on_fail step (lo + 1));
      for j = lo to !bi - 1 do
        atoms.(j) <- atoms.(j + 1)
      done;
      atoms.(!bi) <- sel
    end
    else begin
      (* every atom-constrained answer variable is bound: the subtree
         below this node cannot change the answer tuple, so decide it
         here and prune *)
      let ok = ref true and free = ref false in
      for j = 0 to arity - 1 do
        let s = slots.(j) in
        if s < 0 then free := true
        else begin
          let cid = benv.(s) in
          d.d_key.(j) <- cid;
          if not (Hashtbl.mem cx.cx_umem cid) then ok := false
        end
      done;
      if !ok && ((not !free) || Array.length cx.cx_uni > 0) then begin
        let all_seen = (not !free) && Hashtbl.mem cx.cx_seen d.d_key in
        if not all_seen then begin
          (* the remaining atoms are purely existential: one witness is
             enough *)
          let holds = lo >= n || Joiner.exists_compiled idx atoms ~benv lo n in
          if holds then expand_free 0
        end
      end
    end
  and step lo =
    search lo;
    false
  in
  search 0

let with_child obs name f =
  match obs with
  | None -> f None
  | Some parent ->
      let sp = Obs.Span.enter parent name in
      Fun.protect ~finally:(fun () -> Obs.Span.exit sp) (fun () -> f (Some sp))

let run_interned ?budget ?obs cx disjuncts =
  let budget = Option.value budget ~default:Obs.Budget.unlimited in
  Hashtbl.clear cx.cx_seen;
  cx.cx_nrows <- 0;
  let st = { emitted = 0; candidates = 0 } in
  let outcome = ref Obs.Budget.Complete in
  (try
     List.iteri
       (fun i q ->
         with_child obs "disjunct" @@ fun sp ->
         let c0 = st.candidates and e0 = st.emitted in
         let finish () =
           match sp with
           | None -> ()
           | Some sp ->
               Obs.Span.set sp "disjunct" (Obs.Json.Int i);
               Obs.Span.set sp "candidates" (Obs.Json.Int (st.candidates - c0));
               Obs.Span.set sp "emitted" (Obs.Json.Int (st.emitted - e0))
         in
         (try enum_cq cx st budget q
          with Cut v ->
            finish ();
            (match sp with
            | Some sp ->
                Obs.Span.set sp "cut"
                  (Obs.Json.String (Fmt.str "%a" Obs.Budget.pp_violation v))
            | None -> ());
            raise (Cut v));
         finish ())
       disjuncts
   with Cut v -> outcome := Obs.Budget.Partial v);
  {
    irows = Array.sub cx.cx_rows 0 cx.cx_nrows;
    ioutcome = !outcome;
    iconst = cx_const cx;
    isorted = None;
  }

let ucq_interned ?budget ?obs cx u =
  run_interned ?budget ?obs cx (Ucq.disjuncts u)

(* ------------------------------------------------------------------ *)
(* Materializing API (unchanged shape)                                  *)
(* ------------------------------------------------------------------ *)

let run ?budget ?obs ~universe idx disjuncts =
  materialize (run_interned ?budget ?obs (ctx ~universe idx) disjuncts)

let cq ?budget ?obs ~universe idx q = run ?budget ?obs ~universe idx [ q ]
let ucq ?budget ?obs ~universe idx u = run ?budget ?obs ~universe idx (Ucq.disjuncts u)
