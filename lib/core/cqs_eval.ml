(** Closed-world CQS evaluation (§3.2).

    The evaluation problem receives a database *promised* to satisfy the
    constraints and evaluates the UCQ directly. The constraints still
    matter: they license semantic optimizations (§1, "constraint-aware
    query optimization"), implemented here as Σ-equivalent minimization of
    the query before evaluation — the executable content of the
    tractability direction (3) ⇒ (1) of Theorems 5.7/5.12: when the CQS is
    uniformly UCQk-equivalent, evaluating the equivalent low-treewidth
    query is polynomial.

    Direct evaluation indexes the database once ([Engine.Index]) and
    matches query atoms through the joiner's posting lists. *)

(** [eval s db c̄] — is [c̄ ∈ q(db)]? ([db] should satisfy the constraints;
    use {!Cqs.admissible} to check the promise.) *)
let eval (s : Cqs.t) db tuple =
  Engine.Joiner.entails_ucq (Engine.Index.of_instance db) (Cqs.query s) tuple

(** [eval_tw s db c̄] — same, through the bounded-treewidth evaluator of
    Proposition 2.1 (polynomial for [q ∈ UCQ_k]). *)
let eval_tw (s : Cqs.t) db tuple = Tw_eval.entails_ucq db (Cqs.query s) tuple

(** [optimize s] — replace the query by a Σ-equivalent minimized UCQ
    (sound: every certified simplification preserves the answers on all
    admissible databases). *)
let optimize (s : Cqs.t) =
  let q' = Sigma_containment.minimize_ucq (Cqs.constraints s) (Cqs.query s) in
  Cqs.make ~constraints:(Cqs.constraints s) ~query:q'

(** [eval_optimized s db c̄] — minimize under Σ, then evaluate with the
    treewidth-aware engine. *)
let eval_optimized (s : Cqs.t) db tuple = eval_tw (optimize s) db tuple

(** [answers s db] — all answers of the (possibly optimized) query, with
    the database indexed once for every disjunct. *)
let answers ?(optimize_first = false) (s : Cqs.t) db =
  let s = if optimize_first then optimize s else s in
  Engine.Joiner.answers_ucq (Engine.Index.of_instance db) (Cqs.query s)
