#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build,
# tests, bench smoke + regression gate, kill-and-resume, and the parallel
# engine's determinism contract.
# Run from the repository root:  sh ci/check.sh
# Environment:
#   BENCH_GATE=strict   make a >3x bench slowdown fatal (CI sets this;
#                       off by default so laptops never fail on noise)
set -eu

cd "$(dirname "$0")/.."
ROOT=$(pwd)

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck"
  shellcheck ci/*.sh
else
  echo "== skipping shellcheck (not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (stats JSON round-trip)"
# run from the scratch dir so the smoke artifact never lands in the repo
(cd "$TMP" && "$ROOT/_build/default/bench/main.exe" smoke)

echo "== bench gate (indexed engine vs BENCH_engine.json baselines)"
BENCH_GATE=${BENCH_GATE:-off} dune exec bench/main.exe -- gate

echo "== kill-and-resume (checkpointed chase survives an injected crash)"
CLI=_build/default/bin/guarded_cli.exe
PROG=examples/programs/prog_budget.gd
set -- --max-level 1000 --budget-facts 40
"$CLI" chase "$PROG" "$@" --stats "$TMP/base.json" > /dev/null
# kill attempt 1 mid-saturation, then attempt 2 (degraded to a fallback
# engine) at its first pass — before it can overwrite the checkpoint
set +e
"$CLI" chase "$PROG" "$@" --retries 0 \
  --fault-plan hit:60,point:chase.pass:1 --checkpoint "$TMP/ck.json" \
  > /dev/null 2>&1
killed=$?
set -e
[ "$killed" -eq 1 ] || { echo "expected exit 1 from the killed run, got $killed"; exit 1; }
[ -s "$TMP/ck.json" ] || { echo "no checkpoint emitted by the killed run"; exit 1; }
"$CLI" chase "$PROG" "$@" --resume "$TMP/ck.json" --stats "$TMP/resumed.json" > /dev/null
# the resumed report must agree with the uninterrupted one on everything
# before the histograms/span tail (those only cover the post-resume part)
sed -E 's/,"histograms":.*$//' "$TMP/base.json" > "$TMP/base.cut"
sed -E 's/,"histograms":.*$//' "$TMP/resumed.json" > "$TMP/resumed.cut"
diff "$TMP/base.cut" "$TMP/resumed.cut" \
  || { echo "resumed stats diverge from the uninterrupted run"; exit 1; }

echo "== answers smoke (streaming enumeration, both pipelines)"
"$CLI" answers examples/programs/prog_eval.gd --query who --stats "$TMP/answers.json" \
  | grep -q "(ada)" || { echo "answers: expected (ada) for prog_eval/who"; exit 1; }
grep -q '"name":"answers"' "$TMP/answers.json" \
  || { echo "answers: --stats report missing"; exit 1; }
"$CLI" answers examples/programs/prog_fpt.gd --query who --fpt > /dev/null \
  || { echo "answers: --fpt pipeline failed"; exit 1; }
# a budget-cut enumeration must stay exit 0 and say so
"$CLI" answers examples/programs/prog_eval.gd --query who --budget-facts 0 \
  | grep -q "partial" || { echo "answers: budget cut not reported"; exit 1; }

echo "== serve smoke (incremental maintenance applies a mutation log)"
"$CLI" serve examples/programs/university.gd \
  --log examples/programs/university.mut \
  --stats "$TMP/serve.json" > "$TMP/serve.out"
grep -q "serve: 5 mutations applied (2 inserts, 2 deletes, 1 no-ops)" \
  "$TMP/serve.out" || { echo "serve: unexpected mutation summary"; exit 1; }
if grep -q "faculty(ada)" "$TMP/serve.out"; then
  echo "serve: deleted subtree still present"; exit 1
fi
grep -q "teaches(turing," "$TMP/serve.out" \
  || { echo "serve: inserted professor's chain missing"; exit 1; }
# the maintenance counters must land in the stats report with the exact
# values this program + log produce (they are deterministic)
for counter in '"incr.inserts":2' '"incr.deletes":2' '"incr.noops":1' \
               '"incr.repaired":9' '"incr.overdeleted":11' \
               '"incr.rederived":2' '"incr.deleted":9' '"index.removes":11'; do
  grep -q "$counter" "$TMP/serve.json" \
    || { echo "serve: stats missing $counter"; exit 1; }
done

echo "== server load smoke (workers 1 vs 4, sorted transcripts identical)"
SERVER_LOAD_REQUESTS=${SERVER_LOAD_REQUESTS:-200} sh ci/server_load.sh

echo "== parallel determinism (--domains 1 vs --domains 4)"
sh ci/determinism.sh

echo "== crash recovery (WAL kill loop + torn-record truncation)"
sh ci/crash_recovery.sh

echo "== OK"
