(** Recursive-descent parser for the surface language.

    Statements (period-terminated): schema declarations [p/2.], TGDs
    [body -> head.] (implicit existentials; empty body as [true -> …]),
    ground facts, and query clauses [q(X) :- body.] (same-name clauses
    form a UCQ). Uppercase-initial identifiers are variables. *)

open Relational

type program = {
  schema : Schema.t;  (** declared plus inferred predicates *)
  tgds : Tgds.Tgd.t list;
  facts : Fact.t list;
  queries : (string * Ucq.t) list;  (** named UCQs, in declaration order *)
}

exception Error of string * int * int

(** Raises {!Error} / {!Lexer.Error} with positions on malformed input. *)
val parse : string -> program

val parse_file : string -> program

(** A base-fact mutation of a log file: [+fact.] adds, [-fact.]
    removes. *)
type mutation = Add of Fact.t | Del of Fact.t

(** [parse_mutations src] — a mutation log: a sequence of ground
    [+fact(...).] / [-fact(...).] statements in order ([%] comments as
    usual). Raises {!Error} / {!Lexer.Error} on malformed input. *)
val parse_mutations : string -> mutation list

val parse_mutations_file : string -> mutation list

(** Database of the program's facts. *)
val database : program -> Instance.t

(** Look up a named query. *)
val query : program -> string -> Ucq.t option
