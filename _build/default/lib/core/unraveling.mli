(** Guarded unraveling (Appendix D.1): level-bounded tree-shaped covers of
    a database from a guarded set, of treewidth ≤ ar(schema) − 1. *)

open Relational

type t = {
  instance : Instance.t;
  up : Term.const Term.ConstMap.t;
      (** copy ↦ original ([a↑]); identity on originals *)
}

val guarded : ?depth:int -> Instance.t -> Term.ConstSet.t -> t

(** The unraveling maps back to the original database via [up]. *)
val verify : Instance.t -> t -> bool
