(* lib/incr: incremental chase maintenance.

   The load-bearing property is differential: a maintained store
   subjected to a random interleaved insert/delete log must hold exactly
   the instance — facts *and* s-levels — that a fresh oblivious chase of
   the final base database produces, up to null renaming. The generator
   pool here is weakly acyclic (unlike [Generators.tgd_pool], whose
   A/S loop never terminates), so every store saturates without a level
   cut and maintenance is defined.

   Unit tests pin the corner cases the property could miss with small
   sample sizes: deleting a fact that stays derivable, a delete
   cascading through existential nulls, checkpoint canonicity, and the
   [Engine.Index.remove] primitive. *)

open Relational
module Tgd = Tgds.Tgd

let v = Term.var
let atom = Generators.atom
let fact = Generators.fact
let tgd body head = Tgd.make ~body ~head

(* ------------------------------------------------------------------ *)
(* A weakly-acyclic guarded pool (terminating oblivious chase)          *)
(* ------------------------------------------------------------------ *)

let wa_pool =
  [|
    (* existential *)
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    (* flip *)
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "T" [ v "y"; v "x" ] ];
    (* frontier projection *)
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "B" [ v "x" ] ];
    (* existential chain off B *)
    tgd [ atom "B" [ v "x" ] ] [ atom "U" [ v "x"; v "z" ] ];
    tgd [ atom "U" [ v "x"; v "z" ] ] [ atom "V" [ v "z" ] ];
    (* guarded join *)
    tgd [ atom "T" [ v "x"; v "y" ]; atom "S" [ v "y"; v "x" ] ] [ atom "B" [ v "y" ] ];
  |]

let gen_sigma =
  QCheck.Gen.(
    map
      (List.map (Array.get wa_pool))
      (list_size (int_range 1 5) (int_range 0 (Array.length wa_pool - 1))))

(* Base facts over A/B/S/T and the constants {a,b,c} — the same
   distribution mutations draw from, so logs revisit earlier facts. *)
let gen_base_fact =
  QCheck.Gen.(
    let gc = map (List.nth [ "a"; "b"; "c" ]) (int_range 0 2) in
    let* p = int_range 0 3 in
    match p with
    | 0 ->
        let* a = gc in
        return (fact "A" [ a ])
    | 1 ->
        let* a = gc in
        return (fact "B" [ a ])
    | 2 ->
        let* a = gc and* b = gc in
        return (fact "S" [ a; b ])
    | _ ->
        let* a = gc and* b = gc in
        return (fact "T" [ a; b ]))

let gen_db =
  QCheck.Gen.(map Instance.of_facts (list_size (int_range 1 5) gen_base_fact))

let gen_log =
  QCheck.Gen.(list_size (int_range 0 8) (pair bool gen_base_fact))

let print_case (sigma, db, ops) =
  Fmt.str "Σ=%a D=%a log=%a" (Fmt.list Tgd.pp) sigma Instance.pp db
    (Fmt.list (Fmt.pair Fmt.bool Fact.pp))
    ops

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(triple gen_sigma gen_db gen_log)

(* ------------------------------------------------------------------ *)
(* Differential properties                                              *)
(* ------------------------------------------------------------------ *)

let apply_log store ops =
  List.iter
    (fun (add, f) ->
      ignore (Incr.apply store (if add then Incr.Insert f else Incr.Delete f)))
    ops

let replay_base db ops =
  List.fold_left
    (fun b (add, f) ->
      if add then Instance.add_fact f b
      else Instance.diff b (Instance.of_facts [ f ]))
    db ops

let store_facts_levels store =
  (Incr.checkpoint store).Tgds.Chase.snap_facts

(* maintained store ≡ fresh chase of the replayed base, facts and
   s-levels both, modulo a bijection on null ids *)
let prop_differential (sigma, db, ops) =
  Term.reset_nulls ();
  let store = Incr.create sigma db in
  apply_log store ops;
  let final = replay_base db ops in
  Term.reset_nulls ();
  let fresh = Tgds.Chase.run ~policy:Tgds.Chase.Oblivious sigma final in
  Instance.equal (Incr.base store) final
  && Generators.equal_upto_nulls (store_facts_levels store)
       (Generators.facts_levels fresh)

(* the creation engine is invisible: parallel replay lands firings in
   the sequential order, so the maintained instances are byte-identical,
   null ids included *)
let prop_engine_parity (sigma, db, ops) =
  let run engine =
    Term.reset_nulls ();
    let store = Incr.create ~engine sigma db in
    apply_log store ops;
    Incr.instance store
  in
  Instance.equal (run `Indexed) (run (`Parallel 2))

(* a maintained checkpoint resumes as a no-op continuation holding the
   same instance *)
let prop_checkpoint (sigma, db, ops) =
  Term.reset_nulls ();
  let store = Incr.create sigma db in
  apply_log store ops;
  let snap = Incr.checkpoint store in
  let r = Tgds.Chase.resume sigma snap in
  Tgds.Chase.saturated r
  && Instance.equal (Tgds.Chase.instance r) (Incr.instance store)

(* the crash-recovery invariant behind the WAL: capture an exact image at
   any cut of the log, rebuild from it, replay the suffix — the result
   must equal the uninterrupted run *exactly* (facts with the same null
   ids in the same storage order, s-levels, ledger liveness, counters),
   not merely up to renaming. [Incr.image] equality covers storage order,
   levels, the live ledger, the null counter, and the metrics in one
   comparison; instance equality and per-fact support counts pin the
   observable side independently. *)
let prop_image_split (sigma, db, ops, cut) =
  Term.reset_nulls ();
  let full = Incr.create sigma db in
  apply_log full ops;
  let full_image = Incr.image full in
  Term.reset_nulls ();
  let k = cut mod (List.length ops + 1) in
  let prefix = List.filteri (fun i _ -> i < k) ops in
  let suffix = List.filteri (fun i _ -> i >= k) ops in
  let store = Incr.create sigma db in
  apply_log store prefix;
  let rebuilt = Incr.of_image sigma (Incr.image store) in
  apply_log rebuilt suffix;
  Incr.image rebuilt = full_image
  && Instance.equal (Incr.instance rebuilt) (Incr.instance full)
  && List.for_all
       (fun (f, _) -> Incr.support_count rebuilt f = Incr.support_count full f)
       full_image.Incr.im_facts

let arb_split_case =
  QCheck.make
    ~print:(fun (sigma, db, ops, cut) ->
      Fmt.str "%s cut=%d" (print_case (sigma, db, ops)) cut)
    QCheck.Gen.(quad gen_sigma gen_db gen_log (int_range 0 1000))

let qcheck ?(count = 200) name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb_case prop)

(* ------------------------------------------------------------------ *)
(* Corner units                                                         *)
(* ------------------------------------------------------------------ *)

(* deleting a fact that is also derived keeps it in the store (DRed
   phase 2 re-derives it) while removing it from the base *)
let test_delete_still_derivable () =
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "B" [ "a" ] ] in
  let store = Incr.create sigma db in
  let e = Incr.delete store (fact "B" [ "a" ]) in
  Alcotest.(check bool) "not a no-op" false e.Incr.e_noop;
  Alcotest.(check int) "nothing leaves the store" 0 e.Incr.e_deleted;
  Alcotest.(check bool)
    "B(a) still present" true
    (Instance.mem (fact "B" [ "a" ]) (Incr.instance store));
  Alcotest.(check int) "base shrank" 1 (Incr.base_size store);
  Alcotest.(check int) "store unchanged" 2 (Incr.size store)

(* a delete whose cascade runs through invented nulls: retracting the
   base fact must garbage-collect the whole existential subtree *)
let test_delete_null_cascade () =
  let sigma =
    [
      tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "B" [ v "y" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let store = Incr.create sigma db in
  Alcotest.(check int) "chased to 3 facts" 3 (Incr.size store);
  let e = Incr.delete store (fact "A" [ "a" ]) in
  Alcotest.(check int) "overdeleted the subtree" 3 e.Incr.e_overdeleted;
  Alcotest.(check int) "nothing re-derivable" 0 e.Incr.e_rederived;
  Alcotest.(check int) "all three gone" 3 e.Incr.e_deleted;
  Alcotest.(check int) "store empty" 0 (Incr.size store)

(* inserting a fact the chase already invented-around: the delta fixpoint
   only fires what the new fact newly enables *)
let test_insert_absorbed () =
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let store = Incr.create sigma db in
  let e = Incr.insert store (fact "B" [ "a" ]) in
  Alcotest.(check bool) "not a no-op (base grew)" false e.Incr.e_noop;
  Alcotest.(check int) "no new facts" 0 e.Incr.e_repaired;
  Alcotest.(check int) "base now 2" 2 (Incr.base_size store);
  let e2 = Incr.insert store (fact "B" [ "a" ]) in
  Alcotest.(check bool) "second time is a no-op" true e2.Incr.e_noop

(* the maintained checkpoint is canonical: identical levels to a fresh
   chase of the same final base, and [of_checkpoint] round-trips *)
let test_checkpoint_canonical () =
  let sigma =
    [
      tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "B" [ v "y" ] ];
    ]
  in
  Term.reset_nulls ();
  let store =
    Incr.create sigma (Instance.of_facts [ fact "A" [ "a" ]; fact "A" [ "b" ] ])
  in
  ignore (Incr.insert store (fact "A" [ "c" ]));
  ignore (Incr.delete store (fact "A" [ "a" ]));
  let snap = Incr.checkpoint store in
  Term.reset_nulls ();
  let fresh =
    Tgds.Chase.run ~policy:Tgds.Chase.Oblivious sigma
      (Instance.of_facts [ fact "A" [ "b" ]; fact "A" [ "c" ] ])
  in
  Alcotest.(check bool)
    "levels match a fresh chase" true
    (Generators.equal_upto_nulls snap.Tgds.Chase.snap_facts
       (Generators.facts_levels fresh));
  let store2 = Incr.of_checkpoint sigma snap in
  Alcotest.(check bool)
    "of_checkpoint rebuilds the store" true
    (Generators.equal_upto_nulls
       (store_facts_levels store2)
       snap.Tgds.Chase.snap_facts);
  let e = Incr.delete store2 (fact "A" [ "b" ]) in
  Alcotest.(check bool) "rebuilt store accepts mutations" false e.Incr.e_noop

(* the Index.remove primitive: membership, per-position buckets and the
   index.removes counter *)
let test_index_remove () =
  let idx = Engine.Index.create () in
  let f = fact "S" [ "a"; "b" ] in
  Alcotest.(check bool) "insert fresh" true (Engine.Index.insert f idx);
  Alcotest.(check bool) "remove present" true (Engine.Index.remove f idx);
  Alcotest.(check bool) "membership gone" false (Engine.Index.mem f idx);
  Alcotest.(check bool) "remove absent" false (Engine.Index.remove f idx);
  Alcotest.(check bool) "re-insert fresh again" true (Engine.Index.insert f idx);
  Alcotest.(check int)
    "index.removes counted once" 1
    (Obs.Metrics.count (Engine.Index.metrics idx) "index.removes")

(* unsaturated stores refuse mutations instead of repairing nonsense *)
let test_unsaturated_refused () =
  let sigma =
    [ tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] ]
  in
  let store =
    Incr.create ~max_level:2 sigma (Instance.of_facts [ fact "S" [ "a"; "b" ] ])
  in
  Alcotest.(check bool) "store unsaturated" false (Incr.saturated store);
  Alcotest.check_raises "insert refused"
    (Invalid_argument "Incr: store is not saturated") (fun () ->
      ignore (Incr.insert store (fact "S" [ "b"; "a" ])))

let () =
  Alcotest.run "incr"
    [
      ( "differential",
        [
          qcheck "maintained store = fresh chase of final base"
            prop_differential;
          qcheck ~count:100 "indexed and parallel creation agree"
            prop_engine_parity;
          qcheck ~count:100 "maintained checkpoint resumes as a no-op"
            prop_checkpoint;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:200
               ~name:"image at any cut + suffix replay = uninterrupted run"
               arb_split_case prop_image_split);
        ] );
      ( "corners",
        [
          Alcotest.test_case "delete of a still-derivable fact" `Quick
            test_delete_still_derivable;
          Alcotest.test_case "delete cascading through nulls" `Quick
            test_delete_null_cascade;
          Alcotest.test_case "insert absorbed by the chase" `Quick
            test_insert_absorbed;
          Alcotest.test_case "checkpoint is canonical" `Quick
            test_checkpoint_canonical;
          Alcotest.test_case "Index.remove round-trip" `Quick test_index_remove;
          Alcotest.test_case "unsaturated store refuses mutations" `Quick
            test_unsaturated_refused;
        ] );
    ]
