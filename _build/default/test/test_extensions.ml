(* Extended coverage: the Theorem D.1 rewriting pipeline, workload
   generators, chase universality (Proposition 2.2), homomorphism-ordering
   ablation, and randomized cross-validation of the guarded engines. *)

open Relational
open Relational.Term
open Guarded_core
module Tgd = Tgds.Tgd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

(* ------------------------------------------------------------------ *)
(* Guarded_rewrite: the Theorem D.1 composition                         *)
(* ------------------------------------------------------------------ *)

let test_guarded_rewrite_simple () =
  let sigma =
    [
      tgd [ atom "P" [ v "x" ] ] [ atom "R" [ v "x"; v "z" ] ];
      tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "Q" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "P" [ "a" ] ] in
  let verdict, exact = Guarded_rewrite.holds sigma db (bool_q [ atom "Q" [ v "x" ] ]) in
  check "Q certain via two-stage rewriting" true verdict;
  check "exact" true exact;
  let no, _ = Guarded_rewrite.holds sigma db (bool_q [ atom "Z" [ v "x" ] ]) in
  check "absent predicate" false no

let test_guarded_rewrite_agrees_with_chase () =
  let sigma = Workload.university_ontology () in
  let db = Instance.of_facts [ fact "Prof" [ "ada" ]; fact "Course" [ "ml" ] ] in
  let queries =
    [
      bool_q [ atom "Dept" [ v "d" ] ];
      bool_q [ atom "Teaches" [ v "x"; v "c" ]; atom "Course" [ v "c" ] ];
      bool_q [ atom "Mgr" [ v "m" ] ];
      bool_q [ atom "Faculty" [ v "x" ]; atom "Prof" [ v "x" ] ];
    ]
  in
  List.iter
    (fun q ->
      let via_chase, sat = Tgds.Chase.certain ~max_level:8 sigma db q [] in
      check "chase saturated" true sat;
      let via_rw, exact = Guarded_rewrite.holds sigma db q in
      check "rewriting exact" true exact;
      check "pipeline agrees with chase" true (via_chase = via_rw))
    queries

(* ------------------------------------------------------------------ *)
(* Workload generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_workload_queries () =
  check_int "path tw" 1 (Cq.treewidth (Workload.path_cq 5));
  check_int "grid 3x3 tw" 3 (Cq.treewidth (Workload.grid_cq 3 3));
  check_int "grid 2x4 tw" 2 (Cq.treewidth (Workload.grid_cq 2 4));
  check_int "clique-4 query tw" 3 (Cq.treewidth (Workload.clique_cq 4));
  check_int "star tw" 1 (Cq.treewidth (Workload.star_cq 4));
  check_int "path atoms" 5 (List.length (Cq.atoms (Workload.path_cq 5)));
  check_int "clique-4 atoms" 6 (List.length (Cq.atoms (Workload.clique_cq 4)))

let test_workload_dbs_match_queries () =
  check "grid query holds in its grid db" true
    (Cq.holds (Workload.grid_db 4 4) (Workload.grid_cq 4 4));
  check "bigger grid query does not" false
    (Cq.holds (Workload.grid_db 3 3) (Workload.grid_cq 4 4));
  check "path query in path db" true
    (Cq.holds (Workload.path_db 10) (Workload.path_cq 10));
  check "clique query in clique graph db" true
    (let db =
       Instance.of_facts
         (List.concat_map
            (fun i ->
              List.filter_map
                (fun j ->
                  if i <> j then
                    Some (fact "E" [ "v" ^ string_of_int i; "v" ^ string_of_int j ])
                  else None)
                [ 0; 1; 2 ])
            [ 0; 1; 2 ])
     in
     Cq.holds db (Workload.clique_cq 3))

let test_workload_graphs () =
  let g = Workload.planted_clique ~n:10 ~k:4 ~p:0.1 ~seed:1 in
  check "planted clique present" true (Qgraph.Graph.has_clique g 4);
  let g1 = Workload.random_graph ~n:10 ~p:0.3 ~seed:5 in
  let g2 = Workload.random_graph ~n:10 ~p:0.3 ~seed:5 in
  check "deterministic in seed" true
    (Qgraph.Graph.edges g1 = Qgraph.Graph.edges g2);
  let g3 = Workload.random_graph ~n:10 ~p:0.3 ~seed:6 in
  check "different seeds differ" true
    (Qgraph.Graph.edges g1 <> Qgraph.Graph.edges g3)

let test_workload_tgd_classes () =
  check "linear chain is linear" true (Tgd.all_linear (Workload.linear_chain ~depth:3));
  check "guarded full chain is guarded" true
    (Tgd.all_guarded (Workload.guarded_full_chain ~depth:3));
  check "guarded full chain is full" true
    (Tgd.all_full (Workload.guarded_full_chain ~depth:3));
  check "university guarded" true (Tgd.all_guarded (Workload.university_ontology ()));
  check "manager guarded" true (Tgd.all_guarded (Workload.manager_ontology ()));
  check "referential linear" true (Tgd.all_linear (Workload.referential_constraints ()))

(* ------------------------------------------------------------------ *)
(* Proposition 2.2: universality of the chase                           *)
(* ------------------------------------------------------------------ *)

let gen_guarded_sigma =
  QCheck.Gen.(
    let gen_tgd =
      let* b = int_range 0 4 in
      match b with
      | 0 -> return (tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ])
      | 1 -> return (tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ])
      | 2 ->
          return
            (tgd
               [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ]
               [ atom "B" [ v "x" ] ])
      | 3 -> return (tgd [ atom "B" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ])
      | _ -> return (tgd [ atom "S" [ v "x"; v "x" ] ] [ atom "B" [ v "x" ] ])
    in
    list_size (int_range 1 3) gen_tgd)

let gen_db =
  QCheck.Gen.(
    let consts = [ "a"; "b" ] in
    let gc = map (List.nth consts) (int_range 0 1) in
    let gen_fact =
      let* p = int_range 0 2 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc in
          return (fact "B" [ a ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 4) gen_fact))

let arb_sigma_db =
  QCheck.make
    ~print:(fun (s, db) ->
      Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db)
    QCheck.Gen.(pair gen_guarded_sigma gen_db)

let prop_chase_universal =
  QCheck.Test.make ~name:"chase maps into every model fixing dom(D) (Prop 2.2)"
    ~count:60 arb_sigma_db (fun (sigma, db) ->
      let r = Tgds.Chase.run ~max_level:6 ~max_facts:2000 sigma db in
      if not (Tgds.Chase.saturated r) then true
      else
        (* the finite witness is a model of D and Σ *)
        match Finite_witness.build ~n:2 sigma db with
        | m ->
            let fixed =
              ConstSet.fold
                (fun c acc -> ConstMap.add c c acc)
                (Instance.dom db) ConstMap.empty
            in
            Homomorphism.maps_to ~fixed (Tgds.Chase.instance r) m
        | exception Failure _ -> true)

let prop_ground_closure_is_chase_down =
  QCheck.Test.make
    ~name:"ground closure = ground part of the saturating chase" ~count:60
    arb_sigma_db (fun (sigma, db) ->
      let r = Tgds.Chase.run ~max_level:8 ~max_facts:4000 sigma db in
      if not (Tgds.Chase.saturated r) then
        Instance.subset (Tgds.Ground_closure.compute sigma db) (Tgds.Chase.instance r)
      else
        Instance.equal
          (Tgds.Ground_closure.compute sigma db)
          (Tgds.Chase.ground_part r))

let prop_witness_is_model =
  QCheck.Test.make ~name:"finite witness is always a finite model" ~count:40
    arb_sigma_db (fun (sigma, db) ->
      match Finite_witness.build ~n:2 sigma db with
      | m -> Finite_witness.verify sigma db m
      | exception Failure _ -> true)

let prop_linearize_agrees =
  QCheck.Test.make
    ~name:"linearization agrees with the chase on atomic queries" ~count:30
    arb_sigma_db (fun (sigma, db) ->
      let r = Tgds.Chase.run ~max_level:7 ~max_facts:3000 sigma db in
      if not (Tgds.Chase.saturated r) then true
      else
        let lin = Tgds.Linearize.make sigma db in
        List.for_all
          (fun q ->
            let direct = Ucq.holds (Tgds.Chase.instance r) q in
            let via, exact = Tgds.Linearize.certain ~max_level:10 lin q [] in
            (not exact) || direct = via)
          [
            bool_q [ atom "A" [ v "u" ] ];
            bool_q [ atom "B" [ v "u" ] ];
            bool_q [ atom "S" [ v "u"; v "w" ] ];
            bool_q [ atom "S" [ v "u"; v "w" ]; atom "B" [ v "u" ] ];
          ])

(* ------------------------------------------------------------------ *)
(* Ordering ablation: static vs dynamic atom selection                  *)
(* ------------------------------------------------------------------ *)

let test_ordering_ablation_same_answers () =
  let db = Workload.grid_db 4 4 in
  let q = Workload.grid_cq 3 3 in
  let dynamic = Homomorphism.exists (Cq.atoms q) db in
  let static =
    Option.is_some
      (try
         Homomorphism.fold_homs ~ordering:`Static (Cq.atoms q) db
           (fun b _ -> Some b)
           None
       with Not_found -> None)
  in
  check "static and dynamic agree" true (dynamic = static)

let prop_ordering_irrelevant_for_semantics =
  QCheck.Test.make ~name:"atom ordering does not change satisfiability"
    ~count:80
    (QCheck.make
       ~print:(fun (q, db) -> Fmt.str "%a over %a" Cq.pp q Instance.pp db)
       QCheck.Gen.(
         pair
           (let vars = [ "x"; "y"; "z" ] in
            let gv = map (List.nth vars) (int_range 0 2) in
            let gen_atom =
              let* a = gv and* b = gv in
              return (atom "S" [ v a; v b ])
            in
            map Cq.make (list_size (int_range 1 4) gen_atom))
           gen_db))
    (fun (q, db) ->
      let dyn = Homomorphism.exists (Cq.atoms q) db in
      let sta =
        Homomorphism.fold_homs ~ordering:`Static (Cq.atoms q) db
          (fun _ _ -> true)
          false
      in
      dyn = sta)

(* ------------------------------------------------------------------ *)
(* Schema module coverage                                               *)
(* ------------------------------------------------------------------ *)

let test_schema_ops () =
  let s1 = Schema.of_list [ ("a", 1); ("b", 2) ] in
  let s2 = Schema.of_list [ ("b", 2); ("c", 3) ] in
  check_int "union size" 3 (Schema.cardinal (Schema.union s1 s2));
  check_int "ar" 3 (Schema.ar (Schema.union s1 s2));
  check "subset" true (Schema.subset s1 (Schema.union s1 s2));
  check "not subset" false (Schema.subset s2 s1);
  check_int "diff" 1 (Schema.cardinal (Schema.diff s1 s2));
  check "arity conflict rejected" true
    (try
       ignore (Schema.union s1 (Schema.of_list [ ("a", 2) ]));
       false
     with Invalid_argument _ -> true);
  check "of_list conflict rejected" true
    (try
       ignore (Schema.of_list [ ("a", 1); ("a", 2) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tw_eval.answers ≡ Cq.answers                                         *)
(* ------------------------------------------------------------------ *)

let prop_tw_answers_agree =
  QCheck.Test.make ~name:"Tw_eval.answers = Cq.answers" ~count:60
    (QCheck.make
       ~print:(fun (db : Instance.t) -> Fmt.str "%a" Instance.pp db)
       gen_db)
    (fun db ->
      let q =
        Cq.make ~answer:[ "x" ] [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "y" ] ]
      in
      Tw_eval.answers db q = Cq.answers db q)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_chase_universal;
      prop_ground_closure_is_chase_down;
      prop_witness_is_model;
      prop_linearize_agrees;
      prop_ordering_irrelevant_for_semantics;
      prop_tw_answers_agree;
    ]

let () =
  Alcotest.run "extensions"
    [
      ( "guarded-rewrite",
        [
          Alcotest.test_case "simple" `Quick test_guarded_rewrite_simple;
          Alcotest.test_case "agrees with chase" `Quick test_guarded_rewrite_agrees_with_chase;
        ] );
      ( "workload",
        [
          Alcotest.test_case "query treewidths" `Quick test_workload_queries;
          Alcotest.test_case "dbs match queries" `Quick test_workload_dbs_match_queries;
          Alcotest.test_case "graphs" `Quick test_workload_graphs;
          Alcotest.test_case "tgd classes" `Quick test_workload_tgd_classes;
        ] );
      ( "ablation",
        [ Alcotest.test_case "orderings agree" `Quick test_ordering_ablation_same_answers ] );
      ("schema", [ Alcotest.test_case "operations" `Quick test_schema_ops ]);
      ("properties", qcheck_tests);
    ]
