(** Finite undirected graphs over integer vertices.

    The structure is a functional adjacency map; self loops are ignored on
    insertion (Gaifman graphs have none, §2 of the paper). *)

module ISet : Set.S with type elt = int
module IMap : Map.S with type key = int

type t

val empty : t

(** [add_vertex g v] ensures [v] is a vertex of [g]. *)
val add_vertex : t -> int -> t

(** [add_edge g u v] adds the undirected edge [{u,v}]; a self loop is a
    no-op beyond registering the vertex. *)
val add_edge : t -> int -> int -> t

val of_edges : (int * int) list -> t
val of_vertices_edges : int list -> (int * int) list -> t
val vertices : t -> int list
val vertex_set : t -> ISet.t
val num_vertices : t -> int
val mem_vertex : t -> int -> bool
val neighbors : t -> int -> ISet.t
val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool

(** Edges with [u < v], each listed once. *)
val edges : t -> (int * int) list

val num_edges : t -> int

(** [induced g vs] is the subgraph of [g] induced by the vertex set [vs]. *)
val induced : t -> ISet.t -> t

(** [remove_vertex g v] deletes [v] and all incident edges. *)
val remove_vertex : t -> int -> t

(** Connected component containing [v]. *)
val component : t -> int -> ISet.t

(** All connected components, as vertex sets. *)
val components : t -> ISet.t list

val is_connected : t -> bool

(** [is_clique g vs] holds iff every two distinct vertices of [vs] are
    adjacent in [g]. *)
val is_clique : t -> ISet.t -> bool

(** [grid k l] is the [k × l] grid of §6: an edge between cells at
    Manhattan distance one; the cell [(i,j)] (0-based) is vertex
    [i * l + j]. *)
val grid : int -> int -> t

(** Complete graph on vertices [0..n-1]. *)
val complete : int -> t

(** Simple path on vertices [0..n-1]. *)
val path : int -> t

(** Cycle on vertices [0..n-1] (n ≥ 3). *)
val cycle : int -> t

(** [has_clique g k] decides whether [g] contains a [k]-clique
    (backtracking; the ground truth for p-Clique tests). *)
val has_clique : t -> int -> bool

(** Find one [k]-clique if present. *)
val find_clique : t -> int -> int list option

val pp : Format.formatter -> t -> unit
