(** Homomorphism search: backtracking assignment of the variables of an
    atom list into the constants of an instance, the workhorse of the
    whole library. *)

type binding = Term.const Term.VarMap.t

(** Apply a binding to an atom (unbound variables stay). *)
val apply_binding : binding -> Atom.t -> Atom.t

(** [match_atom ~injective b a tuple] — extend [b] so that [a] becomes
    the fact with arguments [tuple], checking repeated variables and
    constants positionally; [None] when the atom does not match. Exposed
    for index-aware matchers (lib/engine). *)
val match_atom :
  injective:bool -> binding -> Atom.t -> Term.const list -> binding option

(** [fold_homs ?injective ?init ?ordering atoms inst f acc] — fold [f]
    over every homomorphism from [atoms] to [inst] extending [init].
    [injective] constrains the whole variable-to-constant map. [ordering]
    picks the atom-selection strategy: [`Dynamic] (default) most
    constrained first; [`Static] in the given order (ablations). *)
val fold_homs :
  ?injective:bool ->
  ?init:binding ->
  ?ordering:[ `Dynamic | `Static ] ->
  Atom.t list ->
  Instance.t ->
  (binding -> 'a -> 'a) ->
  'a ->
  'a

(** First homomorphism, if any. *)
val find : ?injective:bool -> ?init:binding -> Atom.t list -> Instance.t -> binding option

val exists : ?injective:bool -> ?init:binding -> Atom.t list -> Instance.t -> bool

(** All homomorphisms (exponentially many in general — small inputs
    only). *)
val all : ?injective:bool -> ?init:binding -> Atom.t list -> Instance.t -> binding list

(** [find_between ?injective ?fixed src dst] — a homomorphism
    [h : dom(src) → dom(dst)] with [R(h(t̄)) ∈ dst] for every
    [R(t̄) ∈ src]; [fixed] pre-assigns constants. *)
val find_between :
  ?injective:bool ->
  ?fixed:Term.const Term.ConstMap.t ->
  Instance.t ->
  Instance.t ->
  Term.const Term.ConstMap.t option

(** [maps_to src dst] — [src → dst] in the paper's notation. *)
val maps_to :
  ?injective:bool ->
  ?fixed:Term.const Term.ConstMap.t ->
  Instance.t ->
  Instance.t ->
  bool

(** All homomorphisms between instances. *)
val all_between :
  ?injective:bool ->
  ?fixed:Term.const Term.ConstMap.t ->
  Instance.t ->
  Instance.t ->
  Term.const Term.ConstMap.t list

(** [verify_between src dst h] — is [h] a (total) homomorphism from [src]
    to [dst]? *)
val verify_between : Instance.t -> Instance.t -> Term.const Term.ConstMap.t -> bool

(** Composition [g ∘ h] of constant maps (constants outside [g] map to
    themselves). *)
val compose :
  Term.const Term.ConstMap.t -> Term.const Term.ConstMap.t -> Term.const Term.ConstMap.t

val is_injective : Term.const Term.ConstMap.t -> bool
