(** Frozen saturated store; see the interface for the sharing contract. *)

open Relational.Term

type t = {
  idx : Index.t;  (* sealed: no mutating operation escapes this module *)
  saturated : bool;
  universe : ConstSet.t;
}

(* A view owns the per-worker scratch: the reader (private metrics
   registry) and the enumeration context (compiled universe, seen-set,
   answer arena) — so a served request reuses both across its worker's
   whole lifetime instead of rebuilding them per call. *)
type view = {
  snap : t;
  ridx : Index.t;  (* Index.reader of snap.idx *)
  cx : Enumerate.ctx;  (* bound to ridx: probes file to the view registry *)
}

let freeze ~saturated ~universe idx = { idx; saturated; universe }
let saturated s = s.saturated
let universe s = s.universe
let size s = Index.size s.idx
let symtab s = Index.symtab s.idx

let view s =
  let ridx = Index.reader s.idx in
  { snap = s; ridx; cx = Enumerate.ctx ~universe:s.universe ridx }

let view_metrics v = Index.metrics v.ridx

let ucq_i ?budget ?obs v q = Enumerate.ucq_interned ?budget ?obs v.cx q
let ucq ?budget ?obs v q = Enumerate.materialize (ucq_i ?budget ?obs v q)
