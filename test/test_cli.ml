(* Integration tests driving the built `guarded` CLI end to end: parse a
   program from disk, chase, evaluate open/closed world, classify, decide
   equivalence, run the clique reduction. *)

let check = Alcotest.(check bool)

let cli =
  (* tests run from _build/default/test; the binary is a declared dep *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/guarded_cli.exe"

let run_cli args =
  let out_file = Filename.temp_file "guarded_cli" ".out" in
  let err_file = Filename.temp_file "guarded_cli" ".err" in
  let cmd = Filename.quote_command cli args ~stdout:out_file ~stderr:err_file in
  let status = Sys.command cmd in
  let slurp path =
    if Sys.file_exists path then (
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)
    else ""
  in
  let out = slurp out_file and err = slurp err_file in
  Sys.remove out_file;
  Sys.remove err_file;
  (status, out, err)

(* programs are checked in; the directory is a declared source_tree dep *)
let prog name = Filename.concat "../examples/programs" name

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_eval () =
  let file = prog "prog_eval.gd" in
  let status, out, err = run_cli [ "eval"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check (Fmt.str "says true (out=%S err=%S)" out err) true (contains out "true");
  let _, out2, _ = run_cli [ "eval"; file; "-q"; "who" ] in
  check "ada is certain" true (contains out2 "ada")

let test_eval_fpt_flag () =
  let file = prog "prog_fpt.gd" in
  let status, out, _ = run_cli [ "eval"; file; "-q"; "q"; "--fpt" ] in
  check "exit 0" true (status = 0);
  check "fpt engine agrees" true (contains out "true")

let test_chase () =
  let file = prog "prog_chase.gd" in
  let status, out, _ = run_cli [ "chase"; file ] in
  check "exit 0" true (status = 0);
  check "saturated" true (contains out "saturated");
  check "derived course fact" true (contains out "course(");
  check "null printed" true (contains out "_:n")

let test_classify () =
  let file = prog "prog_cls.gd" in
  let status, out, _ = run_cli [ "classify"; file ] in
  check "exit 0" true (status = 0);
  check "linear" true (contains out "linear (L):           true");
  check "guarded" true (contains out "guarded (G):          true")

let test_cqs_eval_and_optimize () =
  let file = prog "prog_cqs.gd" in
  let status, out, _ = run_cli [ "cqs-eval"; file; "-q"; "q"; "--optimize" ] in
  check "exit 0" true (status = 0);
  check "answer o1" true (contains out "o1");
  check "optimized to single atom" true (contains out "optimized query")

let test_equiv () =
  let file = prog "prog_eq.gd" in
  let status, out, _ = run_cli [ "equiv"; file; "-q"; "q"; "-k"; "1" ] in
  check "exit 0" true (status = 0);
  check "holds" true (contains out "holds")

let test_rewrite () =
  let file = prog "prog_rw.gd" in
  let status, out, _ = run_cli [ "rewrite"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check "original disjunct" true (contains out "s(");
  check "rewritten disjunct" true (contains out "a(")

let test_clique () =
  let status, out, _ = run_cli [ "clique"; "-n"; "7"; "-k"; "3"; "--seed"; "2" ] in
  check "exit 0" true (status = 0);
  check "reports both verdicts" true (contains out "direct search")

let test_terminates () =
  let file = prog "prog_term.gd" in
  let status, out, _ = run_cli [ "terminates"; file ] in
  check "exit 0" true (status = 0);
  check "weakly acyclic" true (contains out "weakly acyclic:            true");
  check "edges printed" true (contains out "->")

let test_witness () =
  let file = prog "prog_wit.gd" in
  let status, out, _ = run_cli [ "witness"; file; "-n"; "2" ] in
  check "exit 0" true (status = 0);
  check "model verified" true (contains out "model: true")

let test_reduce () =
  let file = prog "prog_red.gd" in
  let status, out, _ = run_cli [ "reduce"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check "satisfies sigma" true (contains out "satisfies Σ: true")

let test_errors_reported () =
  let file = prog "prog_bad.gd" in
  let status, _, err = run_cli [ "eval"; file ] in
  check "non-zero exit" true (status <> 0);
  check "position in message" true (contains err "prog_bad.gd:1:");
  let status2, _, err2 = run_cli [ "eval"; prog "prog_eval.gd"; "-q"; "nope" ] in
  check "missing query reported" true (status2 <> 0 && contains err2 "no query named")

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "eval --fpt" `Quick test_eval_fpt_flag;
          Alcotest.test_case "chase" `Quick test_chase;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "cqs-eval --optimize" `Quick test_cqs_eval_and_optimize;
          Alcotest.test_case "equiv" `Quick test_equiv;
          Alcotest.test_case "rewrite" `Quick test_rewrite;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "terminates" `Quick test_terminates;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "errors" `Quick test_errors_reported;
        ] );
    ]
