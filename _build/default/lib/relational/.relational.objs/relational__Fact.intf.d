lib/relational/fact.mli: Atom Format Term
