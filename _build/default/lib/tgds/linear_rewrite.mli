(** UCQ rewriting for linear TGDs (Proposition D.2): piece-based backward
    chaining producing [q'] with [q(chase(D,Σ)) = q'(D)] for every
    database [D]. *)

open Relational

(** [rewrite ?max_queries sigma q] — the perfect rewriting; the boolean is
    false when the query budget was exhausted (result then sound but
    possibly incomplete). Raises [Invalid_argument] on non-linear TGDs. *)
val rewrite : ?max_queries:int -> Tgd.t list -> Ucq.t -> Ucq.t * bool

(** Certain answers via rewriting (no chase). *)
val answers :
  ?max_queries:int ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list list * bool

(** Rewriting-based certain membership. *)
val entails :
  ?max_queries:int ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool
