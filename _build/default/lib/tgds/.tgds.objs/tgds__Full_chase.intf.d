lib/tgds/full_chase.mli: Instance Relational Term Tgd Ucq
