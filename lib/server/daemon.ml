(** Concurrent serving loop; see the interface for the contract. *)

type config = {
  workers : int;
  max_facts : int option;
  max_ms : float option;
  fault_plan : Resil.Fault.plan;
}

type summary = {
  served : int;
  ok : int;
  partial : int;
  errors : int;
  quarantined : int;
  drained : bool;
  wall_s : float;
}

type counts = {
  mutable c_ok : int;
  mutable c_partial : int;
  mutable c_errors : int;
  mutable c_quarantined : int;
}

let run ?report ?(stop = ref false) cfg snap ic oc =
  if cfg.workers < 1 then invalid_arg "Daemon.run: workers must be >= 1";
  if cfg.fault_plan <> [] && cfg.workers > 1 then
    invalid_arg "Daemon.run: --fault-plan requires workers = 1";
  let t0 = Unix.gettimeofday () in
  (* raw-line queue: the main domain only reads and enqueues; workers
     parse as well as evaluate, so per-request work never serialises on
     the producer *)
  let q : (int * string) Queue.t = Queue.create () in
  let qm = Mutex.create () and qc = Condition.create () in
  let closed = ref false in
  let push r =
    Mutex.protect qm (fun () ->
        Queue.push r q;
        Condition.signal qc)
  in
  let close () =
    Mutex.protect qm (fun () ->
        closed := true;
        Condition.broadcast qc)
  in
  (* workers drain a small batch per lock acquisition: one item when
     the queue is short (interactive latency), up to [batch_max] under
     load, so the per-item hand-off cost amortises across the batch *)
  let batch_max = 32 in
  let pop_batch () =
    Mutex.protect qm (fun () ->
        let rec wait () =
          if not (Queue.is_empty q) then begin
            let n = min batch_max (Queue.length q) in
            let items = ref [] in
            for _ = 1 to n do
              items := Queue.pop q :: !items
            done;
            Some (List.rev !items)
          end
          else if !closed then None
          else begin
            Condition.wait qc qm;
            wait ()
          end
        in
        wait ())
  in
  (* output mutex also guards the reply counters: one lock per reply *)
  let om = Mutex.create () in
  let counts = { c_ok = 0; c_partial = 0; c_errors = 0; c_quarantined = 0 } in
  let emit_all replies =
    if replies <> [] then
      Mutex.protect om (fun () ->
          List.iter
            (fun (cls, line) ->
              (match cls with
              | `Ok -> counts.c_ok <- counts.c_ok + 1
              | `Partial -> counts.c_partial <- counts.c_partial + 1
              | `Error -> counts.c_errors <- counts.c_errors + 1
              | `Quarantined ->
                  counts.c_quarantined <- counts.c_quarantined + 1);
              output_string oc line;
              output_char oc '\n')
            replies;
          flush oc)
  in
  (* quarantine table: canonical query key -> first failure message *)
  let quarantine : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let quarantine_m = Mutex.create () in
  let saturated = Engine.Snapshot.saturated snap in
  let evaluate view metrics span (r : Protocol.request) =
    let poisoned =
      Mutex.protect quarantine_m (fun () -> Hashtbl.mem quarantine r.Protocol.key)
    in
    if poisoned then
      (`Quarantined, Protocol.render_quarantined ~id:r.Protocol.id)
    else
      let budget =
        match (cfg.max_facts, cfg.max_ms) with
        | None, None -> None
        | facts, ms -> Some (Obs.Budget.create ?max_facts:facts ?max_ms:ms ())
      in
      let t = Unix.gettimeofday () in
      match
        Obs.Span.timed span "request" (fun () ->
            Engine.Snapshot.ucq ?budget view r.Protocol.query)
      with
      | res ->
          Obs.Metrics.observe metrics "server.request_s"
            (Unix.gettimeofday () -. t);
          let cls =
            match res.Engine.Enumerate.outcome with
            | Obs.Budget.Complete when saturated -> `Ok
            | _ -> `Partial
          in
          (cls, Protocol.render_ok r ~saturated res)
      | exception e ->
          let msg =
            match e with
            | Resil.Fault.Injected (point, hit) ->
                Fmt.str "injected fault at %s (hit %d)" point hit
            | e -> Printexc.to_string e
          in
          Mutex.protect quarantine_m (fun () ->
              Hashtbl.replace quarantine r.Protocol.key msg);
          (`Error, Protocol.render_error ~id:r.Protocol.id msg)
  in
  (* per-worker views and (optional) spans, created on the main domain
     before spawning so the shared span tree is never mutated
     concurrently: worker i only ever touches its own subtree *)
  let views = Array.init cfg.workers (fun _ -> Engine.Snapshot.view snap) in
  let wspans =
    Array.init cfg.workers (fun i ->
        Option.map
          (fun rep ->
            Obs.Span.enter (Obs.Report.span rep) (Fmt.str "worker-%d" i))
          report)
  in
  let worker i () =
    let view = views.(i) in
    let metrics = Engine.Snapshot.view_metrics view in
    let rec loop () =
      match pop_batch () with
      | None -> ()
      | Some items ->
          emit_all
            (List.filter_map
               (fun (id, line) ->
                 match Protocol.parse_line ~id line with
                 | Protocol.Empty -> None
                 | Protocol.Malformed msg ->
                     Some (`Error, Protocol.render_error ~id msg)
                 | Protocol.Request r ->
                     Some (evaluate view metrics wspans.(i) r))
               items);
          loop ()
    in
    loop ()
  in
  let serve () =
    let domains = Array.init cfg.workers (fun i -> Domain.spawn (worker i)) in
    let lineno = ref 0 in
    (try
       while not !stop do
         let line = input_line ic in
         incr lineno;
         push (!lineno, line)
       done
     with End_of_file -> ());
    let drained = !stop in
    close ();
    Array.iter Domain.join domains;
    drained
  in
  let drained =
    if cfg.fault_plan = [] then serve ()
    else begin
      Resil.Fault.arm_seq cfg.fault_plan;
      Fun.protect ~finally:Resil.Fault.disarm serve
    end
  in
  Array.iter (fun s -> Option.iter Obs.Span.exit s) wspans;
  let wall_s = Unix.gettimeofday () -. t0 in
  (match report with
  | None -> ()
  | Some rep ->
      (* worker-order absorption keeps merged counters and histogram
         buckets identical for a given request set, any scheduling *)
      Array.iter
        (fun v ->
          Obs.Metrics.absorb ~into:(Obs.Report.metrics rep)
            (Engine.Snapshot.view_metrics v))
        views;
      let field k v = Obs.Report.add_field rep k (Obs.Json.Int v) in
      field "server.workers" cfg.workers;
      field "server.requests"
        (counts.c_ok + counts.c_partial + counts.c_errors
       + counts.c_quarantined);
      field "server.ok" counts.c_ok;
      field "server.partial" counts.c_partial;
      field "server.errors" counts.c_errors;
      field "server.quarantined" counts.c_quarantined;
      Obs.Report.add_rate_block rep ~prefix:"server"
        ~histogram:"server.request_s" ~wall_s);
  {
    served =
      counts.c_ok + counts.c_partial + counts.c_errors + counts.c_quarantined;
    ok = counts.c_ok;
    partial = counts.c_partial;
    errors = counts.c_errors;
    quarantined = counts.c_quarantined;
    drained;
    wall_s;
  }
