(* Tests for the TGD layer: classes, satisfaction, chase, ground closure,
   linearization, linear rewriting. *)

open Relational
open Relational.Term
open Tgds

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head

(* ------------------------------------------------------------------ *)
(* Classes                                                              *)
(* ------------------------------------------------------------------ *)

let test_classes () =
  (* guarded: body has an atom with all body variables *)
  let g = tgd [ atom "R" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "y" ] ] in
  check "guarded" true (Tgd.is_guarded g);
  check "frontier-guarded" true (Tgd.is_frontier_guarded g);
  check "not linear" false (Tgd.is_linear g);
  check "full" true (Tgd.is_full g);
  (* frontier-guarded but not guarded: x,y jointly unguarded, frontier {x} *)
  let fg =
    tgd [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] [ atom "A" [ v "x" ] ]
  in
  check "fg not guarded" false (Tgd.is_guarded fg);
  check "fg frontier-guarded" true (Tgd.is_frontier_guarded fg);
  (* not even frontier-guarded: frontier {x,z} in no single atom *)
  let nfg =
    tgd [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] [ atom "R" [ v "x"; v "z" ] ]
  in
  check "not fg" false (Tgd.is_frontier_guarded nfg);
  (* linear with existential *)
  let lin = tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] in
  check "linear" true (Tgd.is_linear lin);
  check "linear is guarded" true (Tgd.is_guarded lin);
  check "not full" false (Tgd.is_full lin);
  check "existential z" true (VarSet.mem "z" (Tgd.existential_vars lin));
  check "frontier x" true (VarSet.equal (Tgd.frontier lin) (VarSet.singleton "x"));
  check "fg_1" true (Tgd.is_fg 1 lin);
  check "head size" true (Tgd.head_size lin = 1)

let test_boolean_cq_as_fg_tgd () =
  (* §3.1: a Boolean CQ body with 0-ary head is trivially frontier-guarded
     (empty frontier) but not guarded *)
  let t =
    tgd [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] [ atom "Ans" [] ]
  in
  check "empty frontier" true (VarSet.is_empty (Tgd.frontier t));
  check "fg" true (Tgd.is_frontier_guarded t);
  check "not guarded" false (Tgd.is_guarded t)

let test_satisfaction () =
  let t = tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ] ] in
  let ok = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "A" [ "a" ] ] in
  let bad = Instance.of_facts [ fact "R" [ "a"; "b" ] ] in
  check "satisfied" true (Tgd.satisfies ok t);
  check "violated" false (Tgd.satisfies bad t);
  (* existential head *)
  let t2 = tgd [ atom "A" [ v "x" ] ] [ atom "R" [ v "x"; v "z" ] ] in
  check "existential satisfied" true
    (Tgd.satisfies (Instance.of_facts [ fact "A" [ "a" ]; fact "R" [ "a"; "c" ] ]) t2);
  check "existential violated" false
    (Tgd.satisfies (Instance.of_facts [ fact "A" [ "a" ] ]) t2)

(* ------------------------------------------------------------------ *)
(* Chase                                                                *)
(* ------------------------------------------------------------------ *)

let test_chase_terminating () =
  let sigma =
    [
      tgd [ atom "E" [ v "x"; v "y" ] ] [ atom "P" [ v "x" ] ];
      tgd [ atom "P" [ v "x" ] ] [ atom "Q" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "E" [ "a"; "b" ] ] in
  let r = Chase.run sigma db in
  check "saturates" true (Chase.saturated r);
  check "P derived" true (Instance.mem (fact "P" [ "a" ]) (Chase.instance r));
  check "Q derived" true (Instance.mem (fact "Q" [ "a" ]) (Chase.instance r));
  check "chase models sigma" true (Tgd.satisfies_all (Chase.instance r) sigma);
  (* levels: E level 0, P level 1, Q level 2 *)
  check "level P" true (Chase.level r (fact "P" [ "a" ]) = Some 1);
  check "level Q" true (Chase.level r (fact "Q" [ "a" ]) = Some 2);
  check "level E" true (Chase.level r (fact "E" [ "a"; "b" ]) = Some 0)

let test_chase_existentials_and_ground_part () =
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let r = Chase.run sigma db in
  check "saturates" true (Chase.saturated r);
  check_int "one null invented" 2 (Instance.size (Chase.instance r));
  check_int "ground part has only A" 1 (Instance.size (Chase.ground_part r));
  check "S has a null" true
    (Instance.exists
       (fun f -> Fact.pred f = "S" && Fact.is_ground_of_nulls f)
       (Chase.instance r))

let test_chase_nonterminating_bounded () =
  (* S(x,y) → ∃z S(y,z): infinite chase *)
  let sigma = [ tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "S" [ "a"; "b" ] ] in
  let r = Chase.run ~max_level:4 sigma db in
  check "not saturated" false (Chase.saturated r);
  check_int "exactly 5 facts (path of length 5)" 5 (Instance.size (Chase.instance r));
  (* level-bounded slices grow by one atom per level here *)
  check_int "level ≤ 2 slice" 3 (Instance.size (Chase.up_to_level r 2))

let test_chase_oblivious_fires_satisfied_heads () =
  (* oblivious chase fires the trigger even though the head is satisfied:
     A(x) → ∃z S(x,z) on D = {A(a), S(a,b)} invents a fresh null anyway *)
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "a"; "b" ] ] in
  let r = Chase.run sigma db in
  check_int "three facts" 3 (Instance.size (Chase.instance r))

let test_chase_multi_head_shares_nulls () =
  let sigma =
    [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ]; atom "T" [ v "z" ] ] ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let r = Chase.run sigma db in
  let s_null =
    Instance.fold
      (fun f acc -> if Fact.pred f = "S" then List.nth (Fact.args f) 1 :: acc else acc)
      (Chase.instance r) []
  in
  let t_arg =
    Instance.fold
      (fun f acc -> if Fact.pred f = "T" then List.hd (Fact.args f) :: acc else acc)
      (Chase.instance r) []
  in
  check "same null shared" true
    (match (s_null, t_arg) with
    | [ n1 ], [ n2 ] -> equal_const n1 n2 && is_null n1
    | _ -> false)

let test_chase_empty_body () =
  let sigma = [ tgd [] [ atom "U" [ v "z" ] ] ] in
  let r = Chase.run sigma Instance.empty in
  check "fact created from empty body" true
    (Instance.exists (fun f -> Fact.pred f = "U") (Chase.instance r))

(* ------------------------------------------------------------------ *)
(* Full chase                                                           *)
(* ------------------------------------------------------------------ *)

let test_full_chase () =
  let sigma =
    [
      tgd [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] [ atom "E" [ v "x"; v "z" ] ];
    ]
  in
  let db =
    Instance.of_facts [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ]; fact "E" [ "c"; "d" ] ]
  in
  let sat = Full_chase.saturate sigma db in
  check "transitive closure" true (Instance.mem (fact "E" [ "a"; "d" ]) sat);
  check_int "6 edges" 6 (Instance.size sat);
  check "models" true (Tgd.satisfies_all sat sigma);
  check "agrees with generic chase" true
    (Instance.equal sat (Chase.instance (Chase.run sigma db)));
  check "rejects non-full" true
    (try
       ignore
         (Full_chase.saturate [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ] ] db);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Ground closure                                                       *)
(* ------------------------------------------------------------------ *)

let test_ground_closure_terminating () =
  let sigma =
    [
      tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ] ];
      tgd [ atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "R" [ "a"; "b" ] ] in
  let gc = Ground_closure.compute sigma db in
  let expected = Chase.ground_part (Chase.run sigma db) in
  check "matches chase ground part" true (Instance.equal gc expected)

let test_ground_closure_infinite_chase () =
  (* infinite chase, finite ground closure: facts about 'a' flow back from
     the first child bag only *)
  let sigma =
    [
      tgd [ atom "R" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "R" [ "a" ] ] in
  let gc = Ground_closure.compute sigma db in
  check "R kept" true (Instance.mem (fact "R" [ "a" ]) gc);
  check "A(a) derived" true (Instance.mem (fact "A" [ "a" ]) gc);
  check_int "nothing else" 2 (Instance.size gc)

let test_ground_closure_deep () =
  (* ground fact needs a grandchild derivation:
     R(x) → ∃z E(x,z); E(x,z) → ∃w F(x,z,w); F(x,z,w) → G(x) *)
  let sigma =
    [
      tgd [ atom "R" [ v "x" ] ] [ atom "E" [ v "x"; v "z" ] ];
      tgd [ atom "E" [ v "x"; v "z" ] ] [ atom "F" [ v "x"; v "z"; v "w" ] ];
      tgd [ atom "F" [ v "x"; v "z"; v "w" ] ] [ atom "G" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "R" [ "a" ] ] in
  let gc = Ground_closure.compute sigma db in
  check "G(a) found through two levels" true (Instance.mem (fact "G" [ "a" ]) gc);
  check_int "closure size" 2 (Instance.size gc)

let test_ground_closure_context_matters () =
  (* the child bag needs the root context over the frontier:
     A(x), C(x) both needed inside the subtree *)
  let sigma =
    [
      tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ];
      tgd [ atom "S" [ v "x"; v "y" ]; atom "C" [ v "x" ] ] [ atom "D" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "C" [ "a" ] ] in
  let gc = Ground_closure.compute sigma db in
  check "D(a) derived using context" true (Instance.mem (fact "D" [ "a" ]) gc);
  (* without C(a) it must not be derived *)
  let gc2 = Ground_closure.compute sigma (Instance.of_facts [ fact "A" [ "a" ] ]) in
  check "no D without C" false (Instance.mem (fact "D" [ "a" ]) gc2)

let test_ground_closure_context_added_late () =
  (* the context fact arrives only after another subtree reports back:
     A(x) → ∃z S(x,z);  S(x,y) → C(x);  S(x,y), C(x) → D(x) *)
  let sigma =
    [
      tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "C" [ v "x" ] ];
      tgd [ atom "S" [ v "x"; v "y" ]; atom "C" [ v "x" ] ] [ atom "D" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let gc = Ground_closure.compute sigma db in
  check "C(a)" true (Instance.mem (fact "C" [ "a" ]) gc);
  check "D(a) via re-chased subtree" true (Instance.mem (fact "D" [ "a" ]) gc)

let test_ground_closure_rejects_unguarded () =
  let sigma =
    [ tgd [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] [ atom "A" [ v "x" ] ] ]
  in
  check "unguarded rejected" true
    (try
       ignore (Ground_closure.compute sigma Instance.empty);
       false
     with Invalid_argument _ -> true)

let test_type_of () =
  let sigma =
    [ tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ] ] ]
  in
  let db = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "R" [ "b"; "c" ] ] in
  let ty = Ground_closure.type_of sigma db (ConstSet.of_list [ Named "a"; Named "b" ]) in
  check "guard in type" true (Instance.mem (fact "R" [ "a"; "b" ]) ty);
  check "A(a) in type" true (Instance.mem (fact "A" [ "a" ]) ty);
  check "R(b,c) outside" false (Instance.mem (fact "R" [ "b"; "c" ]) ty)

(* ------------------------------------------------------------------ *)
(* Linearization (Lemma A.3)                                            *)
(* ------------------------------------------------------------------ *)

let bool_q atoms = Ucq.of_cq (Cq.make atoms)

let test_linearize_simple () =
  let sigma =
    [
      tgd [ atom "P" [ v "x" ] ] [ atom "R" [ v "x"; v "z" ] ];
      tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "Q" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "P" [ "a" ] ] in
  let lin = Linearize.make sigma db in
  check "all rules linear" true (Tgd.all_linear lin.Linearize.sigma_star);
  check "exploration complete" true lin.Linearize.complete;
  let q = bool_q [ atom "Q" [ v "x" ] ] in
  let verdict, exact = Linearize.certain lin q [] in
  check "Q certain via linearization" true verdict;
  check "exact" true exact;
  let q2 = bool_q [ atom "Z" [ v "x" ] ] in
  check "absent predicate not certain" false (fst (Linearize.certain lin q2 []))

let test_linearize_matches_direct_chase () =
  (* guarded ontology with a terminating chase: compare against ground truth *)
  let sigma =
    [
      tgd [ atom "Emp" [ v "x" ] ] [ atom "WorksFor" [ v "x"; v "z" ] ];
      tgd [ atom "WorksFor" [ v "x"; v "y" ] ] [ atom "Dept" [ v "y" ] ];
      tgd [ atom "Dept" [ v "y" ] ] [ atom "HasHead" [ v "y"; v "w" ] ];
      tgd [ atom "HasHead" [ v "y"; v "w" ] ] [ atom "Mgr" [ v "w" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "Emp" [ "e1" ]; fact "Dept" [ "d0" ] ] in
  let queries =
    [
      bool_q [ atom "Mgr" [ v "m" ] ];
      bool_q [ atom "WorksFor" [ v "x"; v "y" ]; atom "HasHead" [ v "y"; v "w" ] ];
      bool_q [ atom "HasHead" [ v "y"; v "w" ]; atom "Mgr" [ v "w" ] ];
      bool_q [ atom "Emp" [ v "x" ]; atom "Mgr" [ v "x" ] ];
    ]
  in
  let lin = Linearize.make sigma db in
  List.iter
    (fun q ->
      let direct, sat = Chase.certain ~max_level:8 sigma db q [] in
      check "direct chase saturated" true sat;
      let via_lin, _ = Linearize.certain ~max_level:10 lin q [] in
      check "linearization agrees with chase" true (direct = via_lin))
    queries

(* ------------------------------------------------------------------ *)
(* Linear rewriting (Prop D.2)                                          *)
(* ------------------------------------------------------------------ *)

let test_rewrite_single_head () =
  (* A(x) → ∃y S(x,y); q() :- S(u,w) rewrites to include A(u) *)
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ] ] in
  let q = bool_q [ atom "S" [ v "u"; v "w" ] ] in
  let q', complete = Linear_rewrite.rewrite sigma q in
  check "complete" true complete;
  check_int "two disjuncts" 2 (List.length (Ucq.disjuncts q'));
  check "A-db entails" true (Ucq.holds (Instance.of_facts [ fact "A" [ "a" ] ]) q');
  check "S-db entails" true (Ucq.holds (Instance.of_facts [ fact "S" [ "a"; "b" ] ]) q');
  check "B-db does not" false (Ucq.holds (Instance.of_facts [ fact "B" [ "a" ] ]) q')

let test_rewrite_blocked_by_join () =
  (* A(x) → ∃y S(x,y): q() :- S(u,w), T(w) must NOT rewrite the S atom
     alone because w is shared with T outside the piece *)
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ] ] in
  let q = bool_q [ atom "S" [ v "u"; v "w" ]; atom "T" [ v "w" ] ] in
  let q', complete = Linear_rewrite.rewrite sigma q in
  check "complete" true complete;
  check_int "no rewriting applies" 1 (List.length (Ucq.disjuncts q'));
  check "A+T db does not entail" false
    (Ucq.holds (Instance.of_facts [ fact "A" [ "a" ]; fact "T" [ "b" ] ]) q')

let test_rewrite_multi_head_piece () =
  (* A(x) → ∃y (S(x,y) ∧ T(y)): the two-atom piece rewrites to A(u) *)
  let sigma =
    [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ]; atom "T" [ v "y" ] ] ]
  in
  let q = bool_q [ atom "S" [ v "u"; v "w" ]; atom "T" [ v "w" ] ] in
  let q', complete = Linear_rewrite.rewrite sigma q in
  check "complete" true complete;
  check "A-db entails via piece" true
    (Ucq.holds (Instance.of_facts [ fact "A" [ "a" ] ]) q')

let test_rewrite_chain () =
  (* two inclusion dependencies chain: C(x) → ∃y R(x,y); R(x,y) → P(x) is
     not linear-with-existential... use: B(x) → ∃y R(x,y); R(x,y) → ∃z S(y,z)
     q() :- S(u,w): rewrites through R then B *)
  let sigma =
    [
      tgd [ atom "B" [ v "x" ] ] [ atom "R" [ v "x"; v "y" ] ];
      tgd [ atom "R" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ];
    ]
  in
  let q = bool_q [ atom "S" [ v "u"; v "w" ] ] in
  let q', complete = Linear_rewrite.rewrite sigma q in
  check "complete" true complete;
  check "B-db entails" true (Ucq.holds (Instance.of_facts [ fact "B" [ "a" ] ]) q');
  check "R-db entails" true (Ucq.holds (Instance.of_facts [ fact "R" [ "a"; "b" ] ]) q');
  check "agrees with chase on B-db" true
    (fst (Chase.certain sigma (Instance.of_facts [ fact "B" [ "a" ] ]) q []))

let test_rewrite_answer_variables () =
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ] ] in
  let q = Ucq.of_cq (Cq.make ~answer:[ "u" ] [ atom "S" [ v "u"; v "w" ] ]) in
  let q', _ = Linear_rewrite.rewrite sigma q in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "b"; "c" ] ] in
  let ans = Ucq.answers db q' in
  check "both answers found" true
    (List.mem [ Named "a" ] ans && List.mem [ Named "b" ] ans);
  check_int "exactly two" 2 (List.length ans)

let test_rewrite_existential_cannot_touch_answer () =
  (* q(w) :- S(u,w): the existential y of the TGD unifies with answer w →
     rewriting must not apply *)
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ] ] in
  let q = Ucq.of_cq (Cq.make ~answer:[ "w" ] [ atom "S" [ v "u"; v "w" ] ]) in
  let q', _ = Linear_rewrite.rewrite sigma q in
  check_int "no rewriting" 1 (List.length (Ucq.disjuncts q'))

(* Property: rewriting agrees with the chase on random linear ontologies.
   The generators are shared with the other suites (see Generators). *)
let gen_linear_sigma = Generators.gen_linear_sigma
let gen_small_db = Generators.gen_small_db
let gen_small_q = Generators.gen_small_q

let prop_rewrite_agrees_with_chase =
  QCheck.Test.make ~name:"rewriting = chase on random linear instances"
    ~count:80
    (QCheck.make
       ~print:(fun (s, db, q) ->
         Fmt.str "Σ=%a D=%a q=%a" (Fmt.list Tgd.pp) s Instance.pp db Ucq.pp q)
       QCheck.Gen.(triple gen_linear_sigma gen_small_db gen_small_q))
    (fun (sigma, db, q) ->
      let by_chase, saturated = Chase.certain ~max_level:7 sigma db q [] in
      let by_rewrite, complete = Linear_rewrite.entails sigma db q [] in
      if complete && (saturated || by_rewrite = false || by_chase) then
        (* when the chase did not saturate, only check the direction that
           remains sound: rewriting answers must be chase answers *)
        if saturated then by_chase = by_rewrite
        else (not by_rewrite) || by_chase
      else true)

let prop_chase_models_sigma =
  QCheck.Test.make ~name:"saturated chase models Σ" ~count:80
    (QCheck.make
       ~print:(fun (s, db) -> Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db)
       QCheck.Gen.(pair gen_linear_sigma gen_small_db))
    (fun (sigma, db) ->
      let r = Chase.run ~max_level:7 ~max_facts:500 sigma db in
      (not (Chase.saturated r)) || Tgd.satisfies_all (Chase.instance r) sigma)

let prop_ground_closure_sound =
  QCheck.Test.make ~name:"ground closure ⊆ bounded chase ground part (soundness)"
    ~count:60
    (QCheck.make
       ~print:(fun (s, db) -> Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db)
       QCheck.Gen.(pair gen_linear_sigma gen_small_db))
    (fun (sigma, db) ->
      let gc = Ground_closure.compute sigma db in
      let r = Chase.run ~max_level:10 ~max_facts:2000 sigma db in
      (* soundness always; completeness exactly when the chase saturated *)
      let sound = Instance.subset gc (Chase.instance r) in
      let complete_when_saturated =
        (not (Chase.saturated r)) || Instance.equal gc (Chase.ground_part r)
      in
      sound && complete_when_saturated)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rewrite_agrees_with_chase; prop_chase_models_sigma; prop_ground_closure_sound ]

let () =
  Alcotest.run "tgds"
    [
      ( "classes",
        [
          Alcotest.test_case "recognition" `Quick test_classes;
          Alcotest.test_case "boolean CQ as FG TGD" `Quick test_boolean_cq_as_fg_tgd;
          Alcotest.test_case "satisfaction" `Quick test_satisfaction;
        ] );
      ( "chase",
        [
          Alcotest.test_case "terminating + levels" `Quick test_chase_terminating;
          Alcotest.test_case "existentials/ground part" `Quick test_chase_existentials_and_ground_part;
          Alcotest.test_case "bounded nontermination" `Quick test_chase_nonterminating_bounded;
          Alcotest.test_case "oblivious semantics" `Quick test_chase_oblivious_fires_satisfied_heads;
          Alcotest.test_case "multi-head nulls" `Quick test_chase_multi_head_shares_nulls;
          Alcotest.test_case "empty body" `Quick test_chase_empty_body;
          Alcotest.test_case "full chase" `Quick test_full_chase;
        ] );
      ( "ground-closure",
        [
          Alcotest.test_case "terminating" `Quick test_ground_closure_terminating;
          Alcotest.test_case "infinite chase" `Quick test_ground_closure_infinite_chase;
          Alcotest.test_case "deep derivation" `Quick test_ground_closure_deep;
          Alcotest.test_case "context" `Quick test_ground_closure_context_matters;
          Alcotest.test_case "late context" `Quick test_ground_closure_context_added_late;
          Alcotest.test_case "rejects unguarded" `Quick test_ground_closure_rejects_unguarded;
          Alcotest.test_case "type_of" `Quick test_type_of;
        ] );
      ( "linearize",
        [
          Alcotest.test_case "simple" `Quick test_linearize_simple;
          Alcotest.test_case "matches chase" `Quick test_linearize_matches_direct_chase;
        ] );
      ( "linear-rewrite",
        [
          Alcotest.test_case "single head" `Quick test_rewrite_single_head;
          Alcotest.test_case "blocked by join" `Quick test_rewrite_blocked_by_join;
          Alcotest.test_case "multi-head piece" `Quick test_rewrite_multi_head_piece;
          Alcotest.test_case "chain" `Quick test_rewrite_chain;
          Alcotest.test_case "answer variables" `Quick test_rewrite_answer_variables;
          Alcotest.test_case "existential vs answer" `Quick test_rewrite_existential_cannot_touch_answer;
        ] );
      ("properties", qcheck_tests);
    ]
