#!/bin/sh
# Parallel-engine determinism check: for every example program, a chase
# under `--engine parallel` must produce byte-identical exit code, stdout,
# checkpoint, and stats (up to the timing tail) for --domains 1 vs
# --domains 4 — and match the sequential indexed engine on everything but
# the checkpoint's engine field (which names the engine family by design).
# Run from the repository root:  sh ci/determinism.sh
set -eu

cd "$(dirname "$0")/.."

CLI=_build/default/bin/guarded_cli.exe
[ -x "$CLI" ] || { echo "determinism: build first (dune build)"; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# run <tag> <program> <engine flags...> — capture every observable output
run() {
  tag=$1
  file=$2
  shift 2
  set +e
  "$CLI" chase "$file" --max-level 4 --budget-facts 200 "$@" \
    --checkpoint "$TMP/$tag.ck" --stats "$TMP/$tag.stats" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
  # programs that fail to parse produce neither artifact; normalise so
  # the byte comparison still applies (empty vs empty)
  if [ -f "$TMP/$tag.stats" ]; then
    sed -E 's/,"histograms":.*$//' "$TMP/$tag.stats" > "$TMP/$tag.cut"
  else
    : > "$TMP/$tag.cut"
  fi
  [ -f "$TMP/$tag.ck" ] || : > "$TMP/$tag.ck"
}

compared=0
for prog in examples/programs/*.gd; do
  base=$(basename "$prog" .gd)
  run "$base.d1" "$prog" --engine parallel --domains 1
  run "$base.d4" "$prog" --engine parallel --domains 4
  run "$base.seq" "$prog" --engine indexed
  for aspect in code out ck cut; do
    cmp -s "$TMP/$base.d1.$aspect" "$TMP/$base.d4.$aspect" || {
      echo "determinism: $base: $aspect differs between --domains 1 and --domains 4"
      exit 1
    }
  done
  for aspect in code out cut; do
    cmp -s "$TMP/$base.d1.$aspect" "$TMP/$base.seq.$aspect" || {
      echo "determinism: $base: $aspect differs between parallel and indexed"
      exit 1
    }
  done
  if [ "$(cat "$TMP/$base.d1.code")" = 0 ]; then
    compared=$((compared + 1))
  fi
done

# a sanity floor: the check is vacuous if nothing chased cleanly
[ "$compared" -ge 5 ] || {
  echo "determinism: only $compared programs chased cleanly"
  exit 1
}
echo "determinism: OK ($compared programs byte-identical across engines)"

# Answer enumeration: the `answers` command prints a canonical sorted
# set, so stdout and exit code must be byte-identical across the
# parallel engine's domain counts and the sequential indexed engine.
run_answers() {
  tag=$1
  file=$2
  query=$3
  shift 3
  set +e
  "$CLI" answers "$file" --query "$query" --max-level 4 "$@" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
}

answers_ok=0
for spec in prog_eval:q prog_eval:who prog_fpt:who prog_cqs:q university:q; do
  prog=examples/programs/${spec%%:*}.gd
  query=${spec##*:}
  [ -f "$prog" ] || continue
  base="answers.${spec%%:*}.$query"
  run_answers "$base.d1" "$prog" "$query" --engine parallel --domains 1
  run_answers "$base.d4" "$prog" "$query" --engine parallel --domains 4
  run_answers "$base.seq" "$prog" "$query" --engine indexed
  for pair in d1:d4 d1:seq; do
    a=${pair%%:*}
    b=${pair##*:}
    for aspect in code out; do
      cmp -s "$TMP/$base.$a.$aspect" "$TMP/$base.$b.$aspect" || {
        echo "determinism: $base: $aspect differs between $a and $b"
        exit 1
      }
    done
  done
  if [ "$(cat "$TMP/$base.d1.code")" = 0 ]; then
    answers_ok=$((answers_ok + 1))
  fi
done
[ "$answers_ok" -ge 3 ] || {
  echo "determinism: only $answers_ok answer runs completed cleanly"
  exit 1
}
echo "determinism: OK ($answers_ok answer sets byte-identical across engines)"

# Incremental maintenance: `serve` applies a mutation log to a maintained
# store. Stdout, stats (up to the timing tail) and the checkpoint must be
# byte-identical across the engine family and domain counts — including
# the checkpoint, because a maintained store always checkpoints as the
# indexed engine regardless of how the initial chase was executed.
run_serve() {
  tag=$1
  shift
  set +e
  "$CLI" serve examples/programs/university.gd \
    --log examples/programs/university.mut "$@" \
    --checkpoint "$TMP/$tag.ck" --stats "$TMP/$tag.stats" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
  if [ -f "$TMP/$tag.stats" ]; then
    sed -E 's/,"histograms":.*$//' "$TMP/$tag.stats" > "$TMP/$tag.cut"
  else
    : > "$TMP/$tag.cut"
  fi
  [ -f "$TMP/$tag.ck" ] || : > "$TMP/$tag.ck"
}

run_serve serve.d1 --engine parallel --domains 1
run_serve serve.d4 --engine parallel --domains 4
run_serve serve.seq --engine indexed
[ "$(cat "$TMP/serve.d1.code")" = 0 ] || {
  echo "determinism: serve failed (exit $(cat "$TMP/serve.d1.code"))"
  exit 1
}
for pair in d1:d4 d1:seq; do
  a=${pair%%:*}
  b=${pair##*:}
  for aspect in code out ck cut; do
    cmp -s "$TMP/serve.$a.$aspect" "$TMP/serve.$b.$aspect" || {
      echo "determinism: serve: $aspect differs between $a and $b"
      exit 1
    }
  done
done
echo "determinism: OK (serve byte-identical across engines and domains)"
