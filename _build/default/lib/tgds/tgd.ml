(** Tuple-generating dependencies (§2) and their syntactic classes.

    A TGD [∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))] is stored as its body and head atom
    lists; the frontier and the existential variables are derived. The
    classes of the paper are recognized syntactically:
    [L ⊆ G ⊆ FG ⊆ TGD], [FULL], and [FG_m]. *)

open Relational
open Relational.Term

type t = { body : Atom.t list; head : Atom.t list }

let make ~body ~head =
  if head = [] then invalid_arg "Tgd.make: a TGD head is non-empty";
  { body; head }

let body t = t.body
let head t = t.head
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let vars_of atoms =
  List.fold_left (fun acc a -> VarSet.union (Atom.vars a) acc) VarSet.empty atoms

let body_vars t = vars_of t.body
let head_vars t = vars_of t.head

(** The frontier [fr(σ)]: variables shared between body and head. *)
let frontier t = VarSet.inter (body_vars t) (head_vars t)

(** Existential variables: head variables not in the body. *)
let existential_vars t = VarSet.diff (head_vars t) (body_vars t)

(** Number of head atoms (the [m] of [FG_m]). *)
let head_size t = List.length t.head

(** Schema of all predicates occurring in the TGD. *)
let schema t =
  List.fold_left
    (fun s a -> Schema.add (Atom.pred a) (Atom.arity a) s)
    Schema.empty (t.body @ t.head)

let schema_of_set sigma =
  List.fold_left (fun s t -> Schema.union s (schema t)) Schema.empty sigma

(* ------------------------------------------------------------------ *)
(* Classes                                                              *)
(* ------------------------------------------------------------------ *)

(** [guard t] — an atom of the body containing all body variables, if any
    (§2, "Frontier-Guardedness"). An empty body is trivially guarded. *)
let guard t =
  let bv = body_vars t in
  List.find_opt (fun a -> VarSet.subset bv (Atom.vars a)) t.body

let is_guarded t = t.body = [] || Option.is_some (guard t)

(** [frontier_guard t] — an atom of the body containing all frontier
    variables, if any. *)
let frontier_guard t =
  let fr = frontier t in
  List.find_opt (fun a -> VarSet.subset fr (Atom.vars a)) t.body

let is_frontier_guarded t = t.body = [] || Option.is_some (frontier_guard t)

(** Linear: exactly one body atom (class [L], §3.1). *)
let is_linear t = List.length t.body = 1

(** Full: no existentially quantified variables (class [FULL], §6.1). *)
let is_full t = VarSet.is_empty (existential_vars t)

(** Membership in [FG_m]: frontier-guarded with at most [m] head atoms. *)
let is_fg m t = is_frontier_guarded t && head_size t <= m

let all_guarded sigma = List.for_all is_guarded sigma
let all_frontier_guarded sigma = List.for_all is_frontier_guarded sigma
let all_linear sigma = List.for_all is_linear sigma
let all_full sigma = List.for_all is_full sigma
let max_head_size sigma = List.fold_left (fun m t -> max m (head_size t)) 0 sigma

(* ------------------------------------------------------------------ *)
(* Satisfaction                                                         *)
(* ------------------------------------------------------------------ *)

(** [satisfies inst t] — [inst ⊨ σ]: every homomorphism of the body into
    [inst] extends, on the frontier, to a homomorphism of the head. *)
let satisfies inst t =
  let fr = frontier t in
  let holds_for b =
    let init = VarMap.filter (fun x _ -> VarSet.mem x fr) b in
    Homomorphism.exists ~init t.head inst
  in
  Homomorphism.fold_homs t.body inst (fun b acc -> acc && holds_for b) true

(** [satisfies_all inst sigma] — [inst ⊨ Σ]. *)
let satisfies_all inst sigma = List.for_all (satisfies inst) sigma

(* ------------------------------------------------------------------ *)
(* Normalization helpers                                                *)
(* ------------------------------------------------------------------ *)

(** Split a full TGD into single-head full TGDs with the same body (used in
    Theorem D.1's proof; only sound for full TGDs, checked). *)
let split_full t =
  if not (is_full t) then invalid_arg "Tgd.split_full: TGD is not full"
  else List.map (fun h -> { body = t.body; head = [ h ] }) t.head

(** Rename all variables with a suffix (for taking TGDs apart from a
    query's variables during rewriting). *)
let rename_apart ~suffix t =
  let subst =
    VarSet.fold
      (fun x acc -> VarMap.add x (Var (x ^ suffix)) acc)
      (VarSet.union (body_vars t) (head_vars t))
      VarMap.empty
  in
  {
    body = List.map (Atom.apply subst) t.body;
    head = List.map (Atom.apply subst) t.head;
  }

(** Body of the TGD as a Boolean CQ [q_φ] with the frontier as answers
    (used by Proposition 4.5-style checks). *)
let body_cq t =
  Cq.make ~answer:(VarSet.elements (frontier t)) t.body

let pp ppf t =
  let pp_atoms = Fmt.(list ~sep:(any ", ") Atom.pp) in
  let ex = VarSet.elements (existential_vars t) in
  if ex = [] then Fmt.pf ppf "%a -> %a" pp_atoms t.body pp_atoms t.head
  else
    Fmt.pf ppf "%a -> ∃%a %a" pp_atoms t.body
      Fmt.(list ~sep:(any ",") string)
      ex pp_atoms t.head
