(* Crash-safety suite for lib/resil and the chase's checkpoint/resume
   machinery: checkpoint JSON round-trips byte-identically, a resumed run
   is equivalent to an uninterrupted one (up to renaming of nulls invented
   after the boundary) under both policies and engines — including
   cross-engine resume, which is how the supervisor degrades — and the
   supervisor turns injected faults into retries/degradation instead of
   escaped exceptions. Generators live in Generators.

   Equivalence caveat: a [Partial Facts] cut lands mid-pass, where the set
   of triggers fired before the cut depends on enumeration order (itself
   dependent on index insertion order), so for those runs only the levels
   before the final, truncated pass are compared; runs ending at a clean
   boundary (saturation or a level cut) must agree in full. *)

open Relational
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Generators.v
let atom = Generators.atom
let fact = Generators.fact
let tgd = Generators.tgd

(* Result comparison up to null renaming lives in Generators (shared
   with the parallel-engine suite). *)
let results_equivalent = Generators.results_equivalent

(* ------------------------------------------------------------------ *)
(* Checkpoint serialisation                                             *)
(* ------------------------------------------------------------------ *)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint JSON round-trip is byte-identical"
    ~count:150 Generators.arb_checkpoint (fun s ->
      let str = Obs.Json.to_string (Resil.Checkpoint.to_json s) in
      match Obs.Json.parse str with
      | Error _ -> false
      | Ok j -> (
          match Resil.Checkpoint.of_json j with
          | Error _ -> false
          | Ok s' -> Obs.Json.to_string (Resil.Checkpoint.to_json s') = str))

let test_checkpoint_disk_roundtrip () =
  let snaps =
    Generators.chase_snapshots ~engine:`Indexed ~policy:Chase.Oblivious
      [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
        tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ] ]
      (Instance.of_facts [ fact "A" [ "a" ] ])
  in
  let s = List.nth snaps (List.length snaps / 2) in
  let path = Filename.temp_file "resil_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Resil.Checkpoint.save path s;
      let read () =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let first = read () in
      (match Resil.Checkpoint.load path with
      | Error e ->
          Alcotest.failf "load failed: %s" (Resil.Checkpoint.error_message e)
      | Ok s' -> Resil.Checkpoint.save path s');
      check "save → load → save is byte-identical" true (read () = first))

let test_checkpoint_rejects_bad_schema () =
  let reject s =
    match Result.bind (Obs.Json.parse s) Resil.Checkpoint.of_json with
    | Error _ -> true
    | Ok _ -> false
  in
  check "wrong schema" true
    (reject {|{"schema":"other","version":1}|});
  check "wrong version" true
    (reject {|{"schema":"guarded-chase-checkpoint","version":99}|});
  check "missing fields" true
    (reject {|{"schema":"guarded-chase-checkpoint","version":1}|})

(* ------------------------------------------------------------------ *)
(* Resume ≍ uninterrupted                                               *)
(* ------------------------------------------------------------------ *)

let gen_resume_case =
  QCheck.Gen.(
    let* sigma = Generators.gen_sigma
    and* db = Generators.gen_db
    and* engine = Generators.gen_engine
    and* policy = Generators.gen_policy
    and* pick = int_range 0 1000
    and* cross = bool in
    return (sigma, db, engine, policy, pick, cross))

let print_resume_case (sigma, db, engine, policy, pick, cross) =
  Fmt.str "%s engine=%s policy=%s pick=%d cross=%b"
    (Generators.print_sigma_db (sigma, db))
    (Generators.engine_to_string engine)
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")
    pick cross

let arb_resume_case = QCheck.make ~print:print_resume_case gen_resume_case

let resume_equiv (sigma, db, engine, policy, pick, cross) =
  Term.reset_nulls ();
  let snaps = ref [] in
  let full =
    Chase.run ~engine ~policy ~budget:(Generators.resil_budget ())
      ~on_pass:(fun ~level:_ ~saturated:_ take -> snaps := take () :: !snaps)
      sigma db
  in
  let snaps = Array.of_list (List.rev !snaps) in
  let s = snaps.(pick mod Array.length snaps) in
  let resume_engine =
    (* cross-engine resume covers every rung of the supervisor's
       degradation ladder, plus escalation back up to parallel *)
    if cross then
      match engine with
      | `Indexed -> `Naive
      | `Naive -> `Parallel 2
      | `Parallel _ -> `Indexed
    else engine
  in
  let r =
    Chase.resume ~engine:resume_engine ~budget:(Generators.resil_budget ())
      sigma s
  in
  results_equivalent full r

let prop_resume_equiv =
  QCheck.Test.make
    ~name:"resume from any boundary ≍ uninterrupted (both policies/engines)"
    ~count:200 arb_resume_case resume_equiv

(* ------------------------------------------------------------------ *)
(* Supervisor                                                           *)
(* ------------------------------------------------------------------ *)

(* A clock advancing one second per reading, so [After_ms] triggers fire
   deterministically within a few probe hits. *)
let ticking_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1.;
    !t

let gen_supervised_case =
  QCheck.Gen.(
    let* sigma = Generators.gen_sigma
    and* db = Generators.gen_db
    and* policy = Generators.gen_policy
    and* plan = Generators.gen_fault_plan in
    return (sigma, db, policy, plan))

let print_supervised_case (sigma, db, policy, plan) =
  Fmt.str "%s policy=%s plan=%s"
    (Generators.print_sigma_db (sigma, db))
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")
    (Resil.Fault.to_string plan)

let arb_supervised_case =
  QCheck.make ~print:print_supervised_case gen_supervised_case

(* With retries 2 the supervisor grants 3 attempts per engine and the
   generated plans have ≤ 3 triggers, so some attempt always runs
   fault-free: the outcome must carry a result equivalent to the
   uninterrupted run. *)
let supervised_equiv (sigma, db, policy, plan) =
  Term.reset_nulls ();
  let base =
    Chase.run ~engine:`Indexed ~policy ~budget:(Generators.resil_budget ())
      sigma db
  in
  Term.reset_nulls ();
  match
    Resil.Supervisor.run ~engine:`Indexed ~policy
      ~budget:(Generators.resil_budget ()) ~retries:2
      ~sleep:(fun _ -> ())
      ~clock:(ticking_clock ()) ~fault_plan:plan sigma db
  with
  | Resil.Supervisor.Completed r
  | Resil.Supervisor.Recovered (r, _)
  | Resil.Supervisor.Degraded (r, _) ->
      results_equivalent base r
  | Resil.Supervisor.Failed _ -> false

let prop_supervised_equiv =
  QCheck.Test.make
    ~name:"supervised run with kills ≍ uninterrupted (both policies)"
    ~count:200 arb_supervised_case supervised_equiv

(* Σ = {A(x) → ∃y S(x,y); S(x,y) → A(y)}: non-terminating, cut by the
   level budget — a deterministic workload for the unit tests below. *)
let unit_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
  ]

let unit_db = Instance.of_facts [ fact "A" [ "a" ] ]

let test_supervisor_degrades () =
  Term.reset_nulls ();
  let base =
    Chase.run ~engine:`Indexed ~budget:(Generators.resil_budget ()) unit_sigma
      unit_db
  in
  Term.reset_nulls ();
  (* every indexed attempt dies at its first pass; the naive engine never
     hits engine.* probes, so the degraded attempt completes *)
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 1);
    ]
  in
  match
    Resil.Supervisor.run ~engine:`Indexed
      ~budget:(Generators.resil_budget ()) ~retries:2
      ~sleep:(fun _ -> ())
      ~fault_plan:plan unit_sigma unit_db
  with
  | Resil.Supervisor.Degraded (r, log) ->
      check_int "three failed attempts" 3 (List.length log);
      List.iter
        (fun a ->
          check "failed attempts ran on the indexed engine" true
            (a.Resil.Supervisor.engine = `Indexed))
        log;
      check "degraded result ≍ uninterrupted" true (results_equivalent base r)
  | _ -> Alcotest.fail "expected Degraded"

let test_supervisor_failed_is_typed () =
  (* kill both engines on every attempt: engine.pass for indexed,
     chase.pass for naive *)
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("chase.pass", 1);
    ]
  in
  match
    Resil.Supervisor.run ~engine:`Indexed
      ~budget:(Generators.resil_budget ()) ~retries:0
      ~sleep:(fun _ -> ())
      ~fault_plan:plan unit_sigma unit_db
  with
  | Resil.Supervisor.Failed d ->
      check_int "both attempts logged" 2 (List.length d.Resil.Supervisor.attempts)
  | _ -> Alcotest.fail "expected Failed (and no escaped exception)"

let test_supervisor_backoff_sequence () =
  let sleeps = ref [] in
  let plan =
    [
      Resil.Fault.At_point ("engine.pass", 1);
      Resil.Fault.At_point ("engine.pass", 2);
      Resil.Fault.At_point ("engine.pass", 3);
    ]
  in
  (match
     Resil.Supervisor.run ~engine:`Indexed
       ~budget:(Generators.resil_budget ()) ~retries:3 ~backoff_ms:100.
       ~max_backoff_ms:250.
       ~sleep:(fun s -> sleeps := s :: !sleeps)
       ~fault_plan:plan unit_sigma unit_db
   with
  | Resil.Supervisor.Recovered (_, log) ->
      check_int "three failed attempts" 3 (List.length log)
  | _ -> Alcotest.fail "expected Recovered");
  let expect = [ 100. /. 1000.; 200. /. 1000.; 250. /. 1000. ] in
  check_int "three sleeps" (List.length expect) (List.length !sleeps);
  List.iter2
    (fun a b -> check "capped exponential backoff" true (Float.abs (a -. b) < 1e-9))
    expect (List.rev !sleeps)

let test_supervisor_checkpoints_to_disk () =
  let path = Filename.temp_file "resil_sup" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Term.reset_nulls ();
      (match
         Resil.Supervisor.run ~engine:`Indexed
           ~budget:(Generators.resil_budget ()) ~retries:1 ~checkpoint_path:path
           ~sleep:(fun s -> ignore s)
           ~fault_plan:[ Resil.Fault.At_point ("engine.pass", 3) ]
           unit_sigma unit_db
       with
      | Resil.Supervisor.Recovered (_, log) ->
          check_int "one failed attempt" 1 (List.length log);
          (* only failed attempts are logged; the first ran from scratch *)
          check "first attempt started from scratch" true
            ((List.hd log).Resil.Supervisor.resumed_from = None)
      | _ -> Alcotest.fail "expected Recovered");
      match Resil.Checkpoint.load path with
      | Error e ->
          Alcotest.failf "final checkpoint unreadable: %s"
            (Resil.Checkpoint.error_message e)
      | Ok s ->
          check "final checkpoint is at the run's last boundary" true
            (s.Chase.snap_level > 0))

(* ------------------------------------------------------------------ *)
(* Fault plans                                                          *)
(* ------------------------------------------------------------------ *)

let arb_fault_plan =
  QCheck.make
    ~print:(fun p -> Resil.Fault.to_string p)
    Generators.gen_fault_plan

let prop_fault_plan_roundtrip =
  QCheck.Test.make ~name:"fault plan parse ∘ to_string = id" ~count:200
    arb_fault_plan (fun plan ->
      Resil.Fault.parse (Resil.Fault.to_string plan) = Ok plan)

let test_fault_parse () =
  check "none" true (Resil.Fault.parse "none" = Ok []);
  check "empty" true (Resil.Fault.parse "" = Ok []);
  check "hit" true (Resil.Fault.parse "hit:7" = Ok [ Resil.Fault.At_hit 7 ]);
  check "list" true
    (Resil.Fault.parse "hit:1,point:engine.pass:2,ms:5"
    = Ok
        [
          Resil.Fault.At_hit 1;
          Resil.Fault.At_point ("engine.pass", 2);
          Resil.Fault.After_ms 5.;
        ]);
  check "always-fire point" true
    (Resil.Fault.parse "point:engine.answer:*"
    = Ok [ Resil.Fault.Every_point "engine.answer" ]);
  check "always-fire roundtrips" true
    (Resil.Fault.parse
       (Resil.Fault.to_string [ Resil.Fault.Every_point "engine.answer" ])
    = Ok [ Resil.Fault.Every_point "engine.answer" ]);
  check "always-fire plans are stateless" true
    (Resil.Fault.stateless [ Resil.Fault.Every_point "p" ]);
  check "counted plans are not stateless" false
    (Resil.Fault.stateless
       [ Resil.Fault.Every_point "p"; Resil.Fault.At_hit 1 ]);
  check "the empty plan is not stateless" false (Resil.Fault.stateless []);
  check "seed is deterministic" true
    (Resil.Fault.parse "seed:42:4" = Resil.Fault.parse "seed:42:4");
  (match Resil.Fault.parse "seed:42:4" with
  | Ok plan -> check_int "seed expands to the requested attempts" 4 (List.length plan)
  | Error _ -> Alcotest.fail "seed spec rejected");
  List.iter
    (fun bad ->
      check (Fmt.str "rejects %S" bad) true
        (Result.is_error (Resil.Fault.parse bad)))
    [ "bogus"; "hit:x"; "hit:0"; "point:engine.pass"; "ms:nope"; "seed:x" ]

let test_fault_arm_determinism () =
  let count_hits trig =
    Term.reset_nulls ();
    match
      Resil.Fault.with_trigger (Some trig) (fun () ->
          Chase.run ~engine:`Indexed ~budget:(Generators.resil_budget ())
            unit_sigma unit_db)
    with
    | _ -> None
    | exception Resil.Fault.Injected (point, hit) -> Some (point, hit)
  in
  let a = count_hits (Resil.Fault.At_hit 20) in
  let b = count_hits (Resil.Fault.At_hit 20) in
  check "same trigger, same failure point" true (a = b && a <> None);
  check "probes disarmed afterwards" true (not (Obs.Probe.armed ()))

(* ------------------------------------------------------------------ *)
(* Typed checkpoint errors                                              *)
(* ------------------------------------------------------------------ *)

let contains_sub hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_checkpoint_typed_errors () =
  (match Resil.Checkpoint.load "/no/such/checkpoint.json" with
  | Error (Resil.Checkpoint.Io msg) ->
      check "Io message is one line" true (not (String.contains msg '\n'))
  | Error (Resil.Checkpoint.Corrupt _) ->
      Alcotest.fail "a missing file is Io, not Corrupt"
  | Ok _ -> Alcotest.fail "load of a missing file succeeded");
  let path = Filename.temp_file "resil_bad_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema\": \"guarded-chase-checkpoint\", \"ver";
      close_out oc;
      match Resil.Checkpoint.load path with
      | Error (Resil.Checkpoint.Corrupt msg) ->
          check "Corrupt names the file" true
            (contains_sub msg (Filename.basename path));
          check "Corrupt message is one line" true
            (not (String.contains msg '\n'))
      | Error (Resil.Checkpoint.Io _) ->
          Alcotest.fail "unparseable JSON is Corrupt, not Io"
      | Ok _ -> Alcotest.fail "load of truncated JSON succeeded");
  (* readable, well-formed JSON with the wrong schema: the Io/Corrupt
     split keys on what the bytes mean, not on whether they parse *)
  let path = Filename.temp_file "resil_alien_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema\": \"some-other-artifact\", \"version\": 1}";
      close_out oc;
      match Resil.Checkpoint.load path with
      | Error (Resil.Checkpoint.Corrupt _) -> ()
      | Error (Resil.Checkpoint.Io _) ->
          Alcotest.fail "an alien schema is Corrupt, not Io"
      | Ok _ -> Alcotest.fail "load of an alien schema succeeded")

(* ------------------------------------------------------------------ *)
(* CRC32 and the WAL                                                    *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  (* the standard CRC-32 check value *)
  check_int "check value" 0xCBF43926 (Resil.Crc32.string "123456789");
  check_int "empty string" 0 (Resil.Crc32.string "");
  let c = Resil.Crc32.string "a WAL record payload" in
  check "hex round-trip" true (Resil.Crc32.of_hex (Resil.Crc32.to_hex c) = Some c);
  check "rejects short hex" true (Resil.Crc32.of_hex "abc" = None);
  check "rejects non-hex" true (Resil.Crc32.of_hex "zzzzzzzz" = None)

(* Σ terminates: A(x) → B(x); B(x) → ∃y S(x,y). Inserts/deletes of A
   facts cascade through both rules, inventing one null per chain. *)
let serve_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    tgd [ atom "B" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
  ]

let serve_db = Instance.of_facts [ fact "A" [ "a" ]; fact "A" [ "b" ] ]

let with_tmpdir f =
  let dir = Filename.temp_file "resil_wal" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_wal_roundtrip () =
  Term.reset_nulls ();
  let store = Incr.create serve_sigma serve_db in
  with_tmpdir (fun dir ->
      let w = Resil.Wal.create ~dir (Incr.image store) in
      let ops =
        [
          Incr.Insert (fact "A" [ "c" ]);
          Incr.Delete (fact "A" [ "a" ]);
          Incr.Insert (fact "A" [ "d" ]);
        ]
      in
      List.iteri
        (fun i op ->
          Resil.Wal.append w (Resil.Wal.Op (i + 1, op));
          ignore (Incr.apply store op))
        ops;
      Resil.Wal.close w;
      match Resil.Wal.recover ~dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_int "image at seq 0" 0 r.Resil.Wal.rec_image_seq;
          check_int "three tail records" 3 (List.length r.Resil.Wal.rec_ops);
          check_int "last seq" 3 r.Resil.Wal.rec_last_seq;
          check_int "nothing truncated" 0 r.Resil.Wal.rec_truncated;
          (* image + tail replay reproduces the store exactly — same
             facts, same null ids *)
          let rebuilt = Incr.of_image serve_sigma r.Resil.Wal.rec_image in
          List.iter
            (fun (_, op) -> ignore (Incr.apply rebuilt op))
            r.Resil.Wal.rec_ops;
          check "replayed store is identical" true
            (Instance.equal (Incr.instance rebuilt) (Incr.instance store)))

let test_wal_rotation_prunes () =
  Term.reset_nulls ();
  let store = Incr.create serve_sigma serve_db in
  with_tmpdir (fun dir ->
      let w = Resil.Wal.create ~dir (Incr.image store) in
      let op1 = Incr.Insert (fact "A" [ "c" ]) in
      Resil.Wal.append w (Resil.Wal.Op (1, op1));
      ignore (Incr.apply store op1);
      Resil.Wal.rotate w ~seq:1 (Incr.image store);
      let op2 = Incr.Delete (fact "A" [ "b" ]) in
      Resil.Wal.append w (Resil.Wal.Op (2, op2));
      ignore (Incr.apply store op2);
      Resil.Wal.close w;
      check "old image pruned" false
        (Sys.file_exists (Filename.concat dir "image-0.json"));
      check "old segment pruned" false
        (Sys.file_exists (Filename.concat dir "wal-0.log"));
      match Resil.Wal.recover ~dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_int "recovers from the rotated image" 1
            r.Resil.Wal.rec_image_seq;
          check_int "one tail record" 1 (List.length r.Resil.Wal.rec_ops);
          let rebuilt = Incr.of_image serve_sigma r.Resil.Wal.rec_image in
          List.iter
            (fun (_, op) -> ignore (Incr.apply rebuilt op))
            r.Resil.Wal.rec_ops;
          check "replay from rotated image is identical" true
            (Instance.equal (Incr.instance rebuilt) (Incr.instance store)))

let append_raw dir seg bytes =
  let path = Filename.concat dir (Printf.sprintf "wal-%d.log" seg) in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc bytes;
  close_out oc;
  path

let test_wal_truncates_torn_tail () =
  Term.reset_nulls ();
  let store = Incr.create serve_sigma serve_db in
  with_tmpdir (fun dir ->
      let w = Resil.Wal.create ~dir (Incr.image store) in
      Resil.Wal.append w (Resil.Wal.Op (1, Incr.Insert (fact "A" [ "c" ])));
      Resil.Wal.close w;
      (* a crash mid-append: record body without its newline *)
      let path = append_raw dir 0 "deadbeef {\"s\":2,\"k\":\"+\"" in
      (match Resil.Wal.recover ~dir with
      | Error e -> Alcotest.failf "torn tail should recover: %s" e
      | Ok r ->
          check_int "torn record truncated" 1 r.Resil.Wal.rec_truncated;
          check_int "surviving record kept" 1 (List.length r.Resil.Wal.rec_ops);
          check_int "last seq ignores the torn record" 1
            r.Resil.Wal.rec_last_seq);
      (* the torn bytes are physically gone: recovery is idempotent *)
      (match Resil.Wal.recover ~dir with
      | Error e -> Alcotest.fail e
      | Ok r -> check_int "second recovery sees a clean tail" 0
            r.Resil.Wal.rec_truncated);
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      close_in ic;
      let reopened = Resil.Wal.reopen ~dir in
      Resil.Wal.append reopened
        (Resil.Wal.Op (2, Incr.Insert (fact "A" [ "d" ])));
      Resil.Wal.close reopened;
      let ic = open_in_bin path in
      let len' = in_channel_length ic in
      close_in ic;
      check "appends resume on the clean boundary" true (len' > len);
      match Resil.Wal.recover ~dir with
      | Error e -> Alcotest.fail e
      | Ok r -> check_int "both records readable" 2 (List.length r.Resil.Wal.rec_ops))

let test_wal_rejects_interior_corruption () =
  Term.reset_nulls ();
  let store = Incr.create serve_sigma serve_db in
  with_tmpdir (fun dir ->
      let w = Resil.Wal.create ~dir (Incr.image store) in
      Resil.Wal.append w (Resil.Wal.Op (1, Incr.Insert (fact "A" [ "c" ])));
      Resil.Wal.close w;
      (* a corrupt line with a valid record after it is not a torn tail *)
      ignore (append_raw dir 0 "00000000 {\"garbage\":true}\n");
      let payload = "{\"s\":2,\"k\":\"-\",\"p\":\"A\",\"a\":[\"c\"]}" in
      ignore
        (append_raw dir 0
           (Resil.Crc32.to_hex (Resil.Crc32.string payload) ^ " " ^ payload
          ^ "\n"));
      match Resil.Wal.recover ~dir with
      | Error msg ->
          check "diagnostic names the record" true
            (contains_sub msg "corrupt record")
      | Ok _ -> Alcotest.fail "interior corruption must not recover")

let test_wal_image_codec_roundtrip () =
  Term.reset_nulls ();
  let store = Incr.create serve_sigma serve_db in
  ignore (Incr.apply store (Incr.Delete (fact "A" [ "a" ])));
  let im = Incr.image store in
  let j = Resil.Wal.image_to_json ~seq:7 im in
  let str = Obs.Json.to_string j in
  match Result.bind (Obs.Json.parse str) Resil.Wal.image_of_json with
  | Error e -> Alcotest.fail e
  | Ok (seq, im') ->
      check_int "seq preserved" 7 seq;
      check "image round-trips" true (im' = im);
      check "serialisation is stable" true
        (Obs.Json.to_string (Resil.Wal.image_to_json ~seq:7 im') = str)

(* ------------------------------------------------------------------ *)
(* Sequential fault plans                                               *)
(* ------------------------------------------------------------------ *)

let fire name =
  try
    Obs.Probe.hit name;
    None
  with Resil.Fault.Injected (pt, _) -> Some pt

let test_fault_arm_seq () =
  Resil.Fault.arm_seq
    [ Resil.Fault.At_point ("p", 2); Resil.Fault.At_hit 1 ];
  check "first hit of p passes" true (fire "p" = None);
  check "other points do not advance At_point" true (fire "q" = None);
  check "second hit of p fires trigger 1" true (fire "p" = Some "p");
  (* trigger 2 is now live with fresh counters: the next hit anywhere
     fires *)
  check "trigger 2 fires on its first hit" true (fire "q" = Some "q");
  check "exhausted plan runs fault-free" true
    (fire "p" = None && fire "q" = None && fire "r" = None);
  Resil.Fault.disarm ();
  check "disarmed" true (not (Obs.Probe.armed ()));
  (* an always-fire trigger fires at every hit of its point and never
     advances the sequence — a later trigger stays dormant *)
  Resil.Fault.arm_seq
    [ Resil.Fault.Every_point "p"; Resil.Fault.At_hit 1 ];
  check "always-fire passes other points" true (fire "q" = None);
  check "always-fire fires on its point" true (fire "p" = Some "p");
  check "always-fire fires again" true (fire "p" = Some "p");
  check "the sequence never advances" true (fire "q" = None);
  Resil.Fault.disarm ()

let test_fault_suspended () =
  Resil.Fault.arm_seq [ Resil.Fault.At_hit 2 ];
  check "one hit consumed" true (fire "x" = None);
  let inside =
    Resil.Fault.suspended (fun () ->
        fire "x" = None && fire "x" = None && fire "x" = None)
  in
  check "no injection while suspended" true inside;
  (* re-installed with its counter intact: one more hit fires *)
  check "trigger fires after resumption" true (fire "x" = Some "x");
  Resil.Fault.disarm ()

(* ------------------------------------------------------------------ *)
(* Serve supervisor: the degradation ladder                             *)
(* ------------------------------------------------------------------ *)

let ladder_fixture () =
  Term.reset_nulls ();
  let store = ref (Incr.create serve_sigma serve_db) in
  let image = ref (Incr.image !store) in
  let restore () = Incr.of_image serve_sigma !image in
  let rechase st = Incr.create serve_sigma (Incr.base st) in
  (store, restore, rechase)

let test_ladder_clean_apply () =
  let store, restore, rechase = ladder_fixture () in
  match
    Resil.Serve_supervisor.apply ~sleep:(fun _ -> ()) ~restore ~rechase ~store
      (Incr.Insert (fact "A" [ "c" ]))
  with
  | Resil.Serve_supervisor.Applied (eff, [ s ]) ->
      check "applied" true (not eff.Incr.e_noop);
      check "single clean attempt on the repair rung" true
        (s.Resil.Serve_supervisor.st_rung = Resil.Serve_supervisor.Repair
        && s.Resil.Serve_supervisor.st_outcome = `Ok)
  | _ -> Alcotest.fail "expected a one-step Applied"

let test_ladder_retries_clean_fault () =
  let store, restore, rechase = ladder_fixture () in
  (* the incr.delete probe fires before any state change: the store is
     left clean and attempt 2 repairs in place *)
  Resil.Fault.arm_seq [ Resil.Fault.At_point ("incr.delete", 1) ];
  let outcome =
    Fun.protect ~finally:Resil.Fault.disarm (fun () ->
        Resil.Serve_supervisor.apply ~retries:3 ~sleep:(fun _ -> ()) ~restore
          ~rechase ~store
          (Incr.Delete (fact "A" [ "a" ])))
  in
  match outcome with
  | Resil.Serve_supervisor.Applied (eff, steps) ->
      check "mutation landed" true (not eff.Incr.e_noop);
      check "transcript: repair faulted, rederive succeeded" true
        (List.map
           (fun (s : Resil.Serve_supervisor.step) ->
             ( s.st_rung,
               match s.st_outcome with `Ok -> true | `Fault _ -> false ))
           steps
        = [
            (Resil.Serve_supervisor.Repair, false);
            (Resil.Serve_supervisor.Rederive, true);
          ]);
      check "deleted from the store" true
        (not (Instance.mem (fact "A" [ "a" ]) (Incr.instance !store)))
  | _ -> Alcotest.fail "expected Applied after one retry"

let test_ladder_restores_dirty_store () =
  let store, restore, rechase = ladder_fixture () in
  (* a fault mid-insert (inside the delta fixpoint) leaves the store
     dirty; the rederive rung must restore before retrying *)
  Resil.Fault.arm_seq [ Resil.Fault.At_point ("engine.pass", 1) ];
  let outcome =
    Fun.protect ~finally:Resil.Fault.disarm (fun () ->
        Resil.Serve_supervisor.apply ~retries:3 ~sleep:(fun _ -> ()) ~restore
          ~rechase ~store
          (Incr.Insert (fact "A" [ "z" ])))
  in
  match outcome with
  | Resil.Serve_supervisor.Applied (_, steps) ->
      check_int "two attempts" 2 (List.length steps);
      check "store is clean afterwards" true (not (Incr.dirty !store));
      check "inserted chain present" true
        (Instance.mem (fact "B" [ "z" ]) (Incr.instance !store))
  | _ -> Alcotest.fail "expected Applied after restoring the dirty store"

let test_ladder_quarantines_poison () =
  let store, restore, rechase = ladder_fixture () in
  let before = Incr.instance !store in
  Resil.Fault.arm_seq
    [
      Resil.Fault.At_point ("incr.delete", 1);
      Resil.Fault.At_point ("incr.delete", 1);
      Resil.Fault.At_point ("incr.delete", 1);
    ];
  let outcome =
    Fun.protect ~finally:Resil.Fault.disarm (fun () ->
        Resil.Serve_supervisor.apply ~retries:3 ~sleep:(fun _ -> ()) ~restore
          ~rechase ~store
          (Incr.Delete (fact "A" [ "a" ])))
  in
  (match outcome with
  | Resil.Serve_supervisor.Quarantined (steps, msg) ->
      check "transcript climbs the whole ladder" true
        (List.map
           (fun (s : Resil.Serve_supervisor.step) -> s.st_rung)
           steps
        = [
            Resil.Serve_supervisor.Repair;
            Resil.Serve_supervisor.Rederive;
            Resil.Serve_supervisor.Rechase;
          ]);
      check "diagnostic names the fault" true
        (contains_sub msg "incr.delete")
  | _ -> Alcotest.fail "expected Quarantined");
  check "pre-mutation store restored" true
    (Instance.equal before (Incr.instance !store));
  (* the poison is contained: the next mutation applies cleanly *)
  match
    Resil.Serve_supervisor.apply ~sleep:(fun _ -> ()) ~restore ~rechase ~store
      (Incr.Insert (fact "A" [ "c" ]))
  with
  | Resil.Serve_supervisor.Applied (eff, _) ->
      check "later mutations still apply" true (not eff.Incr.e_noop)
  | _ -> Alcotest.fail "store unusable after quarantine"

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_checkpoint_roundtrip;
      prop_resume_equiv;
      prop_supervised_equiv;
      prop_fault_plan_roundtrip;
    ]

let () =
  Alcotest.run "resil"
    [
      ( "units",
        [
          Alcotest.test_case "checkpoint disk round-trip" `Quick
            test_checkpoint_disk_roundtrip;
          Alcotest.test_case "checkpoint schema validation" `Quick
            test_checkpoint_rejects_bad_schema;
          Alcotest.test_case "supervisor degrades to naive" `Quick
            test_supervisor_degrades;
          Alcotest.test_case "supervisor failure is a typed outcome" `Quick
            test_supervisor_failed_is_typed;
          Alcotest.test_case "supervisor backoff sequence" `Quick
            test_supervisor_backoff_sequence;
          Alcotest.test_case "supervisor persists checkpoints" `Quick
            test_supervisor_checkpoints_to_disk;
          Alcotest.test_case "fault plan parsing" `Quick test_fault_parse;
          Alcotest.test_case "fault arming is deterministic" `Quick
            test_fault_arm_determinism;
          Alcotest.test_case "checkpoint errors are typed" `Quick
            test_checkpoint_typed_errors;
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "fault sequential plans" `Quick test_fault_arm_seq;
          Alcotest.test_case "fault suspension" `Quick test_fault_suspended;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append and recover round-trip" `Quick
            test_wal_roundtrip;
          Alcotest.test_case "rotation prunes and stays recoverable" `Quick
            test_wal_rotation_prunes;
          Alcotest.test_case "torn tail is truncated" `Quick
            test_wal_truncates_torn_tail;
          Alcotest.test_case "interior corruption is an error" `Quick
            test_wal_rejects_interior_corruption;
          Alcotest.test_case "image codec round-trip" `Quick
            test_wal_image_codec_roundtrip;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "clean apply is one repair step" `Quick
            test_ladder_clean_apply;
          Alcotest.test_case "clean fault retries in place" `Quick
            test_ladder_retries_clean_fault;
          Alcotest.test_case "dirty store is restored" `Quick
            test_ladder_restores_dirty_store;
          Alcotest.test_case "poison mutation is quarantined" `Quick
            test_ladder_quarantines_poison;
        ] );
      ("properties", qcheck_tests);
    ]
