(* Unit and acceptance tests for lib/obs (metrics, spans, budgets, JSON
   reports) and the budget-aware chase: a non-terminating guarded program
   halts within the fact budget, returns a Partial outcome, and its run
   report carries per-level fact counts and per-phase durations. *)

open Relational
open Relational.Term
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)

(* S(x,y) → ∃z S(y,z): the oblivious chase never terminates. *)
let transitive_sigma =
  [
    Tgds.Tgd.make
      ~body:[ atom "S" [ v "x"; v "y" ] ]
      ~head:[ atom "S" [ v "y"; v "z" ] ];
  ]

let seed_db = Instance.of_facts [ fact "S" [ "a"; "b" ] ]

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_render () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("c", Obs.Json.String "x\"y\n");
        ("d", Obs.Json.Float 0.25);
      ]
  in
  check_str "deterministic render"
    {|{"a":1,"b":[true,null],"c":"x\"y\n","d":0.250000}|}
    (Obs.Json.to_string j)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("n", Obs.Json.Int (-3));
        ("f", Obs.Json.Float 1.5);
        ("s", Obs.Json.String "nested \\ \"quotes\"");
        ("l", Obs.Json.List [ Obs.Json.Obj [ ("x", Obs.Json.Null) ] ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> check "parse inverts render" true (j = j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" s)
    bad

(* RFC 8259 numbers only: OCaml's int_of_string/float_of_string accept
   far more (leading '+', interior signs via partial reads, leading
   zeros, dangling '.', hex), none of which may leak through — a
   checkpoint or report with "1-2" in a number position must be rejected,
   not silently read as 1 or -1. *)
let test_json_number_grammar () =
  let rejected =
    [
      "1-2"; "+5"; "--3"; "01"; "007"; "5."; ".5"; "1.e5"; "1e"; "1e+";
      "0x10"; "1_000"; "-"; "- 1"; "[1-2]"; "{\"a\":+5}"; "1.2.3"; "NaN";
      "Infinity";
    ]
  in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok j ->
          Alcotest.failf "expected number parse error on %S, got %s" s
            (Obs.Json.to_string j))
    rejected;
  let accepted =
    [
      ("0", Obs.Json.Int 0);
      ("-0", Obs.Json.Int 0);
      ("42", Obs.Json.Int 42);
      ("-17", Obs.Json.Int (-17));
      ("3.5", Obs.Json.Float 3.5);
      ("1e2", Obs.Json.Float 100.);
      ("1e+2", Obs.Json.Float 100.);
      ("-0.5e-1", Obs.Json.Float (-0.05));
      ("1.25E2", Obs.Json.Float 125.);
    ]
  in
  List.iter
    (fun (s, expect) ->
      match Obs.Json.parse s with
      | Ok j when j = expect -> ()
      | Ok j ->
          Alcotest.failf "parse %S: got %s, expected %s" s
            (Obs.Json.to_string j)
            (Obs.Json.to_string expect)
      | Error e -> Alcotest.failf "parse %S failed: %s" s e)
    accepted

let test_json_map_floats () =
  let j = Obs.Json.Obj [ ("s", Obs.Json.Float 1.25); ("n", Obs.Json.Int 2) ] in
  check_str "floats normalised" {|{"s":0.000000,"n":2}|}
    (Obs.Json.to_string (Obs.Json.map_floats (fun _ -> 0.) j))

let test_json_member () =
  let j = Obs.Json.Obj [ ("k", Obs.Json.Int 7) ] in
  check "member hit" true (Obs.Json.member "k" j = Some (Obs.Json.Int 7));
  check "member miss" true (Obs.Json.member "z" j = None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "x" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "value" 5 (Obs.Metrics.value c);
  check_int "count by name" 5 (Obs.Metrics.count m "x");
  check_int "unregistered is 0" 0 (Obs.Metrics.count m "y");
  (* find-or-create: the same handle *)
  Obs.Metrics.incr (Obs.Metrics.counter m "x");
  check_int "shared handle" 6 (Obs.Metrics.count m "x");
  check "sorted names" true
    (let names = List.map fst (Obs.Metrics.counters m) in
     names = List.sort String.compare names)

let test_metrics_histograms () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.observe m "d" 0.002;
  Obs.Metrics.observe m "d" 0.004;
  Obs.Metrics.observe m "d" 99.0;
  match Obs.Metrics.histograms m with
  | [ ("d", s) ] ->
      check_int "count" 3 s.Obs.Metrics.count;
      check "sum" true (abs_float (s.Obs.Metrics.sum -. 99.006) < 1e-9);
      check "min" true (s.Obs.Metrics.min = 0.002);
      check "max" true (s.Obs.Metrics.max = 99.0)
  | _ -> Alcotest.fail "one histogram expected"

let test_metrics_quantile () =
  let m = Obs.Metrics.create () in
  check "missing histogram" true (Obs.Metrics.quantile m "d" 0.5 = None);
  (* 100 observations spread over two decades *)
  for i = 1 to 100 do
    Obs.Metrics.observe m "d" (float_of_int i *. 1e-4)
  done;
  check "empty q raises" true
    (try
       ignore (Obs.Metrics.quantile m "d" 1.5);
       false
     with Invalid_argument _ -> true);
  let q p = Option.get (Obs.Metrics.quantile m "d" p) in
  check "q0 is exact min" true (q 0. = 1e-4);
  check "q1 is exact max" true (q 1. = 1e-2);
  (* p50 = 5ms exactly on a bucket boundary; the estimate must land in
     the right bucket (2ms, 10ms] within a factor of the bucket width *)
  check (Fmt.str "p50 in-bucket (%g)" (q 0.5)) true
    (q 0.5 >= 2e-3 && q 0.5 <= 1e-2);
  check (Fmt.str "p99 in-bucket (%g)" (q 0.99)) true
    (q 0.99 >= 5e-3 && q 0.99 <= 1e-2);
  check "monotone" true (q 0.5 <= q 0.9 && q 0.9 <= q 0.99)

let test_metrics_absorb_histograms () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.observe a "d" 0.001;
  Obs.Metrics.observe a "d" 0.003;
  Obs.Metrics.observe b "d" 0.5;
  Obs.Metrics.observe b "e" 1.0;
  Obs.Metrics.absorb ~into:a b;
  (match Obs.Metrics.histograms a with
  | [ ("d", d); ("e", e) ] ->
      check_int "d merged count" 3 d.Obs.Metrics.count;
      check "d merged sum" true (abs_float (d.Obs.Metrics.sum -. 0.504) < 1e-9);
      check "d min" true (d.Obs.Metrics.min = 0.001);
      check "d max" true (d.Obs.Metrics.max = 0.5);
      check_int "e registered" 1 e.Obs.Metrics.count
  | hs -> Alcotest.fail (Fmt.str "expected d+e, got %d histograms" (List.length hs)));
  (* the merged histogram quantiles see both registries' observations *)
  check "merged max" true (Option.get (Obs.Metrics.quantile a "d" 1.) = 0.5)

let test_report_rate_block () =
  let r = Obs.Report.create "srv" in
  (* empty histogram: qps field present (0), quantiles omitted *)
  Obs.Report.add_rate_block r ~prefix:"server" ~histogram:"server.latency"
    ~wall_s:2.0;
  let js = Obs.Json.to_string (Obs.Report.to_json r) in
  check "qps zero" true (contains js "\"server.qps\":0");
  check "no p50 when empty" false (contains js "p50_ms");
  for _ = 1 to 100 do
    Obs.Metrics.observe (Obs.Report.metrics r) "server.latency" 0.004
  done;
  Obs.Report.add_rate_block r ~prefix:"server" ~histogram:"server.latency"
    ~wall_s:2.0;
  let js = Obs.Json.to_string (Obs.Report.to_json r) in
  check "qps 50" true (contains js "\"server.qps\":50");
  check "p50 present" true (contains js "\"server.p50_ms\":");
  check "p99 present" true (contains js "\"server.p99_ms\":")

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_tree () =
  let now = ref 0. in
  let clock () =
    let t = !now in
    now := t +. 1.;
    t
  in
  let root = Obs.Span.root ~clock "run" in
  let child = Obs.Span.enter root "phase" in
  Obs.Span.set child "k" (Obs.Json.Int 1);
  Obs.Span.set child "k" (Obs.Json.Int 2);
  Obs.Span.exit child;
  Obs.Span.exit root;
  check "child listed" true
    (List.map Obs.Span.name (Obs.Span.children root) = [ "phase" ]);
  check "attr overwritten" true
    (Obs.Span.attr child "k" = Some (Obs.Json.Int 2));
  (* fake clock ticks once per read: child start=1, stop=2; root 0..3 *)
  check "child elapsed" true (Obs.Span.elapsed child = 1.);
  check "root elapsed" true (Obs.Span.elapsed root = 3.);
  check "exit idempotent" true
    (Obs.Span.exit child;
     Obs.Span.elapsed child = 1.);
  match Obs.Span.to_json root with
  | Obs.Json.Obj (("name", Obs.Json.String "run") :: ("s", Obs.Json.Float _) :: _)
    -> ()
  | j -> Alcotest.failf "unexpected span json: %s" (Obs.Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Budgets                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_limits () =
  let b = Obs.Budget.create ~max_facts:10 ~max_levels:3 () in
  check "under" true (Obs.Budget.check b ~facts:10 ~level:3 = None);
  check "facts exceed" true
    (Obs.Budget.check b ~facts:11 ~level:1 = Some (Obs.Budget.Facts 10));
  check "levels exceed" true
    (Obs.Budget.check b ~facts:0 ~level:4 = Some (Obs.Budget.Levels 3));
  check "unlimited never fires" true
    (Obs.Budget.check Obs.Budget.unlimited ~facts:max_int ~level:max_int = None)

let test_budget_deadline_fake_clock () =
  let now = ref 0. in
  let b =
    Obs.Budget.create ~clock:(fun () -> !now) ~max_ms:5. ()
  in
  check "before deadline" true (Obs.Budget.check b ~facts:0 ~level:1 = None);
  now := 0.0049;
  check "just under" true (Obs.Budget.check b ~facts:0 ~level:1 = None);
  now := 0.006;
  check "past deadline" true
    (Obs.Budget.check b ~facts:0 ~level:1 = Some (Obs.Budget.Deadline 5.))

let test_budget_meet () =
  let a = Obs.Budget.create ~max_facts:10 () in
  let b = Obs.Budget.create ~max_facts:20 ~max_levels:2 () in
  let m = Obs.Budget.meet a b in
  check "min facts" true
    (Obs.Budget.check m ~facts:11 ~level:1 = Some (Obs.Budget.Facts 10));
  check "levels inherited" true
    (Obs.Budget.check m ~facts:0 ~level:3 = Some (Obs.Budget.Levels 2))

let test_outcome_json () =
  check_str "complete" {|{"status":"complete"}|}
    (Obs.Json.to_string (Obs.Budget.outcome_to_json Obs.Budget.Complete));
  check_str "partial facts" {|{"status":"partial","reason":"max_facts","limit":7}|}
    (Obs.Json.to_string
       (Obs.Budget.outcome_to_json (Obs.Budget.Partial (Obs.Budget.Facts 7))))

(* ------------------------------------------------------------------ *)
(* Acceptance: budgeted chase on a non-terminating program              *)
(* ------------------------------------------------------------------ *)

let test_budgeted_chase_halts_partial () =
  let budget = Obs.Budget.create ~max_facts:40 () in
  let r = Chase.run ~budget transitive_sigma seed_db in
  check "not saturated" false (Chase.saturated r);
  (match Chase.outcome r with
  | Obs.Budget.Partial (Obs.Budget.Facts 40) -> ()
  | o -> Alcotest.failf "expected Partial (Facts 40), got %a" Obs.Budget.pp_outcome o);
  (* the overflowing trigger's head lands, nothing after it *)
  check_int "halted right past the budget" 41
    (Instance.size (Chase.instance r));
  (* one new fact per level *)
  check_int "40 levels" 40 (Chase.max_level r);
  check "facts_per_level all ones" true
    (Chase.facts_per_level r = List.init 40 (fun _ -> 1));
  (* the naive engine cuts at the same point *)
  let rn = Chase.run ~engine:`Naive ~budget:(Obs.Budget.create ~max_facts:40 ())
      transitive_sigma seed_db in
  check_int "naive agrees" 41 (Instance.size (Chase.instance rn));
  check "naive outcome agrees" true
    (Chase.outcome rn = Obs.Budget.Partial (Obs.Budget.Facts 40))

let test_budgeted_chase_report_json () =
  let budget = Obs.Budget.create ~max_facts:40 () in
  let r = Chase.run ~budget transitive_sigma seed_db in
  let j = Obs.Report.to_json (Chase.report ~name:"acceptance" r) in
  (match Obs.Json.member "outcome" j with
  | Some o ->
      check "partial status" true
        (Obs.Json.member "status" o = Some (Obs.Json.String "partial"));
      check "max_facts reason" true
        (Obs.Json.member "reason" o = Some (Obs.Json.String "max_facts"))
  | None -> Alcotest.fail "outcome missing");
  (match Obs.Json.member "facts_per_level" j with
  | Some (Obs.Json.List (_ :: _ as levels)) ->
      check "per-level counts are ints" true
        (List.for_all (function Obs.Json.Int _ -> true | _ -> false) levels)
  | _ -> Alcotest.fail "facts_per_level missing or empty");
  (match Obs.Json.member "span" j with
  | Some sp -> (
      check "span has a duration" true
        (match Obs.Json.member "s" sp with
        | Some (Obs.Json.Float _) -> true
        | _ -> false);
      match Obs.Json.member "children" sp with
      | Some (Obs.Json.List (sat :: _)) -> (
          (* chase → saturate → per-level children with durations *)
          check "saturate child" true
            (Obs.Json.member "name" sat = Some (Obs.Json.String "saturate"));
          match Obs.Json.member "children" sat with
          | Some (Obs.Json.List (lvl :: _)) ->
              check "level child timed" true
                (match Obs.Json.member "s" lvl with
                | Some (Obs.Json.Float _) -> true
                | _ -> false)
          | _ -> Alcotest.fail "saturate span has no level children")
      | _ -> Alcotest.fail "chase span has no children")
  | None -> Alcotest.fail "span missing");
  (* counters flow from the engine's index *)
  match Obs.Json.member "counters" j with
  | Some c ->
      check "index.inserts counted" true
        (match Obs.Json.member "index.inserts" c with
        | Some (Obs.Json.Int n) -> n > 0
        | _ -> false)
  | None -> Alcotest.fail "counters missing"

let test_deadline_cuts_chase () =
  (* injected clock: each read advances 1s; deadline 1.5s from creation *)
  let now = ref 0. in
  let clock () =
    let t = !now in
    now := t +. 1.;
    t
  in
  let budget = Obs.Budget.create ~clock ~max_ms:1500. () in
  let r = Chase.run ~budget transitive_sigma seed_db in
  check "not saturated" false (Chase.saturated r);
  match Chase.outcome r with
  | Obs.Budget.Partial (Obs.Budget.Deadline _) -> ()
  | o -> Alcotest.failf "expected deadline cut, got %a" Obs.Budget.pp_outcome o

let test_level_budget_matches_max_level () =
  (* the budget's level axis is the old ?max_level cutoff *)
  let by_arg = Chase.run ~max_level:5 transitive_sigma seed_db in
  let by_budget =
    Chase.run ~budget:(Obs.Budget.create ~max_levels:5 ()) transitive_sigma
      seed_db
  in
  check_int "same size"
    (Instance.size (Chase.instance by_arg))
    (Instance.size (Chase.instance by_budget));
  check_int "same levels" (Chase.max_level by_arg) (Chase.max_level by_budget);
  check "budget reports the cut" true
    (Chase.outcome by_budget = Obs.Budget.Partial (Obs.Budget.Levels 5))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "number grammar" `Quick test_json_number_grammar;
          Alcotest.test_case "map_floats" `Quick test_json_map_floats;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histograms" `Quick test_metrics_histograms;
          Alcotest.test_case "quantile" `Quick test_metrics_quantile;
          Alcotest.test_case "absorb merges histograms" `Quick
            test_metrics_absorb_histograms;
          Alcotest.test_case "report rate block" `Quick test_report_rate_block;
        ] );
      ("spans", [ Alcotest.test_case "tree" `Quick test_span_tree ]);
      ( "budgets",
        [
          Alcotest.test_case "limits" `Quick test_budget_limits;
          Alcotest.test_case "deadline (fake clock)" `Quick
            test_budget_deadline_fake_clock;
          Alcotest.test_case "meet" `Quick test_budget_meet;
          Alcotest.test_case "outcome json" `Quick test_outcome_json;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "budgeted chase halts with Partial" `Quick
            test_budgeted_chase_halts_partial;
          Alcotest.test_case "report JSON carries levels and durations" `Quick
            test_budgeted_chase_report_json;
          Alcotest.test_case "deadline budget cuts the chase" `Quick
            test_deadline_cuts_chase;
          Alcotest.test_case "level budget ≡ max_level" `Quick
            test_level_budget_matches_max_level;
        ] );
    ]
