(** Per-mutation degradation ladder; see the interface for the state
    machine. *)

type rung = Repair | Rederive | Rechase

type step = {
  st_attempt : int;
  st_rung : rung;
  st_outcome : [ `Ok | `Fault of string ];
  st_backoff_ms : float;
}

type outcome =
  | Applied of Incr.effect * step list
  | Quarantined of step list * string

exception Fatal of string

let rung_to_string = function
  | Repair -> "repair"
  | Rederive -> "rederive"
  | Rechase -> "rechase"

let fault_of = function
  | Fault.Injected (point, hit) ->
      Printf.sprintf "injected fault at %s (hit %d)" point hit
  | e -> Printexc.to_string e

let apply ?(retries = 3) ?(backoff_ms = 50.) ?(max_backoff_ms = 1000.)
    ?(sleep = Unix.sleepf) ?obs ~restore ~rechase ~store op =
  let retries = max 1 retries in
  let steps = ref [] in
  (* a clean pre-mutation store, whatever the previous attempt did to
     the live one; runs with faults lifted — the plan targets the
     supervised apply, not the repair of its own damage *)
  let ensure_clean () =
    if Incr.dirty !store then store := Fault.suspended restore
  in
  let rec go k =
    let rung =
      if k = 1 then Repair else if k = retries then Rechase else Rederive
    in
    (match rung with
    | Repair -> ()
    | Rederive -> ensure_clean ()
    | Rechase ->
        ensure_clean ();
        store := Fault.suspended (fun () -> rechase !store));
    match Incr.apply ?obs !store op with
    | eff ->
        steps :=
          { st_attempt = k; st_rung = rung; st_outcome = `Ok; st_backoff_ms = 0. }
          :: !steps;
        Applied (eff, List.rev !steps)
    | exception Invalid_argument msg ->
        raise (Fatal (Printf.sprintf "precondition violated: %s" msg))
    | exception e ->
        let fault = fault_of e in
        let retry = k < retries in
        let backoff =
          if retry then
            Float.min max_backoff_ms (backoff_ms *. (2. ** float_of_int (k - 1)))
          else 0.
        in
        steps :=
          {
            st_attempt = k;
            st_rung = rung;
            st_outcome = `Fault fault;
            st_backoff_ms = backoff;
          }
          :: !steps;
        if retry then begin
          if backoff > 0. then sleep (backoff /. 1000.);
          go (k + 1)
        end
        else begin
          (* quarantine: put the pre-mutation store back (even after a
             clean-but-failed rechase — the maintained trajectory is the
             one the WAL's replay reproduces) and keep serving *)
          store := Fault.suspended restore;
          Quarantined
            ( List.rev !steps,
              Printf.sprintf "quarantined after %d attempt(s): %s" k fault )
        end
  in
  go 1
