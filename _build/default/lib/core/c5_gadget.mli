(** The Appendix C.5 gadget: a guarded ontology over a 6-ary auxiliary
    whose chase counts in binary — from [T1(c̄)] it produces an [S]-path of
    [2^n − 1] edges, from [T2(c̄)] one of [2^n − 2] — the mechanism behind
    Lemma C.8's exponential lower bound on UCQ₁-equivalent rewritings when
    [k < ar(T) − 1]. A clean reconstruction of the paper's (partly
    garbled) Σ₁/Σ₂; see the implementation header. *)

open Relational

(** The counter ontology for parameter [n] (guarded, max arity 6). *)
val ontology : n:int -> Tgds.Tgd.t list

(** The seed databases of Lemma C.8. *)
val database : [ `T1 | `T2 ] -> Instance.t

(** Length of the longest simple [S]-path (the gadget's chase is a
    path). *)
val s_path_length : Instance.t -> int

(** The separating query: an [S]-path of [2^n − 1] edges — treewidth 1 yet
    exponential in the gadget. *)
val separating_query : n:int -> Cq.t
