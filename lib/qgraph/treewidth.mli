(** Treewidth computation: cheap bounds, heuristic witnesses, and an exact
    branch-and-bound over elimination orders (practical to ≈20 vertices —
    every query in the suites). *)

exception Too_large
(** Raised by {!exact} beyond 62 vertices. *)

(** Degeneracy (MMD) lower bound on treewidth. *)
val lower_bound : Graph.t -> int

type heuristic = Min_fill | Min_degree

(** Elimination order produced by greedy heuristic scoring. *)
val heuristic_order : ?h:heuristic -> Graph.t -> int list

(** Width of an elimination order. *)
val order_width : Graph.t -> int list -> int

(** Heuristic upper bound with its witnessing decomposition. *)
val upper_bound : ?h:heuristic -> Graph.t -> int * Tree_decomposition.t

(** Exact treewidth (per connected component); raises {!Too_large} beyond
    62 vertices. *)
val exact : Graph.t -> int

(** Exact treewidth with a witnessing decomposition of that width. *)
val exact_decomposition : Graph.t -> int * Tree_decomposition.t

(** Total variant of {!exact}: [None] beyond 62 vertices instead of
    raising {!Too_large}. *)
val exact_opt : Graph.t -> int option

(** Total variant of {!exact_decomposition}. *)
val exact_decomposition_opt : Graph.t -> (int * Tree_decomposition.t) option

(** Treewidth: exact when feasible, else the heuristic upper bound (a
    warning is logged when the bounds do not meet). Edgeless nonempty
    graphs have treewidth 0 here; the paper's convention for CQs
    (treewidth 1) is applied by [Cq.treewidth]. *)
val treewidth : Graph.t -> int

(** [at_most g k] — treewidth(g) ≤ k. *)
val at_most : Graph.t -> int -> bool
