lib/core/omq_eval.mli: Fact Instance Omq Relational Term Tgds
