type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable data : ba; mutable len : int }

let alloc n : ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create ?(capacity = 8) () =
  let capacity = if capacity < 1 then 1 else capacity in
  { data = alloc capacity; len = 0 }

let length v = v.len
let capacity v = Bigarray.Array1.dim v.data

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Bigarray.Array1.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Bigarray.Array1.unsafe_set v.data i x

let grow v =
  let d = alloc (2 * Bigarray.Array1.dim v.data) in
  Bigarray.Array1.blit v.data (Bigarray.Array1.sub d 0 v.len);
  v.data <- d

let push v x =
  if v.len = Bigarray.Array1.dim v.data then grow v;
  Bigarray.Array1.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  Bigarray.Array1.unsafe_get v.data v.len

let remove_value v x =
  let rec find i = if i >= v.len then -1 else if Bigarray.Array1.unsafe_get v.data i = x then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    let tail = v.len - i - 1 in
    if tail > 0 then
      (* Array1.blit is a memmove: overlapping ranges are fine *)
      Bigarray.Array1.blit
        (Bigarray.Array1.sub v.data (i + 1) tail)
        (Bigarray.Array1.sub v.data i tail);
    v.len <- v.len - 1;
    true
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f (Bigarray.Array1.unsafe_get v.data i)
  done

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Bigarray.Array1.unsafe_get v.data i :: acc) in
  go (v.len - 1) []
