examples/dichotomy.mli:
