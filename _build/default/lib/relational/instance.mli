(** Finite instances and databases (§2): predicate-indexed fact stores with
    the operations the paper uses — restriction [I|T], union, renaming,
    Gaifman graphs, guarded sets and isolated constants. *)

type t

val empty : t
val add_fact : Fact.t -> t -> t
val of_facts : Fact.t list -> t

(** [of_atoms atoms] — raises [Invalid_argument] on non-ground atoms. *)
val of_atoms : Atom.t list -> t

val mem : Fact.t -> t -> bool
val facts : t -> Fact.t list
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val for_all : (Fact.t -> bool) -> t -> bool
val exists : (Fact.t -> bool) -> t -> bool

(** Tuples of predicate [p]. *)
val tuples_of : string -> t -> Term.const list list

val predicates : t -> string list

(** Number of facts. *)
val size : t -> int

(** [‖I‖]: total symbol count (facts weighted by arity + 1). *)
val norm : t -> int

val is_empty : t -> bool

(** Active domain. *)
val dom : t -> Term.ConstSet.t

val union : t -> t -> t

(** [restrict i set] — [I|T]: the atoms mentioning only constants of
    [set]. *)
val restrict : t -> Term.ConstSet.t -> t

val filter : (Fact.t -> bool) -> t -> t

(** [diff a b] removes [b]'s facts from [a]. *)
val diff : t -> t -> t

val subset : t -> t -> bool
val equal : t -> t -> bool

(** [rename f i] maps all constants through [f] (identity on [None]). *)
val rename : (Term.const -> Term.const option) -> t -> t

(** [rename_map m i] — renaming via a constant map (identity off the
    map). *)
val rename_map : Term.const Term.ConstMap.t -> t -> t

(** Schema inferred from the facts present. *)
val schema : t -> Schema.t

(** [gaifman i] — the Gaifman graph of [i] (§2): vertices are indices into
    the returned constant array. *)
val gaifman : t -> Qgraph.Graph.t * Term.const array

(** Treewidth of the Gaifman graph. *)
val treewidth : t -> int

(** Whether the Gaifman graph is connected (§6). *)
val connected : t -> bool

(** [isolated i c] — [c] occurs in exactly one atom of [i] (§6). *)
val isolated : t -> Term.const -> bool

(** The constant sets of atoms of [i]. *)
val guarded_sets : t -> Term.ConstSet.t list

(** Guarded sets not strictly contained in another guarded set (the family
    [A] of §6.2). *)
val maximal_guarded_sets : t -> Term.ConstSet.t list

val pp : Format.formatter -> t -> unit
