(** Semi-naive saturation; see the interface for the level-equivalence
    argument. The driver keeps the naive chase's observable behaviour —
    trigger keys, per-level trigger sets, level assignment, policy and
    budget cutoffs — while enumerating each trigger exactly once, at
    the level where the last fact of its body appears.

    Crash safety: the state at a clean pass boundary is fully described by
    the facts with their s-levels plus a handful of scalars — the delta of
    the next pass is exactly the facts of the last level, and a trigger is
    (re-)enumerable iff its body touches that delta. {!resume} rebuilds
    the index and delta from such a {!snapshot} and continues the loop;
    the continuation fires the same per-pass trigger sets as the
    uninterrupted run (facts agree up to null renaming, s-levels and
    outcome exactly). *)

open Relational
open Relational.Term

type policy = Oblivious | Restricted
type engine = Indexed | Parallel of int
type rule = { body : Atom.t list; head : Atom.t list }

type snapshot = {
  snap_facts : (Fact.t * int) list;  (** every fact with its s-level *)
  snap_level : int;
  snap_saturated : bool;
  snap_triggers_fired : int;
  snap_triggers_dismissed : int;
  snap_counters : (string * int) list;
}

type result = {
  index : Index.t;
  level_of : (Fact.t, int) Hashtbl.t;
  saturated : bool;
  max_level : int;
  outcome : Obs.Budget.outcome;
  triggers_fired : int;
  triggers_dismissed : int;
  facts_per_level : int list;
  span : Obs.Span.t;
}

type firing = {
  fire_rule : int;
  fire_key : int * const option list;
  fire_body : Fact.t list;
  fire_outs : (Fact.t * bool) list;
}

(* Key identifying a trigger: rule index + body-variable image (same shape
   as the naive chase's key, so the two engines dismiss identically). *)
let trigger_key i (b : Homomorphism.binding) body_vars =
  (i, List.map (fun x -> VarMap.find_opt x b) body_vars)

(* Group the delta by predicate so each pivot only sees matching facts. *)
let group_by_pred facts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let cur = try Hashtbl.find tbl (Fact.pred f) with Not_found -> [] in
      Hashtbl.replace tbl (Fact.pred f) (f :: cur))
    facts;
  tbl

(* [pivots body] — [(pivot, body reordered pivot-first)] for each body
   position; a predicate repeated in the body is pivoted once per
   occurrence (the per-pass key set deduplicates the bindings). *)
let pivots body =
  List.mapi
    (fun i a -> (a, a :: List.filteri (fun j _ -> j <> i) body))
    body

(* Instantiate an atom whose variables are all bound, straight to a fact
   (no intermediate ground atom). *)
let ground (b : Homomorphism.binding) a =
  Fact.make (Atom.pred a)
    (List.map
       (function Const c -> c | Var x -> VarMap.find x b)
       (Atom.args a))

(* The resumable state threaded into the driver: either a fresh run over a
   database or the reconstruction of a checkpointed boundary. *)
type init = {
  i_idx : Index.t;
  i_level_of : (Fact.t, int) Hashtbl.t;
  i_delta : Fact.t list;
  i_level : int;
  i_saturated : bool;
  i_first_pass : bool;
  i_fired : int;
  i_dismissed : int;
  i_fpl : int list;  (* reversed: newest level first *)
}

let exec ~policy ~budget ~span ~on_pass ~on_fire ~pool init rules =
  let rules = Array.of_list rules in
  (* Worker-death containment: [Parallel.collect] replays a dead shard's
     slice on the calling domain, so a single death is absorbed without
     observable effect; after repeated deaths the pool is dropped and the
     remaining passes run the sequential traversal (same output — the
     parallel path is byte-equivalent by construction). *)
  let pool = ref pool in
  let worker_deaths = ref 0 in
  let info =
    Array.map
      (fun r ->
        let vars_of atoms =
          List.fold_left
            (fun acc a -> VarSet.union (Atom.vars a) acc)
            VarSet.empty atoms
        in
        let bv = vars_of r.body and hv = vars_of r.head in
        ( VarSet.elements bv,
          VarSet.elements (VarSet.diff hv bv),
          VarSet.inter bv hv,
          pivots r.body ))
      rules
  in
  let idx = init.i_idx in
  let level_of = init.i_level_of in
  let fired = Hashtbl.create 256 in
  let triggers_fired = ref init.i_fired
  and triggers_dismissed = ref init.i_dismissed in
  let facts_per_level = ref init.i_fpl in
  let delta = ref init.i_delta in
  let first_pass = ref init.i_first_pass in
  let saturated = ref init.i_saturated in
  let level = ref init.i_level in
  let violation = ref None in
  let overflow () = !violation <> None in
  let take_snapshot () =
    {
      snap_facts = Hashtbl.fold (fun f l acc -> (f, l) :: acc) level_of [];
      snap_level = !level;
      snap_saturated = !saturated;
      snap_triggers_fired = !triggers_fired;
      snap_triggers_dismissed = !triggers_dismissed;
      snap_counters = Obs.Metrics.counters (Index.metrics idx);
    }
  in
  while (not !saturated) && not (overflow ()) do
    Obs.Probe.hit "engine.pass";
    match
      Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
        ~level:(!level + 1)
    with
    | Some v -> violation := Some v
    | None ->
        let lspan = Obs.Span.enter span "level" in
        let pass_no = !level + 1 in
        let level_fired = ref 0 and level_dismissed = ref 0 in
        let delta_by_pred = group_by_pred !delta in
        let pending = Hashtbl.create 64 in
        let new_triggers = ref [] in
        (* main-registry handles for replaying worker-precomputed check
           verdicts; resolved lazily so engines that never replay (or
           runs with no checks at all) register exactly the counters the
           sequential engine would *)
        let replay_counters =
          lazy
            (let m = Index.metrics idx in
             ( Obs.Metrics.counter m "index.probes",
               Obs.Metrics.counter m "joiner.candidates",
               Obs.Metrics.counter m "joiner.backtracks" ))
        in
        let consider i b pre =
          let body_vars, _, frontier, _ = info.(i) in
          let key = trigger_key i b body_vars in
          if not (Hashtbl.mem fired key || Hashtbl.mem pending key) then begin
            let active =
              match policy with
              | Oblivious -> true
              | Restricted -> (
                  match (pre : Parallel.verdict option) with
                  | Some v ->
                      (* the check already ran shard-locally against the
                         frozen index; replay its observable effects at
                         the canonical point *)
                      Obs.Probe.hit "engine.join";
                      let cp, cc, cb = Lazy.force replay_counters in
                      Obs.Metrics.add cp v.Parallel.v_probes;
                      Obs.Metrics.add cc v.Parallel.v_candidates;
                      Obs.Metrics.add cb v.Parallel.v_backtracks;
                      v.Parallel.v_active
                  | None ->
                      let init =
                        VarMap.filter (fun x _ -> VarSet.mem x frontier) b
                      in
                      not (Joiner.exists ~init rules.(i).head idx))
            in
            if active then begin
              Hashtbl.replace pending key ();
              new_triggers := (i, b, key) :: !new_triggers
            end
            else begin
              incr triggers_dismissed;
              incr level_dismissed;
              Hashtbl.replace fired key ()
            end
          end
        in
        (match !pool with
        | None ->
            Array.iteri
              (fun i r ->
                if r.body = [] then begin
                  (* bodiless rules have a single (empty) trigger; it exists
                     from the start, so only the first pass needs to consider
                     it *)
                  if !first_pass then consider i VarMap.empty None
                end
                else
                  let _, _, _, pvs = info.(i) in
                  List.iter
                    (fun (pivot, reordered) ->
                      match
                        Hashtbl.find_opt delta_by_pred (Atom.pred pivot)
                      with
                      | None -> ()
                      | Some dfacts ->
                          Joiner.fold ~delta:dfacts reordered idx
                            (fun b () -> consider i b None)
                            ())
                    pvs)
              rules
        | Some p ->
            (* same traversal, decomposed into jobs: the matching fans out
               over the pool, [consider] replays in the sequential order
               (see Parallel's determinism argument) *)
            let jobs = ref [] in
            Array.iteri
              (fun i r ->
                if r.body = [] then begin
                  if !first_pass then jobs := Parallel.Bodiless i :: !jobs
                end
                else
                  let _, _, _, pvs = info.(i) in
                  List.iter
                    (fun (pivot, reordered) ->
                      match
                        Hashtbl.find_opt delta_by_pred (Atom.pred pivot)
                      with
                      | None -> ()
                      | Some dfacts ->
                          jobs :=
                            Parallel.Join
                              { rule = i; atoms = reordered; delta = dfacts }
                            :: !jobs)
                    pvs)
              rules;
            let key_of i b =
              let body_vars, _, _, _ = info.(i) in
              trigger_key i b body_vars
            in
            (* run shard-locally, against a private frozen reader, with
               probes silenced: the merge walk replays the probe hit and
               counter deltas at the canonical point instead *)
            let check =
              match policy with
              | Oblivious -> None
              | Restricted ->
                  Some
                    (fun i b rdr ->
                      let _, _, frontier, _ = info.(i) in
                      let init =
                        VarMap.filter (fun x _ -> VarSet.mem x frontier) b
                      in
                      not (Joiner.exists ~probe:false ~init rules.(i).head rdr))
            in
            let deaths =
              Parallel.collect ~pool:p ~index:idx ~fired ~key_of ~check
                (List.rev !jobs) ~consider
            in
            if deaths > 0 then begin
              worker_deaths := !worker_deaths + deaths;
              if !worker_deaths >= 2 then begin
                (* repeated deaths: drop to the sequential traversal for
                   the rest of the run (the pool itself is torn down by
                   [with_pool]'s finaliser as usual) *)
                pool := None;
                Obs.Metrics.incr
                  (Obs.Metrics.counter (Index.metrics idx) "parallel.degraded")
              end
            end);
        first_pass := false;
        if !new_triggers = [] then saturated := true
        else begin
          incr level;
          let new_delta = ref [] in
          let new_count = ref 0 in
          List.iter
            (fun (i, b, key) ->
              if not (overflow ()) then begin
                Hashtbl.replace fired key ();
                incr triggers_fired;
                incr level_fired;
                let r = rules.(i) in
                let _, existentials, _, _ = info.(i) in
                let body_facts = List.map (ground b) r.body in
                let body_level =
                  List.fold_left
                    (fun acc f ->
                      max acc (try Hashtbl.find level_of f with Not_found -> 0))
                    0 body_facts
                in
                let full_binding =
                  List.fold_left
                    (fun acc z -> VarMap.add z (fresh_null ()) acc)
                    b existentials
                in
                let land_head h =
                  let f = ground full_binding h in
                  let fresh = Index.insert f idx in
                  if fresh then begin
                    Hashtbl.replace level_of f (body_level + 1);
                    incr new_count;
                    new_delta := f :: !new_delta
                  end;
                  (f, fresh)
                in
                (match on_fire with
                | None -> List.iter (fun h -> ignore (land_head h)) r.head
                | Some cb ->
                    let outs = List.map land_head r.head in
                    cb
                      {
                        fire_rule = i;
                        fire_key = key;
                        fire_body = body_facts;
                        fire_outs = outs;
                      });
                (* the budget is re-checked trigger-atomically: the
                   overflowing trigger's whole head lands (matching the
                   naive loop), remaining triggers are skipped *)
                match
                  Obs.Budget.check budget ~facts:(Hashtbl.length level_of)
                    ~level:!level
                with
                | Some v -> violation := Some v
                | None -> ()
              end)
            (List.rev !new_triggers);
          facts_per_level := !new_count :: !facts_per_level;
          delta := !new_delta
        end;
        Obs.Span.set lspan "level" (Obs.Json.Int pass_no);
        Obs.Span.set lspan "triggers_fired" (Obs.Json.Int !level_fired);
        Obs.Span.set lspan "triggers_dismissed" (Obs.Json.Int !level_dismissed);
        Obs.Span.set lspan "new_facts"
          (Obs.Json.Int
             (match !facts_per_level with
             | n :: _ when not !saturated -> n
             | _ -> 0));
        Obs.Span.exit lspan;
        (* Clean pass boundary (no mid-pass cutoff): the state is fully
           reconstructible — offer a checkpoint. *)
        (match on_pass with
        | Some cb when !violation = None ->
            cb ~level:!level ~saturated:!saturated take_snapshot
        | _ -> ())
  done;
  let outcome =
    match !violation with
    | Some v -> Obs.Budget.Partial v
    | None -> Obs.Budget.Complete
  in
  {
    index = idx;
    level_of;
    saturated = !saturated;
    max_level = !level;
    outcome;
    triggers_fired = !triggers_fired;
    triggers_dismissed = !triggers_dismissed;
    facts_per_level = List.rev !facts_per_level;
    span;
  }

let make_span obs =
  match obs with
  | Some parent -> Obs.Span.enter parent "saturate"
  | None -> Obs.Span.root "saturate"

(* Pool lifecycle: one pool per run, reused across passes, torn down even
   when the run raises (fault injection kills runs mid-pass). *)
let with_pool engine f =
  match engine with
  | Indexed -> f None
  | Parallel n ->
      if n < 1 then invalid_arg "Saturate: domain count must be >= 1";
      let pool = Shard.create n in
      Fun.protect
        ~finally:(fun () -> Shard.shutdown pool)
        (fun () -> f (Some pool))

let run ?(policy = Oblivious) ?(engine = Indexed)
    ?(budget = Obs.Budget.unlimited) ?obs ?on_pass ?on_fire rules db =
  let span = make_span obs in
  let level_of : (Fact.t, int) Hashtbl.t = Hashtbl.create 256 in
  Instance.iter (fun f -> Hashtbl.replace level_of f 0) db;
  let init =
    {
      i_idx = Index.of_instance db;
      i_level_of = level_of;
      i_delta = Instance.facts db;
      i_level = 0;
      i_saturated = false;
      i_first_pass = true;
      i_fired = 0;
      i_dismissed = 0;
      i_fpl = [];
    }
  in
  let r =
    with_pool engine (fun pool ->
        exec ~policy ~budget ~span ~on_pass ~on_fire ~pool init rules)
  in
  Obs.Span.exit span;
  r

(** [continue ... rules ~index ~level_of ~level delta] — run the delta
    fixpoint over an {e existing} store: passes enumerate only triggers
    whose body touches [delta] (then the facts those produce, and so on)
    until saturation. The trigger-key table starts empty — sound whenever
    every previously fired trigger has no body fact in the transitive
    delta, which is the incremental-maintenance invariant (a fired
    trigger touching the delta was either never fired or was invalidated
    by the over-delete phase). Bodiless rules are never (re-)considered:
    their single trigger fired on the original first pass. *)
let continue ?(policy = Oblivious) ?(engine = Indexed)
    ?(budget = Obs.Budget.unlimited) ?obs ?on_pass ?on_fire rules ~index
    ~level_of ~level delta =
  let span = make_span obs in
  let init =
    {
      i_idx = index;
      i_level_of = level_of;
      i_delta = delta;
      i_level = level;
      i_saturated = false;
      i_first_pass = false;
      i_fired = 0;
      i_dismissed = 0;
      i_fpl = [];
    }
  in
  let r =
    with_pool engine (fun pool ->
        exec ~policy ~budget ~span ~on_pass ~on_fire ~pool init rules)
  in
  Obs.Span.exit span;
  r

let resume ?(policy = Oblivious) ?(engine = Indexed)
    ?(budget = Obs.Budget.unlimited) ?obs ?on_pass ?on_fire rules
    (s : snapshot) =
  let span = make_span obs in
  let idx = Index.create () in
  List.iter (fun (f, _) -> ignore (Index.insert f idx)) s.snap_facts;
  (* Re-seed the counters to the checkpointed totals, cancelling the
     increments of the rebuild itself, so a resumed run reports the same
     counter values as an uninterrupted one. *)
  let m = Index.metrics idx in
  let names =
    List.sort_uniq String.compare
      (List.map fst s.snap_counters @ List.map fst (Obs.Metrics.counters m))
  in
  List.iter
    (fun name ->
      let saved =
        match List.assoc_opt name s.snap_counters with Some v -> v | None -> 0
      in
      let c = Obs.Metrics.counter m name in
      Obs.Metrics.add c (saved - Obs.Metrics.value c))
    names;
  let level_of : (Fact.t, int) Hashtbl.t =
    Hashtbl.create (List.length s.snap_facts)
  in
  List.iter (fun (f, l) -> Hashtbl.replace level_of f l) s.snap_facts;
  (* The semi-naive delta at a clean boundary is exactly the last level. *)
  let delta =
    List.filter_map
      (fun (f, l) -> if l = s.snap_level then Some f else None)
      s.snap_facts
  in
  let fpl =
    if s.snap_level = 0 then []
    else begin
      let counts = Array.make (s.snap_level + 1) 0 in
      List.iter
        (fun (_, l) ->
          if l >= 1 && l <= s.snap_level then counts.(l) <- counts.(l) + 1)
        s.snap_facts;
      (* internal representation is reversed (newest level first) *)
      List.init s.snap_level (fun i -> counts.(s.snap_level - i))
    end
  in
  let init =
    {
      i_idx = idx;
      i_level_of = level_of;
      i_delta = delta;
      i_level = s.snap_level;
      i_saturated = s.snap_saturated;
      i_first_pass = s.snap_level = 0;
      i_fired = s.snap_triggers_fired;
      i_dismissed = s.snap_triggers_dismissed;
      i_fpl = fpl;
    }
  in
  let r =
    with_pool engine (fun pool ->
        exec ~policy ~budget ~span ~on_pass ~on_fire ~pool init rules)
  in
  Obs.Span.exit span;
  r
