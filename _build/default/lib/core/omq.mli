(** Ontology-mediated queries [Q = (S, Σ, q)] (§3.1). *)

open Relational

type t

(** Raises [Invalid_argument] when the data schema conflicts (on arities)
    with the extended schema. *)
val make : data_schema:Schema.t -> ontology:Tgds.Tgd.t list -> query:Ucq.t -> t

val data_schema : t -> Schema.t
val ontology : t -> Tgds.Tgd.t list
val query : t -> Ucq.t
val arity : t -> int

(** The extended schema [T ⊇ S]. *)
val extended_schema : t -> Schema.t

(** [S = T] (§5.1). *)
val has_full_data_schema : t -> bool

(** The OMQ with [S = T]. *)
val full_data_schema : ontology:Tgds.Tgd.t list -> query:Ucq.t -> t

(** [‖Q‖] — size proxy for fpt bookkeeping. *)
val norm : t -> int

(** Is [db] an S-database? *)
val accepts_database : t -> Instance.t -> bool

val in_guarded : t -> bool
val in_frontier_guarded : t -> bool

(** Membership of the UCQ part in UCQ_k. *)
val in_ucqk : int -> t -> bool

val pp : Format.formatter -> t -> unit
