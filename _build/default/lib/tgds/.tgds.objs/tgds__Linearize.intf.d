lib/tgds/linearize.mli: Fact Instance Relational Term Tgd Ucq
