(** Frozen saturated store; see the interface for the sharing contract. *)

open Relational.Term

type t = {
  idx : Index.t;  (* sealed: no mutating operation escapes this module *)
  saturated : bool;
  universe : ConstSet.t;
}

type view = { snap : t; ridx : Index.t (* Index.reader of snap.idx *) }

let freeze ~saturated ~universe idx = { idx; saturated; universe }
let saturated s = s.saturated
let universe s = s.universe
let size s = Index.size s.idx
let symtab s = Index.symtab s.idx
let view s = { snap = s; ridx = Index.reader s.idx }
let view_metrics v = Index.metrics v.ridx

let ucq ?budget ?obs v q =
  Enumerate.ucq ?budget ?obs ~universe:v.snap.universe v.ridx q
