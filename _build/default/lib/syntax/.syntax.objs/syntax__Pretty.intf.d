lib/syntax/pretty.mli: Atom Cq Fact Format Parser Relational Term Tgds
