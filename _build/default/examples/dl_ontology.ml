(* Ontology-mediated querying with a description-logic TBox.

   The paper (§1) frames its results against the DL-based efficiency
   characterizations for (ELHI⊥, UCQ) — "essentially a fragment of
   guarded TGDs". This example writes a small medical TBox in the DL
   front-end, translates it to TGDs, checks the class it lands in, and
   answers queries over an ABox.

   Run with: dune exec examples/dl_ontology.exe *)

open Relational
open Guarded_core
open Guarded_core.Dl

let v = Term.var
let atom p args = Atom.make p args

let tbox =
  [
    (* every myocarditis is a heart disease *)
    Sub (Atomic "Myocarditis", Atomic "HeartDisease");
    (* heart diseases affect some organ *)
    Sub (Atomic "HeartDisease", Exists (Role "affects", Atomic "Organ"));
    (* whatever is affected by a disease needs monitoring *)
    Range (Role "affects", Atomic "Monitored");
    (* treating doctors are clinicians *)
    Domain (Role "treats", Atomic "Clinician");
    (* treats is a special case of caresFor *)
    Role_sub (Role "treats", Role "caresFor");
    (* a patient with some diagnosed heart disease is a cardiac patient *)
    Sub
      ( Conj (Atomic "Patient", Exists (Role "diagnosedWith", Atomic "HeartDisease")),
        Atomic "CardiacPatient" );
  ]

let abox =
  Instance.of_facts
    [
      assertion "Patient" "mira";
      assertion "Myocarditis" "m1";
      role_assertion "diagnosedWith" "mira" "m1";
      role_assertion "treats" "dr_roy" "mira";
    ]

let () =
  Fmt.pr "== DL front-end: a medical TBox ==@.@.";
  Fmt.pr "TBox:@.  %a@.@." Fmt.(list ~sep:(any "@.  ") Dl.pp_axiom) tbox;
  let sigma = to_tgds tbox in
  Fmt.pr "translated TGDs:@.  %a@.@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    sigma;
  Fmt.pr "in ELH (no inverses): %b@." (in_elh tbox);
  Fmt.pr "frontier-guarded: %b;  single-head (FG_1): %b@."
    (Tgds.Tgd.all_frontier_guarded sigma)
    (List.for_all (Tgds.Tgd.is_fg 1) sigma);
  Fmt.pr "weakly acyclic (chase terminates): %b@.@."
    (Tgds.Termination.weakly_acyclic sigma);

  let omq q = Omq.full_data_schema ~ontology:sigma ~query:(Ucq.of_cq q) in
  let queries =
    [
      ("is mira a cardiac patient?",
       Cq.make [ atom "CardiacPatient" [ Term.const "mira" ] ]);
      ("is something monitored?", Cq.make [ atom "Monitored" [ v "x" ] ]);
      ("does a clinician care for a cardiac patient?",
       Cq.make
         [ atom "Clinician" [ v "d" ]; atom "caresFor" [ v "d"; v "p" ];
           atom "CardiacPatient" [ v "p" ] ]);
      ("is anyone diagnosed with a cold?",
       Cq.make [ atom "diagnosedWith" [ v "p"; v "c" ]; atom "Cold" [ v "c" ] ]);
    ]
  in
  List.iter
    (fun (label, q) ->
      let r = Omq_eval.certain (omq q) abox [] in
      Fmt.pr "%-46s %b%s@." label r.Omq_eval.holds
        (if r.Omq_eval.exact then "" else " (bounded)"))
    queries;
  Fmt.pr "@.done.@."
