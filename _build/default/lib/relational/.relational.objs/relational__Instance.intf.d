lib/relational/instance.mli: Atom Fact Format Qgraph Schema Term
