(** Streaming answer enumeration over an indexed fact store.

    The generate-and-test evaluation of a non-Boolean UCQ — materialize
    every [|adom|^arity] candidate tuple and run a full entailment check
    on each — is asymptotically wrong for a system meant to serve answer
    workloads: its cost scales with the domain raised to the query arity,
    not with the output. This module enumerates the answers directly by
    walking the {!Index} posting lists (the worst-case-optimal-join /
    leapfrog line of engines), so the cost scales with the number of
    matches actually found:

    - per disjunct, a backtracking search expands the pending atom with
      the fewest index candidates {e among the atoms still containing an
      unbound answer variable} — answer variables bind as early as
      possible;
    - the moment every answer variable occurring in atoms is bound, the
      remaining (purely existential) atoms are checked for {e
      satisfiability} with {!Joiner.exists} instead of being enumerated —
      one witness is enough, so a tuple's cost never depends on how many
      homomorphisms support it;
    - duplicate answer bindings are pruned {e during} the search (a
      subtree whose answer variables are all bound to an
      already-emitted tuple is cut), and answers are deduplicated across
      disjuncts into one canonical sorted set;
    - answers are restricted to [universe] (certain-answer semantics:
      tuples range over the active domain of the {e input} database, so
      labelled nulls invented by a chase are never answers — nulls are
      filtered from [universe] on entry);
    - answer variables that occur in no atom of a disjunct range over
      the whole [universe], matching the generate-and-test semantics.

    Observability: [?obs] gains one child span per disjunct (attributes:
    disjunct index, candidates scanned, answers emitted). [?budget] cuts
    the enumeration gracefully mid-stream: the fact axis bounds the
    number of {e answers} emitted, the deadline axis is checked at every
    search node, and a violated budget returns the prefix enumerated so
    far with a [Partial] outcome — the prefix is always a subset of the
    exact answer set. *)

open Relational
open Relational.Term

type result = {
  answers : const list list;
      (** the canonical answer set: sorted, duplicate-free, null-free *)
  outcome : Obs.Budget.outcome;
      (** [Complete], or [Partial v] when [budget] cut the enumeration *)
}

(** [cq ~universe idx q] — the answers of a single conjunctive query over
    the store. *)
val cq :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  universe:ConstSet.t ->
  Index.t ->
  Cq.t ->
  result

(** [ucq ~universe idx u] — the union of the disjuncts' answers,
    deduplicated into one canonical sorted set. The budget spans the
    whole union (the fact axis counts distinct answers across
    disjuncts). *)
val ucq :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  universe:ConstSet.t ->
  Index.t ->
  Ucq.t ->
  result
