
a(X) -> s(X,Y).
q() :- s(U,W).
