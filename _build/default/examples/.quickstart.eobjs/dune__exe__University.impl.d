examples/university.ml: Atom Cq Fact Fmt Guarded_core Instance List Omq Omq_eval Relational Term Tgds Ucq Workload
