(** Closed-world CQS evaluation (§3.2) with constraint-aware semantic
    optimization — the executable content of the tractable direction of
    Theorems 5.7/5.12. *)

open Relational

(** [eval s db c̄] — direct evaluation (the input is promised to satisfy
    the constraints; see {!Cqs.admissible}). *)
val eval : Cqs.t -> Instance.t -> Term.const list -> bool

(** Same, through the Proposition 2.1 evaluator. *)
val eval_tw : Cqs.t -> Instance.t -> Term.const list -> bool

(** Replace the query by a Σ-equivalent minimized UCQ. *)
val optimize : Cqs.t -> Cqs.t

(** Minimize under Σ, then evaluate with the treewidth-aware engine. *)
val eval_optimized : Cqs.t -> Instance.t -> Term.const list -> bool

(** All answers (of the optionally optimized query). *)
val answers : ?optimize_first:bool -> Cqs.t -> Instance.t -> Term.const list list
