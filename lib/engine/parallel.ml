(** Deterministic parallel trigger collection; see the interface for the
    determinism argument. Workers only ever {e read} the index (through
    per-shard {!Index.reader} views) and never touch the probe hook; all
    observable effects — probe hits, dedup, policy checks, firing — happen
    on the calling domain during the merge walk, in the exact order the
    sequential indexed engine would produce them. *)

open Relational

type join = { rule : int; atoms : Atom.t list; delta : Fact.t list }

type job =
  | Bodiless of int
      (** rule index; considered once with the empty binding *)
  | Join of join
      (** [atoms] is the pivot-first reordered body; [delta] the facts the
          pivot is matched against, in canonical (firing) order *)

let now = Unix.gettimeofday

let collect ~pool ~index jobs ~consider =
  let n = Shard.size pool in
  let joins =
    Array.of_list
      (List.filter_map (function Join j -> Some j | Bodiless _ -> None) jobs)
  in
  let m = Array.length joins in
  let deltas = Array.map (fun j -> Array.of_list j.delta) joins in
  (* results.(s).(k): bindings shard [s] found on its slice of join [k],
     in discovery order *)
  let results = Array.make_matrix n m [] in
  let readers = Array.init n (fun _ -> Index.reader index) in
  let t0 = now () in
  let slice_task s () =
    let rdr = readers.(s) in
    for k = 0 to m - 1 do
      let d = deltas.(k) in
      let len = Array.length d in
      (* contiguous slice [s·len/n, (s+1)·len/n): the concatenation over
         shards is exactly the canonical delta order *)
      let lo = s * len / n and hi = (s + 1) * len / n in
      if hi > lo then begin
        let slice = Array.to_list (Array.sub d lo (hi - lo)) in
        results.(s).(k) <-
          List.rev
            (Joiner.fold ~probe:false ~delta:slice joins.(k).atoms rdr
               (fun b acc -> b :: acc)
               [])
      end
    done
  in
  Shard.run pool (Array.init n slice_task);
  let t1 = now () in
  let main_m = Index.metrics index in
  (* shard-local counters merge in shard order; the totals equal the
     sequential engine's because slicing partitions each join's per-fact
     work exactly *)
  Array.iter
    (fun rdr -> Obs.Metrics.absorb ~into:main_m (Index.metrics rdr))
    readers;
  Array.iter
    (fun row ->
      let matched = Array.fold_left (fun a l -> a + List.length l) 0 row in
      Obs.Metrics.observe main_m "parallel.shard_matched" (float_of_int matched))
    results;
  (* canonical merge: jobs in rule-major order; within a join, shard 0's
     bindings first, then shard 1's, … — i.e. the sequential engine's
     discovery order, so dedup, policy checks and fresh-null assignment
     downstream are byte-identical for every domain count *)
  let k = ref 0 in
  List.iter
    (function
      | Bodiless i -> consider i Term.VarMap.empty
      | Join { rule; _ } ->
          (* one probe hit per join, mirroring the sequential engine's
             single [Joiner.fold] call for this (rule, pivot) pair *)
          Obs.Probe.hit "engine.join";
          for s = 0 to n - 1 do
            List.iter (fun b -> consider rule b) results.(s).(!k)
          done;
          incr k)
    jobs;
  Obs.Metrics.observe main_m "parallel.match_s" (t1 -. t0);
  Obs.Metrics.observe main_m "parallel.merge_s" (now () -. t1)
