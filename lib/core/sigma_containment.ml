(** Containment and equivalence of CQSs (Proposition 4.5) and of
    full-data-schema OMQs (Proposition 5.5).

    [S1 = (Σ,q1) ⊆ S2 = (Σ,q2)] iff for each disjunct [p1 ∈ q1] there is a
    disjunct [p2 ∈ q2] with [x̄ ∈ p2(chase(p1,Σ))]. The chase of a canonical
    database may be infinite; the check runs a level-bounded chase and, when
    that is inconclusive, falls back to the finite witness of Theorem 6.7:
    a finite model refuting the match proves non-containment. Verdicts are
    three-valued; [Unknown] can always be eliminated by raising the
    bounds on the workloads shipped here. *)

open Relational
module Tgd = Tgds.Tgd
module Chase = Tgds.Chase
module VarSet = Term.VarSet

type verdict = Holds | Fails | Unknown

let verdict_and a b =
  match (a, b) with
  | Fails, _ | _, Fails -> Fails
  | Holds, Holds -> Holds
  | Unknown, _ | _, Unknown -> Unknown

let verdict_or a b =
  match (a, b) with
  | Holds, _ | _, Holds -> Holds
  | Fails, Fails -> Fails
  | Unknown, _ | _, Unknown -> Unknown

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Fails -> Fmt.string ppf "fails"
  | Unknown -> Fmt.string ppf "unknown"

(** [cq_step ?max_level sigma p1 p2] — one Proposition 4.5 check:
    [x̄ ∈ p2(chase(D[p1], Σ))]. *)
let cq_step ?(max_level = 8) ?(max_facts = 60_000) sigma (p1 : Cq.t) (p2 : Cq.t) =
  if Cq.arity p1 <> Cq.arity p2 then Fails
  else
    let db = Cq.canonical_db p1 in
    let target = Cq.frozen_answer p1 in
    let r = Chase.run ~max_level ~max_facts sigma db in
    if Engine.Joiner.entails_cq (Chase.index r) p2 target then Holds
    else if Chase.saturated r then Fails
    else
      (* the bounded chase is inconclusive: refute on a finite model *)
      match
        Finite_witness.build ~n:(VarSet.cardinal (Cq.vars p2)) sigma db
      with
      | m -> if Cq.entails m p2 target then Unknown else Fails
      | exception Failure _ -> Unknown

(** [contained ?max_level sigma q1 q2] — [q1 ⊆_Σ q2] for UCQs
    (Proposition 4.5). *)
let contained ?max_level ?max_facts sigma (q1 : Ucq.t) (q2 : Ucq.t) =
  List.fold_left
    (fun acc p1 ->
      verdict_and acc
        (List.fold_left
           (fun acc p2 -> verdict_or acc (cq_step ?max_level ?max_facts sigma p1 p2))
           Fails (Ucq.disjuncts q2)))
    Holds (Ucq.disjuncts q1)

(** [equivalent sigma q1 q2] — [q1 ≡_Σ q2]. *)
let equivalent ?max_level ?max_facts sigma q1 q2 =
  verdict_and
    (contained ?max_level ?max_facts sigma q1 q2)
    (contained ?max_level ?max_facts sigma q2 q1)

let cq_contained ?max_level ?max_facts sigma p1 p2 =
  contained ?max_level ?max_facts sigma (Ucq.of_cq p1) (Ucq.of_cq p2)

let cq_equivalent ?max_level ?max_facts sigma p1 p2 =
  equivalent ?max_level ?max_facts sigma (Ucq.of_cq p1) (Ucq.of_cq p2)

(* ------------------------------------------------------------------ *)
(* Semantic minimization under constraints                              *)
(* ------------------------------------------------------------------ *)

(* Minimization needs only certified equivalences, so it treats Unknown as
   "do not simplify". *)

let try_drop_atom sigma (q : Cq.t) =
  let atoms = Cq.atoms q in
  List.find_map
    (fun a ->
      let rest = List.filter (fun a' -> not (Atom.equal a a')) atoms in
      if rest = [] then None
      else
        let candidate = Cq.make ~answer:(Cq.answer q) rest in
        if
          List.for_all (fun x -> VarSet.mem x (Cq.vars candidate)) (Cq.answer q)
          && cq_contained sigma candidate q = Holds
          (* q ⊆ candidate holds syntactically: candidate ⊆ q's atom set *)
        then Some candidate
        else None)
    atoms

let try_contract sigma (q : Cq.t) =
  List.find_map
    (fun c ->
      if VarSet.cardinal (Cq.vars c) < VarSet.cardinal (Cq.vars q) then
        (* c ⊆ q holds via the quotient homomorphism; need q ⊆_Σ c *)
        if cq_contained sigma q c = Holds then Some c else None
      else None)
    (Cq.proper_contractions q)

(** [minimize sigma q] — a greedy Σ-equivalent minimization of [q]
    (Lemma 7.2's "CQ with a minimum number of variables", computed greedily:
    alternate dropping redundant atoms and contracting variables while
    Σ-equivalence is certified). *)
let rec minimize sigma (q : Cq.t) =
  match try_drop_atom sigma q with
  | Some q' -> minimize sigma q'
  | None -> (
      match try_contract sigma q with
      | Some q' -> minimize sigma q'
      | None -> Cq.normalize q)

(** [minimize_ucq sigma u] — minimize every disjunct, then drop disjuncts
    Σ-contained in the others. *)
let minimize_ucq sigma (u : Ucq.t) =
  let ds = List.map (minimize sigma) (Ucq.disjuncts u) |> List.sort_uniq Cq.compare in
  let rec keep acc = function
    | [] -> List.rev acc
    | q :: rest ->
        let others = acc @ rest in
        if
          others <> []
          && List.exists (fun q' -> cq_contained sigma q q' = Holds) others
        then keep acc rest
        else keep (q :: acc) rest
  in
  Ucq.make (keep [] ds)
