#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build, tests.
# Run from the repository root:  sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (stats JSON round-trip)"
dune exec bench/main.exe -- smoke
rm -f BENCH_smoke.json

echo "== OK"
