lib/core/workload.ml: Atom Cq Fact Fun Instance List Omq Printf Qgraph Random Relational Term Tgds Ucq
