(** Hierarchical timed spans.

    A span is a named interval with JSON attributes and ordered child
    spans — the run report's skeleton. Spans are cheap (two clock reads)
    and never raise; an unclosed span reports the time elapsed so far.

    The clock is injectable at the root (wall-clock seconds; defaults to
    [Unix.gettimeofday]) and inherited by children, so tests can drive
    spans deterministically. *)

type t

(** [root ?clock name] — a started root span. *)
val root : ?clock:(unit -> float) -> string -> t

(** [enter parent name] — start a child span (appended in order). *)
val enter : t -> string -> t

(** Stop the span (idempotent; children left open stay open). *)
val exit : t -> unit

(** [with_span parent name f] — run [f] inside a fresh child span, closing
    it on return or exception. *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** [timed parent name f] — {!with_span} when a parent is given, bare [f]
    otherwise (the common optional-instrumentation idiom). *)
val timed : t option -> string -> (unit -> 'a) -> 'a

(** [set span key v] — attach (or overwrite) an attribute. *)
val set : t -> string -> Json.t -> unit

val name : t -> string

(** Seconds from start to {!exit}, or to now when still open. *)
val elapsed : t -> float

(** Child spans, in creation order. *)
val children : t -> t list

(** Attribute lookup. *)
val attr : t -> string -> Json.t option

(** [{"name"; "s"; <attrs...>; "children"?}] — children omitted when
    empty; attributes keep insertion order. *)
val to_json : t -> Json.t
