(** Growable vector of native ints over a flat [Bigarray] backing.

    The store's workhorse container: columns, posting lists and
    free-lists are all [Vec.t]s. The backing array lives outside the
    OCaml heap, so a store of [n] facts costs O(n) {e words} of major
    heap for the vector records only — the data plane never contributes
    to GC marking. Growth is by doubling ({!push} is amortised O(1));
    {!remove_value} is the one O(n) operation, mirroring the posting
    list semantics the chase needs (order-preserving deletion).

    Not thread-safe for writers; concurrent readers are fine, which is
    exactly the parallel engine's frozen-index discipline. *)

type t

(** [create ?capacity ()] — an empty vector. *)
val create : ?capacity:int -> unit -> t

(** Number of elements. *)
val length : t -> int

(** Allocated slots (≥ {!length}); exposed so capacity-leak regressions
    are testable. *)
val capacity : t -> int

(** [get v i] / [set v i x] — bounds-checked element access. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** Append, doubling the backing array when full. *)
val push : t -> int -> unit

(** Remove and return the last element. Raises [Invalid_argument] when
    empty. *)
val pop : t -> int

(** [remove_value v x] — delete the first occurrence of [x], shifting
    the suffix left (order-preserving); [false] when absent. *)
val remove_value : t -> int -> bool

(** [iter f v] — in append order. *)
val iter : (int -> unit) -> t -> unit

(** [to_list v] — elements in append order. *)
val to_list : t -> int list
