(* Randomized cross-validation of the indexed semi-naive saturation engine
   (lib/engine) against the naive re-enumerating chase: identical s-levels
   (Lemma A.1 canonicity is preserved by the delta-driven evaluation),
   identical certain answers, budget-cut prefixes, saturation idempotence,
   and joiner/index unit properties. Generators live in Generators. *)

open Relational
open Relational.Term
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Generators.v
let atom = Generators.atom
let fact = Generators.fact
let tgd = Generators.tgd
let arb_sigma_db = Generators.arb_sigma_db
let queries = Generators.queries

(* ------------------------------------------------------------------ *)
(* Level-wise equivalence: chase^ℓ_s agrees level by level              *)
(* ------------------------------------------------------------------ *)

let max_level = 6

let levels_agree ~policy (sigma, db) =
  let naive = Chase.run ~engine:`Naive ~policy ~max_level ~max_facts:5000 sigma db in
  let indexed =
    Chase.run ~engine:`Indexed ~policy ~max_level ~max_facts:5000 sigma db
  in
  Chase.saturated naive = Chase.saturated indexed
  && List.for_all
       (fun l ->
         Instance.size (Chase.up_to_level naive l)
         = Instance.size (Chase.up_to_level indexed l))
       (List.init (max_level + 1) Fun.id)

let prop_levels_oblivious =
  QCheck.Test.make ~name:"indexed ≍ naive per level (oblivious)" ~count:200
    arb_sigma_db
    (levels_agree ~policy:Chase.Oblivious)

let prop_levels_restricted =
  QCheck.Test.make ~name:"indexed ≍ naive per level (restricted)" ~count:200
    arb_sigma_db
    (levels_agree ~policy:Chase.Restricted)

(* ------------------------------------------------------------------ *)
(* Certain answers agree under both engines                             *)
(* ------------------------------------------------------------------ *)

let prop_certain_agrees =
  QCheck.Test.make ~name:"certain answers agree across engines" ~count:120
    arb_sigma_db (fun (sigma, db) ->
      List.for_all
        (fun q ->
          let vn, en = Chase.certain ~engine:`Naive ~max_level:8 sigma db q [] in
          let vi, ei = Chase.certain ~engine:`Indexed ~max_level:8 sigma db q [] in
          en = ei && ((not en) || vn = vi))
        queries)

(* ------------------------------------------------------------------ *)
(* Idempotence: saturating an already-saturated instance is a no-op     *)
(* ------------------------------------------------------------------ *)

(* Restricted re-saturation dismisses every trigger of a saturated
   instance (its head is witnessed), whatever policy produced it. *)
let prop_resaturate_restricted_noop =
  QCheck.Test.make ~name:"restricted re-saturation of a saturated chase is a no-op"
    ~count:150 arb_sigma_db (fun (sigma, db) ->
      let r = Chase.run ~max_level:6 ~max_facts:2000 sigma db in
      (not (Chase.saturated r))
      ||
      let r2 = Chase.run ~policy:Chase.Restricted sigma (Chase.instance r) in
      Chase.saturated r2
      && Chase.max_level r2 = 0
      && Instance.size (Chase.instance r2) = Instance.size (Chase.instance r))

(* Oblivious re-saturation is only a no-op without existentials (a fresh
   run re-fires existential triggers with fresh nulls); on the full pool
   every re-fired head is already present, so the instance is unchanged. *)
let prop_resaturate_oblivious_full_noop =
  QCheck.Test.make
    ~name:"oblivious re-saturation is a no-op on full programs" ~count:150
    Generators.arb_full_sigma_db (fun (sigma, db) ->
      let r = Chase.run sigma db in
      Chase.saturated r
      &&
      let r2 = Chase.run ~policy:Chase.Oblivious sigma (Chase.instance r) in
      Chase.saturated r2
      && Instance.equal (Chase.instance r2) (Chase.instance r))

(* ------------------------------------------------------------------ *)
(* Budgets: a level-budgeted run is the unbudgeted run truncated        *)
(* ------------------------------------------------------------------ *)

let prop_budget_level_prefix =
  QCheck.Test.make
    ~name:"level-budgeted chase = unbudgeted chase sliced at the budget"
    ~count:120 arb_sigma_db (fun (sigma, db) ->
      let free = Chase.run ~max_level:6 ~max_facts:5000 sigma db in
      let fpl_free = Chase.facts_per_level free in
      (* cumulative per-level sizes are monotone *)
      let cumulative =
        List.map
          (fun l -> Instance.size (Chase.up_to_level free l))
          (List.init 7 Fun.id)
      in
      let monotone =
        List.for_all2 (fun a b -> a <= b)
          (List.filteri (fun i _ -> i < 6) cumulative)
          (List.tl cumulative)
      in
      monotone
      && List.for_all
           (fun k ->
             let b =
               Chase.run
                 ~budget:(Obs.Budget.create ~max_levels:k ())
                 ~max_facts:5000 sigma db
             in
             let fpl_b = Chase.facts_per_level b in
             let expect =
               List.filteri (fun i _ -> i < k) fpl_free
             in
             Chase.max_level b <= k
             && fpl_b = expect
             && Instance.size (Chase.instance b)
                = Instance.size (Chase.up_to_level free (Chase.max_level b)))
           [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Joiner ≡ Homomorphism.fold_homs on random instances                  *)
(* ------------------------------------------------------------------ *)

let sorted_homs fold =
  fold (fun b acc -> VarMap.bindings b :: acc) [] |> List.sort Stdlib.compare

let prop_joiner_matches_fold_homs =
  QCheck.Test.make ~name:"Joiner.fold enumerates the same homomorphisms"
    ~count:200 arb_sigma_db (fun (sigma, db) ->
      let inst = Chase.instance (Chase.run ~max_level:3 ~max_facts:500 sigma db) in
      let idx = Engine.Index.of_instance inst in
      List.for_all
        (fun q ->
          let body = Cq.atoms (List.hd (Ucq.disjuncts q)) in
          sorted_homs (fun f acc -> Homomorphism.fold_homs body inst f acc)
          = sorted_homs (fun f acc -> Engine.Joiner.fold body idx f acc))
        queries)

(* Differential: answer *sets* (not just counts) of CQ enumeration via the
   joiner agree with the naive fold_homs evaluation. *)
let prop_answer_sets_agree =
  QCheck.Test.make ~name:"Joiner.answers_cq = fold_homs answer set" ~count:200
    (QCheck.make
       ~print:(fun ((s, db), cq) ->
         Fmt.str "%s q=%a" (Generators.print_sigma_db (s, db)) Cq.pp cq)
       QCheck.Gen.(pair (pair Generators.gen_sigma Generators.gen_db) Generators.gen_cq))
    (fun ((sigma, db), cq) ->
      let inst = Chase.instance (Chase.run ~max_level:3 ~max_facts:500 sigma db) in
      let idx = Engine.Index.of_instance inst in
      let via_joiner = Engine.Joiner.answers_cq idx cq in
      let naive =
        Homomorphism.fold_homs (Cq.atoms cq) inst
          (fun b acc ->
            List.map (fun x -> VarMap.find x b) (Cq.answer cq) :: acc)
          []
        |> List.sort_uniq Stdlib.compare
      in
      via_joiner = naive)

(* ------------------------------------------------------------------ *)
(* Enumerate ≡ the seed generate-and-test answers                       *)
(* ------------------------------------------------------------------ *)

(* The seed implementation of Omq_eval.answers, kept verbatim as the
   oracle: entailment-test every |adom|^arity candidate tuple over the
   chased index. *)
let oracle_answers idx db q =
  let dom = Term.ConstSet.elements (Instance.dom db) in
  let rec tuples n =
    if n = 0 then [ [] ]
    else
      List.concat_map (fun t -> List.map (fun c -> c :: t) dom) (tuples (n - 1))
  in
  List.filter (fun c -> Engine.Joiner.entails_ucq idx q c)
    (tuples (Ucq.arity q))
  |> List.sort_uniq Stdlib.compare

let arb_enum_case =
  QCheck.make
    ~print:(fun (((sigma, db), q), engine) ->
      Fmt.str "%s q=%a engine=%s"
        (Generators.print_sigma_db (sigma, db))
        Ucq.pp q
        (Generators.engine_to_string engine))
    QCheck.Gen.(
      pair
        (pair (pair Generators.gen_sigma Generators.gen_db) Generators.gen_ucq)
        Generators.gen_engine)

let prop_enumerate_matches_generate_and_test =
  QCheck.Test.make
    ~name:"Enumerate.ucq = generate-and-test oracle (arity 0-3, all engines)"
    ~count:250 arb_enum_case
    (fun (((sigma, db), q), engine) ->
      let r = Chase.run ~engine ~max_level:4 ~max_facts:400 sigma db in
      let idx = Chase.index r in
      let enum =
        (Engine.Enumerate.ucq ~universe:(Instance.dom db) idx q)
          .Engine.Enumerate.answers
      in
      enum = oracle_answers idx db q)

(* A facts budget cuts the stream gracefully: the prefix is a subset of
   the exact set, and a Complete outcome means the whole set. *)
let prop_enumerate_budget_prefix =
  QCheck.Test.make ~name:"budgeted enumeration is a prefix of the answer set"
    ~count:150
    (QCheck.make
       ~print:(fun ((((s, db), q), e), k) ->
         Fmt.str "%s q=%a engine=%s k=%d"
           (Generators.print_sigma_db (s, db))
           Ucq.pp q
           (Generators.engine_to_string e)
           k)
       QCheck.Gen.(
         pair
           (pair
              (pair (pair Generators.gen_sigma Generators.gen_db)
                 Generators.gen_ucq)
              Generators.gen_engine)
           (int_range 0 5)))
    (fun ((((sigma, db), q), engine), k) ->
      let r = Chase.run ~engine ~max_level:4 ~max_facts:400 sigma db in
      let idx = Chase.index r in
      let universe = Instance.dom db in
      let exact = (Engine.Enumerate.ucq ~universe idx q).Engine.Enumerate.answers in
      let budget = Obs.Budget.create ~max_facts:k () in
      let res = Engine.Enumerate.ucq ~budget ~universe idx q in
      List.for_all (fun t -> List.mem t exact) res.Engine.Enumerate.answers
      &&
      match res.Engine.Enumerate.outcome with
      | Obs.Budget.Complete -> res.Engine.Enumerate.answers = exact
      | Obs.Budget.Partial _ ->
          List.length res.Engine.Enumerate.answers <= k + 1)

(* Unit corners of the enumerator: null filtering, free answer
   variables, Boolean queries, cross-disjunct dedup. *)
let test_enumerate_corners () =
  let sigma = [ tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ] ] in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "B" [ "b" ] ] in
  let r = Chase.run ~max_level:2 sigma db in
  let idx = Chase.index r in
  let universe = Instance.dom db in
  let answers q =
    (Engine.Enumerate.ucq ~universe idx q).Engine.Enumerate.answers
  in
  (* S(a, n) holds with an invented null n: x=a is an answer of q(x) :-
     S(x,y), but no null ever appears in an answer position *)
  let q1 = Ucq.of_cq (Cq.make ~answer:[ "x" ] [ atom "S" [ v "x"; v "y" ] ]) in
  Alcotest.(check (list (list string)))
    "nulls never surface" [ [ "a" ] ]
    (List.map (List.map (Fmt.str "%a" Term.pp_const)) (answers q1));
  (* a free answer variable ranges over the whole active domain *)
  let q2 = Ucq.of_cq (Cq.make ~answer:[ "z" ] [ atom "A" [ v "x" ] ]) in
  check_int "free variable expands over adom" 2 (List.length (answers q2));
  (* Boolean query: [[]] iff it holds *)
  let q3 = Ucq.of_cq (Cq.make [ atom "S" [ v "x"; v "y" ] ]) in
  check "boolean true is [[]]" true (answers q3 = [ [] ]);
  let q4 = Ucq.of_cq (Cq.make [ atom "T" [ v "x"; v "y" ] ]) in
  check "boolean false is []" true (answers q4 = []);
  (* identical disjuncts dedup into one canonical set *)
  let d = Cq.make ~answer:[ "x" ] [ atom "A" [ v "x" ] ] in
  check "disjuncts dedup" true
    (answers (Ucq.make [ d; d ]) = answers (Ucq.of_cq d))

(* ------------------------------------------------------------------ *)
(* Index unit properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_index_roundtrip =
  QCheck.Test.make ~name:"Index.of_instance/to_instance roundtrip" ~count:200
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp) Generators.gen_db) (fun db ->
      Instance.equal db (Engine.Index.to_instance (Engine.Index.of_instance db)))

let test_index_postings () =
  let idx =
    Engine.Index.of_instance
      (Instance.of_facts
         [ fact "S" [ "a"; "b" ]; fact "S" [ "a"; "c" ]; fact "S" [ "b"; "c" ] ])
  in
  check_int "bucket (S,0,a)" 2 (Engine.Index.count_at idx "S" 0 (Named "a"));
  check_int "bucket (S,1,c)" 2 (Engine.Index.count_at idx "S" 1 (Named "c"));
  check_int "relation size" 3 (Engine.Index.count_of idx "S");
  check "duplicate insert rejected" false
    (Engine.Index.insert (fact "S" [ "a"; "b" ]) idx);
  check_int "size unchanged" 3 (Engine.Index.size idx)

let test_delta_restriction () =
  (* with ~delta, only matches using a delta fact for the first atom *)
  let inst =
    Instance.of_facts [ fact "A" [ "a" ]; fact "A" [ "b" ]; fact "S" [ "a"; "b" ] ]
  in
  let idx = Engine.Index.of_instance inst in
  let body = [ atom "A" [ v "x" ]; atom "S" [ v "x"; v "y" ] ] in
  let all = Engine.Joiner.all body idx in
  check_int "unrestricted: one hom" 1 (List.length all);
  let none =
    Engine.Joiner.fold ~delta:[ fact "A" [ "b" ] ] body idx
      (fun _ n -> n + 1)
      0
  in
  check_int "delta A(b): no hom" 0 none;
  let one =
    Engine.Joiner.fold ~delta:[ fact "A" [ "a" ] ] body idx
      (fun _ n -> n + 1)
      0
  in
  check_int "delta A(a): one hom" 1 one

let test_stats_reported () =
  let sigma =
    [ tgd [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ] ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "a"; "b" ] ] in
  let r = Chase.run ~engine:`Indexed sigma db in
  match Chase.engine_result r with
  | None -> Alcotest.fail "indexed run must report an engine result"
  | Some s ->
      check_int "one trigger" 1 s.Engine.Saturate.triggers_fired;
      check "probes counted" true (Engine.Index.probes (Chase.index r) > 0);
      check_int "one fact at level 1" 1 (List.hd s.Engine.Saturate.facts_per_level);
      check "complete outcome" true (Chase.outcome r = Obs.Budget.Complete);
      check "joiner candidates filed" true
        (Obs.Metrics.count
           (Engine.Index.metrics (Chase.index r))
           "joiner.candidates"
        > 0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_levels_oblivious;
      prop_levels_restricted;
      prop_certain_agrees;
      prop_resaturate_restricted_noop;
      prop_resaturate_oblivious_full_noop;
      prop_budget_level_prefix;
      prop_joiner_matches_fold_homs;
      prop_answer_sets_agree;
      prop_enumerate_matches_generate_and_test;
      prop_enumerate_budget_prefix;
      prop_index_roundtrip;
    ]

let () =
  Alcotest.run "engine"
    [
      ( "units",
        [
          Alcotest.test_case "index postings" `Quick test_index_postings;
          Alcotest.test_case "delta restriction" `Quick test_delta_restriction;
          Alcotest.test_case "saturation stats" `Quick test_stats_reported;
          Alcotest.test_case "enumerate corners" `Quick test_enumerate_corners;
        ] );
      ("properties", qcheck_tests);
    ]
