(* Shared qcheck generators for the property-test suites: random guarded
   TGD programs over the schema {A/1, B/1, S/2, T/2}, random small
   instances, and random (U)CQs. Extracted from test_engine/test_tgds so
   every suite draws from the same distributions. *)

open Relational
open Relational.Term
module Tgd = Tgds.Tgd

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

(* ------------------------------------------------------------------ *)
(* Guarded TGD pools                                                    *)
(* ------------------------------------------------------------------ *)

let tgd_pool =
  [|
    (* linear, existential *)
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    (* linear, frontier only *)
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
    (* guarded join *)
    tgd [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    (* existential chain *)
    tgd [ atom "B" [ v "x" ] ] [ atom "T" [ v "x"; v "z" ] ];
    (* reflexive guard *)
    tgd [ atom "S" [ v "x"; v "x" ] ] [ atom "B" [ v "x" ] ];
    (* two-atom guarded body across predicates *)
    tgd [ atom "T" [ v "x"; v "y" ]; atom "B" [ v "x" ] ] [ atom "S" [ v "y"; v "x" ] ];
    (* multi-atom head *)
    tgd [ atom "T" [ v "x"; v "y" ] ] [ atom "A" [ v "x" ]; atom "B" [ v "y" ] ];
  |]

(* The existential-free members of [tgd_pool]: their oblivious chase
   always terminates, and re-saturating its result is a strict no-op. *)
let full_pool = Array.of_list (List.filter Tgd.is_full (Array.to_list tgd_pool))

let gen_from_pool pool =
  QCheck.Gen.(
    map
      (List.map (Array.get pool))
      (list_size (int_range 1 4) (int_range 0 (Array.length pool - 1))))

let gen_sigma = gen_from_pool tgd_pool
let gen_full_sigma = gen_from_pool full_pool

(* ------------------------------------------------------------------ *)
(* Instances                                                            *)
(* ------------------------------------------------------------------ *)

let gen_db =
  QCheck.Gen.(
    let gc = map (List.nth [ "a"; "b"; "c" ]) (int_range 0 2) in
    let gen_fact =
      let* p = int_range 0 3 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc in
          return (fact "B" [ a ])
      | 2 ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "T" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 5) gen_fact))

let print_sigma_db (s, db) =
  Fmt.str "Σ=%a D=%a" (Fmt.list Tgd.pp) s Instance.pp db

let arb_sigma_db =
  QCheck.make ~print:print_sigma_db QCheck.Gen.(pair gen_sigma gen_db)

let arb_full_sigma_db =
  QCheck.make ~print:print_sigma_db QCheck.Gen.(pair gen_full_sigma gen_db)

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

(* Fixed Boolean probes over the pool's schema. *)
let queries =
  [
    bool_q [ atom "A" [ v "u" ] ];
    bool_q [ atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ] ];
    bool_q [ atom "T" [ v "u"; v "w" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "B" [ v "u" ] ];
    bool_q [ atom "S" [ v "u"; v "w" ]; atom "T" [ v "w"; v "z" ] ];
  ]

let gen_query_atom =
  QCheck.Gen.(
    let vars = [ "u"; "w"; "t" ] in
    let gv = map (List.nth vars) (int_range 0 2) in
    let* p = int_range 0 3 in
    match p with
    | 0 ->
        let* a = gv in
        return (atom "A" [ v a ])
    | 1 ->
        let* a = gv in
        return (atom "B" [ v a ])
    | 2 ->
        let* a = gv and* b = gv in
        return (atom "S" [ v a; v b ])
    | _ ->
        let* a = gv and* b = gv in
        return (atom "T" [ v a; v b ]))

(* Random CQ with 0–2 answer variables drawn from the atoms' variables. *)
let gen_cq =
  QCheck.Gen.(
    let* atoms = list_size (int_range 1 3) gen_query_atom in
    let* n_ans = int_range 0 2 in
    let present =
      List.filter
        (fun x -> List.exists (fun a -> VarSet.mem x (Atom.vars a)) atoms)
        [ "u"; "w"; "t" ]
    in
    let answer = List.filteri (fun i _ -> i < n_ans) present in
    return (Cq.make ~answer atoms))

(* ------------------------------------------------------------------ *)
(* Linear fragments (used by the rewriting/ground-closure suites)       *)
(* ------------------------------------------------------------------ *)

let gen_linear_sigma =
  QCheck.Gen.(
    let gen_tgd =
      let* b = int_range 0 2 in
      match b with
      | 0 -> return (tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ])
      | 1 -> return (tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "T" [ v "y"; v "z" ] ])
      | _ -> return (tgd [ atom "T" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ])
    in
    list_size (int_range 1 3) gen_tgd)

let gen_small_db =
  QCheck.Gen.(
    let consts = [ "a"; "b" ] in
    let gc = map (List.nth consts) (int_range 0 1) in
    let gen_fact =
      let* p = int_range 0 2 in
      match p with
      | 0 ->
          let* a = gc in
          return (fact "A" [ a ])
      | 1 ->
          let* a = gc and* b = gc in
          return (fact "S" [ a; b ])
      | _ ->
          let* a = gc and* b = gc in
          return (fact "T" [ a; b ])
    in
    map Instance.of_facts (list_size (int_range 1 4) gen_fact))

let gen_small_q =
  QCheck.Gen.(
    map (fun atoms -> bool_q atoms) (list_size (int_range 1 3) gen_query_atom))
