(** Finite witnesses for strong finite controllability (Definition 6.5,
    Theorem 6.7), built by type-blocking the guarded chase with
    round-robin representative pools (DESIGN.md §5.2): always a finite
    model of [db ∧ Σ]; rewired chains close into cycles of length [n+2],
    longer than any ≤ n-variable query can trace. *)

open Relational

(** [build ?blocking_depth ?max_facts ~n sigma db] — the blocked chase;
    raises [Failure] when the fact budget is exhausted. *)
val build :
  ?blocking_depth:int -> ?max_facts:int -> n:int -> Tgds.Tgd.t list -> Instance.t -> Instance.t

(** Sanity check: [m ⊇ db] and [m ⊨ sigma]. *)
val verify : Tgds.Tgd.t list -> Instance.t -> Instance.t -> bool
