(** The level-wise chase (§2).

    A trigger is a TGD with a homomorphism of its body into the current
    instance; triggers fire once, inventing fresh labelled nulls for the
    existential variables. The default, oblivious policy is the paper's
    (§2): the result is unique up to isomorphism and the level-bounded
    slices [chase^ℓ_s(D,Σ)] of Lemma A.1 are canonical. *)

open Relational

type result

type policy =
  | Oblivious  (** the paper's semantics: fire regardless of the head *)
  | Restricted  (** skip triggers whose head is already satisfied *)

(** [run ?policy ?max_level ?max_facts sigma db] — chase until saturation,
    the level bound, or the fact budget. *)
val run :
  ?policy:policy ->
  ?max_level:int ->
  ?max_facts:int ->
  Tgd.t list ->
  Instance.t ->
  result

(** The chased instance. *)
val instance : result -> Instance.t

(** No unfired trigger remained — the chase terminated. *)
val saturated : result -> bool

(** [up_to_level r l] — the sub-instance of facts with s-level ≤ [l]
    ([chase^l_s(D,Σ)] when the run reached level [l]). *)
val up_to_level : result -> int -> Instance.t

(** The s-level of a fact of the result. *)
val level : result -> Fact.t -> int option

(** The ground part [chase↓]: facts without invented nulls. *)
val ground_part : result -> Instance.t

(** Chase and return the instance. *)
val chase : ?max_level:int -> ?max_facts:int -> Tgd.t list -> Instance.t -> Instance.t

(** [certain ?max_level sigma db q c̄] — sound bounded check of
    [c̄ ∈ q(chase(db,sigma))] (Proposition 3.1); the boolean reports
    whether the run saturated (verdict then exact). *)
val certain :
  ?max_level:int ->
  ?max_facts:int ->
  Tgd.t list ->
  Instance.t ->
  Ucq.t ->
  Term.const list ->
  bool * bool
